package mpinet

// Ablation benchmarks for the design choices DESIGN.md calls out: protocol
// switch points, registration caching, the hardware-collective and
// connection-management extensions, and the Tports match-walk mechanism.
// Each reports the quantity the choice trades off as custom metrics.

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// BenchmarkAblationEagerThreshold sweeps MVAPICH's eager/rendezvous switch
// point and reports 8 KB message latency under each: the cost of the
// rendezvous handshake, and why the Figure 2 dip sits where it does.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []int64{units.KB, 2 * units.KB, 16 * units.KB, 64 * units.KB} {
			p := cluster.IBAEagerThreshold(thr)
			lat := microbench.Latency(p, []int64{8 * units.KB}).Y[0]
			b.ReportMetric(lat, "us-thr"+units.SizeString(thr))
		}
	}
}

// BenchmarkAblationHWMulticast compares broadcast cost with and without the
// switch-multicast extension across node counts.
func BenchmarkAblationHWMulticast(b *testing.B) {
	measure := func(p cluster.Platform, nodes int) float64 {
		w := mpi.MustWorld(mpi.Config{Net: p.New(nodes), Procs: nodes})
		var per sim.Time
		if err := w.Run(func(r *mpi.Rank) {
			buf := r.Malloc(1024)
			r.Bcast(buf, 0)
			r.Barrier()
			start := r.Wtime()
			for i := 0; i < 8; i++ {
				r.Bcast(buf, 0)
			}
			if r.Rank() == 0 {
				per = (r.Wtime() - start) / 8
			}
		}); err != nil {
			b.Fatal(err)
		}
		return per.Micros()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(measure(cluster.IBA(), 8), "tree-8n-us")
		b.ReportMetric(measure(cluster.IBAMulticast(), 8), "mcast-8n-us")
	}
}

// BenchmarkAblationOnDemandConnections reports the memory footprint of a
// nearest-neighbor application under static vs on-demand connection
// management — the fix the paper suggests for Figure 13.
func BenchmarkAblationOnDemandConnections(b *testing.B) {
	measure := func(p cluster.Platform) float64 {
		w := mpi.MustWorld(mpi.Config{Net: p.New(8), Procs: 8})
		if err := w.Run(func(r *mpi.Rank) {
			buf := r.Malloc(256)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			r.Sendrecv(buf, next, 0, buf, prev, 0)
		}); err != nil {
			b.Fatal(err)
		}
		return float64(w.MemoryUsage(0)) / float64(units.MB)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(measure(cluster.IBA()), "static-MB")
		b.ReportMetric(measure(cluster.IBAOnDemand()), "ondemand-MB")
	}
}

// BenchmarkAblationBufferReuse quantifies the pin-down cache's value: 16 KB
// rendezvous latency with full reuse (warm cache) versus none.
func BenchmarkAblationBufferReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		warm := microbench.ReuseLatency(cluster.IBA(), []int64{16 * units.KB}, 100).Y[0]
		cold := microbench.ReuseLatency(cluster.IBA(), []int64{16 * units.KB}, 0).Y[0]
		b.ReportMetric(warm, "warm-us")
		b.ReportMetric(cold, "cold-us")
		b.ReportMetric(cold/warm, "x")
	}
}

// BenchmarkAblationLogP extracts the LogGP characterization of each fabric
// — the model-level summary of every per-network design difference.
func BenchmarkAblationLogP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range cluster.OSU() {
			lp := microbench.LogP(p)
			b.ReportMetric(lp.L, p.Name+"-L-us")
		}
	}
}
