package mpinet

// A documentation meta-test: every exported identifier in the module must
// carry a doc comment. This enforces the repository's API-documentation
// standard mechanically.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, path+": func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							missing = append(missing, path+": type "+s.Name.Name)
						}
						// Exported struct fields and interface methods.
						switch tt := s.Type.(type) {
						case *ast.StructType:
							for _, fl := range tt.Fields.List {
								for _, n := range fl.Names {
									if n.IsExported() && fl.Doc == nil && fl.Comment == nil {
										missing = append(missing, path+": field "+s.Name.Name+"."+n.Name)
									}
								}
							}
						case *ast.InterfaceType:
							for _, m := range tt.Methods.List {
								for _, n := range m.Names {
									if n.IsExported() && m.Doc == nil && m.Comment == nil {
										missing = append(missing, path+": method "+s.Name.Name+"."+n.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								missing = append(missing, path+": value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}
