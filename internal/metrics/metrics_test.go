package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpinet/internal/trace"
	"mpinet/internal/units"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	h := r.SizeHist("x")
	if c != nil || g != nil || tm != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	tm.Add(units.Microsecond)
	h.Observe(4096, units.Microsecond)
	r.Span(Span{})
	r.ProbeCount("p", func() int64 { return 1 })
	if c.Value() != 0 || g.HighWater() != 0 || tm.Total() != 0 {
		t.Fatalf("nil handles must stay zero")
	}
	if got := r.Snapshot(); len(got.Items) != 0 {
		t.Fatalf("nil registry snapshot not empty: %v", got.Items)
	}
	if r.Spans() != nil || r.SpanDropped() != 0 {
		t.Fatalf("nil registry span log must be empty")
	}
}

func TestHandlesSharedByName(t *testing.T) {
	r := New()
	a, b := r.Counter("node0/x"), r.Counter("node0/x")
	if a != b {
		t.Fatalf("same name must resolve to the same counter")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Value())
	}
}

func TestGaugeHighWater(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Add(2)
	g.Add(3)
	g.Add(-4)
	if g.Value() != 1 || g.HighWater() != 5 {
		t.Fatalf("got cur=%d hw=%d, want 1, 5", g.Value(), g.HighWater())
	}
}

func TestSizeHistBuckets(t *testing.T) {
	r := New()
	h := r.SizeHist("msg")
	h.Observe(100, units.Microsecond)
	h.Observe(4096, 2*units.Microsecond)
	h.Observe(1<<20+1, 0)
	if h.Count[trace.Below2K] != 1 || h.Count[trace.To16K] != 1 || h.Count[trace.Above1M] != 1 {
		t.Fatalf("bucket counts wrong: %v", h.Count)
	}
	if h.Time[trace.To16K] != 2*units.Microsecond {
		t.Fatalf("bucket time wrong: %v", h.Time)
	}
}

func TestProbeComposition(t *testing.T) {
	r := New()
	r.ProbeCount("node0/pin/hits", func() int64 { return 3 })
	r.ProbeCount("node0/pin/hits", func() int64 { return 4 })
	r.ProbeGauge("node0/depth", func() int64 { return 2 })
	r.ProbeGauge("node0/depth", func() int64 { return 9 })
	r.ProbeTime("node0/busy", func() units.Time { return units.Microsecond })
	s := r.Snapshot()
	if v, _ := s.Get("node0/pin/hits"); v != 7 {
		t.Fatalf("count probes must sum: got %d, want 7", v)
	}
	if v, _ := s.Get("node0/depth"); v != 9 {
		t.Fatalf("gauge probes must take max: got %d, want 9", v)
	}
	if v, _ := s.Get("node0/busy"); v != int64(units.Microsecond) {
		t.Fatalf("time probe = %d", v)
	}
}

func TestSpanCapAndDropCount(t *testing.T) {
	r := New()
	r.SpanMax = 2
	for i := 0; i < 5; i++ {
		r.Span(Span{Node: 0, Track: "bus", Name: "dma"})
	}
	if len(r.Spans()) != 2 || r.SpanDropped() != 3 {
		t.Fatalf("got %d spans, %d dropped; want 2, 3", len(r.Spans()), r.SpanDropped())
	}
	if v, ok := r.Snapshot().Get("metrics/spans_dropped"); !ok || v != 3 {
		t.Fatalf("snapshot must surface the drop count, got %d (%v)", v, ok)
	}
}

func TestSnapshotMerged(t *testing.T) {
	r := New()
	r.Counter("node0/nic/eager_msgs").Add(5)
	r.Counter("node1/nic/eager_msgs").Add(7)
	r.Gauge("rank0/mpi/unexp_depth").Set(2)
	r.Gauge("rank1/mpi/unexp_depth").Set(6)
	r.Counter("engine/events").Add(11)
	m := r.Snapshot().Merged()
	if v, _ := m.Get("nic/eager_msgs"); v != 12 {
		t.Fatalf("merged count = %d, want 12", v)
	}
	if v, _ := m.Get("mpi/unexp_depth"); v != 6 {
		t.Fatalf("merged gauge = %d, want max 6", v)
	}
	if v, _ := m.Get("engine/events"); v != 11 {
		t.Fatalf("unscoped metric must pass through, got %d", v)
	}
}

func TestSnapshotDeterministicRender(t *testing.T) {
	build := func() string {
		r := New()
		r.Counter("node1/b").Add(2)
		r.Counter("node0/a").Inc()
		r.Timer("node0/t").Add(3 * units.Microsecond)
		r.SizeHist("node0/h").Observe(4096, units.Microsecond)
		r.ProbeCount("node0/p", func() int64 { return 4 })
		var buf bytes.Buffer
		r.Snapshot().Render(&buf)
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("renders differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "node0/a") || !strings.Contains(a, "node0/h{2K-16K}/count") {
		t.Fatalf("render missing expected rows:\n%s", a)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New()
	r.Span(Span{Node: 0, Track: "bus", Name: "dma", Cat: "bus",
		Start: 0, End: 2 * units.Microsecond, Size: 4096})
	r.Span(Span{Node: 1, Track: "nic", Name: "eager", Cat: "nic",
		Start: units.Microsecond, End: 3 * units.Microsecond})
	events := []trace.Event{
		{At: units.Microsecond, Rank: 1, Kind: trace.EvSendStart, Peer: 0, Tag: 7, Size: 4096},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Spans(), events, func(rank int) int { return rank }); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 2 || instant != 1 || meta == 0 {
		t.Fatalf("got %d complete, %d instant, %d metadata events", complete, instant, meta)
	}
	// Determinism: same inputs, byte-identical output.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, r.Spans(), events, func(rank int) int { return rank }); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("chrome trace output is not deterministic")
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{Items: []Item{
		{Name: "engine/events_dispatched", Kind: KindCount, Value: 100},
		{Name: "engine/queue_high_water", Kind: KindGauge, Value: 7},
		{Name: "engine/blocked_time", Kind: KindTime, Value: 500},
	}}
	b := Snapshot{Items: []Item{
		{Name: "engine/events_dispatched", Kind: KindCount, Value: 23},
		{Name: "engine/queue_high_water", Kind: KindGauge, Value: 12},
		{Name: "shard/only_here", Kind: KindCount, Value: 1},
	}}
	m := MergeSnapshots(a, b)
	want := map[string]int64{
		"engine/blocked_time":      500,
		"engine/events_dispatched": 123,
		"engine/queue_high_water":  12,
		"shard/only_here":          1,
	}
	if len(m.Items) != len(want) {
		t.Fatalf("merged %d items, want %d", len(m.Items), len(want))
	}
	for _, it := range m.Items {
		if it.Value != want[it.Name] {
			t.Errorf("%s = %d, want %d", it.Name, it.Value, want[it.Name])
		}
	}
	// Deterministic: input order never changes the result.
	r := MergeSnapshots(b, a)
	for i := range m.Items {
		if m.Items[i].Name != r.Items[i].Name {
			t.Fatalf("merge order-dependent: %q vs %q at %d", m.Items[i].Name, r.Items[i].Name, i)
		}
		if it := r.Items[i]; it.Value != want[it.Name] {
			t.Errorf("reversed: %s = %d, want %d", it.Name, it.Value, want[it.Name])
		}
	}
	// Name order must be sorted (the snapshot invariant).
	for i := 1; i < len(m.Items); i++ {
		if m.Items[i-1].Name >= m.Items[i].Name {
			t.Fatalf("merged items not name-sorted: %q >= %q", m.Items[i-1].Name, m.Items[i].Name)
		}
	}
}
