package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// chromeEvent is one Chrome trace_event record. Field order is fixed by the
// struct, so encoding/json emits byte-identical output for identical runs.
// Timestamps and durations are microseconds (the format's native unit);
// simulated picoseconds convert at 1e6 ps/us without losing sub-ns detail
// thanks to the float mantissa at trace-scale magnitudes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func toMicros(t units.Time) float64 { return float64(t) / 1e6 }

// WriteChromeTrace renders device-level spans fused with message-level
// timeline events as Chrome trace_event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev. Each simulated node is a trace "process";
// each track within a node ("bus", "nic", "rank3", ...) is a "thread".
// Spans become complete ("X") events; timeline events become thread-scoped
// instants ("i") on the owning rank's track. nodeOf maps a world rank to
// its node index (needed because the timeline records ranks, not nodes);
// pass nil when events is empty. Output is deterministic: tids are
// assigned by sorted (node, track) order and encoding/json sorts arg keys.
func WriteChromeTrace(w io.Writer, spans []Span, events []trace.Event, nodeOf func(rank int) int) error {
	type lane struct {
		node  int
		track string
	}
	lanes := make(map[lane]int)
	var order []lane
	note := func(l lane) {
		if _, ok := lanes[l]; !ok {
			lanes[l] = 0
			order = append(order, l)
		}
	}
	for _, s := range spans {
		note(lane{s.Node, s.Track})
	}
	rankLane := func(r int) lane {
		n := 0
		if nodeOf != nil {
			n = nodeOf(r)
		}
		return lane{n, fmt.Sprintf("rank%d", r)}
	}
	for _, e := range events {
		note(rankLane(e.Rank))
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].node != order[j].node {
			return order[i].node < order[j].node
		}
		return order[i].track < order[j].track
	})
	var out []chromeEvent
	for tid, l := range order {
		lanes[l] = tid
		pname := fmt.Sprintf("node%d", l.node)
		if l.node == FabricNode {
			pname = "fabric"
		}
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"name": pname}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"name": l.track}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	for _, s := range spans {
		dur := toMicros(s.End - s.Start)
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: toMicros(s.Start), Dur: &dur,
			Pid: s.Node, Tid: lanes[lane{s.Node, s.Track}],
		}
		if s.Size > 0 {
			ev.Args = map[string]any{"bytes": s.Size}
		}
		out = append(out, ev)
	}
	for _, e := range events {
		l := rankLane(e.Rank)
		args := map[string]any{"peer": e.Peer, "tag": e.Tag, "comm": e.Comm}
		if e.Size > 0 {
			args["bytes"] = e.Size
		}
		ev := chromeEvent{
			Name: e.Kind.String(), Cat: "mpi-msg", Ph: "i",
			Ts: toMicros(e.At), Pid: l.node, Tid: lanes[l],
			S: "t", Args: args,
		}
		out = append(out, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: out, Unit: "ns"})
}
