package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// chromeEvent is one Chrome trace_event record. Field order is fixed by the
// struct, so encoding/json emits byte-identical output for identical runs.
// Timestamps and durations are microseconds (the format's native unit);
// simulated picoseconds convert at 1e6 ps/us without losing sub-ns detail
// thanks to the float mantissa at trace-scale magnitudes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   *uint64        `json:"id,omitempty"` // flow binding id ("s"/"f" pairs)
	Bp   string         `json:"bp,omitempty"` // flow bind point ("e": enclosing)
	Args map[string]any `json:"args,omitempty"`
}

// Flow is one message-flow arrow: Chrome draws it from the source lane at
// Start to the destination lane at End (flow-start "s" / flow-finish "f"
// event pair bound by ID). The tracing layer emits one per sampled message.
type Flow struct {
	ID                 uint64 // binding id, unique per arrow
	Name               string // arrow label (e.g. "msg eager 1KB")
	SrcNode, DstNode   int
	SrcTrack, DstTrack string
	Start, End         units.Time
	Args               map[string]any // optional arrow metadata
}

func toMicros(t units.Time) float64 { return float64(t) / 1e6 }

// WriteChromeTrace renders device-level spans fused with message-level
// timeline events as Chrome trace_event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev. Each simulated node is a trace "process";
// each track within a node ("bus", "nic", "rank3", ...) is a "thread".
// Spans become complete ("X") events; timeline events become thread-scoped
// instants ("i") on the owning rank's track. nodeOf maps a world rank to
// its node index (needed because the timeline records ranks, not nodes);
// pass nil when events is empty. Output is deterministic: tids are
// assigned by sorted (node, track) order and encoding/json sorts arg keys.
func WriteChromeTrace(w io.Writer, spans []Span, events []trace.Event, nodeOf func(rank int) int) error {
	return WriteChromeTraceWithFlows(w, spans, events, nodeOf, nil)
}

// WriteChromeTraceWithFlows is WriteChromeTrace plus message-flow arrows:
// each Flow becomes a flow-start ("s") event on its source lane and a
// flow-finish ("f", bind point "e") event on its destination lane, so the
// viewer draws a causal arrow from send to delivery. With flows == nil the
// output is byte-identical to WriteChromeTrace.
func WriteChromeTraceWithFlows(w io.Writer, spans []Span, events []trace.Event, nodeOf func(rank int) int, flows []Flow) error {
	type lane struct {
		node  int
		track string
	}
	lanes := make(map[lane]int)
	var order []lane
	note := func(l lane) {
		if _, ok := lanes[l]; !ok {
			lanes[l] = 0
			order = append(order, l)
		}
	}
	for _, s := range spans {
		note(lane{s.Node, s.Track})
	}
	rankLane := func(r int) lane {
		n := 0
		if nodeOf != nil {
			n = nodeOf(r)
		}
		return lane{n, fmt.Sprintf("rank%d", r)}
	}
	for _, e := range events {
		note(rankLane(e.Rank))
	}
	for _, f := range flows {
		note(lane{f.SrcNode, f.SrcTrack})
		note(lane{f.DstNode, f.DstTrack})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].node != order[j].node {
			return order[i].node < order[j].node
		}
		return order[i].track < order[j].track
	})
	var out []chromeEvent
	for tid, l := range order {
		lanes[l] = tid
		pname := fmt.Sprintf("node%d", l.node)
		if l.node == FabricNode {
			pname = "fabric"
		}
		out = append(out,
			chromeEvent{Name: "process_name", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"name": pname}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"name": l.track}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: l.node, Tid: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	for _, s := range spans {
		dur := toMicros(s.End - s.Start)
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: toMicros(s.Start), Dur: &dur,
			Pid: s.Node, Tid: lanes[lane{s.Node, s.Track}],
		}
		if s.Size > 0 {
			ev.Args = map[string]any{"bytes": s.Size}
		}
		out = append(out, ev)
	}
	for _, e := range events {
		l := rankLane(e.Rank)
		args := map[string]any{"peer": e.Peer, "tag": e.Tag, "comm": e.Comm}
		if e.Size > 0 {
			args["bytes"] = e.Size
		}
		ev := chromeEvent{
			Name: e.Kind.String(), Cat: "mpi-msg", Ph: "i",
			Ts: toMicros(e.At), Pid: l.node, Tid: lanes[l],
			S: "t", Args: args,
		}
		out = append(out, ev)
	}
	for i := range flows {
		f := &flows[i]
		out = append(out,
			chromeEvent{
				Name: f.Name, Cat: "msg-flow", Ph: "s",
				Ts: toMicros(f.Start), Pid: f.SrcNode,
				Tid: lanes[lane{f.SrcNode, f.SrcTrack}],
				ID:  &f.ID, Args: f.Args,
			},
			chromeEvent{
				Name: f.Name, Cat: "msg-flow", Ph: "f", Bp: "e",
				Ts: toMicros(f.End), Pid: f.DstNode,
				Tid: lanes[lane{f.DstNode, f.DstTrack}],
				ID:  &f.ID,
			},
		)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: out, Unit: "ns"})
}
