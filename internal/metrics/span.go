package metrics

import "mpinet/internal/units"

// FabricNode is the pseudo-node owning shared fabric resources (switch
// ports, inter-switch links) in spans and the Chrome trace: they belong to
// no host, so they render as a "fabric" process of their own.
const FabricNode = -1

// Span is one device-level interval of simulated time: a DMA crossing the
// I/O bus, a NIC pipeline stage, a link transfer, an MPI request's
// lifetime. Spans carry enough structure for the Chrome trace_event
// exporter to place them: Node becomes the trace "process", Track the
// "thread" within it ("bus", "nic", "rank3", ...).
type Span struct {
	Node  int        // owning node, or -1 for cluster-global
	Track string     // lane within the node: "bus", "nic", "link0", "rank2"
	Name  string     // operation: "dma", "eager", "rndv", "send 64KB"
	Cat   string     // layer category: "bus", "nic", "fabric", "mpi", "shmem"
	Start units.Time // interval start, simulated picoseconds
	End   units.Time // interval end
	Size  int64      // payload bytes, 0 when not applicable
}

// Span appends one interval to the span log, dropping (and counting) past
// SpanMax. No-op on a nil registry; never schedules or charges sim time.
func (r *Registry) Span(s Span) {
	if r == nil {
		return
	}
	if r.SpanMax > 0 && len(r.spans) >= r.SpanMax {
		r.spanDropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded span log in recording order (nil on a nil
// registry). The slice is the registry's own; callers must not mutate it.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// SpanDropped reports how many spans were discarded after the log filled.
func (r *Registry) SpanDropped() int64 {
	if r == nil {
		return 0
	}
	return r.spanDropped
}

// SpanTrack is a pre-resolved span template for one fixed (node, track,
// name, cat) lane, captured at wiring time so recording a job on a hot path
// is a struct copy plus an append — no per-event field assembly. Same
// design rule as counter/timer handles: resolve once, emit many.
type SpanTrack struct {
	r    *Registry
	tmpl Span
}

// Track returns a pre-resolved emitter for the given lane, or nil on a nil
// registry; Emit is nil-safe, so wiring code needs no guards.
func (r *Registry) Track(node int, track, name, cat string) *SpanTrack {
	if r == nil {
		return nil
	}
	return &SpanTrack{r: r, tmpl: Span{Node: node, Track: track, Name: name, Cat: cat}}
}

// Emit logs one interval on the track. No-op on a nil SpanTrack.
func (t *SpanTrack) Emit(start, end units.Time, size int64) {
	if t == nil {
		return
	}
	s := t.tmpl
	s.Start, s.End, s.Size = start, end, size
	t.r.Span(s)
}
