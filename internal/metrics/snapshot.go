package metrics

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"

	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Item is one metric in a snapshot. Value holds a count, a high-water mark
// or a time in picoseconds according to Kind.
type Item struct {
	Name  string
	Kind  Kind
	Value int64
}

// Snapshot is a point-in-time, name-sorted copy of a registry's metrics.
// Histograms are expanded into one item per size class plus a total, so
// snapshots merge and diff with no special cases.
type Snapshot struct {
	Items []Item
}

// Snapshot evaluates every probe and copies every metric. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	for _, name := range sortedKeys(r.counters) {
		s.Items = append(s.Items, Item{Name: name, Kind: KindCount, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Items = append(s.Items, Item{Name: name, Kind: KindGauge, Value: r.gauges[name].HighWater()})
	}
	for _, name := range sortedKeys(r.timers) {
		s.Items = append(s.Items, Item{Name: name, Kind: KindTime, Value: int64(r.timers[name].Total())})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		for c := trace.SizeClass(0); c < trace.NumSizeClasses; c++ {
			s.Items = append(s.Items,
				Item{Name: fmt.Sprintf("%s{%s}/count", name, c), Kind: KindCount, Value: h.Count[c]},
				Item{Name: fmt.Sprintf("%s{%s}/bytes", name, c), Kind: KindCount, Value: h.Bytes[c]},
				Item{Name: fmt.Sprintf("%s{%s}/time", name, c), Kind: KindTime, Value: int64(h.Time[c])},
			)
		}
	}
	for _, name := range sortedKeys(r.probes) {
		p := r.probes[name]
		s.Items = append(s.Items, Item{Name: name, Kind: p.kind, Value: p.f()})
	}
	if r.spanDropped > 0 {
		s.Items = append(s.Items, Item{Name: "metrics/spans_dropped", Kind: KindCount, Value: r.spanDropped})
	}
	sort.Slice(s.Items, func(i, j int) bool { return s.Items[i].Name < s.Items[j].Name })
	return s
}

// scopePrefix matches the per-node / per-rank leading path component that
// Merged strips to form cluster-wide aggregates.
var scopePrefix = regexp.MustCompile(`^(node|rank)\d+/`)

// Merged folds per-node and per-rank metrics into cluster-wide aggregates,
// the registry analogue of trace.Profile.Merge: the leading "nodeN/" or
// "rankN/" name component is stripped, then counts and times sum while
// gauges (high-water marks) take the maximum. Unscoped metrics pass
// through unchanged.
func (s Snapshot) Merged() Snapshot {
	agg := make(map[string]*Item)
	var order []string
	for _, it := range s.Items {
		name := scopePrefix.ReplaceAllString(it.Name, "")
		a, ok := agg[name]
		if !ok {
			cp := it
			cp.Name = name
			agg[name] = &cp
			order = append(order, name)
			continue
		}
		if it.Kind == KindGauge {
			if it.Value > a.Value {
				a.Value = it.Value
			}
		} else {
			a.Value += it.Value
		}
	}
	sort.Strings(order)
	out := Snapshot{Items: make([]Item, 0, len(order))}
	for _, name := range order {
		out.Items = append(out.Items, *agg[name])
	}
	return out
}

// MergeSnapshots folds any number of snapshots into one deterministic
// aggregate: items sharing a name combine by kind (counts and times sum,
// gauge high-waters take the maximum) and the result is name-sorted, so the
// output is invariant under input order — the shard-safe way to combine
// per-shard registries at snapshot time, where Engine-side merging would
// depend on which shard's probes fired first.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	agg := make(map[string]*Item)
	var names []string
	for _, s := range snaps {
		for _, it := range s.Items {
			a, ok := agg[it.Name]
			if !ok {
				cp := it
				agg[it.Name] = &cp
				names = append(names, it.Name)
				continue
			}
			if it.Kind == KindGauge {
				if it.Value > a.Value {
					a.Value = it.Value
				}
			} else {
				a.Value += it.Value
			}
		}
	}
	sort.Strings(names)
	out := Snapshot{Items: make([]Item, 0, len(names))}
	for _, name := range names {
		out.Items = append(out.Items, *agg[name])
	}
	return out
}

// format renders an item's value: times as humane durations, byte-suffixed
// counts as sizes, everything else as a plain integer.
func (it Item) format() string {
	switch {
	case it.Kind == KindTime:
		return units.Time(it.Value).String()
	case strings.HasSuffix(it.Name, "bytes") || strings.HasSuffix(it.Name, "/bytes}") ||
		strings.Contains(it.Name, "/bytes"):
		return units.SizeString(it.Value)
	case it.Kind == KindGauge:
		return fmt.Sprintf("%d (high water)", it.Value)
	default:
		return fmt.Sprintf("%d", it.Value)
	}
}

// Render writes the snapshot as an aligned two-column listing.
func (s Snapshot) Render(w io.Writer) {
	width := len("metric")
	for _, it := range s.Items {
		if len(it.Name) > width {
			width = len(it.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %s\n", width, "metric", "value")
	for _, it := range s.Items {
		fmt.Fprintf(w, "%-*s  %s\n", width, it.Name, it.format())
	}
}

// RenderGrouped writes the cluster-wide merged aggregates followed by the
// full per-scope detail — the layout cmd/paperrepro and cmd/mpibench print.
func (s Snapshot) RenderGrouped(w io.Writer) {
	fmt.Fprintln(w, "== cluster-wide (merged per node/rank) ==")
	s.Merged().Render(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "== full detail ==")
	s.Render(w)
}

// Get returns the named item's value and whether it exists — a test and
// tooling convenience.
func (s Snapshot) Get(name string) (int64, bool) {
	for _, it := range s.Items {
		if it.Name == name {
			return it.Value, true
		}
	}
	return 0, false
}
