// Package metrics is the cross-layer observability registry of the
// simulated cluster: counters, gauges with high-water marks, sim-time
// accumulators, size-class histograms (reusing trace.SizeClass, the paper's
// Table 1 buckets) and device-level spans, collected into one Registry that
// every model layer — engine, bus, NIC, fabric, shared memory, MPI — writes
// into when instrumentation is enabled.
//
// The paper diagnoses protocol behaviour from exactly these internal
// counters: pin-down cache hits on Myrinet/GM (Figures 7-8), eager-vs-
// rendezvous crossovers (Figure 2), bus and DMA occupancy (Figure 5), host
// involvement (Figure 3). The registry makes those quantities first-class
// outputs of a run instead of quantities inferred from end-to-end times.
//
// Design rules:
//
//   - Nil-safe and off by default. A nil *Registry hands out nil instrument
//     handles, and every method on a nil handle is a no-op, so model code
//     instruments unconditionally and pays one nil check when disabled.
//     Instrumentation never schedules events or charges simulated time, so
//     enabling it cannot perturb results.
//   - Zero allocation on the hot path. Handles are resolved by name once at
//     wiring time; increments are plain field updates. Name formatting
//     happens only during instrumentation and snapshotting.
//   - Deterministic. Recording never iterates a map; Snapshot sorts by name,
//     so two identical runs render byte-identical snapshots.
//
// For quantities a component already tracks (station busy time, pin-cache
// hits), the registry supports probes: closures registered at wiring time
// and evaluated only at Snapshot, costing literally nothing per event.
package metrics

import (
	"sort"
	"strconv"

	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Kind classifies a metric for rendering and merging.
type Kind int

// Metric kinds. Counts and times merge by summation across nodes; gauges
// (high-water marks) merge by maximum.
const (
	KindCount Kind = iota
	KindTime
	KindGauge
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil Counter ignores updates.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge tracks an instantaneous level and its high-water mark. A nil Gauge
// ignores updates.
type Gauge struct{ cur, hw int64 }

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.cur = v
	if v > g.hw {
		g.hw = v
	}
}

// Add moves the current level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.Set(g.cur + delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.cur
}

// HighWater returns the maximum level ever set (0 on nil).
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hw
}

// Timer accumulates simulated time. A nil Timer ignores updates.
type Timer struct {
	total units.Time
	n     int64
}

// Add accumulates a duration.
func (t *Timer) Add(d units.Time) {
	if t == nil {
		return
	}
	t.total += d
	t.n++
}

// Total returns the accumulated time (0 on nil).
func (t *Timer) Total() units.Time {
	if t == nil {
		return 0
	}
	return t.total
}

// Count returns how many durations were accumulated (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// SizeHist is a histogram over the paper's Table 1 message-size classes
// (trace.SizeClass): per class it accumulates an observation count, a byte
// volume and a total simulated time. A nil SizeHist ignores updates.
type SizeHist struct {
	Count [trace.NumSizeClasses]int64
	Bytes [trace.NumSizeClasses]int64
	Time  [trace.NumSizeClasses]units.Time
}

// Observe records one event of the given byte size taking d of simulated
// time (d may be zero for pure-count histograms).
func (h *SizeHist) Observe(size int64, d units.Time) {
	if h == nil {
		return
	}
	c := trace.ClassOf(size)
	h.Count[c]++
	h.Bytes[c] += size
	h.Time[c] += d
}

// probe is a deferred metric: evaluated only at Snapshot time.
type probe struct {
	kind Kind
	f    func() int64
}

// DefaultSpanMax bounds the span log (see Registry.Span); large enough for
// the observability demo runs, small enough that a runaway instrumented
// sweep cannot exhaust memory. Dropped spans are counted, not silent.
const DefaultSpanMax = 1 << 20

// Registry is one simulation run's metric namespace. Create with New; the
// zero value is not usable, but a nil *Registry is a valid "off" registry.
// Not safe for concurrent use — like the simulation engine itself, it
// relies on the cooperative scheduler for mutual exclusion.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*SizeHist
	probes   map[string]probe

	// SpanMax caps the span log; spans past it increment SpanDropped.
	SpanMax     int
	spans       []Span
	spanDropped int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*SizeHist),
		probes:   make(map[string]probe),
		SpanMax:  DefaultSpanMax,
	}
}

// Counter returns (creating if needed) the counter with the given name.
// Handing the same name out twice returns the same counter, so endpoints
// sharing a node naturally aggregate. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the named timer, or nil on a nil
// registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// SizeHist returns (creating if needed) the named histogram, or nil on a
// nil registry.
func (r *Registry) SizeHist(name string) *SizeHist {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &SizeHist{}
		r.hists[name] = h
	}
	return h
}

// addProbe registers f under name. Re-registering a count or time probe
// composes by summation (several pin caches on one node report one total);
// gauge probes compose by maximum.
func (r *Registry) addProbe(name string, kind Kind, f func() int64) {
	if r == nil {
		return
	}
	if old, ok := r.probes[name]; ok && old.kind == kind {
		prev, next := old.f, f
		switch kind {
		case KindGauge:
			f = func() int64 {
				a, b := prev(), next()
				if a > b {
					return a
				}
				return b
			}
		default:
			f = func() int64 { return prev() + next() }
		}
	}
	r.probes[name] = probe{kind: kind, f: f}
}

// ProbeCount registers a count read at snapshot time. Same-name
// registrations sum.
func (r *Registry) ProbeCount(name string, f func() int64) {
	r.addProbe(name, KindCount, f)
}

// ProbeTime registers a simulated-time quantity read at snapshot time.
// Same-name registrations sum.
func (r *Registry) ProbeTime(name string, f func() units.Time) {
	r.addProbe(name, KindTime, func() int64 { return int64(f()) })
}

// ProbeGauge registers a level/high-water quantity read at snapshot time.
// Same-name registrations take the maximum.
func (r *Registry) ProbeGauge(name string, f func() int64) {
	r.addProbe(name, KindGauge, f)
}

// sortedKeys returns the sorted key set of any of the registry maps.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NodePrefix returns the canonical per-node name prefix ("node3/") that
// Snapshot.Merged strips when forming cluster-wide aggregates.
func NodePrefix(node int) string { return "node" + strconv.Itoa(node) + "/" }

// RankPrefix returns the canonical per-rank name prefix ("rank2/"),
// likewise stripped by Snapshot.Merged.
func RankPrefix(rank int) string { return "rank" + strconv.Itoa(rank) + "/" }

// Instrumentable is implemented by components (networks, devices) that can
// wire themselves into a registry.
type Instrumentable interface {
	InstrumentMetrics(m *Registry)
}
