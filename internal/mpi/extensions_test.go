package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// measureBcast times iters broadcasts of size bytes from rank 0 on an
// 8-node world of the given platform.
func measureBcast(t *testing.T, p cluster.Platform, size int64, iters int) sim.Time {
	t.Helper()
	w := MustWorld(Config{Net: p.New(8), Procs: 8})
	var per sim.Time
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(size)
		r.Bcast(buf, 0)
		r.Barrier()
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			r.Bcast(buf, 0)
		}
		if r.Rank() == 0 {
			per = (r.Wtime() - start) / sim.Time(iters)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return per
}

func TestHWMulticastBcastFaster(t *testing.T) {
	plain := measureBcast(t, cluster.IBA(), 1024, 8)
	mc := measureBcast(t, cluster.IBAMulticast(), 1024, 8)
	if mc >= plain {
		t.Fatalf("hardware multicast bcast %v not faster than binomial tree %v", mc, plain)
	}
	// The tree pays ~log2(8)=3 serialized hops; multicast pays ~1.
	if float64(mc) > float64(plain)*0.7 {
		t.Errorf("multicast advantage too small: %v vs %v", mc, plain)
	}
}

func TestHWMulticastCorrectCompletion(t *testing.T) {
	// Every rank must leave the Bcast after the root entered it, for
	// several back-to-back broadcasts from the same root.
	w := MustWorld(Config{Net: cluster.IBAMulticast().New(4), Procs: 4})
	var rootEntry sim.Time
	exits := make([]sim.Time, 4)
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(4096)
		if r.Rank() == 0 {
			rootEntry = r.Wtime()
		} else {
			// Skew the receivers: late ranks must still get every payload.
			r.Compute(units.FromMicros(float64(50 * r.Rank())))
		}
		for i := 0; i < 3; i++ {
			r.Bcast(buf, 0)
		}
		exits[r.Rank()] = r.Wtime()
	}); err != nil {
		t.Fatal(err)
	}
	for rank, at := range exits {
		if at <= rootEntry {
			t.Fatalf("rank %d left bcast at %v, before the root entered (%v)", rank, at, rootEntry)
		}
	}
}

func TestHWMulticastFallsBackInSMPMode(t *testing.T) {
	// With two ranks per node the multicast path must not be used (it
	// addresses nodes, not ranks); the tree must still complete.
	w := MustWorld(Config{Net: cluster.IBAMulticast().New(4), Procs: 8, ProcsPerNode: 2})
	if err := w.Run(func(r *Rank) {
		r.Bcast(r.Malloc(512), 0)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOnDemandConnectionsMemory(t *testing.T) {
	// A ring program touches only two peers per rank: on-demand memory must
	// reflect that, while the default platform pays for all seven.
	run := func(p cluster.Platform) int64 {
		w := MustWorld(Config{Net: p.New(8), Procs: 8})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(256)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < 3; i++ {
				r.Sendrecv(buf, next, 0, buf, prev, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.MemoryUsage(0)
	}
	static := run(cluster.IBA())
	onDemand := run(cluster.IBAOnDemand())
	if onDemand >= static {
		t.Fatalf("on-demand memory %d not below static %d", onDemand, static)
	}
	// Two established connections vs seven.
	saved := static - onDemand
	if saved < 20*units.MB {
		t.Errorf("on-demand saving only %d bytes over a ring", saved)
	}
}

func TestOnDemandFirstContactStall(t *testing.T) {
	// The first message to a new peer pays connection setup; later ones do
	// not.
	measure := func(p cluster.Platform) (first, second sim.Time) {
		w := MustWorld(Config{Net: p.New(2), Procs: 2})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(64)
			if r.Rank() == 0 {
				t0 := r.Wtime()
				r.Send(buf, 1, 0)
				r.Recv(buf, 1, 1)
				first = r.Wtime() - t0
				t1 := r.Wtime()
				r.Send(buf, 1, 0)
				r.Recv(buf, 1, 1)
				second = r.Wtime() - t1
			} else {
				for i := 0; i < 2; i++ {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return
	}
	f, s := measure(cluster.IBAOnDemand())
	if f < s+200*units.Microsecond {
		t.Fatalf("first contact %v does not show the setup stall (steady state %v)", f, s)
	}
	fStatic, _ := measure(cluster.IBA())
	if fStatic > s*3 {
		t.Fatalf("static platform first message %v unexpectedly slow", fStatic)
	}
}

func TestEagerThresholdAblation(t *testing.T) {
	// Raising the eager threshold past a message size removes the
	// rendezvous handshake for that size.
	lat := func(threshold int64) sim.Time {
		w := MustWorld(Config{Net: cluster.IBAEagerThreshold(threshold).New(2), Procs: 2})
		var rtt sim.Time
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(8 * units.KB)
			peer := 1 - r.Rank()
			for i := 0; i < 4; i++ {
				if r.Rank() == 0 {
					if i == 1 {
						rtt = -r.Wtime()
					}
					r.Send(buf, peer, 0)
					r.Recv(buf, peer, 1)
					if i == 3 {
						rtt += r.Wtime()
					}
				} else {
					r.Recv(buf, peer, 0)
					r.Send(buf, peer, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rtt / 3
	}
	eager := lat(16 * units.KB) // 8KB messages go eager
	rndv := lat(2 * units.KB)   // 8KB messages go rendezvous
	if eager >= rndv {
		t.Fatalf("eager 8KB (%v) not faster than rendezvous 8KB (%v)", eager, rndv)
	}
}
