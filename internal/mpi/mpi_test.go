package mpi

import (
	"fmt"
	"testing"

	"mpinet/internal/dev"
	"mpinet/internal/elan"
	"mpinet/internal/gm"
	"mpinet/internal/sim"
	"mpinet/internal/units"
	"mpinet/internal/verbs"
)

// networks under test, constructed fresh per invocation.
func testNetworks(nodes int) map[string]func() dev.Network {
	return map[string]func() dev.Network{
		"IBA":  func() dev.Network { return verbs.New(sim.New(), verbs.DefaultConfig(nodes)) },
		"Myri": func() dev.Network { return gm.New(sim.New(), gm.DefaultConfig(nodes)) },
		"QSN":  func() dev.Network { return elan.New(sim.New(), elan.DefaultConfig(nodes)) },
	}
}

func forEachNet(t *testing.T, nodes int, f func(t *testing.T, net dev.Network)) {
	t.Helper()
	for _, name := range []string{"IBA", "Myri", "QSN"} {
		mk := testNetworks(nodes)[name]
		t.Run(name, func(t *testing.T) { f(t, mk()) })
	}
}

func TestPingPongCompletes(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		for _, size := range []int64{0, 4, 1024, 2048, 64 * 1024, units.MB} {
			w := MustWorld(Config{Net: net, Procs: 2})
			var rtt sim.Time
			err := w.Run(func(r *Rank) {
				buf := r.Malloc(size)
				if r.Rank() == 0 {
					start := r.Wtime()
					r.Send(buf, 1, 7)
					r.Recv(buf, 1, 8)
					rtt = r.Wtime() - start
				} else {
					r.Recv(buf, 0, 7)
					r.Send(buf, 0, 8)
				}
			})
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if rtt <= 0 {
				t.Fatalf("size %d: non-positive RTT %v", size, rtt)
			}
		}
	})
}

func TestLatencyMonotoneInSize(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		var prev sim.Time
		name := net.Name()
		for _, size := range []int64{4, 64, 1024, 16 * 1024, 256 * 1024} {
			w := MustWorld(Config{Net: net, Procs: 2})
			var rtt sim.Time
			if err := w.Run(func(r *Rank) {
				buf := r.Malloc(size)
				if r.Rank() == 0 {
					start := r.Wtime()
					r.Send(buf, 1, 0)
					r.Recv(buf, 1, 1)
					rtt = r.Wtime() - start
				} else {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if rtt < prev {
				t.Fatalf("%s: latency decreased from %v to %v at size %d", name, prev, rtt, size)
			}
			prev = rtt
		}
	})
}

func TestUnexpectedMessageMatched(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 2})
		var got Status
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(r.Malloc(512), 1, 42)
			} else {
				// Compute long enough that the message is unexpected.
				r.Compute(units.FromMicros(500))
				got = r.Recv(r.Malloc(512), 0, 42)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got.Source != 0 || got.Tag != 42 || got.Size != 512 {
			t.Fatalf("status = %+v", got)
		}
	})
}

func TestUnexpectedRendezvousMatched(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		size := int64(256 * 1024) // well past every eager threshold
		w := MustWorld(Config{Net: net, Procs: 2})
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(r.Malloc(size), 1, 1)
			} else {
				r.Compute(units.FromMicros(300))
				st := r.Recv(r.Malloc(size), 0, 1)
				if st.Size != size {
					t.Errorf("recv size %d, want %d", st.Size, size)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 2})
		var order []int
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(r.Malloc(16), 1, 5)
				r.Send(r.Malloc(16), 1, 6)
			} else {
				// Receive tag 6 first even though tag 5 arrives first.
				r.Compute(units.FromMicros(200))
				st := r.Recv(r.Malloc(16), 0, 6)
				order = append(order, st.Tag)
				st = r.Recv(r.Malloc(16), 0, 5)
				order = append(order, st.Tag)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 || order[0] != 6 || order[1] != 5 {
			t.Fatalf("tag order = %v, want [6 5]", order)
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	forEachNet(t, 3, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 3})
		var sources []int
		if err := w.Run(func(r *Rank) {
			switch r.Rank() {
			case 0:
				for i := 0; i < 2; i++ {
					st := r.Recv(r.Malloc(64), AnySource, AnyTag)
					sources = append(sources, st.Source)
				}
			default:
				r.Send(r.Malloc(64), 0, 10+r.Rank())
			}
		}); err != nil {
			t.Fatal(err)
		}
		if len(sources) != 2 {
			t.Fatalf("received %d messages", len(sources))
		}
		if !((sources[0] == 1 && sources[1] == 2) || (sources[0] == 2 && sources[1] == 1)) {
			t.Fatalf("sources = %v", sources)
		}
	})
}

func TestIsendIrecvOverlapCorrectness(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 2})
		if err := w.Run(func(r *Rank) {
			peer := 1 - r.Rank()
			n := 8
			var reqs []*Request
			for i := 0; i < n; i++ {
				reqs = append(reqs, r.Irecv(r.Malloc(1024), peer, i))
			}
			for i := 0; i < n; i++ {
				reqs = append(reqs, r.Isend(r.Malloc(1024), peer, i))
			}
			r.Waitall(reqs...)
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 2})
		if err := w.Run(func(r *Rank) {
			peer := 1 - r.Rank()
			st := r.Sendrecv(r.Malloc(4096), peer, 3, r.Malloc(4096), peer, 3)
			if st.Source != peer {
				t.Errorf("rank %d: sendrecv source %d", r.Rank(), st.Source)
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeadlockDetected(t *testing.T) {
	net := verbs.New(sim.New(), verbs.DefaultConfig(2))
	w := MustWorld(Config{Net: net, Procs: 2})
	err := w.Run(func(r *Rank) {
		// Everyone receives, nobody sends.
		r.Recv(r.Malloc(8), 1-r.Rank(), 0)
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, procs := range []int{2, 3, 4, 5, 7, 8} {
		forEachNet(t, 8, func(t *testing.T, net dev.Network) {
			w := MustWorld(Config{Net: net, Procs: procs})
			after := make([]sim.Time, procs)
			lastBefore := sim.Time(0)
			if err := w.Run(func(r *Rank) {
				// Stagger entries.
				d := units.FromMicros(float64(r.Rank() * 50))
				r.Compute(d)
				if d > lastBefore {
					lastBefore = d
				}
				r.Barrier()
				after[r.Rank()] = r.Wtime()
			}); err != nil {
				t.Fatal(err)
			}
			for rk, tm := range after {
				if tm < lastBefore {
					t.Fatalf("procs=%d rank %d left barrier at %v before last entry %v", procs, rk, tm, lastBefore)
				}
			}
		})
	}
}

func TestBcastReachesAll(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		for _, procs := range []int{2, 5, 8} {
			w := MustWorld(Config{Net: testNetworksFresh(net.Name(), 8), Procs: procs})
			done := make([]bool, procs)
			if err := w.Run(func(r *Rank) {
				buf := r.Malloc(4096)
				r.Bcast(buf, procs-1)
				done[r.Rank()] = true
			}); err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
			for rk, ok := range done {
				if !ok {
					t.Fatalf("procs=%d rank %d never finished bcast", procs, rk)
				}
			}
		}
	})
}

// testNetworksFresh builds a new network of the named kind (helper for
// loops that need several worlds per subtest).
func testNetworksFresh(name string, nodes int) dev.Network {
	return testNetworks(nodes)[name]()
}

func TestAllreduceCompletes(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 8})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(1024)
			for i := 0; i < 3; i++ {
				r.Allreduce(buf)
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallCompletes(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 8})
		if err := w.Run(func(r *Rank) {
			send := r.Malloc(8 * 1024)
			recv := r.Malloc(8 * 1024)
			r.Alltoall(send, recv)
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallvAsymmetric(t *testing.T) {
	forEachNet(t, 4, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 4})
		if err := w.Run(func(r *Rank) {
			p := r.Size()
			me := r.Rank()
			sendCounts := make([]int64, p)
			recvCounts := make([]int64, p)
			var sendTotal, recvTotal int64
			for i := 0; i < p; i++ {
				sendCounts[i] = int64((me + 1) * 1024)
				recvCounts[i] = int64((i + 1) * 1024)
				sendTotal += sendCounts[i]
				recvTotal += recvCounts[i]
			}
			r.Alltoallv(r.Malloc(sendTotal), r.Malloc(recvTotal), sendCounts, recvCounts)
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllgatherCompletes(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 8})
		if err := w.Run(func(r *Rank) {
			block := int64(2048)
			r.Allgather(r.Malloc(block), r.Malloc(block*int64(r.Size())))
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReduceCompletes(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		for _, procs := range []int{2, 3, 8} {
			w := MustWorld(Config{Net: testNetworksFresh(net.Name(), 8), Procs: procs})
			if err := w.Run(func(r *Rank) {
				r.Reduce(r.Malloc(8192), 0)
			}); err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
		}
	})
}

func TestIntraNodeUsesConfiguredChannel(t *testing.T) {
	// Two ranks on one node: Myrinet should be far faster intra-node than
	// Quadrics (shared memory vs NIC loopback).
	measure := func(net dev.Network) sim.Time {
		w := MustWorld(Config{Net: net, Procs: 2, ProcsPerNode: 2})
		var rtt sim.Time
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(64)
			if r.Rank() == 0 {
				start := r.Wtime()
				for i := 0; i < 10; i++ {
					r.Send(buf, 1, 0)
					r.Recv(buf, 1, 1)
				}
				rtt = (r.Wtime() - start) / 10
			} else {
				for i := 0; i < 10; i++ {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}
		}); err != nil {
			panic(err)
		}
		return rtt
	}
	myri := measure(gm.New(sim.New(), gm.DefaultConfig(1)))
	qsn := measure(elan.New(sim.New(), elan.DefaultConfig(1)))
	if myri*2 >= qsn {
		t.Fatalf("intra-node RTT: Myri %v not clearly faster than QSN %v", myri, qsn)
	}
}

func TestMappingBlockVsCyclic(t *testing.T) {
	net := verbs.New(sim.New(), verbs.DefaultConfig(4))
	w := MustWorld(Config{Net: net, Procs: 8, ProcsPerNode: 2, Mapping: Block})
	if w.nodeOf(0) != 0 || w.nodeOf(1) != 0 || w.nodeOf(2) != 1 || w.nodeOf(7) != 3 {
		t.Fatalf("block mapping wrong: %d %d %d %d", w.nodeOf(0), w.nodeOf(1), w.nodeOf(2), w.nodeOf(7))
	}
	net2 := verbs.New(sim.New(), verbs.DefaultConfig(4))
	w2 := MustWorld(Config{Net: net2, Procs: 8, ProcsPerNode: 2, Mapping: Cyclic})
	if w2.nodeOf(0) != 0 || w2.nodeOf(1) != 1 || w2.nodeOf(4) != 0 {
		t.Fatalf("cyclic mapping wrong: %d %d %d", w2.nodeOf(0), w2.nodeOf(1), w2.nodeOf(4))
	}
}

func TestProfileRecordsCalls(t *testing.T) {
	net := verbs.New(sim.New(), verbs.DefaultConfig(2))
	w := MustWorld(Config{Net: net, Procs: 2})
	if err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.Malloc(100), 1, 0)
			r.Send(r.Malloc(5000), 1, 0)
			req := r.Isend(r.Malloc(200*1024), 1, 0)
			r.Wait(req)
			r.Allreduce(r.Malloc(64))
		} else {
			r.Recv(r.Malloc(100), 0, 0)
			r.Recv(r.Malloc(5000), 0, 0)
			r.Irecv(r.Malloc(200*1024), 0, 0)
			// Drain via wait-less progress: block on a fresh recv of the
			// allreduce decomposition happens inside the collective.
			r.Allreduce(r.Malloc(64))
		}
	}); err != nil {
		// rank 1's Irecv is never waited; world may finish anyway since
		// completion needs no further program action.
		t.Fatal(err)
	}
	p := w.Profile(0)
	if p.SendCalls != 2 || p.IsendCalls != 1 {
		t.Fatalf("sends=%d isends=%d", p.SendCalls, p.IsendCalls)
	}
	if p.CollCalls != 1 || p.CollByName["Allreduce"] != 1 {
		t.Fatalf("collectives: %+v", p.CollByName)
	}
	if p.SizeHist[0] != 2 || p.SizeHist[1] != 1 || p.SizeHist[2] != 1 {
		t.Fatalf("size histogram: %v", p.SizeHist)
	}
	// Collective decomposition must not leak into pt2pt counts.
	if p.PtPCalls != 3 {
		t.Fatalf("PtPCalls = %d, want 3", p.PtPCalls)
	}
}

func TestMemoryUsageGrowsOnlyForIBA(t *testing.T) {
	memAt := func(mk func() dev.Network, procs int) int64 {
		w := MustWorld(Config{Net: mk(), Procs: procs})
		return w.MemoryUsage(0)
	}
	nets := testNetworks(8)
	ibaGrowth := memAt(nets["IBA"], 8) - memAt(nets["IBA"], 2)
	if ibaGrowth <= 0 {
		t.Fatalf("IBA memory growth = %d, want positive", ibaGrowth)
	}
	for _, name := range []string{"Myri", "QSN"} {
		if g := memAt(nets[name], 8) - memAt(nets[name], 2); g != 0 {
			t.Fatalf("%s memory growth = %d, want flat", name, g)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		net := gm.New(sim.New(), gm.DefaultConfig(4))
		w := MustWorld(Config{Net: net, Procs: 4})
		var log string
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(32 * 1024)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < 5; i++ {
				r.Sendrecv(buf, next, i, buf, prev, i)
			}
			r.Allreduce(r.Malloc(512))
			if r.Rank() == 0 {
				log = fmt.Sprintf("t=%v busy=%v", r.Wtime(), r.HostBusy())
			}
		}); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d differs: %q vs %q", i, got, first)
		}
	}
}

func TestHostBusyAccounted(t *testing.T) {
	forEachNet(t, 2, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 2})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(1024)
			if r.Rank() == 0 {
				r.Send(buf, 1, 0)
			} else {
				r.Recv(buf, 0, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < 2; rank++ {
			if w.HostBusy(rank) <= 0 {
				t.Fatalf("rank %d host busy = %v, want positive", rank, w.HostBusy(rank))
			}
			if w.HostBusy(rank) > units.FromMicros(50) {
				t.Fatalf("rank %d host busy = %v, implausibly large", rank, w.HostBusy(rank))
			}
		}
	})
}

func TestManyProcsOneNodeSMP(t *testing.T) {
	forEachNet(t, 8, func(t *testing.T, net dev.Network) {
		w := MustWorld(Config{Net: net, Procs: 16, ProcsPerNode: 2})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(4096)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			r.Sendrecv(buf, next, 0, buf, prev, 0)
			r.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
	})
}
