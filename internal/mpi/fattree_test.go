package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestFatTreeWorldRuns(t *testing.T) {
	// 32 nodes — impossible on any single switch in the repertoire.
	w := MustWorld(Config{Net: cluster.IBAFatTree(32).New(32), Procs: 32})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(4096)
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		r.Sendrecv(buf, next, 0, buf, prev, 0)
		r.Allreduce(r.Malloc(64))
		r.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeLatencyHierarchy(t *testing.T) {
	// Same-leaf pairs are one hop; cross-leaf pairs three. Latency must
	// reflect it, modestly.
	measure := func(dst int) sim.Time {
		w := MustWorld(Config{Net: cluster.IBAFatTree(32).New(32), Procs: 32})
		var rtt sim.Time
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(64)
			switch r.Rank() {
			case 0:
				start := r.Wtime()
				for i := 0; i < 8; i++ {
					r.Send(buf, dst, 0)
					r.Recv(buf, dst, 1)
				}
				rtt = (r.Wtime() - start) / 8
			case dst:
				for i := 0; i < 8; i++ {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	sameLeaf := measure(1)   // leaf 0
	crossLeaf := measure(17) // leaf 1
	if crossLeaf <= sameLeaf {
		t.Fatalf("cross-leaf RTT %v not above same-leaf %v", crossLeaf, sameLeaf)
	}
	if crossLeaf > sameLeaf+2*units.Microsecond {
		t.Fatalf("cross-leaf penalty implausibly large: %v vs %v", crossLeaf, sameLeaf)
	}
}

func TestFatTreeScalableBandwidth(t *testing.T) {
	// Pairwise disjoint cross-leaf streams: the fabric must sustain several
	// concurrently (that is what the spines are for). 8 pairs, each
	// crossing leaves, should finish in about the single-pair time when the
	// spine budget suffices.
	run := func(pairs int) sim.Time {
		w := MustWorld(Config{Net: cluster.IBAFatTree(32).New(32), Procs: 32})
		size := int64(2 * units.MB)
		if err := w.Run(func(r *Rank) {
			// Pair i: rank i (leaf 0) <-> rank 16+i (leaf 1).
			if r.Rank() < pairs {
				r.Send(r.Malloc(size), 16+r.Rank(), 0)
			} else if r.Rank() >= 16 && r.Rank() < 16+pairs {
				r.Recv(r.Malloc(size), r.Rank()-16, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	one := run(1)
	eight := run(8)
	// With 8 spines and deterministic ECMP by destination, eight pairs to
	// eight distinct destinations spread over all up-links: allow modest
	// slowdown, not 8x serialization.
	if float64(eight) > float64(one)*2.5 {
		t.Fatalf("8 pairs took %v vs single pair %v — spines not providing bandwidth", eight, one)
	}
}

func TestFatTreeOversubscriptionContention(t *testing.T) {
	// 16 hosts per leaf with 8 up-links is 2:1 oversubscribed: 8 cross-leaf
	// streams get an up-link each (no slowdown over one stream), while 16
	// streams share them pairwise and the bulk phase stretches.
	run := func(streams int) sim.Time {
		w := MustWorld(Config{Net: cluster.IBAFatTree(32).New(32), Procs: 32})
		size := int64(2 * units.MB)
		if err := w.Run(func(r *Rank) {
			if r.Rank() < streams {
				r.Send(r.Malloc(size), 16+r.Rank(), 0)
			} else if r.Rank() >= 16 && r.Rank() < 16+streams {
				r.Recv(r.Malloc(size), r.Rank()-16, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	one := run(1)
	eight := run(8)
	sixteen := run(16)
	if float64(eight) > float64(one)*1.1 {
		t.Fatalf("8 disjoint streams (%v) slower than one (%v)", eight, one)
	}
	if float64(sixteen) < float64(eight)*1.2 {
		t.Fatalf("oversubscription invisible: 8 streams %v, 16 streams %v", eight, sixteen)
	}
}
