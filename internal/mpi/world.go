// Package mpi implements an MPICH-style MPI library on top of the simulated
// interconnects: the eager and rendezvous point-to-point protocols with
// posted/unexpected queues and tag matching, non-blocking operations with an
// explicit progress engine, the collectives the paper's workloads use
// (implemented over point-to-point, as MPICH 1.2.x does), an intra-node
// shared-memory channel, per-rank profiling, and memory-usage accounting.
//
// The division of labour mirrors MPICH's ADI2: this package is the
// device-independent layer; everything interconnect-specific enters through
// dev.Endpoint (see internal/dev).
package mpi

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"mpinet/internal/dev"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
)

// Mapping selects how ranks are placed on nodes.
type Mapping int

// Mappings. Block fills each node before moving on (the paper's SMP runs
// use block mapping); Cyclic deals ranks round-robin.
const (
	Block Mapping = iota
	Cyclic
)

// Config describes an MPI job on a wired network.
type Config struct {
	// Net is the interconnect the job runs on.
	Net dev.Network
	// Procs is the number of MPI ranks.
	Procs int
	// ProcsPerNode is how many ranks share a node (default 1).
	ProcsPerNode int
	// Mapping is the rank-to-node placement (default Block).
	Mapping Mapping
	// Timeline, when non-nil, collects message-level events from the run
	// (see trace.Timeline).
	Timeline *trace.Timeline
	// Metrics, when non-nil, wires every layer — engine, bus, NIC, fabric,
	// shared memory and this library — into the registry. Off (nil) by
	// default; enabling it does not perturb simulated time.
	Metrics *metrics.Registry
	// Timeout is the per-wait watchdog: a blocking MPI operation that makes
	// no progress for this long fails the job with a TimeoutError instead
	// of hanging. 0 means the default policy — armed when the network
	// carries a fault plan (dev.FaultPlanner) at faults.ScaledTimeout(Procs,
	// diameter), which grows with the rank count and the fabric's hop
	// diameter (dev.DiameterReporter) so a thousand-rank Clos job is not
	// held to a crossbar's deadline; off otherwise; negative disables the
	// watchdog unconditionally.
	Timeout sim.Time
	// FaultTolerant selects ULFM-style rank-death handling: when a node
	// crash (faults.Plan.NodeCrashes) kills a peer, pending user-level
	// point-to-point operations on the dead rank complete with Status.Err
	// set to a *RankFailedError instead of aborting the job — the program
	// decides whether to route around the death. Collectives involving a
	// dead rank remain fatal (a typed RankFailedError job error), as does
	// every rank death when this is false.
	FaultTolerant bool
	// MsgTrace, when non-nil, enables per-message span tracing: every send
	// is assigned a trace ID and sampled messages record typed stage spans
	// across the MPI library, the rail bond, the NIC models and the fabric
	// (see internal/msgtrace). When nil the world still owns a disabled
	// recorder whose always-on flight ring captures recent incidents for
	// the failure postmortem.
	MsgTrace *msgtrace.Recorder
}

// ConfigError is a Config validation failure attributed to the option
// (the Config field) that caused it, so MustWorld panics — and programmatic
// callers report — with the offending knob named instead of just a symptom.
type ConfigError struct {
	// Option is the Config field name ("Net", "Procs", "ProcsPerNode").
	Option string
	// Reason describes what is wrong with the option's value.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("mpi: invalid Config.%s: %s", e.Option, e.Reason)
}

// Validate reports the first problem that would make this configuration
// unrunnable — always a *ConfigError naming the offending option — or nil.
// NewWorld and MustWorld call it; it is exported so callers can pre-flight
// configurations they assemble programmatically.
func (cfg Config) Validate() error {
	if cfg.Net == nil {
		return &ConfigError{Option: "Net", Reason: "nil — build a network first, e.g. mpinet.InfiniBand().New(8)"}
	}
	if cfg.Procs < 1 {
		return &ConfigError{Option: "Procs", Reason: fmt.Sprintf("%d; an MPI job needs at least one rank", cfg.Procs)}
	}
	if cfg.ProcsPerNode < 0 {
		return &ConfigError{Option: "ProcsPerNode", Reason: fmt.Sprintf("%d; must be >= 0 (0 means the default of 1)", cfg.ProcsPerNode)}
	}
	ppn := cfg.ProcsPerNode
	if ppn < 1 {
		ppn = 1
	}
	nodes := cfg.Net.Nodes()
	if cfg.Procs > nodes*ppn {
		return &ConfigError{Option: "Procs", Reason: fmt.Sprintf("%d procs do not fit on %d nodes x %d procs/node — raise ProcsPerNode or use a larger platform",
			cfg.Procs, nodes, ppn)}
	}
	return nil
}

// World is one MPI job: a set of ranks wired to a network, ready to Run a
// program.
type World struct {
	eng   *sim.Engine
	cfg   Config
	procs []*procState
	// shm holds one intra-node channel per node hosting a rank, indexed by
	// node (nil entries for unused nodes). A dense slice: the intra-node
	// send path resolves it per message.
	shm []*shmem.Channel
	// worldRanks is the shared identity rank list behind every rank's cached
	// CommWorld view; read-only after construction.
	worldRanks []int
	met        *metrics.Registry
	rec   *msgtrace.Recorder
	start sim.Time
	end   sim.Time
	// fault is the first fatal job error (device retry exhaustion, watchdog
	// timeout, truncation); once set, every rank aborts at its next
	// progress point and Run returns it. In scale mode it may be written
	// from any shard's goroutine, so writes go through faultMu and readers
	// check faultSet first (the atomic store/load pair orders the error
	// value behind the flag).
	fault    error
	faultMu  sync.Mutex
	faultSet atomic.Bool

	// scale is true when the network's node-domain placement is active:
	// each rank's protocol state lives on its node's engine, cross-rank
	// completions hop between engines with a deterministic per-source skew,
	// and shared maps are mutex-guarded. Activated in NewWorld only for
	// domain-clean configurations, so every other world keeps the classic
	// single-engine semantics byte-for-byte.
	scale   bool
	domains *dev.Domains
	// finLat is the cross-domain completion-hop latency (the network's
	// minimum link latency, which is also the shard group's lookahead).
	finLat sim.Time

	// Communicator-context bookkeeping (see comm.go). commMu guards the
	// maps in scale mode, where ranks on different shards agree on
	// contexts concurrently.
	commMu      sync.Mutex
	commIDs     map[string]int
	nextComm    int
	splitBoards map[[2]int]map[int][2]int

	// ULFM-lite rank-death state (see ulfm.go). A fault plan forces the
	// classic single-engine path, so none of this needs locking. crashed
	// marks ranks whose node died — each unwinds at its next library call;
	// failed marks deaths the job has detected (crash + detection delay),
	// visible to peers' pending operations. anyFailed is the fast path for
	// the per-wait peer check.
	tolerant  bool
	crashed   []bool
	failed    []bool
	anyFailed bool
}

// NewWorld validates the configuration and builds per-rank state. A
// descriptive error (see Config.Validate) is returned instead of the
// panic-later behaviour an invalid Net/Procs combination used to produce.
func NewWorld(cfg Config) (*World, error) {
	// A network built from an invalid platform configuration carries its
	// constructor's error (the builder chain cannot return one); surface it
	// here, before Validate trips over the stub's zero node count.
	if ce, ok := cfg.Net.(dev.ConfigErrer); ok && cfg.Net != nil {
		if err := ce.ConfigErr(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProcsPerNode < 1 {
		cfg.ProcsPerNode = 1
	}
	if cfg.Timeout == 0 {
		if fp, ok := cfg.Net.(dev.FaultPlanner); ok && fp.FaultPlan() != nil {
			diam := 1
			if dr, ok := cfg.Net.(dev.DiameterReporter); ok {
				diam = dr.Diameter()
			}
			cfg.Timeout = faults.ScaledTimeout(cfg.Procs, diam)
		}
	}
	w := &World{
		eng:         cfg.Net.Engine(),
		cfg:         cfg,
		shm:         make([]*shmem.Channel, cfg.Net.Nodes()),
		met:         cfg.Metrics,
		commIDs:     make(map[string]int),
		splitBoards: make(map[[2]int]map[int][2]int),
	}
	w.worldRanks = make([]int, cfg.Procs)
	for i := range w.worldRanks {
		w.worldRanks[i] = i
	}
	// Scale (node-domain) mode: only for domain-capable networks under a
	// domain-clean configuration — no timeline, metrics or span tracing,
	// whose recorders and registries are not safe to mutate from parallel
	// shards. The device may still refuse (fault plan, hardware multicast);
	// then the world keeps classic semantics.
	if dn, ok := cfg.Net.(dev.DomainNetwork); ok &&
		cfg.Timeline == nil && cfg.Metrics == nil && cfg.MsgTrace == nil {
		if lr, ok := cfg.Net.(dev.LookaheadReporter); ok && lr.MinLinkLatency() > 0 {
			if dn.ActivateDomains() {
				w.scale = true
				w.domains = dn.Domains()
				w.finLat = lr.MinLinkLatency()
			}
		}
	}
	// Wire the hardware layers before any endpoint exists, so endpoints
	// created below find the registry and bind their counters.
	if w.met != nil {
		if in, ok := cfg.Net.(metrics.Instrumentable); ok {
			in.InstrumentMetrics(w.met)
		}
		w.eng.Instrument(w.met)
	}
	// Every classic world owns a recorder: the configured one (span tracing
	// on) or a disabled one whose always-on flight ring still captures
	// incidents for the failure postmortem. A scale-mode world runs with a
	// nil recorder instead — even the disabled recorder's trace-context slot
	// is mutable state the parallel shards would race on — and every
	// recorder method is a nil-safe no-op.
	if !w.scale {
		w.rec = cfg.MsgTrace
		if w.rec == nil {
			w.rec = msgtrace.Disabled()
		}
		if ta, ok := cfg.Net.(dev.TraceAttacher); ok {
			ta.AttachTracer(w.rec)
		}
	}
	type shmemConfigurer interface{ ShmemConfig() shmem.Config }
	shmCfg := shmem.DefaultConfig()
	if sc, ok := cfg.Net.(shmemConfigurer); ok {
		shmCfg = sc.ShmemConfig()
	}
	w.procs = make([]*procState, 0, cfg.Procs)
	for r := 0; r < cfg.Procs; r++ {
		node := w.nodeOf(r)
		if w.shm[node] == nil {
			ch := shmem.New(w.engFor(node), shmCfg)
			ch.Instrument(w.met, node)
			w.shm[node] = ch
		}
		ps := &procState{
			world:   w,
			eng:     w.engFor(node),
			rank:    r,
			node:    node,
			ep:      cfg.Net.NewEndpoint(node),
			as:      memreg.NewAddressSpace(),
			prof:    trace.New(),
			waitWhy: fmt.Sprintf("rank%d:wait", r),
		}
		ps.bindMetrics(w.met)
		// Route permanent device failures (retry exhaustion under a fault
		// plan) into the world, attributed to the rank that issued the
		// operation.
		if fr, ok := ps.ep.(dev.FaultReporter); ok {
			rank, node := ps.rank, ps.node
			fr.OnFault(func(err error) {
				var nde *faults.NodeDownError
				if w.tolerant && errors.As(err, &nde) {
					// A transfer ran into a crashed node while the job runs
					// fault-tolerant: the death surfaces on the pending
					// operation as a RankFailedError (see peerFailed), not as
					// a job abort.
					return
				}
				// Freeze the flight ring at the original sin: the recorder
				// fills in the failing message from its last incident entry.
				w.rec.Freeze("device fault: "+err.Error(), w.eng.Now(), rank, msgtrace.StageWire, 0)
				w.fail(fmt.Errorf("mpi: rank %d (node %d): %w", rank, node, err))
			})
		}
		w.procs = append(w.procs, ps)
	}
	w.tolerant = cfg.FaultTolerant
	if fp, ok := cfg.Net.(dev.FaultPlanner); ok && !w.scale {
		if plan := fp.FaultPlan(); plan != nil && len(plan.NodeCrashes) > 0 {
			w.armCrashes(plan)
		}
	}
	return w, nil
}

// MustWorld is NewWorld for configurations known to be valid; it panics on
// a validation error. The internal benchmark and experiment suites use it.
// It re-validates through Config.Validate first so the panic message names
// the offending option ("mpi.MustWorld: invalid Config.Procs: ...") rather
// than surfacing a symptom from deeper in world construction.
func MustWorld(cfg Config) *World {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("mpi.MustWorld: %v", err))
	}
	w, err := NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("mpi.MustWorld: %v", err))
	}
	return w
}

// fail records the job's first fatal error and wakes every rank so each
// aborts at its next progress point. Safe to call from device completion
// events or from rank processes; in scale mode, from any shard's goroutine.
func (w *World) fail(err error) {
	w.faultMu.Lock()
	if w.fault == nil {
		w.fault = err
		w.faultSet.Store(true)
		if !w.scale {
			// Fallback freeze for failure paths that did not freeze with more
			// specific blame (truncation, direct aborts); the first freeze
			// wins, so this is a no-op after a watchdog or device-fault freeze.
			now := w.eng.Now()
			w.rec.Flight(msgtrace.FlightAbort, now, -1, 0, 0, 0, 0)
			w.rec.Freeze("job abort: "+err.Error(), now, -1, msgtrace.NumStages, 0)
		}
	}
	w.faultMu.Unlock()
	if w.scale {
		// Cross-shard wakes would touch other engines' queues mid-window.
		// Ranks observe faultSet at their next progress point; ranks parked
		// with nothing left in flight quiesce, ending the group run, and Run
		// still returns the fault.
		return
	}
	for _, ps := range w.procs {
		ps.progress.Broadcast()
	}
}

// faulted reports whether a job fault has been recorded; safe from any
// shard. Reading w.fault after a true result is ordered by the atomic pair.
func (w *World) faulted() bool { return w.faultSet.Load() }

// engFor returns the engine owning a node's domain: the node's shard engine
// in scale mode, the world engine otherwise.
func (w *World) engFor(node int) *sim.Engine {
	if w.domains == nil {
		return w.eng
	}
	return w.domains.EngineFor(node)
}

// skew is the deterministic per-source tie-breaker added to cross-domain
// completion hops, matching the device models' convention (node index + 1
// picoseconds): it makes event order at the destination independent of the
// shard count without measurably perturbing the modelled latency.
func (w *World) skew(node int) sim.Time {
	if !w.scale {
		return 0
	}
	return sim.Time(node + 1)
}

// nodeOf maps a rank to its node under the configured mapping.
func (w *World) nodeOf(rank int) int {
	switch w.cfg.Mapping {
	case Cyclic:
		nodes := (w.cfg.Procs + w.cfg.ProcsPerNode - 1) / w.cfg.ProcsPerNode
		return rank % nodes
	default: // Block
		return rank / w.cfg.ProcsPerNode
	}
}

// Engine returns the simulation engine (shard 0's when node domains are
// active).
func (w *World) Engine() *sim.Engine { return w.eng }

// ScaleMode reports whether the world activated the network's node-domain
// placement: rank state distributed over the shard group's engines, with
// deterministic cross-domain completion hops. False for every world on a
// classic network or with a domain-unclean configuration.
func (w *World) ScaleMode() bool { return w.scale }

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Procs }

// Run executes main on every rank concurrently (in simulated time) and
// drives the simulation to completion. It returns the error from the event
// loop — notably sim.DeadlockError if the program hangs, the simulation
// analogue of a stuck MPI job — or, on a faulty network, a typed job error:
// one wrapping faults.ErrRetryExhausted when a device gave up retransmitting
// (with the failing rank and link attributed), ErrTimeout when the watchdog
// expired, ErrTruncate on a receive-buffer overflow. Errors are fatal to
// the whole job, as in the paper's MPI implementations.
func (w *World) Run(main func(r *Rank)) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// A rank that noticed w.fault tears the job down with a jobAbort
		// panic; the engine wraps it in a ProcFailure. Recover exactly
		// that pair into an error return; anything else is a real bug and
		// keeps panicking.
		if pf, ok := r.(*sim.ProcFailure); ok {
			if ja, ok := pf.Value.(*jobAbort); ok {
				w.end = w.eng.MaxNow()
				err = ja.err
				return
			}
		}
		panic(r)
	}()
	w.start = w.eng.Now()
	for _, ps := range w.procs {
		ps := ps
		// Each rank's process runs on its node's engine; on a classic world
		// that is the single world engine for every rank.
		proc := ps.eng.Spawn(fmt.Sprintf("rank%d", ps.rank), func(p *sim.Proc) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(*rankKilled); ok {
					// The rank's node crashed: this process dies quietly. The
					// job's fate is decided by how the surviving ranks handle
					// the death, not by the victim's unwinding.
					return
				}
				panic(r)
			}()
			main(&Rank{p: p, ps: ps})
		})
		if w.met != nil {
			pfx := metrics.RankPrefix(ps.rank) + "mpi"
			w.met.ProbeTime(pfx+"/blocked_time", proc.BlockedTime)
			w.met.ProbeTime(pfx+"/slept_time", proc.SleptTime)
		}
	}
	runErr := w.eng.Run()
	// End-of-run clock: the latest shard clock, which for a plain engine is
	// just its Now.
	w.end = w.eng.MaxNow()
	if w.faulted() {
		// A fault was recorded but every rank happened to finish (or the
		// queue drained first): the job still failed. A scale-mode fault
		// surfaces here even when the group run ended in a deadlock report —
		// the fault is the cause, the quiescence only the symptom.
		return w.fault
	}
	return runErr
}

// Metrics returns the registry the world was configured with (nil when
// instrumentation is off).
func (w *World) Metrics() *metrics.Registry { return w.met }

// WriteChromeTrace emits the run as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto): device spans from the metrics registry fused
// with the message timeline's instants, one trace process per node plus one
// for the switching fabric. Works with either source missing. When message
// tracing is on, every sampled message additionally becomes a flow arrow
// from its sender's rank lane at post time to its receiver's at delivery.
func (w *World) WriteChromeTrace(out io.Writer) error {
	var spans []metrics.Span
	if w.met != nil {
		spans = w.met.Spans()
	}
	var events []trace.Event
	if w.cfg.Timeline != nil {
		events = w.cfg.Timeline.Events
	}
	var flows []metrics.Flow
	for _, m := range w.rec.Msgs() {
		if m.End <= m.Start {
			continue // never delivered (aborted run); no arrowhead to draw
		}
		flows = append(flows, metrics.Flow{
			ID:       uint64(m.ID),
			Name:     fmt.Sprintf("msg %s %dB", m.Kind, m.Bytes),
			SrcNode:  w.nodeOf(int(m.Src)),
			SrcTrack: fmt.Sprintf("rank%d", m.Src),
			DstNode:  w.nodeOf(int(m.Dst)),
			DstTrack: fmt.Sprintf("rank%d", m.Dst),
			Start:    m.Start,
			End:      m.End,
			Args: map[string]any{
				"src": m.Src, "dst": m.Dst, "tag": m.Tag, "bytes": m.Bytes,
			},
		})
	}
	return metrics.WriteChromeTraceWithFlows(out, spans, events, w.nodeOf, flows)
}

// MsgTrace returns the world's message-trace recorder: the one configured
// via Config.MsgTrace, or the default disabled recorder whose always-on
// flight ring still captured recent incidents. Nil only for a scale-mode
// world (node domains active), which runs without a recorder; every
// recorder method is a nil-safe no-op, so callers need not check.
func (w *World) MsgTrace() *msgtrace.Recorder { return w.rec }

// FlightDump writes the flight-recorder postmortem: the ring frozen at the
// first failure if the run failed, the live ring otherwise.
func (w *World) FlightDump(out io.Writer) { w.rec.DumpFlight(out) }

// Elapsed returns the simulated wall-clock time of the last Run.
func (w *World) Elapsed() sim.Time { return w.end - w.start }

// Profile returns the communication profile of a rank.
func (w *World) Profile(rank int) *trace.Profile { return w.procs[rank].prof }

// AggregateProfile merges all ranks' profiles.
func (w *World) AggregateProfile() *trace.Profile {
	agg := trace.New()
	for _, ps := range w.procs {
		agg.Merge(ps.prof)
	}
	return agg
}

// HostBusy returns the accumulated host CPU time a rank spent inside the
// MPI library (the quantity behind the paper's host-overhead figure).
func (w *World) HostBusy(rank int) sim.Time { return w.procs[rank].hostBusy }

// MemoryUsage returns the library + device memory footprint of one rank:
// the device's per-connection resources plus shared-memory segments toward
// co-located ranks. Classic worlds report the fully connected footprint —
// Figure 13's quantity, where every rank pair holds static RC state. Scale
// (node-domain) worlds account established connections instead: the rank
// pairs that actually exchanged NIC traffic, which is what a thousand-rank
// job's memory looks like in practice (the paper's Section 3.8 argument) —
// a 1024-rank neighbor exchange holds a few peers' state, not 1023.
func (w *World) MemoryUsage(rank int) int64 {
	ps := w.procs[rank]
	peers := w.cfg.Procs - 1
	if w.scale {
		peers = ps.nicPeerCount
	}
	mem := ps.ep.MemoryUsage(peers)
	if ch := w.shm[ps.node]; ch != nil {
		co := 0
		for r := 0; r < w.cfg.Procs; r++ {
			if r != rank && w.nodeOf(r) == ps.node {
				co++
			}
		}
		mem += int64(co) * ch.SegmentSize()
	}
	return mem
}

// Utilizations returns per-resource busy-time accounting when the network
// supports it (all built-in devices do), or nil.
func (w *World) Utilizations() []dev.Utilization {
	if ur, ok := w.cfg.Net.(dev.UtilizationReporter); ok {
		return ur.Utilizations()
	}
	return nil
}

// shmemBelow is the interconnect's intra-node channel policy.
func (w *World) shmemBelow() int64 {
	return w.cfg.Net.ShmemBelow()
}

// internal tag space for collectives; user tags must be non-negative.
const (
	tagBarrier   = -10
	tagBcast     = -11
	tagReduce    = -12
	tagAllreduce = -13
	tagAlltoall  = -14
	tagAllgather = -15
	tagGather    = -16
)

// AnySource matches any sending rank in Recv/Irecv.
const AnySource = -1

// AnyTag matches any tag in Recv/Irecv.
const AnyTag = math.MinInt32

// The Set* methods below let functional options (internal/cluster, and the
// root package's re-exports) adjust a Config without that package importing
// mpi — they implement cluster.WorldSetter.

// SetProcsPerNode sets Config.ProcsPerNode.
func (c *Config) SetProcsPerNode(n int) { c.ProcsPerNode = n }

// SetMapping sets Config.Mapping from its integer value.
func (c *Config) SetMapping(m int) { c.Mapping = Mapping(m) }

// SetTimeline sets Config.Timeline.
func (c *Config) SetTimeline(tl *trace.Timeline) { c.Timeline = tl }

// SetMetrics sets Config.Metrics.
func (c *Config) SetMetrics(m *metrics.Registry) { c.Metrics = m }

// SetTimeout sets Config.Timeout.
func (c *Config) SetTimeout(d sim.Time) { c.Timeout = d }

// SetMsgTrace sets Config.MsgTrace.
func (c *Config) SetMsgTrace(rec *msgtrace.Recorder) { c.MsgTrace = rec }

// SetFaultTolerant sets Config.FaultTolerant.
func (c *Config) SetFaultTolerant(on bool) { c.FaultTolerant = on }
