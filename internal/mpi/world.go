// Package mpi implements an MPICH-style MPI library on top of the simulated
// interconnects: the eager and rendezvous point-to-point protocols with
// posted/unexpected queues and tag matching, non-blocking operations with an
// explicit progress engine, the collectives the paper's workloads use
// (implemented over point-to-point, as MPICH 1.2.x does), an intra-node
// shared-memory channel, per-rank profiling, and memory-usage accounting.
//
// The division of labour mirrors MPICH's ADI2: this package is the
// device-independent layer; everything interconnect-specific enters through
// dev.Endpoint (see internal/dev).
package mpi

import (
	"fmt"
	"io"
	"math"

	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
)

// Mapping selects how ranks are placed on nodes.
type Mapping int

// Mappings. Block fills each node before moving on (the paper's SMP runs
// use block mapping); Cyclic deals ranks round-robin.
const (
	Block Mapping = iota
	Cyclic
)

// Config describes an MPI job on a wired network.
type Config struct {
	// Net is the interconnect the job runs on.
	Net dev.Network
	// Procs is the number of MPI ranks.
	Procs int
	// ProcsPerNode is how many ranks share a node (default 1).
	ProcsPerNode int
	// Mapping is the rank-to-node placement (default Block).
	Mapping Mapping
	// Timeline, when non-nil, collects message-level events from the run
	// (see trace.Timeline).
	Timeline *trace.Timeline
	// Metrics, when non-nil, wires every layer — engine, bus, NIC, fabric,
	// shared memory and this library — into the registry. Off (nil) by
	// default; enabling it does not perturb simulated time.
	Metrics *metrics.Registry
}

// World is one MPI job: a set of ranks wired to a network, ready to Run a
// program.
type World struct {
	eng   *sim.Engine
	cfg   Config
	procs []*procState
	shm   map[int]*shmem.Channel
	met   *metrics.Registry
	start sim.Time
	end   sim.Time

	// Communicator-context bookkeeping (see comm.go).
	commIDs     map[string]int
	nextComm    int
	splitBoards map[[2]int]map[int][2]int
}

// NewWorld validates the configuration and builds per-rank state.
func NewWorld(cfg Config) *World {
	if cfg.Net == nil {
		panic("mpi: Config.Net is required")
	}
	if cfg.Procs < 1 {
		panic("mpi: need at least one process")
	}
	if cfg.ProcsPerNode < 1 {
		cfg.ProcsPerNode = 1
	}
	nodes := cfg.Net.Nodes()
	if cfg.Procs > nodes*cfg.ProcsPerNode {
		panic(fmt.Sprintf("mpi: %d procs do not fit on %d nodes x %d", cfg.Procs, nodes, cfg.ProcsPerNode))
	}
	w := &World{
		eng:         cfg.Net.Engine(),
		cfg:         cfg,
		shm:         make(map[int]*shmem.Channel),
		met:         cfg.Metrics,
		commIDs:     make(map[string]int),
		splitBoards: make(map[[2]int]map[int][2]int),
	}
	// Wire the hardware layers before any endpoint exists, so endpoints
	// created below find the registry and bind their counters.
	if w.met != nil {
		if in, ok := cfg.Net.(metrics.Instrumentable); ok {
			in.InstrumentMetrics(w.met)
		}
		w.eng.Instrument(w.met)
	}
	type shmemConfigurer interface{ ShmemConfig() shmem.Config }
	shmCfg := shmem.DefaultConfig()
	if sc, ok := cfg.Net.(shmemConfigurer); ok {
		shmCfg = sc.ShmemConfig()
	}
	for r := 0; r < cfg.Procs; r++ {
		node := w.nodeOf(r)
		if _, ok := w.shm[node]; !ok {
			ch := shmem.New(w.eng, shmCfg)
			ch.Instrument(w.met, node)
			w.shm[node] = ch
		}
		ps := &procState{
			world:    w,
			rank:     r,
			node:     node,
			ep:       cfg.Net.NewEndpoint(node),
			as:       memreg.NewAddressSpace(),
			prof:     trace.New(),
			splitGen: make(map[int]int),
		}
		ps.bindMetrics(w.met)
		w.procs = append(w.procs, ps)
	}
	return w
}

// nodeOf maps a rank to its node under the configured mapping.
func (w *World) nodeOf(rank int) int {
	switch w.cfg.Mapping {
	case Cyclic:
		nodes := (w.cfg.Procs + w.cfg.ProcsPerNode - 1) / w.cfg.ProcsPerNode
		return rank % nodes
	default: // Block
		return rank / w.cfg.ProcsPerNode
	}
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Procs }

// Run executes main on every rank concurrently (in simulated time) and
// drives the simulation to completion. It returns the error from the event
// loop — notably sim.DeadlockError if the program hangs, the simulation
// analogue of a stuck MPI job.
func (w *World) Run(main func(r *Rank)) error {
	w.start = w.eng.Now()
	for _, ps := range w.procs {
		ps := ps
		proc := w.eng.Spawn(fmt.Sprintf("rank%d", ps.rank), func(p *sim.Proc) {
			main(&Rank{p: p, ps: ps})
		})
		if w.met != nil {
			pfx := metrics.RankPrefix(ps.rank) + "mpi"
			w.met.ProbeTime(pfx+"/blocked_time", proc.BlockedTime)
			w.met.ProbeTime(pfx+"/slept_time", proc.SleptTime)
		}
	}
	err := w.eng.Run()
	w.end = w.eng.Now()
	return err
}

// Metrics returns the registry the world was configured with (nil when
// instrumentation is off).
func (w *World) Metrics() *metrics.Registry { return w.met }

// WriteChromeTrace emits the run as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto): device spans from the metrics registry fused
// with the message timeline's instants, one trace process per node plus one
// for the switching fabric. Works with either source missing.
func (w *World) WriteChromeTrace(out io.Writer) error {
	var spans []metrics.Span
	if w.met != nil {
		spans = w.met.Spans()
	}
	var events []trace.Event
	if w.cfg.Timeline != nil {
		events = w.cfg.Timeline.Events
	}
	return metrics.WriteChromeTrace(out, spans, events, w.nodeOf)
}

// Elapsed returns the simulated wall-clock time of the last Run.
func (w *World) Elapsed() sim.Time { return w.end - w.start }

// Profile returns the communication profile of a rank.
func (w *World) Profile(rank int) *trace.Profile { return w.procs[rank].prof }

// AggregateProfile merges all ranks' profiles.
func (w *World) AggregateProfile() *trace.Profile {
	agg := trace.New()
	for _, ps := range w.procs {
		agg.Merge(ps.prof)
	}
	return agg
}

// HostBusy returns the accumulated host CPU time a rank spent inside the
// MPI library (the quantity behind the paper's host-overhead figure).
func (w *World) HostBusy(rank int) sim.Time { return w.procs[rank].hostBusy }

// MemoryUsage returns the library + device memory footprint of one rank
// once fully connected (Figure 13's quantity). It comprises the device's
// per-connection resources and shared-memory segments toward co-located
// ranks.
func (w *World) MemoryUsage(rank int) int64 {
	ps := w.procs[rank]
	peers := w.cfg.Procs - 1
	mem := ps.ep.MemoryUsage(peers)
	if ch, ok := w.shm[ps.node]; ok {
		co := 0
		for r := 0; r < w.cfg.Procs; r++ {
			if r != rank && w.nodeOf(r) == ps.node {
				co++
			}
		}
		mem += int64(co) * ch.SegmentSize()
	}
	return mem
}

// Utilizations returns per-resource busy-time accounting when the network
// supports it (all built-in devices do), or nil.
func (w *World) Utilizations() []dev.Utilization {
	if ur, ok := w.cfg.Net.(dev.UtilizationReporter); ok {
		return ur.Utilizations()
	}
	return nil
}

// shmemBelow is the interconnect's intra-node channel policy.
func (w *World) shmemBelow() int64 {
	if len(w.shm) == 0 {
		return 0
	}
	return w.cfg.Net.ShmemBelow()
}

// internal tag space for collectives; user tags must be non-negative.
const (
	tagBarrier   = -10
	tagBcast     = -11
	tagReduce    = -12
	tagAllreduce = -13
	tagAlltoall  = -14
	tagAllgather = -15
	tagGather    = -16
)

// AnySource matches any sending rank in Recv/Irecv.
const AnySource = -1

// AnyTag matches any tag in Recv/Irecv.
const AnyTag = math.MinInt32
