package mpi

import (
	"mpinet/internal/memreg"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   int64
	// Err is non-nil when the operation completed exceptionally under
	// Config.FaultTolerant: the peer rank died and the wait was resolved
	// with a *RankFailedError (errors.Is(Err, ErrRankFailed)) instead of a
	// message. Size is 0 and Source names the dead rank in that case.
	Err error
}

// Request is a non-blocking operation handle, completed through Wait /
// Waitall.
type Request struct {
	ps      *procState
	isSend  bool
	buf     memreg.Buf
	comm    int // communicator context id
	peer    int // destination (sends) — senders always name their target
	src     int // source pattern (receives); may be AnySource
	tag     int
	size    int64
	seq     int64
	tid     msgtrace.ID // sends: the message's trace ID
	born    sim.Time    // post time, for request-lifetime accounting
	hsStart sim.Time    // rendezvous sends: when the RTS left, for the handshake span
	rndv    bool
	done    bool
	// pooled marks a request that never escapes its blocking caller:
	// waitOne returns it to the rank's free list once complete.
	pooled bool

	matched *inMsg // receives: the arrival this request is bound to
	status  Status
}

// newRequest takes a zeroed Request from the rank's free list, allocating
// only on a pool miss. Requests are owned by their rank's shard, so the
// per-rank pool needs no locking even in scale mode.
func (ps *procState) newRequest() *Request {
	if n := len(ps.reqFree); n > 0 {
		r := ps.reqFree[n-1]
		ps.reqFree[n-1] = nil
		ps.reqFree = ps.reqFree[:n-1]
		return r
	}
	ps.reqAllocs++
	return &Request{}
}

// releaseReq zeroes a completed pooled request and returns it to the free
// list. Only waitOne calls it, and only for requests flagged pooled — a
// request handed to the user (Isend/Irecv) is never recycled.
func (ps *procState) releaseReq(r *Request) {
	*r = Request{}
	ps.reqFree = append(ps.reqFree, r)
}

// Done reports whether the operation has completed (MPI_Test without the
// progress side effects; use Rank.Test to also drive progress).
func (r *Request) Done() bool { return r.done }

// complete marks a receive finished and detaches it from the queues.
func (r *Request) complete(src, tag int, size int64) {
	if size > r.buf.Size {
		// MPI_ERR_TRUNCATE: the payload does not fit the posted buffer. As
		// in an MPI run with errors-are-fatal, that is a hard stop naming
		// the culprit — recorded as the job's fault so World.Run returns a
		// typed error (errors.Is(err, ErrTruncate)) once the ranks abort.
		r.ps.world.fail(&TruncateError{
			Rank: r.ps.rank, Src: src, Tag: tag, Size: size, Buf: r.buf.Size,
		})
		return
	}
	r.done = true
	r.status = Status{Source: src, Tag: tag, Size: size}
	r.ps.removePosted(r)
	if r.matched != nil {
		r.ps.world.rec.Finish(r.matched.tid, r.ps.eng.Now())
	}
	r.ps.record(trace.EvRecvDone, src, tag, r.comm, size)
	r.ps.finishReq(r, "recv")
	r.ps.notify()
}

// completeSend marks a send finished.
func (r *Request) completeSend() {
	r.done = true
	r.ps.record(trace.EvSendDone, r.peer, r.tag, r.comm, r.size)
	r.ps.finishReq(r, "send")
	r.ps.notify()
}
