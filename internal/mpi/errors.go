package mpi

import (
	"errors"
	"fmt"

	"mpinet/internal/sim"
)

// Sentinel errors, matched with errors.Is. Every job-level failure World.Run
// returns wraps one of these (or faults.ErrRetryExhausted, which the device
// layer owns): errors-are-fatal is the only error model, as in the paper's
// MPI implementations, but the error is typed and attributed instead of a
// panic string.
var (
	// ErrTimeout marks a blocking MPI operation that out-waited the
	// configured watchdog (Config.Timeout) — the faulty-run replacement for
	// an indefinite hang.
	ErrTimeout = errors.New("operation timed out")
	// ErrTruncate marks MPI_ERR_TRUNCATE: a message larger than the posted
	// receive buffer.
	ErrTruncate = errors.New("message truncation")
	// ErrRankFailed marks an operation that could not complete because the
	// peer rank died (its node crashed). With Config.FaultTolerant the error
	// arrives on the completed operation's Status.Err — ULFM-style rank-death
	// notification, the job survives; without it, the first such operation
	// aborts the job with this error.
	ErrRankFailed = errors.New("peer rank failed")
)

// TimeoutError is the concrete error behind ErrTimeout: which rank gave up
// waiting, on what, after how long.
type TimeoutError struct {
	Rank  int
	Op    string // the wait description, e.g. "recv from rank 3 (tag 0)"
	After sim.Time
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s: no progress after %v: %v", e.Rank, e.Op, e.After, ErrTimeout)
}

// Unwrap makes errors.Is(err, ErrTimeout) hold.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// TruncateError is the concrete error behind ErrTruncate, naming the
// culprit message.
type TruncateError struct {
	Rank, Src, Tag int
	Size, Buf      int64
}

func (e *TruncateError) Error() string {
	return fmt.Sprintf("mpi: rank %d: message truncation: %d-byte message from rank %d (tag %d) into %d-byte buffer: %v",
		e.Rank, e.Size, e.Src, e.Tag, e.Buf, ErrTruncate)
}

// Unwrap makes errors.Is(err, ErrTruncate) hold.
func (e *TruncateError) Unwrap() error { return ErrTruncate }

// RankFailedError is the concrete error behind ErrRankFailed: which rank
// observed the death, which peer died, during what operation.
type RankFailedError struct {
	Rank   int    // the rank whose operation failed
	Failed int    // the dead peer rank
	Op     string // the wait description, e.g. "recv from rank 3 (tag 0)"
	At     sim.Time
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s: rank %d is dead (noticed %v): %v",
		e.Rank, e.Op, e.Failed, e.At, ErrRankFailed)
}

// Unwrap makes errors.Is(err, ErrRankFailed) hold.
func (e *RankFailedError) Unwrap() error { return ErrRankFailed }

// jobAbort is the panic value a rank process raises to tear the job down
// once the world has recorded a fatal fault. World.Run recovers it and
// returns the recorded error; any other panic value propagates unchanged.
type jobAbort struct{ err error }

// rankKilled is the panic value a crashed rank's process raises to unwind
// itself without failing the job: its node died, the process is gone, but
// the job's fate is decided by how the surviving ranks handle the death.
// Recovered inside the rank's own spawn wrapper, never seen by the engine.
type rankKilled struct{ rank int }
