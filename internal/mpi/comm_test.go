package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestCommWorldMirrorsRank(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		if c.Rank() != r.Rank() || c.Size() != r.Size() {
			t.Errorf("world comm mismatch: %d/%d vs %d/%d", c.Rank(), c.Size(), r.Rank(), r.Size())
		}
		if c.WorldRank(c.Rank()) != r.Rank() {
			t.Error("identity translation broken")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommSendRecv(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		buf := r.Malloc(1024)
		if c.Rank() == 0 {
			c.Send(buf, 1, 5)
		} else {
			st := c.Recv(buf, 0, 5)
			if st.Source != 0 || st.Size != 1024 {
				t.Errorf("status %+v", st)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(8), Procs: 8})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		sub := c.Split(r.Rank()%2, r.Rank())
		if sub.Size() != 4 {
			t.Errorf("rank %d: split size %d, want 4", r.Rank(), sub.Size())
		}
		if want := r.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.Rank(), sub.Rank(), want)
		}
		// Communicate within the subgroup: ring sendrecv.
		buf := r.Malloc(256)
		next := (sub.Rank() + 1) % sub.Size()
		prev := (sub.Rank() - 1 + sub.Size()) % sub.Size()
		rr := sub.Irecv(buf, prev, 9)
		sub.Send(buf, next, 9)
		st := sub.Wait(rr)
		if st.Source != prev {
			t.Errorf("rank %d: sub recv source %d, want %d", r.Rank(), st.Source, prev)
		}
		// Subgroup collectives work and stay inside the group.
		sub.Allreduce(buf)
		sub.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		// All one color; keys reverse the order.
		sub := c.Split(0, -r.Rank())
		want := c.Size() - 1 - r.Rank()
		if sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.Rank(), sub.Rank(), want)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestContextIsolation(t *testing.T) {
	// A message sent on a duplicate must not match a receive on the world
	// communicator with the same source and tag.
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		dup := c.Dup()
		buf := r.Malloc(64)
		if r.Rank() == 0 {
			dup.Send(buf, 1, 3) // context: dup
			r.Send(buf, 1, 3)   // context: world
		} else {
			// Receive the world message first even though the dup message
			// arrived earlier.
			r.Compute(units.FromMicros(200))
			st := r.Recv(buf, 0, 3)
			if st.Size != 64 {
				t.Errorf("world recv: %+v", st)
			}
			dst := dup.Recv(buf, 0, 3)
			if dst.Source != 0 {
				t.Errorf("dup recv: %+v", dst)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSplitsIsolated(t *testing.T) {
	// Two back-to-back splits produce distinct contexts and consistent
	// groups.
	w := MustWorld(Config{Net: cluster.QSN().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		c := r.CommWorld()
		a := c.Split(r.Rank()%2, 0)
		b := c.Split(r.Rank()/2, 0)
		if a.id == b.id {
			t.Errorf("rank %d: splits share context %d", r.Rank(), a.id)
		}
		a.Barrier()
		b.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSingletonGroups(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		sub := r.CommWorld().Split(r.Rank(), 0) // every rank its own group
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("rank %d: singleton group %d/%d", r.Rank(), sub.Rank(), sub.Size())
		}
		sub.Barrier() // trivial but must not hang
		sub.Allreduce(r.Malloc(64))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSubCommCollectivesRespectGroup(t *testing.T) {
	// Row communicators of a 2x4 grid: a row barrier must not wait for the
	// other row.
	w := MustWorld(Config{Net: cluster.IBA().New(8), Procs: 8})
	exits := make([]sim.Time, 8)
	if err := w.Run(func(r *Rank) {
		row := r.Rank() / 4
		sub := r.CommWorld().Split(row, r.Rank())
		if row == 1 {
			// Row 1 dawdles; row 0's barrier must not be delayed by it.
			r.Compute(units.FromSeconds(0.01))
		}
		sub.Barrier()
		exits[r.Rank()] = r.Wtime()
	}); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		if exits[rank] > units.FromSeconds(0.005) {
			t.Errorf("row 0 rank %d exited at %v — waited for row 1", rank, exits[rank])
		}
	}
}

func TestCommIsendIrecv(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		sub := r.CommWorld().Split(r.Rank()%2, 0)
		buf := r.Malloc(32 * units.KB) // rendezvous within the subgroup
		peer := 1 - sub.Rank()
		rr := sub.Irecv(buf, peer, 0)
		sr := sub.Isend(buf, peer, 0)
		sub.Wait(sr)
		st := sub.Wait(rr)
		if st.Source != peer {
			t.Errorf("sub irecv source %d, want %d", st.Source, peer)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommRecvAnySourceTranslatesRank(t *testing.T) {
	// A sub-communicator receive from AnySource must report the source as a
	// communicator rank, not a world rank.
	w := MustWorld(Config{Net: cluster.IBA().New(8), Procs: 8})
	if err := w.Run(func(r *Rank) {
		// Odd ranks form a group: world ranks 1,3,5,7 -> comm ranks 0..3.
		sub := r.CommWorld().Split(r.Rank()%2, 0)
		if r.Rank()%2 == 1 {
			buf := r.Malloc(64)
			if sub.Rank() == 0 { // world rank 1
				st := sub.Recv(buf, AnySource, 5)
				if st.Source != 3 { // world rank 7 is comm rank 3
					t.Errorf("source = %d (comm rank), want 3", st.Source)
				}
			} else if sub.Rank() == 3 { // world rank 7
				sub.Send(buf, 0, 5)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCommWaitTranslatesSource(t *testing.T) {
	w := MustWorld(Config{Net: cluster.QSN().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		sub := r.CommWorld().Split(0, -r.Rank()) // reversed order, all together
		buf := r.Malloc(128)
		me := sub.Rank()
		peer := sub.Size() - 1 - me
		if me == peer {
			return
		}
		rr := sub.Irecv(buf, peer, 1)
		sub.Send(buf, peer, 1)
		st := sub.Wait(rr)
		if st.Source != peer {
			t.Errorf("comm rank %d: source %d, want %d", me, st.Source, peer)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankBoundsPanic(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range WorldRank did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		r.CommWorld().WorldRank(5)
	})
}

func TestSpawnDuringRun(t *testing.T) {
	// Engine.Spawn from inside a running process (dynamic process creation)
	// must interleave deterministically.
	e := sim.New()
	var order []int
	e.Spawn("parent", func(p *sim.Proc) {
		order = append(order, 1)
		e.Spawn("child", func(c *sim.Proc) {
			order = append(order, 2)
			c.Sleep(10)
			order = append(order, 4)
		})
		p.Sleep(5)
		order = append(order, 3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 3 || order[3] != 4 {
		t.Fatalf("order = %v", order)
	}
}
