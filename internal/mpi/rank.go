package mpi

import (
	"fmt"

	"mpinet/internal/memreg"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
)

// Rank is the MPI handle a rank's program uses — the analogue of
// MPI_COMM_WORLD plus the process-local calls. It is only valid inside the
// function passed to World.Run and must not be shared across ranks.
type Rank struct {
	p  *sim.Proc
	ps *procState
}

// Rank returns this process's rank in the world.
func (r *Rank) Rank() int { return r.ps.rank }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.ps.world.Size() }

// Node returns the node index this rank is mapped to.
func (r *Rank) Node() int { return r.ps.node }

// Wtime returns the current simulated time (MPI_Wtime).
func (r *Rank) Wtime() sim.Time { return r.p.Now() }

// Malloc allocates a fresh buffer in this rank's address space. Buffer
// identity feeds the registration caches and the reuse statistics, so
// benchmarks exercising reuse patterns must allocate rather than fabricate
// buffers.
func (r *Rank) Malloc(size int64) memreg.Buf { return r.ps.as.Alloc(size) }

// Compute advances simulated time by d of application computation. The MPI
// library makes no progress during it — exactly the behaviour the overlap
// micro-benchmark quantifies.
func (r *Rank) Compute(d sim.Time) { r.p.Sleep(d) }

// HostBusy returns the host CPU time this rank has spent inside the MPI
// library so far.
func (r *Rank) HostBusy() sim.Time { return r.ps.hostBusy }

// Send performs a blocking standard-mode send.
func (r *Rank) Send(buf memreg.Buf, dst, tag int) {
	req := r.ps.isendImpl(r.p, buf, dst, tag, false)
	req.pooled = true
	r.waitOne(req)
}

// Ssend performs a blocking synchronous send (MPI_Ssend): it completes only
// once the receiver has posted the matching receive. Implemented, as MPICH
// does, by forcing the rendezvous protocol regardless of size.
func (r *Rank) Ssend(buf memreg.Buf, dst, tag int) {
	if dst < 0 || dst >= r.Size() {
		panic("mpi: Ssend to invalid rank")
	}
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	ps := r.ps
	ps.poll(r.p)
	dstPS := ps.world.procs[dst]
	if !ps.quiet {
		ps.prof.Send(buf, dstPS.node == ps.node, false)
	}
	req := ps.newRequest()
	*req = Request{ps: ps, isSend: true, buf: buf, comm: commWorldID, peer: dst, tag: tag, size: buf.Size, born: ps.eng.Now(), pooled: true}
	ps.sendSeq++
	req.seq = ps.sendSeq
	req.tid = msgtrace.MakeID(ps.rank, req.seq)
	ps.record(trace.EvSendStart, dst, tag, commWorldID, buf.Size)
	ps.world.rec.Begin(req.tid, int32(ps.rank), int32(dst), int32(tag), req.size, msgtrace.KindRndv, req.born)
	if dstPS.node != ps.node {
		ps.markNICPeer(dst)
	}
	ps.rndvSend(r.p, req, dstPS)
	r.waitOne(req)
}

// Bsend performs a buffered send (MPI_Bsend): the payload is copied into
// attached buffer space and the call returns immediately, whatever the
// size. Modelled as the host copy plus a send from library-owned staging
// whose completion the library, not the caller, owns.
func (r *Rank) Bsend(buf memreg.Buf, dst, tag int) {
	if dst < 0 || dst >= r.Size() {
		panic("mpi: Bsend to invalid rank")
	}
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	ps := r.ps
	ps.poll(r.p)
	ps.busy(r.p, ps.ep.CopyTime(buf.Size))
	if !ps.quiet {
		ps.prof.Send(buf, ps.world.procs[dst].node == ps.node, false)
	}
	ps.quiet = true
	staging := ps.scratch(buf.Size)
	ps.startSend(r.p, staging, commWorldID, dst, tag, false)
	ps.quiet = false
}

// Recv performs a blocking receive. src may be AnySource, tag may be AnyTag.
func (r *Rank) Recv(buf memreg.Buf, src, tag int) Status {
	req := r.ps.irecvImpl(r.p, buf, src, tag, false)
	req.pooled = true
	return r.waitOne(req)
}

// Isend starts a non-blocking send.
func (r *Rank) Isend(buf memreg.Buf, dst, tag int) *Request {
	return r.ps.isendImpl(r.p, buf, dst, tag, true)
}

// Irecv starts a non-blocking receive.
func (r *Rank) Irecv(buf memreg.Buf, src, tag int) *Request {
	return r.ps.irecvImpl(r.p, buf, src, tag, true)
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req *Request) Status {
	if req == nil || req.ps != r.ps {
		panic("mpi: Wait on foreign or nil request")
	}
	return r.waitOne(req)
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(reqs ...*Request) {
	for _, req := range reqs {
		if req != nil {
			r.Wait(req)
		}
	}
}

// Test drives progress once and reports whether the request has completed.
func (r *Rank) Test(req *Request) bool {
	r.ps.poll(r.p)
	return req.done
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status (MPI_Waitany). Completed requests are not removed
// from the slice; the caller tracks which indices were returned.
func (r *Rank) Waitany(reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	idx := -1
	r.ps.waitFor(r.p, "waitany", func() bool {
		for i, req := range reqs {
			if req != nil && !req.done {
				if failed, ok := r.ps.world.peerFailed(req); ok {
					r.ps.failPeer(req, failed, "waitany")
				}
			}
			if req != nil && req.done {
				idx = i
				return true
			}
		}
		return false
	})
	return idx, reqs[idx].status
}

// Sendrecv performs the blocking exchange (MPI_Sendrecv).
func (r *Rank) Sendrecv(sendBuf memreg.Buf, dst, sendTag int, recvBuf memreg.Buf, src, recvTag int) Status {
	rr := r.ps.irecvImpl(r.p, recvBuf, src, recvTag, false)
	rr.pooled = true
	sr := r.ps.isendImpl(r.p, sendBuf, dst, sendTag, false)
	sr.pooled = true
	r.waitOne(sr)
	return r.waitOne(rr)
}

func (r *Rank) waitOne(req *Request) Status {
	why := r.ps.waitWhy
	if r.ps.world.cfg.Timeout > 0 {
		// With the watchdog armed, spend a little on a descriptive wait
		// reason so a TimeoutError names the stuck operation and peer.
		if req.isSend {
			why = fmt.Sprintf("send to rank %d (tag %d, %d B)", req.peer, req.tag, req.size)
		} else if req.src == AnySource {
			why = fmt.Sprintf("recv from any source (tag %d)", req.tag)
		} else {
			why = fmt.Sprintf("recv from rank %d (tag %d)", req.src, req.tag)
		}
	}
	r.ps.waitFor(r.p, why, func() bool {
		if !req.done {
			// Rank-death notification: a wait on a dead peer resolves —
			// exceptionally completed under FaultTolerant, a typed job abort
			// otherwise — instead of riding the watchdog to a TimeoutError.
			if failed, ok := r.ps.world.peerFailed(req); ok {
				r.ps.failPeer(req, failed, why)
			}
		}
		return req.done
	})
	st := req.status
	if req.pooled {
		r.ps.releaseReq(req)
	}
	return st
}

// sendInternal/recvInternal are used by collectives: they bypass user-tag
// validation (internal tags are negative) but are otherwise full sends.
func (r *Rank) sendInternal(buf memreg.Buf, dst, tag int) {
	r.ps.poll(r.p)
	req := r.ps.startSend(r.p, buf, commWorldID, dst, tag, false)
	req.pooled = true
	r.waitOne(req)
}

func (r *Rank) isendInternal(buf memreg.Buf, dst, tag int) *Request {
	r.ps.poll(r.p)
	req := r.ps.startSend(r.p, buf, commWorldID, dst, tag, true)
	req.pooled = true // collectives always waitOne their internal requests
	return req
}

func (r *Rank) irecvInternal(buf memreg.Buf, src, tag int) *Request {
	r.ps.poll(r.p)
	req := r.ps.startRecv(r.p, buf, commWorldID, src, tag, true)
	req.pooled = true
	return req
}

func (r *Rank) recvInternal(buf memreg.Buf, src, tag int) {
	r.ps.poll(r.p)
	req := r.ps.startRecv(r.p, buf, commWorldID, src, tag, false)
	req.pooled = true
	r.waitOne(req)
}
