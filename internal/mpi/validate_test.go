package mpi

import (
	"errors"
	"strings"
	"testing"

	"mpinet/internal/cluster"
)

// TestValidateNamesOffendingOption: every validation failure is a
// *ConfigError carrying the Config field that caused it.
func TestValidateNamesOffendingOption(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		option string
	}{
		{"nil net", Config{Procs: 2}, "Net"},
		{"zero procs", Config{Net: cluster.IBA().New(2)}, "Procs"},
		{"negative ppn", Config{Net: cluster.IBA().New(2), Procs: 2, ProcsPerNode: -1}, "ProcsPerNode"},
		{"overfull", Config{Net: cluster.IBA().New(2), Procs: 5, ProcsPerNode: 2}, "Procs"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error is %T, want *ConfigError: %v", tc.name, err, err)
			continue
		}
		if ce.Option != tc.option {
			t.Errorf("%s: blamed option %q, want %q (%v)", tc.name, ce.Option, tc.option, err)
		}
	}
}

// TestMustWorldPanicNamesOption: the panic message carries the offending
// option name, not just a symptom.
func TestMustWorldPanicNamesOption(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustWorld accepted an invalid config")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Config.Procs") {
			t.Fatalf("panic message does not name the offending option: %v", r)
		}
	}()
	MustWorld(Config{Net: cluster.IBA().New(2), Procs: 5, ProcsPerNode: 2})
}
