package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
)

// shardWorkload is a mixed point-to-point/collective program whose per-rank
// completion times expose any divergence between serial and sharded
// execution down to the picosecond.
func shardWorkload(w *World) ([]sim.Time, error) {
	finish := make([]sim.Time, 8)
	err := w.Run(func(r *Rank) {
		buf := r.Malloc(4096)
		small := r.Malloc(64)
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for i := 0; i < 4; i++ {
			r.Sendrecv(buf, next, 0, buf, prev, 0)
			r.Allreduce(small)
		}
		r.Alltoall(buf, r.Malloc(4096))
		r.Barrier()
		finish[r.Rank()] = r.Wtime()
	})
	return finish, err
}

// TestWorldDeterministicAcrossShards runs the same world once on the serial
// engine and once on a 4-shard group, on each fabric, and requires every
// rank to finish at exactly the same simulated time.
func TestWorldDeterministicAcrossShards(t *testing.T) {
	for _, p := range []cluster.Platform{cluster.IBA(), cluster.Myri(), cluster.QSN()} {
		serial, err := shardWorkload(MustWorld(Config{Net: p.New(8), Procs: 8}))
		if err != nil {
			t.Fatalf("%s serial: %v", p.Name, err)
		}
		sharded, err := shardWorkload(MustWorld(Config{
			Net: p.With(cluster.WithShards(4)).New(8), Procs: 8,
		}))
		if err != nil {
			t.Fatalf("%s sharded: %v", p.Name, err)
		}
		for rk := range serial {
			if serial[rk] != sharded[rk] {
				t.Errorf("%s rank %d: finished at %v serial, %v at -shards 4",
					p.Name, rk, serial[rk], sharded[rk])
			}
		}
	}
}
