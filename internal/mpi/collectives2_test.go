package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestGatherCompletes(t *testing.T) {
	for _, procs := range []int{2, 3, 8} {
		w := MustWorld(Config{Net: cluster.IBA().New(8), Procs: procs})
		if err := w.Run(func(r *Rank) {
			block := int64(1024)
			var recv = r.Malloc(block * int64(r.Size()))
			send := r.Malloc(block)
			r.Gather(send, recv, procs-1) // non-zero root
		}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

func TestScatterCompletes(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(8), Procs: 8})
	if err := w.Run(func(r *Rank) {
		block := int64(4096)
		send := r.Malloc(block * int64(r.Size()))
		recv := r.Malloc(block)
		r.Scatter(send, recv, 0)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherSynchronizesRootLast(t *testing.T) {
	// The root cannot leave the gather before the slowest contributor
	// entered it.
	w := MustWorld(Config{Net: cluster.QSN().New(4), Procs: 4})
	var slowest, rootExit sim.Time
	if err := w.Run(func(r *Rank) {
		d := units.FromMicros(float64(100 * r.Rank()))
		r.Compute(d)
		if d > slowest {
			slowest = d
		}
		send := r.Malloc(2048)
		recv := r.Malloc(2048 * int64(r.Size()))
		r.Gather(send, recv, 0)
		if r.Rank() == 0 {
			rootExit = r.Wtime()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rootExit < slowest {
		t.Fatalf("root left gather at %v before slowest entry %v", rootExit, slowest)
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(4), Procs: 4})
	if err := w.Run(func(r *Rank) {
		send := r.Malloc(16 * 1024)
		recv := r.Malloc(4 * 1024)
		r.ReduceScatter(send, recv)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSeesEnvelopeWithoutConsuming(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.Malloc(512), 1, 42)
		} else {
			st := r.Probe(AnySource, AnyTag)
			if st.Source != 0 || st.Tag != 42 || st.Size != 512 {
				t.Errorf("probe status %+v", st)
			}
			// The message is still there for the actual receive.
			got := r.Recv(r.Malloc(512), 0, 42)
			if got.Size != 512 {
				t.Errorf("recv after probe: %+v", got)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIprobeNonBlocking(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			if _, ok := r.Iprobe(0, 7); ok {
				t.Error("Iprobe saw a message before any was sent")
			}
			r.Compute(units.FromMicros(100))
			st, ok := r.Iprobe(0, 7)
			if !ok || st.Size != 64 {
				t.Errorf("Iprobe after arrival: ok=%v st=%+v", ok, st)
			}
			r.Recv(r.Malloc(64), 0, 7)
		} else {
			r.Send(r.Malloc(64), 1, 7)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherPanicsOnUnevenBuffer(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("uneven gather buffer did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		r.Gather(r.Malloc(10), r.Malloc(15), 0)
	})
}
