package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/trace"
)

func TestTimelineRecordsMessageLifecycle(t *testing.T) {
	tl := &trace.Timeline{}
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2, Timeline: tl})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(1024)
		if r.Rank() == 0 {
			r.Send(buf, 1, 7)
		} else {
			r.Recv(buf, 0, 7)
		}
	}); err != nil {
		t.Fatal(err)
	}
	counts, _ := tl.Stats()
	for _, k := range []trace.EventKind{trace.EvSendStart, trace.EvSendDone,
		trace.EvRecvPost, trace.EvArrive, trace.EvRecvDone} {
		if counts[k] != 1 {
			t.Errorf("%v count = %d, want 1 (events: %d)", k, counts[k], len(tl.Events))
		}
	}
	// Causality: times must be non-decreasing per kind pairings.
	var start, arrive, done int64 = -1, -1, -1
	for _, e := range tl.Events {
		switch e.Kind {
		case trace.EvSendStart:
			start = int64(e.At)
		case trace.EvArrive:
			arrive = int64(e.At)
		case trace.EvRecvDone:
			done = int64(e.At)
		}
	}
	if !(start <= arrive && arrive <= done) {
		t.Fatalf("causality violated: start=%d arrive=%d done=%d", start, arrive, done)
	}
}

func TestTimelineRendezvousEvents(t *testing.T) {
	tl := &trace.Timeline{}
	w := MustWorld(Config{Net: cluster.Myri().New(2), Procs: 2, Timeline: tl})
	size := int64(128 * 1024)
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(size)
		if r.Rank() == 0 {
			r.Send(buf, 1, 0)
		} else {
			r.Recv(buf, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	counts, _ := tl.Stats()
	// Rendezvous: send-done fires only after the bulk lands.
	if counts[trace.EvSendDone] != 1 || counts[trace.EvRecvDone] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	var sendStart, sendDone trace.Event
	for _, e := range tl.Events {
		if e.Kind == trace.EvSendStart {
			sendStart = e
		}
		if e.Kind == trace.EvSendDone {
			sendDone = e
		}
	}
	// The gap between send start and completion must cover the transfer
	// (hundreds of microseconds at 128KB over Myrinet).
	if sendDone.At-sendStart.At < 100000*1000 { // 100us in ps
		t.Fatalf("rendezvous send completed too fast: %v -> %v", sendStart.At, sendDone.At)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(64)
		if r.Rank() == 0 {
			r.Send(buf, 1, 0)
		} else {
			r.Recv(buf, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert beyond "no crash": recording is nil-guarded.
}
