package mpi

import "mpinet/internal/memreg"

// Gather collects equal-size blocks from all ranks at root: rank i's
// sendBuf lands in recvBuf's i-th block. Non-roots may pass an empty
// recvBuf. Linear algorithm, as MPICH 1.2.x uses for gather.
func (r *Rank) Gather(sendBuf, recvBuf memreg.Buf, root int) {
	p := int64(r.Size())
	if r.Rank() == root && recvBuf.Size%p != 0 {
		panic("mpi: Gather recv buffer must divide evenly by world size")
	}
	r.collective("Gather", sendBuf.Size, func() {
		me := r.Rank()
		if me == root {
			block := recvBuf.Size / p
			var reqs []*Request
			for src := 0; src < int(p); src++ {
				if src == root {
					r.ps.busy(r.p, r.ps.ep.CopyTime(block))
					continue
				}
				reqs = append(reqs, r.irecvInternal(recvBuf.Slice(int64(src)*block, block), src, tagGather))
			}
			for _, req := range reqs {
				r.waitOne(req)
			}
			return
		}
		r.sendInternal(sendBuf, root, tagGather)
	}, sendBuf, recvBuf)
}

// Scatter distributes root's sendBuf in equal blocks: rank i receives the
// i-th block into recvBuf. Non-roots may pass an empty sendBuf. Linear, as
// MPICH 1.2.x.
func (r *Rank) Scatter(sendBuf, recvBuf memreg.Buf, root int) {
	p := int64(r.Size())
	if r.Rank() == root && sendBuf.Size%p != 0 {
		panic("mpi: Scatter send buffer must divide evenly by world size")
	}
	r.collective("Scatter", recvBuf.Size, func() {
		me := r.Rank()
		if me == root {
			block := sendBuf.Size / p
			var reqs []*Request
			for dst := 0; dst < int(p); dst++ {
				if dst == root {
					r.ps.busy(r.p, r.ps.ep.CopyTime(block))
					continue
				}
				reqs = append(reqs, r.isendInternal(sendBuf.Slice(int64(dst)*block, block), dst, tagGather))
			}
			for _, req := range reqs {
				r.waitOne(req)
			}
			return
		}
		r.recvInternal(recvBuf, root, tagGather)
	}, sendBuf, recvBuf)
}

// ReduceScatter combines per-block contributions and scatters the result:
// functionally Reduce followed by Scatter, which is also how MPICH 1.2.x
// composes it.
func (r *Rank) ReduceScatter(sendBuf, recvBuf memreg.Buf) {
	p := int64(r.Size())
	if sendBuf.Size%p != 0 {
		panic("mpi: ReduceScatter send buffer must divide evenly by world size")
	}
	r.collective("ReduceScatter", sendBuf.Size, func() {
		r.CommWorld().reduceBody(sendBuf, 0)
		// Scatter the combined blocks from rank 0.
		me := r.Rank()
		block := sendBuf.Size / p
		if me == 0 {
			var reqs []*Request
			for dst := 1; dst < int(p); dst++ {
				reqs = append(reqs, r.isendInternal(sendBuf.Slice(int64(dst)*block, block), dst, tagGather))
			}
			r.ps.busy(r.p, r.ps.ep.CopyTime(block))
			for _, req := range reqs {
				r.waitOne(req)
			}
			return
		}
		r.recvInternal(recvBuf, 0, tagGather)
	}, sendBuf, recvBuf)
}

// Scan computes the inclusive prefix reduction: rank i ends with the
// combination of ranks 0..i's contributions. Linear chain, as MPICH 1.2.x
// implements it.
func (r *Rank) Scan(buf memreg.Buf) {
	r.collective("Scan", buf.Size, func() {
		me := r.Rank()
		tmp := r.ps.scratch(buf.Size)
		if me > 0 {
			r.recvInternal(tmp, me-1, tagScan)
			r.ps.busy(r.p, reduceBW.TimeFor(buf.Size))
		}
		if me < r.Size()-1 {
			r.sendInternal(buf, me+1, tagScan)
		}
	}, buf)
}

// tagScan is the internal tag for Scan's chain.
const tagScan = -18

// Probe blocks until a message matching (src, tag) is available without
// receiving it, and returns its envelope. src may be AnySource, tag AnyTag.
func (r *Rank) Probe(src, tag int) Status {
	ps := r.ps
	var found *inMsg
	ps.waitFor(r.p, "probe", func() bool {
		found = ps.matchUnexpected(commWorldID, src, tag)
		return found != nil
	})
	return Status{Source: found.src, Tag: found.tag, Size: found.size}
}

// Iprobe drives progress once and reports whether a matching message is
// available, with its envelope.
func (r *Rank) Iprobe(src, tag int) (Status, bool) {
	ps := r.ps
	ps.poll(r.p)
	if m := ps.matchUnexpected(commWorldID, src, tag); m != nil {
		return Status{Source: m.src, Tag: m.tag, Size: m.size}, true
	}
	return Status{}, false
}
