package mpi

import "mpinet/internal/memreg"

// PersistentRequest is a persistent communication request (MPI_Send_init /
// MPI_Recv_init): the envelope and buffer are fixed once, then the
// operation is started any number of times. Real codes (including NPB
// variants) use these to shave per-call setup off inner loops.
type PersistentRequest struct {
	r      *Rank
	isSend bool
	buf    memreg.Buf
	peer   int
	tag    int

	active *Request
}

// SendInit creates a persistent send request.
func (r *Rank) SendInit(buf memreg.Buf, dst, tag int) *PersistentRequest {
	if dst < 0 || dst >= r.Size() {
		panic("mpi: SendInit to invalid rank")
	}
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	return &PersistentRequest{r: r, isSend: true, buf: buf, peer: dst, tag: tag}
}

// RecvInit creates a persistent receive request.
func (r *Rank) RecvInit(buf memreg.Buf, src, tag int) *PersistentRequest {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic("mpi: RecvInit from invalid rank")
	}
	return &PersistentRequest{r: r, buf: buf, peer: src, tag: tag}
}

// Start begins one round of the persistent operation. The request must not
// already be active.
func (p *PersistentRequest) Start() {
	if p.active != nil && !p.active.done {
		panic("mpi: Start on an active persistent request")
	}
	ps := p.r.ps
	ps.poll(p.r.p)
	if p.isSend {
		p.active = ps.startSend(p.r.p, p.buf, commWorldID, p.peer, p.tag, true)
		return
	}
	p.active = ps.startRecv(p.r.p, p.buf, commWorldID, p.peer, p.tag, true)
}

// Wait blocks until the started round completes and returns its status
// (zero Status for sends).
func (p *PersistentRequest) Wait() Status {
	if p.active == nil {
		panic("mpi: Wait on a never-started persistent request")
	}
	return p.r.waitOne(p.active)
}

// Startall begins a set of persistent requests (MPI_Startall).
func (r *Rank) Startall(reqs ...*PersistentRequest) {
	for _, p := range reqs {
		p.Start()
	}
}

// Waitallp waits for a set of persistent requests.
func (r *Rank) Waitallp(reqs ...*PersistentRequest) {
	for _, p := range reqs {
		p.Wait()
	}
}
