package mpi

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestTruncationFailsTyped(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.Malloc(1024), 1, 0)
		} else {
			r.Recv(r.Malloc(100), 0, 0) // too small
		}
	})
	if err == nil {
		t.Fatal("truncation did not fail the run")
	}
	if !errors.Is(err, ErrTruncate) {
		t.Fatalf("err %v is not ErrTruncate", err)
	}
	var te *TruncateError
	if !errors.As(err, &te) {
		t.Fatalf("err %v carries no *TruncateError", err)
	}
	if te.Rank != 1 || te.Size != 1024 || te.Buf != 100 {
		t.Fatalf("TruncateError = %+v, want rank 1, 1024 into 100", te)
	}
	if s := err.Error(); !strings.Contains(s, "truncation") {
		t.Fatalf("error %q does not name truncation", s)
	}
}

func TestRecvIntoLargerBufferOK(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.Malloc(100), 1, 0)
		} else {
			st := r.Recv(r.Malloc(1024), 0, 0)
			if st.Size != 100 {
				t.Errorf("status size %d, want the message's 100", st.Size)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitany(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(3), Procs: 3})
	if err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Two receives; rank 2's message is delayed, rank 1's prompt.
			a := r.Irecv(r.Malloc(64), 1, 1)
			b := r.Irecv(r.Malloc(64), 2, 2)
			idx, st := r.Waitany([]*Request{a, b})
			if idx != 0 || st.Source != 1 {
				t.Errorf("first completion idx=%d st=%+v, want the prompt sender", idx, st)
			}
			r.Wait(b)
		case 1:
			r.Send(r.Malloc(64), 0, 1)
		case 2:
			r.Compute(units.FromMicros(500))
			r.Send(r.Malloc(64), 0, 2)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanChain(t *testing.T) {
	w := MustWorld(Config{Net: cluster.QSN().New(4), Procs: 4})
	exits := make([]sim.Time, 4)
	if err := w.Run(func(r *Rank) {
		r.Scan(r.Malloc(4096))
		exits[r.Rank()] = r.Wtime()
	}); err != nil {
		t.Fatal(err)
	}
	// A linear chain: each rank exits no earlier than its predecessor.
	for i := 1; i < 4; i++ {
		if exits[i] < exits[i-1] {
			t.Fatalf("scan chain order violated: %v", exits)
		}
	}
}

// Property: any random permutation exchange completes without deadlock, on
// every network, for mixed message sizes.
func TestRandomPermutationExchanges(t *testing.T) {
	f := func(seed uint32) bool {
		nets := cluster.OSU()
		net := nets[int(seed)%len(nets)]
		procs := 4 + int(seed>>8)%5 // 4..8
		w := MustWorld(Config{Net: net.New(8), Procs: procs})
		// Derive a permutation deterministically from the seed.
		perm := make([]int, procs)
		for i := range perm {
			perm[i] = i
		}
		s := seed
		for i := procs - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s) % (i + 1)
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		inv := make([]int, procs)
		for i, p := range perm {
			inv[p] = i
		}
		size := int64(1) << (4 + seed%14) // 16B .. 128KB
		err := w.Run(func(r *Rank) {
			buf := r.Malloc(size)
			rr := r.Irecv(r.Malloc(size), inv[r.Rank()], 0)
			r.Send(buf, perm[r.Rank()], 0)
			r.Wait(rr)
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: N ordered messages between a pair arrive in order for any mix
// of sizes straddling the eager/rendezvous threshold.
func TestMessageOrderingProperty(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 12 {
			return true
		}
		w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
		sizes := make([]int64, len(sizesRaw))
		for i, s := range sizesRaw {
			sizes[i] = int64(s)*16 + 1 // up to ~1MB, crossing thresholds
		}
		ok := true
		err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				for i, s := range sizes {
					r.Send(r.Malloc(s), 1, i)
				}
			} else {
				for i, s := range sizes {
					st := r.Recv(r.Malloc(s), 0, i)
					if st.Size != s || st.Tag != i {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSsendWaitsForReceiver(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	var sendDone, recvPosted sim.Time
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(64) // small — a plain Send would complete at issue
		if r.Rank() == 0 {
			r.Ssend(buf, 1, 0)
			sendDone = r.Wtime()
		} else {
			r.Compute(units.FromMicros(400))
			recvPosted = r.Wtime()
			r.Recv(buf, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sendDone <= recvPosted {
		t.Fatalf("Ssend completed at %v, before the receive was posted at %v", sendDone, recvPosted)
	}
}

func TestUtilizationsReported(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(64 * 1024)
		if r.Rank() == 0 {
			r.Send(buf, 1, 0)
		} else {
			r.Recv(buf, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	us := w.Utilizations()
	if len(us) == 0 {
		t.Fatal("no utilizations reported")
	}
	var busyTotal sim.Time
	names := map[string]bool{}
	for _, u := range us {
		if names[u.Resource] {
			t.Errorf("duplicate resource %q", u.Resource)
		}
		names[u.Resource] = true
		busyTotal += u.Busy
	}
	if busyTotal <= 0 {
		t.Fatal("all resources idle after a 64KB transfer")
	}
	if !names["myri0/lanai"] || !names["myri1/bus"] {
		t.Fatalf("expected resources missing: %v", names)
	}
}

func TestBsendReturnsImmediatelyAndDelivers(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	var sendReturned, recvDone sim.Time
	size := int64(256 * 1024) // rendezvous territory
	if err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			buf := r.Malloc(size)
			r.Bsend(buf, 1, 0)
			sendReturned = r.Wtime()
			// Keep making MPI progress so the buffered rendezvous can
			// complete (a real Bsend relies on later library entry too).
			r.Barrier()
		} else {
			r.Recv(r.Malloc(size), 0, 0)
			recvDone = r.Wtime()
			r.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sendReturned >= recvDone {
		t.Fatalf("Bsend returned at %v, not before delivery at %v", sendReturned, recvDone)
	}
}
