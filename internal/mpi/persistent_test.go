package mpi

import (
	"testing"

	"mpinet/internal/cluster"
)

func TestPersistentPingPong(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(4096)
		peer := 1 - r.Rank()
		var send, recv *PersistentRequest
		if r.Rank() == 0 {
			send = r.SendInit(buf, peer, 0)
			recv = r.RecvInit(buf, peer, 1)
		} else {
			recv = r.RecvInit(buf, peer, 0)
			send = r.SendInit(buf, peer, 1)
		}
		for i := 0; i < 10; i++ {
			if r.Rank() == 0 {
				send.Start()
				send.Wait()
				recv.Start()
				recv.Wait()
			} else {
				recv.Start()
				st := recv.Wait()
				if st.Size != 4096 {
					t.Errorf("iteration %d: size %d", i, st.Size)
				}
				send.Start()
				send.Wait()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentStartall(t *testing.T) {
	w := MustWorld(Config{Net: cluster.Myri().New(2), Procs: 2})
	if err := w.Run(func(r *Rank) {
		peer := 1 - r.Rank()
		sends := make([]*PersistentRequest, 4)
		recvs := make([]*PersistentRequest, 4)
		for i := range sends {
			sends[i] = r.SendInit(r.Malloc(1024), peer, i)
			recvs[i] = r.RecvInit(r.Malloc(1024), peer, i)
		}
		for round := 0; round < 3; round++ {
			r.Startall(recvs...)
			r.Startall(sends...)
			r.Waitallp(sends...)
			r.Waitallp(recvs...)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentDoubleStartPanics(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			// Rendezvous-size send stays active until matched — second
			// Start must panic.
			p := r.SendInit(r.Malloc(256*1024), 1, 0)
			p.Start()
			p.Start()
		} else {
			r.Compute(1 << 30)
		}
	})
}

func TestPersistentWaitWithoutStartPanics(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Wait without Start did not panic")
		}
	}()
	_ = w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.RecvInit(r.Malloc(8), 1, 0).Wait()
		}
	})
}
