package mpi

// ULFM-lite rank-death handling: the MPI-visible half of a node crash
// (faults.Plan.NodeCrashes). The device layer already black-holes traffic
// into a crashed node and, after the plan's detection delay, fails transfers
// fast with a typed faults.NodeDownError. This file adds what real MPI
// fault-tolerance work (ULFM) layers on top: the victim ranks' processes
// die, the death is *announced* to the survivors after the same detection
// delay, and every pending operation on a dead peer resolves — with a
// Status.Err notification under Config.FaultTolerant, or a typed job abort
// otherwise — instead of waiting out the watchdog.
//
// Crashes are permanent at this layer even when the plan repairs the node's
// links (NodeCrash.RepairAt): the hardware can come back, but the MPI
// process on it is gone — there is no respawn, exactly as in ULFM, where a
// failed rank stays failed for the life of the job.
//
// All of this runs classic-mode only (a fault plan forces the classic
// single-engine path), so the cooperative scheduler is the only lock needed.

import (
	"mpinet/internal/faults"
	"mpinet/internal/msgtrace"
)

// armCrashes schedules the plan's node crashes against this world's ranks:
// at each crash time the node's ranks are marked crashed (each unwinds with
// a rankKilled panic at its next library call) and the crash lands in the
// flight ring as an element-down incident; one detection delay later the
// deaths become visible to peers (failed set, every rank woken so pending
// waits re-evaluate against peerFailed).
func (w *World) armCrashes(plan *faults.Plan) {
	w.crashed = make([]bool, w.cfg.Procs)
	w.failed = make([]bool, w.cfg.Procs)
	detect := plan.DetectionDelay()
	for _, c := range plan.NodeCrashes {
		var victims []int
		for r := 0; r < w.cfg.Procs; r++ {
			if w.nodeOf(r) == c.Node {
				victims = append(victims, r)
			}
		}
		if len(victims) == 0 {
			continue
		}
		c, victims := c, victims
		w.eng.At(c.At, func() {
			w.rec.Flight(msgtrace.FlightElementDown, c.At, -1, 0, msgtrace.StageHop,
				msgtrace.ElemCode(msgtrace.ElemNode, c.Node), int64(c.RepairAt))
			for _, r := range victims {
				w.crashed[r] = true
				w.procs[r].progress.Broadcast()
			}
		})
		w.eng.At(c.At+detect, func() {
			for _, r := range victims {
				w.failed[r] = true
			}
			w.anyFailed = true
			for _, ps := range w.procs {
				ps.progress.Broadcast()
			}
		})
	}
}

// rankDead reports whether the rank's own node has crashed — the rank's
// process must unwind at its next library touch.
func (w *World) rankDead(rank int) bool {
	return w.crashed != nil && w.crashed[rank]
}

// peerFailed resolves a pending request against the set of detected rank
// deaths: it returns the dead peer and true when the request can never
// complete because that peer died. A matched receive is judged by the rank
// that actually sent the message; an unmatched AnySource receive fails on
// any death — the canonical ULFM rule, since the library cannot prove the
// would-be sender is still alive.
func (w *World) peerFailed(req *Request) (int, bool) {
	if !w.anyFailed {
		return 0, false
	}
	if req.isSend {
		if w.failed[req.peer] {
			return req.peer, true
		}
		return 0, false
	}
	src := req.src
	if req.matched != nil {
		src = req.matched.src
	}
	if src == AnySource {
		for r, dead := range w.failed {
			if dead {
				return r, true
			}
		}
		return 0, false
	}
	if src >= 0 && w.failed[src] {
		return src, true
	}
	return 0, false
}

// failPeer resolves a request whose peer died. Under Config.FaultTolerant a
// user-level point-to-point operation (non-negative tag) completes
// exceptionally — Status.Err carries the RankFailedError and the job goes
// on. Everything else — collectives (internal negative tags), and any death
// with fault tolerance off — aborts the job with the same typed error.
func (ps *procState) failPeer(req *Request, failed int, why string) {
	w := ps.world
	now := ps.eng.Now()
	err := &RankFailedError{Rank: ps.rank, Failed: failed, Op: why, At: now}
	if w.tolerant && req.tag >= 0 {
		req.done = true
		req.status = Status{Source: failed, Tag: req.tag, Err: err}
		if !req.isSend {
			ps.removePosted(req)
		}
		ps.finishReq(req, "rank-failed")
		ps.notify()
		return
	}
	w.rec.Flight(msgtrace.FlightAbort, now, ps.rank, 0, msgtrace.StageWait, int64(failed), 0)
	w.rec.Freeze("rank failure: "+err.Error(), now, ps.rank, msgtrace.StageWait, 0)
	w.fail(err)
}
