package mpi_test

import (
	"errors"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/metrics"
	"mpinet/internal/mpi"
)

// scaleWorkload mixes the protocol paths whose completions cross domains:
// eager and rendezvous ring exchanges, a wildcard receive, the pt2pt-built
// collectives, and a communicator split (the shared-board agreement).
func scaleWorkload(r *mpi.Rank) {
	n := r.Size()
	me := r.Rank()
	next, prev := (me+1)%n, (me-1+n)%n
	small, smallIn := r.Malloc(512), r.Malloc(512)
	big, bigIn := r.Malloc(256<<10), r.Malloc(256<<10)
	for i := 0; i < 3; i++ {
		r.Sendrecv(small, next, 1, smallIn, prev, 1)
		r.Sendrecv(big, next, 2, bigIn, prev, 2)
	}
	if me == 0 {
		buf := r.Malloc(4 << 10)
		for i := 1; i < n; i++ {
			r.Recv(buf, mpi.AnySource, 5)
		}
	} else {
		r.Send(r.Malloc(4<<10), 0, 5)
	}
	r.Barrier()
	r.Bcast(small, 0)
	r.Allreduce(small)
	sub := r.CommWorld().Split(me%2, me)
	sub.Barrier()
}

// runScale executes the workload at one shard count and returns the
// simulated end time.
func runScale(t *testing.T, p cluster.Platform, shards, procs, ppn int) int64 {
	t.Helper()
	p = p.With(cluster.WithShards(shards))
	w, err := mpi.NewWorld(mpi.Config{Net: p.New((procs + ppn - 1) / ppn), Procs: procs, ProcsPerNode: ppn})
	if err != nil {
		t.Fatalf("%s shards=%d: %v", p.Name, shards, err)
	}
	if !w.ScaleMode() {
		t.Fatalf("%s shards=%d: node domains not active", p.Name, shards)
	}
	if err := w.Run(scaleWorkload); err != nil {
		t.Fatalf("%s shards=%d: %v", p.Name, shards, err)
	}
	return int64(w.Elapsed())
}

// TestScaleShardInvariance is the headline determinism contract: a world on
// the topology API finishes at the identical simulated time at every shard
// count, on all three interconnects.
func TestScaleShardInvariance(t *testing.T) {
	for _, plat := range []cluster.Platform{
		cluster.IBA().With(cluster.FatTree(24, 2)),
		cluster.Myri().With(cluster.FatTree(24, 2)),
		cluster.QSN().With(cluster.FatTree(24, 2)),
	} {
		base := runScale(t, plat, 1, 64, 1)
		for _, shards := range []int{2, 4, 8} {
			if got := runScale(t, plat, shards, 64, 1); got != base {
				t.Fatalf("%s: elapsed %d at shards=%d, %d at shards=1", plat.Name, got, shards, base)
			}
		}
	}
}

// TestScaleSMPShardInvariance adds co-located ranks: the shared-memory
// channels live on each node's own engine, so intra-node traffic must stay
// shard-invariant too.
func TestScaleSMPShardInvariance(t *testing.T) {
	plat := cluster.IBA().With(cluster.FatTree(24, 2))
	base := runScale(t, plat, 1, 64, 2)
	if got := runScale(t, plat, 4, 64, 2); got != base {
		t.Fatalf("SMP world shard-variant: %d vs %d", got, base)
	}
}

// TestScaleAdaptiveShardInvariance pins the adaptive routing policy's
// replay: all its inputs (leaf queue depths, the seeded counter PRNG) are
// leaf-local, so a fixed seed must give byte-identical runs at any shard
// count.
func TestScaleAdaptiveShardInvariance(t *testing.T) {
	plat := cluster.QSN().With(cluster.FatTree(24, 2),
		cluster.WithRouting(cluster.Adaptive), cluster.WithSeed(99))
	base := runScale(t, plat, 1, 64, 1)
	for _, shards := range []int{2, 8} {
		if got := runScale(t, plat, shards, 64, 1); got != base {
			t.Fatalf("adaptive routing shard-variant: %d at shards=%d vs %d", got, shards, base)
		}
	}
}

// TestScaleClosThreeLevel exercises the deep fabric at a world size past
// the 2-level capacity, across shard counts.
func TestScaleClosThreeLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank world")
	}
	plat := cluster.Myri().With(cluster.Clos(3, 24, 2))
	base := runScale(t, plat, 1, 512, 1)
	if got := runScale(t, plat, 8, 512, 1); got != base {
		t.Fatalf("3-level Clos shard-variant: %d vs %d", got, base)
	}
}

// TestScaleModeRequiresCleanConfig: observability hooks keep the classic
// single-engine path, byte-for-byte.
func TestScaleModeRequiresCleanConfig(t *testing.T) {
	p := cluster.IBA().With(cluster.FatTree(24, 2), cluster.WithShards(4))
	w, err := mpi.NewWorld(mpi.Config{Net: p.New(32), Procs: 32, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	if w.ScaleMode() {
		t.Fatal("metrics-instrumented world must not activate node domains")
	}
	if err := w.Run(func(r *mpi.Rank) { r.Barrier() }); err != nil {
		t.Fatal(err)
	}
	// Classic platforms (no topology option) never activate.
	w2, err := mpi.NewWorld(mpi.Config{Net: cluster.IBA().New(8), Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w2.ScaleMode() {
		t.Fatal("classic crossbar world must not activate node domains")
	}
}

// TestScaleConfigErrorSurfaced: an invalid topology becomes a typed
// construction error from NewWorld, not a panic mid-run.
func TestScaleConfigErrorSurfaced(t *testing.T) {
	p := cluster.IBA().With(cluster.FatTree(25, 2))
	_, err := mpi.NewWorld(mpi.Config{Net: p.New(8), Procs: 8})
	var ce *cluster.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *cluster.ConfigError", err, err)
	}
	if ce.Option != "FatTree(25, 2)" {
		t.Errorf("Option = %q", ce.Option)
	}
	// Capacity overflow surfaces the same way (via the device constructor).
	_, err = mpi.NewWorld(mpi.Config{Net: cluster.IBA().With(cluster.FatTree(24, 2)).New(1024), Procs: 1024})
	if err == nil {
		t.Fatal("1024 hosts accepted on a 384-host fabric")
	}
}

// TestScaleFaultSurfaces: a truncation in a multi-shard run still tears the
// job down with the typed error even though cross-shard wakes are deferred
// to quiescence.
func TestScaleFaultSurfaces(t *testing.T) {
	p := cluster.IBA().With(cluster.FatTree(24, 2), cluster.WithShards(4))
	w, err := mpi.NewWorld(mpi.Config{Net: p.New(32), Procs: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !w.ScaleMode() {
		t.Fatal("node domains not active")
	}
	err = w.Run(func(r *mpi.Rank) {
		if r.Rank() == 17 {
			r.Send(r.Malloc(8<<10), 18, 3)
		}
		if r.Rank() == 18 {
			r.Recv(r.Malloc(64), 17, 3) // too small: MPI_ERR_TRUNCATE
		}
		r.Barrier()
	})
	if !errors.Is(err, mpi.ErrTruncate) {
		t.Fatalf("err = %v, want ErrTruncate", err)
	}
}

// TestScaleMemoryOrdering pins the paper's Figure 13 ordering at a
// thousand-rank world: per-connection VAPI state dwarfs GM's, which
// exceeds Elan's near-flat global mapping.
func TestScaleMemoryOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank worlds")
	}
	mem := map[string]int64{}
	for _, plat := range []cluster.Platform{cluster.IBA(), cluster.Myri(), cluster.QSN()} {
		p := plat.With(cluster.Clos(3, 24, 2))
		w, err := mpi.NewWorld(mpi.Config{Net: p.New(1024), Procs: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(r *mpi.Rank) {
			buf := r.Malloc(256)
			n := r.Size()
			r.Sendrecv(buf, (r.Rank()+1)%n, 0, buf, (r.Rank()-1+n)%n, 0)
		}); err != nil {
			t.Fatal(err)
		}
		mem[plat.Name] = w.MemoryUsage(0)
	}
	if !(mem["IBA"] > mem["Myri"] && mem["Myri"] > mem["QSN"]) {
		t.Fatalf("per-rank memory ordering broken: %v", mem)
	}
}

