package mpi

import (
	"errors"
	"strings"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/dev"
	"mpinet/internal/faults"
	"mpinet/internal/units"
)

// crashNet builds a 2-node IBA network where node 1 crashes at the given
// instant.
func crashNet(at units.Time, procs int) dev.Network {
	p := cluster.IBA().With(
		cluster.WithNodeCrashes(faults.NodeCrash{Node: 1, At: at}),
		cluster.WithSeed(1))
	return p.New(procs)
}

// Without FaultTolerant, the first operation touching a crashed rank aborts
// the job with a typed RankFailedError — not a watchdog timeout, and never a
// hang.
func TestNodeCrashAbortsTyped(t *testing.T) {
	w := MustWorld(Config{Net: crashNet(10*units.Microsecond, 2), Procs: 2})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(r.Malloc(512), 1, 0) // rank 1 dies before sending
		} else {
			r.Compute(10 * units.Millisecond)
		}
	})
	if err == nil {
		t.Fatal("receive from a crashed rank did not fail the run")
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("err %v is not ErrRankFailed", err)
	}
	var rfe *RankFailedError
	if !errors.As(err, &rfe) {
		t.Fatalf("err %v carries no *RankFailedError", err)
	}
	if rfe.Rank != 0 || rfe.Failed != 1 {
		t.Errorf("RankFailedError attributes rank %d noticing rank %d, want 0 noticing 1", rfe.Rank, rfe.Failed)
	}
	if !strings.Contains(rfe.Op, "recv from rank 1") {
		t.Errorf("RankFailedError.Op = %q does not name the stuck receive", rfe.Op)
	}
	if errors.Is(err, ErrTimeout) {
		t.Error("rank death must beat the watchdog, not ride it")
	}
}

// Under FaultTolerant, a receive from a dead rank completes exceptionally:
// Status.Err carries the RankFailedError, Source names the corpse, and the
// job keeps running — the ULFM notification contract.
func TestTolerantRecvNotifies(t *testing.T) {
	var st Status
	w := MustWorld(Config{Net: crashNet(10*units.Microsecond, 2), Procs: 2, FaultTolerant: true})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			st = r.Recv(r.Malloc(512), 1, 0)
		} else {
			r.Compute(10 * units.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("tolerant world aborted: %v", err)
	}
	if st.Err == nil {
		t.Fatal("receive from a dead rank completed without notification")
	}
	if !errors.Is(st.Err, ErrRankFailed) {
		t.Fatalf("Status.Err %v is not ErrRankFailed", st.Err)
	}
	if st.Source != 1 {
		t.Errorf("Status.Source = %d, want the dead rank 1", st.Source)
	}
	if st.Size != 0 {
		t.Errorf("Status.Size = %d for an exceptional completion", st.Size)
	}
}

// Sends to a dead peer notify the same way: an Isend's Wait completes with
// Status.Err instead of hanging on an acknowledgement that cannot come.
func TestTolerantSendNotifies(t *testing.T) {
	var st Status
	w := MustWorld(Config{Net: crashNet(10*units.Microsecond, 2), Procs: 2, FaultTolerant: true})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(5 * units.Millisecond) // let the death be detected first
			st = r.Wait(r.Isend(r.Malloc(64*units.KB), 1, 3))
		} else {
			r.Compute(10 * units.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("tolerant world aborted: %v", err)
	}
	if st.Err == nil || !errors.Is(st.Err, ErrRankFailed) {
		t.Fatalf("send to a dead rank: Status.Err = %v, want rank-failed", st.Err)
	}
}

// An any-source receive cannot name its peer up front, so a detected death
// anywhere resolves it: the notification names whichever rank died.
func TestTolerantAnySourceNotifies(t *testing.T) {
	var st Status
	w := MustWorld(Config{Net: crashNet(10*units.Microsecond, 2), Procs: 2, FaultTolerant: true})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			st = r.Recv(r.Malloc(512), AnySource, 0)
		} else {
			r.Compute(10 * units.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("tolerant world aborted: %v", err)
	}
	if st.Err == nil || st.Source != 1 {
		t.Fatalf("any-source notification: Err=%v Source=%d, want rank 1's death", st.Err, st.Source)
	}
}

// Collectives ride internal (negative) tags and are not individually
// recoverable: a dead participant is fatal even under FaultTolerant, typed.
func TestTolerantCollectiveFatal(t *testing.T) {
	w := MustWorld(Config{Net: crashNet(10*units.Microsecond, 4), Procs: 4, FaultTolerant: true})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Compute(10 * units.Millisecond) // dies mid-sleep; never reaches the barrier
			return
		}
		r.Barrier()
	})
	if err == nil {
		t.Fatal("barrier with a dead participant completed")
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("err %v is not ErrRankFailed", err)
	}
}

// A crashed rank stays dead at the MPI layer even when the plan repairs the
// node's link: a rebooted node does not rejoin the job.
func TestCrashPermanentDespiteRepair(t *testing.T) {
	p := cluster.IBA().With(
		cluster.WithNodeCrashes(faults.NodeCrash{Node: 1, At: 10 * units.Microsecond, RepairAt: units.Millisecond}),
		cluster.WithSeed(1))
	var st Status
	w := MustWorld(Config{Net: p.New(2), Procs: 2, FaultTolerant: true})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(10 * units.Millisecond) // well past the link repair
			st = r.Recv(r.Malloc(512), 1, 0)
		} else {
			r.Compute(20 * units.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("tolerant world aborted: %v", err)
	}
	if st.Err == nil || !errors.Is(st.Err, ErrRankFailed) {
		t.Fatalf("repaired link resurrected the rank: Status.Err = %v", st.Err)
	}
}

// A plan with node crashes on a multi-stage fabric arms the scaled watchdog:
// budget grows with rank count and fabric diameter instead of staying at the
// 8-node default.
func TestScaledWatchdogAutoArm(t *testing.T) {
	p := cluster.IBA().With(
		cluster.Clos(2, 8, 1),
		cluster.WithNodeCrashes(faults.NodeCrash{Node: 1, At: units.Millisecond}),
		cluster.WithSeed(1))
	w := MustWorld(Config{Net: p.New(32), Procs: 32})
	want := faults.ScaledTimeout(32, 3) // 2-level Clos: diameter 3
	if w.cfg.Timeout != want {
		t.Fatalf("Timeout = %v, want scaled %v", w.cfg.Timeout, want)
	}
	if w.cfg.Timeout <= faults.DefaultTimeout {
		t.Fatal("scaled watchdog no larger than the default")
	}
	// An explicit Timeout always wins over the auto-arming.
	w2 := MustWorld(Config{Net: p.New(32), Procs: 32, Timeout: units.Second})
	if w2.cfg.Timeout != units.Second {
		t.Fatalf("explicit Timeout overridden: %v", w2.cfg.Timeout)
	}
}
