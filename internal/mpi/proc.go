package mpi

import (
	"strconv"

	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// procState is the per-rank library state: queues, progress engine,
// endpoint, accounting. It is manipulated both by the rank's own process
// (inside MPI calls) and by delivery events from the hardware models; the
// cooperative scheduler guarantees mutual exclusion.
type procState struct {
	world *World
	// eng is the engine this rank's state lives on: the node's domain
	// engine in scale mode, the world engine otherwise. Every timestamp
	// and timer of this rank reads it, never world.eng, so rank state is
	// only ever touched from its owning shard.
	eng  *sim.Engine
	rank int
	node int
	ep   dev.Endpoint
	as   *memreg.AddressSpace
	prof *trace.Profile

	posted []*Request // receive queue, post order
	unexp  []*inMsg   // unexpected messages, arrival order

	actions  []func(p *sim.Proc) // host-driven protocol steps pending
	progress sim.Cond

	hostBusy sim.Time
	sendSeq  int64

	// watchdog is the rank's reusable wait timer (see waitFor): allocated on
	// first armed wait, then Arm/Stop per wait with zero allocations.
	// waitFor is not reentrant per rank, so one timer suffices.
	watchdog *sim.Timer
	wdFired  bool

	// waitWhy is the rank's default wait reason ("rank<N>:wait"), built
	// once: waitOne runs on every blocking completion, and formatting the
	// same string there dominated the MPI layer's allocation profile.
	waitWhy string

	// quiet suppresses point-to-point profiling while a collective runs so
	// the profile records the collective call, not its decomposition.
	quiet bool
	// Hardware-multicast bookkeeping: payloads delivered to this rank and
	// payloads its Bcast calls have consumed.
	mcSeen  int64
	mcTaken int64
	// splitGen counts Split/Dup invocations per parent communicator so
	// agreement boards never collide across generations. Nil until the first
	// Split/Dup: most ranks never split, and at a thousand ranks the empty
	// maps were a measurable slice of world construction.
	splitGen map[int]int
	// collScratch is a reusable buffer for collective intermediates.
	collScratch memreg.Buf
	// worldComm caches this rank's MPI_COMM_WORLD view. Every world
	// collective resolves it, and rebuilding the world rank list per call
	// was the single largest allocation site in 1k-rank worlds.
	worldComm *Comm
	// reqFree recycles Request records of blocking operations (the request
	// never escapes the caller, so waitOne can return it to the pool);
	// reqAllocs counts pool misses for the zero-alloc gates.
	reqFree   []*Request
	reqAllocs int
	// Reusable collective scratch (offsets, counts, request lists).
	// Collectives are not reentrant per rank, so one set suffices.
	offScratch []int64
	cntScratch []int64
	reqScratch []*Request
	// nicPeers is the set of cross-node ranks this rank has exchanged NIC
	// traffic with (either direction), as a bitset over world ranks;
	// nicPeerCount is its population. Tracked only in scale mode, where
	// MemoryUsage accounts established connections rather than the static
	// full-world formula (see World.MemoryUsage). Send-side bits are set on
	// the sender's engine, receive-side bits on this rank's own engine at
	// arrival, so the set is never touched cross-shard.
	nicPeers     []uint64
	nicPeerCount int

	// Observability handles (all nil-safe no-ops when metrics are off).
	met         *metrics.Registry
	track       string // Chrome-trace thread name, "rank<N>"
	unexpHW     *metrics.Gauge
	postedHW    *metrics.Gauge
	reqHist     *metrics.SizeHist
	eagerCopies *metrics.Counter
}

// markNICPeer records peer as a rank this one holds NIC connection state
// toward (scale mode only — classic worlds keep the paper's static
// accounting). Cheap enough for every send/arrival: one bitset probe.
func (ps *procState) markNICPeer(peer int) {
	if !ps.world.scale {
		return
	}
	if ps.nicPeers == nil {
		ps.nicPeers = make([]uint64, (ps.world.cfg.Procs+63)/64)
	}
	bit := uint64(1) << (uint(peer) & 63)
	if ps.nicPeers[peer>>6]&bit == 0 {
		ps.nicPeers[peer>>6] |= bit
		ps.nicPeerCount++
	}
}

// bindMetrics resolves this rank's instrument handles. Safe with m == nil:
// every handle comes back nil and every update is a no-op.
func (ps *procState) bindMetrics(m *metrics.Registry) {
	ps.met = m
	ps.track = "rank" + strconv.Itoa(ps.rank)
	pfx := metrics.RankPrefix(ps.rank) + "mpi"
	ps.unexpHW = m.Gauge(pfx + "/unexp_depth")
	ps.postedHW = m.Gauge(pfx + "/posted_depth")
	ps.reqHist = m.SizeHist(pfx + "/req")
	ps.eagerCopies = m.Counter(metrics.NodePrefix(ps.node) + "nic/eager_copies")
	if m != nil {
		m.ProbeTime(pfx+"/host_busy", func() units.Time { return ps.hostBusy })
	}
}

// finishReq records a completed request's lifetime in the per-rank size-class
// histogram and emits an "mpi" span covering post-to-completion. Called from
// every completion site; a no-op when metrics are off.
func (ps *procState) finishReq(r *Request, name string) {
	if ps.met == nil {
		return
	}
	now := ps.eng.Now()
	ps.reqHist.Observe(r.size, now-r.born)
	ps.met.Span(metrics.Span{
		Node: ps.node, Track: ps.track, Name: name, Cat: "mpi",
		Start: r.born, End: now, Size: r.size,
	})
}

// scratch returns a persistent buffer of at least size bytes for collective
// intermediates. Persistence matters: it keeps the registration caches warm,
// as real implementations' internal buffers do.
func (ps *procState) scratch(size int64) memreg.Buf {
	if ps.collScratch.Size < size {
		ps.collScratch = ps.as.Alloc(size)
	}
	return ps.collScratch.Slice(0, size)
}

// msgKind distinguishes protocol messages at the receiver.
type msgKind int

const (
	eagerMsg msgKind = iota
	rtsMsg
)

// chKind records which channel carried a message.
type chKind int

const (
	chNet chKind = iota
	chShm
)

// inMsg is an arrived-but-not-completed message at the receiver.
type inMsg struct {
	comm     int // communicator context id
	src, tag int // src is a world rank
	size     int64
	seq      int64
	tid      msgtrace.ID // trace context, carried sender -> receiver
	kind     msgKind
	ch       chKind
	sender   *Request // rendezvous: the sender's request, for CTS routing
	matched  bool
}

// record appends a timeline event if the world collects one.
func (ps *procState) record(kind trace.EventKind, peer, tag, comm int, size int64) {
	tl := ps.world.cfg.Timeline
	if tl == nil {
		return
	}
	tl.Add(trace.Event{
		At: ps.eng.Now(), Rank: ps.rank, Kind: kind,
		Peer: peer, Tag: tag, Comm: comm, Size: size,
	})
}

// busy charges host CPU time to this rank. It must be called from the
// rank's own process.
func (ps *procState) busy(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	ps.hostBusy += d
	p.Sleep(d)
}

// enqueue adds a host-driven protocol step and pokes the progress engine so
// a rank parked inside an MPI call picks it up immediately. Steps enqueued
// while the rank computes outside MPI wait for its next MPI call — exactly
// the host-driven rendezvous limitation the overlap benchmark measures.
func (ps *procState) enqueue(step func(p *sim.Proc)) {
	ps.actions = append(ps.actions, step)
	ps.progress.Broadcast()
}

// poll runs all pending protocol steps, charging their host cost. Called on
// entry to every MPI operation and inside progress waits — which makes it
// the first library touch after this rank's node crashes, so the crashed
// rank's process unwinds here.
func (ps *procState) poll(p *sim.Proc) {
	if ps.world.rankDead(ps.rank) {
		panic(&rankKilled{rank: ps.rank})
	}
	for len(ps.actions) > 0 {
		step := ps.actions[0]
		ps.actions = ps.actions[1:]
		step(p)
	}
}

// waitFor blocks the rank inside the MPI library until pred holds,
// executing protocol steps as they arrive. It is also where job failure
// becomes visible to ranks: a recorded world fault aborts the rank here,
// and with Config.Timeout armed a cancellable watchdog bounds the wait —
// on a faulty network a rank can starve forever (peer dead, message
// unrecoverable), and the watchdog converts that hang into a typed,
// attributed error.
func (ps *procState) waitFor(p *sim.Proc, why string, pred func() bool) {
	w := ps.world
	if w.cfg.Timeout > 0 {
		// The watchdog is a reusable per-rank timer: one allocation the first
		// time this rank waits on a watched world, then Arm/Stop per wait —
		// the allocation-free pattern the engine's generation-stamped timers
		// exist for.
		if ps.watchdog == nil {
			ps.watchdog = ps.eng.NewTimer(func() {
				ps.wdFired = true
				ps.progress.Broadcast()
			})
		}
		ps.wdFired = false
		ps.watchdog.Arm(w.cfg.Timeout)
		defer ps.watchdog.Stop()
	}
	for {
		ps.poll(p)
		if w.faulted() {
			panic(&jobAbort{err: w.fault})
		}
		if pred() {
			return
		}
		if ps.wdFired {
			now := ps.eng.Now()
			w.rec.Flight(msgtrace.FlightTimeout, now, ps.rank, 0, msgtrace.StageWait, int64(w.cfg.Timeout), 0)
			w.rec.Freeze("watchdog timeout: "+why, now, ps.rank, msgtrace.StageWait, 0)
			w.fail(&TimeoutError{Rank: ps.rank, Op: why, After: w.cfg.Timeout})
			panic(&jobAbort{err: w.fault})
		}
		ps.progress.Wait(p, why)
	}
}

// notify wakes the rank if it is parked in a progress wait (used by
// completion events that involve no host work).
func (ps *procState) notify() {
	ps.progress.Broadcast()
}

// match scans the posted queue for a request matching an arrival. Matching
// is scoped by communicator context, then by (source, tag) with wildcards.
func (ps *procState) matchPosted(comm, src, tag int) *Request {
	for _, r := range ps.posted {
		if r.done || r.matched != nil || r.comm != comm {
			continue
		}
		if (r.src == AnySource || r.src == src) && (r.tag == AnyTag || r.tag == tag) {
			return r
		}
	}
	return nil
}

// matchUnexpected scans arrivals for one matching a freshly posted receive.
func (ps *procState) matchUnexpected(comm, src, tag int) *inMsg {
	for _, m := range ps.unexp {
		if m.matched || m.comm != comm {
			continue
		}
		if (src == AnySource || src == m.src) && (tag == AnyTag || tag == m.tag) {
			return m
		}
	}
	return nil
}

// removePosted drops a completed request from the posted queue.
func (ps *procState) removePosted(r *Request) {
	for i, x := range ps.posted {
		if x == r {
			ps.posted = append(ps.posted[:i], ps.posted[i+1:]...)
			ps.postedHW.Set(int64(len(ps.posted)))
			return
		}
	}
}

// removeUnexpected drops a consumed arrival.
func (ps *procState) removeUnexpected(m *inMsg) {
	for i, x := range ps.unexp {
		if x == m {
			ps.unexp = append(ps.unexp[:i], ps.unexp[i+1:]...)
			ps.unexpHW.Set(int64(len(ps.unexp)))
			return
		}
	}
}
