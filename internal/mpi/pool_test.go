package mpi

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/units"
)

// reqAllocTotal sums pool misses across every rank in the world.
func reqAllocTotal(w *World) int {
	total := 0
	for _, ps := range w.procs {
		total += ps.reqAllocs
	}
	return total
}

// TestRequestPoolZeroAllocSteadyState pins the request free list: blocking
// point-to-point traffic recycles its Request records, so the number of pool
// misses is a function of peak concurrency, not of how long the job runs.
// Doubling the round count must not add a single allocation.
func TestRequestPoolZeroAllocSteadyState(t *testing.T) {
	run := func(rounds int) int {
		const procs = 8
		w := MustWorld(Config{Net: cluster.IBA().New(procs), Procs: procs})
		err := w.Run(func(r *Rank) {
			buf := r.Malloc(4 * units.KB)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < rounds; i++ {
				r.Sendrecv(buf, next, i, buf, prev, i)
			}
		})
		if err != nil {
			t.Fatalf("%d rounds: %v", rounds, err)
		}
		return reqAllocTotal(w)
	}
	small, large := run(4), run(32)
	if small == 0 {
		t.Fatal("no pool misses at all: the counter is not wired")
	}
	if large != small {
		t.Errorf("request pool leaks: %d misses at 4 rounds, %d at 32 — misses must not scale with rounds", small, large)
	}
}

// TestRequestPoolZeroAllocScaleMode repeats the gate in scale mode, where
// ranks live on node domains and requests must stay shard-local to keep the
// lock-free pool sound.
func TestRequestPoolZeroAllocScaleMode(t *testing.T) {
	run := func(rounds int) int {
		const procs = 32
		p := cluster.IBA().With(cluster.FatTree(24, 2), cluster.WithShards(4))
		w := MustWorld(Config{Net: p.New(procs), Procs: procs})
		if !w.ScaleMode() {
			t.Fatal("node domains not active")
		}
		err := w.Run(func(r *Rank) {
			buf := r.Malloc(512)
			next := (r.Rank() + 1) % r.Size()
			prev := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < rounds; i++ {
				r.Sendrecv(buf, next, i, buf, prev, i)
			}
		})
		if err != nil {
			t.Fatalf("%d rounds: %v", rounds, err)
		}
		return reqAllocTotal(w)
	}
	small, large := run(4), run(32)
	if small == 0 {
		t.Fatal("no pool misses at all: the counter is not wired")
	}
	if large != small {
		t.Errorf("scale-mode request pool leaks: %d misses at 4 rounds, %d at 32", small, large)
	}
}
