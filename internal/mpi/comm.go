package mpi

import (
	"fmt"
	"sort"
	"strings"

	"mpinet/internal/memreg"
)

// commWorldID is the context id of MPI_COMM_WORLD.
const commWorldID = 0

// Comm is a communicator: an ordered group of ranks with an isolated
// matching context, produced by CommWorld or Split. Point-to-point and
// collective traffic in different communicators never match each other,
// exactly as MPI contexts guarantee.
type Comm struct {
	r     *Rank
	id    int
	ranks []int // world ranks; index = rank within this communicator
	me    int   // my rank within this communicator
}

// CommWorld returns this rank's view of MPI_COMM_WORLD. The view is cached
// per rank over the world's shared rank list: every collective resolves it,
// and rebuilding a world-size []int per call was the single largest
// allocation site in 1k-rank worlds. The list is read-only (Split reads it,
// Dup copies it), so sharing one across all ranks is safe even when ranks
// run on different shards.
func (r *Rank) CommWorld() *Comm {
	ps := r.ps
	if c := ps.worldComm; c != nil && c.r == r {
		return c
	}
	c := &Comm{r: r, id: commWorldID, ranks: ps.world.worldRanks, me: ps.rank}
	ps.worldComm = c
	return c
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator's group size.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to its world rank.
func (c *Comm) WorldRank(rank int) int {
	if rank < 0 || rank >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", rank, len(c.ranks)))
	}
	return c.ranks[rank]
}

// Send is a blocking send to a communicator rank.
func (c *Comm) Send(buf memreg.Buf, dst, tag int) {
	c.validateTag(tag)
	ps := c.r.ps
	ps.poll(c.r.p)
	req := ps.startSend(c.r.p, buf, c.id, c.WorldRank(dst), tag, false)
	req.pooled = true
	c.r.waitOne(req)
}

// Recv is a blocking receive from a communicator rank (or AnySource).
func (c *Comm) Recv(buf memreg.Buf, src, tag int) Status {
	req := c.Irecv(buf, src, tag)
	req.pooled = true // never escapes this call
	st := c.r.waitOne(req)
	st.Source = c.commRankOf(st.Source)
	return st
}

// Isend starts a non-blocking send to a communicator rank.
func (c *Comm) Isend(buf memreg.Buf, dst, tag int) *Request {
	c.validateTag(tag)
	ps := c.r.ps
	ps.poll(c.r.p)
	return ps.startSend(c.r.p, buf, c.id, c.WorldRank(dst), tag, true)
}

// Irecv starts a non-blocking receive from a communicator rank.
func (c *Comm) Irecv(buf memreg.Buf, src, tag int) *Request {
	ps := c.r.ps
	ps.poll(c.r.p)
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = c.WorldRank(src)
	}
	return ps.startRecv(c.r.p, buf, c.id, worldSrc, tag, true)
}

// Wait completes a request started on this communicator; receive statuses
// report communicator ranks.
func (c *Comm) Wait(req *Request) Status {
	st := c.r.waitOne(req)
	if !req.isSend {
		st.Source = c.commRankOf(st.Source)
	}
	return st
}

func (c *Comm) validateTag(tag int) {
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
}

func (c *Comm) commRankOf(worldRank int) int {
	for i, w := range c.ranks {
		if w == worldRank {
			return i
		}
	}
	return worldRank // e.g. zero-value statuses
}

// internal helpers mirroring Rank's, but communicator-scoped; used by the
// generic collective algorithms.
func (c *Comm) sendInternal(buf memreg.Buf, dst, tag int) {
	ps := c.r.ps
	ps.poll(c.r.p)
	req := ps.startSend(c.r.p, buf, c.id, c.WorldRank(dst), tag, false)
	req.pooled = true
	c.r.waitOne(req)
}

func (c *Comm) isendInternal(buf memreg.Buf, dst, tag int) *Request {
	ps := c.r.ps
	ps.poll(c.r.p)
	req := ps.startSend(c.r.p, buf, c.id, c.WorldRank(dst), tag, true)
	req.pooled = true // collectives always waitOne their internal requests
	return req
}

func (c *Comm) irecvInternal(buf memreg.Buf, src, tag int) *Request {
	ps := c.r.ps
	ps.poll(c.r.p)
	req := ps.startRecv(c.r.p, buf, c.id, c.WorldRank(src), tag, true)
	req.pooled = true
	return req
}

func (c *Comm) recvInternal(buf memreg.Buf, src, tag int) {
	ps := c.r.ps
	ps.poll(c.r.p)
	req := ps.startRecv(c.r.p, buf, c.id, c.WorldRank(src), tag, false)
	req.pooled = true
	c.r.waitOne(req)
}

// Split partitions the communicator: members passing the same color form a
// new communicator, ordered by (key, parent rank) — MPI_Comm_split
// semantics. It is collective over the parent communicator and pays the
// real agreement cost: a ring allgather of the color/key pairs. The values
// themselves travel out of band (the simulator moves time, not bytes)
// through a generation-keyed board, so back-to-back splits cannot observe
// each other's postings.
func (c *Comm) Split(color, key int) *Comm {
	p := c.Size()
	ps := c.r.ps
	gen := ps.nextSplitGen(c.id)
	ps.world.postSplit(c.id, gen, c.me, color, key)

	// Agreement traffic: ring allgather of 8-byte entries over the parent.
	// Completing it guarantees every member has posted to the board. It is
	// profiled as the collective call MPI_Comm_split is.
	c.r.collective("CommSplit", 8, func() {
		if p == 1 {
			return
		}
		entry := ps.scratch(8)
		prev := (c.me - 1 + p) % p
		next := (c.me + 1) % p
		for s := 0; s < p-1; s++ {
			rr := c.irecvInternal(entry, prev, tagSplit)
			c.sendInternal(entry, next, tagSplit)
			c.r.waitOne(rr)
		}
	})

	// Build my group: members with my color, ordered by (key, parent rank).
	board := ps.world.readSplit(c.id, gen, p)
	type member struct{ key, rank int }
	var group []member
	for rank := 0; rank < p; rank++ {
		ck, ok := board[rank]
		if !ok {
			panic("mpi: Split allgather completed with missing postings")
		}
		if ck[0] == color {
			group = append(group, member{key: ck[1], rank: rank})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	worldRanks := make([]int, len(group))
	me := 0
	for i, m := range group {
		worldRanks[i] = c.ranks[m.rank]
		if m.rank == c.me {
			me = i
		}
	}
	return &Comm{r: c.r, id: ps.world.commID(worldRanks), ranks: worldRanks, me: me}
}

// Dup duplicates the communicator with a fresh matching context
// (MPI_Comm_dup): traffic on the duplicate never matches the original's.
func (c *Comm) Dup() *Comm {
	// Context agreement costs a barrier-equivalent round, profiled as the
	// collective call it is.
	c.r.collective("CommDup", 0, func() {
		if c.Size() == 1 {
			return
		}
		entry := c.r.ps.scratch(8)
		p := c.Size()
		prev := (c.me - 1 + p) % p
		next := (c.me + 1) % p
		rr := c.irecvInternal(entry, prev, tagSplit)
		c.sendInternal(entry, next, tagSplit)
		c.r.waitOne(rr)
	})
	gen := c.r.ps.nextSplitGen(c.id)
	ranks := append([]int(nil), c.ranks...)
	id := c.r.ps.world.commID(append(append([]int(nil), ranks...), -1-gen))
	return &Comm{r: c.r, id: id, ranks: ranks, me: c.me}
}

// tagSplit is the internal tag for Split/Dup agreement traffic.
const tagSplit = -17

// nextSplitGen returns and advances this rank's Split/Dup generation for a
// parent communicator. The map materializes on first use: most ranks never
// split, and a thousand pre-allocated empty maps were measurable in world
// construction.
func (ps *procState) nextSplitGen(parent int) int {
	if ps.splitGen == nil {
		ps.splitGen = make(map[int]int)
	}
	gen := ps.splitGen[parent]
	ps.splitGen[parent] = gen + 1
	return gen
}

// commID returns a stable context id for a rank list, identical across all
// members (the simulation analogue of context-id agreement). Guarded by
// commMu: in scale mode the members run on different shards, and the
// completed agreement traffic — not this map — is what orders their calls.
func (w *World) commID(ranks []int) int {
	key := rankKey(ranks)
	w.commMu.Lock()
	defer w.commMu.Unlock()
	if id, ok := w.commIDs[key]; ok {
		return id
	}
	w.nextComm++
	w.commIDs[key] = w.nextComm
	return w.nextComm
}

// splitBoard returns the posting board for one Split generation on a
// parent communicator. Callers hold commMu.
func (w *World) splitBoard(parentComm, gen int) map[int][2]int {
	key := [2]int{parentComm, gen}
	b, ok := w.splitBoards[key]
	if !ok {
		b = make(map[int][2]int)
		w.splitBoards[key] = b
	}
	return b
}

// postSplit records one member's color/key on the generation board before
// the agreement traffic runs.
func (w *World) postSplit(parentComm, gen, me, color, key int) {
	w.commMu.Lock()
	w.splitBoard(parentComm, gen)[me] = [2]int{color, key}
	w.commMu.Unlock()
}

// readSplit snapshots the board once the member's allgather has completed,
// which guarantees (through the message traffic's cross-shard ordering)
// that all p postings are present.
func (w *World) readSplit(parentComm, gen, p int) map[int][2]int {
	w.commMu.Lock()
	defer w.commMu.Unlock()
	b := w.splitBoard(parentComm, gen)
	out := make(map[int][2]int, p)
	for k, v := range b {
		out[k] = v
	}
	return out
}

func rankKey(ranks []int) string {
	parts := make([]string, len(ranks))
	for i, r := range ranks {
		parts[i] = fmt.Sprint(r)
	}
	return strings.Join(parts, ",")
}
