package mpi

import (
	"fmt"

	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Fixed library costs of the device-independent layer.
const (
	// postCost is the bookkeeping cost of queueing a receive that cannot
	// complete immediately (host-driven devices; NIC-matching devices pay
	// their full receive overhead at post instead).
	postCost = 100 * units.Nanosecond
	// rndvStep is the host cost of one rendezvous protocol step (parsing an
	// RTS/CTS, building the reply descriptor) on host-driven devices.
	rndvStep = 300 * units.Nanosecond
)

// isendImpl starts a send and returns its request. Blocking Send is
// isendImpl + Wait.
func (ps *procState) isendImpl(p *sim.Proc, buf memreg.Buf, dst, tag int, nonblocking bool) *Request {
	if dst < 0 || dst >= ps.world.Size() {
		panic(fmt.Sprintf("mpi: rank %d sending to invalid rank %d", ps.rank, dst))
	}
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	ps.poll(p)
	return ps.startSend(p, buf, commWorldID, dst, tag, nonblocking)
}

// startSend is isendImpl minus validation/polling, shared with internal
// collective traffic (which uses reserved negative tags).
func (ps *procState) startSend(p *sim.Proc, buf memreg.Buf, comm, dst, tag int, nonblocking bool) *Request {
	dstPS := ps.world.procs[dst]
	sameNode := dstPS.node == ps.node
	if !ps.quiet {
		ps.prof.Send(buf, sameNode, nonblocking)
	}

	req := &Request{
		ps:     ps,
		isSend: true,
		buf:    buf,
		comm:   comm,
		peer:   dst,
		tag:    tag,
		size:   buf.Size,
		born:   ps.world.eng.Now(),
	}
	ps.sendSeq++
	req.seq = ps.sendSeq
	ps.record(trace.EvSendStart, dst, tag, comm, buf.Size)

	switch {
	case sameNode && buf.Size < ps.world.shmemBelow():
		ps.shmSend(p, req, dstPS)
	case buf.Size <= ps.ep.EagerThreshold():
		ps.eagerSend(p, req, dstPS)
	default:
		ps.rndvSend(p, req, dstPS)
	}
	return req
}

// shmSend crosses the intra-node shared-memory channel: the sender copies
// into the shared segment and the message is visible a half-handshake later.
func (ps *procState) shmSend(p *sim.Proc, req *Request, dstPS *procState) {
	ch := ps.world.shm[ps.node]
	copyCost := ch.CopyTime(req.size)
	ps.busy(p, ch.HalfHandshake()+copyCost)
	ch.CountCopy(req.size, copyCost)
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, kind: eagerMsg, ch: chShm}
	ch.Deliver(func() { dstPS.arrive(m) })
	req.done = true
	ps.record(trace.EvSendDone, req.peer, req.tag, req.comm, req.size)
	ps.finishReq(req, "send")
}

// eagerSend copies into pre-registered staging (VAPI/GM) or hands the user
// buffer to the NIC (Elan) and pushes envelope+payload through the wire.
func (ps *procState) eagerSend(p *sim.Proc, req *Request, dstPS *procState) {
	cost := ps.ep.IssueStall() + ps.ep.SendOverhead(req.size)
	if ps.ep.AcquireOnEager() {
		cost += ps.ep.AcquireBuf(req.buf)
	} else {
		cost += ps.ep.CopyTime(req.size)
		ps.eagerCopies.Inc()
	}
	ps.busy(p, cost)
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, kind: eagerMsg, ch: chNet}
	ps.ep.Eager(dstPS.node, req.size, func() { dstPS.arrive(m) })
	req.done = true
	ps.record(trace.EvSendDone, req.peer, req.tag, req.comm, req.size)
	ps.finishReq(req, "send")
}

// rndvSend opens the rendezvous: register the buffer, send RTS, and wait
// for the CTS/data exchange to complete the request.
func (ps *procState) rndvSend(p *sim.Proc, req *Request, dstPS *procState) {
	req.rndv = true
	cost := ps.ep.IssueStall() + ps.ep.SendOverhead(req.size) + ps.ep.AcquireBuf(req.buf)
	ps.busy(p, cost)
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, kind: rtsMsg, ch: chNet, sender: req}
	ps.ep.Control(dstPS.node, func() { dstPS.arrive(m) })
}

// arrive handles a message landing at this rank (event context: no host
// time may be charged here). On NIC-matching devices (Tports) the match
// itself takes NIC time proportional to the pending-entry count.
func (ps *procState) arrive(m *inMsg) {
	if nm, ok := ps.ep.(dev.NICMatcher); ok && m.ch == chNet {
		pending := len(ps.posted) + len(ps.unexp)
		nm.MatchDelay(pending, func() { ps.arriveMatched(m) })
		return
	}
	ps.arriveMatched(m)
}

func (ps *procState) arriveMatched(m *inMsg) {
	ps.record(trace.EvArrive, m.src, m.tag, m.comm, m.size)
	r := ps.matchPosted(m.comm, m.src, m.tag)
	if r == nil {
		ps.unexp = append(ps.unexp, m)
		ps.unexpHW.Set(int64(len(ps.unexp)))
		ps.notify()
		return
	}
	r.matched = m
	m.matched = true
	switch m.kind {
	case eagerMsg:
		ps.deliverEager(r, m, false)
	case rtsMsg:
		ps.acceptRndv(r, m, false)
	}
}

// deliverEager completes a matched eager receive. inline reports whether we
// are already running on the receiving rank's process (receive posted
// against an unexpected arrival) — then p is valid and costs are paid
// directly; otherwise a host action is enqueued (or, for NIC-matching
// devices with a pre-posted receive, completion is free and immediate).
func (ps *procState) deliverEager(r *Request, m *inMsg, inline bool, pOpt ...*sim.Proc) {
	finish := func() { r.complete(m.src, m.tag, m.size) }
	switch {
	case m.ch == chShm:
		ch := ps.world.shm[ps.node]
		copyCost := ch.CopyTime(m.size)
		ch.CountCopy(m.size, copyCost)
		cost := ch.HalfHandshake() + copyCost
		if inline {
			ps.busy(pOpt[0], cost)
			finish()
		} else {
			ps.enqueue(func(p *sim.Proc) { ps.busy(p, cost); finish() })
		}
	case ps.ep.NICProgress() && !inline:
		// Pre-posted receive on a NIC-matching device: payload lands in the
		// user buffer with no host involvement.
		finish()
	case ps.ep.NICProgress() && inline:
		// Unexpected on a NIC-matching device: drain from NIC buffering.
		ps.eagerCopies.Inc()
		ps.busy(pOpt[0], ps.ep.CopyTime(m.size))
		finish()
	default:
		ps.eagerCopies.Inc()
		cost := ps.ep.RecvOverhead(m.size) + ps.ep.CopyTime(m.size)
		if inline {
			ps.busy(pOpt[0], cost)
			finish()
		} else {
			ps.enqueue(func(p *sim.Proc) { ps.busy(p, cost); finish() })
		}
	}
}

// acceptRndv reacts to a matched RTS: make the receive buffer NIC-usable
// and send the CTS. On NIC-matching devices the NIC does this without the
// host.
func (ps *procState) acceptRndv(r *Request, m *inMsg, inline bool, pOpt ...*sim.Proc) {
	sendCTS := func() {
		srcPS := ps.world.procs[m.src]
		ps.ep.Control(srcPS.node, func() { srcPS.arriveCTS(m, ps, r) })
	}
	switch {
	case ps.ep.NICProgress():
		// Buffer acquisition was paid when the receive was posted.
		sendCTS()
	case inline:
		ps.busy(pOpt[0], rndvStep+ps.ep.AcquireBuf(r.buf))
		sendCTS()
	default:
		ps.enqueue(func(p *sim.Proc) {
			ps.busy(p, rndvStep+ps.ep.AcquireBuf(r.buf))
			sendCTS()
		})
	}
}

// arriveCTS reacts, at the sender, to the receiver's clear-to-send: start
// the zero-copy bulk transfer.
func (ps *procState) arriveCTS(m *inMsg, dstPS *procState, r *Request) {
	startBulk := func() {
		ps.ep.Bulk(dstPS.node, m.size, func() {
			// Payload is in the receiver's user buffer.
			m.sender.completeSend()
			if dstPS.ep.NICProgress() {
				r.complete(m.src, m.tag, m.size)
			} else {
				dstPS.enqueue(func(p *sim.Proc) {
					dstPS.busy(p, dstPS.ep.RecvOverhead(m.size))
					r.complete(m.src, m.tag, m.size)
				})
			}
		})
	}
	if ps.ep.NICProgress() {
		startBulk()
		return
	}
	ps.enqueue(func(p *sim.Proc) {
		ps.busy(p, rndvStep)
		startBulk()
	})
}

// irecvImpl posts a receive and returns its request.
func (ps *procState) irecvImpl(p *sim.Proc, buf memreg.Buf, src, tag int, nonblocking bool) *Request {
	if src != AnySource && (src < 0 || src >= ps.world.Size()) {
		panic(fmt.Sprintf("mpi: rank %d receiving from invalid rank %d", ps.rank, src))
	}
	ps.poll(p)
	return ps.startRecv(p, buf, commWorldID, src, tag, nonblocking)
}

// startRecv is irecvImpl minus validation/polling, shared with collectives.
func (ps *procState) startRecv(p *sim.Proc, buf memreg.Buf, comm, src, tag int, nonblocking bool) *Request {
	sameNode := src != AnySource && ps.world.procs[src].node == ps.node
	if !ps.quiet {
		ps.prof.Recv(buf, sameNode, nonblocking)
	}

	r := &Request{
		ps:   ps,
		buf:  buf,
		comm: comm,
		src:  src,
		tag:  tag,
		size: buf.Size,
		born: ps.world.eng.Now(),
	}
	ps.record(trace.EvRecvPost, src, tag, comm, buf.Size)
	if m := ps.matchUnexpected(comm, src, tag); m != nil {
		m.matched = true
		r.matched = m
		ps.removeUnexpected(m)
		// Keep the request discoverable for completion bookkeeping.
		ps.posted = append(ps.posted, r)
		ps.postedHW.Set(int64(len(ps.posted)))
		switch m.kind {
		case eagerMsg:
			ps.deliverEager(r, m, true, p)
		case rtsMsg:
			if ps.ep.NICProgress() {
				ps.busy(p, ps.ep.RecvOverhead(buf.Size)+ps.ep.AcquireBuf(buf))
			}
			ps.acceptRndv(r, m, true, p)
		}
		return r
	}
	// Nothing has arrived: queue the receive first — an arrival during the
	// posting cost below must find it — then charge the cost.
	ps.posted = append(ps.posted, r)
	ps.postedHW.Set(int64(len(ps.posted)))
	if ps.ep.NICProgress() {
		// Tports posts the descriptor (and MMU entries) to the NIC now.
		ps.busy(p, ps.ep.RecvOverhead(buf.Size)+ps.ep.AcquireBuf(buf))
	} else {
		ps.busy(p, postCost)
	}
	return r
}
