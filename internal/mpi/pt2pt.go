package mpi

import (
	"fmt"

	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Fixed library costs of the device-independent layer.
const (
	// postCost is the bookkeeping cost of queueing a receive that cannot
	// complete immediately (host-driven devices; NIC-matching devices pay
	// their full receive overhead at post instead).
	postCost = 100 * units.Nanosecond
	// rndvStep is the host cost of one rendezvous protocol step (parsing an
	// RTS/CTS, building the reply descriptor) on host-driven devices.
	rndvStep = 300 * units.Nanosecond
)

// isendImpl starts a send and returns its request. Blocking Send is
// isendImpl + Wait.
func (ps *procState) isendImpl(p *sim.Proc, buf memreg.Buf, dst, tag int, nonblocking bool) *Request {
	if dst < 0 || dst >= ps.world.Size() {
		panic(fmt.Sprintf("mpi: rank %d sending to invalid rank %d", ps.rank, dst))
	}
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	ps.poll(p)
	return ps.startSend(p, buf, commWorldID, dst, tag, nonblocking)
}

// startSend is isendImpl minus validation/polling, shared with internal
// collective traffic (which uses reserved negative tags).
func (ps *procState) startSend(p *sim.Proc, buf memreg.Buf, comm, dst, tag int, nonblocking bool) *Request {
	dstPS := ps.world.procs[dst]
	sameNode := dstPS.node == ps.node
	if !ps.quiet {
		ps.prof.Send(buf, sameNode, nonblocking)
	}

	req := ps.newRequest()
	*req = Request{
		ps:     ps,
		isSend: true,
		buf:    buf,
		comm:   comm,
		peer:   dst,
		tag:    tag,
		size:   buf.Size,
		born:   ps.eng.Now(),
	}
	ps.sendSeq++
	req.seq = ps.sendSeq
	req.tid = msgtrace.MakeID(ps.rank, req.seq)
	ps.record(trace.EvSendStart, dst, tag, comm, buf.Size)

	rec := ps.world.rec
	if sameNode && buf.Size < ps.world.shmemBelow() {
		rec.Begin(req.tid, int32(ps.rank), int32(dst), int32(tag), req.size, msgtrace.KindShmem, req.born)
		ps.shmSend(p, req, dstPS)
		return req
	}
	if !sameNode {
		ps.markNICPeer(dst)
	}
	switch {
	case buf.Size <= ps.ep.EagerThreshold():
		rec.Begin(req.tid, int32(ps.rank), int32(dst), int32(tag), req.size, msgtrace.KindEager, req.born)
		ps.eagerSend(p, req, dstPS)
	default:
		rec.Begin(req.tid, int32(ps.rank), int32(dst), int32(tag), req.size, msgtrace.KindRndv, req.born)
		ps.rndvSend(p, req, dstPS)
	}
	return req
}

// shmSend crosses the intra-node shared-memory channel: the sender copies
// into the shared segment and the message is visible a half-handshake later.
func (ps *procState) shmSend(p *sim.Proc, req *Request, dstPS *procState) {
	ch := ps.world.shm[ps.node]
	copyCost := ch.CopyTime(req.size)
	start := ps.eng.Now()
	ps.busy(p, ch.HalfHandshake()+copyCost)
	ch.CountCopy(req.size, copyCost)
	if rec := ps.world.rec; rec.Sampled(req.tid) {
		now := ps.eng.Now()
		rec.Span(req.tid, msgtrace.StageSend, ps.rank, -1, 0, -1, start, now-copyCost, req.size)
		rec.Span(req.tid, msgtrace.StageCopy, ps.rank, -1, 0, -1, now-copyCost, now, req.size)
	}
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, tid: req.tid, kind: eagerMsg, ch: chShm}
	ch.Deliver(func() { dstPS.arrive(m) })
	req.done = true
	ps.record(trace.EvSendDone, req.peer, req.tag, req.comm, req.size)
	ps.finishReq(req, "send")
}

// eagerSend copies into pre-registered staging (VAPI/GM) or hands the user
// buffer to the NIC (Elan) and pushes envelope+payload through the wire.
func (ps *procState) eagerSend(p *sim.Proc, req *Request, dstPS *procState) {
	rec := ps.world.rec
	sendCost := ps.ep.IssueStall() + ps.ep.SendOverhead(req.size)
	var regCost, copyCost sim.Time
	if ps.ep.AcquireOnEager() {
		regCost = ps.ep.AcquireBuf(req.buf)
	} else {
		copyCost = ps.ep.CopyTime(req.size)
		ps.eagerCopies.Inc()
	}
	start := ps.eng.Now()
	ps.busy(p, sendCost+regCost+copyCost)
	if rec.Sampled(req.tid) {
		rec.Span(req.tid, msgtrace.StageSend, ps.rank, -1, 0, -1, start, start+sendCost, req.size)
		if ps.ep.AcquireOnEager() {
			// Zero-length span = registration cache hit; a real observation.
			rec.Span(req.tid, msgtrace.StageRegister, ps.rank, -1, 0, -1, start+sendCost, start+sendCost+regCost, req.size)
		} else {
			rec.Span(req.tid, msgtrace.StageCopy, ps.rank, -1, 0, -1, start+sendCost, start+sendCost+copyCost, req.size)
		}
	}
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, tid: req.tid, kind: eagerMsg, ch: chNet}
	rec.SetCur(req.tid)
	ps.ep.Eager(dstPS.node, req.size, func() { dstPS.arrive(m) })
	rec.ClearCur()
	req.done = true
	ps.record(trace.EvSendDone, req.peer, req.tag, req.comm, req.size)
	ps.finishReq(req, "send")
}

// rndvSend opens the rendezvous: register the buffer, send RTS, and wait
// for the CTS/data exchange to complete the request.
func (ps *procState) rndvSend(p *sim.Proc, req *Request, dstPS *procState) {
	req.rndv = true
	rec := ps.world.rec
	sendCost := ps.ep.IssueStall() + ps.ep.SendOverhead(req.size)
	regCost := ps.ep.AcquireBuf(req.buf)
	start := ps.eng.Now()
	ps.busy(p, sendCost+regCost)
	if rec.Sampled(req.tid) {
		rec.Span(req.tid, msgtrace.StageSend, ps.rank, -1, 0, -1, start, start+sendCost, req.size)
		rec.Span(req.tid, msgtrace.StageRegister, ps.rank, -1, 0, -1, start+sendCost, start+sendCost+regCost, req.size)
	}
	req.hsStart = ps.eng.Now()
	m := &inMsg{comm: req.comm, src: ps.rank, tag: req.tag, size: req.size, seq: req.seq, tid: req.tid, kind: rtsMsg, ch: chNet, sender: req}
	rec.SetCur(req.tid)
	ps.ep.Control(dstPS.node, func() { dstPS.arrive(m) })
	rec.ClearCur()
}

// arrive handles a message landing at this rank (event context: no host
// time may be charged here). On NIC-matching devices (Tports) the match
// itself takes NIC time proportional to the pending-entry count.
func (ps *procState) arrive(m *inMsg) {
	if m.ch == chNet && ps.world.procs[m.src].node != ps.node {
		// Receive side of a cross-node connection: account it here, on this
		// rank's own engine, never from the sender's shard.
		ps.markNICPeer(m.src)
	}
	if nm, ok := ps.ep.(dev.NICMatcher); ok && m.ch == chNet {
		pending := len(ps.posted) + len(ps.unexp)
		if rec := ps.world.rec; rec.Sampled(m.tid) {
			start := ps.eng.Now()
			nm.MatchDelay(pending, func() {
				rec.Span(m.tid, msgtrace.StageMatch, ps.rank, -1, 0, -1, start, ps.eng.Now(), m.size)
				ps.arriveMatched(m)
			})
			return
		}
		nm.MatchDelay(pending, func() { ps.arriveMatched(m) })
		return
	}
	ps.arriveMatched(m)
}

func (ps *procState) arriveMatched(m *inMsg) {
	ps.record(trace.EvArrive, m.src, m.tag, m.comm, m.size)
	r := ps.matchPosted(m.comm, m.src, m.tag)
	if r == nil {
		ps.unexp = append(ps.unexp, m)
		ps.unexpHW.Set(int64(len(ps.unexp)))
		ps.notify()
		return
	}
	r.matched = m
	m.matched = true
	// The receive was posted first and waited for this arrival: the gap is
	// the receiver's exposed wait (clipped to the message's own interval by
	// the blame decomposition).
	ps.world.rec.Span(m.tid, msgtrace.StageWait, ps.rank, -1, 0, -1, r.born, ps.eng.Now(), m.size)
	switch m.kind {
	case eagerMsg:
		ps.deliverEager(r, m, false)
	case rtsMsg:
		ps.acceptRndv(r, m, false)
	}
}

// deliverEager completes a matched eager receive. inline reports whether we
// are already running on the receiving rank's process (receive posted
// against an unexpected arrival) — then p is valid and costs are paid
// directly; otherwise a host action is enqueued (or, for NIC-matching
// devices with a pre-posted receive, completion is free and immediate).
func (ps *procState) deliverEager(r *Request, m *inMsg, inline bool, pOpt ...*sim.Proc) {
	finish := func() { r.complete(m.src, m.tag, m.size) }
	// work charges the completion cost on the rank's process and records the
	// receive-side span over exactly the charged interval.
	work := func(p *sim.Proc, cost sim.Time) {
		start := ps.eng.Now()
		ps.busy(p, cost)
		ps.world.rec.Span(m.tid, msgtrace.StageDeliver, ps.rank, -1, 0, -1, start, ps.eng.Now(), m.size)
		finish()
	}
	switch {
	case m.ch == chShm:
		ch := ps.world.shm[ps.node]
		copyCost := ch.CopyTime(m.size)
		ch.CountCopy(m.size, copyCost)
		cost := ch.HalfHandshake() + copyCost
		if inline {
			work(pOpt[0], cost)
		} else {
			ps.enqueue(func(p *sim.Proc) { work(p, cost) })
		}
	case ps.ep.NICProgress() && !inline:
		// Pre-posted receive on a NIC-matching device: payload lands in the
		// user buffer with no host involvement.
		finish()
	case ps.ep.NICProgress() && inline:
		// Unexpected on a NIC-matching device: drain from NIC buffering.
		ps.eagerCopies.Inc()
		work(pOpt[0], ps.ep.CopyTime(m.size))
	default:
		ps.eagerCopies.Inc()
		cost := ps.ep.RecvOverhead(m.size) + ps.ep.CopyTime(m.size)
		if inline {
			work(pOpt[0], cost)
		} else {
			ps.enqueue(func(p *sim.Proc) { work(p, cost) })
		}
	}
}

// acceptRndv reacts to a matched RTS: make the receive buffer NIC-usable
// and send the CTS. On NIC-matching devices the NIC does this without the
// host.
func (ps *procState) acceptRndv(r *Request, m *inMsg, inline bool, pOpt ...*sim.Proc) {
	rec := ps.world.rec
	sendCTS := func() {
		srcPS := ps.world.procs[m.src]
		rec.SetCur(m.tid)
		ps.ep.Control(srcPS.node, func() { srcPS.arriveCTS(m, ps, r) })
		rec.ClearCur()
	}
	// prep registers the receive buffer and parses the RTS on the host,
	// recording the acquire as the receiver's registration span.
	prep := func(p *sim.Proc) {
		start := ps.eng.Now()
		ps.busy(p, rndvStep+ps.ep.AcquireBuf(r.buf))
		rec.Span(m.tid, msgtrace.StageRegister, ps.rank, -1, 0, -1, start, ps.eng.Now(), m.size)
	}
	switch {
	case ps.ep.NICProgress():
		// Buffer acquisition was paid when the receive was posted.
		sendCTS()
	case inline:
		prep(pOpt[0])
		sendCTS()
	default:
		ps.enqueue(func(p *sim.Proc) {
			prep(p)
			sendCTS()
		})
	}
}

// arriveCTS reacts, at the sender, to the receiver's clear-to-send: start
// the zero-copy bulk transfer.
func (ps *procState) arriveCTS(m *inMsg, dstPS *procState, r *Request) {
	rec := ps.world.rec
	// The RTS->CTS round trip the sender just completed is the rendezvous
	// handshake: it started when the RTS left (hsStart) and ends now.
	rec.Span(m.tid, msgtrace.StageHandshake, ps.rank, -1, 0, -1, m.sender.hsStart, ps.eng.Now(), m.size)
	startBulk := func() {
		rec.SetCur(m.tid)
		ps.ep.Bulk(dstPS.node, m.size, func() {
			// Payload is in the receiver's user buffer. The bulk completion
			// runs on the receiver's domain; the sender-side FIN must land on
			// the sender's own engine. The hop is taken whenever the nodes
			// differ — not only when the engines do — so its extra latency is
			// identical at every shard count, and it carries the receiver
			// node's deterministic skew like every other cross-domain event.
			w := ps.world
			if w.scale && dstPS.node != ps.node {
				dstPS.eng.ScheduleOn(ps.eng, w.finLat+w.skew(dstPS.node), func() {
					m.sender.completeSend()
				})
			} else {
				m.sender.completeSend()
			}
			if dstPS.ep.NICProgress() {
				r.complete(m.src, m.tag, m.size)
			} else {
				dstPS.enqueue(func(p *sim.Proc) {
					start := dstPS.eng.Now()
					dstPS.busy(p, dstPS.ep.RecvOverhead(m.size))
					rec.Span(m.tid, msgtrace.StageDeliver, dstPS.rank, -1, 0, -1, start, dstPS.eng.Now(), m.size)
					r.complete(m.src, m.tag, m.size)
				})
			}
		})
		rec.ClearCur()
	}
	if ps.ep.NICProgress() {
		startBulk()
		return
	}
	ps.enqueue(func(p *sim.Proc) {
		start := ps.eng.Now()
		ps.busy(p, rndvStep)
		rec.Span(m.tid, msgtrace.StageSend, ps.rank, -1, 0, -1, start, ps.eng.Now(), m.size)
		startBulk()
	})
}

// irecvImpl posts a receive and returns its request.
func (ps *procState) irecvImpl(p *sim.Proc, buf memreg.Buf, src, tag int, nonblocking bool) *Request {
	if src != AnySource && (src < 0 || src >= ps.world.Size()) {
		panic(fmt.Sprintf("mpi: rank %d receiving from invalid rank %d", ps.rank, src))
	}
	ps.poll(p)
	return ps.startRecv(p, buf, commWorldID, src, tag, nonblocking)
}

// startRecv is irecvImpl minus validation/polling, shared with collectives.
func (ps *procState) startRecv(p *sim.Proc, buf memreg.Buf, comm, src, tag int, nonblocking bool) *Request {
	sameNode := src != AnySource && ps.world.procs[src].node == ps.node
	if !ps.quiet {
		ps.prof.Recv(buf, sameNode, nonblocking)
	}

	r := ps.newRequest()
	*r = Request{
		ps:   ps,
		buf:  buf,
		comm: comm,
		src:  src,
		tag:  tag,
		size: buf.Size,
		born: ps.eng.Now(),
	}
	ps.record(trace.EvRecvPost, src, tag, comm, buf.Size)
	if m := ps.matchUnexpected(comm, src, tag); m != nil {
		m.matched = true
		r.matched = m
		ps.removeUnexpected(m)
		// Keep the request discoverable for completion bookkeeping.
		ps.posted = append(ps.posted, r)
		ps.postedHW.Set(int64(len(ps.posted)))
		switch m.kind {
		case eagerMsg:
			ps.deliverEager(r, m, true, p)
		case rtsMsg:
			if ps.ep.NICProgress() {
				ps.busy(p, ps.ep.RecvOverhead(buf.Size)+ps.ep.AcquireBuf(buf))
			}
			ps.acceptRndv(r, m, true, p)
		}
		return r
	}
	// Nothing has arrived: queue the receive first — an arrival during the
	// posting cost below must find it — then charge the cost.
	ps.posted = append(ps.posted, r)
	ps.postedHW.Set(int64(len(ps.posted)))
	if ps.ep.NICProgress() {
		// Tports posts the descriptor (and MMU entries) to the NIC now.
		ps.busy(p, ps.ep.RecvOverhead(buf.Size)+ps.ep.AcquireBuf(buf))
	} else {
		ps.busy(p, postCost)
	}
	return r
}
