package mpi

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// A plan that drops every packet: the NIC retries until its policy gives
// up, and the job must fail with a typed, attributed error — never hang.
func TestRetryExhaustionTyped(t *testing.T) {
	for _, p := range cluster.OSU() {
		p := p.With(cluster.WithFaults(faults.DropPlan(7, 1.0)))
		t.Run(p.Name, func(t *testing.T) {
			w, err := NewWorld(Config{Net: p.New(2), Procs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(r *Rank) {
				buf := r.Malloc(512)
				if r.Rank() == 0 {
					r.Send(buf, 1, 0)
				} else {
					r.Recv(buf, 0, 0)
				}
			})
			if err == nil {
				t.Fatal("total packet loss did not fail the run")
			}
			if !errors.Is(err, faults.ErrRetryExhausted) {
				t.Fatalf("err %v is not ErrRetryExhausted", err)
			}
			var le *faults.LinkError
			if !errors.As(err, &le) {
				t.Fatalf("err %v carries no *faults.LinkError", err)
			}
			if le.Src != 0 || le.Dst != 1 {
				t.Errorf("LinkError attributes link node%d->node%d, want node0->node1", le.Src, le.Dst)
			}
			if le.Attempts < 2 {
				t.Errorf("gave up after %d attempts — no retry happened", le.Attempts)
			}
			if !strings.Contains(err.Error(), "rank 0") {
				t.Errorf("error %q does not attribute the failing rank", err)
			}
		})
	}
}

// A rank starving on a receive that can never complete must be converted
// by the watchdog into ErrTimeout naming the rank and operation.
func TestWatchdogTimeoutTyped(t *testing.T) {
	w := MustWorld(Config{Net: cluster.IBA().New(2), Procs: 2, Timeout: units.Millisecond})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Recv(r.Malloc(64), 0, 0) // rank 0 never sends
		}
	})
	if err == nil {
		t.Fatal("starved receive did not fail the run")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err %v is not ErrTimeout", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err %v carries no *TimeoutError", err)
	}
	if te.Rank != 1 {
		t.Errorf("TimeoutError.Rank = %d, want the starved rank 1", te.Rank)
	}
	if !strings.Contains(te.Op, "recv from rank 0") {
		t.Errorf("TimeoutError.Op = %q does not name the stuck receive", te.Op)
	}
}

// A fault plan auto-arms the watchdog at faults.DefaultTimeout, so even a
// pathological plan cannot deadlock the world; an explicit negative
// Timeout disables the watchdog again.
func TestFaultPlanArmsWatchdog(t *testing.T) {
	p := cluster.IBA().With(cluster.WithFaults(faults.DropPlan(1, 0.0)))
	w := MustWorld(Config{Net: p.New(2), Procs: 2})
	if w.cfg.Timeout != faults.DefaultTimeout {
		t.Fatalf("Timeout = %v, want auto-armed %v", w.cfg.Timeout, faults.DefaultTimeout)
	}
	w2 := MustWorld(Config{Net: p.New(2), Procs: 2, Timeout: -1})
	if w2.cfg.Timeout > 0 {
		t.Fatalf("negative Timeout did not disable the watchdog: %v", w2.cfg.Timeout)
	}
}

func TestNewWorldValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil net", Config{Procs: 2}, "Config.Net"},
		{"no procs", Config{Net: cluster.IBA().New(2), Procs: 0}, "Procs"},
		{"negative ppn", Config{Net: cluster.IBA().New(2), Procs: 2, ProcsPerNode: -1}, "ProcsPerNode"},
		{"overcommit", Config{Net: cluster.IBA().New(2), Procs: 5, ProcsPerNode: 2}, "5"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := NewWorld(c.cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if w != nil {
				t.Fatal("NewWorld returned a world alongside an error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// The same seed must replay the same faulty execution exactly: identical
// elapsed time, identical message timeline, identical drop verdicts.
func TestSeededFaultReplayIdentical(t *testing.T) {
	run := func() (units.Time, string) {
		p := cluster.Myri().With(cluster.WithFaults(faults.DropPlan(42, 0.05)))
		tl := &trace.Timeline{}
		w := MustWorld(Config{Net: p.New(4), Procs: 4, Timeline: tl})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(8 * units.KB)
			for i := 0; i < 24; i++ {
				next := (r.Rank() + 1) % r.Size()
				prev := (r.Rank() - 1 + r.Size()) % r.Size()
				r.Sendrecv(buf, next, i, buf, prev, i)
			}
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tl.Render(&buf)
		return w.Elapsed(), buf.String()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 {
		t.Fatalf("elapsed differs across replays: %v vs %v", e1, e2)
	}
	if t1 != t2 {
		t.Fatal("message timeline differs across replays of the same seed")
	}
	if e1 <= 0 || len(t1) == 0 {
		t.Fatalf("degenerate replay: elapsed %v, timeline %d bytes", e1, len(t1))
	}
}

// Different seeds must diverge (otherwise the seed is not actually wired
// through to the injector).
func TestFaultSeedMatters(t *testing.T) {
	elapsed := func(seed uint64) units.Time {
		p := cluster.IBA().With(cluster.WithFaults(faults.DropPlan(seed, 0.2)))
		w := MustWorld(Config{Net: p.New(2), Procs: 2})
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(4 * units.KB)
			for i := 0; i < 32; i++ {
				if r.Rank() == 0 {
					r.Send(buf, 1, 0)
					r.Recv(buf, 1, 1)
				} else {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	if elapsed(1) == elapsed(999) {
		t.Fatal("two different seeds produced identical faulty executions")
	}
}
