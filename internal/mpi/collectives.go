package mpi

import (
	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/units"
)

// reduceBW is the host rate of combining two operand streams (MPI_SUM-like
// ops on the paper's 2.4 GHz Xeons).
var reduceBW = units.MBps(800)

// collective wraps a collective body: records the call once and silences
// point-to-point profiling of its decomposition, matching what the MPICH
// logging interface sees at the MPI layer.
func (r *Rank) collective(name string, bytes int64, body func(), bufs ...memreg.Buf) {
	r.ps.prof.Collective(name, bytes, bufs...)
	r.ps.quiet = true
	defer func() { r.ps.quiet = false }()
	body()
}

// Barrier blocks until every rank has entered it (dissemination algorithm,
// correct for any world size).
func (r *Rank) Barrier() {
	c := r.CommWorld()
	r.collective("Barrier", 0, c.barrierBody)
}

// Bcast broadcasts buf from root. By default it runs the MPICH 1.2.x
// binomial tree; on a platform with the hardware-multicast extension
// enabled (and one rank per node) the payload rides a single
// switch-replicated injection instead.
func (r *Rank) Bcast(buf memreg.Buf, root int) {
	if mc, ok := r.ps.ep.(hwMulticaster); ok && mc.HWMulticastEnabled() &&
		r.ps.world.cfg.ProcsPerNode == 1 && r.Size() > 1 {
		r.collective("Bcast", buf.Size, func() { r.hwBcast(mc, buf, root) }, buf)
		return
	}
	c := r.CommWorld()
	r.collective("Bcast", buf.Size, func() { c.bcastBody(buf, root) }, buf)
}

// Reduce combines contributions into root over a binomial tree, charging
// the combine cost per received operand (commutative operation assumed, as
// for the workloads' MPI_SUM/MPI_MAX).
func (r *Rank) Reduce(buf memreg.Buf, root int) {
	c := r.CommWorld()
	r.collective("Reduce", buf.Size, func() { c.reduceBody(buf, root) }, buf)
}

// Allreduce is Reduce to rank 0 followed by Bcast — the MPICH 1.2.x
// composition, whose 2·log2(P) latency chain is why the lowest-latency
// interconnect (Quadrics) wins this operation in the paper.
func (r *Rank) Allreduce(buf memreg.Buf) {
	c := r.CommWorld()
	r.collective("Allreduce", buf.Size, func() {
		c.reduceBody(buf, 0)
		c.bcastBody(buf, 0)
	}, buf)
}

// hwMulticaster is the optional device capability behind the accelerated
// broadcast (the paper's Section 3.7 extension).
type hwMulticaster interface {
	dev.Multicaster
	HWMulticastEnabled() bool
}

// hwBcast is the multicast fast path: the root injects once; every other
// rank waits for the switch-replicated delivery.
func (r *Rank) hwBcast(mc hwMulticaster, buf memreg.Buf, root int) {
	ps := r.ps
	if r.Rank() == root {
		ps.busy(r.p, ps.ep.SendOverhead(buf.Size)+ps.ep.CopyTime(buf.Size))
		world := ps.world
		mc.Multicast(buf.Size, func(node int) {
			// One rank per node: the rank index equals the node index.
			dst := world.procs[node]
			dst.mcSeen++
			dst.notify()
		})
		return
	}
	ps.mcTaken++
	want := ps.mcTaken
	ps.waitFor(r.p, "hw-bcast", func() bool { return ps.mcSeen >= want })
	ps.busy(r.p, ps.ep.RecvOverhead(buf.Size)+ps.ep.CopyTime(buf.Size))
}

// Communicator-scoped collectives. Each records the call on this rank's
// profile and runs the same algorithms as the world-level operations, but
// scoped to the communicator's group and matching context.

// Barrier blocks until every communicator member has entered it.
func (c *Comm) Barrier() {
	c.r.collective("Barrier", 0, c.barrierBody)
}

// Bcast broadcasts buf from the communicator rank root.
func (c *Comm) Bcast(buf memreg.Buf, root int) {
	c.r.collective("Bcast", buf.Size, func() { c.bcastBody(buf, root) }, buf)
}

// Reduce combines contributions into the communicator rank root.
func (c *Comm) Reduce(buf memreg.Buf, root int) {
	c.r.collective("Reduce", buf.Size, func() { c.reduceBody(buf, root) }, buf)
}

// Allreduce combines contributions into every member.
func (c *Comm) Allreduce(buf memreg.Buf) {
	c.r.collective("Allreduce", buf.Size, func() {
		c.reduceBody(buf, 0)
		c.bcastBody(buf, 0)
	}, buf)
}

// barrierBody is the dissemination barrier over this communicator.
func (c *Comm) barrierBody() {
	p := c.Size()
	if p == 1 {
		return
	}
	zero := c.r.ps.scratch(0)
	for k := 1; k < p; k <<= 1 {
		dst := (c.me + k) % p
		src := (c.me - k + p) % p
		sr := c.isendInternal(zero, dst, tagBarrier)
		rr := c.irecvInternal(zero, src, tagBarrier)
		c.r.waitOne(sr)
		c.r.waitOne(rr)
	}
}

// bcastBody is the binomial-tree broadcast over this communicator.
func (c *Comm) bcastBody(buf memreg.Buf, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	relative := (c.me - root + p) % p
	mask := 1
	for mask < p {
		if relative&mask != 0 {
			src := c.me - mask
			if src < 0 {
				src += p
			}
			c.recvInternal(buf, src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p {
			dst := c.me + mask
			if dst >= p {
				dst -= p
			}
			c.sendInternal(buf, dst, tagBcast)
		}
		mask >>= 1
	}
}

// reduceBody is the binomial-tree reduction over this communicator.
func (c *Comm) reduceBody(buf memreg.Buf, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	relative := (c.me - root + p) % p
	tmp := c.r.ps.scratch(buf.Size)
	mask := 1
	for mask < p {
		if relative&mask == 0 {
			srcRel := relative | mask
			if srcRel < p {
				src := (srcRel + root) % p
				c.recvInternal(tmp, src, tagReduce)
				c.r.ps.busy(c.r.p, reduceBW.TimeFor(buf.Size))
			}
		} else {
			dst := (relative - mask + root) % p
			c.sendInternal(buf, dst, tagReduce)
			break
		}
		mask <<= 1
	}
}

// Alltoall exchanges equal-size blocks between all rank pairs: every rank
// sends sendBuf's i-th block to rank i. Implemented as the MPICH 1.2.x
// basic algorithm — post all receives, post all sends (rotated to avoid
// hot-spotting), wait for everything.
func (r *Rank) Alltoall(sendBuf, recvBuf memreg.Buf) {
	p := int64(r.Size())
	if sendBuf.Size%p != 0 || recvBuf.Size%p != 0 {
		panic("mpi: Alltoall buffers must divide evenly by world size")
	}
	block := sendBuf.Size / p
	counts := r.ps.int64Scratch(&r.ps.cntScratch, int(p))
	for i := range counts {
		counts[i] = block
	}
	r.collective("Alltoall", sendBuf.Size, func() {
		r.alltoallvBody(sendBuf, recvBuf, counts, counts)
	}, sendBuf, recvBuf)
}

// Alltoallv is the variable-block variant; sendCounts[i] bytes go to rank i
// and recvCounts[i] bytes are expected from rank i.
func (r *Rank) Alltoallv(sendBuf, recvBuf memreg.Buf, sendCounts, recvCounts []int64) {
	if len(sendCounts) != r.Size() || len(recvCounts) != r.Size() {
		panic("mpi: Alltoallv counts must have world-size entries")
	}
	var total int64
	for _, c := range sendCounts {
		total += c
	}
	r.collective("Alltoallv", total, func() {
		r.alltoallvBody(sendBuf, recvBuf, sendCounts, recvCounts)
	}, sendBuf, recvBuf)
}

func (r *Rank) alltoallvBody(sendBuf, recvBuf memreg.Buf, sendCounts, recvCounts []int64) {
	p := r.Size()
	me := r.Rank()
	// Offsets and the request list live in per-rank scratch: collectives are
	// not reentrant per rank, and the basic alltoall posts 2(p-1) requests
	// per call — a real allocation stream at a thousand ranks.
	off := r.ps.int64Scratch(&r.ps.offScratch, 2*p)
	sendOff, recvOff := off[:p], off[p:]
	var so, ro int64
	for i := 0; i < p; i++ {
		sendOff[i], recvOff[i] = so, ro
		so += sendCounts[i]
		ro += recvCounts[i]
	}
	reqs := r.ps.reqScratch[:0]
	for i := 1; i < p; i++ {
		src := (me - i + p) % p
		if recvCounts[src] > 0 {
			reqs = append(reqs, r.irecvInternal(recvBuf.Slice(recvOff[src], recvCounts[src]), src, tagAlltoall))
		}
	}
	for i := 1; i < p; i++ {
		dst := (me + i) % p
		if sendCounts[dst] > 0 {
			reqs = append(reqs, r.isendInternal(sendBuf.Slice(sendOff[dst], sendCounts[dst]), dst, tagAlltoall))
		}
	}
	// Local block "copies" itself; charge the memcpy.
	if sendCounts[me] > 0 {
		r.ps.busy(r.p, r.ps.ep.CopyTime(sendCounts[me]))
	}
	r.ps.reqScratch = reqs[:0]
	for _, req := range reqs {
		r.waitOne(req)
	}
}

// int64Scratch returns a length-n view of a reusable per-rank slice,
// growing the backing array only when a larger collective comes along.
func (ps *procState) int64Scratch(s *[]int64, n int) []int64 {
	if cap(*s) < n {
		*s = make([]int64, n)
	}
	return (*s)[:n]
}

// Allgather gathers equal-size blocks from all ranks to all ranks over a
// ring: step s passes rank (me-s)'s block along. recvBuf must hold
// world-size blocks; sendBuf is this rank's block.
func (r *Rank) Allgather(sendBuf, recvBuf memreg.Buf) {
	p := int64(r.Size())
	if recvBuf.Size%p != 0 {
		panic("mpi: Allgather recv buffer must divide evenly by world size")
	}
	block := recvBuf.Size / p
	if sendBuf.Size != block {
		panic("mpi: Allgather send buffer must be one block")
	}
	r.collective("Allgather", recvBuf.Size, func() {
		n := r.Size()
		if n == 1 {
			return
		}
		me := r.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		// Own block "arrives" by local copy.
		r.ps.busy(r.p, r.ps.ep.CopyTime(block))
		for s := 0; s < n-1; s++ {
			outIdx := (me - s + n) % n
			inIdx := (me - s - 1 + n) % n
			sr := r.isendInternal(recvBuf.Slice(int64(outIdx)*block, block), right, tagAllgather)
			rr := r.irecvInternal(recvBuf.Slice(int64(inIdx)*block, block), left, tagAllgather)
			r.waitOne(sr)
			r.waitOne(rr)
		}
	}, sendBuf, recvBuf)
}
