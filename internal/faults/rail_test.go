package faults

import (
	"testing"

	"mpinet/internal/units"
)

// Flatten must fold a rail's kills into wildcard flaps (and its brown-outs
// into wildcard degrades) while stripping every rail-level entry, leaving
// other rails' entries out of the result entirely.
func TestFlattenResolvesOwnRailOnly(t *testing.T) {
	p := &Plan{
		Seed: 7,
		Drop: 0.01,
		RailKills: []RailKill{
			{Rail: 0, At: 3 * units.Millisecond},
			{Rail: 1, At: 9 * units.Millisecond},
		},
		RailDegrades: []RailDegrade{
			{Rail: 1, From: units.Millisecond, Until: 2 * units.Millisecond, Drop: 0.5},
		},
	}

	q := p.Flatten(0)
	if q == p {
		t.Fatal("Flatten(0) returned the receiver despite rail entries")
	}
	if len(q.RailKills) != 0 || len(q.RailDegrades) != 0 {
		t.Fatalf("flattened plan still carries rail entries: %+v", q)
	}
	if len(q.Flaps) != 1 {
		t.Fatalf("rail 0 got %d flaps, want 1 (its own kill)", len(q.Flaps))
	}
	f := q.Flaps[0]
	if f.Src != Wildcard || f.Dst != Wildcard || f.From != 3*units.Millisecond || f.Until != Forever {
		t.Errorf("kill folded to %+v, want wildcard flap from 3ms forever", f)
	}
	if len(q.Degrades) != 0 {
		t.Errorf("rail 0 inherited rail 1's degrade: %+v", q.Degrades)
	}
	if q.Seed != p.Seed || q.Drop != p.Drop {
		t.Errorf("Flatten changed seed/baseline: %+v", q)
	}

	r1 := p.Flatten(1)
	if len(r1.Flaps) != 1 || len(r1.Degrades) != 1 {
		t.Fatalf("rail 1 got %d flaps / %d degrades, want 1 / 1", len(r1.Flaps), len(r1.Degrades))
	}
	d := r1.Degrades[0]
	if d.Src != Wildcard || d.Drop != 0.5 || d.From != units.Millisecond || d.Until != 2*units.Millisecond {
		t.Errorf("degrade folded to %+v", d)
	}

	// The receiver is untouched in every case.
	if len(p.RailKills) != 2 || len(p.RailDegrades) != 1 || len(p.Flaps) != 0 {
		t.Errorf("Flatten mutated its receiver: %+v", p)
	}
}

// A plan with no rail-level entries flattens to itself (no copy), and a
// nil plan stays nil — solo builders call Flatten(0) unconditionally.
func TestFlattenPassthrough(t *testing.T) {
	p := &Plan{Seed: 3, Drop: 0.1}
	if q := p.Flatten(0); q != p {
		t.Error("plain plan was copied by Flatten")
	}
	var nilPlan *Plan
	if q := nilPlan.Flatten(0); q != nil {
		t.Error("nil plan flattened to non-nil")
	}
}

// A flattened RailDegrade must raise the injector's drop probability
// inside its window and only there.
func TestDegradeWindowRaisesDropRate(t *testing.T) {
	p := (&Plan{
		Seed:         11,
		RailDegrades: []RailDegrade{{Rail: 0, From: 0, Until: units.Millisecond, Drop: 1.0}},
	}).Flatten(0)
	in := NewInjector(p)
	for i := 0; i < 50; i++ {
		if v := in.Verdict(0, 1, units.Microsecond); v != Drop {
			t.Fatalf("packet %d inside a Drop=1.0 window got verdict %v", i, v)
		}
	}
	dropped := 0
	for i := 0; i < 200; i++ {
		if in.Verdict(0, 1, 2*units.Millisecond) == Drop {
			dropped++
		}
	}
	if dropped != 0 {
		t.Errorf("%d drops outside the degrade window on a plan with no baseline", dropped)
	}
}

// RailSeed keeps rail 0 on the bond seed (solo replay compatibility) and
// gives other rails distinct derived seeds.
func TestRailSeed(t *testing.T) {
	const seed = 0xABCDEF
	if RailSeed(seed, 0) != seed {
		t.Error("rail 0 does not keep the bond seed")
	}
	s1, s2 := RailSeed(seed, 1), RailSeed(seed, 2)
	if s1 == seed || s2 == seed || s1 == s2 {
		t.Errorf("derived seeds are not distinct: %#x %#x %#x", uint64(seed), s1, s2)
	}
	if RailSeed(seed, 1) != s1 {
		t.Error("RailSeed is not deterministic")
	}
}

// Uniform must expose the same counter-PRNG purity as the injector:
// order-independent, seed-sensitive.
func TestUniformIsPure(t *testing.T) {
	a, b := Uniform(1, 2, 3), Uniform(1, 2, 3)
	if a != b {
		t.Fatal("Uniform is not a pure function of its inputs")
	}
	if Uniform(1, 2, 3) == Uniform(2, 2, 3) {
		t.Error("Uniform ignores the seed")
	}
	if a < 0 || a >= 1 {
		t.Errorf("Uniform out of [0,1): %v", a)
	}
}
