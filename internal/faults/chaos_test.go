package faults

import (
	"errors"
	"testing"

	"mpinet/internal/units"
)

// TestScaledTimeout pins the watchdog-scaling contract: the paper-scale
// testbed keeps exactly DefaultTimeout (committed outputs must not move),
// and the budget is monotone in both rank count and fabric diameter.
func TestScaledTimeout(t *testing.T) {
	if got := ScaledTimeout(8, 1); got != DefaultTimeout {
		t.Fatalf("ScaledTimeout(8,1) = %v, want DefaultTimeout %v", got, DefaultTimeout)
	}
	if got := ScaledTimeout(2, 1); got != DefaultTimeout {
		t.Fatalf("small worlds must keep the default, got %v", got)
	}
	// Half the default per doubling past 8 ranks.
	if got, want := ScaledTimeout(16, 1), DefaultTimeout+DefaultTimeout/2; got != want {
		t.Fatalf("ScaledTimeout(16,1) = %v, want %v", got, want)
	}
	if got, want := ScaledTimeout(64, 1), DefaultTimeout+3*(DefaultTimeout/2); got != want {
		t.Fatalf("ScaledTimeout(64,1) = %v, want %v", got, want)
	}
	// A quarter per element of diameter past the single crossbar: the
	// 3-level Clos (diameter 5) adds one full default.
	if got, want := ScaledTimeout(8, 5), 2*DefaultTimeout; got != want {
		t.Fatalf("ScaledTimeout(8,5) = %v, want %v", got, want)
	}
	ranks := []int{8, 16, 100, 512, 4096}
	for i := 1; i < len(ranks); i++ {
		if ScaledTimeout(ranks[i], 3) <= ScaledTimeout(ranks[i-1], 3) {
			t.Fatalf("not monotone in ranks at %d", ranks[i])
		}
	}
	for d := 2; d < 8; d++ {
		if ScaledTimeout(512, d) <= ScaledTimeout(512, d-1) {
			t.Fatalf("not monotone in diameter at %d", d)
		}
	}
}

// TestPartitionedErrorChain checks the typed-failure taxonomy: both
// structural failure types unwrap to ErrPartitioned (and not to the
// probabilistic ErrRetryExhausted).
func TestPartitionedErrorChain(t *testing.T) {
	pe := &PartitionError{Src: 0, Dst: 9, Element: "spine plane 1"}
	if !errors.Is(pe, ErrPartitioned) {
		t.Fatal("PartitionError does not unwrap to ErrPartitioned")
	}
	if errors.Is(pe, ErrRetryExhausted) {
		t.Fatal("PartitionError must not claim retry exhaustion")
	}
	nde := &NodeDownError{Node: 5, At: units.Millisecond}
	if !errors.Is(nde, ErrPartitioned) {
		t.Fatal("NodeDownError does not unwrap to ErrPartitioned")
	}
	// The concrete types stay recoverable for layer-specific handling.
	var gotPE *PartitionError
	if !errors.As(error(pe), &gotPE) || gotPE.Element != "spine plane 1" {
		t.Fatal("PartitionError lost through errors.As")
	}
	var gotNDE *NodeDownError
	wrapped := &LinkError{} // unrelated type: As must not match
	if errors.As(error(wrapped), &gotNDE) {
		t.Fatal("errors.As matched a NodeDownError in a LinkError")
	}
}

// TestSwitchKillWindows pins the Dead/Detected life cycle: dead from At,
// visible to routing only after the detection delay, and both end at
// RepairAt (a kill with RepairAt 0 never heals).
func TestSwitchKillWindows(t *testing.T) {
	k := SwitchKill{Level: 1, Index: 2, At: 10 * units.Millisecond, RepairAt: 30 * units.Millisecond}
	d := DefaultDetectDelay
	cases := []struct {
		now            units.Time
		dead, detected bool
	}{
		{0, false, false},
		{10*units.Millisecond - 1, false, false},
		{10 * units.Millisecond, true, false},
		{10*units.Millisecond + d - 1, true, false},
		{10*units.Millisecond + d, true, true},
		{30*units.Millisecond - 1, true, true},
		{30 * units.Millisecond, false, false},
	}
	for _, tc := range cases {
		if got := k.Dead(tc.now); got != tc.dead {
			t.Errorf("Dead(%v) = %v, want %v", tc.now, got, tc.dead)
		}
		if got := k.Detected(tc.now, d); got != tc.detected {
			t.Errorf("Detected(%v) = %v, want %v", tc.now, got, tc.detected)
		}
	}
	forever := SwitchKill{Level: 1, Index: 0, At: units.Millisecond}
	if !forever.Dead(units.Second) || !forever.Detected(units.Second, d) {
		t.Fatal("a kill without RepairAt must stay dead")
	}
}

// TestNodeCrashDarkNIC checks the injector's rendering of a node crash: every
// packet to or from the node is structurally dropped while the NIC is dark,
// traffic resumes at RepairAt, and bystander links never notice.
func TestNodeCrashDarkNIC(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, NodeCrashes: []NodeCrash{
		{Node: 3, At: 10 * units.Millisecond, RepairAt: 20 * units.Millisecond},
	}})
	mid, after := 15*units.Millisecond, 25*units.Millisecond
	for _, link := range [][2]int{{0, 3}, {3, 0}} {
		if v := in.Verdict(link[0], link[1], 0); v != Deliver {
			t.Fatalf("link %v faulted before the crash: %v", link, v)
		}
		if v := in.Verdict(link[0], link[1], mid); v != Drop {
			t.Fatalf("link %v delivered into a dark NIC: %v", link, v)
		}
		if v := in.Verdict(link[0], link[1], after); v != Deliver {
			t.Fatalf("link %v still dark after repair: %v", link, v)
		}
	}
	if v := in.Verdict(0, 1, mid); v != Deliver {
		t.Fatalf("bystander link dropped during the crash: %v", v)
	}
	// NodeDead / NodeDeadDetected track the dark window and the detection
	// delay within it.
	if in.NodeDead(3, 0) || !in.NodeDead(3, mid) || in.NodeDead(3, after) {
		t.Fatal("NodeDead window wrong")
	}
	if in.NodeDeadDetected(3, 10*units.Millisecond) {
		t.Fatal("crash detected before the detection delay")
	}
	if !in.NodeDeadDetected(3, 10*units.Millisecond+DefaultDetectDelay) {
		t.Fatal("crash not detected after the delay")
	}
	if in.NodeDead(0, mid) {
		t.Fatal("wrong node reported dead")
	}
	// Nil-safety: devices without a plan carry a nil injector.
	var nilIn *Injector
	if nilIn.NodeDead(3, mid) || nilIn.NodeDeadDetected(3, after) {
		t.Fatal("nil injector reported a dead node")
	}
}

// TestFlattenElementFaults checks per-rail element-fault scoping: a member
// fabric sees only its own rail's switch kills and linecard degrades,
// re-homed to rail 0, and a solo network (rail 0, rail-0-only entries) gets
// the plan back untouched.
func TestFlattenElementFaults(t *testing.T) {
	p := &Plan{
		Seed: 1,
		SwitchKills: []SwitchKill{
			{Level: 1, Index: 0, Rail: 0, At: units.Millisecond},
			{Level: 1, Index: 1, Rail: 1, At: units.Millisecond},
		},
		LinecardDegrades: []LinecardDegrade{
			{Level: 1, Index: 2, Rail: 1, From: units.Millisecond, Until: 2 * units.Millisecond, Drop: 0.1},
		},
	}
	r0 := p.Flatten(0)
	if len(r0.SwitchKills) != 1 || r0.SwitchKills[0].Index != 0 {
		t.Fatalf("rail 0 kills = %+v, want only index 0", r0.SwitchKills)
	}
	if len(r0.LinecardDegrades) != 0 {
		t.Fatalf("rail 0 saw rail 1's degrades: %+v", r0.LinecardDegrades)
	}
	r1 := p.Flatten(1)
	if len(r1.SwitchKills) != 1 || r1.SwitchKills[0].Index != 1 || r1.SwitchKills[0].Rail != 0 {
		t.Fatalf("rail 1 kills = %+v, want index 1 re-homed to rail 0", r1.SwitchKills)
	}
	if len(r1.LinecardDegrades) != 1 || r1.LinecardDegrades[0].Rail != 0 {
		t.Fatalf("rail 1 degrades = %+v, want index 2 re-homed", r1.LinecardDegrades)
	}
	// A solo plan with only rail-0 entries needs no rewrite at all.
	solo := &Plan{Seed: 1, SwitchKills: []SwitchKill{{Level: 1, Index: 0, At: units.Millisecond}}}
	if got := solo.Flatten(0); got != solo {
		t.Fatal("rail-0-only plan was copied needlessly")
	}
}

// TestHasElementsAndDetectDelay pins the plan-inspection helpers the device
// constructors use to decide whether to arm fabric health.
func TestHasElementsAndDetectDelay(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.HasElements() {
		t.Fatal("nil plan has elements")
	}
	if (&Plan{Seed: 1, Drop: 0.5}).HasElements() {
		t.Fatal("drop-only plan has elements")
	}
	if !(&Plan{SwitchKills: []SwitchKill{{Level: 1}}}).HasElements() {
		t.Fatal("switch kill not recognized")
	}
	if !(&Plan{LinecardDegrades: []LinecardDegrade{{Level: 0}}}).HasElements() {
		t.Fatal("linecard degrade not recognized")
	}
	if got := nilPlan.DetectionDelay(); got != DefaultDetectDelay {
		t.Fatalf("nil plan detect delay = %v", got)
	}
	if got := (&Plan{DetectDelay: 5 * units.Millisecond}).DetectionDelay(); got != 5*units.Millisecond {
		t.Fatalf("explicit detect delay lost: %v", got)
	}
}
