package faults

import (
	"errors"
	"math"
	"testing"

	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// The counter PRNG must be a pure function of (seed, stream, counter):
// replaying the same packet sequence in any order gives the same verdicts.
func TestVerdictReplayIsOrderIndependent(t *testing.T) {
	plan := &Plan{Seed: 42, Drop: 0.2, Corrupt: 0.1}
	type pkt struct{ src, dst int }
	forward := []pkt{{0, 1}, {0, 1}, {1, 0}, {0, 2}, {0, 1}, {2, 0}, {1, 0}}

	a := NewInjector(plan)
	got := make(map[pkt][]Verdict)
	for _, p := range forward {
		got[p] = append(got[p], a.Verdict(p.src, p.dst, 0))
	}

	// Replay with links interleaved differently: per-link sequences must
	// be identical because each link owns an independent counter stream.
	b := NewInjector(plan)
	regot := make(map[pkt][]Verdict)
	perLink := map[pkt]int{}
	for _, p := range forward {
		perLink[p]++
	}
	for p, n := range map[pkt]int{{0, 1}: perLink[pkt{0, 1}], {1, 0}: perLink[pkt{1, 0}], {0, 2}: perLink[pkt{0, 2}], {2, 0}: perLink[pkt{2, 0}]} {
		for i := 0; i < n; i++ {
			regot[p] = append(regot[p], b.Verdict(p.src, p.dst, 0))
		}
	}
	for p, vs := range got {
		for i, v := range vs {
			if regot[p][i] != v {
				t.Fatalf("link %v packet %d: verdict %v, replayed %v", p, i, v, regot[p][i])
			}
		}
	}
}

func TestDropRateConverges(t *testing.T) {
	const want = 0.05
	in := NewInjector(DropPlan(7, want))
	const n = 200000
	drops := 0
	for i := 0; i < n; i++ {
		if in.Verdict(0, 1, 0) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("drop rate %.4f, want %.2f +/- 0.005", got, want)
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a, b := NewInjector(DropPlan(1, 0.5)), NewInjector(DropPlan(2, 0.5))
	same := true
	for i := 0; i < 64; i++ {
		if a.Verdict(0, 1, 0) != b.Verdict(0, 1, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-packet verdict sequences")
	}
}

func TestFlapWindowDropsEverything(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3, Flaps: []Flap{
		{Src: 0, Dst: Wildcard, From: 10 * units.Microsecond, Until: 20 * units.Microsecond},
	}})
	if v := in.Verdict(0, 1, 5*units.Microsecond); v != Deliver {
		t.Fatalf("before flap: %v", v)
	}
	if v := in.Verdict(0, 1, 15*units.Microsecond); v != Drop {
		t.Fatalf("inside flap: %v", v)
	}
	if v := in.Verdict(0, 1, 20*units.Microsecond); v != Deliver {
		t.Fatalf("after flap (Until is exclusive): %v", v)
	}
	if v := in.Verdict(1, 0, 15*units.Microsecond); v != Deliver {
		t.Fatalf("reverse direction must not flap: %v", v)
	}
}

func TestLinkRuleOverridesBaseline(t *testing.T) {
	in := NewInjector(&Plan{Seed: 4, Drop: 1, Links: []LinkRule{{Src: 0, Dst: 1, Drop: 0}}})
	if v := in.Verdict(0, 1, 0); v != Deliver {
		t.Fatalf("overridden link: %v", v)
	}
	if v := in.Verdict(1, 0, 0); v != Drop {
		t.Fatalf("baseline link: %v", v)
	}
}

func TestStallAndBurstWindows(t *testing.T) {
	in := NewInjector(&Plan{Seed: 5,
		Stalls: []Stall{{Node: 2, From: 0, Until: 30 * units.Microsecond}},
		Bursts: []BusBurst{{Node: 1, From: 0, Until: units.Millisecond, Delay: 2 * units.Microsecond}},
	})
	if d := in.NICStall(2, 10*units.Microsecond); d != 20*units.Microsecond {
		t.Fatalf("stall remainder = %v", d)
	}
	if d := in.NICStall(2, 30*units.Microsecond); d != 0 {
		t.Fatalf("stall after window = %v", d)
	}
	if d := in.NICStall(0, 10*units.Microsecond); d != 0 {
		t.Fatalf("stall on other node = %v", d)
	}
	if d := in.BusDelay(1, 0); d != 2*units.Microsecond {
		t.Fatalf("burst delay = %v", d)
	}
	if d := in.BusDelay(1, 2*units.Millisecond); d != 0 {
		t.Fatalf("burst after window = %v", d)
	}
}

func TestInjectorCounters(t *testing.T) {
	m := metrics.New()
	in := NewInjector(DropPlan(9, 1))
	in.Instrument(m)
	for i := 0; i < 10; i++ {
		in.Verdict(0, 1, 0)
	}
	if got := m.Counter("faults/drops").Value(); got != 10 {
		t.Fatalf("faults/drops = %d, want 10", got)
	}
	if got := m.Counter("faults/packets").Value(); got != 10 {
		t.Fatalf("faults/packets = %d, want 10", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Plan() != nil {
		t.Fatal("nil injector reported a plan")
	}
	in.Instrument(metrics.New()) // must not panic
}

func TestLinkErrorWrapsSentinel(t *testing.T) {
	err := error(&LinkError{Src: 0, Dst: 3, Attempts: 8, Bytes: 4096, Proto: "RC retransmit"})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatal("LinkError does not unwrap to ErrRetryExhausted")
	}
	for _, want := range []string{"node0->node3", "8 attempts", "4096-byte", "RC retransmit"} {
		if !contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Limit: 7, Interval: 100 * units.Microsecond, Exponential: true}
	if d := p.Delay(1); d != 100*units.Microsecond {
		t.Fatalf("attempt 1: %v", d)
	}
	if d := p.Delay(3); d != 400*units.Microsecond {
		t.Fatalf("attempt 3: %v", d)
	}
	if d := p.Delay(40); d != 6400*units.Microsecond {
		t.Fatalf("attempt 40 (capped): %v", d)
	}
	fixed := RetryPolicy{Limit: 15, Interval: 50 * units.Microsecond}
	if d := fixed.Delay(10); d != 50*units.Microsecond {
		t.Fatalf("fixed attempt 10: %v", d)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
