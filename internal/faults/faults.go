// Package faults is the deterministic fault-injection subsystem: a
// seed-driven Plan describing link drop/corruption probabilities, link
// flaps, NIC stall windows and bus contention bursts, plus the Injector the
// NIC models (internal/verbs, internal/gm, internal/elan) consult on every
// inter-node packet.
//
// Determinism is the load-bearing property. The paper-reproduction suite
// promises byte-identical output at any -j (MODEL.md §11), so fault
// decisions must not depend on event interleaving, map iteration, or how
// many worker goroutines are running. Every random draw therefore comes
// from a counter-based PRNG keyed by (plan seed, link, per-link packet
// ordinal): packet k on link src->dst gets the same verdict in every run
// with the same seed, no matter what else the simulation is doing.
//
// Recovery is the device's job, not this package's: the Injector only
// renders verdicts (deliver / drop / corrupt) and window delays; each NIC
// model implements its interconnect's reliability protocol (VAPI RC
// retransmit, GM send-token resend, Elan source retry) as a RetryPolicy
// around its transfer path and reports permanent failures as a *LinkError
// wrapping ErrRetryExhausted.
package faults

import (
	"errors"
	"fmt"
	"math"

	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// ErrRetryExhausted is the sentinel wrapped by every permanent transfer
// failure: a device retried per its reliability protocol and gave up.
// Match with errors.Is.
var ErrRetryExhausted = errors.New("retry exhausted")

// ErrPartitioned is the sentinel wrapped by every failure where no route
// survives between two endpoints: every ECMP plane of a Clos dead
// (PartitionError), or the destination node itself crashed (NodeDownError).
// Unlike ErrRetryExhausted it is not a probabilistic exhaustion but a
// structural verdict — retrying cannot help. Match with errors.Is.
var ErrPartitioned = errors.New("fabric partitioned")

// DefaultTimeout is the per-wait MPI watchdog armed automatically when a
// world runs on a network with a fault plan. It is far above every
// device's worst-case retry budget (the longest, the verbs exponential
// backoff, exhausts in ~19 ms), so retry-exhaustion errors always win the
// race against the watchdog and the watchdog only fires for waits that no
// retransmit will ever satisfy. Worlds larger than the paper's 8-node
// testbed arm ScaledTimeout instead.
const DefaultTimeout = 500 * units.Millisecond

// ScaledTimeout is the watchdog budget for a world of the given rank count
// on a fabric of the given diameter (elements crossed by the longest
// route). The 8-node default is far too tight for thousand-rank Clos runs
// under faults — collectives decompose into log2(N) serialized phases and
// every phase can eat a full retry chain — so the budget grows by half the
// default per rank-count doubling past 8 and a quarter per element of
// fabric depth past the single crossbar. ScaledTimeout(8, 1) is exactly
// DefaultTimeout, so the paper-scale testbeds keep their committed outputs.
func ScaledTimeout(ranks, diameter int) units.Time {
	t := DefaultTimeout
	for n := 8; n < ranks; n *= 2 {
		t += DefaultTimeout / 2
	}
	if diameter > 1 {
		t += units.Time(diameter-1) * (DefaultTimeout / 4)
	}
	return t
}

// DefaultDetectDelay is the failure-detection delay used when a plan
// schedules element or node deaths without setting DetectDelay: how long
// the fabric keeps routing onto a dead element (packets black-holing into
// it, device retry protocols covering the gap) before the routing layer
// re-hashes around it — the subnet-manager sweep / route-remap interval of
// the real interconnects.
const DefaultDetectDelay = 1 * units.Millisecond

// Wildcard matches any node in a LinkRule or Flap endpoint.
const Wildcard = -1

// Plan is a complete, declarative fault scenario. The zero value (beyond
// Seed) injects nothing but still arms the MPI watchdog, turning would-be
// deadlocks into typed timeout errors. Plans are plain data: copy, store
// or share them freely; the Injector keeps its own mutable state.
type Plan struct {
	// Seed keys every random draw. Two runs with equal plans produce
	// identical fault sequences; change the seed to sample a new scenario.
	Seed uint64
	// Drop is the baseline per-packet drop probability on every inter-node
	// link (loopback traffic never faults).
	Drop float64
	// Corrupt is the baseline per-packet corruption probability. A
	// corrupted packet arrives, fails its CRC and is retransmitted — same
	// recovery path as a drop, separate counter.
	Corrupt float64
	// Links overrides the baseline rates on matching links (first match
	// wins).
	Links []LinkRule
	// Flaps takes links hard down for time windows.
	Flaps []Flap
	// Stalls freezes a node's NIC for time windows.
	Stalls []Stall
	// Bursts adds bus-contention delay per operation on a node for time
	// windows.
	Bursts []BusBurst
	// Degrades adds extra drop probability on matching links within time
	// windows — a link that still works, but badly. Evaluated by the same
	// per-link counter PRNG as the baseline rates, so degraded runs replay
	// byte-identically.
	Degrades []Degrade
	// RailKills sever every link of one rail of a bonded (multi-rail)
	// platform permanently. Consumed by Plan.Flatten: the rail layer folds
	// each entry into a wildcard Flap on that rail's sub-plan; single-rail
	// networks treat themselves as rail 0.
	RailKills []RailKill
	// RailDegrades raise one rail's drop probability within a window
	// (brown-out rather than hard kill). Folded into Degrades by Flatten,
	// like RailKills.
	RailDegrades []RailDegrade
	// SwitchKills take whole fabric elements of a multi-stage (Clos)
	// topology hard down: a spine plane (Level >= 1) or a leaf element with
	// every host under it (Level 0). Rendered by the fabric's routing layer,
	// not the per-link injector; requires a Clos topology.
	SwitchKills []SwitchKill
	// LinecardDegrades add extra drop probability to every packet riding a
	// fabric element within a window — a failing linecard rather than a dead
	// chassis. Drawn through the same per-link counter PRNG as Degrades, so
	// degraded runs replay byte-identically. Requires a Clos topology.
	LinecardDegrades []LinecardDegrade
	// NodeCrashes kill host nodes: from At the node's NIC is dark (every
	// packet to or from it is lost) and, at the MPI layer, every rank mapped
	// to the node is dead. An optional RepairAt re-lights the NIC (reboot),
	// but crashed MPI ranks stay dead — process state does not survive.
	NodeCrashes []NodeCrash
	// DetectDelay is how long after an element or node death the routing and
	// MPI layers take to notice it (0 = DefaultDetectDelay). Before
	// detection, traffic keeps black-holing into the dead element and the
	// device retry protocols carry it; after, deterministic ECMP re-hashes
	// onto surviving planes, adaptive routing stops considering them, and
	// unreachable peers fail typed instead of burning retries.
	DetectDelay units.Time
}

// LinkRule replaces the plan's baseline drop/corrupt rates on matching
// links. Src/Dst may be Wildcard.
type LinkRule struct {
	Src, Dst int
	Drop     float64
	Corrupt  float64
}

// Flap is a link-down window: every packet on a matching link in
// [From, Until) is dropped, as if the cable were pulled and re-seated.
// Src/Dst may be Wildcard.
type Flap struct {
	Src, Dst    int
	From, Until units.Time
}

// Stall freezes a node's NIC: operations started in [From, Until) wait for
// the window to end before touching the wire (firmware hiccup, PCI retrain).
type Stall struct {
	Node        int
	From, Until units.Time
}

// BusBurst models host-bus contention: every operation a node starts in
// [From, Until) pays Delay extra before injection.
type BusBurst struct {
	Node        int
	From, Until units.Time
	Delay       units.Time
}

// Degrade adds Drop extra per-packet drop probability on matching links in
// [From, Until). Src/Dst may be Wildcard. Unlike a LinkRule it composes
// with (adds to) the baseline rather than replacing it.
type Degrade struct {
	Src, Dst    int
	From, Until units.Time
	Drop        float64
}

// RailKill takes one rail of a bonded platform hard down at At, forever —
// the "what if a whole fabric dies mid-run" scenario. Rail indices follow
// the order rails were passed to the bond.
type RailKill struct {
	Rail int
	At   units.Time
}

// RailDegrade raises one rail's per-packet drop probability by Drop within
// [From, Until).
type RailDegrade struct {
	Rail        int
	From, Until units.Time
	Drop        float64
}

// SwitchKill takes one switching element of a multi-stage fabric hard down
// at At. Level 0 names a leaf element (Index is the leaf; every host under
// it becomes unreachable); Level >= 1 names a spine-tier element, which in
// the leaf-state-only Clos model kills the route equivalence class — the
// up-link plane Index (mod the leaf up-link count) — fabric-wide. RepairAt,
// when non-zero, brings the element back (cable re-seated, chassis power
// restored); 0 means it stays dead. On a bonded platform Rail names the
// member fabric the element belongs to (solo networks are rail 0).
type SwitchKill struct {
	Level    int // 0 = leaf tier, >= 1 = spine tiers
	Index    int // element index within the level
	Rail     int // bonded platforms: which member fabric (default 0)
	At       units.Time
	RepairAt units.Time // 0 = never repaired
}

// Dead reports whether the killed element is down at now.
func (k SwitchKill) Dead(now units.Time) bool {
	return now >= k.At && (k.RepairAt == 0 || now < k.RepairAt)
}

// Detected reports whether the death is visible to routing at now: the
// element has been down for at least detect and not yet repaired.
func (k SwitchKill) Detected(now, detect units.Time) bool {
	return now >= k.At+detect && (k.RepairAt == 0 || now < k.RepairAt)
}

// LinecardDegrade adds Drop extra per-packet drop probability to traffic
// riding one fabric element in [From, Until): a spine plane (Level >= 1) or
// a leaf (Level 0, hitting every route through that leaf). Rail selects the
// bonded member fabric, as in SwitchKill.
type LinecardDegrade struct {
	Level       int
	Index       int
	Rail        int
	From, Until units.Time
	Drop        float64
}

// Active reports whether the degrade window covers now.
func (d LinecardDegrade) Active(now units.Time) bool {
	return now >= d.From && now < d.Until
}

// NodeCrash kills host node Node at At: its NIC goes dark (in-flight and
// future packets to or from it are lost) and every MPI rank on it dies. A
// non-zero RepairAt re-lights the NIC — the fabric link heals — but the MPI
// ranks stay dead: a rebooted node does not rejoin a running job.
type NodeCrash struct {
	Node     int
	At       units.Time
	RepairAt units.Time // 0 = never; heals the link only, never the ranks
}

// Dead reports whether the node's NIC is dark at now.
func (c NodeCrash) Dead(now units.Time) bool {
	return now >= c.At && (c.RepairAt == 0 || now < c.RepairAt)
}

// Forever is the Until value of a window that never closes.
const Forever = units.Time(math.MaxInt64)

// HasElements reports whether the plan schedules fabric-element faults
// (switch kills or linecard degrades), which only a multi-stage (Clos)
// topology can render.
func (p *Plan) HasElements() bool {
	return p != nil && (len(p.SwitchKills) > 0 || len(p.LinecardDegrades) > 0)
}

// DetectionDelay resolves the plan's failure-detection delay.
func (p *Plan) DetectionDelay() units.Time {
	if p == nil || p.DetectDelay == 0 {
		return DefaultDetectDelay
	}
	return p.DetectDelay
}

// Flatten resolves the rail-level entries of a plan for one rail: RailKills
// on that rail become wildcard Flaps from their kill time onward, and
// RailDegrades become wildcard Degrades. The returned plan carries no
// rail-level entries and is what a single fabric's Injector actually
// renders; a single-rail network is its own rail 0. The seed is left
// untouched — per-rail seed derivation (RailSeed) is the bond layer's call
// to make, so a plan run on a solo network replays the exact draws of the
// bond's rail 0. Returns the receiver unchanged when no entry matches.
func (p *Plan) Flatten(rail int) *Plan {
	if p == nil {
		return nil
	}
	touched := false
	for _, k := range p.RailKills {
		if k.Rail == rail {
			touched = true
		}
	}
	for _, d := range p.RailDegrades {
		if d.Rail == rail {
			touched = true
		}
	}
	// Element faults are per-fabric too: a member network must only see the
	// switch kills and linecard degrades of its own rail. Entries already on
	// rail 0 rendered by a solo network need no rewrite.
	filterElems := false
	for _, k := range p.SwitchKills {
		if k.Rail != 0 || rail != 0 {
			filterElems = true
		}
	}
	for _, d := range p.LinecardDegrades {
		if d.Rail != 0 || rail != 0 {
			filterElems = true
		}
	}
	if !touched && !filterElems && len(p.RailKills) == 0 && len(p.RailDegrades) == 0 {
		return p
	}
	q := *p
	q.Flaps = append([]Flap(nil), p.Flaps...)
	q.Degrades = append([]Degrade(nil), p.Degrades...)
	for _, k := range p.RailKills {
		if k.Rail == rail {
			q.Flaps = append(q.Flaps, Flap{Src: Wildcard, Dst: Wildcard, From: k.At, Until: Forever})
		}
	}
	for _, d := range p.RailDegrades {
		if d.Rail == rail {
			q.Degrades = append(q.Degrades, Degrade{Src: Wildcard, Dst: Wildcard, From: d.From, Until: d.Until, Drop: d.Drop})
		}
	}
	if filterElems {
		q.SwitchKills, q.LinecardDegrades = nil, nil
		for _, k := range p.SwitchKills {
			if k.Rail == rail {
				k.Rail = 0
				q.SwitchKills = append(q.SwitchKills, k)
			}
		}
		for _, d := range p.LinecardDegrades {
			if d.Rail == rail {
				d.Rail = 0
				q.LinecardDegrades = append(q.LinecardDegrades, d)
			}
		}
	}
	q.RailKills, q.RailDegrades = nil, nil
	return &q
}

// RailSeed derives rail r's fault seed from a bond-level seed, so the rails
// of one bond draw independent verdict streams even though they share node
// indices (and therefore per-link PRNG streams). Rail 0 keeps the bond seed
// unchanged: a bond's primary rail replays the exact packet fates of the
// same plan run on a solo network.
func RailSeed(seed uint64, r int) uint64 {
	if r == 0 {
		return seed
	}
	x := seed + 0x9E3779B97F4A7C15*uint64(r)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return x
}

// DropPlan is the common scenario shorthand: a uniform per-packet drop
// probability on every link under the given seed.
func DropPlan(seed uint64, drop float64) *Plan {
	return &Plan{Seed: seed, Drop: drop}
}

// Verdict is the Injector's per-packet decision.
type Verdict int

const (
	// Deliver passes the packet through intact.
	Deliver Verdict = iota
	// Drop loses the packet in the fabric; the receiver sees nothing.
	Drop
	// Corrupt delivers a damaged packet; the receiver's CRC rejects it.
	Corrupt
)

// RetryPolicy describes one interconnect's reliability protocol: how many
// resends it attempts and how it spaces them. Devices hold one as a
// package constant and drive their retransmit loop with it.
type RetryPolicy struct {
	// Limit is the number of retransmits after the first attempt; the
	// attempt numbered Limit+1 failing is a permanent error.
	Limit int
	// Interval is the base retransmit timeout.
	Interval units.Time
	// Exponential doubles the interval on every consecutive retry (VAPI RC
	// behaviour); capped at 64x so a long retry chain cannot out-wait the
	// MPI watchdog.
	Exponential bool
}

// Delay returns the wait before retransmit number attempt (1-based).
func (p RetryPolicy) Delay(attempt int) units.Time {
	if !p.Exponential || attempt <= 1 {
		return p.Interval
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	return p.Interval << uint(shift)
}

// LinkError is a permanent transfer failure: one link exhausted a device's
// retry budget. It wraps ErrRetryExhausted; the MPI layer prepends the
// failing rank.
type LinkError struct {
	Src, Dst int    // node indices of the failing link
	Attempts int    // transfer attempts made, including the first
	Bytes    int64  // packet size
	Proto    string // the reliability protocol that gave up
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("link node%d->node%d: %s gave up after %d attempts (%d-byte packet): %v",
		e.Src, e.Dst, e.Proto, e.Attempts, e.Bytes, ErrRetryExhausted)
}

// Unwrap makes errors.Is(err, ErrRetryExhausted) hold.
func (e *LinkError) Unwrap() error { return ErrRetryExhausted }

// PartitionError is the typed failure a device raises when the fabric's
// routing layer reports that no surviving path connects two endpoints:
// every ECMP plane between them is dead, or the destination's leaf element
// is down. Element names the blocking fabric element ("leaf 3", "spine
// plane 1"). It wraps ErrPartitioned; retrying cannot help, so devices
// raise it without burning their retry budget.
type PartitionError struct {
	Src, Dst int    // node indices of the unreachable pair
	Element  string // the dead fabric element blocking every route
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("node%d->node%d unreachable (%s dead): %v", e.Src, e.Dst, e.Element, ErrPartitioned)
}

// Unwrap makes errors.Is(err, ErrPartitioned) hold.
func (e *PartitionError) Unwrap() error { return ErrPartitioned }

// NodeDownError is the typed failure a device raises once a crashed node's
// death has been detected: the peer is not merely unreachable through the
// fabric, it is gone. Wraps ErrPartitioned (no route can exist); the MPI
// layer translates it into rank-death notification (RankFailedError) when
// the job runs fault-tolerant.
type NodeDownError struct {
	Node int        // the crashed node
	At   units.Time // when it died
}

func (e *NodeDownError) Error() string {
	return fmt.Sprintf("node%d crashed at %v: %v", e.Node, e.At, ErrPartitioned)
}

// Unwrap makes errors.Is(err, ErrPartitioned) hold.
func (e *NodeDownError) Unwrap() error { return ErrPartitioned }

// Injector renders a Plan's verdicts for one network instance. Not safe
// for concurrent use — like everything else owned by a sim.Engine, it runs
// on the engine's goroutine. A nil *Injector is inert (Plan returns nil);
// devices built without a plan carry a nil injector and skip the fault
// path entirely.
type Injector struct {
	plan Plan
	// links caches per-link resolved state (rates after LinkRule matching,
	// this link's flap/degrade windows, the PRNG stream id and packet
	// ordinal), so the per-packet Verdict path scans only windows that can
	// ever apply to the link instead of the whole plan. The map is only
	// ever indexed, never iterated, so it cannot perturb determinism.
	links map[[2]int]*linkState

	// counters (nil-safe until Instrument binds them)
	packets   *metrics.Counter
	drops     *metrics.Counter
	corrupts  *metrics.Counter
	flapDrops *metrics.Counter
}

// linkState is one directed link's resolved fault state.
type linkState struct {
	n        uint64 // per-link packet ordinal driving the counter PRNG
	stream   uint64
	drop     float64 // baseline or first-matching LinkRule rate
	corrupt  float64
	flaps    []Flap    // plan windows matching this link, in plan order
	degrades []Degrade // ditto
}

// NewInjector builds the injector for a plan; nil plan gives a nil (inert)
// injector.
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: *p, links: make(map[[2]int]*linkState)}
}

// resolve builds the per-link state on first contact. Rule matching order
// is exactly Verdict's former per-packet order, so the resolved state
// renders identical verdict sequences.
func (in *Injector) resolve(src, dst int) *linkState {
	ls := &linkState{
		stream:  linkStream(src, dst),
		drop:    in.plan.Drop,
		corrupt: in.plan.Corrupt,
	}
	for _, r := range in.plan.Links {
		if matches(r.Src, src) && matches(r.Dst, dst) {
			ls.drop, ls.corrupt = r.Drop, r.Corrupt
			break
		}
	}
	for _, f := range in.plan.Flaps {
		if matches(f.Src, src) && matches(f.Dst, dst) {
			ls.flaps = append(ls.flaps, f)
		}
	}
	for _, d := range in.plan.Degrades {
		if matches(d.Src, src) && matches(d.Dst, dst) {
			ls.degrades = append(ls.degrades, d)
		}
	}
	// A crashed node's NIC is dark: fold each crash touching an endpoint of
	// this link into a flap window, so packets to or from the node are lost
	// exactly like a pulled cable until the (optional) repair.
	for _, c := range in.plan.NodeCrashes {
		if c.Node == src || c.Node == dst {
			until := c.RepairAt
			if until == 0 {
				until = Forever
			}
			ls.flaps = append(ls.flaps, Flap{Src: src, Dst: dst, From: c.At, Until: until})
		}
	}
	return ls
}

// NodeDead reports whether node's NIC is dark at now per the plan's
// NodeCrashes. Nil-safe.
func (in *Injector) NodeDead(node int, now units.Time) bool {
	if in == nil {
		return false
	}
	for _, c := range in.plan.NodeCrashes {
		if c.Node == node && c.Dead(now) {
			return true
		}
	}
	return false
}

// NodeDeadDetected reports whether node's crash is both in effect and past
// the plan's detection delay at now — the point where devices stop burning
// retries toward it and fail typed instead. Nil-safe.
func (in *Injector) NodeDeadDetected(node int, now units.Time) bool {
	if in == nil {
		return false
	}
	detect := in.plan.DetectionDelay()
	for _, c := range in.plan.NodeCrashes {
		if c.Node == node && now >= c.At+detect && (c.RepairAt == 0 || now < c.RepairAt) {
			return true
		}
	}
	return false
}

// Plan returns the plan the injector renders, or nil on a nil injector.
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return &in.plan
}

// Instrument binds the injector's counters under faults/... in m.
func (in *Injector) Instrument(m *metrics.Registry) {
	if in == nil || m == nil {
		return
	}
	in.packets = m.Counter("faults/packets")
	in.drops = m.Counter("faults/drops")
	in.corrupts = m.Counter("faults/corrupts")
	in.flapDrops = m.Counter("faults/flap_drops")
}

// Verdict decides the fate of the next packet on link src->dst at the
// simulated instant now. Each call consumes one per-link draw, so callers
// must invoke it exactly once per transfer attempt.
func (in *Injector) Verdict(src, dst int, now units.Time) Verdict {
	return in.VerdictExtra(src, dst, now, 0)
}

// VerdictExtra is Verdict with an extra per-packet drop rate the route
// itself contributes — a degrading linecard the packet happens to ride.
// extra must be a pure function of (route, now) so the per-link ordinal
// stays schedule-independent: the same packet sees the same extra rate in
// every run.
func (in *Injector) VerdictExtra(src, dst int, now units.Time, extra float64) Verdict {
	in.packets.Inc()
	key := [2]int{src, dst}
	ls := in.links[key]
	if ls == nil {
		ls = in.resolve(src, dst)
		in.links[key] = ls
	}
	for _, f := range ls.flaps {
		if now >= f.From && now < f.Until {
			in.flapDrops.Inc()
			return Drop
		}
	}
	drop, corrupt := ls.drop+extra, ls.corrupt
	for _, d := range ls.degrades {
		if now >= d.From && now < d.Until {
			drop += d.Drop
		}
	}
	if drop <= 0 && corrupt <= 0 {
		// No draw consumed: a healthy link's ordinal must not advance, so a
		// plan that later degrades the link replays identically.
		return Deliver
	}
	n := ls.n
	ls.n = n + 1
	u := prn(in.plan.Seed, ls.stream, n)
	switch {
	case u < drop:
		in.drops.Inc()
		return Drop
	case u < drop+corrupt:
		in.corrupts.Inc()
		return Corrupt
	default:
		return Deliver
	}
}

// NICStall returns how long an operation started on node at now must wait
// for a stall window to clear (0 when none is active).
func (in *Injector) NICStall(node int, now units.Time) units.Time {
	var d units.Time
	for _, s := range in.plan.Stalls {
		if s.Node == node && now >= s.From && now < s.Until {
			if wait := s.Until - now; wait > d {
				d = wait
			}
		}
	}
	return d
}

// BusDelay returns the extra bus-contention delay for an operation started
// on node at now (0 outside every burst window).
func (in *Injector) BusDelay(node int, now units.Time) units.Time {
	var d units.Time
	for _, b := range in.plan.Bursts {
		if b.Node == node && now >= b.From && now < b.Until {
			d += b.Delay
		}
	}
	return d
}

// matches is rule-endpoint matching with Wildcard.
func matches(pattern, node int) bool { return pattern == Wildcard || pattern == node }

// linkStream packs a directed link into a PRNG stream id. Node counts are
// far below 2^20, so streams never collide.
func linkStream(src, dst int) uint64 {
	return uint64(uint32(src))<<20 | uint64(uint32(dst))
}

// Uniform exposes the counter-based PRNG to other deterministic subsystems
// (the rail health monitor draws its heartbeat jitter and probe targets
// from it): a uniform float64 in [0, 1) that is a pure function of
// (seed, stream, counter), hence identical at any -j and on any host.
func Uniform(seed, stream, counter uint64) float64 { return prn(seed, stream, counter) }

// prn is the counter-based PRNG: a splitmix64-style finalizer over
// (seed, stream, counter), returning a uniform float64 in [0, 1). Being a
// pure function of its inputs is what makes fault runs replayable and
// independent of scheduling: there is no generator state to share or race
// on.
func prn(seed, stream, counter uint64) float64 {
	x := seed + 0x9E3779B97F4A7C15*(stream+1) + 0xD1B54A32D192ED03*(counter+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
