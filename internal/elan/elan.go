// Package elan models the Quadrics side of the paper's testbed: Elan3
// QM-400 NICs on 64-bit/66 MHz PCI, an Elite-16 wormhole crossbar, 400 MB/s
// per-direction links, and an Elan3lib/Tports-like layer — the substrate of
// MPICH 1.2.4 over Quadrics.
//
// Mechanisms represented:
//
//   - The NIC executes the protocol: one-way latency is excellent (~4.6 us,
//     Figure 1) while *host* overhead is the highest of the three (~3.3 us,
//     Figure 3) because the Tports library does matching setup, MMU
//     bookkeeping and, below 288 bytes, PIO-copies the payload into Elan
//     SDRAM. Past that size the copy moves to DMA and the host share dips —
//     Figure 3's downward step after 256 B.
//   - The rendezvous handshake is progressed by the NIC thread processor, so
//     communication overlaps computation fully (Figure 6's steadily growing
//     Quadrics curve).
//   - Per-direction Elan DMA engines cap uni-directional bandwidth (~308
//     MB/s); bi-directionally both engines run but the shared PCI bus caps
//     the sum (~375 MB/s) — Figures 2 and 5.
//   - The Elan command queue holds 16 outstanding operations; deeper send
//     windows stall the host, the Figure 2 drop past window 16.
//   - No registration, but the NIC MMU must hold translations: first touch
//     of a new buffer costs host time at any message size (Figures 7, 8).
package elan

import (
	"fmt"

	"mpinet/internal/bus"
	"mpinet/internal/dev"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Config selects the Quadrics platform variant.
type Config struct {
	Nodes       int
	SwitchPorts int // 16 on the paper's Elite-16
	// EagerThreshold overrides Tports' default 16 KB large-message switch
	// point (0 = default); an ablation knob.
	EagerThreshold int64
	// Faults, when non-nil, injects the plan's link/NIC/bus faults and
	// enables the Elan source-retry machinery below.
	Faults *faults.Plan
	// Clos, when non-nil, replaces the single crossbar with a parameterized
	// multi-stage Clos fabric (the redesigned topology API).
	Clos *fabric.ClosConfig
	// Domains, when non-nil, is the node-domain placement capability: the
	// engines and node->shard map of a sharded world, consumed when
	// ActivateDomains is called (see dev.DomainNetwork).
	Domains *dev.Domains
}

// DefaultConfig is the paper's 8-node testbed.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, SwitchPorts: 16}
}

// Calibration constants (see DESIGN.md §5).
const (
	// linkRate is 400 MB/s (decimal) per direction.
	linkRateBps = 400e6
	// elanPerMsg is the NIC thread processor's work per packet; shared by
	// both directions.
	elanPerMsg = 150 * units.Nanosecond
	// Tports matching on the NIC: a fixed cost plus a walk over the pending
	// posted-receive table, serialized on the thread processor.
	matchBase     = 100 * units.Nanosecond
	matchPerEntry = 900 * units.Nanosecond
	// slowIssue is the host cost of issuing past a full command queue (the
	// library falls back to a polled slow path) and queueThrash the NIC
	// thread-processor time lost swapping queue state — together the
	// window >16 bandwidth sag of Figure 2.
	slowIssue   = 8 * units.Microsecond
	queueThrash = 10 * units.Microsecond
	// Per-direction Elan DMA engines; their chunk occupancy is the
	// uni-directional bandwidth ceiling (~308 MB/s).
	dmaRateBps  = 340e6
	dmaPerChunk = 250 * units.Nanosecond
	// pioMax is the size up to which the host PIO-copies payload into Elan
	// SDRAM (no sender-side bus DMA, higher host overhead).
	pioMax = 288
	// Host overheads: Tports library work. Below pioMax the send side also
	// PIO-copies; above, DMA takes over and the host share drops.
	sendOverheadPIO = 1800 * units.Nanosecond
	sendOverheadDMA = 1400 * units.Nanosecond
	recvOverhead    = 1500 * units.Nanosecond
	wireLatency     = 80 * units.Nanosecond
	// switchCrossing for the Elite crossbar (wormhole).
	switchCrossing = 150 * units.Nanosecond
	// eagerMax: Tports switches to its rendezvous-style large-message
	// protocol past this size.
	eagerMax = 16 * 1024
	copyBW   = 1600 // MB/s host memcpy
	// cmdQueueDepth is the Elan command queue; issuing past it stalls the
	// host until a slot frees.
	cmdQueueDepth = 16
	// MMU synchronization cost on first touch of a buffer (NIC-side
	// translations are host-maintained).
	mmuPerOp    = 10 * units.Microsecond
	mmuPerPage  = 2800 * units.Nanosecond
	mmuCapPages = 16384 // 64 MB of on-board SDRAM worth of translations
	// Memory: flat footprint regardless of peers (Figure 13).
	memFlat = 11 * units.MB
	// loopbackPenalty is the extra library cost of the NIC-loopback
	// intra-node path Quadrics MPI uses (Figure 9: intra-node latency is
	// *worse* than inter-node).
	loopbackPenalty = 2500 * units.Nanosecond
)

// elanRetry is Elan source retry: the wormhole fabric reports a failed
// route to the source NIC almost immediately, and the thread processor
// re-issues the packet from its own SDRAM many times at a short fixed
// interval before raising a network error to the library.
var elanRetry = faults.RetryPolicy{Limit: 31, Interval: 30 * units.Microsecond}

// Network is a wired Quadrics cluster.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	topo  fabric.Topology
	nodes []*nodeHW
	met   *metrics.Registry
	inj   *faults.Injector
	rec   *msgtrace.Recorder

	// dynamic marks adaptive routing: paths are chosen per message and
	// must not be cached.
	dynamic bool
	// scale flips on domain mode: per-node engines, split transfers, and
	// the per-source picosecond skew that keeps sharded commit order equal
	// to serial dispatch order.
	scale bool
	// cfgErr carries a topology-validation failure to mpi.NewWorld
	// (dev.ConfigErrer); construction itself cannot return an error.
	cfgErr error
}

type nodeHW struct {
	bus      *bus.Bus
	elanProc *sim.Station
	dmaTx    *sim.Pipe
	dmaRx    *sim.Pipe
	link     *fabric.Link
}

// New wires a Quadrics network.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes < 1 {
		panic("elan: need at least one node")
	}
	if cfg.SwitchPorts == 0 {
		cfg.SwitchPorts = 16
	}
	n := &Network{eng: eng, cfg: cfg, inj: faults.NewInjector(cfg.Faults)}
	if cfg.Clos != nil {
		cc := *cfg.Clos
		if cc.LinkRate == 0 {
			cc.LinkRate = units.BytesPerSecond(linkRateBps)
		}
		if cc.Crossing == 0 {
			cc.Crossing = switchCrossing
		}
		if cc.WireLatency == 0 {
			cc.WireLatency = wireLatency
		}
		topo, err := fabric.NewClos("elite-clos", cc, cfg.Nodes)
		if err != nil {
			n.cfgErr = fmt.Errorf("elan: %w", err)
		} else {
			n.topo = topo
			n.dynamic = cc.Routing == fabric.Adaptive
			if cfg.Faults.HasElements() {
				if err := topo.SetElementFaults(cfg.Faults, eng); err != nil {
					n.cfgErr = fmt.Errorf("elan: %w", err)
				}
				// Element deaths invalidate cached paths: every message must
				// re-resolve its route so detection-time re-hashes take effect.
				n.dynamic = true
			}
		}
	} else {
		if cfg.Nodes > cfg.SwitchPorts {
			panic(fmt.Sprintf("elan: %d nodes exceed %d switch ports", cfg.Nodes, cfg.SwitchPorts))
		}
		n.topo = fabric.NewCrossbarTopology(fabric.NewSwitch("elite16", fabric.SwitchConfig{
			Ports:    cfg.SwitchPorts,
			Crossing: switchCrossing,
			Rate:     units.BytesPerSecond(linkRateBps),
		}))
	}
	if cfg.Faults.HasElements() && cfg.Clos == nil {
		n.cfgErr = fmt.Errorf("elan: fault plan schedules fabric-element deaths but the topology is not a Clos")
	}
	n.announceElementDeaths()
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("qsn%d", i)
		n.nodes = append(n.nodes, &nodeHW{
			bus:      bus.New(name+"/bus", bus.PCI64x66),
			elanProc: sim.NewStation(name + "/elanproc"),
			dmaTx:    sim.NewPipe(name+"/dma-tx", units.BytesPerSecond(dmaRateBps), dmaPerChunk, 0),
			dmaRx:    sim.NewPipe(name+"/dma-rx", units.BytesPerSecond(dmaRateBps), dmaPerChunk, 0),
			link: fabric.NewLink(name+"/link", fabric.LinkConfig{
				Rate:     units.BytesPerSecond(linkRateBps),
				PerChunk: 40 * units.Nanosecond,
				MinFrame: 32,
			}),
		})
	}
	return n
}

// Name implements dev.Network.
func (n *Network) Name() string { return "QSN" }

// Topology exposes the wired fabric topology — a debug surface for tests
// that flip fabric-level verification knobs (e.g. fabric.(*Clos).SetRouteCache)
// on a built network.
func (n *Network) Topology() fabric.Topology { return n.topo }

// Engine implements dev.Network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Nodes implements dev.Network.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MinLinkLatency implements dev.LookaheadReporter: the cross-node latency
// floor is one wire hop.
func (n *Network) MinLinkLatency() sim.Time { return wireLatency }

// ShmemBelow implements dev.Network: the Quadrics MPI of the paper loops
// intra-node traffic through the NIC at every size.
func (n *Network) ShmemBelow() int64 { return 0 }

// FaultPlan implements dev.FaultPlanner (nil when faults are off).
func (n *Network) FaultPlan() *faults.Plan { return n.inj.Plan() }

// Diameter implements dev.DiameterReporter.
func (n *Network) Diameter() int {
	if n.topo == nil {
		return 1
	}
	return fabric.DiameterOf(n.topo)
}

// DeadElement implements dev.ElementHealth: forwarded to the fabric, which
// knows which of the plan's element kills is in effect.
func (n *Network) DeadElement(now sim.Time) (string, int64, bool) {
	if eh, ok := n.topo.(interface {
		DeadElement(sim.Time) (string, int64, bool)
	}); ok {
		return eh.DeadElement(now)
	}
	return "", 0, false
}

// announceElementDeaths schedules one FlightElementDown incident per
// switch kill at its death instant, so a postmortem names the dead element
// even when no packet happened to ride it. Node crashes are announced by
// the MPI layer, which owns rank death.
func (n *Network) announceElementDeaths() {
	p := n.inj.Plan()
	if !p.HasElements() || n.cfgErr != nil || n.cfg.Clos == nil {
		return
	}
	uplinks := n.cfg.Clos.Uplinks()
	for _, k := range p.SwitchKills {
		code := msgtrace.ElemCode(msgtrace.ElemLeaf, k.Index)
		if k.Level >= 1 {
			code = msgtrace.ElemCode(msgtrace.ElemPlane, k.Index%uplinks)
		}
		at, repair := k.At, int64(k.RepairAt)
		c := code
		n.eng.At(at, func() {
			n.rec.Flight(msgtrace.FlightElementDown, at, -1, 0, msgtrace.StageHop, c, repair)
		})
	}
}

// AttachTracer implements dev.TraceAttacher.
func (n *Network) AttachTracer(rec *msgtrace.Recorder) { n.rec = rec }

// ConfigErr implements dev.ConfigErrer.
func (n *Network) ConfigErr() error { return n.cfgErr }

// Domains implements dev.DomainNetwork.
func (n *Network) Domains() *dev.Domains { return n.cfg.Domains }

// ActivateDomains implements dev.DomainNetwork: flips the network into
// domain (scale) mode. The Elan source-retry machinery reads fault verdicts
// at delivery time on the shared engine, so a fault plan refuses activation.
func (n *Network) ActivateDomains() bool {
	if n.cfg.Domains == nil || n.inj != nil {
		return false
	}
	n.scale = true
	return true
}

// engineFor returns the engine owning a node's device state: the shared
// engine in classic mode, the node's domain engine in scale mode.
func (n *Network) engineFor(node int) *sim.Engine {
	if !n.scale {
		return n.eng
	}
	return n.cfg.Domains.EngineFor(node)
}

// skew is the deterministic per-source-node latency perturbation of domain
// mode: one picosecond times (node+1), added to every cross-node hop so
// cross-shard commit order agrees with serial dispatch order at same-instant
// collisions (see the verbs twin for the full rationale).
func (n *Network) skew(node int) sim.Time {
	if !n.scale {
		return 0
	}
	return sim.Time(node + 1)
}

// ShmemConfig returns intra-node channel parameters (unused in practice
// since ShmemBelow is 0, but required for interface completeness).
func (n *Network) ShmemConfig() shmem.Config { return shmem.DefaultConfig() }

// InstrumentMetrics implements metrics.Instrumentable: per-node bus, NIC
// thread processor, DMA engine and link counters plus device-level spans
// and switch port counters. Endpoints created afterwards bind protocol
// counters, MMU-cache probes, and the Elan-specific command-queue stall
// and NIC-match counters.
func (n *Network) InstrumentMetrics(m *metrics.Registry) {
	if m == nil {
		return
	}
	n.met = m
	for i, hw := range n.nodes {
		prefix := metrics.NodePrefix(i) + "nic"
		hw.bus.Instrument(m, i)
		m.ProbeCount(prefix+"/elanproc_jobs", hw.elanProc.Jobs)
		m.ProbeTime(prefix+"/elanproc_busy_time", hw.elanProc.BusyTime)
		m.ProbeTime(prefix+"/elanproc_wait_time", hw.elanProc.WaitTime)
		hw.elanProc.RecordSpans(m, i, "threadproc", "nic")
		hw.dmaTx.Instrument(m, prefix+"/tx")
		hw.dmaRx.Instrument(m, prefix+"/rx")
		hw.dmaTx.RecordSpans(m, i, "tx", "nic")
		hw.dmaRx.RecordSpans(m, i, "rx", "nic")
		hw.link.Instrument(m, i)
	}
	// As in the other devices, the Elite crossbar's output contention rides
	// the destination down-link, so its port pipes carry no traffic and are
	// left unregistered; multi-stage fabrics register their leaf-tier links.
	if ti, ok := n.topo.(interface{ Instrument(*metrics.Registry) }); ok {
		ti.Instrument(m)
	}
	n.inj.Instrument(m)
}

// Utilizations implements dev.UtilizationReporter.
func (n *Network) Utilizations() []dev.Utilization {
	var out []dev.Utilization
	for _, hw := range n.nodes {
		out = append(out,
			dev.Utilization{Resource: hw.bus.Name(), Busy: hw.bus.BusyTime(), Jobs: hw.bus.Jobs()},
			dev.Utilization{Resource: hw.elanProc.Name(), Busy: hw.elanProc.BusyTime(), Jobs: hw.elanProc.Jobs()},
			dev.Utilization{Resource: hw.dmaTx.Name(), Busy: hw.dmaTx.BusyTime(), Jobs: hw.dmaTx.Jobs()},
			dev.Utilization{Resource: hw.dmaRx.Name(), Busy: hw.dmaRx.BusyTime(), Jobs: hw.dmaRx.Jobs()},
			dev.Utilization{Resource: hw.link.Up().Name(), Busy: hw.link.Up().BusyTime(), Jobs: hw.link.Up().Jobs()},
			dev.Utilization{Resource: hw.link.Down().Name(), Busy: hw.link.Down().BusyTime(), Jobs: hw.link.Down().Jobs()},
		)
	}
	return out
}

// NewEndpoint implements dev.Network.
func (n *Network) NewEndpoint(node int) dev.Endpoint {
	if node < 0 || node >= len(n.nodes) {
		panic("elan: bad node index")
	}
	ep := &endpoint{
		net:  n,
		node: node,
		mmu: memreg.NewPinCache(
			memreg.CostModel{PerOp: mmuPerOp, PerPage: mmuPerPage},
			memreg.CostModel{}, // MMU entries are overwritten, not deregistered
			mmuCapPages),
	}
	ep.nic = dev.NewNICCounters(n.met, node)
	ep.cmdqStalls = n.met.Counter(metrics.NodePrefix(node) + "nic/cmdq_stalls")
	ep.matches = n.met.Counter(metrics.NodePrefix(node) + "nic/matches")
	ep.retries = n.met.Counter(metrics.NodePrefix(node) + "nic/retries")
	ep.retryErrors = n.met.Counter(metrics.NodePrefix(node) + "nic/retry_exhausted")
	dev.InstrumentPinCache(n.met, node, ep.mmu)
	return ep
}

type endpoint struct {
	net  *Network
	node int
	mmu  *memreg.PinCache

	// outstanding NIC commands (issued, not yet delivered) for the
	// command-queue model.
	outstanding int

	// sink receives permanent transfer failures (dev.FaultReporter).
	sink func(error)
	// onRetry observes each individual source retry (dev.RetryReporter).
	onRetry func()

	// metric handles (nil-safe no-ops when instrumentation is off)
	nic         dev.NICCounters
	cmdqStalls  *metrics.Counter
	matches     *metrics.Counter
	retries     *metrics.Counter
	retryErrors *metrics.Counter

	// peers holds the resolved per-destination send state. The stage list
	// has two variants because PIO-sized sends skip the sender bus DMA; the
	// block carries both plus their source-side stage counts. One dense
	// slice of lazily materialized blocks — the hot path is a single index,
	// no map lookups, and an endpoint in a 4k-node world only pays for the
	// peers it actually speaks to. Adaptive routing bypasses the cache:
	// the up-link choice is per message.
	peers []*peerState
}

// peerState is one destination's resolved send state, per PIO/DMA variant.
type peerState struct {
	pathPIO []fabric.PathStage // size <= pioMax
	pathDMA []fabric.PathStage // size > pioMax
	srcPIO  int
	srcDMA  int
}

// peer returns dst's state block, materializing it (and the index slice)
// on first contact.
func (ep *endpoint) peer(dst int) *peerState {
	if ep.peers == nil {
		ep.peers = make([]*peerState, len(ep.net.nodes))
	}
	p := ep.peers[dst]
	if p == nil {
		p = &peerState{}
		ep.peers[dst] = p
	}
	return p
}

// OnFault implements dev.FaultReporter.
func (ep *endpoint) OnFault(sink func(error)) { ep.sink = sink }

// OnRetry implements dev.RetryReporter.
func (ep *endpoint) OnRetry(observe func()) { ep.onRetry = observe }

// retried counts one source retry and feeds the passive health observer.
func (ep *endpoint) retried() {
	ep.retries.Inc()
	if ep.onRetry != nil {
		ep.onRetry()
	}
}

// fail reports a permanent transfer failure to the registered sink, or
// raises it directly when the device is used without the MPI layer.
func (ep *endpoint) fail(err error) {
	ep.retryErrors.Inc()
	if ep.sink != nil {
		ep.sink(err)
		return
	}
	panic(err)
}

func (ep *endpoint) Node() int { return ep.node }

// EagerThreshold implements dev.Endpoint, honouring the config override.
func (ep *endpoint) EagerThreshold() int64 {
	if ep.net.cfg.EagerThreshold > 0 {
		return ep.net.cfg.EagerThreshold
	}
	return eagerMax
}
func (ep *endpoint) NICProgress() bool    { return true }
func (ep *endpoint) AcquireOnEager() bool { return true }

func (ep *endpoint) SendOverhead(size int64) sim.Time {
	if size <= pioMax {
		// PIO copy is part of the host's send work.
		return sendOverheadPIO + units.MBps(copyBW).TimeFor(size)
	}
	return sendOverheadDMA
}

func (ep *endpoint) RecvOverhead(size int64) sim.Time { return recvOverhead }

func (ep *endpoint) CopyTime(size int64) sim.Time {
	return units.MBps(copyBW).TimeFor(size)
}

// AcquireBuf synchronizes the NIC MMU table for the buffer's pages. The
// update stalls the NIC's translation machinery — the DMA engines and the
// thread processor cannot translate through a table being rewritten — which
// is why low buffer-reuse rates hurt Quadrics bandwidth, not just latency
// (Figure 8).
func (ep *endpoint) AcquireBuf(b memreg.Buf) sim.Time {
	cost := ep.mmu.Acquire(b)
	if cost > 0 {
		hw := ep.net.nodes[ep.node]
		now := ep.net.engineFor(ep.node).Now()
		hw.elanProc.Use(now, cost)
		hw.dmaTx.Use(now, cost)
		hw.dmaRx.Use(now, cost)
	}
	return cost
}

func (ep *endpoint) MemoryUsage(npeers int) int64 { return memFlat }

// MMU exposes the translation cache for tests and diagnostics.
func (ep *endpoint) MMU() *memreg.PinCache { return ep.mmu }

// IssueStall implements the 16-deep command queue: once it is full, every
// further issue takes the library's polled slow path on the host and makes
// the NIC thread processor swap queue state, stealing time from delivery.
func (ep *endpoint) IssueStall() sim.Time {
	if ep.outstanding < cmdQueueDepth {
		return 0
	}
	ep.cmdqStalls.Inc()
	hw := ep.net.nodes[ep.node]
	hw.elanProc.Use(ep.net.engineFor(ep.node).Now(), queueThrash)
	return slowIssue
}

// MatchDelay implements dev.NICMatcher: the thread processor walks the
// pending Tports table before delivering. The walk is capped — in-order
// streams match near the head; the full cost shows in many-to-many patterns
// where unrelated entries pile up.
func (ep *endpoint) MatchDelay(pending int, cb func()) {
	const maxWalk = 8
	if pending > maxWalk {
		pending = maxWalk
	}
	ep.matches.Inc()
	eng := ep.net.engineFor(ep.node)
	hw := ep.net.nodes[ep.node]
	_, end := hw.elanProc.Use(eng.Now(), matchBase+sim.Time(pending)*matchPerEntry)
	eng.At(end, cb)
}

// elanStage bills the shared NIC thread processor per chunk.
type elanStage struct{ st *sim.Station }

func (l elanStage) Send(now sim.Time, n int64) (start, end sim.Time) {
	return l.st.Use(now, elanPerMsg)
}

// path returns the staged path to dst, assembled once per (destination,
// PIO-or-DMA) variant and cached in the peer block — except under adaptive
// routing, where the fabric picks the up-link per message and the path must
// be rebuilt.
func (ep *endpoint) path(dst int, size int64) []fabric.PathStage {
	p, _ := ep.resolved(dst, size)
	return p
}

// resolved returns the staged path to dst for the size's PIO/DMA variant
// and its source-side stage count — the NIC thread processor, send DMA and
// link up (plus the sender bus for DMA-sized payloads, and whatever the
// topology keeps on the source leaf; TransferCut runs those on the source's
// domain engine). Both are cached in the peer block; adaptive routing
// rebuilds the path per message.
func (ep *endpoint) resolved(dst int, size int64) ([]fabric.PathStage, int) {
	srcN := func() int {
		n := 3
		if size > pioMax {
			n++
		}
		return n + fabric.SrcStagesOf(ep.net.topo, ep.node, dst)
	}
	if ep.net.dynamic && dst != ep.node {
		return ep.buildPath(dst, size), srcN()
	}
	p := ep.peer(dst)
	if size > pioMax {
		if p.pathDMA == nil {
			p.pathDMA = ep.buildPath(dst, size)
			p.srcDMA = srcN()
		}
		return p.pathDMA, p.srcDMA
	}
	if p.pathPIO == nil {
		p.pathPIO = ep.buildPath(dst, size)
		p.srcPIO = srcN()
	}
	return p.pathPIO, p.srcPIO
}

// buildPath assembles the staged path to dst. Small sends skip the sender-
// side bus DMA (the host PIO-copied into Elan SDRAM already, billed in
// SendOverhead). Same-node traffic loops through the NIC, crossing the
// node's PCI bus twice.
func (ep *endpoint) buildPath(dst int, size int64) []fabric.PathStage {
	src := ep.net.nodes[ep.node]
	var stages []fabric.PathStage
	if size > pioMax {
		stages = append(stages, fabric.PathStage{Stage: src.bus})
	}
	if dst == ep.node {
		return append(stages,
			fabric.PathStage{Stage: elanStage{src.elanProc}, Latency: loopbackPenalty},
			fabric.PathStage{Stage: src.dmaTx},
			fabric.PathStage{Stage: src.dmaRx},
			fabric.PathStage{Stage: src.bus},
		)
	}
	d := ep.net.nodes[dst]
	between, downLat := ep.net.topo.Between(ep.node, dst)
	stages = append(stages,
		fabric.PathStage{Stage: elanStage{src.elanProc}},
		fabric.PathStage{Stage: src.dmaTx},
		fabric.PathStage{Stage: src.link.Up(), Latency: wireLatency + ep.net.skew(ep.node)},
	)
	stages = append(stages, between...)
	return append(stages,
		fabric.PathStage{Stage: d.link.Down(), Latency: downLat + wireLatency},
		fabric.PathStage{Stage: elanStage{d.elanProc}},
		fabric.PathStage{Stage: d.dmaRx},
		fabric.PathStage{Stage: d.bus},
	)
}

func (ep *endpoint) transfer(dst int, size int64, deliver func()) {
	if ep.net.scale {
		// Domain mode: fault-free by construction (activation refuses fault
		// plans) and untraced; the staged path is split at the wire so each
		// node's hardware state stays on its own engine. The command-queue
		// slot is source-NIC state, so its release rides a cross-domain hop
		// back — one wire flight after delivery, carrying the destination's
		// skew so commit order stays a pure function of simulated time.
		eng := ep.net.engineFor(ep.node)
		dstEng := ep.net.engineFor(dst)
		ep.outstanding++
		path, srcN := ep.resolved(dst, size)
		fabric.TransferCut(eng, dstEng, path, srcN,
			size, fabric.ChunkFor(size), eng.Now(), func(sim.Time) {
				if dst == ep.node {
					ep.outstanding--
				} else {
					// ScheduleOn degrades to a same-engine Schedule with the
					// identical delay when both nodes share a shard, so the
					// release time is the same at every shard count.
					dstEng.ScheduleOn(eng, wireLatency+ep.net.skew(dst), func() {
						ep.outstanding--
					})
				}
				deliver()
			})
		return
	}
	eng := ep.net.eng
	rec := ep.net.rec
	tid, rail := rec.Cur(), rec.CurRail()
	ep.outstanding++
	inj := ep.net.inj
	if inj == nil || dst == ep.node {
		ep.wireAttempt(ep.path(dst, size), tid, rail, 0, size, eng.Now(),
			func(end sim.Time) {
				ep.outstanding--
				deliver()
			})
		return
	}
	start := eng.Now() + inj.NICStall(ep.node, eng.Now()) + inj.BusDelay(ep.node, eng.Now())
	// Elan source retry: the wormhole fabric bounces a failed route back
	// to the source, whose thread processor re-issues the packet from NIC
	// SDRAM after a short fixed interval — many cheap retries rather than
	// the host-visible timeouts of the other two interconnects. The
	// command-queue slot stays occupied for the whole retry chain. Each
	// re-issue re-resolves its route (adaptive routing's leaf-local state
	// forgets dead planes at detection), and a detected dead end — crashed
	// peer, partitioned fabric — fails typed without burning retries.
	attempt := 1
	var try func(at sim.Time)
	try = func(at sim.Time) {
		if inj.NodeDeadDetected(dst, at) || inj.NodeDeadDetected(ep.node, at) {
			node := dst
			if inj.NodeDeadDetected(ep.node, at) {
				node = ep.node
			}
			ep.outstanding--
			ep.fail(&faults.NodeDownError{Node: node, At: at})
			return
		}
		path := ep.path(dst, size)
		fate := fabric.LastRouteOf(ep.net.topo)
		if fate.State == fabric.RoutePartitioned {
			ep.outstanding--
			ep.fail(&faults.PartitionError{Src: ep.node, Dst: dst, Element: fate.Element})
			return
		}
		ep.wireAttempt(path, tid, rail, uint8(attempt-1), size, at,
			func(end sim.Time) {
				v := faults.Drop // black-holed: structural loss, no PRNG draw
				if fate.State != fabric.RouteBlackhole {
					v = inj.VerdictExtra(ep.node, dst, end, fate.ExtraDrop)
				}
				if v == faults.Deliver {
					ep.outstanding--
					deliver()
					return
				}
				if attempt > elanRetry.Limit {
					ep.outstanding--
					ep.fail(&faults.LinkError{Src: ep.node, Dst: dst,
						Attempts: attempt, Bytes: size, Proto: "Elan source retry"})
					return
				}
				delay := elanRetry.Delay(attempt)
				attempt++
				ep.retried()
				rec.Flight(msgtrace.FlightRetransmit, end, ep.node, tid, msgtrace.StageWire, int64(attempt-1), int64(dst))
				rec.Span(tid, msgtrace.StageBackoff, ep.node, rail, uint8(attempt-1), -1, end, end+delay, size)
				eng.At(end+delay, func() {
					hw := ep.net.nodes[ep.node]
					hw.elanProc.Use(eng.Now(), elanPerMsg)
					try(eng.Now())
				})
			})
	}
	try(start)
}

// wireAttempt runs one transfer attempt over the staged path, recording the
// attempt's wire span (and per-hop fabric detail) when the message is
// sampled; unsampled messages take the plain zero-extra-cost path.
func (ep *endpoint) wireAttempt(path []fabric.PathStage, tid msgtrace.ID, rail int8, attempt uint8, size int64, at sim.Time, done func(sim.Time)) {
	rec := ep.net.rec
	if rec.Sampled(tid) {
		inner := done
		done = func(end sim.Time) {
			rec.Span(tid, msgtrace.StageWire, ep.node, rail, attempt, -1, at, end, size)
			inner(end)
		}
		fabric.TransferTraced(ep.net.eng, path, size, fabric.ChunkFor(size), at,
			rec, tid, ep.node, rail, attempt, done)
		return
	}
	fabric.Transfer(ep.net.eng, path, size, fabric.ChunkFor(size), at, done)
}

// Eager implements dev.Endpoint (Tports queued send).
func (ep *endpoint) Eager(dst int, size int64, deliver func()) {
	ep.nic.Eager(size)
	ep.transfer(dst, size+32, deliver)
}

// Control implements dev.Endpoint.
func (ep *endpoint) Control(dst int, deliver func()) {
	ep.nic.Control()
	ep.transfer(dst, 64, deliver)
}

// Bulk implements dev.Endpoint (Elan remote DMA).
func (ep *endpoint) Bulk(dst int, size int64, deliver func()) {
	ep.nic.Bulk(size)
	ep.transfer(dst, size, deliver)
}

var _ dev.Network = (*Network)(nil)
var _ dev.Endpoint = (*endpoint)(nil)
