package elan

import (
	"testing"

	"mpinet/internal/memreg"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestNetworkBasics(t *testing.T) {
	n := New(sim.New(), DefaultConfig(8))
	if n.Name() != "QSN" || n.Nodes() != 8 {
		t.Fatalf("name=%q nodes=%d", n.Name(), n.Nodes())
	}
	if n.ShmemBelow() != 0 {
		t.Fatal("Quadrics MPI loops intra-node traffic through the NIC")
	}
}

func TestDeviceProperties(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0)
	if !ep.NICProgress() {
		t.Error("Elan progresses rendezvous on the NIC")
	}
	if !ep.AcquireOnEager() {
		t.Error("Elan MMU costs apply at every message size")
	}
	// Host overhead dips past the PIO limit (Figure 3's step at 256B).
	if ep.SendOverhead(512) >= ep.SendOverhead(128) {
		t.Errorf("send overhead did not dip past PIO size: %v vs %v",
			ep.SendOverhead(512), ep.SendOverhead(128))
	}
}

func TestMMUSyncCostAndCache(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0).(*endpoint)
	buf := memreg.Buf{Addr: 0, Size: 16 * units.KB}
	if ep.AcquireBuf(buf) <= 0 {
		t.Fatal("cold MMU sync free")
	}
	if ep.AcquireBuf(buf) != 0 {
		t.Fatal("warm MMU sync not free")
	}
	if ep.MMU().Pages() == 0 {
		t.Fatal("no MMU entries resident")
	}
}

func TestCommandQueueBackpressure(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	ep := n.NewEndpoint(0).(*endpoint)
	if ep.IssueStall() != 0 {
		t.Fatal("fresh endpoint stalled")
	}
	// Saturate the 16-deep queue with undelivered commands.
	for i := 0; i < cmdQueueDepth; i++ {
		ep.Eager(1, 64, func() {})
	}
	if ep.IssueStall() == 0 {
		t.Fatal("full command queue did not stall")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ep.IssueStall() != 0 {
		t.Fatal("drained queue still stalls")
	}
}

func TestMatchDelayScalesWithPending(t *testing.T) {
	measure := func(pending int) sim.Time {
		eng := sim.New()
		n := New(eng, DefaultConfig(2))
		ep := n.NewEndpoint(0).(*endpoint)
		var at sim.Time
		ep.MatchDelay(pending, func() { at = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if measure(8) <= measure(1) {
		t.Fatal("match delay not growing with pending entries")
	}
	// The walk is capped.
	if measure(100) != measure(8) {
		t.Fatal("match walk not capped")
	}
}

func TestUniBandwidthIsDMABound(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	ep := n.NewEndpoint(0)
	size := int64(4 * units.MB)
	var at sim.Time
	ep.Bulk(1, size, func() { at = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(size) / at.Seconds() / float64(units.MB)
	if bw < 280 || bw > 330 {
		t.Fatalf("uni-directional bulk bandwidth = %.0f MB/s, want ~308", bw)
	}
}

func TestLoopbackWorseThanWire(t *testing.T) {
	// The NIC-loopback intra-node path carries the paper's Figure 9
	// surprise: worse than inter-node.
	measure := func(dst int) sim.Time {
		eng := sim.New()
		n := New(eng, DefaultConfig(2))
		ep := n.NewEndpoint(0)
		var at sim.Time
		ep.Eager(dst, 64, func() { at = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if lb, rm := measure(0), measure(1); lb <= rm {
		t.Fatalf("loopback %v should be slower than remote %v", lb, rm)
	}
}

func TestTooManyNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.New(), Config{Nodes: 17, SwitchPorts: 16})
}

func TestEagerThresholdOverride(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EagerThreshold = 2048
	n := New(sim.New(), cfg)
	if got := n.NewEndpoint(0).EagerThreshold(); got != 2048 {
		t.Fatalf("threshold = %d", got)
	}
}

func TestUtilizations(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	n.NewEndpoint(0).Eager(1, 4096, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	us := n.Utilizations()
	if len(us) != 2*6 { // 2 nodes x (bus, elanproc, dma-tx, dma-rx, up, down)
		t.Fatalf("utilization entries = %d, want 12", len(us))
	}
}

func TestCopyTimeAndShmemConfig(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0)
	if ep.CopyTime(1<<20) <= ep.CopyTime(1<<10) {
		t.Fatal("copy time not increasing")
	}
	if n.ShmemConfig().CacheBW <= 0 {
		t.Fatal("shmem config empty")
	}
	if ep.MemoryUsage(7) != ep.MemoryUsage(1) {
		t.Fatal("elan memory should be flat")
	}
}
