package msgtrace

import (
	"strings"
	"testing"

	"mpinet/internal/units"
)

// TestIDRoundTrip pins the ID packing: rank and sequence survive the
// round trip, the zero ID stays reserved, and rendering matches the
// "s<rank>.<seq>" convention the dumps use.
func TestIDRoundTrip(t *testing.T) {
	for _, c := range []struct {
		rank int
		seq  int64
	}{{0, 1}, {0, 2}, {7, 1}, {1023, 1 << 30}} {
		id := MakeID(c.rank, c.seq)
		if id == 0 {
			t.Fatalf("MakeID(%d, %d) collides with the reserved zero ID", c.rank, c.seq)
		}
		if id.Rank() != c.rank || id.Seq() != c.seq {
			t.Errorf("MakeID(%d, %d) round-trips to (%d, %d)", c.rank, c.seq, id.Rank(), id.Seq())
		}
	}
	if got := MakeID(3, 7).String(); got != "s3.7" {
		t.Errorf("ID string = %q, want s3.7", got)
	}
	if got := ID(0).String(); got != "-" {
		t.Errorf("zero ID string = %q, want -", got)
	}
}

// TestSampledIsPureFunctionOfID is the no-coordination contract: any two
// recorders built with the same rate agree on every ID, the zero ID is
// never sampled, and 1-in-N sampling picks exactly the 1st, N+1st, ...
// send of each rank.
func TestSampledIsPureFunctionOfID(t *testing.T) {
	a, b := New(4), New(4)
	sampled := 0
	for rank := 0; rank < 3; rank++ {
		for seq := int64(1); seq <= 16; seq++ {
			id := MakeID(rank, seq)
			if a.Sampled(id) != b.Sampled(id) {
				t.Fatalf("recorders disagree on %v", id)
			}
			if want := (seq-1)%4 == 0; a.Sampled(id) != want {
				t.Errorf("Sampled(%v) = %v at 1-in-4, want %v", id, a.Sampled(id), want)
			}
			if a.Sampled(id) {
				sampled++
			}
		}
	}
	if sampled != 12 {
		t.Errorf("sampled %d of 48 at 1-in-4, want 12", sampled)
	}
	if a.Sampled(0) {
		t.Error("the zero ID must never be sampled")
	}
	if Disabled().Sampled(MakeID(0, 1)) {
		t.Error("a disabled recorder must sample nothing")
	}
}

// TestNilRecorderIsSafe drives the whole surface through a nil receiver:
// every method the model layers call unconditionally must be a no-op.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	id := MakeID(0, 1)
	r.Begin(id, 0, 1, 0, 64, KindEager, 0)
	r.Span(id, StageWire, 0, 0, 0, -1, 0, 10, 64)
	r.Finish(id, 10)
	r.Flight(FlightRetransmit, 5, 0, id, StageWire, 1, 0)
	r.Freeze("boom", 5, 0, StageWire, id)
	r.SetCur(id)
	r.ClearCur()
	r.SetCurRail(1)
	if r.Cur() != 0 || r.CurRail() != -1 {
		t.Error("nil recorder leaked a current context")
	}
	if r.Sampled(id) || r.Enabled() {
		t.Error("nil recorder claims to record")
	}
	if r.Msgs() != nil || r.Spans() != nil || r.FlightEntries() != nil {
		t.Error("nil recorder returned records")
	}
	var sb strings.Builder
	r.DumpFlight(&sb)
	if !strings.Contains(sb.String(), "off") {
		t.Errorf("nil DumpFlight = %q, want an 'off' notice", sb.String())
	}
}

// TestFlightRingWraps overfills the ring and checks it keeps exactly the
// newest FlightSize entries in order.
func TestFlightRingWraps(t *testing.T) {
	r := New(1)
	n := FlightSize + 50
	for i := 0; i < n; i++ {
		r.Flight(FlightSend, units.Time(i), 0, MakeID(0, int64(i+1)), StageSend, 0, 0)
	}
	got := r.FlightEntries()
	if len(got) != FlightSize {
		t.Fatalf("ring holds %d entries, want %d", len(got), FlightSize)
	}
	for i, e := range got {
		if want := units.Time(n - FlightSize + i); e.At != want {
			t.Fatalf("entry %d at %v, want %v (oldest-first order)", i, e.At, want)
		}
	}
}

// TestFreezeFirstWinsAndFallsBack pins the incident semantics: the first
// freeze owns the postmortem (later ones are ignored), and a freeze with
// no message in hand falls back to the ring's last incident — which a
// plain send must not clobber.
func TestFreezeFirstWinsAndFallsBack(t *testing.T) {
	r := New(1)
	incident := MakeID(2, 9)
	r.Flight(FlightRetransmit, 10, 2, incident, StageWire, 1, 0)
	r.Flight(FlightSend, 11, 0, MakeID(0, 1), StageSend, 0, 0) // must not steal the blame
	r.Freeze("watchdog", 20, -1, NumStages, 0)
	rank, st, id := r.FailSite()
	if rank != 2 || st != StageWire || id != incident {
		t.Fatalf("fallback FailSite = (%d, %v, %v), want (2, wire, %v)", rank, st, id, incident)
	}
	r.Freeze("second fault", 30, 5, StageRail, MakeID(5, 1))
	if why, ok := r.Frozen(); !ok || why != "watchdog" {
		t.Errorf("Frozen = (%q, %v) after a second freeze, want the first (watchdog)", why, ok)
	}
	var sb strings.Builder
	r.DumpFlight(&sb)
	for _, want := range []string{"frozen", "watchdog", "rank 2", "s2.9"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("frozen dump missing %q:\n%s", want, sb.String())
		}
	}
}

// TestAnalyzeDecomposesExactly hand-builds one message with overlapping
// and gapped spans and checks the category split: overlap charges the
// higher-priority category once, gaps go to "other", and the categories
// sum exactly to the end-to-end time.
func TestAnalyzeDecomposesExactly(t *testing.T) {
	r := New(1)
	id := MakeID(0, 1)
	r.Begin(id, 0, 1, 0, 1024, KindRndv, 0)
	r.Span(id, StageSend, 0, -1, 0, -1, 0, 10, 1024)    // host: [0,10)
	r.Span(id, StageWire, 0, 0, 0, -1, 10, 40, 1024)    // wire: [10,40)
	r.Span(id, StageBackoff, 0, 0, 1, -1, 30, 50, 1024) // retry overlaps wire [30,40) and runs to 50
	r.Span(id, StageDeliver, 1, 0, 0, -1, 60, 70, 1024) // host again, after a [50,60) gap
	r.Finish(id, 70)
	b := r.Analyze(1)
	if b.Completed != 1 || len(b.TopK) != 1 {
		t.Fatalf("Analyze saw %d completed messages, want 1", b.Completed)
	}
	m := b.TopK[0]
	want := map[Category]units.Time{
		CatHost:  20, // [0,10) + [60,70)
		CatWire:  20, // [10,30): the rest of the attempt lost to the overlapping retry
		CatRetry: 20, // [30,50): backoff outranks wire where they overlap
		CatOther: 10, // [50,60): uncovered gap
	}
	for cat, ps := range want {
		if m.Cats[cat] != ps {
			t.Errorf("%v = %v, want %v", cat, m.Cats[cat], ps)
		}
	}
	var sum units.Time
	for _, v := range m.Cats {
		sum += v
	}
	if sum != m.E2E() || m.E2E() != 70 {
		t.Errorf("categories sum to %v over e2e %v, want exact 70", sum, m.E2E())
	}
}
