// Causal critical-path analysis over the span stream: per-message stage
// decomposition, aggregate blame by category, top-k slowest messages, and
// a back-chained critical path. Everything here is pure post-processing —
// deterministic given the recorded spans, which are themselves
// deterministic given the run.
package msgtrace

import (
	"sort"

	"mpinet/internal/units"
)

// Category is the blame bucket a span charges: the "who made this message
// slow" axis of the report (host vs NIC vs wire vs contention vs retry).
type Category uint8

// Blame categories.
const (
	CatHost       Category = iota // sender/receiver CPU work: overhead, copies, registration
	CatNIC                        // protocol work on the NIC: handshakes, match walks
	CatWire                       // the successful transfer attempt, issue to delivery
	CatRetry                      // failed attempts and retransmit backoff
	CatRail                       // bond dispatch and failover re-issue
	CatContention                 // waiting: receive posted but message not yet matched
	CatOther                      // uncovered end-to-end time (scheduling gaps)
	NumCategories
)

var catNames = [NumCategories]string{
	"host", "nic", "wire", "retry", "rail", "contention", "other",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "?"
}

// MsgBlame is one message's decomposition: the envelope plus per-category
// time. The categories plus Other sum exactly to End-Start, so a healthy
// latency run decomposes without residual mystery.
type MsgBlame struct {
	ID       ID
	Src, Dst int32
	Tag      int32
	Bytes    int64
	Kind     MsgKind
	Start    units.Time
	End      units.Time
	Cats     [NumCategories]units.Time
}

// E2E returns the message's end-to-end time.
func (m MsgBlame) E2E() units.Time { return m.End - m.Start }

// Blame is the run-level report.
type Blame struct {
	Messages  int // roots recorded
	Completed int // roots whose receive completed
	Spans     int
	// Cats accumulates the per-message decompositions; Total is the sum of
	// end-to-end times, so Cats sums exactly to Total.
	Cats  [NumCategories]units.Time
	Total units.Time
	// TopK holds the k slowest completed messages, slowest first.
	TopK []MsgBlame
	// Critical is the back-chained causal path ending at the last message
	// to complete: each entry's sender previously completed a receive from
	// the next entry, last link first.
	Critical []MsgBlame
	// Failure is non-nil when the flight recorder froze: the trigger and
	// the blamed rank/stage/message.
	Failure *FailureInfo
}

// FailureInfo names a frozen failure.
type FailureInfo struct {
	Why   string
	At    units.Time
	Rank  int
	Stage Stage
	MsgID ID
}

// category maps one span to its blame bucket. Wire attempts past the first
// are recovery work; a wire attempt on a different rail than the bond
// first chose is failover work. Hop spans are detail within a wire attempt
// and charge nothing here.
func category(s SpanRec, firstRail int8) (Category, bool) {
	switch s.Stage {
	case StageSend, StageCopy, StageRegister, StageDeliver:
		return CatHost, true
	case StageHandshake, StageMatch:
		return CatNIC, true
	case StageWire:
		if s.Attempt > 0 {
			if s.Rail >= 0 && firstRail >= 0 && s.Rail != firstRail {
				return CatRail, true
			}
			return CatRetry, true
		}
		return CatWire, true
	case StageBackoff:
		return CatRetry, true
	case StageRail:
		return CatRail, true
	case StageWait:
		return CatContention, true
	default:
		return CatOther, false
	}
}

// catPriority orders categories for overlap attribution: when two spans
// cover the same instant, the instant charges the category that best
// explains it — recovery first (it is the anomaly), then protocol and
// wire, then plain host work, then waiting.
var catPriority = [NumCategories]int{
	CatRetry: 6, CatRail: 5, CatNIC: 4, CatWire: 3, CatHost: 2, CatContention: 1, CatOther: 0,
}

// decompose attributes a message's [Start, End] interval across categories
// by a boundary sweep: at every instant the covering span with the highest
// category priority wins; uncovered time is CatOther. The buckets sum to
// E2E exactly.
func decompose(m MsgRec, spans []SpanRec) MsgBlame {
	out := MsgBlame{ID: m.ID, Src: m.Src, Dst: m.Dst, Tag: m.Tag,
		Bytes: m.Bytes, Kind: m.Kind, Start: m.Start, End: m.End}
	if m.End <= m.Start {
		return out
	}
	firstRail := int8(-1)
	for _, s := range spans {
		if s.Stage == StageWire {
			firstRail = s.Rail
			break
		}
	}
	// Boundary sweep over clipped spans. Hop spans are sub-detail of wire
	// attempts and are excluded so wire time is not double-counted.
	type edge struct {
		at    units.Time
		cat   Category
		delta int
	}
	var edges []edge
	for _, s := range spans {
		if s.Stage == StageHop {
			continue
		}
		cat, ok := category(s, firstRail)
		if !ok {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < m.Start {
			lo = m.Start
		}
		if hi > m.End {
			hi = m.End
		}
		if hi <= lo {
			continue
		}
		edges = append(edges, edge{lo, cat, +1}, edge{hi, cat, -1})
	}
	// Insertion sort by time (span counts are small); -1 edges before +1
	// at equal times does not matter — zero-length segments charge nothing.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].at < edges[j-1].at; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	var active [NumCategories]int
	prev := m.Start
	ei := 0
	charge := func(upto units.Time) {
		if upto <= prev {
			return
		}
		best, found := CatOther, false
		for c := Category(0); c < NumCategories; c++ {
			if active[c] > 0 && (!found || catPriority[c] > catPriority[best]) {
				best, found = c, true
			}
		}
		out.Cats[best] += upto - prev
		prev = upto
	}
	for ei < len(edges) {
		at := edges[ei].at
		charge(at)
		for ei < len(edges) && edges[ei].at == at {
			active[edges[ei].cat] += edges[ei].delta
			ei++
		}
	}
	charge(m.End)
	return out
}

// Analyze builds the blame report: per-message decompositions aggregated
// by category, the k slowest messages, the back-chained critical path, and
// the frozen failure if any.
func (r *Recorder) Analyze(k int) *Blame {
	b := &Blame{}
	if r == nil {
		return b
	}
	if why, ok := r.Frozen(); ok {
		rank, st, id := r.FailSite()
		b.Failure = &FailureInfo{Why: why, At: r.freezeAt, Rank: rank, Stage: st, MsgID: id}
	}
	b.Messages = len(r.msgs)
	b.Spans = len(r.spans)
	if len(r.msgs) == 0 {
		return b
	}
	// Group spans by message (spans are appended roughly in time order,
	// but grouping must not rely on it).
	byMsg := make(map[ID][]SpanRec, len(r.msgs))
	for _, s := range r.spans {
		byMsg[s.ID] = append(byMsg[s.ID], s)
	}
	all := make([]MsgBlame, 0, len(r.msgs))
	for _, m := range r.msgs {
		if m.End == 0 {
			continue // in flight at the end of the run (or aborted)
		}
		d := decompose(m, byMsg[m.ID])
		all = append(all, d)
		b.Completed++
		b.Total += d.E2E()
		for c := range d.Cats {
			b.Cats[c] += d.Cats[c]
		}
	}
	if len(all) == 0 {
		return b
	}
	// Top-k slowest, ties broken by ID for determinism.
	sorted := make([]MsgBlame, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool { return slower(sorted[i], sorted[j]) })
	if k > len(sorted) {
		k = len(sorted)
	}
	b.TopK = sorted[:k]
	// Critical path: start from the last completion and walk backwards —
	// the predecessor of a message is the latest-completing message that
	// was received by the current sender before the current send started.
	last := all[0]
	for _, m := range all[1:] {
		if m.End > last.End || (m.End == last.End && m.ID < last.ID) {
			last = m
		}
	}
	onPath := map[ID]bool{}
	cur := last
	for len(b.Critical) < 64 {
		b.Critical = append(b.Critical, cur)
		onPath[cur.ID] = true
		var pred *MsgBlame
		for i := range all {
			m := &all[i]
			if onPath[m.ID] || m.Dst != cur.Src || m.End > cur.Start {
				continue
			}
			if pred == nil || m.End > pred.End || (m.End == pred.End && m.ID < pred.ID) {
				pred = m
			}
		}
		if pred == nil {
			break
		}
		cur = *pred
	}
	return b
}

// slower orders messages by descending end-to-end time, ties by ID.
func slower(a, z MsgBlame) bool {
	if a.E2E() != z.E2E() {
		return a.E2E() > z.E2E()
	}
	return a.ID < z.ID
}
