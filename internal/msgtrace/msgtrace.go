// Package msgtrace is the per-message causal tracing layer of the
// simulated cluster: every MPI send (and every point-to-point operation a
// collective decomposes into) is assigned a trace ID at entry, and the ID
// rides the message through the MPI library, the rail bond, the NIC model
// and the fabric to the receiver. Each stage a sampled message passes
// through appends one typed, fixed-size span record — eager copy,
// rendezvous handshake, registration hit/miss, rail selection and failover,
// retransmit attempts, per-hop fabric transfer, receive-side completion,
// park/wake wait — so a run can be decomposed causally instead of only in
// aggregate (the stage breakdown the paper argues from: host overhead vs
// wire time vs pin-down misses vs handshakes).
//
// Design rules, inherited from internal/metrics:
//
//   - Nil-safe and off by default. Every method on a nil *Recorder is a
//     no-op; model code traces unconditionally and pays one nil check.
//   - Observation only. Recording never schedules events or charges
//     simulated time, so tracing cannot perturb the simulation: a run
//     produces bit-identical results with tracing on or off.
//   - Deterministic. Trace IDs derive from (sender rank, per-rank send
//     sequence), sampling is a pure function of the ID, and no map order
//     ever reaches an output — identical runs trace byte-identically at
//     any -j.
//   - Bounded. Span and message logs are capped (drops are counted, not
//     silent); the flight recorder is a fixed ring that never allocates.
//
// The flight recorder is always on, even when span tracing is disabled: a
// fixed-size ring of the most recent message-level incidents (send starts,
// retransmits, failovers, timeouts) that is frozen at the first failure so
// every fault-injected abort ships with its own postmortem.
package msgtrace

import (
	"fmt"
	"io"

	"mpinet/internal/units"
)

// ID is one message's trace identity: the sender's world rank packed with
// the sender's per-rank send sequence number. Both are deterministic
// simulation quantities, so IDs are stable across runs and across -j. ID 0
// means "untraced".
type ID uint64

const seqBits = 40

// MakeID packs a sender rank and its (1-based) send sequence number.
func MakeID(rank int, seq int64) ID {
	return ID(uint64(rank+1)<<seqBits | uint64(seq)&(1<<seqBits-1))
}

// Rank returns the sender rank the ID was minted by (-1 for ID 0).
func (id ID) Rank() int { return int(id>>seqBits) - 1 }

// Seq returns the sender-local send sequence number.
func (id ID) Seq() int64 { return int64(id & (1<<seqBits - 1)) }

// String renders "s<rank>.<seq>" ("-" for the zero ID).
func (id ID) String() string {
	if id == 0 {
		return "-"
	}
	return fmt.Sprintf("s%d.%d", id.Rank(), id.Seq())
}

// Stage classifies one span of a message's life. The taxonomy follows the
// paper's causal vocabulary: host work, protocol handshakes, registration,
// wire time, recovery.
type Stage uint8

// Span stages.
const (
	StageSend      Stage = iota // sender host work: issue stall, send overhead
	StageCopy                   // eager staging copy on the host
	StageRegister               // registration acquire (pin-down / MMU walk)
	StageHandshake              // rendezvous RTS->CTS round trip at the sender
	StageWire                   // one device transfer attempt, issue to delivery
	StageHop                    // one fabric path stage within a wire attempt
	StageBackoff                // retransmit backoff wait between attempts
	StageRail                   // bond dispatch or failover re-issue
	StageMatch                  // NIC-side match-queue walk (Elan)
	StageDeliver                // receive-side completion work
	StageWait                   // receive posted -> message matched
	NumStages
)

var stageNames = [NumStages]string{
	"send", "copy", "register", "handshake", "wire", "hop",
	"backoff", "rail", "match", "deliver", "wait",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "?"
}

// MsgKind classifies the protocol a message took.
type MsgKind uint8

// Message kinds.
const (
	KindEager MsgKind = iota
	KindRndv
	KindShmem
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindRndv:
		return "rndv"
	case KindShmem:
		return "shmem"
	default:
		return "?"
	}
}

// MsgRec is the root record of one traced message: the envelope plus the
// end-to-end interval (End is zero until the receive completes).
type MsgRec struct {
	ID       ID
	Src, Dst int32
	Tag      int32
	Bytes    int64
	Kind     MsgKind
	Start    units.Time
	End      units.Time
}

// SpanRec is one typed span: a stage of one message's life. Attempt counts
// device-level (re)issues of the same payload — retransmits and rail
// failover re-issues keep the message's ID and bump Attempt, which is what
// links a re-issued in-flight op back to its parent. Hop indexes the fabric
// path stage for StageHop spans (-1 otherwise).
type SpanRec struct {
	ID         ID
	Stage      Stage
	Rank       int32 // rank that observed the span (sender or receiver side)
	Rail       int8  // bond rail the span rode (-1 when not applicable)
	Attempt    uint8
	Hop        int16
	Start, End units.Time
	Bytes      int64
}

// FlightKind classifies a flight-recorder entry.
type FlightKind uint8

// Flight-recorder entry kinds.
const (
	FlightSend       FlightKind = iota // message entered the library
	FlightRetransmit                   // a NIC recovery attempt fired
	FlightFailover                     // the bond re-issued on another rail
	FlightRailDown                     // a rail was declared dead
	FlightTimeout                      // the MPI watchdog fired
	FlightAbort                        // the job aborted
	FlightElementDown                  // a fabric element or node died (A = packed element code)
)

var flightNames = [...]string{
	"send", "retransmit", "failover", "rail-down", "timeout", "abort",
	"element-down",
}

// String implements fmt.Stringer.
func (k FlightKind) String() string {
	if int(k) < len(flightNames) {
		return flightNames[k]
	}
	return "?"
}

// Element codes pack the identity of a dead fabric element or node into a
// flight-record argument: kind<<32 | index. FlightElementDown carries one
// in A; a FlightRailDown caused by an element death carries the culprit's
// code in B so the incident names the switch, not just the rail.
const (
	// ElemLeaf is a leaf switching element (index = leaf number).
	ElemLeaf int64 = iota
	// ElemPlane is a spine up-link plane (index = plane number).
	ElemPlane
	// ElemNode is a host node (index = node number).
	ElemNode
)

// ElemCode packs an element kind and index into a flight-record argument.
func ElemCode(kind int64, index int) int64 { return kind<<32 | int64(uint32(index)) }

// ElemDecode splits a packed element code.
func ElemDecode(code int64) (kind int64, index int) {
	return code >> 32, int(uint32(code))
}

// ElemName renders a packed element code for the postmortem dump.
func ElemName(code int64) string {
	kind, idx := ElemDecode(code)
	switch kind {
	case ElemLeaf:
		return fmt.Sprintf("leaf %d", idx)
	case ElemPlane:
		return fmt.Sprintf("spine plane %d", idx)
	default:
		return fmt.Sprintf("node %d", idx)
	}
}

// FlightRec is one fixed-size flight-recorder entry. A and B carry
// kind-specific detail (peer/destination, attempt count, rail index...).
type FlightRec struct {
	At    units.Time
	ID    ID
	Rank  int32
	Kind  FlightKind
	Stage Stage
	A, B  int64
}

// FlightSize is the ring capacity: enough to reconstruct the last moments
// before a failure, small enough to live in every world for free.
const FlightSize = 256

// DefaultSampleEvery is the default sampling period: one message in every
// DefaultSampleEvery per sender rank is span-traced. 1 traces everything.
const DefaultSampleEvery = 1

// DefaultSpanMax bounds the span log, DefaultMsgMax the root-record log.
const (
	DefaultSpanMax = 1 << 20
	DefaultMsgMax  = 1 << 18
)

// Recorder collects one world's trace. Create with New (span tracing on)
// or leave the world to its always-on flight ring; a nil *Recorder ignores
// everything. Like the engine and the metrics registry it relies on the
// cooperative scheduler for mutual exclusion.
type Recorder struct {
	enabled bool
	every   int64

	// SpanMax / MsgMax cap the logs; excess increments the drop counters.
	SpanMax int
	MsgMax  int

	cur     ID   // scoped current-message context for the mpi->device handoff
	curRail int8 // bond rail the current dispatch rides (-1 = no bond)

	msgs         []MsgRec
	midx         map[ID]int32
	spans        []SpanRec
	droppedSpans int64
	droppedMsgs  int64

	flight  [FlightSize]FlightRec
	flightN uint64
	// lastIncident is the most recent non-send flight entry carrying a
	// message ID — the best guess at "the message that was in trouble" when
	// a failure site cannot name one itself.
	lastIncident FlightRec

	frozen     []FlightRec
	freezeWhy  string
	freezeAt   units.Time
	failRank   int32
	failID     ID
	failStage  Stage
	haveFreeze bool
}

// New returns a recorder with span tracing enabled, sampling one message
// in every per sender rank (every <= 1 traces all).
func New(every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{
		enabled: true,
		every:   int64(every),
		SpanMax: DefaultSpanMax,
		MsgMax:  DefaultMsgMax,
		curRail: -1,
		midx:    make(map[ID]int32),
		spans:   make([]SpanRec, 0, 1024),
		msgs:    make([]MsgRec, 0, 256),
	}
}

// Disabled returns a recorder with span tracing off: only the always-on
// flight ring records. This is what every world owns by default.
func Disabled() *Recorder { return &Recorder{curRail: -1} }

// Enabled reports whether span tracing is on.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Sampled reports whether the message behind id is span-traced. Sampling
// is a pure function of the ID — (seq-1) % every == 0 — so sender and
// receiver, NIC and rail all agree without coordination, at any -j.
func (r *Recorder) Sampled(id ID) bool {
	return r != nil && r.enabled && id != 0 && (id.Seq()-1)%r.every == 0
}

// SetCur installs the current-message context for the duration of a
// synchronous mpi -> device call; the device model reads it with Cur and
// captures it into its completion closures. The cooperative single-token
// scheduler makes this scoped handoff safe: nothing else runs between
// SetCur and ClearCur.
func (r *Recorder) SetCur(id ID) {
	if r != nil {
		r.cur = id
	}
}

// Cur returns the current-message context (0 when none).
func (r *Recorder) Cur() ID {
	if r == nil {
		return 0
	}
	return r.cur
}

// ClearCur removes the context (message and rail).
func (r *Recorder) ClearCur() {
	if r != nil {
		r.cur = 0
		r.curRail = -1
	}
}

// SetCurRail tags the scoped dispatch context with the bond rail it rides;
// the rail layer sets it around each member dispatch so the NIC below can
// attribute wire spans to the rail without knowing about bonding.
func (r *Recorder) SetCurRail(rail int8) {
	if r != nil {
		r.curRail = rail
	}
}

// CurRail returns the rail of the current dispatch (-1 when not bonded).
func (r *Recorder) CurRail() int8 {
	if r == nil {
		return -1
	}
	return r.curRail
}

// Begin records a message root (when sampled) and always stamps the flight
// ring. kindA/B ride into the flight entry.
func (r *Recorder) Begin(id ID, src, dst, tag int32, bytes int64, kind MsgKind, at units.Time) {
	if r == nil {
		return
	}
	r.fly(FlightRec{At: at, ID: id, Rank: src, Kind: FlightSend, A: int64(dst), B: bytes})
	if !r.Sampled(id) {
		return
	}
	if r.MsgMax > 0 && len(r.msgs) >= r.MsgMax {
		r.droppedMsgs++
		return
	}
	r.midx[id] = int32(len(r.msgs))
	r.msgs = append(r.msgs, MsgRec{ID: id, Src: src, Dst: dst, Tag: tag, Bytes: bytes, Kind: kind, Start: at})
}

// Finish closes a message root's end-to-end interval.
func (r *Recorder) Finish(id ID, at units.Time) {
	if r == nil || !r.Sampled(id) {
		return
	}
	if i, ok := r.midx[id]; ok {
		r.msgs[i].End = at
	}
}

// Span appends one stage span for a sampled message. Zero-duration spans
// are kept: a registration hit is a real observation (Bytes tells the
// story even when the span is instantaneous).
func (r *Recorder) Span(id ID, st Stage, rank int, rail int8, attempt uint8, hop int16, start, end units.Time, bytes int64) {
	if !r.Sampled(id) {
		return
	}
	if r.SpanMax > 0 && len(r.spans) >= r.SpanMax {
		r.droppedSpans++
		return
	}
	r.spans = append(r.spans, SpanRec{
		ID: id, Stage: st, Rank: int32(rank), Rail: rail, Attempt: attempt,
		Hop: hop, Start: start, End: end, Bytes: bytes,
	})
}

// Msgs returns the recorded message roots (order of Begin).
func (r *Recorder) Msgs() []MsgRec {
	if r == nil {
		return nil
	}
	return r.msgs
}

// Spans returns the recorded spans (order of recording).
func (r *Recorder) Spans() []SpanRec {
	if r == nil {
		return nil
	}
	return r.spans
}

// Dropped returns how many spans and message roots were discarded over the
// caps.
func (r *Recorder) Dropped() (spans, msgs int64) {
	if r == nil {
		return 0, 0
	}
	return r.droppedSpans, r.droppedMsgs
}

// fly writes one ring entry; the ring never allocates.
func (r *Recorder) fly(rec FlightRec) {
	r.flight[r.flightN%FlightSize] = rec
	r.flightN++
}

// Flight stamps one flight-recorder entry. Always on, whatever the
// sampling state.
func (r *Recorder) Flight(kind FlightKind, at units.Time, rank int, id ID, st Stage, a, b int64) {
	if r == nil {
		return
	}
	rec := FlightRec{At: at, ID: id, Rank: int32(rank), Kind: kind, Stage: st, A: a, B: b}
	r.fly(rec)
	if kind != FlightSend && id != 0 {
		r.lastIncident = rec
	}
}

// Freeze snapshots the flight ring at the moment of a failure; only the
// first freeze wins, so the snapshot shows the run's original sin rather
// than the last symptom. why names the trigger (watchdog, abort, retry
// exhaustion, all-rails-down); rank/stage/id locate the blame.
func (r *Recorder) Freeze(why string, at units.Time, rank int, st Stage, id ID) {
	if r == nil || r.haveFreeze {
		return
	}
	r.haveFreeze = true
	if id == 0 && r.lastIncident.ID != 0 {
		// The failure site could not name a message; blame the last one the
		// flight ring saw in trouble (retransmitting, failing over...).
		id = r.lastIncident.ID
		if st == NumStages {
			st = r.lastIncident.Stage
		}
		if rank < 0 {
			rank = int(r.lastIncident.Rank)
		}
	}
	r.freezeWhy, r.freezeAt = why, at
	r.failRank, r.failStage, r.failID = int32(rank), st, id
	r.frozen = append(r.frozen, r.FlightEntries()...)
}

// Frozen reports whether a failure froze the ring, and the trigger.
func (r *Recorder) Frozen() (why string, ok bool) {
	if r == nil || !r.haveFreeze {
		return "", false
	}
	return r.freezeWhy, true
}

// FailSite returns the frozen failure's rank, stage and message ID.
func (r *Recorder) FailSite() (rank int, st Stage, id ID) {
	if r == nil || !r.haveFreeze {
		return -1, NumStages, 0
	}
	return int(r.failRank), r.failStage, r.failID
}

// FlightEntries returns the live ring in chronological order.
func (r *Recorder) FlightEntries() []FlightRec {
	if r == nil {
		return nil
	}
	n := r.flightN
	if n > FlightSize {
		n = FlightSize
	}
	out := make([]FlightRec, 0, n)
	start := r.flightN - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.flight[(start+i)%FlightSize])
	}
	return out
}

// DumpFlight renders the postmortem: the frozen ring if a failure froze
// it, the live ring otherwise. The format is fixed-width and deterministic
// (dump format documented in docs/MODEL.md §16).
func (r *Recorder) DumpFlight(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "flight recorder: off")
		return
	}
	entries := r.FlightEntries()
	header := "flight recorder: live ring"
	if r.haveFreeze {
		entries = r.frozen
		header = fmt.Sprintf("flight recorder: frozen at %s: %s (rank %d, stage %s, msg %s)",
			r.freezeAt, r.freezeWhy, r.failRank, r.failStage, r.failID)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintf(w, "  %-14s %-6s %-10s %-10s %-10s %8s %8s\n",
		"time", "rank", "event", "msg", "stage", "a", "b")
	for _, e := range entries {
		if e.Kind == FlightSend && e.At == 0 && e.ID == 0 && e.Rank == 0 {
			continue // unwritten slot of a ring that never wrapped
		}
		stage := "-"
		if e.Kind != FlightSend {
			stage = e.Stage.String()
		}
		// Element attribution: incidents caused by a fabric-element or node
		// death name the culprit, not just its packed code.
		elem := ""
		if e.Kind == FlightElementDown {
			elem = "  " + ElemName(e.A)
		} else if e.Kind == FlightRailDown && e.B != 0 {
			elem = "  " + ElemName(e.B)
		}
		fmt.Fprintf(w, "  %-14s %-6d %-10s %-10s %-10s %8d %8d%s\n",
			e.At.String(), e.Rank, e.Kind.String(), e.ID.String(), stage, e.A, e.B, elem)
	}
	if len(entries) == 0 {
		fmt.Fprintln(w, "  (empty)")
	}
}
