package units

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Microsecond.Micros() != 1 {
		t.Errorf("Micros(1us) = %v", Microsecond.Micros())
	}
	if Second.Seconds() != 1 {
		t.Errorf("Seconds(1s) = %v", Second.Seconds())
	}
	if FromMicros(2.5) != 2500*Nanosecond {
		t.Errorf("FromMicros(2.5) = %v", FromMicros(2.5))
	}
	if FromSeconds(0.001) != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v", FromSeconds(0.001))
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.00ns"},
		{4600 * Nanosecond, "4.60us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
		{-2 * Second, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidth(t *testing.T) {
	if got := MBps(100).TimeFor(100 * MB); got != Second {
		t.Errorf("100MB @ 100MB/s = %v, want 1s", got)
	}
	// 8 Gbps = 1e9 bytes/s.
	if got := Gbps(8).TimeFor(1e9); got != Second {
		t.Errorf("1e9 B @ 8Gbps = %v, want 1s", got)
	}
	if got := MBps(841).InMBps(); got != 841 {
		t.Errorf("round trip MBps = %v", got)
	}
}

func TestTimeForPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BytesPerSecond(0).TimeFor(1)
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"}, {512, "512B"}, {KB, "1KB"}, {1536, "1.5KB"},
		{MB, "1MB"}, {256 * KB, "256KB"}, {3 * GB, "3.00GB"}, {-KB, "-1KB"},
	}
	for _, c := range cases {
		if got := SizeString(c.in); got != c.want {
			t.Errorf("SizeString(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: TimeFor is monotone in n and additive within rounding.
func TestTimeForMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		r := MBps(100)
		ta, tb := r.TimeFor(int64(a)), r.TimeFor(int64(b))
		if a <= b && ta > tb {
			return false
		}
		sum := r.TimeFor(int64(a) + int64(b))
		diff := sum - (ta + tb)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // picoseconds of rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
