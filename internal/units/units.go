// Package units defines the time and size conventions used throughout
// mpinet.
//
// Simulated time is an integer number of picoseconds. Picosecond resolution
// keeps rate arithmetic (bytes / bandwidth) exact enough that no cumulative
// rounding shows up even in hour-long simulated runs, while int64 still
// spans over 100 simulated days.
//
// Sizes are bytes. Following the paper's convention, "MB" in reported
// bandwidth figures means 2^20 bytes.
package units

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
type Time int64

// Duration constants.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Size constants (bytes). MB is 2^20 per the paper's convention.
const (
	Byte int64 = 1
	KB   int64 = 1 << 10
	MB   int64 = 1 << 20
	GB   int64 = 1 << 30
)

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMicros converts a floating-point microsecond count to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// FromSeconds converts a floating-point second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// BytesPerSecond is a bandwidth. The zero value means "infinitely fast" and
// must not be used where a real rate is required; model code validates.
type BytesPerSecond float64

// MBps constructs a bandwidth from a figure in 2^20-byte megabytes/second
// (the paper's reporting unit).
func MBps(v float64) BytesPerSecond { return BytesPerSecond(v * float64(MB)) }

// Gbps constructs a bandwidth from a link signalling figure in decimal
// gigabits per second.
func Gbps(v float64) BytesPerSecond { return BytesPerSecond(v * 1e9 / 8) }

// InMBps reports the bandwidth in 2^20-byte megabytes/second.
func (b BytesPerSecond) InMBps() float64 { return float64(b) / float64(MB) }

// TimeFor returns how long it takes to move n bytes at rate b.
func (b BytesPerSecond) TimeFor(n int64) Time {
	if b <= 0 {
		panic("units: TimeFor on non-positive bandwidth")
	}
	return Time(float64(n) / float64(b) * float64(Second))
}

// SizeString renders a byte count with binary units.
func SizeString(n int64) string {
	switch {
	case n < 0:
		return "-" + SizeString(-n)
	case n < KB:
		return fmt.Sprintf("%dB", n)
	case n < MB:
		if n%KB == 0 {
			return fmt.Sprintf("%dKB", n/KB)
		}
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	case n < GB:
		if n%MB == 0 {
			return fmt.Sprintf("%dMB", n/MB)
		}
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(GB))
	}
}
