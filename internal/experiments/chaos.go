package experiments

import (
	"errors"
	"fmt"
	"io"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/report"
	"mpinet/internal/units"
)

// This file is the chaos-engineering slice of the suite: scheduled
// switching-element deaths and host crashes on multi-level Clos fabrics,
// exercising the self-healing path (ECMP re-hash after detection), the
// typed failure taxonomy (faults.ErrPartitioned, mpi.ErrRankFailed) and the
// ULFM-style rank-death notification. Everything is seeded and
// counter-based: the same storms hit the same packets at any -j or -shards.

// chaosLU runs the LU benchmark (class S) on the platform and returns its
// completion time.
func chaosLU(p cluster.Platform, procs int) (units.Time, error) {
	lu, err := apps.ByName("LU")
	if err != nil {
		return 0, err
	}
	res, err := lu.Run(apps.RunConfig{Platform: p, Class: apps.ClassS, Procs: procs})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// spineKills builds n plane deaths striking at the given time (no repair):
// planes 0..n-1 of every up-link stage die at once — the correlated failure
// a power-domain loss produces.
func spineKills(n int, at units.Time) []faults.SwitchKill {
	kills := make([]faults.SwitchKill, n)
	for i := range kills {
		kills[i] = faults.SwitchKill{Level: 1, Index: i, At: at}
	}
	return kills
}

// ExtSpineFailures extends the fault study to failure domains at Clos
// scale: LU completion time versus the number of spine planes killed
// mid-run, for the three interconnects (plus adaptive-routing InfiniBand)
// on a 3-level Clos. Until the fabric notices a dead plane
// (faults.DefaultDetectDelay) its traffic black-holes and the device retry
// protocols carry the loss; after detection, deterministic ECMP re-hashes
// onto the surviving planes — so the curve's slope is the price of losing
// bisection, and its existence at all is the self-healing working.
func (r *Runner) ExtSpineFailures() report.Figure {
	r.logf("Ext J: LU under spine-plane failures")
	f := report.Figure{ID: "Ext J", Title: "LU Completion Time under Spine-Plane Failures (3-level Clos)",
		XLabel: "Spine Planes Killed", YLabel: "Completion Time (s)"}
	procs := 512
	topo := cluster.Clos(3, 16, 1) // 8 hosts/leaf, 8 up-link planes
	kills := []int{0, 1, 2, 4}
	if r.Quick {
		procs = 32
		topo = cluster.Clos(3, 8, 1) // 4 hosts/leaf, 4 up-link planes
		kills = []int{0, 1, 2}
	}
	plats := []cluster.Platform{
		r.pf(cluster.IBA()),
		r.pf(cluster.IBA()).With(cluster.WithRouting(cluster.Adaptive)),
		r.pf(cluster.Myri()),
		r.pf(cluster.QSN()),
	}
	for _, p := range plats {
		p = p.With(topo)
		c := microbench.Curve{Label: p.Name}
		healthy, err := chaosLU(p, procs)
		if err != nil {
			panic(err)
		}
		for _, k := range kills {
			elapsed := healthy
			if k > 0 {
				pk := p.With(cluster.WithSwitchKills(spineKills(k, healthy/4)...),
					cluster.WithSeed(FaultSeed))
				elapsed, err = chaosLU(pk, procs)
				if err != nil {
					panic(err)
				}
			}
			c.X = append(c.X, int64(k))
			c.Y = append(c.Y, elapsed.Seconds())
		}
		f.Curves = append(f.Curves, c)
	}
	f.Notes = fmt.Sprintf("planes killed at 1/4 of the healthy runtime, detection delay %v; deterministic ECMP re-hashes around dead planes, adaptive routing stops scanning them", faults.DefaultDetectDelay)
	return f
}

// classifyChaos renders a chaos run's outcome for the soak log: "success",
// or the typed failure family, or — the thing the gate exists to catch — an
// UNTYPED error, which always indicates a bug in the failure plumbing.
func classifyChaos(err error) string {
	switch {
	case err == nil:
		return "success"
	case errors.Is(err, mpi.ErrRankFailed):
		return "typed: rank-failed"
	case errors.Is(err, faults.ErrPartitioned):
		return "typed: partitioned"
	case errors.Is(err, mpi.ErrTimeout):
		return "typed: timeout"
	case errors.Is(err, faults.ErrRetryExhausted):
		return "typed: retry-exhausted"
	default:
		return "UNTYPED: " + err.Error()
	}
}

// ChaosSoak is the CI chaos-matrix entry point: on one interconnect and one
// routing policy, run the kill-storm scenarios on a 64-node 3-level Clos
// and verify each lands in its contracted outcome — completion for
// survivable storms, a typed error for lethal ones, never a hang (the
// scaled MPI watchdog guarantees termination) and never an untyped error.
// Output is deterministic, so CI replays the soak and byte-compares.
func ChaosSoak(w io.Writer, net, routing string, seed uint64, shards int) error {
	base, err := faultPlatform(net)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = FaultSeed
	}
	opts := []cluster.Option{cluster.Clos(3, 8, 1)} // 16 leaves x 4 hosts, 4 planes
	switch routing {
	case "", "deterministic":
	case "adaptive":
		opts = append(opts, cluster.WithRouting(cluster.Adaptive))
	default:
		return fmt.Errorf("experiments: unknown routing %q (have deterministic, adaptive)", routing)
	}
	if shards > 1 {
		opts = append(opts, cluster.WithShards(shards))
	}
	p := base.With(opts...)
	const procs = 64
	label := p.Name + "/" + routing
	if routing == "" {
		label = p.Name + "/deterministic"
	}

	healthy, err := chaosLU(p, procs)
	if err != nil {
		return fmt.Errorf("experiments: healthy chaos baseline on %s: %w", label, err)
	}
	fmt.Fprintf(w, "%-24s healthy:           %v\n", label, healthy)
	at := healthy / 4

	// Survivable storms: the job must complete, self-healing around the
	// dead elements.
	storms := []struct {
		name string
		pk   cluster.Platform
	}{
		{"spine-kill+repair", p.With(
			cluster.WithSwitchKills(faults.SwitchKill{Level: 1, Index: 1, At: at, RepairAt: healthy / 2}),
			cluster.WithSeed(seed))},
		// Plane 0 dies for good, plane 2 dies and is repaired, plane 3's
		// linecard drops 5% of its packets for a window: only plane 1 stays
		// fully healthy, and the job still completes.
		{"kill-storm", p.With(
			cluster.WithSwitchKills(
				faults.SwitchKill{Level: 1, Index: 0, At: at},
				faults.SwitchKill{Level: 1, Index: 2, At: 2 * at, RepairAt: healthy}),
			cluster.WithLinecardDegrades(
				faults.LinecardDegrade{Level: 1, Index: 3, From: at, Until: healthy, Drop: 0.05}),
			cluster.WithSeed(seed))},
	}
	for _, s := range storms {
		elapsed, err := chaosLU(s.pk, procs)
		if err != nil {
			fmt.Fprintf(w, "%-24s %-18s %s\n", label, s.name+":", classifyChaos(err))
			return fmt.Errorf("experiments: %s %s did not complete: %w", label, s.name, err)
		}
		fmt.Fprintf(w, "%-24s %-18s success %v\n", label, s.name+":", elapsed)
	}

	// Host death without fault tolerance: the first operation touching the
	// dead rank aborts the job with a typed RankFailedError.
	pc := p.With(cluster.WithNodeCrashes(faults.NodeCrash{Node: 5, At: at}),
		cluster.WithSeed(seed))
	_, err = chaosLU(pc, procs)
	fmt.Fprintf(w, "%-24s %-18s %s\n", label, "node-crash:", classifyChaos(err))
	if !errors.Is(err, mpi.ErrRankFailed) {
		return fmt.Errorf("experiments: %s node-crash: want typed rank failure, got %v", label, err)
	}

	// The same death under Config.FaultTolerant, on a workload that handles
	// it: survivors see Status.Err on operations against the dead rank and
	// route around it; the job completes. The crash is timed against the
	// ring's own healthy runtime so it lands mid-exchange.
	_, ringHealthy, err := chaosTolerant(p, procs)
	if err != nil {
		return fmt.Errorf("experiments: healthy tolerant ring on %s: %w", label, err)
	}
	notified, _, err := chaosTolerant(p.With(
		cluster.WithNodeCrashes(faults.NodeCrash{Node: 5, At: ringHealthy / 4}),
		cluster.WithSeed(seed)), procs)
	if err != nil {
		fmt.Fprintf(w, "%-24s %-18s %s\n", label, "tolerant:", classifyChaos(err))
		return fmt.Errorf("experiments: %s tolerant ring did not survive: %w", label, err)
	}
	fmt.Fprintf(w, "%-24s %-18s success (%d rank-failed notifications)\n", label, "tolerant:", notified)
	if notified == 0 {
		return fmt.Errorf("experiments: %s tolerant ring saw no rank-death notifications", label)
	}

	// Lethal storm: every up-link plane dies, the fabric partitions, and the
	// job must fail typed — partition, rank failure or watchdog — within the
	// scaled timeout, never hang.
	pp := p.With(cluster.WithSwitchKills(spineKills(4, at)...), cluster.WithSeed(seed))
	_, err = chaosLU(pp, procs)
	out := classifyChaos(err)
	fmt.Fprintf(w, "%-24s %-18s %s\n", label, "partition:", out)
	if err == nil {
		return fmt.Errorf("experiments: %s survived killing every spine plane", label)
	}
	if !errors.Is(err, faults.ErrPartitioned) && !errors.Is(err, mpi.ErrTimeout) &&
		!errors.Is(err, faults.ErrRetryExhausted) && !errors.Is(err, mpi.ErrRankFailed) {
		return fmt.Errorf("experiments: %s partition failed untyped: %w", label, err)
	}
	return nil
}

// chaosTolerant runs the fault-tolerant ring exchange: every rank sendrecvs
// with its neighbours for a few rounds, treating a RankFailedError status
// as a dead neighbour to skip — the ULFM usage pattern. Returns how many
// operations completed with a rank-death notification, and the elapsed
// simulated time.
func chaosTolerant(p cluster.Platform, procs int) (int, units.Time, error) {
	cfg := mpi.Config{Net: p.New(procs), Procs: procs}
	cluster.ApplyWorld(&cfg, cluster.WithFaultTolerant())
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return 0, 0, err
	}
	// Classic mode (a fault plan forces it), so the cooperative scheduler
	// serializes rank bodies: a plain counter is race-free.
	notified := 0
	err = w.Run(func(rk *mpi.Rank) {
		const rounds = 4
		buf := rk.Malloc(4 * units.KB)
		next := (rk.Rank() + 1) % rk.Size()
		prev := (rk.Rank() - 1 + rk.Size()) % rk.Size()
		for i := 0; i < rounds; i++ {
			st := rk.Sendrecv(buf, next, 7, buf, prev, 7)
			if st.Err != nil {
				notified++
			}
			rk.Compute(50 * units.Microsecond)
		}
	})
	return notified, w.Elapsed(), err
}
