package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/metrics"
	"mpinet/internal/microbench"
	"mpinet/internal/report"
	"mpinet/internal/units"
)

// FaultSeed is the committed seed every fault experiment draws from. One
// seed plus the counter-based PRNG of internal/faults makes every faulty
// figure a pure function of its inputs: the same drops hit the same packets
// at any -j, on any host.
const FaultSeed uint64 = 0x5EED2003

// faultIters is the ping-pong iteration count of the fault latency sweeps.
// At a 1% drop probability a (platform, size) point needs hundreds of
// messages before the expected retransmit penalty shows in its average;
// Latency's usual 16 iterations would leave most points untouched.
const faultIters = 384

// Faulty derives a platform running under a uniform packet-drop plan with
// the committed seed, its report label extended with the drop rate.
func Faulty(p cluster.Platform, drop float64) cluster.Platform {
	if drop == 0 {
		return p
	}
	return p.With(cluster.WithFaults(faults.DropPlan(FaultSeed, drop))).
		Named(fmt.Sprintf("%s drop=%g%%", p.Name, drop*100))
}

// ExtFaults regenerates Figure 1's latency sweep under injected packet
// loss: for each interconnect, the healthy curve plus curves at 0.1% and 1%
// uniform drop probability. Lost packets are recovered by each
// interconnect's own mechanism (VAPI RC retransmit, GM send-token resend,
// Elan source retry), so the gap between curves is the recovery cost the
// paper's healthy testbeds never show.
func (r *Runner) ExtFaults() report.Figure {
	r.logf("Ext F: latency under packet loss")
	f := report.Figure{ID: "Ext F", Title: "MPI Latency under Uniform Packet Loss (seeded)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	iters := faultIters
	if r.Quick {
		iters = 128
	}
	for _, p := range r.osu() {
		for _, drop := range []float64{0, 0.001, 0.01} {
			f.Curves = append(f.Curves,
				microbench.LatencyIters(Faulty(p, drop), r.sizes(4, 4*units.KB), iters))
		}
	}
	f.Notes = fmt.Sprintf("drops drawn from seed %#x; recovery: IBA RC retransmit (exp. backoff), GM token resend, Elan source retry", FaultSeed)
	return f
}

// faultPlatform resolves one of the testbed interconnects by name.
func faultPlatform(net string) (cluster.Platform, error) {
	var names []string
	for _, p := range cluster.OSU() {
		if p.Name == net {
			return p, nil
		}
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return cluster.Platform{}, fmt.Errorf("experiments: unknown interconnect %q (have %v)", net, names)
}

// FaultSmoke is the CI fault-matrix entry point: on one interconnect, run a
// seeded latency probe and the LU class S application under the given drop
// rate, and report the injector and NIC recovery counters. drop = 0 is the
// healthy control. Any run that deadlocks instead of finishing or failing
// with a typed error is a bug — the MPI watchdog converts starvation into
// mpi.ErrTimeout, so this function always returns.
func FaultSmoke(w io.Writer, net string, drop float64, seed uint64, shards int) error {
	base, err := faultPlatform(net)
	if err != nil {
		return err
	}
	if shards > 1 {
		base = base.With(cluster.WithShards(shards))
	}
	if seed == 0 {
		seed = FaultSeed
	}
	p := base
	if drop > 0 {
		p = base.With(cluster.WithFaults(faults.DropPlan(seed, drop)), cluster.WithSeed(seed)).
			Named(fmt.Sprintf("%s drop=%g%%", base.Name, drop*100))
	}

	lat := microbench.LatencyIters(p, []int64{1024}, 256)
	fmt.Fprintf(w, "%-16s 1KB latency over 256 ping-pongs: %.2f us\n", p.Name, lat.Y[0])

	m := metrics.New()
	res, err := apps.ByName("LU")
	if err != nil {
		return err
	}
	result, err := res.Run(apps.RunConfig{
		Platform: p, Class: apps.ClassS, Procs: 8, Metrics: m,
	})
	if err != nil {
		return fmt.Errorf("experiments: LU class S smoke on %s: %w", p.Name, err)
	}
	fmt.Fprintf(w, "%-16s LU class S x8:  %v elapsed\n", p.Name, result.Elapsed)

	packets, drops := m.Counter("faults/packets").Value(), m.Counter("faults/drops").Value()
	var retries int64
	for _, it := range m.Snapshot().Items {
		if strings.HasSuffix(it.Name, "/nic/retries") {
			retries += it.Value
		}
	}
	fmt.Fprintf(w, "%-16s injector: %d packets, %d dropped; NIC retries: %d\n",
		p.Name, packets, drops, retries)
	if drop > 0 && drops == 0 {
		return fmt.Errorf("experiments: %s at drop=%g: injector never fired", p.Name, drop)
	}
	if drop == 0 && drops != 0 {
		return fmt.Errorf("experiments: healthy %s recorded %d drops", p.Name, drops)
	}
	return nil
}
