package experiments

import (
	"fmt"

	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/parallel"
	"mpinet/internal/report"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// appProcs returns the node count an application is reported on in Figures
// 14-17 (8 nodes; SP and BT need a square count and get 4).
func appProcs(name string) int {
	if name == "SP" || name == "BT" {
		return 4
	}
	return 8
}

// Figs14to17 regenerates Figures 14-17: class B execution times on the
// 8-node cluster (SP/BT on 4), all three networks.
func (r *Runner) Figs14to17() report.Table {
	r.logf("Figs 14-17: application times")
	t := report.Table{ID: "Figs 14-17", Title: "Application Execution Time, class " + r.class().String(),
		Header: []string{"App", "Nodes", "IBA (s)", "Myri (s)", "QSN (s)"},
		Notes:  "Figure 14: IS, MG; Figure 15: SP, BT, LU; Figure 16: CG, FT; Figure 17: sweep3D"}
	for _, name := range report.AppOrder {
		procs := appProcs(name)
		row := []string{name, fmt.Sprint(procs)}
		for _, p := range r.osu() {
			res := r.app(name, p, procs, 1)
			row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tab1 regenerates Table 1: the per-process message-size distribution.
func (r *Runner) Tab1() report.Table {
	r.logf("Table 1: message size distribution")
	t := report.Table{ID: "Table 1", Title: "Message Size Distribution (calls per process)",
		Header: []string{"App", "<2K", "2K-16K", "16K-1M", ">1M"}}
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), appProcs(name), 1)
		h := res.PerRank.SizeHist
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprint(h[trace.Below2K]), fmt.Sprint(h[trace.To16K]),
			fmt.Sprint(h[trace.To1M]), fmt.Sprint(h[trace.Above1M])})
	}
	return t
}

// Tab2 regenerates Table 2: scalability with system size for the three
// networks.
func (r *Runner) Tab2() report.Table {
	r.logf("Table 2: scalability")
	t := report.Table{ID: "Table 2", Title: "Scalability with System Sizes (execution time, s)",
		Header: []string{"App", "IBA 2", "IBA 4", "IBA 8", "Myri 2", "Myri 4", "Myri 8", "QSN 2", "QSN 4", "QSN 8"}}
	for _, name := range []string{"IS", "CG", "MG", "LU", "FT", "S3D-50", "S3D-150"} {
		row := []string{name}
		for _, p := range r.osu() {
			for _, procs := range report.Table2Procs {
				if name == "FT" && procs == 2 {
					row = append(row, "-")
					continue
				}
				res := r.app(name, p, procs, 1)
				row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Tab3 regenerates Table 3: non-blocking MPI call statistics.
func (r *Runner) Tab3() report.Table {
	r.logf("Table 3: non-blocking calls")
	t := report.Table{ID: "Table 3", Title: "Non-Blocking MPI Calls (per process)",
		Header: []string{"App", "#Isend", "Avg Size", "#Irecv", "Avg Size"}}
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), appProcs(name), 1)
		pr := res.PerRank
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprint(pr.IsendCalls), fmt.Sprint(pr.AvgIsendSize()),
			fmt.Sprint(pr.IrecvCalls), fmt.Sprint(pr.AvgIrecvSize())})
	}
	return t
}

// Tab4 regenerates Table 4: buffer-reuse rates.
func (r *Runner) Tab4() report.Table {
	r.logf("Table 4: buffer reuse")
	t := report.Table{ID: "Table 4", Title: "Buffer Reuse Rate",
		Header: []string{"App", "% Reuse", "Wt % Reuse"}}
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), appProcs(name), 1)
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.2f", res.PerRank.ReuseRate()*100),
			fmt.Sprintf("%.2f", res.PerRank.WeightedReuseRate()*100)})
	}
	return t
}

// Tab5 regenerates Table 5: collective-call statistics.
func (r *Runner) Tab5() report.Table {
	r.logf("Table 5: collectives")
	t := report.Table{ID: "Table 5", Title: "MPI Collective Calls (per process)",
		Header: []string{"App", "#calls", "% calls", "% Volume"}}
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), appProcs(name), 1)
		pr := res.PerRank
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprint(pr.CollCalls),
			fmt.Sprintf("%.2f", pr.CollectiveCallShare()*100),
			fmt.Sprintf("%.2f", pr.CollectiveVolumeShare()*100)})
	}
	return t
}

// Tab6 regenerates Table 6: intra-node point-to-point statistics for 16
// processes on 8 nodes, block mapping.
func (r *Runner) Tab6() report.Table {
	r.logf("Table 6: intra-node communication")
	t := report.Table{ID: "Table 6", Title: "Intra-Node Point-to-Point Communication (16 procs / 8 nodes, block)",
		Header: []string{"App", "#calls", "% calls", "% Volume"}}
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), 16, 2)
		ag := res.Profile
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprint(ag.IntraCalls),
			fmt.Sprintf("%.2f", ag.IntraNodeCallShare()*100),
			fmt.Sprintf("%.2f", ag.IntraNodeVolumeShare()*100)})
	}
	return t
}

// speedupApps lists the applications of Figures 18-23 in figure order, and
// speedupIDs maps each to its figure ID.
var (
	speedupApps = []string{"IS", "CG", "MG", "LU", "S3D-50", "S3D-150"}
	speedupIDs  = map[string]string{
		"IS": "Fig 18", "CG": "Fig 19", "MG": "Fig 20",
		"LU": "Fig 21", "S3D-50": "Fig 22", "S3D-150": "Fig 23",
	}
)

// speedupFig regenerates one of Figures 18-23: an application's speedup on
// 2/4/8 nodes, all three networks, 2-node base.
func (r *Runner) speedupFig(name string) report.Figure {
	r.logf("%s: speedup of %s", speedupIDs[name], name)
	f := report.Figure{ID: speedupIDs[name], Title: "Speedup of " + name,
		XLabel: "Nodes", YLabel: "Speedup"}
	for _, p := range r.osu() {
		var times []float64
		for _, procs := range report.Table2Procs {
			times = append(times, r.app(name, p, procs, 1).Elapsed.Seconds())
		}
		c := report.Speedup(report.Table2Procs[:], times)
		c.Label = p.Name
		f.Curves = append(f.Curves, c)
	}
	ideal := microbench.Curve{Label: "Ideal"}
	for _, procs := range report.Table2Procs {
		ideal.X = append(ideal.X, int64(procs))
		ideal.Y = append(ideal.Y, float64(procs))
	}
	f.Curves = append(f.Curves, ideal)
	return f
}

// Figs18to23 regenerates Figures 18-23 as a slice, fanning the six
// applications out over r.Jobs workers.
func (r *Runner) Figs18to23() []report.Figure {
	figs := make([]report.Figure, len(speedupApps))
	parallel.ForEach(r.Jobs, len(speedupApps), func(i int) {
		figs[i] = r.speedupFig(speedupApps[i])
	})
	return figs
}

// Fig24 regenerates Figure 24: InfiniBand scalability on the 16-node
// Topspin cluster.
func (r *Runner) Fig24() report.Table {
	r.logf("Fig 24: Topspin 16-node scalability")
	t := report.Table{ID: "Fig 24", Title: "Scalability on the 16-Node Topspin InfiniBand Cluster (s)",
		Header: []string{"App", "2", "4", "8", "16"},
		Notes:  "SP and BT need square process counts; shown at 4 and 16"}
	for _, name := range report.AppOrder {
		row := []string{name}
		for _, procs := range []int{2, 4, 8, 16} {
			ok := procs >= 2
			if name == "SP" || name == "BT" {
				ok = procs == 4 || procs == 16
			}
			if name == "FT" && procs == 2 {
				ok = false
			}
			if !ok {
				row = append(row, "-")
				continue
			}
			res := r.app(name, cluster.Topspin(), procs, 1)
			row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig25 regenerates Figure 25: SMP performance, 16 processes on 8 nodes
// with block mapping, all three networks.
func (r *Runner) Fig25() report.Table {
	r.logf("Fig 25: SMP performance")
	t := report.Table{ID: "Fig 25", Title: "SMP Performance (16 processes on 8 nodes, block mapping; s)",
		Header: []string{"App", "IBA", "Myri", "QSN"}}
	for _, name := range report.AppOrder {
		row := []string{name}
		for _, p := range r.osu() {
			res := r.app(name, p, 16, 2)
			row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig28 regenerates Figure 28: NAS performance of InfiniBand on PCI vs
// PCI-X.
func (r *Runner) Fig28() report.Table {
	r.logf("Fig 28: IBA apps PCI vs PCI-X")
	t := report.Table{ID: "Fig 28", Title: "MPI over InfiniBand Application Performance (PCI vs PCI-X; s)",
		Header: []string{"App", "PCI-X", "PCI", "Degradation %"}}
	for _, name := range []string{"IS", "CG", "MG", "LU", "FT", "SP", "BT"} {
		procs := appProcs(name)
		x := r.app(name, cluster.IBA(), procs, 1).Elapsed.Seconds()
		pci := r.app(name, cluster.IBAPCI(), procs, 1).Elapsed.Seconds()
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.2f", x), fmt.Sprintf("%.2f", pci),
			fmt.Sprintf("%.1f", (pci-x)/x*100)})
	}
	return t
}

// Sizes1K is a convenience export for the small-message sweeps used by
// external callers.
var Sizes1K = []int64{4, 16, 64, 256, units.KB, 4 * units.KB}
