package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// renderSuite runs the suite drivers at the given worker count and returns
// the concatenated output document. In -short mode only the micro suite
// renders (the race shard's budget); the full document comparison runs in
// the long mode and, binary-level, in the CI determinism smoke.
func renderSuite(t *testing.T, jobs int) string {
	r := NewRunner(true, nil)
	r.Jobs = jobs
	var out bytes.Buffer
	r.RunMicro(&out)
	if !testing.Short() {
		r.RunApps(&out)
		r.RunExtensions(&out)
	}
	return out.String()
}

// TestSuiteByteIdenticalAcrossJobs is the tentpole contract: the quick
// suite rendered at -j 1 and at -j 8 must be byte-identical. On any host,
// at any worker count, which core runs a figure must be unobservable.
func TestSuiteByteIdenticalAcrossJobs(t *testing.T) {
	serial := renderSuite(t, 1)
	parallel := renderSuite(t, 8)
	if serial != parallel {
		t.Fatal("suite output differs between -j 1 and -j 8")
	}
}

// TestComparisonsIdenticalAcrossJobs checks the comparison builders return
// the same slices, in the same order, at any worker count.
func TestComparisonsIdenticalAcrossJobs(t *testing.T) {
	serial := NewRunner(true, nil)
	serial.Jobs = 1
	par := NewRunner(true, nil)
	par.Jobs = 8
	if a, b := serial.MicroComparisons(), par.MicroComparisons(); !reflect.DeepEqual(a, b) {
		t.Error("MicroComparisons differ between -j 1 and -j 8")
	}
	if a, b := serial.Table1Comparisons(), par.Table1Comparisons(); !reflect.DeepEqual(a, b) {
		t.Error("Table1Comparisons differ between -j 1 and -j 8")
	}
}

// TestSingleflightAppCache checks concurrent tables needing the same
// configuration share one simulation: RunApps at -j 8 must leave exactly as
// many cache entries as at -j 1.
func TestSingleflightAppCache(t *testing.T) {
	count := func(jobs int) int {
		r := NewRunner(true, nil)
		r.Jobs = jobs
		var out bytes.Buffer
		r.RunApps(&out)
		return len(r.appCache)
	}
	serial, par := count(1), count(8)
	if serial != par {
		t.Errorf("app cache entries: %d at -j 1, %d at -j 8", serial, par)
	}
}

// TestTimingsRecorded checks every suite task leaves a wall-clock record in
// commit order.
func TestTimingsRecorded(t *testing.T) {
	r := NewRunner(true, nil)
	r.Jobs = 4
	var out bytes.Buffer
	r.RunMicro(&out)
	got := r.Timings()
	want := []string{"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 7",
		"Fig 8", "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 26", "Fig 27"}
	if len(got) != len(want) {
		t.Fatalf("%d timings, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w {
			t.Errorf("timing %d is %q, want %q", i, got[i].Name, w)
		}
		if got[i].Wall <= 0 {
			t.Errorf("timing %q has non-positive wall-clock %v", w, got[i].Wall)
		}
	}
	snap := r.SuiteMetrics().Snapshot()
	if v, ok := snap.Get("suite/Fig 1/wall_ns"); !ok || v <= 0 {
		t.Errorf("suite metrics missing Fig 1 wall-clock (ok=%v v=%d)", ok, v)
	}
	if v, _ := snap.Get("suite/tasks"); v != int64(len(want)) {
		t.Errorf("suite/tasks = %d, want %d", v, len(want))
	}
}
