package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickMicroSuite(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(true, nil)
	r.RunMicro(&out)
	s := out.String()
	for _, id := range []string{"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6",
		"Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 26", "Fig 27"} {
		if !strings.Contains(s, id+":") {
			t.Errorf("micro suite output missing %s", id)
		}
	}
	for _, net := range []string{"IBA", "Myri", "QSN"} {
		if !strings.Contains(s, net) {
			t.Errorf("micro suite output missing network %s", net)
		}
	}
}

func TestQuickAppSuite(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(true, nil)
	r.RunApps(&out)
	s := out.String()
	for _, id := range []string{"Figs 14-17", "Table 1", "Table 2", "Table 3",
		"Table 4", "Table 5", "Table 6", "Fig 18", "Fig 23", "Fig 24", "Fig 25", "Fig 28"} {
		if !strings.Contains(s, id+":") {
			t.Errorf("app suite output missing %s", id)
		}
	}
	for _, app := range []string{"IS", "CG", "MG", "LU", "FT", "SP", "BT", "S3D-50", "S3D-150"} {
		if !strings.Contains(s, app) {
			t.Errorf("app suite output missing %s", app)
		}
	}
}

func TestAppCacheReused(t *testing.T) {
	r := NewRunner(true, nil)
	var out bytes.Buffer
	_ = r.Tab1()
	n := len(r.appCache)
	if n == 0 {
		t.Fatal("no cached runs after Tab1")
	}
	_ = r.Tab4() // same configurations — must hit the cache entirely
	if len(r.appCache) != n {
		t.Fatalf("Tab4 re-ran applications: cache %d -> %d", n, len(r.appCache))
	}
	r.RunApps(&out) // smoke the rest with the cache warm
}

func TestComparisonsProduceValues(t *testing.T) {
	r := NewRunner(true, nil)
	comps := r.Table1Comparisons()
	if len(comps) == 0 {
		t.Fatal("no Table 1 comparisons")
	}
	for _, c := range comps {
		if c.Sim < 0 {
			t.Errorf("%s: negative simulated value", c.Name)
		}
	}
}

func TestQuickExtensionSuite(t *testing.T) {
	var out bytes.Buffer
	r := NewRunner(true, nil)
	r.RunExtensions(&out)
	s := out.String()
	for _, id := range []string{"Ext A", "Ext B", "Ext C", "Ext D", "Ext E", "Ext F"} {
		if !strings.Contains(s, id+":") {
			t.Errorf("extension suite output missing %s", id)
		}
	}
	for _, want := range []string{"IBA-OD", "multicast", "LogGP", "raw lat", "32", "drop=1%"} {
		if !strings.Contains(s, want) {
			t.Errorf("extension suite output missing %q", want)
		}
	}
}

func TestSizesQuickThinning(t *testing.T) {
	full := NewRunner(false, nil).sizes(4, 4096)
	quick := NewRunner(true, nil).sizes(4, 4096)
	if len(quick) >= len(full) {
		t.Fatalf("quick sweep (%d points) not thinner than full (%d)", len(quick), len(full))
	}
}
