package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpinet/internal/microbench"
	"mpinet/internal/units"
)

// Acceptance: at the committed seed, the 1%-drop Figure 1 latency curve
// strictly dominates the healthy curve pointwise, on all three
// interconnects — every point pays some recovery cost, none pays a
// negative one.
func TestFaultLatencyDominatesHealthy(t *testing.T) {
	r := NewRunner(false, nil)
	sizes := r.sizes(4, 4*units.KB)
	for _, p := range osu() {
		healthy := microbench.LatencyIters(p, sizes, faultIters)
		faulty := microbench.LatencyIters(Faulty(p, 0.01), sizes, faultIters)
		for i, s := range sizes {
			if faulty.Y[i] <= healthy.Y[i] {
				t.Errorf("%s at %d B: faulty %.3f us <= healthy %.3f us",
					p.Name, s, faulty.Y[i], healthy.Y[i])
			}
		}
	}
}

// Deadlock freedom: LU class S completes under 1% drop on every
// interconnect. The host wall-clock watchdog makes a hang a test failure
// instead of a suite timeout.
func TestLUSurvivesPacketLoss(t *testing.T) {
	for _, net := range []string{"IBA", "Myri", "QSN"} {
		for _, drop := range []float64{0, 0.01} {
			done := make(chan error, 1)
			var out bytes.Buffer
			go func() { done <- FaultSmoke(&out, net, drop, 0, 1) }()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("%s drop=%g: %v\n%s", net, drop, err, out.String())
				}
			case <-time.After(120 * time.Second):
				t.Fatalf("%s drop=%g: wall-clock watchdog expired — simulated run hung", net, drop)
			}
		}
	}
}

// The fault figure itself must replay identically at any worker count —
// the seeded-injector leg of the §11 determinism contract.
func TestExtFaultsIdenticalAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		r := NewRunner(true, nil)
		r.Jobs = jobs
		var out bytes.Buffer
		r.runTasks(&out, []suiteTask{figTask("Ext F", r.ExtFaults)})
		return out.String()
	}
	serial := render(1)
	if parallel := render(8); serial != parallel {
		t.Fatal("Ext F differs between -j 1 and -j 8")
	}
	if !strings.Contains(serial, "drop=1%") {
		t.Fatalf("Ext F output missing faulty curves:\n%s", serial)
	}
}

func TestFaultSmokeRejectsUnknownNet(t *testing.T) {
	var out bytes.Buffer
	if err := FaultSmoke(&out, "Ethernet", 0.01, 0, 1); err == nil {
		t.Fatal("unknown interconnect accepted")
	}
}
