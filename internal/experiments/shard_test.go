package experiments

import (
	"bytes"
	"testing"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/report"
)

// renderMicroFigs renders Figures 1-6 (the paper's point-to-point suite) at
// the given shard count and returns the concatenated documents.
func renderMicroFigs(t *testing.T, shards int) string {
	t.Helper()
	r := NewRunner(true, nil)
	r.Shards = shards
	var b bytes.Buffer
	for _, f := range []func() report.Figure{r.Fig1, r.Fig2, r.Fig3, r.Fig4, r.Fig5, r.Fig6} {
		b.WriteString(f().Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFiguresByteIdenticalAcrossShards is the tentpole contract at the
// figure level: every Fig 1-6 microbenchmark must render byte-identically
// whether the worlds execute on one event queue or on a conservatively
// synchronized shard group. -shards, like -j, must be unobservable in
// output.
func TestFiguresByteIdenticalAcrossShards(t *testing.T) {
	serial := renderMicroFigs(t, 1)
	counts := []int{2, 8}
	if testing.Short() {
		counts = []int{2}
	}
	for _, n := range counts {
		if got := renderMicroFigs(t, n); got != serial {
			t.Errorf("figure output differs between -shards 1 and -shards %d", n)
		}
	}
}

// TestLUClassSIdenticalAcrossShards runs the LU application smoke on all
// three fabrics at shards 1 and 4 and requires identical simulated time and
// per-rank message profiles — the application-level partition-invariance
// guarantee.
func TestLUClassSIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("application partition invariance runs in the long mode")
	}
	lu, err := apps.ByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []cluster.Platform{cluster.IBA(), cluster.Myri(), cluster.QSN()} {
		serial, err := lu.Run(apps.RunConfig{Platform: p, Class: apps.ClassS, Procs: 8})
		if err != nil {
			t.Fatalf("%s serial: %v", p.Name, err)
		}
		sharded, err := lu.Run(apps.RunConfig{
			Platform: p.With(cluster.WithShards(4)), Class: apps.ClassS, Procs: 8,
		})
		if err != nil {
			t.Fatalf("%s sharded: %v", p.Name, err)
		}
		if serial.Elapsed != sharded.Elapsed {
			t.Errorf("%s: LU elapsed %v at -shards 1, %v at -shards 4",
				p.Name, serial.Elapsed, sharded.Elapsed)
		}
		if serial.PerRank.SizeHist != sharded.PerRank.SizeHist {
			t.Errorf("%s: per-rank size histogram differs across shard counts", p.Name)
		}
	}
}

// TestObservabilityStableAcrossShards checks the observability demo's
// machine-readable artifacts — the metrics snapshot and the critical-path
// blame JSON — are byte-identical at shards 1 and 4. This is what the CI
// shard-determinism matrix enforces binary-level.
func TestObservabilityStableAcrossShards(t *testing.T) {
	artifacts := func(p cluster.Platform) (metrics, blame []byte) {
		w, err := ObserveTraced(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		var mb, bb bytes.Buffer
		w.Metrics().Snapshot().RenderGrouped(&mb)
		if err := report.WriteBlameJSON(&bb, w.MsgTrace().Analyze(5)); err != nil {
			t.Fatal(err)
		}
		return mb.Bytes(), bb.Bytes()
	}
	m1, b1 := artifacts(cluster.IBA())
	m4, b4 := artifacts(cluster.IBA().With(cluster.WithShards(4)))
	if !bytes.Equal(m1, m4) {
		t.Error("metrics snapshot differs between -shards 1 and -shards 4")
	}
	if !bytes.Equal(b1, b4) {
		t.Error("blame JSON differs between -shards 1 and -shards 4")
	}
}

// TestSmokesAcceptShards runs the seeded fault and rail-failover smokes at
// -shards 4 and requires the same bytes as the serial run — replay
// determinism must survive both fault injection and sharded execution.
func TestSmokesAcceptShards(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded smoke replay runs in the long mode")
	}
	var serial, sharded bytes.Buffer
	if err := FaultSmoke(&serial, "IBA", 0.01, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := FaultSmoke(&sharded, "IBA", 0.01, 0, 4); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Error("FaultSmoke output differs between -shards 1 and -shards 4")
	}
	serial.Reset()
	sharded.Reset()
	if err := RailFailSmoke(&serial, "IBA+Myri", "failover", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := RailFailSmoke(&sharded, "IBA+Myri", "failover", 0, 4); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Error("RailFailSmoke output differs between -shards 1 and -shards 4")
	}
}
