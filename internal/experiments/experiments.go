// Package experiments maps every figure and table of the paper's evaluation
// to a function that regenerates it on the simulated testbeds. It is the
// engine behind cmd/mpibench (micro-benchmarks), cmd/nasbench
// (applications) and cmd/paperrepro (everything, plus the paper-vs-
// simulated record in EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/report"
	"mpinet/internal/units"
)

// Runner executes experiments, caching application runs that several
// figures/tables share (Table 2 feeds Figures 18-23, for example).
//
// Every figure and table is an independent simulation — each one builds its
// own testbed with its own sim.Engine — so the suite drivers (RunMicro,
// RunApps, RunExtensions, the comparison builders) fan tasks out over Jobs
// host workers through internal/parallel and commit output in submission
// order. Output is byte-identical for every Jobs value; see
// docs/MODEL.md §11 for the contract.
type Runner struct {
	// Quick shrinks sweeps and uses class S workloads — a smoke-test mode.
	Quick bool
	// Jobs bounds how many experiments run concurrently on host cores:
	// 0 (the default) means one per core (GOMAXPROCS), 1 forces the serial
	// path. Any value produces identical output.
	Jobs int
	// Log, when non-nil, receives progress lines. Under parallel execution
	// lines stay whole but their order follows task completion.
	Log io.Writer
	// Shards builds every testbed's engine as an n-shard conservative
	// parallel group (see sim.Sharded); 0 or 1 keeps the serial engine. Any
	// value produces identical output — shard count, like Jobs, is an
	// execution knob, not a model parameter.
	Shards int

	logMu    sync.Mutex
	cacheMu  sync.Mutex
	appCache map[appKey]*appEntry

	timeMu  sync.Mutex
	timings []Timing
}

// appEntry is one singleflight cache slot: the first task to need a
// configuration runs it inside once; concurrent tasks needing the same
// configuration block on once instead of duplicating the simulation.
type appEntry struct {
	once sync.Once
	res  apps.Result
}

type appKey struct {
	app   string
	net   string
	procs int
	ppn   int
	class apps.Class
}

// Timing is one suite task's host wall-clock cost (real time, not simulated
// time) — the quantity BENCH_parallel.json tracks across -j values.
type Timing struct {
	Name string
	Wall time.Duration
}

// NewRunner returns a Runner.
func NewRunner(quick bool, log io.Writer) *Runner {
	return &Runner{Quick: quick, Log: log, appCache: make(map[appKey]*appEntry)}
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Log != nil {
		r.logMu.Lock()
		fmt.Fprintf(r.Log, format+"\n", args...)
		r.logMu.Unlock()
	}
}

// Timings returns the per-task wall-clock record of every suite driver call
// so far, in commit (output) order.
func (r *Runner) Timings() []Timing {
	r.timeMu.Lock()
	defer r.timeMu.Unlock()
	return append([]Timing(nil), r.timings...)
}

func (r *Runner) addTiming(name string, wall time.Duration) {
	r.timeMu.Lock()
	r.timings = append(r.timings, Timing{Name: name, Wall: wall})
	r.timeMu.Unlock()
}

func (r *Runner) class() apps.Class {
	if r.Quick {
		return apps.ClassS
	}
	return apps.ClassB
}

// app runs (or recalls) one application configuration. Concurrent callers
// needing the same configuration share one simulation: the first claims the
// cache slot and runs, the rest block on its sync.Once. Results are pure
// functions of the key, so which task runs a configuration never affects
// the output.
func (r *Runner) app(name string, p cluster.Platform, procs, ppn int) apps.Result {
	key := appKey{app: name, net: p.Name, procs: procs, ppn: ppn, class: r.class()}
	r.cacheMu.Lock()
	e, ok := r.appCache[key]
	if !ok {
		e = &appEntry{}
		r.appCache[key] = e
	}
	r.cacheMu.Unlock()
	e.once.Do(func() {
		a, err := apps.ByName(name)
		if err != nil {
			panic(err)
		}
		r.logf("  running %s class %s on %s, %d procs (%d/node)", name, r.class(), p.Name, procs, maxInt(ppn, 1))
		res, err := a.Run(apps.RunConfig{Platform: r.pf(p), Class: r.class(), Procs: procs, ProcsPerNode: ppn})
		if err != nil {
			panic(err)
		}
		e.res = res
	})
	return e.res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sizes returns a power-of-two sweep, thinned in quick mode.
func (r *Runner) sizes(lo, hi int64) []int64 {
	var out []int64
	step := int64(2)
	if r.Quick {
		step = 8
	}
	for s := lo; s <= hi; s *= step {
		out = append(out, s)
	}
	return out
}

// osu returns the three platforms of the 8-node testbed.
func osu() []cluster.Platform { return cluster.OSU() }

// pf applies the runner's execution knobs (today: the shard count) to a
// platform. Every figure builds its testbeds through pf or r.osu so -shards
// reaches each simulation; it never alters the platform name or model.
func (r *Runner) pf(p cluster.Platform) cluster.Platform {
	if r.Shards > 1 {
		return p.With(cluster.WithShards(r.Shards))
	}
	return p
}

// osu is the runner-aware form of the package osu: the three testbed
// platforms with the runner's execution knobs applied.
func (r *Runner) osu() []cluster.Platform {
	ps := osu()
	for i := range ps {
		ps[i] = r.pf(ps[i])
	}
	return ps
}

// Fig1 regenerates Figure 1: MPI latency across the three interconnects.
func (r *Runner) Fig1() report.Figure {
	r.logf("Fig 1: latency")
	f := report.Figure{ID: "Fig 1", Title: "MPI Latency across Three Interconnects",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.Latency(p, r.sizes(4, 16*units.KB)))
	}
	return f
}

// Fig2 regenerates Figure 2: uni-directional bandwidth at window sizes 4
// and 16.
func (r *Runner) Fig2() report.Figure {
	r.logf("Fig 2: bandwidth")
	f := report.Figure{ID: "Fig 2", Title: "MPI Bandwidth (windows 4 and 16)",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	for _, p := range r.osu() {
		for _, w := range []int{4, 16} {
			c := microbench.Bandwidth(p, r.sizes(4, units.MB), w)
			c.Label = fmt.Sprintf("%s %d", p.Name, w)
			f.Curves = append(f.Curves, c)
		}
	}
	return f
}

// Fig3 regenerates Figure 3: host overhead in the latency test.
func (r *Runner) Fig3() report.Figure {
	r.logf("Fig 3: host overhead")
	f := report.Figure{ID: "Fig 3", Title: "MPI Host Overhead in Latency Test",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.HostOverhead(p, r.sizes(2, units.KB)))
	}
	return f
}

// Fig4 regenerates Figure 4: bi-directional latency.
func (r *Runner) Fig4() report.Figure {
	r.logf("Fig 4: bi-directional latency")
	f := report.Figure{ID: "Fig 4", Title: "MPI Bi-Directional Latency",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.BiLatency(p, r.sizes(4, 4*units.KB)))
	}
	return f
}

// Fig5 regenerates Figure 5: bi-directional bandwidth.
func (r *Runner) Fig5() report.Figure {
	r.logf("Fig 5: bi-directional bandwidth")
	f := report.Figure{ID: "Fig 5", Title: "MPI Bi-Directional Bandwidth (window 16)",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.BiBandwidth(p, r.sizes(4, units.MB)))
	}
	return f
}

// Fig6 regenerates Figure 6: communication/computation overlap potential.
func (r *Runner) Fig6() report.Figure {
	r.logf("Fig 6: overlap potential")
	f := report.Figure{ID: "Fig 6", Title: "Overlap Potential",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.Overlap(p, r.sizes(4, 64*units.KB)))
	}
	return f
}

// Fig7 regenerates Figure 7: latency under buffer-reuse percentages 0, 50
// and 100.
func (r *Runner) Fig7() report.Figure {
	r.logf("Fig 7: latency vs buffer reuse")
	f := report.Figure{ID: "Fig 7", Title: "MPI Latency with Buffer Reuse (0/50/100%)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		for _, pct := range []int{0, 50, 100} {
			c := microbench.ReuseLatency(p, r.sizes(64, 16*units.KB), pct)
			c.Label = fmt.Sprintf("%s %d", p.Name, pct)
			f.Curves = append(f.Curves, c)
		}
	}
	return f
}

// Fig8 regenerates Figure 8: bandwidth under buffer-reuse percentages.
func (r *Runner) Fig8() report.Figure {
	r.logf("Fig 8: bandwidth vs buffer reuse")
	f := report.Figure{ID: "Fig 8", Title: "MPI Bandwidth with Buffer Reuse (0/50/100%)",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	for _, p := range r.osu() {
		for _, pct := range []int{0, 50, 100} {
			c := microbench.ReuseBandwidth(p, r.sizes(4, 64*units.KB), pct)
			c.Label = fmt.Sprintf("%s %d", p.Name, pct)
			f.Curves = append(f.Curves, c)
		}
	}
	return f
}

// Fig9 regenerates Figure 9: intra-node latency.
func (r *Runner) Fig9() report.Figure {
	r.logf("Fig 9: intra-node latency")
	f := report.Figure{ID: "Fig 9", Title: "MPI Intra-Node Latency",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.IntraLatency(p, r.sizes(4, 4*units.KB)))
	}
	return f
}

// Fig10 regenerates Figure 10: intra-node bandwidth.
func (r *Runner) Fig10() report.Figure {
	r.logf("Fig 10: intra-node bandwidth")
	f := report.Figure{ID: "Fig 10", Title: "MPI Intra-Node Bandwidth",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.IntraBandwidth(p, r.sizes(4, units.MB)))
	}
	return f
}

// Fig11 regenerates Figure 11: MPI_Alltoall on 8 nodes.
func (r *Runner) Fig11() report.Figure {
	r.logf("Fig 11: alltoall")
	f := report.Figure{ID: "Fig 11", Title: "MPI Alltoall (8 nodes)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.Alltoall(p, 8, r.sizes(4, 4*units.KB)))
	}
	return f
}

// Fig12 regenerates Figure 12: MPI_Allreduce on 8 nodes.
func (r *Runner) Fig12() report.Figure {
	r.logf("Fig 12: allreduce")
	f := report.Figure{ID: "Fig 12", Title: "MPI Allreduce (8 nodes)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.Allreduce(p, 8, r.sizes(4, 4*units.KB)))
	}
	return f
}

// Fig13 regenerates Figure 13: MPI memory consumption vs node count.
func (r *Runner) Fig13() report.Figure {
	r.logf("Fig 13: memory usage")
	f := report.Figure{ID: "Fig 13", Title: "MPI Memory Consumption",
		XLabel: "Nodes", YLabel: "Memory Usage (MB)"}
	counts := []int{2, 3, 4, 5, 6, 7, 8}
	if r.Quick {
		counts = []int{2, 8}
	}
	for _, p := range r.osu() {
		f.Curves = append(f.Curves, microbench.MemoryUsage(p, counts))
	}
	return f
}

// Fig26 regenerates Figure 26: InfiniBand latency, PCI vs PCI-X.
func (r *Runner) Fig26() report.Figure {
	r.logf("Fig 26: IBA latency PCI vs PCI-X")
	f := report.Figure{ID: "Fig 26", Title: "MPI over InfiniBand Latency (PCI vs PCI-X)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	cx := microbench.Latency(r.pf(cluster.IBA()), r.sizes(4, 4*units.KB))
	cx.Label = "PCI-X"
	ci := microbench.Latency(r.pf(cluster.IBAPCI()), r.sizes(4, 4*units.KB))
	ci.Label = "PCI"
	f.Curves = []microbench.Curve{cx, ci}
	return f
}

// Fig27 regenerates Figure 27: InfiniBand bandwidth, PCI vs PCI-X.
func (r *Runner) Fig27() report.Figure {
	r.logf("Fig 27: IBA bandwidth PCI vs PCI-X")
	f := report.Figure{ID: "Fig 27", Title: "MPI over InfiniBand Bandwidth (PCI vs PCI-X)",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	cx := microbench.Bandwidth(r.pf(cluster.IBA()), r.sizes(4, units.MB), 16)
	cx.Label = "PCI-X"
	ci := microbench.Bandwidth(r.pf(cluster.IBAPCI()), r.sizes(4, units.MB), 16)
	ci.Label = "PCI"
	f.Curves = []microbench.Curve{cx, ci}
	return f
}
