package experiments

import (
	"bytes"
	"errors"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/mpi"
	"mpinet/internal/units"
)

// The chaos soak's whole transcript — healthy baseline, storm outcomes,
// notification counts — must be byte-identical at any shard count: fault
// verdicts are counter-based, element deaths are wall-clock scheduled, and
// sharding is a performance knob, never a semantics knob.
func TestChaosSoakShardInvariant(t *testing.T) {
	soak := func(shards int) string {
		var buf bytes.Buffer
		if err := ChaosSoak(&buf, "IBA", "deterministic", 0, shards); err != nil {
			t.Fatalf("soak at -shards %d: %v\n%s", shards, err, buf.String())
		}
		return buf.String()
	}
	one, eight := soak(1), soak(8)
	if one != eight {
		t.Fatalf("soak transcript differs between -shards 1 and 8:\n--- 1:\n%s--- 8:\n%s", one, eight)
	}
	if !bytes.Contains([]byte(one), []byte("typed: rank-failed")) ||
		!bytes.Contains([]byte(one), []byte("typed: partitioned")) {
		t.Fatalf("soak transcript missing expected typed outcomes:\n%s", one)
	}
}

// The CI chaos matrix: every interconnect under both routing policies rides
// out the full storm schedule, each scenario landing in its contracted
// outcome. This is exactly what the nightly job runs.
func TestChaosSoakMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos matrix")
	}
	for _, net := range []string{"IBA", "Myri", "QSN"} {
		for _, routing := range []string{"deterministic", "adaptive"} {
			t.Run(net+"/"+routing, func(t *testing.T) {
				var buf bytes.Buffer
				if err := ChaosSoak(&buf, net, routing, 0, 1); err != nil {
					t.Fatalf("%v\n%s", err, buf.String())
				}
			})
		}
	}
}

// The headline acceptance case: a 512-rank LU on a 3-level Clos survives a
// spine-plane kill on all three interconnects under both routing policies,
// pays a real (but bounded) completion-time price, and replays
// byte-identically across shard counts.
func TestSpineKillAcceptance512(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank chaos acceptance")
	}
	const procs = 512
	topo := cluster.Clos(3, 16, 1) // 8 hosts/leaf, 8 up-link planes
	plats := []cluster.Platform{
		cluster.IBA(),
		cluster.IBA().With(cluster.WithRouting(cluster.Adaptive)),
		cluster.Myri(),
		cluster.QSN(),
	}
	for _, p := range plats {
		p := p.With(topo)
		t.Run(p.Name, func(t *testing.T) {
			healthy, err := chaosLU(p, procs)
			if err != nil {
				t.Fatalf("healthy baseline: %v", err)
			}
			kill := func(shards int) units.Time {
				pk := p.With(
					cluster.WithSwitchKills(faults.SwitchKill{Level: 1, Index: 2, At: healthy / 4}),
					cluster.WithSeed(FaultSeed))
				if shards > 1 {
					pk = pk.With(cluster.WithShards(shards))
				}
				elapsed, err := chaosLU(pk, procs)
				if err != nil {
					t.Fatalf("spine kill at -shards %d: %v", shards, err)
				}
				return elapsed
			}
			killed := kill(1)
			if killed < healthy {
				t.Errorf("losing a spine plane sped LU up: %v healthy, %v killed", healthy, killed)
			}
			if killed > 10*healthy {
				t.Errorf("self-healing did not bound the damage: %v healthy, %v killed", healthy, killed)
			}
			if again := kill(8); again != killed {
				t.Errorf("kill run not shard-invariant: %v at -shards 1, %v at -shards 8", killed, again)
			}
		})
	}
}

// Killing every spine plane partitions the fabric: the job must die typed —
// partition, rank failure, retry exhaustion or the scaled watchdog — and
// within the watchdog budget, never hang.
func TestAllSpinesKilledTyped(t *testing.T) {
	p := cluster.IBA().With(cluster.Clos(3, 8, 1),
		cluster.WithSwitchKills(spineKills(4, 100*units.Microsecond)...),
		cluster.WithSeed(FaultSeed))
	_, err := chaosLU(p, 64)
	if err == nil {
		t.Fatal("LU survived losing every spine plane")
	}
	if !errors.Is(err, faults.ErrPartitioned) && !errors.Is(err, mpi.ErrTimeout) &&
		!errors.Is(err, faults.ErrRetryExhausted) && !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("partition death is untyped: %v", err)
	}
}

// Conservation through kill + repair: a ring exchange pinned across a spine
// plane's death and repair window delivers every message exactly once —
// completion counts add up and the run replays identically.
func TestKillRepairConservation(t *testing.T) {
	run := func() (int, units.Time) {
		p := cluster.IBA().With(cluster.Clos(2, 8, 1),
			cluster.WithSwitchKills(faults.SwitchKill{
				Level: 1, Index: 1,
				At: 50 * units.Microsecond, RepairAt: 2 * units.Millisecond,
			}),
			cluster.WithSeed(FaultSeed))
		const procs = 32
		w := mpi.MustWorld(mpi.Config{Net: p.New(procs), Procs: procs})
		// Classic mode (fault plan), so a plain counter is race-free.
		delivered := 0
		err := w.Run(func(rk *mpi.Rank) {
			const rounds = 8
			buf := rk.Malloc(4 * units.KB)
			next := (rk.Rank() + 1) % rk.Size()
			prev := (rk.Rank() - 1 + rk.Size()) % rk.Size()
			for i := 0; i < rounds; i++ {
				st := rk.Sendrecv(buf, next, i, buf, prev, i)
				if st.Err == nil {
					delivered++
				}
				rk.Compute(100 * units.Microsecond)
			}
		})
		if err != nil {
			t.Fatalf("kill+repair ring died: %v", err)
		}
		return delivered, w.Elapsed()
	}
	delivered, elapsed := run()
	if delivered != 32*8 {
		t.Fatalf("delivered %d exchanges, want %d", delivered, 32*8)
	}
	if d2, e2 := run(); d2 != delivered || e2 != elapsed {
		t.Fatalf("kill+repair replay diverged: (%d, %v) vs (%d, %v)", delivered, elapsed, d2, e2)
	}
}
