package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Acceptance: the issue's canonical scenario — LU class S on Bond(IBA,
// Myri) with the primary killed at 50% completes via failover while the
// solo primary fails typed — wrapped in a wall-clock watchdog so a hang is
// a test failure, not a suite timeout. RailFailSmoke itself asserts the
// "slower than healthy" and "typed solo failure" legs.
func TestRailFailSmoke(t *testing.T) {
	for _, cfg := range []struct{ pair, policy string }{
		{"IBA+Myri", "failover"},
		{"IBA+Myri", "stripe"},
	} {
		done := make(chan error, 1)
		var out bytes.Buffer
		go func() { done <- RailFailSmoke(&out, cfg.pair, cfg.policy, 0, 1) }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s/%s: %v\n%s", cfg.pair, cfg.policy, err, out.String())
			}
		case <-time.After(120 * time.Second):
			t.Fatalf("%s/%s: wall-clock watchdog expired — simulated run hung", cfg.pair, cfg.policy)
		}
	}
}

// The rail figures must replay identically at any worker count — the
// failover cascade (heartbeat jitter, kill verdicts, re-issue order) is the
// bond's leg of the §11 determinism contract.
func TestExtRailIdenticalAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		r := NewRunner(true, nil)
		r.Jobs = jobs
		var out bytes.Buffer
		r.runTasks(&out, []suiteTask{
			figTask("Ext G1", r.ExtRailLatency),
			figTask("Ext G2", r.ExtRailBandwidth),
		})
		return out.String()
	}
	serial := render(1)
	if parallel := render(8); serial != parallel {
		t.Fatal("Ext G differs between -j 1 and -j 8")
	}
	for _, want := range []string{"IBA+Myri healthy", "killed at 50%", "stripe"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("Ext G output missing %q:\n%s", want, serial)
		}
	}
}

func TestRailFailSmokeRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := RailFailSmoke(&out, "IBA", "failover", 0, 1); err == nil {
		t.Error("single-interconnect pair accepted")
	}
	if err := RailFailSmoke(&out, "IBA+Ethernet", "failover", 0, 1); err == nil {
		t.Error("unknown interconnect accepted")
	}
	if err := RailFailSmoke(&out, "IBA+Myri", "roundrobin", 0, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
