package experiments

import (
	"fmt"
	"strings"

	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
)

// PlatformByName resolves the paper's interconnect names, case-insensitive:
// "IBA", "Myri" or "QSN". Used by the commands' observability flags.
func PlatformByName(name string) (cluster.Platform, error) {
	switch strings.ToLower(name) {
	case "iba":
		return cluster.IBA(), nil
	case "myri":
		return cluster.Myri(), nil
	case "qsn":
		return cluster.QSN(), nil
	default:
		return cluster.Platform{}, fmt.Errorf("unknown interconnect %q (want IBA, Myri or QSN)", name)
	}
}

// observeNodes/observePPN size the observability demo: 8 ranks over 4 SMP
// nodes, so every channel — shared memory, NIC, switch — carries traffic.
const (
	observeNodes = 4
	observePPN   = 2
)

// Observe runs the observability demo workload on platform p with the full
// metrics registry and a message timeline attached, and returns the finished
// world. The workload is a deliberate mix:
//
//   - same-node ping-pong (shared-memory channel),
//   - cross-node ping-pong at 1 KB / 4 KB / 64 KB / 1 MB, each size once
//     from a fresh buffer and once reusing it (pin-down cache miss, then
//     hit, on GM-style devices),
//   - a barrier and an all-to-all (fans traffic across every fabric link).
//
// Everything downstream — snapshot rendering, Chrome-trace export, the
// acceptance tests — reads the returned world. ObserveTraced (trace.go)
// is the same workload with per-message span tracing attached.
func Observe(p cluster.Platform) (*mpi.World, error) {
	return ObserveTraced(p, 0)
}

// Rank aliases mpi.Rank so the workload body reads like an MPI program.
type Rank = mpi.Rank

func observeBody(r *Rank) {
	me, n := r.Rank(), r.Size()

	// Phase 1: same-node ping-pong between co-located pairs (block mapping
	// puts ranks 2k and 2k+1 on node k).
	small := r.Malloc(512)
	if me%2 == 0 {
		r.Send(small, me+1, 1)
		r.Recv(small, me+1, 2)
	} else {
		r.Recv(small, me-1, 1)
		r.Send(small, me-1, 2)
	}

	// Phase 2: cross-node ping-pong, eager through rendezvous sizes, each
	// size twice from the same buffer so registration caches see a miss
	// then a hit.
	peer := (me + n/2) % n
	for _, size := range []int64{1 << 10, 4 << 10, 64 << 10, 1 << 20} {
		buf := r.Malloc(size)
		for iter := 0; iter < 2; iter++ {
			if me < n/2 {
				r.Send(buf, peer, 3)
				r.Recv(buf, peer, 4)
			} else {
				r.Recv(buf, peer, 3)
				r.Send(buf, peer, 4)
			}
		}
	}

	// Phase 3: collectives across the whole fabric.
	r.Barrier()
	a2aSend := r.Malloc(int64(n) * 2048)
	a2aRecv := r.Malloc(int64(n) * 2048)
	r.Alltoall(a2aSend, a2aRecv)
	r.Barrier()
}
