package experiments

// The reproduction acceptance gate: across every Table 2 cell the paper
// publishes, the simulation must match the calibrated (InfiniBand) column
// tightly and the emergent (Myrinet/Quadrics) columns within a shape
// tolerance, with only the documented deviations escaping it.

import (
	"strings"
	"testing"
)

func TestReproductionGateTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full class B sweep")
	}
	r := NewRunner(false, nil)
	comps := r.Table2Comparisons()
	if len(comps) < 50 {
		t.Fatalf("only %d Table 2 comparisons", len(comps))
	}
	var offenders []string
	calibratedOff := 0
	for _, c := range comps {
		d := c.Delta()
		if d < 0 {
			d = -d
		}
		if strings.Contains(c.Name, "IBA") {
			// The calibrated column must track the paper within 2%.
			if d > 0.02 {
				calibratedOff++
				offenders = append(offenders, c.Name)
			}
			continue
		}
		// Emergent columns: within 20% (the documented deviations — the IS
		// congestion gap and the 4-node CG/QSN anomaly — stay inside it).
		if d > 0.20 {
			offenders = append(offenders, c.Name)
		}
	}
	if calibratedOff > 0 {
		t.Errorf("calibrated (IBA) cells off: %v", offenders)
	}
	// Allow at most three emergent cells beyond 20% (the paper's own
	// run-to-run variation is of that order).
	emergentOff := len(offenders) - calibratedOff
	if emergentOff > 3 {
		t.Errorf("%d emergent cells beyond 20%%: %v", emergentOff, offenders)
	}
}

func TestReproductionGateTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full class B sweep")
	}
	r := NewRunner(false, nil)
	comps := r.Table1Comparisons()
	within := 0
	for _, c := range comps {
		d := c.Delta()
		if d < 0 {
			d = -d
		}
		if d <= 0.15 {
			within++
		}
	}
	// At least 80% of the non-empty Table 1 cells must match within 15%.
	if float64(within) < 0.8*float64(len(comps)) {
		t.Errorf("only %d/%d Table 1 cells within 15%%", within, len(comps))
	}
}
