package experiments

// trace.go drives the per-message tracing layer end to end: the traced
// observability demo behind the commands' -tracemsgs/-blame flags, the
// healthy traced latency decomposition, and the Postmortem acceptance
// scenario — a fault-injected LU run whose flight-recorder dump and blame
// report must name the failing rank and stage.

import (
	"fmt"
	"io"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/metrics"
	"mpinet/internal/mpi"
	"mpinet/internal/msgtrace"
	"mpinet/internal/report"
	"mpinet/internal/trace"
)

// ObserveTraced is Observe with per-message span tracing attached: one
// message in `every` per sender rank is traced through every layer (every
// <= 0 leaves tracing off, so only the always-on flight ring records).
// Sampling is a pure function of message IDs, so the recorder's contents —
// and everything derived from them — are deterministic at any -j.
func ObserveTraced(p cluster.Platform, every int) (*mpi.World, error) {
	cfg := mpi.Config{
		Net:          p.New(observeNodes),
		Procs:        observeNodes * observePPN,
		ProcsPerNode: observePPN,
		Metrics:      metrics.New(),
		Timeline:     &trace.Timeline{Max: 1 << 16},
	}
	if every > 0 {
		cfg.MsgTrace = msgtrace.New(every)
	}
	w := mpi.MustWorld(cfg)
	err := w.Run(func(r *Rank) { observeBody(r) })
	return w, err
}

// TraceLatency runs a healthy Figure-1-style cross-node ping-pong with
// every message traced, and returns the blame analysis. The analysis
// decomposes each message's end-to-end latency into stages that sum to it
// exactly — the per-stage view of the paper's latency curves.
func TraceLatency(p cluster.Platform, size int64, iters, topK int) (*msgtrace.Blame, error) {
	rec := msgtrace.New(1)
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2, MsgTrace: rec})
	err := w.Run(func(r *Rank) {
		buf := r.Malloc(size)
		peer := 1 - r.Rank()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return rec.Analyze(topK), nil
}

// Postmortem is the tracing layer's acceptance scenario: LU class S x8 on
// a solo interconnect under uniform packet drop plus a hard rail-kill at
// 50% of the healthy elapsed time. The run must fail with a typed error,
// and the flight-recorder dump plus blame report written to w must name
// the failing rank and stage (and, via the flight ring's incident
// fallback, the message that ran out of retries). Deterministic in seed.
func Postmortem(w io.Writer, net string, drop float64, seed uint64, shards int) error {
	p, err := faultPlatform(net)
	if err != nil {
		return err
	}
	if shards > 1 {
		p = p.With(cluster.WithShards(shards))
	}
	if seed == 0 {
		seed = FaultSeed
	}
	if drop <= 0 {
		drop = 0.01
	}
	lu, err := apps.ByName("LU")
	if err != nil {
		return err
	}
	healthy, err := lu.Run(apps.RunConfig{Platform: p, Class: apps.ClassS, Procs: 8})
	if err != nil {
		return fmt.Errorf("experiments: postmortem calibration LU on %s: %w", p.Name, err)
	}
	at := healthy.Elapsed / 2
	plan := faults.DropPlan(seed, drop)
	plan.RailKills = []faults.RailKill{{Rail: 0, At: at}}
	doomed := p.With(cluster.WithFaults(plan), cluster.WithSeed(seed)).
		Named(fmt.Sprintf("%s drop=%g%% +railkill", p.Name, drop*100))
	rec := msgtrace.New(1)
	_, runErr := lu.Run(apps.RunConfig{
		Platform: doomed, Class: apps.ClassS, Procs: 8, MsgTrace: rec,
	})
	if runErr == nil {
		return fmt.Errorf("experiments: postmortem LU on %s survived its rail kill", p.Name)
	}
	fmt.Fprintf(w, "postmortem: LU class S x8 on %s, %g%% drop, link killed at %v\n",
		p.Name, drop*100, at)
	fmt.Fprintf(w, "job failed typed, as planned: %v\n\n", runErr)
	rec.DumpFlight(w)
	fmt.Fprintln(w)
	io.WriteString(w, report.RenderBlame(rec.Analyze(5)))

	f := rec.Analyze(0).Failure
	switch {
	case f == nil:
		return fmt.Errorf("experiments: postmortem on %s: flight recorder never froze", p.Name)
	case f.Rank < 0:
		return fmt.Errorf("experiments: postmortem on %s: failure does not name a rank: %+v", p.Name, f)
	case f.MsgID == 0:
		return fmt.Errorf("experiments: postmortem on %s: failure does not name a message: %+v", p.Name, f)
	}
	return nil
}
