package experiments

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/sim"
)

// BenchmarkTraceOverhead measures the host-time cost of per-message span
// tracing on the observability demo workload, at the three operating points
// the CI budget tracks: tracing off (the zero-overhead contract — the only
// per-message residue is the always-on flight ring), the default 1-in-16
// sampling, and full tracing. Simulated time is identical across all three
// (tracing is observation only); what changes is host events/sec, and the
// sampled point must stay within the warn-only 10% budget of off.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, c := range []struct {
		name  string
		every int
	}{
		{"off", 0},
		{"sampled16", 16},
		{"full", 1},
	} {
		b.Run(c.name, func(b *testing.B) {
			start := sim.TotalDispatched()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := ObserveTraced(cluster.IBA(), c.every); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			events := sim.TotalDispatched() - start
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/s")
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}
