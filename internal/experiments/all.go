package experiments

import (
	"fmt"
	"io"

	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/report"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// RunMicro writes every micro-benchmark figure (1-13, 26, 27) to w.
func (r *Runner) RunMicro(w io.Writer) {
	for _, fig := range []func() report.Figure{
		r.Fig1, r.Fig2, r.Fig3, r.Fig4, r.Fig5, r.Fig6, r.Fig7,
		r.Fig8, r.Fig9, r.Fig10, r.Fig11, r.Fig12, r.Fig13,
		r.Fig26, r.Fig27,
	} {
		fmt.Fprintln(w, fig().Render())
	}
}

// RunApps writes every application figure and table (Figures 14-25, 28;
// Tables 1-6) to w.
func (r *Runner) RunApps(w io.Writer) {
	fmt.Fprintln(w, r.Figs14to17().Render())
	for _, t := range []func() report.Table{r.Tab1, r.Tab2, r.Tab3, r.Tab4, r.Tab5, r.Tab6} {
		fmt.Fprintln(w, t().Render())
	}
	for _, f := range r.Figs18to23() {
		fmt.Fprintln(w, f.Render())
	}
	fmt.Fprintln(w, r.Fig24().Render())
	fmt.Fprintln(w, r.Fig25().Render())
	fmt.Fprintln(w, r.Fig28().Render())
}

// MicroComparisons measures the paper's quoted micro-benchmark anchors and
// pairs them with the published values.
func (r *Runner) MicroComparisons() []report.Comparison {
	r.logf("micro anchors")
	var comps []report.Comparison
	add := func(name, net string, paper, sim float64, unit string) {
		comps = append(comps, report.Comparison{
			Name: fmt.Sprintf("%s %s", name, net), Paper: paper, Sim: sim, Unit: unit})
	}
	for _, p := range osu() {
		add("latency 4B", p.Name, report.PaperMicro["latency_4B_us"][p.Name],
			microbench.Latency(p, []int64{4}).Y[0], "us")
	}
	for _, p := range osu() {
		add("peak bandwidth", p.Name, report.PaperMicro["peak_bw_MBs"][p.Name],
			microbench.Bandwidth(p, []int64{512 * units.KB}, 16).Y[0], "MB/s")
	}
	for _, p := range osu() {
		add("host overhead", p.Name, report.PaperMicro["overhead_us"][p.Name],
			microbench.HostOverhead(p, []int64{4}).Y[0], "us")
	}
	for _, p := range osu() {
		add("bi-dir latency 4B", p.Name, report.PaperMicro["bidir_latency_us"][p.Name],
			microbench.BiLatency(p, []int64{4}).Y[0], "us")
	}
	for _, p := range osu() {
		size := int64(256 * units.KB)
		if p.Name == "Myri" {
			size = 64 * units.KB // the Myrinet peak sits below the SRAM collapse
		}
		add("bi-dir bandwidth", p.Name, report.PaperMicro["bidir_bw_MBs"][p.Name],
			microbench.BiBandwidth(p, []int64{size}).Y[0], "MB/s")
	}
	for _, p := range []cluster.Platform{cluster.IBA(), cluster.Myri()} {
		add("intra-node latency", p.Name, report.PaperMicro["intra_latency_us"][p.Name],
			microbench.IntraLatency(p, []int64{4}).Y[0], "us")
	}
	for _, p := range osu() {
		add("alltoall 4B 8n", p.Name, report.PaperMicro["alltoall_small_us"][p.Name],
			microbench.Alltoall(p, 8, []int64{4}).Y[0], "us")
	}
	for _, p := range osu() {
		add("allreduce 4B 8n", p.Name, report.PaperMicro["allreduce_small_us"][p.Name],
			microbench.Allreduce(p, 8, []int64{4}).Y[0], "us")
	}
	add("peak bandwidth", "IBA-PCI", report.PaperMicro["iba_pci_bw_MBs"]["IBA-PCI"],
		microbench.Bandwidth(cluster.IBAPCI(), []int64{512 * units.KB}, 16).Y[0], "MB/s")
	return comps
}

// Table2Comparisons pairs simulated class B times with the paper's Table 2.
func (r *Runner) Table2Comparisons() []report.Comparison {
	var comps []report.Comparison
	for _, name := range []string{"IS", "CG", "MG", "LU", "FT", "S3D-50", "S3D-150"} {
		for _, p := range osu() {
			for i, procs := range report.Table2Procs {
				paper := report.PaperTable2[name][p.Name][i]
				if paper == 0 {
					continue
				}
				res := r.app(name, p, procs, 1)
				comps = append(comps, report.Comparison{
					Name:  fmt.Sprintf("%s %s %dn", name, p.Name, procs),
					Paper: paper, Sim: res.Elapsed.Seconds(), Unit: "s",
				})
			}
		}
	}
	return comps
}

// Table1Comparisons pairs simulated per-rank size histograms with Table 1.
func (r *Runner) Table1Comparisons() []report.Comparison {
	var comps []report.Comparison
	for _, name := range report.AppOrder {
		res := r.app(name, cluster.IBA(), appProcs(name), 1)
		h := res.PerRank.SizeHist
		paper := report.PaperTable1[name]
		for cls := trace.Below2K; cls < trace.NumSizeClasses; cls++ {
			if paper[cls] == 0 && h[cls] == 0 {
				continue
			}
			comps = append(comps, report.Comparison{
				Name:  fmt.Sprintf("%s %s", name, cls),
				Paper: float64(paper[cls]), Sim: float64(h[cls]), Unit: "calls",
			})
		}
	}
	return comps
}
