package experiments

import (
	"fmt"
	"io"

	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/report"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// RunMicro writes every micro-benchmark figure (1-13, 26, 27) to w, fanning
// the figures out over r.Jobs workers with output committed in figure order.
func (r *Runner) RunMicro(w io.Writer) {
	r.runTasks(w, []suiteTask{
		figTask("Fig 1", r.Fig1), figTask("Fig 2", r.Fig2),
		figTask("Fig 3", r.Fig3), figTask("Fig 4", r.Fig4),
		figTask("Fig 5", r.Fig5), figTask("Fig 6", r.Fig6),
		figTask("Fig 7", r.Fig7), figTask("Fig 8", r.Fig8),
		figTask("Fig 9", r.Fig9), figTask("Fig 10", r.Fig10),
		figTask("Fig 11", r.Fig11), figTask("Fig 12", r.Fig12),
		figTask("Fig 13", r.Fig13), figTask("Fig 26", r.Fig26),
		figTask("Fig 27", r.Fig27),
	})
}

// RunApps writes every application figure and table (Figures 14-25, 28;
// Tables 1-6) to w, fanning them out over r.Jobs workers. The singleflight
// application cache keeps configurations shared between tables from running
// twice even when the tables run concurrently.
func (r *Runner) RunApps(w io.Writer) {
	tasks := []suiteTask{
		tabTask("Figs 14-17", r.Figs14to17),
		tabTask("Table 1", r.Tab1), tabTask("Table 2", r.Tab2),
		tabTask("Table 3", r.Tab3), tabTask("Table 4", r.Tab4),
		tabTask("Table 5", r.Tab5), tabTask("Table 6", r.Tab6),
	}
	for _, name := range speedupApps {
		name := name
		tasks = append(tasks, figTask(speedupIDs[name], func() report.Figure {
			return r.speedupFig(name)
		}))
	}
	tasks = append(tasks,
		tabTask("Fig 24", r.Fig24),
		tabTask("Fig 25", r.Fig25),
		tabTask("Fig 28", r.Fig28),
	)
	r.runTasks(w, tasks)
}

// MicroComparisons measures the paper's quoted micro-benchmark anchors and
// pairs them with the published values. Anchor groups run concurrently;
// the returned order is fixed.
func (r *Runner) MicroComparisons() []report.Comparison {
	r.logf("micro anchors")
	one := func(name, net string, paper, sim float64, unit string) []report.Comparison {
		return []report.Comparison{{
			Name: fmt.Sprintf("%s %s", name, net), Paper: paper, Sim: sim, Unit: unit}}
	}
	var groups []func() []report.Comparison
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("latency 4B", p.Name, report.PaperMicro["latency_4B_us"][p.Name],
				microbench.Latency(p, []int64{4}).Y[0], "us")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("peak bandwidth", p.Name, report.PaperMicro["peak_bw_MBs"][p.Name],
				microbench.Bandwidth(p, []int64{512 * units.KB}, 16).Y[0], "MB/s")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("host overhead", p.Name, report.PaperMicro["overhead_us"][p.Name],
				microbench.HostOverhead(p, []int64{4}).Y[0], "us")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("bi-dir latency 4B", p.Name, report.PaperMicro["bidir_latency_us"][p.Name],
				microbench.BiLatency(p, []int64{4}).Y[0], "us")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			size := int64(256 * units.KB)
			if p.Name == "Myri" {
				size = 64 * units.KB // the Myrinet peak sits below the SRAM collapse
			}
			return one("bi-dir bandwidth", p.Name, report.PaperMicro["bidir_bw_MBs"][p.Name],
				microbench.BiBandwidth(p, []int64{size}).Y[0], "MB/s")
		})
	}
	for _, p := range []cluster.Platform{r.pf(cluster.IBA()), r.pf(cluster.Myri())} {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("intra-node latency", p.Name, report.PaperMicro["intra_latency_us"][p.Name],
				microbench.IntraLatency(p, []int64{4}).Y[0], "us")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("alltoall 4B 8n", p.Name, report.PaperMicro["alltoall_small_us"][p.Name],
				microbench.Alltoall(p, 8, []int64{4}).Y[0], "us")
		})
	}
	for _, p := range r.osu() {
		p := p
		groups = append(groups, func() []report.Comparison {
			return one("allreduce 4B 8n", p.Name, report.PaperMicro["allreduce_small_us"][p.Name],
				microbench.Allreduce(p, 8, []int64{4}).Y[0], "us")
		})
	}
	groups = append(groups, func() []report.Comparison {
		return one("peak bandwidth", "IBA-PCI", report.PaperMicro["iba_pci_bw_MBs"]["IBA-PCI"],
			microbench.Bandwidth(r.pf(cluster.IBAPCI()), []int64{512 * units.KB}, 16).Y[0], "MB/s")
	})
	return r.gatherComparisons("micro anchors", groups)
}

// Table2Comparisons pairs simulated class B times with the paper's Table 2,
// fanning the (application, network) cells out over r.Jobs workers.
func (r *Runner) Table2Comparisons() []report.Comparison {
	var groups []func() []report.Comparison
	for _, name := range []string{"IS", "CG", "MG", "LU", "FT", "S3D-50", "S3D-150"} {
		for _, p := range r.osu() {
			name, p := name, p
			groups = append(groups, func() []report.Comparison {
				var comps []report.Comparison
				for i, procs := range report.Table2Procs {
					paper := report.PaperTable2[name][p.Name][i]
					if paper == 0 {
						continue
					}
					res := r.app(name, p, procs, 1)
					comps = append(comps, report.Comparison{
						Name:  fmt.Sprintf("%s %s %dn", name, p.Name, procs),
						Paper: paper, Sim: res.Elapsed.Seconds(), Unit: "s",
					})
				}
				return comps
			})
		}
	}
	return r.gatherComparisons("Table 2 comparisons", groups)
}

// Table1Comparisons pairs simulated per-rank size histograms with Table 1,
// one worker task per application.
func (r *Runner) Table1Comparisons() []report.Comparison {
	var groups []func() []report.Comparison
	for _, name := range report.AppOrder {
		name := name
		groups = append(groups, func() []report.Comparison {
			var comps []report.Comparison
			res := r.app(name, cluster.IBA(), appProcs(name), 1)
			h := res.PerRank.SizeHist
			paper := report.PaperTable1[name]
			for cls := trace.Below2K; cls < trace.NumSizeClasses; cls++ {
				if paper[cls] == 0 && h[cls] == 0 {
					continue
				}
				comps = append(comps, report.Comparison{
					Name:  fmt.Sprintf("%s %s", name, cls),
					Paper: float64(paper[cls]), Sim: float64(h[cls]), Unit: "calls",
				})
			}
			return comps
		})
	}
	return r.gatherComparisons("Table 1 comparisons", groups)
}
