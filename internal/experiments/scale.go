package experiments

import (
	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/report"
	"mpinet/internal/units"
)

// ExtScaleMemory extends Figure 13 past the testbed: per-rank library +
// device memory versus rank count on a 3-level radix-24 2:1 Clos, for all
// three interconnects plus the on-demand InfiniBand variant. The paper's
// ordering — VAPI's per-RC-connection cost dominating, GM moderate, Elan's
// global virtual memory nearly flat — is what should survive the extrapolation
// to thousand-rank worlds; on-demand InfiniBand stays flat because ring
// traffic only ever connects two peers.
func (r *Runner) ExtScaleMemory() report.Figure {
	r.logf("Ext H: per-rank memory at scale")
	f := report.Figure{ID: "Ext H", Title: "Memory per Rank on a 3-level Clos (ring traffic)",
		XLabel: "Ranks", YLabel: "Memory Usage (MB)"}
	counts := []int{64, 256}
	if !r.Quick {
		counts = []int{64, 256, 1024}
	}
	plats := []cluster.Platform{
		r.pf(cluster.IBA()), r.pf(cluster.IBAOnDemand()),
		r.pf(cluster.Myri()), r.pf(cluster.QSN()),
	}
	for _, p := range plats {
		p = p.With(cluster.Clos(3, 24, 2))
		c := microbench.Curve{Label: p.Name}
		for _, n := range counts {
			w := mpi.MustWorld(mpi.Config{Net: p.New(n), Procs: n})
			if err := w.Run(func(rk *mpi.Rank) {
				buf := rk.Malloc(256)
				next := (rk.Rank() + 1) % rk.Size()
				prev := (rk.Rank() - 1 + rk.Size()) % rk.Size()
				rk.Sendrecv(buf, next, 0, buf, prev, 0)
			}); err != nil {
				panic(err)
			}
			c.X = append(c.X, int64(n))
			c.Y = append(c.Y, float64(w.MemoryUsage(0))/float64(units.MB))
		}
		f.Curves = append(f.Curves, c)
	}
	f.Notes = "VAPI RC state grows per established connection; GM per-port state is smaller; Elan and on-demand IBA stay near-flat. Scale worlds account established peers (MODEL.md §18/§20), so ring traffic holds two connections' state per rank, not all-pairs"
	return f
}

// ExtIncast is the congestion-collapse scenario a multi-stage fabric makes
// possible: N senders spread across leaves all stream to one host, so the
// fan-in concentrates first on the spine down-links and then on the one
// destination port. Aggregate goodput versus sender count, per interconnect,
// plus adaptive up-link routing on InfiniBand — which cannot help, because
// the collapse is at the shared destination, not the up-links.
func (r *Runner) ExtIncast() report.Figure {
	r.logf("Ext I: incast on a 2:1 fat-tree")
	f := report.Figure{ID: "Ext I", Title: "Incast Goodput on a Fat-Tree (64 nodes, 256 KB flows)",
		XLabel: "Senders", YLabel: "Aggregate Goodput (MB/s)"}
	senders := []int{4, 16, 48}
	if !r.Quick {
		senders = []int{4, 8, 16, 32, 48, 63}
	}
	plats := []cluster.Platform{
		r.pf(cluster.IBA()),
		r.pf(cluster.IBA()).With(cluster.WithRouting(cluster.Adaptive)),
		r.pf(cluster.Myri()),
		r.pf(cluster.QSN()),
	}
	for _, p := range plats {
		p = p.With(cluster.FatTree(24, 2))
		c := microbench.Curve{Label: p.Name}
		for _, n := range senders {
			c.X = append(c.X, int64(n))
			c.Y = append(c.Y, incastGoodput(p, n))
		}
		f.Curves = append(f.Curves, c)
	}
	f.Notes = "goodput saturates at the victim's link rate; past it, added senders only deepen queues — adaptive routing moves the congestion, it cannot remove it"
	return f
}

// incastGoodput runs the n-to-1 pattern on a 64-node world and returns the
// victim's achieved receive rate in MB/s. Senders are placed from node 1 up,
// crossing leaf boundaries as n grows, which is what drives the fabric's
// fan-in stages.
func incastGoodput(p cluster.Platform, n int) float64 {
	const flow = 256 << 10
	const rounds = 4
	w := mpi.MustWorld(mpi.Config{Net: p.New(64), Procs: n + 1})
	if err := w.Run(func(rk *mpi.Rank) {
		if rk.Rank() == 0 {
			buf := rk.Malloc(flow)
			for i := 0; i < rounds*n; i++ {
				rk.Recv(buf, mpi.AnySource, 3)
			}
			return
		}
		buf := rk.Malloc(flow)
		for i := 0; i < rounds; i++ {
			rk.Send(buf, 0, 3)
		}
	}); err != nil {
		panic(err)
	}
	bytes := float64(rounds) * float64(n) * flow
	return bytes / float64(units.MB) / w.Elapsed().Seconds()
}
