package experiments

import (
	"fmt"
	"io"

	"mpinet/internal/cluster"
	"mpinet/internal/lowlevel"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/report"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// ExtMemory extends Figure 13 with the on-demand connection-management
// variant: memory versus node count for a nearest-neighbor application,
// static versus on-demand.
func (r *Runner) ExtMemory() report.Figure {
	r.logf("Ext A: on-demand connection memory")
	f := report.Figure{ID: "Ext A", Title: "Memory Usage with On-Demand Connections (ring traffic)",
		XLabel: "Nodes", YLabel: "Memory Usage (MB)"}
	counts := []int{2, 4, 8}
	if !r.Quick {
		counts = []int{2, 3, 4, 5, 6, 7, 8}
	}
	for _, p := range []cluster.Platform{r.pf(cluster.IBA()), r.pf(cluster.IBAOnDemand())} {
		c := microbench.Curve{Label: p.Name}
		for _, n := range counts {
			w := mpi.MustWorld(mpi.Config{Net: p.New(n), Procs: n})
			if err := w.Run(func(rk *mpi.Rank) {
				buf := rk.Malloc(256)
				next := (rk.Rank() + 1) % rk.Size()
				prev := (rk.Rank() - 1 + rk.Size()) % rk.Size()
				rk.Sendrecv(buf, next, 0, buf, prev, 0)
			}); err != nil {
				panic(err)
			}
			c.X = append(c.X, int64(n))
			c.Y = append(c.Y, float64(w.MemoryUsage(0))/float64(units.MB))
		}
		f.Curves = append(f.Curves, c)
	}
	f.Notes = "static RC pre-connects all peers; on-demand pays only for the two ring neighbors"
	return f
}

// ExtBcast extends Figure 12's theme with the hardware-multicast broadcast:
// 1 KB Bcast time versus node count, binomial tree versus switch multicast.
func (r *Runner) ExtBcast() report.Figure {
	r.logf("Ext B: hardware-multicast broadcast")
	f := report.Figure{ID: "Ext B", Title: "MPI_Bcast 1KB: binomial tree vs switch multicast",
		XLabel: "Nodes", YLabel: "Time (us)"}
	counts := []int{2, 4, 8}
	for _, p := range []cluster.Platform{r.pf(cluster.IBA()), r.pf(cluster.IBAMulticast())} {
		label := "tree"
		if p.Name == "IBA-MC" {
			label = "multicast"
		}
		c := microbench.Curve{Label: label}
		for _, n := range counts {
			c.X = append(c.X, int64(n))
			c.Y = append(c.Y, bcastTime(p, n).Micros())
		}
		f.Curves = append(f.Curves, c)
	}
	f.Notes = "the tree costs log2(N) serialized hops; multicast one injection"
	return f
}

func bcastTime(p cluster.Platform, nodes int) sim.Time {
	w := mpi.MustWorld(mpi.Config{Net: p.New(nodes), Procs: nodes})
	var worst sim.Time
	if err := w.Run(func(rk *mpi.Rank) {
		buf := rk.Malloc(1024)
		rk.Bcast(buf, 0)
		rk.Barrier()
		start := rk.Wtime()
		for i := 0; i < 8; i++ {
			rk.Bcast(buf, 0)
		}
		rk.Barrier()
		per := (rk.Wtime() - start) / 8
		if per > worst {
			worst = per
		}
	}); err != nil {
		panic(err)
	}
	return worst
}

// ExtLogP renders the LogGP characterization table for the three fabrics.
func (r *Runner) ExtLogP() report.Table {
	r.logf("Ext C: LogGP parameters")
	t := report.Table{ID: "Ext C", Title: "LogGP Parameters (Culler et al. model)",
		Header: []string{"Net", "L (us)", "os (us)", "or (us)", "G (us/KB)", "1/G (MB/s)"}}
	for _, p := range r.osu() {
		lp := microbench.LogP(p)
		t.Rows = append(t.Rows, []string{p.Name,
			fmt.Sprintf("%.2f", lp.L), fmt.Sprintf("%.2f", lp.Os),
			fmt.Sprintf("%.2f", lp.Or), fmt.Sprintf("%.4f", lp.G),
			fmt.Sprintf("%.0f", lp.Gm)})
	}
	return t
}

// ExtLowLevel renders the below-MPI comparison: what each MPI
// implementation adds over its messaging layer.
func (r *Runner) ExtLowLevel() report.Table {
	r.logf("Ext D: below-MPI layers")
	t := report.Table{ID: "Ext D", Title: "Messaging Layer vs MPI (protocol cost isolation)",
		Header: []string{"Net", "raw lat us", "MPI lat us", "gap us", "raw bw MB/s", "MPI bw MB/s"}}
	for _, p := range r.osu() {
		rawLat := lowlevel.Latency(p, 8).Micros()
		mpiLat := microbench.Latency(p, []int64{8}).Y[0]
		rawBW := lowlevel.Bandwidth(p, 512*units.KB, 8)
		mpiBW := microbench.Bandwidth(p, []int64{512 * units.KB}, 16).Y[0]
		t.Rows = append(t.Rows, []string{p.Name,
			fmt.Sprintf("%.2f", rawLat), fmt.Sprintf("%.2f", mpiLat),
			fmt.Sprintf("%.2f", mpiLat-rawLat),
			fmt.Sprintf("%.0f", rawBW), fmt.Sprintf("%.0f", mpiBW)})
	}
	t.Notes = "the lat gap is each MPI's protocol cost; Quadrics' is largest (host-heavy Tports library)"
	return t
}

// ExtFatTree renders the fat-tree scale-out table (class B NAS kernels at
// 16-64 processes on the folded-Clos extension).
func (r *Runner) ExtFatTree() report.Table {
	r.logf("Ext E: fat-tree scale-out")
	t := report.Table{ID: "Ext E", Title: "InfiniBand Fat-Tree Scale-Out (class " + r.class().String() + ", s)",
		Header: []string{"App", "16", "32", "64"}}
	counts := []int{16, 32, 64}
	apps := []string{"IS", "CG", "MG", "FT"}
	if r.Quick {
		apps = []string{"IS", "MG"}
	}
	for _, name := range apps {
		row := []string{name}
		for _, procs := range counts {
			res := r.app(name, cluster.IBAFatTree(procs), procs, 1)
			row = append(row, fmt.Sprintf("%.2f", res.Elapsed.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "two-level folded Clos from 24-port elements, 2:1 oversubscribed, deterministic ECMP"
	return t
}

// RunExtensions writes the extension experiments (beyond the paper's
// evaluation) to w, fanning them out over r.Jobs workers.
func (r *Runner) RunExtensions(w io.Writer) {
	r.runTasks(w, []suiteTask{
		figTask("Ext A", r.ExtMemory),
		figTask("Ext B", r.ExtBcast),
		tabTask("Ext C", r.ExtLogP),
		tabTask("Ext D", r.ExtLowLevel),
		tabTask("Ext E", r.ExtFatTree),
		figTask("Ext F", r.ExtFaults),
		figTask("Ext G1", r.ExtRailLatency),
		figTask("Ext G2", r.ExtRailBandwidth),
		figTask("Ext H", r.ExtScaleMemory),
		figTask("Ext I", r.ExtIncast),
		figTask("Ext J", r.ExtSpineFailures),
	})
}
