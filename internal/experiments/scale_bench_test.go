package experiments

import (
	"runtime"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// BenchmarkScaleWorld runs a 1024-rank world on the 3-level Clos with the
// neighbor-exchange pattern that dominates the NAS kernels, and reports the
// two numbers the scale-out work is judged on: event throughput with node
// domains active, and per-rank endpoint memory. It also stamps the
// simulator's own footprint — peak live heap across build+run, read with
// runtime.ReadMemStats after each iteration — so a regression that trades
// model memory for host memory is visible in the same record.
// scripts/bench.sh -engine stamps all of it into BENCH_engine.json; CI's
// scale-smoke job runs a shorter variant. Sub-benchmarks cover the three
// interconnects so the per-rank bytes record the paper's Figure 13 ordering
// at 1k ranks.
func BenchmarkScaleWorld(b *testing.B) {
	const ranks = 1024
	for _, plat := range []cluster.Platform{cluster.IBA(), cluster.Myri(), cluster.QSN()} {
		p := plat.With(cluster.Clos(3, 24, 2))
		b.Run(plat.Name, func(b *testing.B) {
			var perRank int64
			var peakHeap uint64
			var ms runtime.MemStats
			start := sim.TotalDispatched()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				w := mpi.MustWorld(mpi.Config{Net: p.New(ranks), Procs: ranks})
				if err := w.Run(func(r *mpi.Rank) {
					me, sz := r.Rank(), r.Size()
					buf, in := r.Malloc(8<<10), r.Malloc(8<<10)
					for i := 0; i < 4; i++ {
						r.Sendrecv(buf, (me+1)%sz, 1, in, (me-1+sz)%sz, 1)
					}
					r.Allreduce(r.Malloc(8))
				}); err != nil {
					b.Fatal(err)
				}
				perRank = w.MemoryUsage(0)
				// Live heap with the world still reachable: build + run
				// footprint, before the iteration's world is collected.
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
			}
			b.StopTimer()
			events := sim.TotalDispatched() - start
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/s")
			}
			b.ReportMetric(float64(perRank), "bytes/rank")
			b.ReportMetric(float64(perRank)/float64(units.MB), "MB/rank")
			b.ReportMetric(float64(peakHeap), "heap-bytes")
		})
	}
}
