package experiments

import (
	"io"
	"testing"

	"mpinet/internal/sim"
)

// BenchmarkSuiteEventsPerSec runs the quick figure suite end to end —
// micro-benchmarks, applications, extensions — and reports simulation event
// throughput. This is the macro number the engine overhaul targets and the
// one CI's perf-smoke job tracks against the committed BENCH_engine.json
// baseline: micro-benchmarks can miss regressions that only appear under
// the real mix of park/wake, timers, chunk pipelines and metric updates.
func BenchmarkSuiteEventsPerSec(b *testing.B) {
	start := sim.TotalDispatched()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		r := NewRunner(true, nil)
		r.Jobs = 1
		r.RunMicro(io.Discard)
		r.RunApps(io.Discard)
		r.RunExtensions(io.Discard)
	}
	b.StopTimer()
	events := sim.TotalDispatched() - start
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
