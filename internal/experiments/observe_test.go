package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// runObserve runs the demo and fails the test on simulation error.
func runObserve(t *testing.T, p cluster.Platform) *mpi.World {
	t.Helper()
	w, err := Observe(p)
	if err != nil {
		t.Fatalf("Observe(%s): %v", p.Name, err)
	}
	return w
}

// TestObserveDeterministic runs the instrumented demo twice and requires the
// rendered snapshot and the Chrome trace to be byte-identical — the
// registry's determinism contract, end to end.
func TestObserveDeterministic(t *testing.T) {
	render := func() (string, string) {
		w := runObserve(t, cluster.IBA())
		var snap, chrome bytes.Buffer
		w.Metrics().Snapshot().RenderGrouped(&snap)
		if err := w.WriteChromeTrace(&chrome); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return snap.String(), chrome.String()
	}
	s1, c1 := render()
	s2, c2 := render()
	if s1 != s2 {
		t.Error("two identical instrumented runs rendered different snapshots")
	}
	if c1 != c2 {
		t.Error("two identical instrumented runs emitted different Chrome traces")
	}
}

// TestObserveNeutral requires that enabling instrumentation does not change
// simulated time: the same workload with metrics off must finish at the
// identical picosecond.
func TestObserveNeutral(t *testing.T) {
	for _, p := range cluster.OSU() {
		instrumented := runObserve(t, p).Elapsed()

		bare := mpi.MustWorld(mpi.Config{
			Net:          p.New(observeNodes),
			Procs:        observeNodes * observePPN,
			ProcsPerNode: observePPN,
		})
		if err := bare.Run(func(r *Rank) { observeBody(r) }); err != nil {
			t.Fatalf("%s bare run: %v", p.Name, err)
		}
		if bare.Elapsed() != instrumented {
			t.Errorf("%s: instrumentation perturbed the run: %v with metrics vs %v without",
				p.Name, instrumented, bare.Elapsed())
		}
	}
}

// TestObserveChromeTrace checks the exported trace is valid JSON with spans
// from at least three model layers and per-rank message instants.
func TestObserveChromeTrace(t *testing.T) {
	w := runObserve(t, cluster.QSN())
	var b bytes.Buffer
	if err := w.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	instants := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			cats[e.Cat] = true
		case "i":
			instants++
		}
	}
	if len(cats) < 3 {
		t.Errorf("want spans from >= 3 layers, got %v", cats)
	}
	if instants == 0 {
		t.Error("no timeline instants in the trace")
	}
}

// TestObserveGMPinCache checks the Figure 7/8 quantity: a Myrinet run with
// buffer reuse must show both pin-down cache misses (first touch) and hits
// (reuse), and registration must have cost NIC time.
func TestObserveGMPinCache(t *testing.T) {
	w := runObserve(t, cluster.Myri())
	snap := w.Metrics().Snapshot().Merged()
	hits, _ := snap.Get("pin/hits")
	misses, _ := snap.Get("pin/misses")
	if hits == 0 || misses == 0 {
		t.Errorf("GM run: want nonzero pin-cache hits and misses, got hits=%d misses=%d", hits, misses)
	}
	if rt, _ := snap.Get("pin/reg_time"); rt == 0 {
		t.Error("GM run: registration time not accounted")
	}
}

// TestObserveCrossLayerCounters spot-checks that every instrumented layer
// actually recorded traffic during the demo.
func TestObserveCrossLayerCounters(t *testing.T) {
	w := runObserve(t, cluster.IBA())
	snap := w.Metrics().Snapshot().Merged()
	for _, name := range []string{
		"engine/events_dispatched", // sim core
		"bus/dma_bytes",            // I/O bus
		"nic/eager_msgs",           // NIC protocol
		"nic/rndv_msgs",            // NIC protocol (1 MB pong forces rendezvous)
		"link/up/bytes",            // fabric
		"shmem/copies",             // intra-node channel
		"mpi/req{<2K}/count",       // MPI request accounting
	} {
		if v, ok := snap.Get(name); !ok || v == 0 {
			t.Errorf("%s: want nonzero (ok=%v v=%d)", name, ok, v)
		}
	}
	if hw, _ := snap.Get("mpi/posted_depth"); hw == 0 {
		t.Error("posted-queue high water never moved")
	}
	if w.Metrics().SpanDropped() != 0 {
		t.Errorf("span log overflowed: %d dropped", w.Metrics().SpanDropped())
	}
	if elapsed := w.Elapsed(); elapsed <= 0 {
		t.Errorf("demo elapsed %v", sim.Time(elapsed))
	}
}
