package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/msgtrace"
	"mpinet/internal/report"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// TestTraceLatencyDecomposition is the healthy-path acceptance check: a
// traced Figure-1 ping-pong decomposes every message's end-to-end latency
// into stages that sum to it exactly (no residual mystery time beyond the
// explicit "other" bucket), and the aggregate matches the total.
func TestTraceLatencyDecomposition(t *testing.T) {
	for _, p := range cluster.OSU() {
		b, err := TraceLatency(p, 1024, 16, 8)
		if err != nil {
			t.Fatalf("%s: traced ping-pong failed: %v", p.Name, err)
		}
		if b.Completed == 0 || len(b.TopK) == 0 {
			t.Fatalf("%s: no completed traced messages (completed=%d)", p.Name, b.Completed)
		}
		var catSum units.Time
		for _, v := range b.Cats {
			catSum += v
		}
		if catSum != b.Total {
			t.Errorf("%s: aggregate categories sum to %v, want total %v", p.Name, catSum, b.Total)
		}
		for _, m := range b.TopK {
			var s units.Time
			for _, v := range m.Cats {
				s += v
			}
			if s != m.E2E() {
				t.Errorf("%s: message %v stages sum to %v, want e2e %v", p.Name, m.ID, s, m.E2E())
			}
		}
		if b.Cats[msgtrace.CatWire] == 0 {
			t.Errorf("%s: no wire time attributed in a cross-node ping-pong", p.Name)
		}
	}
}

// TestTraceBlameDeterministic re-runs the same traced workload and requires
// byte-identical blame JSON — the per-run half of the report's "identical
// at any -j" contract (each world is single-threaded; parallelism across
// experiments cannot touch a world's recorder).
func TestTraceBlameDeterministic(t *testing.T) {
	render := func() string {
		b, err := TraceLatency(cluster.IBA(), 4096, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteBlameJSON(&buf, b); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, bb := render(), render()
	if a != bb {
		t.Fatalf("blame JSON not deterministic:\n%s\n---\n%s", a, bb)
	}
	if !strings.Contains(a, "\"category\": \"wire\"") {
		t.Fatalf("blame JSON missing category decomposition:\n%s", a)
	}
}

// TestTraceRetransmitKeepsContext drives a traced ping-pong under seeded
// packet loss and requires the recovery work to stay attached to its
// message: retry wire attempts and backoff spans carry the original
// message ID (Attempt > 0), and no span is an orphan — every recorded span
// belongs to a recorded message root.
func TestTraceRetransmitKeepsContext(t *testing.T) {
	p := Faulty(cluster.IBA(), 0.05)
	rec := msgtrace.New(1)
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2, MsgTrace: rec})
	if err := w.Run(func(r *Rank) {
		buf := r.Malloc(1024)
		peer := 1 - r.Rank()
		for i := 0; i < 64; i++ {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
	}); err != nil {
		t.Fatalf("faulty ping-pong failed: %v", err)
	}
	assertNoOrphans(t, rec)
	retries := 0
	for _, s := range rec.Spans() {
		if (s.Stage == msgtrace.StageWire || s.Stage == msgtrace.StageBackoff) && s.Attempt > 0 {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("5% drop over 128 messages produced no attempt>0 wire/backoff spans")
	}
}

// TestTraceFailoverKeepsContext is satellite coverage for the bond: a
// traced ping-pong across a mid-run RailKill must re-issue the in-flight
// operation with its original trace ID (a StageRail span with Attempt > 0
// whose ID has a recorded root), leave no orphan spans, and stamp the
// failover into the always-on flight ring.
func TestTraceFailoverKeepsContext(t *testing.T) {
	bond := cluster.Bond(cluster.IBA(), cluster.Myri())
	iters := 64

	// Calibrate the kill point from a healthy traced run's midpoint.
	var mid sim.Time
	body := func(r *Rank) {
		buf := r.Malloc(4096)
		peer := 1 - r.Rank()
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
		if r.Rank() == 0 {
			mid = start + (r.Wtime()-start)/2
		}
	}
	w := mpi.MustWorld(mpi.Config{Net: bond.New(2), Procs: 2})
	if err := w.Run(body); err != nil {
		t.Fatalf("healthy bonded ping-pong failed: %v", err)
	}

	killed := railKilled(bond, 0, mid)
	rec := msgtrace.New(1)
	w = mpi.MustWorld(mpi.Config{Net: killed.New(2), Procs: 2, MsgTrace: rec})
	if err := w.Run(body); err != nil {
		t.Fatalf("bonded ping-pong did not survive the rail kill: %v", err)
	}

	assertNoOrphans(t, rec)
	reissued := false
	for _, s := range rec.Spans() {
		if s.Stage == msgtrace.StageRail && s.Attempt > 0 {
			reissued = true
			break
		}
	}
	failovers, railDeaths := 0, 0
	for _, e := range rec.FlightEntries() {
		switch e.Kind {
		case msgtrace.FlightFailover:
			failovers++
			if e.ID == 0 {
				t.Error("failover flight entry carries no message ID")
			}
		case msgtrace.FlightRailDown:
			railDeaths++
		}
	}
	if railDeaths == 0 {
		t.Error("rail kill left no FlightRailDown entry in the flight ring")
	}
	if failovers > 0 && !reissued {
		t.Error("bond failed over but no re-issued StageRail span (attempt > 0) was recorded")
	}
	if failovers == 0 && reissued {
		t.Error("re-issued StageRail span without a FlightFailover entry")
	}
	// The kill must have been detected one way or the other: either an op
	// was in flight (failover + re-issue) or the monitor declared the rail
	// dead between operations and the bond simply routed around it.
	if w.MsgTrace() != rec {
		t.Fatal("world is not using the test's recorder")
	}
}

// assertNoOrphans checks the parent/child invariant: every span's ID has a
// recorded message root (sampling is a pure function of the ID, so a
// sampled span implies a sampled Begin).
func assertNoOrphans(t *testing.T, rec *msgtrace.Recorder) {
	t.Helper()
	roots := make(map[msgtrace.ID]bool, len(rec.Msgs()))
	for _, m := range rec.Msgs() {
		roots[m.ID] = true
	}
	for _, s := range rec.Spans() {
		if !roots[s.ID] {
			t.Fatalf("orphan span: stage %v for message %v has no root", s.Stage, s.ID)
		}
	}
}

// TestPostmortem runs the acceptance scenario end to end: the doomed LU
// run fails typed, and the dump + blame report name the failing rank,
// stage and message.
func TestPostmortem(t *testing.T) {
	var buf bytes.Buffer
	if err := Postmortem(&buf, "IBA", 0.01, 0, 1); err != nil {
		t.Fatalf("postmortem: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"job failed typed", "FAILURE", "blamed rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("postmortem output missing %q:\n%s", want, out)
		}
	}
}

// TestObserveTracedOverheadShape guards the sampling contract: the traced
// observability demo and the untraced one simulate the identical workload
// (same simulated elapsed — tracing is observation only, it must never
// perturb virtual time).
func TestObserveTracedOverheadShape(t *testing.T) {
	base, err := Observe(cluster.IBA())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := ObserveTraced(cluster.IBA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Elapsed() != traced.Elapsed() {
		t.Fatalf("tracing perturbed simulated time: untraced %v, traced %v",
			base.Elapsed(), traced.Elapsed())
	}
	if len(traced.MsgTrace().Spans()) == 0 {
		t.Fatal("traced demo recorded no spans")
	}
	if rails := traced.MsgTrace(); rails == nil {
		t.Fatal("traced world lost its recorder")
	}
}
