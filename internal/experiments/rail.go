package experiments

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/metrics"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/rail"
	"mpinet/internal/report"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// railMembers resolves a "IBA+Myri" style pair name into the member
// platforms of a bond, primary first.
func railMembers(pair string) ([]cluster.Platform, error) {
	parts := strings.Split(pair, "+")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("experiments: rail pair %q: want 2-3 interconnects joined by +", pair)
	}
	members := make([]cluster.Platform, len(parts))
	for i, part := range parts {
		p, err := faultPlatform(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		members[i] = p
	}
	return members, nil
}

// railPolicyByName parses the CLI/CI spelling of a bond policy.
func railPolicyByName(name string) (rail.Policy, error) {
	switch strings.ToLower(name) {
	case "", "failover":
		return rail.Failover, nil
	case "stripe":
		return rail.Stripe, nil
	default:
		return rail.Failover, fmt.Errorf("experiments: unknown rail policy %q (want failover or stripe)", name)
	}
}

// railKilled derives p with one rail hard-killed at the given instant,
// drawing its verdicts from the committed experiment seed.
func railKilled(p cluster.Platform, railIdx int, at sim.Time) cluster.Platform {
	plan := &faults.Plan{Seed: FaultSeed,
		RailKills: []faults.RailKill{{Rail: railIdx, At: at}}}
	return p.With(cluster.WithFaults(plan))
}

// railPingPong measures the average one-way latency of iters ping-pongs
// between two nodes of p, and returns the midpoint (absolute simulated
// time) of the measured loop alongside — the calibration input for "kill
// at 50% of the run". The loop's own window is the right frame: a bonded
// world's total elapsed also counts the health monitor's idle-disarm tail
// after traffic ends, so half of *that* can land after the workload.
func railPingPong(p cluster.Platform, size int64, iters int) (oneWay, mid sim.Time) {
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
	var rtt sim.Time
	if err := w.Run(func(r *mpi.Rank) {
		buf := r.Malloc(size)
		peer := 1 - r.Rank()
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
		if r.Rank() == 0 {
			end := r.Wtime()
			rtt = (end - start) / sim.Time(iters)
			mid = start + (end-start)/2
		}
	}); err != nil {
		panic(err)
	}
	return rtt / 2, mid
}

// railStream measures uni-directional streaming bandwidth (MB/s) with the
// paper's windowed protocol, returning the midpoint (absolute simulated
// time) of the measured streaming window alongside for mid-run kill
// calibration (see railPingPong for why not total elapsed).
func railStream(p cluster.Platform, size int64, window, rounds int) (bw float64, mid sim.Time) {
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
	if err := w.Run(func(r *mpi.Rank) {
		peer := 1 - r.Rank()
		msg := r.Malloc(size)
		ack := r.Malloc(4)
		reqs := make([]*mpi.Request, window)
		runRound := func(tag int) {
			if r.Rank() == 0 {
				for i := 0; i < window; i++ {
					reqs[i] = r.Isend(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Recv(ack, peer, 99)
			} else {
				for i := 0; i < window; i++ {
					reqs[i] = r.Irecv(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Send(ack, peer, 99)
			}
		}
		runRound(0) // warmup
		start := r.Wtime()
		for round := 0; round < rounds; round++ {
			runRound(1)
		}
		if r.Rank() == 0 {
			end := r.Wtime()
			total := float64(size) * float64(window) * float64(rounds)
			bw = total / (end - start).Seconds() / float64(units.MB)
			mid = start + (end-start)/2
		}
	}); err != nil {
		panic(err)
	}
	return bw, mid
}

// ExtRailLatency regenerates Figure 1's latency sweep across a rail
// failure: a bonded IBA+Myri channel whose primary (IBA) is killed halfway
// through each measurement, against the healthy bond and the Myri survivor
// it degrades to. The kill point is calibrated per size from the healthy
// bonded run, so every point really does lose its primary mid-stream.
func (r *Runner) ExtRailLatency() report.Figure {
	r.logf("Ext G1: latency across a primary-rail failure")
	f := report.Figure{ID: "Ext G1", Title: "MPI Latency across a Primary-Rail Failure (IBA+Myri bond)",
		XLabel: "Message Size (Bytes)", YLabel: "Time (us)"}
	iters := 256
	if r.Quick {
		iters = 64
	}
	bond := r.pf(cluster.Bond(cluster.IBA(), cluster.Myri()))
	healthy := microbench.Curve{Label: bond.Name + " healthy"}
	killed := microbench.Curve{Label: bond.Name + " IBA killed at 50%"}
	solo := microbench.Curve{Label: "Myri (survivor solo)"}
	for _, s := range r.sizes(4, 4*units.KB) {
		hLat, hMid := railPingPong(bond, s, iters)
		kLat, _ := railPingPong(railKilled(bond, 0, hMid), s, iters)
		sLat, _ := railPingPong(r.pf(cluster.Myri()), s, iters)
		healthy.X, healthy.Y = append(healthy.X, s), append(healthy.Y, hLat.Micros())
		killed.X, killed.Y = append(killed.X, s), append(killed.Y, kLat.Micros())
		solo.X, solo.Y = append(solo.X, s), append(solo.Y, sLat.Micros())
	}
	f.Curves = append(f.Curves, healthy, killed, solo)
	f.Notes = fmt.Sprintf("kill at the midpoint of each point's healthy sweep (seed %#x); the killed curve pays one detection + re-issue stall amortized over the sweep and finishes at survivor speed", FaultSeed)
	return f
}

// ExtRailBandwidth extends Figure 2 with channel bonding: windowed
// streaming bandwidth for the failover bond (primary's rate), the striping
// bond (aggregate of both rails above the stripe threshold), and the
// striping bond degrading to the Myri survivor when IBA dies mid-stream.
func (r *Runner) ExtRailBandwidth() report.Figure {
	r.logf("Ext G2: striped bandwidth across a rail failure")
	f := report.Figure{ID: "Ext G2", Title: "MPI Bandwidth under Channel Bonding and Rail Failure (IBA+Myri)",
		XLabel: "Message Size (Bytes)", YLabel: "Bandwidth (MB/s)"}
	window, rounds := 16, 8
	if r.Quick {
		rounds = 4
	}
	bond := r.pf(cluster.Bond(cluster.IBA(), cluster.Myri()))
	stripe := bond.With(cluster.WithRailPolicy(rail.Stripe))
	fo := microbench.Curve{Label: bond.Name + " failover"}
	st := microbench.Curve{Label: stripe.Name}
	deg := microbench.Curve{Label: stripe.Name + " IBA killed at 50%"}
	solo := microbench.Curve{Label: "Myri (survivor solo)"}
	for _, s := range r.sizes(16*units.KB, units.MB) {
		foBW, _ := railStream(bond, s, window, rounds)
		stBW, stMid := railStream(stripe, s, window, rounds)
		degBW, _ := railStream(railKilled(stripe, 0, stMid), s, window, rounds)
		soloBW, _ := railStream(r.pf(cluster.Myri()), s, window, rounds)
		for _, c := range []*microbench.Curve{&fo, &st, &deg, &solo} {
			c.X = append(c.X, s)
		}
		fo.Y = append(fo.Y, foBW)
		st.Y = append(st.Y, stBW)
		deg.Y = append(deg.Y, degBW)
		solo.Y = append(solo.Y, soloBW)
	}
	f.Curves = append(f.Curves, fo, st, deg, solo)
	f.Notes = "striping engages above the 64 KB threshold; across rails this asymmetric an even split is bound by the slower rail (~2x Myri), so stripe trails IBA-alone failover; the degraded curve starts striped and finishes on the Myri survivor"
	return f
}

// RailFailSmoke is the CI rail-matrix entry point and the issue's
// acceptance scenario: run LU class S x8 on a bonded pair three ways —
// healthy (to calibrate), with the primary rail killed at 50% of the
// healthy elapsed (must complete via failover, slower than healthy), and
// the same plan on the solo primary (must fail with the device's typed
// retry exhaustion, not hang). Deterministic in seed at any -j.
func RailFailSmoke(w io.Writer, pair, policy string, seed uint64, shards int) error {
	members, err := railMembers(pair)
	if err != nil {
		return err
	}
	pol, err := railPolicyByName(policy)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = FaultSeed
	}
	bond := cluster.Bond(members[0], members[1:]...).With(cluster.WithRailPolicy(pol))
	if shards > 1 {
		bond = bond.With(cluster.WithShards(shards))
		for i := range members {
			members[i] = members[i].With(cluster.WithShards(shards))
		}
	}

	lu, err := apps.ByName("LU")
	if err != nil {
		return err
	}
	run := func(p cluster.Platform, m *metrics.Registry) (apps.Result, error) {
		return lu.Run(apps.RunConfig{Platform: p, Class: apps.ClassS, Procs: 8, Metrics: m})
	}

	healthy, err := run(bond, nil)
	if err != nil {
		return fmt.Errorf("experiments: healthy LU class S on %s: %w", bond.Name, err)
	}
	fmt.Fprintf(w, "%-18s LU class S x8 healthy:       %v\n", bond.Name, healthy.Elapsed)

	at := healthy.Elapsed / 2
	plan := &faults.Plan{Seed: seed, RailKills: []faults.RailKill{{Rail: 0, At: at}}}
	m := metrics.New()
	degraded, err := run(bond.With(cluster.WithFaults(plan)), m)
	if err != nil {
		return fmt.Errorf("experiments: bonded LU did not survive %s dying at %v: %w", members[0].Name, at, err)
	}
	fmt.Fprintf(w, "%-18s with %s killed at %v: %v\n", bond.Name, members[0].Name, at, degraded.Elapsed)
	fmt.Fprintf(w, "%-18s rail: %d heartbeats, %d suspects, %d deaths, %d failovers, %d B re-issued, %d stripe chunks\n",
		bond.Name,
		m.Counter("rail/heartbeats").Value(), m.Counter("rail/suspects").Value(),
		m.Counter("rail/deaths").Value(), m.Counter("rail/failovers").Value(),
		m.Counter("rail/reissued_bytes").Value(), m.Counter("rail/stripe_chunks").Value())
	if m.Counter("rail/deaths").Value() == 0 {
		return fmt.Errorf("experiments: %s: rail kill at %v was never detected (rail/deaths = 0)", bond.Name, at)
	}
	if degraded.Elapsed <= healthy.Elapsed {
		return fmt.Errorf("experiments: %s: degraded run (%v) not slower than healthy (%v) — the kill never bit",
			bond.Name, degraded.Elapsed, healthy.Elapsed)
	}

	solo := members[0].With(cluster.WithFaults(plan))
	if _, err := run(solo, nil); err == nil {
		return fmt.Errorf("experiments: solo %s survived its own rail-kill plan", members[0].Name)
	} else if !errors.Is(err, faults.ErrRetryExhausted) && !errors.Is(err, mpi.ErrTimeout) {
		return fmt.Errorf("experiments: solo %s failed untyped: %w", members[0].Name, err)
	} else {
		fmt.Fprintf(w, "%-18s solo control failed typed as it must: %v\n", members[0].Name, err)
	}
	return nil
}
