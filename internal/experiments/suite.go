package experiments

import (
	"fmt"
	"io"
	"time"

	"mpinet/internal/metrics"
	"mpinet/internal/parallel"
	"mpinet/internal/report"
)

// suiteTask is one schedulable unit of the suite: a named closure producing
// one figure's or table's rendered block. Tasks are independent simulations
// (each builds its own engines), so any subset may run concurrently.
type suiteTask struct {
	name   string
	render func() string
}

// figTask and tabTask adapt figure/table builders to suiteTask renderers.
func figTask(name string, f func() report.Figure) suiteTask {
	return suiteTask{name: name, render: func() string { return f().Render() }}
}

func tabTask(name string, f func() report.Table) suiteTask {
	return suiteTask{name: name, render: func() string { return f().Render() }}
}

// runTasks fans tasks out over r.Jobs workers and streams each rendered
// block to w in list order — the parallelism/determinism contract of
// docs/MODEL.md §11. Per-task host wall-clock is recorded for Timings.
func (r *Runner) runTasks(w io.Writer, tasks []suiteTask) {
	type rendered struct {
		block string
		wall  time.Duration
	}
	parallel.MapOrdered(r.Jobs, len(tasks), func(i int) rendered {
		start := time.Now()
		block := tasks[i].render()
		return rendered{block: block, wall: time.Since(start)}
	}, func(i int, v rendered) {
		r.addTiming(tasks[i].name, v.wall)
		fmt.Fprintln(w, v.block)
	})
}

// gatherComparisons fans comparison-building groups out over r.Jobs workers
// and concatenates their results in group order, timing the whole batch
// under name.
func (r *Runner) gatherComparisons(name string, groups []func() []report.Comparison) []report.Comparison {
	start := time.Now()
	var comps []report.Comparison
	parallel.MapOrdered(r.Jobs, len(groups), func(i int) []report.Comparison {
		return groups[i]()
	}, func(_ int, c []report.Comparison) {
		comps = append(comps, c...)
	})
	r.addTiming(name, time.Since(start))
	return comps
}

// SuiteMetrics exposes the suite's own host-side execution record through
// the metrics registry, one counter per completed task
// ("suite/<name>/wall_ns") plus the task count — the snapshot that
// scripts/bench.sh folds into BENCH_parallel.json. Unlike every other
// registry in the tree this one holds real wall-clock, so its values vary
// run to run; it is kept out of the determinism-compared outputs.
func (r *Runner) SuiteMetrics() *metrics.Registry {
	m := metrics.New()
	r.timeMu.Lock()
	defer r.timeMu.Unlock()
	for _, t := range r.timings {
		m.Counter("suite/" + t.Name + "/wall_ns").Add(t.Wall.Nanoseconds())
	}
	m.Counter("suite/tasks").Add(int64(len(r.timings)))
	return m
}
