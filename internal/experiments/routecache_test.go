package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/mpi"
	"mpinet/internal/units"
)

// TestRouteCacheWorldByteIdentical drives a full device+MPI world through a
// kill+repair chaos plan twice — once with the fabric route cache (the
// default) and once with it disabled through the SetRouteCache debug knob —
// and demands byte-identical transcripts: every rank's per-round completion
// status (which encodes the LastRouteOf fate the device saw, blackhole
// detect-delay window included) and the final elapsed time. The cache is a
// performance knob, never a semantics knob.
func TestRouteCacheWorldByteIdentical(t *testing.T) {
	run := func(cacheOn bool) string {
		p := cluster.IBA().With(cluster.Clos(2, 8, 1),
			cluster.WithSwitchKills(faults.SwitchKill{
				Level: 1, Index: 1,
				At: 50 * units.Microsecond, RepairAt: 2 * units.Millisecond,
			}),
			cluster.WithSeed(FaultSeed))
		const procs, rounds = 32, 8
		net := p.New(procs)
		if !cacheOn {
			topo := net.(interface{ Topology() fabric.Topology }).Topology()
			topo.(*fabric.Clos).SetRouteCache(false)
		}
		w := mpi.MustWorld(mpi.Config{Net: net, Procs: procs})
		// Classic mode (fault plan), so the fixed-slot transcript is
		// race-free; fixed slots also make it interleaving-independent.
		lines := make([]string, procs*rounds)
		err := w.Run(func(rk *mpi.Rank) {
			buf := rk.Malloc(4 * units.KB)
			next := (rk.Rank() + 1) % rk.Size()
			prev := (rk.Rank() - 1 + rk.Size()) % rk.Size()
			for i := 0; i < rounds; i++ {
				st := rk.Sendrecv(buf, next, i, buf, prev, i)
				outcome := "ok"
				if st.Err != nil {
					outcome = st.Err.Error()
				}
				lines[rk.Rank()*rounds+i] = fmt.Sprintf("rank %d round %d: %s", rk.Rank(), i, outcome)
				rk.Compute(100 * units.Microsecond)
			}
		})
		if err != nil {
			t.Fatalf("kill+repair ring (cache=%v) died: %v", cacheOn, err)
		}
		return strings.Join(lines, "\n") + fmt.Sprintf("\nelapsed %v\n", w.Elapsed())
	}
	on, off := run(true), run(false)
	if on != off {
		t.Fatalf("world transcript diverges with the route cache on:\n--- cache on:\n%s\n--- cache off:\n%s", on, off)
	}
	if !strings.Contains(on, "elapsed ") || len(on) < 100 {
		t.Fatalf("transcript suspiciously empty:\n%s", on)
	}
}
