// Package apps implements communication skeletons of the paper's
// application workloads: the NAS Parallel Benchmarks IS, CG, MG, LU, FT, SP
// and BT (class B, as in the paper, plus a tiny class S for tests) and the
// ASCI sweep3D wavefront benchmark at problem sizes 50 and 150.
//
// A skeleton executes the real communication structure of the benchmark —
// the same MPI calls, message sizes, counts, partners and ordering the
// paper's profiles report (Tables 1, 3, 5, 6) — while computation phases
// advance simulated time through a calibrated work model instead of
// numerics. Per-process computation is calibrated once against the paper's
// InfiniBand column of Table 2 (see DESIGN.md §5); everything the paper
// *compares* — network-to-network deltas, speedups, SMP and PCI effects —
// is emergent from the interconnect models.
package apps

import (
	"errors"
	"fmt"
	"sort"

	"mpinet/internal/cluster"
	"mpinet/internal/dev"
	"mpinet/internal/metrics"
	"mpinet/internal/mpi"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Class selects the problem size.
type Class int

// Problem classes: B is what the paper runs; S is a scaled-down version for
// fast tests.
const (
	ClassS Class = iota
	ClassB
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == ClassS {
		return "S"
	}
	return "B"
}

// App is one runnable workload.
type App struct {
	// Name as the paper spells it (IS, CG, ..., S3D-50).
	Name string
	// SquareProcs requires a perfect-square process count (SP, BT).
	SquareProcs bool
	// MinProcs is the smallest supported world size.
	MinProcs int
	// run executes the skeleton on one rank.
	run func(r *mpi.Rank, class Class, cal calibration)
	// cal returns the computation model for a class.
	cal func(class Class) calibration
}

// calibration is the computation model of one workload: total serial work
// (in rank-seconds on the testbed's 2.4 GHz Xeon) plus per-configuration
// work factors. The factors encode how partition shape and per-rank cache
// residency change the cost of a work unit — they are what make CG and MG
// speed up superlinearly from 4 to 8 processes (and CG sublinearly from 2
// to 4) exactly as Table 2 records. They are calibrated once, against the
// paper's InfiniBand column only; every network-to-network comparison is
// emergent from the interconnect models.
type calibration struct {
	workSeconds float64
	// shape maps a process count to its work factor; missing counts use
	// the nearest smaller calibrated count (1.0 if none).
	shape map[int]float64
}

// perRankCompute is the total computation one of procs ranks performs.
func (c calibration) perRankCompute(procs int) sim.Time {
	return units.FromSeconds(c.workSeconds / float64(procs) * c.shapeFor(procs))
}

func (c calibration) shapeFor(procs int) float64 {
	if f, ok := c.shape[procs]; ok {
		return f
	}
	best, bestP := 1.0, 0
	for p, f := range c.shape {
		if p <= procs && p > bestP {
			best, bestP = f, p
		}
	}
	return best
}

// Result of one application run.
type Result struct {
	App     string
	Net     string
	Class   Class
	Procs   int
	Elapsed sim.Time
	Profile *trace.Profile // aggregate over ranks
	PerRank *trace.Profile // rank 0's profile (the paper's per-rank tables)
	// Utilizations holds per-resource busy accounting when requested.
	Utilizations []dev.Utilization
}

// Registry returns the paper's workloads in its reporting order.
func Registry() []*App {
	return []*App{IS(), CG(), MG(), LU(), FT(), SP(), BT(), Sweep3D(50), Sweep3D(150)}
}

// ErrUnknownApp is the sentinel wrapped by ByName for workload names not
// in the registry; match with errors.Is.
var ErrUnknownApp = errors.New("unknown workload")

// ByName finds a workload.
func ByName(name string) (*App, error) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, nil
		}
	}
	names := make([]string, 0)
	for _, a := range Registry() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("apps: %w %q (have %v)", ErrUnknownApp, name, names)
}

// RunConfig controls one execution.
type RunConfig struct {
	Platform     cluster.Platform
	Class        Class
	Procs        int
	ProcsPerNode int                // default 1; the paper's SMP runs use 2
	Nodes        int                // default Procs/ProcsPerNode
	Timeline     *trace.Timeline    // optional message-event collection
	Metrics      *metrics.Registry  // optional cross-layer instrument registry
	MsgTrace     *msgtrace.Recorder // optional per-message span tracing
	Utilization  bool               // collect per-resource busy accounting
}

// Run executes the workload on a freshly wired testbed and reports timing
// and profile.
func (a *App) Run(cfg RunConfig) (Result, error) {
	if cfg.Procs < a.MinProcs {
		return Result{}, fmt.Errorf("apps: %s needs at least %d processes", a.Name, a.MinProcs)
	}
	if a.SquareProcs && !isSquare(cfg.Procs) {
		return Result{}, fmt.Errorf("apps: %s requires a square number of processes", a.Name)
	}
	ppn := cfg.ProcsPerNode
	if ppn == 0 {
		ppn = 1
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = (cfg.Procs + ppn - 1) / ppn
	}
	w := mpi.MustWorld(mpi.Config{
		Net:          cfg.Platform.New(nodes),
		Procs:        cfg.Procs,
		ProcsPerNode: ppn,
		Timeline:     cfg.Timeline,
		Metrics:      cfg.Metrics,
		MsgTrace:     cfg.MsgTrace,
	})
	cal := a.cal(cfg.Class)
	err := w.Run(func(r *mpi.Rank) { a.run(r, cfg.Class, cal) })
	if err != nil {
		return Result{}, fmt.Errorf("apps: %s on %s: %w", a.Name, cfg.Platform.Name, err)
	}
	res := Result{
		App:     a.Name,
		Net:     cfg.Platform.Name,
		Class:   cfg.Class,
		Procs:   cfg.Procs,
		Elapsed: w.Elapsed(),
		Profile: w.AggregateProfile(),
		PerRank: w.Profile(0),
	}
	if cfg.Utilization {
		res.Utilizations = w.Utilizations()
	}
	return res, nil
}

func isSquare(n int) bool {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return true
		}
	}
	return false
}

// grid2 splits procs into a rows x cols grid with cols >= rows, both powers
// of two when procs is (the NPB convention).
func grid2(procs int) (rows, cols int) {
	rows = 1
	cols = procs
	for r := 2; r*r <= procs; r++ {
		if procs%r == 0 {
			rows, cols = r, procs/r
		}
	}
	return rows, cols
}

// grid3 splits procs into a 3D decomposition nx x ny x nz, as even as
// possible (MG's convention).
func grid3(procs int) (nx, ny, nz int) {
	nx, ny, nz = 1, 1, 1
	dims := []*int{&nx, &ny, &nz}
	d := 0
	for p := procs; p > 1; {
		f := smallestFactor(p)
		*dims[d%3] *= f
		p /= f
		d++
	}
	return
}

func smallestFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// ceilDiv is integer division rounding up.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
