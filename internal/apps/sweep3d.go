package apps

import (
	"fmt"

	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// Sweep3D is the ASCI discrete-ordinates transport benchmark: wavefront
// sweeps from all eight octants across a 2D (i,j) process grid, pipelined
// in k-blocks. All messages are small boundary planes, so performance is
// governed by latency and pipeline fill — the workload where Quadrics'
// higher host overhead shows despite its lower wire latency (Figure 17).
//
// The paper runs grid sizes 50 and 150. The sweep count (12) and k-block
// size (one plane) are chosen so an interior rank's message counts and size
// classes match the paper's Table 1 profile exactly.
func Sweep3D(size int) *App {
	if size != 50 && size != 150 {
		panic(fmt.Sprintf("apps: sweep3d size %d not in the paper", size))
	}
	name := fmt.Sprintf("S3D-%d", size)
	return &App{
		Name:     name,
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.02}
			}
			if size == 50 {
				// Table 2 anchors: 13.58 / 7.18 / 3.59 s.
				return calibration{workSeconds: 26.9,
					shape: map[int]float64{2: 0.9955, 4: 1.0357, 8: 1.0092}}
			}
			// Table 2 anchors: 346.43 / 179.35 / 91.43 s.
			return calibration{workSeconds: 691,
				shape: map[int]float64{2: 0.998, 4: 1.0207, 8: 1.0337}}
		},
		run: func(r *mpi.Rank, class Class, cal calibration) {
			runSweep3D(r, class, cal, size)
		},
	}
}

func runSweep3D(r *mpi.Rank, class Class, cal calibration, size int) {
	p := r.Size()
	me := r.Rank()
	npi, npj := grid2(p) // i-rows x j-columns
	mi := me / npj
	mj := me % npj

	it, jt, kt := int64(size), int64(size), int64(size)
	itmx := 12
	const mmi = 6         // angles per pipelined block
	const angleBlocks = 2 // mm=12 angles in two blocks
	const mk = 1          // k-plane block
	if class == ClassS {
		it, jt, kt = 8, 8, 8
		itmx = 2
	}

	itl := ceilDiv(it, int64(npi))
	jtl := ceilDiv(jt, int64(npj))

	ewMsg := jtl * mk * mmi * 8 // crosses i-boundaries (east-west faces)
	nsMsg := itl * mk * mmi * 8 // crosses j-boundaries
	ewOut, ewIn := r.Malloc(ewMsg), r.Malloc(ewMsg)
	nsOut, nsIn := r.Malloc(nsMsg), r.Malloc(nsMsg)
	small := r.Malloc(8)

	kBlocks := int(ceilDiv(kt, mk))
	perBlock := cal.perRankCompute(p) / sim.Time(itmx*8*kBlocks*angleBlocks)

	r.Barrier()
	for iter := 0; iter < itmx; iter++ {
		for octant := 0; octant < 8; octant++ {
			idir := 1
			if octant&1 != 0 {
				idir = -1
			}
			jdir := 1
			if octant&2 != 0 {
				jdir = -1
			}
			// Upstream/downstream neighbors for this octant's sweep
			// direction.
			iUp, iDown := mi-idir, mi+idir
			jUp, jDown := mj-jdir, mj+jdir
			recvI := iUp >= 0 && iUp < npi
			sendI := iDown >= 0 && iDown < npi
			recvJ := jUp >= 0 && jUp < npj
			sendJ := jDown >= 0 && jDown < npj
			for kb := 0; kb < kBlocks; kb++ {
				for ab := 0; ab < angleBlocks; ab++ {
					if recvI {
						r.Recv(ewIn, iUp*npj+mj, 50+octant)
					}
					if recvJ {
						r.Recv(nsIn, mi*npj+jUp, 60+octant)
					}
					r.Compute(perBlock)
					if sendI {
						r.Send(ewOut, iDown*npj+mj, 50+octant)
					}
					if sendJ {
						r.Send(nsOut, mi*npj+jDown, 60+octant)
					}
				}
			}
		}
		// Flux error reductions.
		r.Allreduce(small)
		r.Allreduce(small)
		r.Allreduce(small)
	}
}
