package apps

import (
	"strings"
	"testing"

	"mpinet/internal/cluster"
)

func TestAllAppsRunOnAllNetworksClassS(t *testing.T) {
	for _, a := range Registry() {
		for _, p := range cluster.OSU() {
			procs := 8
			if a.SquareProcs {
				procs = 4
			}
			res, err := a.Run(RunConfig{Platform: p, Class: ClassS, Procs: procs})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, p.Name, err)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("%s on %s: non-positive elapsed %v", a.Name, p.Name, res.Elapsed)
			}
			if res.Profile.TotalCalls == 0 {
				t.Fatalf("%s on %s: empty profile", a.Name, p.Name)
			}
		}
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Registry() {
		if seen[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 9 {
		t.Fatalf("expected the paper's 9 workloads, have %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("LU"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestSquareProcsEnforced(t *testing.T) {
	if _, err := SP().Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: 8}); err == nil {
		t.Fatal("SP accepted 8 processes")
	}
	if _, err := BT().Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestMinProcsEnforced(t *testing.T) {
	if _, err := IS().Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: 1}); err == nil {
		t.Fatal("IS accepted 1 process")
	}
}

// Communication-structure invariants from the paper's Tables 3 and 5.
func TestProfileShapesMatchPaper(t *testing.T) {
	run := func(name string) Result {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		procs := 8
		if a.SquareProcs {
			procs = 4
		}
		res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// IS and FT communicate almost exclusively through collectives.
	for _, name := range []string{"IS", "FT"} {
		pr := run(name).PerRank
		if pr.CollectiveVolumeShare() < 0.99 {
			t.Errorf("%s collective volume share = %.2f, want ~1.0", name, pr.CollectiveVolumeShare())
		}
	}
	// CG, MG, LU use non-blocking receives but never non-blocking sends.
	for _, name := range []string{"CG", "MG", "LU"} {
		pr := run(name).PerRank
		if pr.IrecvCalls == 0 {
			t.Errorf("%s: no Irecv calls", name)
		}
		if pr.IsendCalls != 0 {
			t.Errorf("%s: %d Isend calls, want 0", name, pr.IsendCalls)
		}
	}
	// SP and BT use both, in equal numbers.
	for _, name := range []string{"SP", "BT"} {
		pr := run(name).PerRank
		if pr.IsendCalls == 0 || pr.IsendCalls != pr.IrecvCalls {
			t.Errorf("%s: isend=%d irecv=%d, want equal and nonzero", name, pr.IsendCalls, pr.IrecvCalls)
		}
	}
	// FT and sweep3D use no non-blocking calls at all.
	for _, name := range []string{"FT", "S3D-50", "S3D-150"} {
		pr := run(name).PerRank
		if pr.IsendCalls != 0 || pr.IrecvCalls != 0 {
			t.Errorf("%s: isend=%d irecv=%d, want 0/0", name, pr.IsendCalls, pr.IrecvCalls)
		}
	}
	// Buffer reuse is very high everywhere (Table 4) — skeletons must use
	// persistent buffers.
	for _, a := range Registry() {
		procs := 8
		if a.SquareProcs {
			procs = 4
		}
		res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		// Table 4: IS (81%) and FT (86%) are the low-reuse workloads;
		// everything else sits near 100%.
		floor := 0.90
		switch a.Name {
		case "IS":
			floor = 0.70
		case "FT":
			floor = 0.78
		}
		if r := res.PerRank.ReuseRate(); r < floor {
			t.Errorf("%s reuse rate = %.2f, want > %.2f", a.Name, r, floor)
		}
	}
}

// Table 1 exact anchors for the collective-only workloads (cheap even at
// class B).
func TestISTable1ExactClassB(t *testing.T) {
	res, err := IS().Run(RunConfig{Platform: cluster.IBA(), Class: ClassB, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := [4]int64{14, 11, 0, 11} // the paper's Table 1 row for IS
	if res.PerRank.SizeHist != want {
		t.Fatalf("IS size histogram = %v, want %v", res.PerRank.SizeHist, want)
	}
}

func TestFTTable1ExactClassB(t *testing.T) {
	res, err := FT().Run(RunConfig{Platform: cluster.IBA(), Class: ClassB, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := [4]int64{24, 0, 0, 22}
	if res.PerRank.SizeHist != want {
		t.Fatalf("FT size histogram = %v, want %v", res.PerRank.SizeHist, want)
	}
}

func TestTable2IBAColumnClassB(t *testing.T) {
	if testing.Short() {
		t.Skip("class B runs in -short mode")
	}
	// The calibrated compute model must keep matching the paper's measured
	// IBA times within 2%.
	cases := []struct {
		name  string
		procs int
		want  float64
	}{
		{"IS", 8, 1.78}, {"MG", 8, 5.81}, {"S3D-50", 8, 3.59}, {"FT", 8, 37.92},
	}
	for _, c := range cases {
		a, _ := ByName(c.name)
		res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassB, Procs: c.procs})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Elapsed.Seconds()
		if got < c.want*0.98 || got > c.want*1.02 {
			t.Errorf("%s on %d IBA nodes = %.2fs, paper %.2fs", c.name, c.procs, got, c.want)
		}
	}
}

func TestScalabilityMonotoneClassB(t *testing.T) {
	if testing.Short() {
		t.Skip("class B runs in -short mode")
	}
	for _, name := range []string{"IS", "MG", "S3D-50"} {
		a, _ := ByName(name)
		var prev float64
		for i, procs := range []int{2, 4, 8} {
			res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassB, Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Elapsed.Seconds()
			if i > 0 && got >= prev {
				t.Errorf("%s: time did not decrease from %d to %d procs (%.2f -> %.2f)",
					name, procs/2, procs, prev, got)
			}
			prev = got
		}
	}
}

func TestSMPModeRuns(t *testing.T) {
	// 16 processes on 8 nodes, block mapping (the Figure 25 configuration).
	for _, name := range []string{"CG", "LU", "S3D-50"} {
		a, _ := ByName(name)
		res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassS, Procs: 16, ProcsPerNode: 2})
		if err != nil {
			t.Fatalf("%s SMP: %v", name, err)
		}
		// Block mapping must produce intra-node traffic (Table 6).
		if res.Profile.IntraCalls == 0 {
			t.Errorf("%s SMP: no intra-node communication recorded", name)
		}
	}
}

func TestDeterministicElapsed(t *testing.T) {
	a, _ := ByName("MG")
	run := func() Result {
		res, err := a.Run(RunConfig{Platform: cluster.Myri(), Class: ClassS, Procs: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("non-deterministic: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
}

func TestGridHelpers(t *testing.T) {
	cases := []struct{ p, rows, cols int }{
		{2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {6, 2, 3},
	}
	for _, c := range cases {
		r, co := grid2(c.p)
		if r != c.rows || co != c.cols {
			t.Errorf("grid2(%d) = %dx%d, want %dx%d", c.p, r, co, c.rows, c.cols)
		}
		if r*co != c.p {
			t.Errorf("grid2(%d) does not cover", c.p)
		}
	}
	for _, p := range []int{1, 2, 4, 8, 16, 12} {
		x, y, z := grid3(p)
		if x*y*z != p {
			t.Errorf("grid3(%d) = %d*%d*%d", p, x, y, z)
		}
	}
}

func TestShapeFor(t *testing.T) {
	c := calibration{workSeconds: 8, shape: map[int]float64{2: 1.0, 8: 0.8}}
	if c.shapeFor(2) != 1.0 || c.shapeFor(8) != 0.8 {
		t.Fatal("exact lookups failed")
	}
	if c.shapeFor(4) != 1.0 {
		t.Fatalf("shapeFor(4) = %v, want nearest smaller (1.0)", c.shapeFor(4))
	}
	if c.shapeFor(16) != 0.8 {
		t.Fatalf("shapeFor(16) = %v, want 0.8", c.shapeFor(16))
	}
	if (calibration{}).shapeFor(4) != 1.0 {
		t.Fatal("empty shape should default to 1.0")
	}
}
