package apps

import (
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// FT is the NAS 3D FFT kernel: each iteration performs local 1D FFTs and a
// global transpose — an Alltoall moving this rank's entire slab (tens of MB
// per call, the >1M entries of Table 1). Purely bandwidth-bound collective
// traffic; with IS, the workload where InfiniBand's bandwidth advantage
// shows most.
func FT() *App {
	return &App{
		Name:     "FT",
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.04}
			}
			// Table 2 anchors: 75.50 / 37.92 s on 4 and 8 IBA nodes (FT does
			// not fit on 2 nodes in the paper either).
			return calibration{workSeconds: 292,
				shape: map[int]float64{4: 0.9234, 8: 0.9611}}
		},
		run: runFT,
	}
}

func runFT(r *mpi.Rank, class Class, cal calibration) {
	p := int64(r.Size())
	// Class B: 512 x 256 x 256 complex grid, 16 bytes per point.
	total := int64(512) * 256 * 256 * 16
	iters := 20
	if class == ClassS {
		total = 64 * 32 * 32 * 16
		iters = 3
	}
	slab := total / p
	// The transpose buffer must divide evenly among peers.
	slab = slab / p * p

	send := r.Malloc(slab)
	recv := r.Malloc(slab)
	small := r.Malloc(32)

	perIter := cal.perRankCompute(int(p)) / sim.Time(iters)

	// Setup: parameter broadcasts and two warm-up transposes (the paper's
	// profile shows 22 alltoalls for 20 iterations).
	for i := 0; i < 4; i++ {
		r.Bcast(small, 0)
	}
	r.Alltoall(send, recv)
	r.Alltoall(send, recv)

	for it := 0; it < iters; it++ {
		r.Compute(perIter)
		r.Alltoall(send, recv)
		// Checksum reduction each iteration.
		r.Allreduce(small)
	}
}
