package apps

import (
	"mpinet/internal/memreg"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// CG is the NAS Conjugate Gradient: an unstructured sparse matrix-vector
// kernel on a 2D process grid. Each inner iteration reduces partial vectors
// across the processor row (large messages, halving per stage) and combines
// scalars pairwise (the <2K flood of Table 1). CG's per-rank working set
// drops fast with the partition count — the superlinear speedup of
// Figure 19.
func CG() *App {
	return &App{
		Name:     "CG",
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.02}
			}
			// Table 2 anchors: 132.26 / 81.64 / 28.68 s. The 2x2 grid at 4
			// processes is genuinely less cache-friendly (sublinear step)
			// before the 8-process partition turns superlinear.
			return calibration{workSeconds: 263,
				shape: map[int]float64{2: 0.986, 4: 1.2019, 8: 0.8237}}
		},
		run: runCG,
	}
}

func runCG(r *mpi.Rank, class Class, cal calibration) {
	p := r.Size()
	me := r.Rank()
	na := int64(75000)
	niter, inner := 75, 25
	if class == ClassS {
		na = 1400
		niter, inner = 3, 5
	}
	_, cols := grid2(p)

	transpose := (me + p/2) % p
	rowBase := me - me%cols

	// Row-reduce message size: calibrated to the ~64 KB average Irecv the
	// paper's Table 3 reports for CG.
	exch := na * 32 / (3 * int64(cols))
	out1, in1 := r.Malloc(exch), r.Malloc(exch)
	out2, in2 := r.Malloc(exch/2), r.Malloc(exch/2)
	out3, in3 := r.Malloc(maxI64(exch/4, 8)), r.Malloc(maxI64(exch/4, 8))
	scal, scalIn := r.Malloc(8), r.Malloc(8)

	// CG's non-blocking large exchange: post the receive, blocking send,
	// wait — Table 3 shows CG uses Irecv but never Isend.
	exchange := func(partner, tag int, out, in memreg.Buf) {
		rr := r.Irecv(in, partner, tag)
		r.Send(out, partner, tag)
		r.Wait(rr)
	}

	perStep := cal.perRankCompute(p) / sim.Time(niter*inner)
	for it := 0; it < niter; it++ {
		for s := 0; s < inner; s++ {
			r.Compute(perStep)
			// q = A.p partial-vector reduction: transpose exchange plus
			// halving ring stages across the processor row (CG's 16K-1M
			// traffic).
			exchange(transpose, 1, out1, in1)
			if cols >= 2 {
				next := rowBase + (me-rowBase+1)%cols
				prev := rowBase + (me-rowBase-1+cols)%cols
				rr := r.Irecv(in2, prev, 2)
				r.Send(out2, next, 2)
				r.Wait(rr)
			}
			if cols >= 4 {
				next := rowBase + (me-rowBase+2)%cols
				prev := rowBase + (me-rowBase-2+cols)%cols
				rr := r.Irecv(in3, prev, 3)
				r.Send(out3, next, 3)
				r.Wait(rr)
			}
			// Scalar dot-product combines: pairwise small exchanges.
			for k := 0; k < 4; k++ {
				partner := me ^ (1 << uint(k%3))
				if partner < p {
					exchange(partner, 7+k, scal, scalIn)
				}
			}
		}
	}
	// Final residual norms.
	r.Allreduce(scal)
	r.Allreduce(scal)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
