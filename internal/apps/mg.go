package apps

import (
	"mpinet/internal/memreg"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// MG is the NAS Multi-Grid kernel: V-cycles over a hierarchy of 3D grids on
// a 3D process decomposition. Every level exchanges ghost faces along the
// three axes; face sizes shrink fourfold per level, which is why MG's
// traffic spans all of Table 1's size classes. Like CG it speeds up
// superlinearly thanks to shrinking per-rank working sets.
func MG() *App {
	return &App{
		Name:     "MG",
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.02}
			}
			// Table 2 anchors: 23.60 / 13.41 / 5.81 s.
			return calibration{workSeconds: 46.8,
				shape: map[int]float64{2: 0.9895, 4: 1.1068, 8: 0.9320}}
		},
		run: runMG,
	}
}

func runMG(r *mpi.Rank, class Class, cal calibration) {
	p := r.Size()
	me := r.Rank()
	n := int64(256)
	iters := 20
	if class == ClassS {
		n = 32
		iters = 3
	}
	px, py, pz := grid3(p)
	// This rank's coordinates in the process grid.
	mx := me % px
	my := (me / px) % py
	mz := me / (px * py)

	// Local extents at the finest level.
	lx := ceilDiv(n, int64(px))
	ly := ceilDiv(n, int64(py))
	lz := ceilDiv(n, int64(pz))

	levels := 0
	for d := n; d >= 4; d /= 2 {
		levels++
	}

	// Pre-allocate ghost-face buffers per level and axis (persistent, as
	// the real code's comm buffers are).
	type faces struct{ out, in [3]memreg.Buf }
	bufs := make([]faces, levels)
	for l := 0; l < levels; l++ {
		shift := int64(1) << uint(l)
		dx, dy, dz := maxI64(lx/shift, 1), maxI64(ly/shift, 1), maxI64(lz/shift, 1)
		sizes := [3]int64{dy * dz * 8, dx * dz * 8, dx * dy * 8}
		for a := 0; a < 3; a++ {
			bufs[l].out[a] = r.Malloc(sizes[a])
			bufs[l].in[a] = r.Malloc(sizes[a])
		}
	}
	small := r.Malloc(8)

	neighbor := func(axis, dir int) int {
		switch axis {
		case 0:
			if px == 1 {
				return -1
			}
			return ((mx+dir+px)%px + my*px + mz*px*py)
		case 1:
			if py == 1 {
				return -1
			}
			return (mx + ((my+dir+py)%py)*px + mz*px*py)
		default:
			if pz == 1 {
				return -1
			}
			return (mx + my*px + ((mz+dir+pz)%pz)*px*py)
		}
	}

	// One ghost-cell exchange round at level l: both directions of each
	// decomposed axis, receives posted first (the NPB comm3 pattern).
	exchange := func(l int) {
		for axis := 0; axis < 3; axis++ {
			up := neighbor(axis, 1)
			down := neighbor(axis, -1)
			if up < 0 || down < 0 {
				continue
			}
			tag := 20 + axis
			rr1 := r.Irecv(bufs[l].in[axis], down, tag)
			r.Send(bufs[l].out[axis], up, tag)
			r.Wait(rr1)
			rr2 := r.Irecv(bufs[l].in[axis], up, tag+3)
			r.Send(bufs[l].out[axis], down, tag+3)
			r.Wait(rr2)
		}
	}

	// The smoother/residual/restrict/prolongate operators each end in a
	// ghost exchange; almost all of them run at the two finest levels
	// (7/8 of the points live in the finest grid). Round counts are set so
	// an interior rank's Table 1 profile matches the paper's.
	rounds := func(l int) int {
		if l < 2 {
			return 7
		}
		return 2
	}
	// Work is concentrated at the fine levels; charge compute with a
	// 4^-level weighting.
	totalSteps := 0
	for l := 0; l < levels; l++ {
		totalSteps += 1 << uint(2*(levels-1-l))
	}
	perUnit := cal.perRankCompute(p) / sim.Time(iters*totalSteps)

	r.Bcast(small, 0) // setup parameters
	for it := 0; it < iters; it++ {
		// One V-cycle: visit every level, exchanging ghosts around each
		// operator application.
		for l := 0; l < levels; l++ {
			r.Compute(perUnit * sim.Time(1<<uint(2*(levels-1-l))))
			for k := 0; k < rounds(l); k++ {
				exchange(l)
			}
		}
		// Residual norm.
		r.Allreduce(small)
	}
	r.Allreduce(small)
}
