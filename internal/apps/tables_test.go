package apps

// Paper-anchored tests for the application profile tables (class B). Each
// asserts the simulated profile against the corresponding row of the
// paper's Tables 1/3/4/5/6, with tolerances reflecting how exactly the
// skeleton reproduces the published counts (several rows are exact).

import (
	"testing"

	"mpinet/internal/cluster"
)

// classBMemo caches class B runs across the table tests (they all profile
// the same configurations).
var classBMemo = map[[3]interface{}]Result{}

func classBResult(t *testing.T, name string, procs, ppn int) Result {
	t.Helper()
	key := [3]interface{}{name, procs, ppn}
	if res, ok := classBMemo[key]; ok {
		return res
	}
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(RunConfig{Platform: cluster.IBA(), Class: ClassB, Procs: procs, ProcsPerNode: ppn})
	if err != nil {
		t.Fatal(err)
	}
	classBMemo[key] = res
	return res
}

func withinInt(t *testing.T, name string, got, want int64, tolPct float64) {
	t.Helper()
	lo := float64(want) * (1 - tolPct/100)
	hi := float64(want) * (1 + tolPct/100)
	if float64(got) < lo || float64(got) > hi {
		t.Errorf("%s = %d, paper %d (±%.0f%%)", name, got, want, tolPct)
	}
}

func TestTable1Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("class B")
	}
	// (app, procs, class index, paper count, tolerance %)
	cases := []struct {
		app    string
		procs  int
		class  int
		paper  int64
		tolPct float64
	}{
		{"IS", 8, 0, 14, 0}, {"IS", 8, 1, 11, 0}, {"IS", 8, 3, 11, 0},
		{"FT", 8, 0, 24, 0}, {"FT", 8, 3, 22, 0},
		{"LU", 8, 0, 100021, 3},
		{"CG", 8, 0, 16113, 10}, {"CG", 8, 2, 11856, 10},
		{"MG", 8, 2, 3702, 12},
		{"S3D-50", 8, 0, 19236, 1},
		{"S3D-150", 8, 0, 28836, 1}, {"S3D-150", 8, 1, 28800, 1},
		{"SP", 4, 2, 9636, 2},
		{"BT", 4, 2, 4836, 2},
	}
	results := map[string]Result{}
	for _, c := range cases {
		key := c.app
		res, ok := results[key]
		if !ok {
			res = classBResult(t, c.app, c.procs, 1)
			results[key] = res
		}
		withinInt(t, c.app+" "+[4]string{"<2K", "2K-16K", "16K-1M", ">1M"}[c.class],
			res.PerRank.SizeHist[c.class], c.paper, c.tolPct)
	}
}

func TestTable3Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("class B")
	}
	sp := classBResult(t, "SP", 4, 1).PerRank
	withinInt(t, "SP isend count", sp.IsendCalls, 4818, 2)
	withinInt(t, "SP isend avg size", sp.AvgIsendSize(), 263970, 5)
	bt := classBResult(t, "BT", 4, 1).PerRank
	withinInt(t, "BT isend count", bt.IsendCalls, 2418, 2)
	withinInt(t, "BT isend avg size", bt.AvgIsendSize(), 293108, 5)
	lu := classBResult(t, "LU", 8, 1).PerRank
	withinInt(t, "LU irecv count", lu.IrecvCalls, 508, 5)
	withinInt(t, "LU irecv avg size", lu.AvgIrecvSize(), 311692, 5)
	cg := classBResult(t, "CG", 8, 1).PerRank
	withinInt(t, "CG irecv count", cg.IrecvCalls, 13984, 10)
	mg := classBResult(t, "MG", 8, 1).PerRank
	withinInt(t, "MG irecv count", mg.IrecvCalls, 2922, 5)
	// FT and sweep3D use no non-blocking calls at all.
	for _, name := range []string{"FT", "S3D-50"} {
		pr := classBResult(t, name, 8, 1).PerRank
		if pr.IsendCalls != 0 || pr.IrecvCalls != 0 {
			t.Errorf("%s uses non-blocking calls (%d/%d), paper says none",
				name, pr.IsendCalls, pr.IrecvCalls)
		}
	}
}

func TestTable4Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("class B")
	}
	// IS and FT are the low-reuse workloads; everything else ≥ 99.8%.
	for _, c := range []struct {
		app      string
		procs    int
		min, max float64
	}{
		{"IS", 8, 0.75, 0.95}, // paper 81.08
		{"FT", 8, 0.80, 0.99}, // paper 86.00
		{"CG", 8, 0.998, 1.0},
		{"LU", 8, 0.998, 1.0},
		{"SP", 4, 0.998, 1.0},
		{"S3D-150", 8, 0.998, 1.0},
	} {
		got := classBResult(t, c.app, c.procs, 1).PerRank.ReuseRate()
		if got < c.min || got > c.max {
			t.Errorf("%s reuse rate = %.4f, want [%.3f, %.3f]", c.app, got, c.min, c.max)
		}
	}
}

func TestTable5Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("class B")
	}
	for _, c := range []struct {
		app    string
		procs  int
		paper  int64
		tolPct float64
	}{
		{"IS", 8, 35, 5},      // ours 36
		{"FT", 8, 47, 5},      // ours 46
		{"SP", 4, 11, 0},      // exact
		{"BT", 4, 11, 0},      // exact
		{"S3D-50", 8, 39, 6},  // ours 37
		{"S3D-150", 8, 39, 6}, // ours 37
		{"CG", 8, 2, 0},       // exact
	} {
		got := classBResult(t, c.app, c.procs, 1).PerRank.CollCalls
		withinInt(t, c.app+" collective calls", got, c.paper, c.tolPct)
	}
	// IS and FT move essentially all volume collectively.
	for _, name := range []string{"IS", "FT"} {
		pr := classBResult(t, name, 8, 1).PerRank
		if pr.CollectiveVolumeShare() < 0.999 {
			t.Errorf("%s collective volume share = %.4f", name, pr.CollectiveVolumeShare())
		}
	}
}

func TestTable6Anchors(t *testing.T) {
	if testing.Short() {
		t.Skip("class B")
	}
	// 16 processes on 8 nodes, block mapping.
	s3d := classBResult(t, "S3D-50", 16, 2).Profile
	withinInt(t, "S3D-50 intra calls", s3d.IntraCalls, 153600, 0) // exact in the paper too
	lu := classBResult(t, "LU", 16, 2).Profile
	withinInt(t, "LU intra calls", lu.IntraCalls, 804044, 5)
	if share := lu.IntraNodeCallShare(); share < 0.30 || share > 0.37 {
		t.Errorf("LU intra call share = %.4f, paper 33.16%%", share)
	}
	cg := classBResult(t, "CG", 16, 2).Profile
	withinInt(t, "CG intra calls", cg.IntraCalls, 192128, 25)
	ft := classBResult(t, "FT", 16, 2).Profile
	if ft.IntraCalls != 0 {
		t.Errorf("FT intra calls = %d, paper 0", ft.IntraCalls)
	}
}
