package apps

import (
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// IS is the NAS Integer Sort: a bucket sort whose communication is almost
// entirely collective — a small Allreduce of bucket counts, an Alltoall of
// send counts, and an Alltoallv moving every key to its destination bucket
// owner (the >1 MB calls of Table 1). The paper's most bandwidth-bound
// workload, and the one where InfiniBand wins biggest (28-38% on 8 nodes).
func IS() *App {
	return &App{
		Name:     "IS",
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.02}
			}
			// Table 2 anchors (IBA column): 6.73 / 3.30 / 1.78 s.
			return calibration{workSeconds: 12.6,
				shape: map[int]float64{2: 0.892, 4: 0.825, 8: 0.898}}
		},
		run: runIS,
	}
}

func runIS(r *mpi.Rank, class Class, cal calibration) {
	p := int64(r.Size())
	keys := int64(1) << 25 // class B: 2^25 keys
	buckets := int64(1024)
	iters := 10
	if class == ClassS {
		keys = 1 << 16
		buckets = 256
		iters = 3
	}
	keyBytes := keys * 4
	perRank := keyBytes / p

	bucketBuf := r.Malloc(buckets * 4)
	countSend := r.Malloc(p * 4)
	countRecv := r.Malloc(p * 4)
	keySend := r.Malloc(perRank)
	keyRecv := r.Malloc(perRank)
	small := r.Malloc(8)

	counts := make([]int64, p)
	for i := range counts {
		counts[i] = perRank / p
	}

	perIter := cal.perRankCompute(int(p)) / sim.Time(iters+1)
	// 10 timed iterations plus the untimed warm-up ranking the paper's
	// profile shows as the 11th call set.
	for it := 0; it <= iters; it++ {
		r.Compute(perIter)
		r.Allreduce(bucketBuf)           // bucket size totals (2K-16K class)
		r.Alltoall(countSend, countRecv) // per-peer key counts (<2K)
		r.Alltoallv(keySend, keyRecv, counts, counts)
	}
	// Full verification: three small reductions.
	for i := 0; i < 3; i++ {
		r.Allreduce(small)
	}
}
