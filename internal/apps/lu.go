package apps

import (
	"mpinet/internal/memreg"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// LU is the NAS LU-decomposition application benchmark: an SSOR solver that
// sweeps wavefronts of k-planes across a 2D process grid. Each plane moves
// two tiny boundary messages (the ~2 KB flood that makes LU the paper's
// most latency-bound workload, 100k+ point-to-point calls per rank), plus a
// pair of large non-blocking face exchanges per time step. Because almost
// all messages are small, the paper finds the three interconnects closest
// on LU.
func LU() *App {
	return &App{
		Name:     "LU",
		MinProcs: 2,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.05}
			}
			// Table 2 anchors: 648.53 / 319.57 / 165.53 s.
			return calibration{workSeconds: 1293,
				shape: map[int]float64{2: 0.9929, 4: 0.9678, 8: 0.9824}}
		},
		run: runLU,
	}
}

func runLU(r *mpi.Rank, class Class, cal calibration) {
	p := r.Size()
	me := r.Rank()
	n := int64(102)
	itmax := 250
	if class == ClassS {
		n = 12
		itmax = 4
	}
	rows, cols := grid2(p)
	row := me / cols
	col := me % cols

	nxl := ceilDiv(n, int64(rows)) // x-extent of this rank's block
	nyl := ceilDiv(n, int64(cols)) // y-extent

	// Wavefront boundary planes: 5 doubles per boundary cell.
	nsMsg := 5 * nxl * 8 // crosses a row boundary
	ewMsg := 5 * nyl * 8 // crosses a column boundary
	nsOut, nsIn := r.Malloc(nsMsg), r.Malloc(nsMsg)
	ewOut, ewIn := r.Malloc(ewMsg), r.Malloc(ewMsg)
	// exchange_3 full-face buffers (the ~300 KB Irecvs of Table 3): three
	// boundary arrays of 5-vectors over a full y-z face east-west, plus the
	// matching x-z faces north-south.
	faceMsg := 15 * nyl * n * 8
	faceOut, faceIn := r.Malloc(faceMsg), r.Malloc(faceMsg)
	faceNSMsg := 7 * nxl * n * 8
	faceNSOut, faceNSIn := r.Malloc(faceNSMsg), r.Malloc(faceNSMsg)
	small := r.Malloc(8)

	north := func() int {
		if row == 0 {
			return -1
		}
		return me - cols
	}
	south := func() int {
		if row == rows-1 {
			return -1
		}
		return me + cols
	}
	west := func() int {
		if col == 0 {
			return -1
		}
		return me - 1
	}
	east := func() int {
		if col == cols-1 {
			return -1
		}
		return me + 1
	}

	perPlane := cal.perRankCompute(p) / sim.Time(itmax*2*int(n))

	// Setup broadcasts (grid parameters, as the real code does).
	for i := 0; i < 8; i++ {
		r.Bcast(small, 0)
	}

	for it := 0; it < itmax; it++ {
		// Lower-triangular sweep: the wavefront enters at the north-west
		// corner; each k-plane receives upstream boundaries, computes, and
		// forwards downstream. Blocking receives serialize ranks into the
		// pipeline the paper (and the LU literature) describes.
		for k := int64(0); k < n; k++ {
			if nb := north(); nb >= 0 {
				r.Recv(nsIn, nb, 100)
			}
			if wb := west(); wb >= 0 {
				r.Recv(ewIn, wb, 101)
			}
			r.Compute(perPlane)
			if sb := south(); sb >= 0 {
				r.Send(nsOut, sb, 100)
			}
			if eb := east(); eb >= 0 {
				r.Send(ewOut, eb, 101)
			}
		}
		// Upper-triangular sweep: reversed direction.
		for k := int64(0); k < n; k++ {
			if sb := south(); sb >= 0 {
				r.Recv(nsIn, sb, 102)
			}
			if eb := east(); eb >= 0 {
				r.Recv(ewIn, eb, 103)
			}
			r.Compute(perPlane)
			if nb := north(); nb >= 0 {
				r.Send(nsOut, nb, 102)
			}
			if wb := west(); wb >= 0 {
				r.Send(ewOut, wb, 103)
			}
		}
		// exchange_3: large non-blocking face swaps with the east/west and
		// north/south neighbors (each exists only off the grid edge).
		swap := func(out, in memreg.Buf, fwd, back, tag int) {
			var rr *mpi.Request
			if back >= 0 {
				rr = r.Irecv(in, back, tag)
			}
			if fwd >= 0 {
				r.Send(out, fwd, tag)
			}
			if rr != nil {
				r.Wait(rr)
			}
			if fwd >= 0 {
				rr = r.Irecv(in, fwd, tag+1)
			} else {
				rr = nil
			}
			if back >= 0 {
				r.Send(out, back, tag+1)
			}
			if rr != nil {
				r.Wait(rr)
			}
		}
		swap(faceOut, faceIn, east(), west(), 104)
		swap(faceNSOut, faceNSIn, south(), north(), 106)
	}
	// Final residual norms.
	r.Allreduce(small)
	r.Allreduce(small)
}
