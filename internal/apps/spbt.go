package apps

import (
	"fmt"

	"mpinet/internal/mpi"
	"mpinet/internal/sim"
)

// SP and BT are the NAS multi-partition application benchmarks: ADI-style
// solvers that sweep the three coordinate directions each time step,
// exchanging large faces with grid neighbors through paired Isend/Irecv
// (Table 3: they are the only two workloads using non-blocking sends, at
// ~260-290 KB average). The large non-blocking traffic is what lets
// Quadrics' NIC-progressed rendezvous close the gap on these two codes
// (Figure 15).
func SP() *App { return multiPartition("SP", 400, 2420, 253) }

// BT is the block-tridiagonal variant of the multi-partition pattern; see SP.
func BT() *App { return multiPartition("BT", 200, 3180, 287) }

func multiPartition(name string, steps int, workB float64, faceKB int64) *App {
	return &App{
		Name:        name,
		SquareProcs: true,
		MinProcs:    4,
		cal: func(class Class) calibration {
			if class == ClassS {
				return calibration{workSeconds: 0.05}
			}
			return calibration{workSeconds: workB}
		},
		run: func(r *mpi.Rank, class Class, cal calibration) {
			runMultiPartition(r, class, cal, steps, faceKB)
		},
	}
}

func runMultiPartition(r *mpi.Rank, class Class, cal calibration, steps int, faceKB int64) {
	p := r.Size()
	me := r.Rank()
	sq := 1
	for sq*sq < p {
		sq++
	}
	if sq*sq != p {
		panic(fmt.Sprintf("apps: %d is not square", p))
	}
	row := me / sq
	col := me % sq

	face := faceKB * 1024
	if class == ClassS {
		face = 4 * 1024
		steps = 6
	}
	outE, inW := r.Malloc(face), r.Malloc(face)
	outS, inN := r.Malloc(face), r.Malloc(face)
	small := r.Malloc(8)

	perPhase := cal.perRankCompute(p) / sim.Time(steps*6)

	for i := 0; i < 6; i++ {
		r.Bcast(small, 0)
	}
	// The multi-partition scheme shifts faces cyclically along row and
	// column communicators of the process square.
	rowComm := r.CommWorld().Split(row, col)
	colComm := r.CommWorld().Split(col, row)
	rowEast := (rowComm.Rank() + 1) % rowComm.Size()
	rowWest := (rowComm.Rank() - 1 + rowComm.Size()) % rowComm.Size()
	colSouth := (colComm.Rank() + 1) % colComm.Size()
	colNorth := (colComm.Rank() - 1 + colComm.Size()) % colComm.Size()

	for step := 0; step < steps; step++ {
		// Three directional sweeps; each does two substeps of compute +
		// non-blocking face shift (x and y decomposed; z local).
		for sweep := 0; sweep < 3; sweep++ {
			for phase := 0; phase < 2; phase++ {
				r.Compute(perPhase)
				rr1 := rowComm.Irecv(inW, rowWest, 30+sweep)
				sr1 := rowComm.Isend(outE, rowEast, 30+sweep)
				rr2 := colComm.Irecv(inN, colNorth, 40+sweep)
				sr2 := colComm.Isend(outS, colSouth, 40+sweep)
				r.Waitall(sr1, sr2, rr1, rr2)
			}
		}
	}
	r.Allreduce(small)
	r.Allreduce(small)
	r.Allreduce(small)
}
