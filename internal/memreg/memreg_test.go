package memreg

import (
	"testing"
	"testing/quick"

	"mpinet/internal/units"
)

func TestAllocNonOverlapping(t *testing.T) {
	a := NewAddressSpace()
	b1 := a.Alloc(100)
	b2 := a.Alloc(5000)
	b3 := a.Alloc(0)
	if b1.End() > b2.Addr || b2.End() > b3.Addr {
		t.Fatalf("overlapping buffers: %v %v %v", b1, b2, b3)
	}
	if b1.Addr%PageSize != 0 || b2.Addr%PageSize != 0 {
		t.Fatalf("unaligned buffers: %v %v", b1, b2)
	}
}

func TestBufPages(t *testing.T) {
	cases := []struct {
		addr, size  int64
		first, want int64
	}{
		{0, 1, 0, 1},
		{0, PageSize, 0, 1},
		{0, PageSize + 1, 0, 2},
		{PageSize, 2 * PageSize, 1, 2},
		{100, PageSize, 0, 2}, // straddles
		{100, 0, 0, 0},
	}
	for _, c := range cases {
		first, n := Buf{Addr: c.addr, Size: c.size}.Pages()
		if first != c.first || n != c.want {
			t.Errorf("Pages(%d,%d) = (%d,%d), want (%d,%d)", c.addr, c.size, first, n, c.first, c.want)
		}
	}
}

func TestBufSliceBounds(t *testing.T) {
	b := Buf{Addr: 4096, Size: 100}
	s := b.Slice(10, 50)
	if s.Addr != 4106 || s.Size != 50 {
		t.Fatalf("Slice = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	b.Slice(60, 50)
}

func TestPinCacheHitFree(t *testing.T) {
	reg := CostModel{PerOp: 10 * units.Microsecond, PerPage: units.Microsecond}
	c := NewPinCache(reg, CostModel{}, 0)
	b := Buf{Addr: 0, Size: 4 * PageSize}
	t1 := c.Acquire(b)
	if want := 10*units.Microsecond + 4*units.Microsecond; t1 != want {
		t.Fatalf("first acquire cost %v, want %v", t1, want)
	}
	if t2 := c.Acquire(b); t2 != 0 {
		t.Fatalf("second acquire cost %v, want 0", t2)
	}
	if !c.Resident(b) {
		t.Fatal("buffer not resident after acquire")
	}
	if c.Hits != 4 || c.Misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 4/4", c.Hits, c.Misses)
	}
}

func TestPinCachePartialOverlap(t *testing.T) {
	reg := CostModel{PerOp: 10 * units.Microsecond, PerPage: units.Microsecond}
	c := NewPinCache(reg, CostModel{}, 0)
	c.Acquire(Buf{Addr: 0, Size: 2 * PageSize})
	// Pages 0-1 resident; acquiring 0-3 should only pay for 2 new pages.
	got := c.Acquire(Buf{Addr: 0, Size: 4 * PageSize})
	if want := 10*units.Microsecond + 2*units.Microsecond; got != want {
		t.Fatalf("partial acquire cost %v, want %v", got, want)
	}
}

func TestPinCacheLRUEviction(t *testing.T) {
	reg := CostModel{PerPage: units.Microsecond}
	dereg := CostModel{PerPage: units.Microsecond / 2}
	c := NewPinCache(reg, dereg, 4)
	b1 := Buf{Addr: 0, Size: 2 * PageSize}
	b2 := Buf{Addr: 2 * PageSize, Size: 2 * PageSize}
	b3 := Buf{Addr: 4 * PageSize, Size: 2 * PageSize}
	c.Acquire(b1)
	c.Acquire(b2)
	c.Acquire(b1) // refresh b1 so b2 is LRU
	c.Acquire(b3) // evicts b2's pages
	if !c.Resident(b1) || !c.Resident(b3) {
		t.Fatal("recently used buffers evicted")
	}
	if c.Resident(b2) {
		t.Fatal("LRU buffer not evicted")
	}
	if c.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions)
	}
	if c.Pages() != 4 {
		t.Fatalf("resident pages = %d, want capacity 4", c.Pages())
	}
}

func TestCostModelZeroPages(t *testing.T) {
	cm := CostModel{PerOp: units.Microsecond, PerPage: units.Microsecond}
	if cm.Cost(0) != 0 {
		t.Fatal("zero pages should cost nothing")
	}
}

// Property: cache never exceeds capacity; re-acquiring the last-used buffer
// is always free.
func TestPinCacheProperties(t *testing.T) {
	f := func(addrs []uint16, sizes []uint16) bool {
		c := NewPinCache(CostModel{PerPage: 1}, CostModel{}, 64)
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			b := Buf{Addr: int64(addrs[i]) * PageSize, Size: int64(sizes[i]%16+1) * PageSize}
			c.Acquire(b)
			if c.Pages() > 64 {
				return false
			}
			if c.Acquire(b) != 0 { // immediate reuse must hit
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceInUse(t *testing.T) {
	a := NewAddressSpace()
	a.Alloc(PageSize)
	a.Alloc(1)
	if got := a.InUse(); got != 2*PageSize {
		t.Fatalf("InUse = %d, want %d", got, 2*PageSize)
	}
}
