// Package memreg models process address spaces and the memory-registration
// machinery of user-level networking.
//
// InfiniBand (VAPI) and Myrinet (GM) require communication buffers to be
// registered (pinned + translated) before the NIC may DMA them; MPI
// implementations amortize this with a pin-down cache that registers on
// first use and deregisters lazily. Quadrics (Elan3) needs no explicit
// registration, but its NIC-resident MMU must hold translations for the
// pages it touches, and synchronizing the MMU table costs host time on first
// touch. Both mechanisms make performance sensitive to the application's
// buffer-reuse pattern — the effect behind Figures 7 and 8 of the paper.
package memreg

import (
	"fmt"

	"mpinet/internal/units"
)

// PageSize is the host page size (bytes); both registration and MMU costs
// are per-page.
const PageSize int64 = 4096

// Buf identifies a contiguous region of a process's virtual address space.
// Simulated payloads carry no bytes — identity (address) and extent are what
// the models need.
type Buf struct {
	Addr int64
	Size int64
}

// End returns the first address past the buffer.
func (b Buf) End() int64 { return b.Addr + b.Size }

// Slice returns the sub-buffer [off, off+size).
func (b Buf) Slice(off, size int64) Buf {
	if off < 0 || size < 0 || off+size > b.Size {
		panic(fmt.Sprintf("memreg: slice [%d,%d) out of buffer of size %d", off, off+size, b.Size))
	}
	return Buf{Addr: b.Addr + off, Size: size}
}

// Pages returns the page numbers spanned by the buffer.
func (b Buf) Pages() (first, count int64) {
	if b.Size == 0 {
		return b.Addr / PageSize, 0
	}
	first = b.Addr / PageSize
	last := (b.End() - 1) / PageSize
	return first, last - first + 1
}

// String implements fmt.Stringer.
func (b Buf) String() string {
	return fmt.Sprintf("[0x%x,+%s)", b.Addr, units.SizeString(b.Size))
}

// AddressSpace is a bump allocator handing out non-overlapping buffers, page
// aligned. One per simulated process.
type AddressSpace struct {
	next int64
}

// NewAddressSpace returns an allocator starting at a non-zero base so that
// a zero Buf is recognizably "no buffer".
func NewAddressSpace() *AddressSpace { return &AddressSpace{next: 1 << 20} }

// Alloc returns a fresh page-aligned buffer of the given size.
func (a *AddressSpace) Alloc(size int64) Buf {
	if size < 0 {
		panic("memreg: negative allocation")
	}
	addr := a.next
	span := (size + PageSize - 1) / PageSize * PageSize
	if span == 0 {
		span = PageSize
	}
	a.next += span
	return Buf{Addr: addr, Size: size}
}

// InUse reports the total address range handed out, an upper bound on the
// process's data footprint.
func (a *AddressSpace) InUse() int64 { return a.next - 1<<20 }

// CostModel gives the host-time price of mapping pages into NIC-visible
// state: a fixed per-operation cost plus a per-page cost.
type CostModel struct {
	PerOp   units.Time
	PerPage units.Time
}

// Cost returns the price of an operation covering n pages.
func (c CostModel) Cost(pages int64) units.Time {
	if pages == 0 {
		return 0
	}
	return c.PerOp + units.Time(pages)*c.PerPage
}

// PinCache models a registration (pin-down) cache: a set of registered page
// ranges with LRU eviction by page count. Acquire returns the host time
// spent registering whatever part of the buffer was not already resident.
//
// The same structure models the Elan NIC MMU: "registration" is then the
// host's MMU-table synchronization.
type PinCache struct {
	reg      CostModel
	dereg    CostModel
	capacity int64 // max resident pages; 0 = unlimited
	resident map[int64]*pageNode
	lruHead  *pageNode // most recent
	lruTail  *pageNode // least recent
	npages   int64

	// Stats
	Hits, Misses int64
	Evictions    int64
	RegTime      units.Time
}

type pageNode struct {
	page       int64
	prev, next *pageNode
}

// NewPinCache returns a cache with the given registration/deregistration
// cost models and a capacity in pages (0 = unbounded).
func NewPinCache(reg, dereg CostModel, capacityPages int64) *PinCache {
	return &PinCache{
		reg:      reg,
		dereg:    dereg,
		capacity: capacityPages,
		resident: make(map[int64]*pageNode),
	}
}

// Acquire makes the buffer's pages NIC-visible and returns the host time the
// calling process must burn doing so. Pages already resident are free (a
// cache hit) and refreshed in the LRU order.
func (c *PinCache) Acquire(b Buf) units.Time {
	first, count := b.Pages()
	var missing int64
	for p := first; p < first+count; p++ {
		if n, ok := c.resident[p]; ok {
			c.touch(n)
			c.Hits++
			continue
		}
		c.Misses++
		missing++
		c.insert(p)
	}
	var t units.Time
	if missing > 0 {
		t += c.reg.Cost(missing)
	}
	// Evict over capacity (lazy deregistration): the evicted pages are
	// deregistered now, billed to the caller, as MVAPICH/MPICH-GM do when
	// the cache overflows.
	var evicted int64
	for c.capacity > 0 && c.npages > c.capacity {
		c.evictOldest()
		evicted++
	}
	if evicted > 0 {
		t += c.dereg.Cost(evicted)
	}
	c.RegTime += t
	return t
}

// Resident reports whether every page of b is currently registered.
func (c *PinCache) Resident(b Buf) bool {
	first, count := b.Pages()
	for p := first; p < first+count; p++ {
		if _, ok := c.resident[p]; !ok {
			return false
		}
	}
	return true
}

// Pages reports the number of currently resident pages.
func (c *PinCache) Pages() int64 { return c.npages }

func (c *PinCache) insert(page int64) {
	n := &pageNode{page: page}
	c.resident[page] = n
	c.pushFront(n)
	c.npages++
}

func (c *PinCache) touch(n *pageNode) {
	c.unlink(n)
	c.pushFront(n)
}

func (c *PinCache) evictOldest() {
	n := c.lruTail
	if n == nil {
		return
	}
	c.unlink(n)
	delete(c.resident, n.page)
	c.npages--
	c.Evictions++
}

func (c *PinCache) pushFront(n *pageNode) {
	n.prev = nil
	n.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = n
	}
	c.lruHead = n
	if c.lruTail == nil {
		c.lruTail = n
	}
}

func (c *PinCache) unlink(n *pageNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
}
