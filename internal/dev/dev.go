// Package dev defines the service-provider interface between the MPI
// library and an interconnect model — the simulation analogue of MPICH's
// ADI2/Channel boundary.
//
// The MPI point-to-point engine (internal/mpi) implements the eager and
// rendezvous protocols once; each interconnect (internal/verbs, internal/gm,
// internal/elan) supplies an Endpoint that prices host participation,
// registration, and wire movement according to its hardware. Everything that
// differentiates the three MPI implementations in the paper enters through
// this interface:
//
//   - host overheads (Figure 3) via SendOverhead/RecvOverhead,
//   - protocol switch points (Figures 1, 2, 7, 8) via EagerThreshold,
//   - registration / NIC-MMU cost (Figures 7, 8) via AcquireBuf and
//     AcquireOnEager,
//   - NIC-driven rendezvous progress (Figure 6) via NICProgress,
//   - command-queue backpressure (Figure 2's Quadrics window-16 sag) via
//     IssueStall,
//   - per-connection memory (Figure 13) via MemoryUsage,
//   - the intra-node channel policy (Figures 9, 10, 25) via ShmemBelow.
package dev

import (
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
)

// Endpoint is one process's attachment to an interconnect. Endpoints on the
// same node share that node's NIC, bus and link hardware, so contention
// between co-located processes is modelled for free.
type Endpoint interface {
	// Node returns the index of the node this endpoint lives on.
	Node() int

	// EagerThreshold is the largest payload sent by the eager protocol;
	// larger messages use rendezvous.
	EagerThreshold() int64

	// SendOverhead is the host CPU time consumed initiating a send of the
	// given size (descriptor build, doorbell, library bookkeeping).
	SendOverhead(size int64) sim.Time

	// RecvOverhead is the host CPU time consumed completing (matching,
	// unpacking bookkeeping) a receive of the given size.
	RecvOverhead(size int64) sim.Time

	// CopyTime is the host time to memcpy size bytes between a user buffer
	// and pre-registered staging (the eager path's copies).
	CopyTime(size int64) sim.Time

	// AcquireBuf makes a user buffer usable by the NIC (registration for
	// VAPI/GM, MMU-table synchronization for Elan) and returns the host
	// time it cost. Warm buffers cost zero.
	AcquireBuf(b memreg.Buf) sim.Time

	// AcquireOnEager reports whether AcquireBuf applies to eager-path
	// buffers too (true for Elan, whose NIC reads user memory directly even
	// for small messages; false for VAPI/GM, whose eager path copies
	// through pre-registered staging).
	AcquireOnEager() bool

	// NICProgress reports whether the NIC advances the rendezvous protocol
	// without host involvement (true for Elan/Tports).
	NICProgress() bool

	// IssueStall returns host stall time required before issuing the next
	// NIC operation (command-queue backpressure), possibly zero.
	IssueStall() sim.Time

	// Eager moves an eager packet (envelope + payload) to the destination
	// node's eager region; deliver fires there when it has landed.
	Eager(dst int, size int64, deliver func())

	// Control moves a small protocol message (RTS/CTS/FIN).
	Control(dst int, deliver func())

	// Bulk moves rendezvous payload zero-copy; deliver fires when the last
	// byte is in the destination user buffer.
	Bulk(dst int, size int64, deliver func())

	// MemoryUsage is the bytes of library+device memory this process
	// consumes when connected to npeers other processes.
	MemoryUsage(npeers int) int64
}

// NICMatcher is implemented by endpoints whose NIC performs message
// matching itself (Quadrics Tports). The NIC walks its table of pending
// entries for every arrival, so delivery is delayed — and the NIC processor
// occupied — in proportion to how many receives are outstanding. This is
// the mechanism behind Quadrics' poor many-to-many (Alltoall) performance
// relative to its excellent ping-pong latency.
type NICMatcher interface {
	// MatchDelay runs cb after the NIC has matched an arrival against
	// pending posted entries.
	MatchDelay(pending int, cb func())
}

// Multicaster is implemented by endpoints whose switch can replicate one
// injected packet stream to every node — the hardware-supported collective
// extension the paper's Section 3.7 announces for InfiniBand. The MPI
// library's Bcast rides it when available.
type Multicaster interface {
	// Multicast pushes size bytes from this endpoint's node to every other
	// node; deliver fires once per destination node as the payload lands.
	Multicast(size int64, deliver func(node int))
}

// Utilization is one hardware resource's cumulative busy time, for
// bottleneck analysis after a run.
type Utilization struct {
	// Resource is the diagnostic name ("iba0/bus", "myri3/lanai", ...).
	Resource string
	// Busy is cumulative service time.
	Busy sim.Time
	// Jobs is the number of jobs served.
	Jobs int64
}

// UtilizationReporter is implemented by networks that expose per-resource
// occupancy accounting.
type UtilizationReporter interface {
	// Utilizations returns a snapshot for every modelled resource, in a
	// stable order.
	Utilizations() []Utilization
}

// Network is a fully wired interconnect instance for a cluster.
type Network interface {
	// Name is the short interconnect name used in reports ("IBA", "Myri",
	// "QSN").
	Name() string

	// Engine returns the simulation engine the hardware is scheduled on.
	Engine() *sim.Engine

	// Nodes returns the number of hosts attached.
	Nodes() int

	// NewEndpoint attaches one more process to the given node.
	NewEndpoint(node int) Endpoint

	// ShmemBelow reports this MPI implementation's intra-node policy:
	// messages strictly smaller than the returned size use the shared-
	// memory channel between co-located ranks; larger ones (and everything,
	// if it returns 0) loop back through the NIC. MVAPICH returns 16 KB,
	// MPICH-GM effectively infinity, Quadrics MPI 0.
	ShmemBelow() int64
}

// LookaheadReporter is implemented by networks that can state a lower bound
// on the simulated latency of any message crossing between nodes — cable
// flight plus the cheapest port logic, with every queueing and protocol
// delay excluded. The sharded scheduler (sim.Sharded) uses it as the
// conservative lookahead for cross-shard edges: no event executed in one
// node domain can affect another sooner than this bound, so domains may
// dispatch a window of that width in parallel. Returning a bound larger
// than the true minimum would break causality (the scheduler trusts it);
// smaller is merely slower.
type LookaheadReporter interface {
	MinLinkLatency() sim.Time
}

// FaultPlanner is implemented by networks wired with a fault-injection
// plan (see internal/faults). The MPI layer uses it to auto-arm its
// per-wait watchdog: a run on a faulty network must end in a typed error,
// never a silent hang. A nil plan means faults are off.
type FaultPlanner interface {
	FaultPlan() *faults.Plan
}

// FaultReporter is implemented by endpoints that can fail permanently
// (retry exhaustion under a fault plan). OnFault registers the sink those
// failures are delivered to, replacing any previous sink; the MPI layer
// installs one per rank so errors arrive attributed to the rank that
// issued the operation. An endpoint with no fault plan never calls it.
type FaultReporter interface {
	OnFault(sink func(err error))
}

// RetryReporter is implemented by endpoints that can surface each
// individual retransmit of their reliability protocol as it happens —
// before the retry budget is exhausted. The rail bonding layer
// (internal/rail) installs an observer as a passive health signal: a run
// of consecutive retransmits without an intervening delivery marks the
// rail suspect long before a permanent FaultReporter error would. An
// endpoint with no fault plan never calls the observer.
type RetryReporter interface {
	OnRetry(observe func())
}

// DiameterReporter is implemented by networks that can state their fabric's
// diameter — the element count of the longest route. The MPI layer folds it
// into the scaled watchdog budget (faults.ScaledTimeout): a deep Clos under
// faults needs more slack per wait than the paper's single crossbar.
type DiameterReporter interface {
	Diameter() int
}

// ElementHealth is implemented by networks whose fabric can suffer element
// deaths (switch kills). DeadElement names the element currently down, for
// incident attribution: the rail layer asks it when a rail goes dead so the
// flight recorder can blame the switch rather than just the rail.
type ElementHealth interface {
	DeadElement(now sim.Time) (name string, code int64, ok bool)
}

// TraceAttacher is implemented by networks that can carry per-message
// trace context (see internal/msgtrace). The MPI world attaches its
// recorder at wiring time; device models then read the current message's
// trace ID from the recorder synchronously at the Eager/Control/Bulk entry
// (the cooperative scheduler makes the scoped handoff race-free), capture
// it into their completion and retry closures, and record wire, hop,
// backoff and flight-recorder observations against it. Composite networks
// (the rail bond) forward the attachment to every member and add their own
// dispatch/failover spans.
type TraceAttacher interface {
	AttachTracer(rec *msgtrace.Recorder)
}

// Domains is the node-domain placement of a sharded world: which shard owns
// each node's device state (NIC, bus, link, leaf fabric ports) and the
// engine of every shard. The cluster layer computes it leaf-aligned — all
// hosts of one leaf element share a shard, so leaf-tier fabric state is
// only ever touched by its owner domain. A single-engine (serial) run with
// domain semantics uses a one-entry engine list; EngineFor then always
// returns that engine and cross-domain scheduling degrades to plain
// scheduling at identical timestamps.
type Domains struct {
	// NodeShard maps node index to owning shard.
	NodeShard []int
	// Engines holds the engine of each shard, in shard order.
	Engines []*sim.Engine
}

// EngineFor returns the engine owning a node's device state.
func (d *Domains) EngineFor(node int) *sim.Engine {
	if len(d.Engines) == 1 {
		return d.Engines[0]
	}
	return d.Engines[d.NodeShard[node]]
}

// DomainNetwork is implemented by networks wired with a Domains placement.
// The placement is a capability until ActivateDomains flips it on: the MPI
// layer activates only for worlds whose configuration is domain-clean (no
// tracing, metrics, faults or hardware multicast), so every other world
// keeps the classic single-domain semantics byte-for-byte.
type DomainNetwork interface {
	// Domains returns the wired placement, nil when the network was built
	// without one.
	Domains() *Domains
	// ActivateDomains switches the network's device models to per-node
	// engines and domain-mode timing. It reports false (and stays
	// classic) when the network's configuration is incompatible.
	ActivateDomains() bool
}

// ConfigErrer is implemented by networks built from an invalid
// configuration: construction cannot return an error through the Platform
// builder chain, so the network carries it and mpi.NewWorld surfaces it as
// a validation failure before anything runs.
type ConfigErrer interface {
	ConfigErr() error
}
