package dev

import (
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// NICCounters bundles the protocol counters every NIC model reports:
// eager vs rendezvous message counts and volumes, plus control traffic.
// Built from a nil registry the handles are nil and every method is a
// no-op, so endpoints count unconditionally. Endpoints on the same node
// resolve the same names and therefore share counters — per-node totals
// come for free.
type NICCounters struct {
	EagerMsgs  *metrics.Counter
	EagerBytes *metrics.Counter
	CtrlMsgs   *metrics.Counter
	BulkMsgs   *metrics.Counter
	BulkBytes  *metrics.Counter
}

// NewNICCounters resolves the per-node NIC counter set under nodeN/nic/....
func NewNICCounters(m *metrics.Registry, node int) NICCounters {
	prefix := metrics.NodePrefix(node) + "nic"
	return NICCounters{
		EagerMsgs:  m.Counter(prefix + "/eager_msgs"),
		EagerBytes: m.Counter(prefix + "/eager_bytes"),
		CtrlMsgs:   m.Counter(prefix + "/ctrl_msgs"),
		BulkMsgs:   m.Counter(prefix + "/rndv_msgs"),
		BulkBytes:  m.Counter(prefix + "/rndv_bytes"),
	}
}

// Eager counts one eager-protocol message of size bytes.
func (c NICCounters) Eager(size int64) {
	c.EagerMsgs.Inc()
	c.EagerBytes.Add(size)
}

// Control counts one protocol control message (RTS/CTS/FIN).
func (c NICCounters) Control() { c.CtrlMsgs.Inc() }

// Bulk counts one rendezvous bulk transfer of size bytes.
func (c NICCounters) Bulk(size int64) {
	c.BulkMsgs.Inc()
	c.BulkBytes.Add(size)
}

// InstrumentPinCache registers snapshot-time probes over a pin-down cache's
// public statistics under nodeN/pin/.... Several caches on one node (one
// per endpoint) compose: counts and times sum. The cache itself is
// untouched — no hot-path cost at all.
func InstrumentPinCache(m *metrics.Registry, node int, pc *memreg.PinCache) {
	if m == nil || pc == nil {
		return
	}
	prefix := metrics.NodePrefix(node) + "pin"
	m.ProbeCount(prefix+"/hits", func() int64 { return pc.Hits })
	m.ProbeCount(prefix+"/misses", func() int64 { return pc.Misses })
	m.ProbeCount(prefix+"/evictions", func() int64 { return pc.Evictions })
	m.ProbeTime(prefix+"/reg_time", func() units.Time { return pc.RegTime })
}
