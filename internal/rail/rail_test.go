package rail_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/faults"
	"mpinet/internal/metrics"
	"mpinet/internal/mpi"
	"mpinet/internal/rail"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

const testSeed uint64 = 0x5EEDBEEF

// bondPairs is every two-rail combination of the paper's three
// interconnects, in report order.
func bondPairs() []cluster.Platform {
	return []cluster.Platform{
		cluster.Bond(cluster.IBA(), cluster.Myri()),
		cluster.Bond(cluster.IBA(), cluster.QSN()),
		cluster.Bond(cluster.Myri(), cluster.QSN()),
	}
}

// killPlan takes the given rails hard down at the given instant.
func killPlan(at sim.Time, rails ...int) *faults.Plan {
	p := &faults.Plan{Seed: testSeed}
	for _, r := range rails {
		p.RailKills = append(p.RailKills, faults.RailKill{Rail: r, At: at})
	}
	return p
}

// ringTraffic is the property-test workload: every rank streams msgs
// tagged messages of mixed eager/rendezvous sizes to its right neighbour
// and receives from its left with AnyTag, so any duplicate, dropped or
// reordered delivery shows up as a tag-sequence violation. report is
// called once per violation (testing.T methods are goroutine-safe).
func ringTraffic(msgs int, report func(format string, args ...any)) func(*mpi.Rank) {
	sizes := []int64{64, 512, 8 * units.KB, 256 * units.KB}
	var maxSize int64 = 256 * units.KB
	return func(r *mpi.Rank) {
		n := r.Size()
		dst, src := (r.Rank()+1)%n, (r.Rank()+n-1)%n
		var reqs []*mpi.Request
		for i := 0; i < msgs; i++ {
			reqs = append(reqs, r.Isend(r.Malloc(sizes[i%len(sizes)]), dst, i))
		}
		for i := 0; i < msgs; i++ {
			st := r.Recv(r.Malloc(maxSize), src, mpi.AnyTag)
			if st.Tag != i {
				report("rank %d: message %d arrived with tag %d (duplicate or out of order)", r.Rank(), i, st.Tag)
			}
		}
		r.Waitall(reqs...)
	}
}

// TestFailoverPreservesOrder is the tentpole property test: killing the
// primary rail mid-stream must not duplicate, drop or reorder any message
// on any of the three fabric pairings — per-peer sequence numbers and the
// reorder buffer preserve MPI non-overtaking across the failover.
func TestFailoverPreservesOrder(t *testing.T) {
	for _, base := range bondPairs() {
		base := base
		t.Run(base.Name, func(t *testing.T) {
			p := base.With(cluster.WithFaults(killPlan(2*units.Millisecond, 0)))
			m := metrics.New()
			net := p.New(4)
			w := mpi.MustWorld(mpi.Config{Net: net, Procs: 4, Metrics: m})
			if err := w.Run(ringTraffic(120, t.Errorf)); err != nil {
				t.Fatalf("bonded run did not survive a primary-rail kill: %v", err)
			}
			if v := m.Counter("rail/deaths").Value(); v == 0 {
				t.Errorf("rail kill never detected (rail/deaths = 0)")
			}
			if st := net.(*rail.Network).RailState(0); st != rail.Dead {
				t.Errorf("killed rail 0 ended in state %v, want dead", st)
			}
		})
	}
}

// TestFailoverReissue checks the escalation ladder's middle rung directly:
// operations in flight on the dying rail are re-issued on the survivor.
func TestFailoverReissue(t *testing.T) {
	p := cluster.Bond(cluster.IBA(), cluster.Myri()).
		With(cluster.WithFaults(killPlan(2*units.Millisecond, 0)))
	m := metrics.New()
	w := mpi.MustWorld(mpi.Config{Net: p.New(4), Procs: 4, Metrics: m})
	if err := w.Run(ringTraffic(120, t.Errorf)); err != nil {
		t.Fatalf("bonded run failed: %v", err)
	}
	if v := m.Counter("rail/failovers").Value(); v == 0 {
		t.Errorf("no in-flight operation was re-issued (rail/failovers = 0)")
	}
	if v := m.Counter("rail/reissued_bytes").Value(); v == 0 {
		t.Errorf("rail/reissued_bytes = 0, want > 0")
	}
}

// TestAllRailsDown: with every rail killed the job must fail with the
// bond's typed terminal error — which is also retry exhaustion, so both
// sentinels match.
func TestAllRailsDown(t *testing.T) {
	p := cluster.Bond(cluster.IBA(), cluster.Myri()).
		With(cluster.WithFaults(killPlan(2*units.Millisecond, 0, 1)))
	w := mpi.MustWorld(mpi.Config{Net: p.New(4), Procs: 4})
	err := w.Run(ringTraffic(120, t.Errorf))
	if err == nil {
		t.Fatal("run with every rail killed completed successfully")
	}
	if !errors.Is(err, rail.ErrAllRailsDown) {
		t.Errorf("error does not match rail.ErrAllRailsDown: %v", err)
	}
	if !errors.Is(err, faults.ErrRetryExhausted) {
		t.Errorf("error does not match faults.ErrRetryExhausted: %v", err)
	}
}

// TestSoloRailKillFailsTyped is the acceptance control: the same rail-kill
// plan on a single-rail world (its own rail 0) must fail with the device's
// typed retry exhaustion, not hang, and must not claim to be a bond error.
func TestSoloRailKillFailsTyped(t *testing.T) {
	p := cluster.IBA().With(cluster.WithFaults(killPlan(2*units.Millisecond, 0)))
	w := mpi.MustWorld(mpi.Config{Net: p.New(4), Procs: 4})
	err := w.Run(ringTraffic(120, func(string, ...any) {}))
	if err == nil {
		t.Fatal("solo run under a rail-kill plan completed successfully")
	}
	if !errors.Is(err, faults.ErrRetryExhausted) && !errors.Is(err, mpi.ErrTimeout) {
		t.Errorf("want retry exhaustion (or watchdog timeout), got: %v", err)
	}
	if errors.Is(err, rail.ErrAllRailsDown) {
		t.Errorf("solo world reported a bond-level error: %v", err)
	}
}

// TestStripeDegradesAndPreservesOrder: the Stripe policy splits large
// bulks across both rails, keeps MPI order, and degrades to the survivor
// when one rail dies mid-run.
func TestStripeDegradesAndPreservesOrder(t *testing.T) {
	// The healthy ring takes ~58 ms; killing at 25 ms leaves striped
	// traffic on both sides of the failure.
	p := cluster.Bond(cluster.IBA(), cluster.Myri()).
		With(cluster.WithRailPolicy(rail.Stripe),
			cluster.WithFaults(killPlan(25*units.Millisecond, 1)))
	m := metrics.New()
	w := mpi.MustWorld(mpi.Config{Net: p.New(4), Procs: 4, Metrics: m})
	if err := w.Run(ringTraffic(120, t.Errorf)); err != nil {
		t.Fatalf("striped run did not survive a backup-rail kill: %v", err)
	}
	if v := m.Counter("rail/stripe_chunks").Value(); v < 2 {
		t.Errorf("rail/stripe_chunks = %d, want >= 2 (256 KB bulks should stripe)", v)
	}
}

// TestFlapRecovery: a full-blackout window on the primary demotes it
// (probe misses, retransmit runs) and the hysteresis restores it after the
// window closes — with no job error and no ordering violation.
func TestFlapRecovery(t *testing.T) {
	plan := &faults.Plan{Seed: testSeed, RailDegrades: []faults.RailDegrade{
		{Rail: 0, From: 1 * units.Millisecond, Until: 5 * units.Millisecond, Drop: 1.0},
	}}
	p := cluster.Bond(cluster.IBA(), cluster.Myri()).With(cluster.WithFaults(plan))
	m := metrics.New()
	net := p.New(4)
	w := mpi.MustWorld(mpi.Config{Net: net, Procs: 4, Metrics: m})
	err := w.Run(func(r *mpi.Rank) {
		n := r.Size()
		dst, src := (r.Rank()+1)%n, (r.Rank()+n-1)%n
		for i := 0; i < 80; i++ {
			st := r.Sendrecv(r.Malloc(4*units.KB), dst, i, r.Malloc(4*units.KB), src, mpi.AnyTag)
			if st.Tag != i {
				t.Errorf("rank %d: message %d arrived with tag %d", r.Rank(), i, st.Tag)
			}
			r.Compute(200 * units.Microsecond)
		}
	})
	if err != nil {
		t.Fatalf("run across a flap window failed: %v", err)
	}
	if v := m.Counter("rail/suspects").Value() + m.Counter("rail/deaths").Value(); v == 0 {
		t.Errorf("blackout window never demoted the rail")
	}
	if v := m.Counter("rail/recoveries").Value(); v == 0 {
		t.Errorf("rail never recovered after the window (rail/recoveries = 0)")
	}
	if st := net.(*rail.Network).RailState(0); st != rail.Healthy {
		t.Errorf("rail 0 ended in state %v, want healthy after recovery", st)
	}
}

// failoverFingerprint runs the canonical failover scenario and returns a
// byte-exact fingerprint: elapsed time plus the full metric snapshot.
func failoverFingerprint() string {
	p := cluster.Bond(cluster.IBA(), cluster.Myri()).
		With(cluster.WithFaults(killPlan(2*units.Millisecond, 0)))
	m := metrics.New()
	w := mpi.MustWorld(mpi.Config{Net: p.New(4), Procs: 4, Metrics: m})
	if err := w.Run(ringTraffic(120, func(string, ...any) {})); err != nil {
		return "error: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d\n", int64(w.Elapsed()))
	m.Snapshot().Render(&b)
	return b.String()
}

// TestFailoverReplaysIdentically: the whole failover cascade — heartbeat
// jitter, probe targets, kill verdicts, re-issue — is a pure function of
// the seed, so two runs fingerprint byte-identically.
func TestFailoverReplaysIdentically(t *testing.T) {
	a, b := failoverFingerprint(), failoverFingerprint()
	if a != b {
		t.Fatalf("two identical failover runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestBondPanicsOnMismatchedRails: construction-time misuse is rejected.
func TestBondPanicsOnMismatchedRails(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rail.New accepted a single rail")
		}
	}()
	rail.New(sim.New(), rail.Tuning{}, nil, cluster.IBA().New(4))
}
