package rail

import (
	"errors"
	"fmt"

	"mpinet/internal/dev"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// bondDispatch is the host cost of the bonding layer's per-operation
// scheduling decision (rail selection, sequence stamp). It sits on top of
// the member device's own SendOverhead, the way a channel-bonding driver
// sits above the NIC library.
const bondDispatch = 120 * units.Nanosecond

// opKind distinguishes the three device verbs so a failed operation can be
// re-issued with the right one.
type opKind int

const (
	opEager opKind = iota
	opControl
	opBulk
)

// op is one bond-level operation in flight: an eager packet, a control
// message, a rendezvous bulk, or one stripe chunk of a bulk (parent set).
type op struct {
	ep   *endpoint
	kind opKind
	dst  int
	size int64
	seq  uint64 // per-(src,dst) order stamp; unused on stripe chunks
	born sim.Time
	fire func()      // the MPI layer's deliver callback
	done bool        // landed or permanently failed; late deliveries suppressed
	tid  msgtrace.ID // trace context captured at send, carried across re-issues
	// attempt counts bond-level issues of this op (0 on the first), so
	// failover re-issues are distinguishable from the original in the trace
	// — the NIC's own retry counter restarts per rail.
	attempt uint8

	// striping state: chunks carry parent; the parent op itself is never
	// issued on a device, it completes when its last chunk lands.
	parent    *op
	chunks    int
	landedN   int
	firstLand sim.Time
}

// wire returns the operation's packet size on the wire, mirroring the
// device models' conventions (eager adds a 32-byte envelope, control
// messages are 64 bytes). Failover uses it to match a device's LinkError
// back to the op that suffered it.
func (o *op) wire() int64 {
	switch o.kind {
	case opEager:
		return o.size + 32
	case opControl:
		return 64
	default:
		return o.size
	}
}

// endpoint is one process's attachment to the bond: a member endpoint per
// rail, plus per-rail FIFOs of in-flight operations for failure matching
// and stall detection.
type endpoint struct {
	net     *Network
	node    int
	eps     []dev.Endpoint
	pending [][]*op
	sink    func(error)
}

// NewEndpoint implements dev.Network: it attaches the process to every
// member rail and routes the members' fault and retransmit reports into
// the bond's escalation ladder and health monitor.
func (n *Network) NewEndpoint(node int) dev.Endpoint {
	ep := &endpoint{
		net:     n,
		node:    node,
		pending: make([][]*op, len(n.rails)),
	}
	for r, rn := range n.rails {
		rep := rn.NewEndpoint(node)
		ep.eps = append(ep.eps, rep)
		r := r
		if fr, ok := rep.(dev.FaultReporter); ok {
			fr.OnFault(func(err error) { ep.railFailed(r, err) })
		}
		if rr, ok := rep.(dev.RetryReporter); ok {
			rr.OnRetry(func() { n.mon[r].retransmit() })
		}
	}
	n.eps = append(n.eps, ep)
	return ep
}

// active is the member endpoint cost queries delegate to: the current
// preferred rail (primary while healthy). With every rail dead the primary
// still answers cost queries — the job is about to die on a typed error
// anyway, and parameters must stay well-defined until it does.
func (ep *endpoint) active() dev.Endpoint {
	r, ok := ep.net.pickRail(-1)
	if !ok {
		r = 0
	}
	return ep.eps[r]
}

// Node implements dev.Endpoint.
func (ep *endpoint) Node() int { return ep.node }

// EagerThreshold implements dev.Endpoint: the active rail's protocol
// switch point.
func (ep *endpoint) EagerThreshold() int64 { return ep.active().EagerThreshold() }

// SendOverhead implements dev.Endpoint: the bond's dispatch decision plus
// the active rail's own initiation cost.
func (ep *endpoint) SendOverhead(size int64) sim.Time {
	return bondDispatch + ep.active().SendOverhead(size)
}

// RecvOverhead implements dev.Endpoint.
func (ep *endpoint) RecvOverhead(size int64) sim.Time { return ep.active().RecvOverhead(size) }

// CopyTime implements dev.Endpoint.
func (ep *endpoint) CopyTime(size int64) sim.Time { return ep.active().CopyTime(size) }

// AcquireBuf implements dev.Endpoint. Under Failover only the active rail
// needs the buffer; under Stripe every rail that may carry a chunk must be
// able to DMA it, so the registration costs sum.
func (ep *endpoint) AcquireBuf(b memreg.Buf) sim.Time {
	if ep.net.tun.Policy == Stripe {
		var total sim.Time
		for _, r := range ep.net.stripeSet() {
			total += ep.eps[r].AcquireBuf(b)
		}
		return total
	}
	return ep.active().AcquireBuf(b)
}

// AcquireOnEager implements dev.Endpoint.
func (ep *endpoint) AcquireOnEager() bool { return ep.active().AcquireOnEager() }

// NICProgress implements dev.Endpoint. The bonding layer is host-driven
// (rail selection, sequencing and reassembly run on the host), so the bond
// never advertises NIC-side rendezvous progress even when a member NIC
// (Elan) could offer it.
func (ep *endpoint) NICProgress() bool { return false }

// IssueStall implements dev.Endpoint.
func (ep *endpoint) IssueStall() sim.Time { return ep.active().IssueStall() }

// MemoryUsage implements dev.Endpoint: a bonded process holds every
// member's connection state.
func (ep *endpoint) MemoryUsage(npeers int) int64 {
	var total int64
	for _, rep := range ep.eps {
		total += rep.MemoryUsage(npeers)
	}
	return total
}

// OnFault implements dev.FaultReporter for the bond itself: the sink
// receives only bond-level permanent failures (AllRailsError) — single-
// rail deaths are absorbed by failover.
func (ep *endpoint) OnFault(sink func(err error)) { ep.sink = sink }

// Eager implements dev.Endpoint.
func (ep *endpoint) Eager(dst int, size int64, deliver func()) {
	ep.net.send(ep, opEager, dst, size, deliver)
}

// Control implements dev.Endpoint.
func (ep *endpoint) Control(dst int, deliver func()) {
	ep.net.send(ep, opControl, dst, 0, deliver)
}

// Bulk implements dev.Endpoint.
func (ep *endpoint) Bulk(dst int, size int64, deliver func()) {
	ep.net.send(ep, opBulk, dst, size, deliver)
}

// send stamps the operation into its pair's sequence space, wakes the
// health monitors, and routes it by policy: stripe eligible bulks across
// the healthy set, everything else onto the preferred live rail. With no
// live rail left the send fails typed immediately.
func (n *Network) send(ep *endpoint, kind opKind, dst int, size int64, deliver func()) {
	n.issued++
	pr := n.pairOf(ep.node, dst)
	o := &op{
		ep:   ep,
		kind: kind,
		dst:  dst,
		size: size,
		seq:  pr.sendSeq,
		born: n.eng.Now(),
		fire: deliver,
		tid:  n.rec.Cur(),
	}
	pr.sendSeq++
	n.armMonitors()
	if kind == opBulk && n.tun.Policy == Stripe && size >= n.tun.StripeThreshold {
		if set := n.stripeSet(); len(set) > 1 {
			ep.stripe(o, set)
			return
		}
	}
	r, ok := n.pickRail(-1)
	if !ok {
		ep.allDown(o, nil)
		return
	}
	ep.issue(o, r)
}

// issue hands the operation (or stripe chunk) to one member rail and
// tracks it in that rail's in-flight FIFO until it lands or fails. The
// trace context is (re)installed around the member dispatch so the device
// model picks up the message ID and rail index — on the first issue this
// mirrors the MPI layer's own scoped handoff; on a failover re-issue (an
// event context with no caller-installed scope) it is what keeps the
// re-issued operation attached to its original message.
func (ep *endpoint) issue(o *op, r int) {
	ep.pending[r] = append(ep.pending[r], o)
	ep.net.inflight++
	rec := ep.net.rec
	if rec.Sampled(o.tid) {
		// Zero-length marker on the first issue (the selection decision);
		// on a re-issue the span covers born->now, the time the message
		// spent on rails that failed under it — the failover penalty the
		// blame analyzer charges to the rail layer.
		start := ep.net.eng.Now()
		if o.attempt > 0 {
			start = o.born
		}
		rec.Span(o.tid, msgtrace.StageRail, ep.node, int8(r), o.attempt, -1,
			start, ep.net.eng.Now(), o.size)
	}
	cb := func() { ep.landed(o, r) }
	rec.SetCur(o.tid)
	rec.SetCurRail(int8(r))
	switch o.kind {
	case opEager:
		ep.eps[r].Eager(o.dst, o.size, cb)
	case opControl:
		ep.eps[r].Control(o.dst, cb)
	default:
		ep.eps[r].Bulk(o.dst, o.size, cb)
	}
	rec.ClearCur()
}

// stripe splits a bulk across the given rails: an even split with the
// remainder on the first rail, reassembled by a countdown on the parent.
func (ep *endpoint) stripe(o *op, set []int) {
	k := int64(len(set))
	base := o.size / k
	rem := o.size - base*k
	o.chunks = len(set)
	for i, r := range set {
		sz := base
		if i == 0 {
			sz += rem
		}
		c := &op{ep: ep, kind: opBulk, dst: o.dst, size: sz, born: o.born, parent: o, tid: o.tid}
		ep.net.stripeChunks.Inc()
		ep.issue(c, r)
	}
}

// landed is every member delivery callback: suppress late duplicates,
// retire the op from its rail FIFO, reassemble stripes, and push the
// completed message through the pair's reorder buffer.
func (ep *endpoint) landed(o *op, r int) {
	n := ep.net
	if o.done {
		n.dupSuppressed.Inc()
		return
	}
	o.done = true
	ep.unpend(o, r)
	n.inflight--
	n.mon[r].delivered()
	if p := o.parent; p != nil {
		now := n.eng.Now()
		if p.landedN == 0 {
			p.firstLand = now
		}
		p.landedN++
		if p.landedN == p.chunks {
			n.stripeImbal.Add(now - p.firstLand)
			n.complete(p)
		}
		return
	}
	n.complete(o)
}

// complete pushes a fully landed message into its pair's reorder buffer.
func (n *Network) complete(o *op) {
	n.arrived(o.ep.node, o.dst, o.seq, o.fire)
}

// unpend removes o from rail r's in-flight FIFO.
func (ep *endpoint) unpend(o *op, r int) {
	q := ep.pending[r]
	for i, p := range q {
		if p == o {
			ep.pending[r] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// railFailed is the escalation ladder's middle rung: a member device
// exhausted its NIC-level retry budget. The rail is declared dead, the
// doomed operation is matched out of the rail's in-flight FIFO and
// re-issued on the surviving preferred rail under a bumped pair epoch.
// Only when no live rail remains does the failure escalate to the MPI
// layer, typed ErrAllRailsDown.
func (ep *endpoint) railFailed(r int, err error) {
	n := ep.net
	n.mon[r].hardFail()
	o := ep.matchFailure(r, err)
	if o == nil {
		// Nothing in flight matches the report — this cannot happen with
		// the current device models (one failure per issued transfer), so
		// escalate rather than swallow a failure.
		ep.fail(fmt.Errorf("rail %s: unmatched device failure: %w", n.rails[r].Name(), err))
		return
	}
	ep.unpend(o, r)
	n.inflight--
	nr, ok := n.pickRail(r)
	if !ok {
		ep.allDown(o, err)
		return
	}
	n.failovers.Inc()
	n.reissuedBytes.Add(o.wire())
	top := o
	if o.parent != nil {
		top = o.parent
	}
	n.pairOf(ep.node, top.dst).epoch++
	if o.attempt < ^uint8(0) {
		o.attempt++
	}
	n.rec.Flight(msgtrace.FlightFailover, n.eng.Now(), ep.node, o.tid,
		msgtrace.StageRail, int64(r), int64(nr))
	ep.issue(o, nr)
}

// matchFailure finds the in-flight operation a device failure report
// refers to: the oldest op on that rail with the failure's destination and
// wire size, falling back to destination only, then to the rail's oldest.
func (ep *endpoint) matchFailure(r int, err error) *op {
	q := ep.pending[r]
	var le *faults.LinkError
	if errors.As(err, &le) {
		for _, o := range q {
			if o.dst == le.Dst && o.wire() == le.Bytes {
				return o
			}
		}
		for _, o := range q {
			if o.dst == le.Dst {
				return o
			}
		}
	}
	if len(q) > 0 {
		return q[0]
	}
	return nil
}

// allDown retires the operation with the bond's typed terminal error.
func (ep *endpoint) allDown(o *op, last error) {
	o.done = true
	top := o
	if o.parent != nil {
		top = o.parent
		top.done = true
	}
	// Stamp the doomed operation into the flight ring before escalating:
	// the MPI layer's freeze site sees only an error, and this entry is
	// what lets the recorder name the message that ran out of rails.
	ep.net.rec.Flight(msgtrace.FlightRailDown, ep.net.eng.Now(), ep.node, o.tid,
		msgtrace.StageRail, int64(len(ep.net.rails)), o.wire())
	ep.fail(&AllRailsError{
		Src:   ep.node,
		Dst:   top.dst,
		Bytes: o.wire(),
		Rails: len(ep.net.rails),
		Last:  last,
	})
}

// fail delivers a bond-level permanent failure to the installed sink, or
// panics without one — matching the member devices' convention that
// permanent failures must never be silently dropped.
func (ep *endpoint) fail(err error) {
	if ep.sink == nil {
		panic(fmt.Sprintf("rail: permanent failure with no OnFault sink installed: %v", err))
	}
	ep.sink(err)
}

var _ dev.Endpoint = (*endpoint)(nil)
var _ dev.FaultReporter = (*endpoint)(nil)
