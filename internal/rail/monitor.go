package rail

import (
	"mpinet/internal/dev"
	"mpinet/internal/faults"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
)

// State is a rail's health as seen by its failure detector.
type State int

const (
	// Healthy rails carry traffic at full priority.
	Healthy State = iota
	// Suspect rails are demoted below healthy ones but still usable; the
	// state is reached by consecutive probe misses or a run of device
	// retransmits, and left again (hysteresis) after RecoverAfter
	// consecutive probe successes.
	Suspect
	// Dead rails carry nothing; reached by DeadAfter consecutive misses or
	// immediately on a device-level permanent failure. A dead rail that
	// starts answering probes again (a flap window ending) recovers.
	Dead
)

// String returns the state's report name.
func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "healthy"
	}
}

// monitor is one rail's failure detector. It is driven by three signals:
// active heartbeat probes (a Control message between a seeded pair of
// nodes each tick, raced against ProbeTimeout), passive consecutive-
// retransmit reports from the data endpoints, and a watchdog-adjacent scan
// for operations stalled in flight longer than StallAfter.
//
// The tick loop self-disarms after two quiet ticks (nothing in flight and
// no operations issued since the last tick) and is re-armed from the send
// path; without that, the recurring probe event would keep the engine's
// queue non-empty forever and Run would never return.
type monitor struct {
	net   *Network
	rail  int
	seed  uint64
	state State

	consecMiss int
	consecOK   int
	consecRetx int

	tick       uint64 // PRNG counter for probe target / jitter draws
	armed      bool
	idleTicks  int
	lastIssued uint64

	probeEps []dev.Endpoint // per-node probe endpoints, created on first arm
}

func newMonitor(n *Network, r int) *monitor {
	return &monitor{
		net:  n,
		rail: r,
		// Mix the rail index into the seed so co-bonded monitors draw
		// independent streams, and keep the stream space away from the
		// fault injector's link-indexed streams.
		seed: faults.RailSeed(n.tun.Seed^0xb0d9, r+1),
	}
}

// arm starts the heartbeat loop if it is not already running. Called from
// the send path, so probing only happens while the job communicates.
func (m *monitor) arm() {
	if m.armed || m.net.Nodes() < 2 {
		return
	}
	m.armed = true
	m.idleTicks = 0
	m.lastIssued = m.net.issued
	m.schedule()
}

// schedule queues the next tick one heartbeat (plus seeded jitter, so
// co-bonded rails do not probe in lockstep) from now. The monitor is its
// own typed event handler, so the recurring tick never allocates a
// closure (or a method value, which also heap-allocates).
func (m *monitor) schedule() {
	t := m.net.tun
	jitter := sim.Time(faults.Uniform(m.seed, 1, m.tick) * float64(t.Heartbeat) / 8)
	m.net.eng.Call(t.Heartbeat+jitter, m, 0, 0)
}

// HandleEvent implements sim.Handler: one heartbeat tick — decide whether
// to disarm, scan for stalled in-flight operations, launch a probe, and
// reschedule.
func (m *monitor) HandleEvent(int64, int64) {
	n := m.net
	if n.inflight == 0 && n.issued == m.lastIssued {
		m.idleTicks++
		if m.idleTicks >= 2 {
			m.armed = false
			return
		}
	} else {
		m.idleTicks = 0
	}
	m.lastIssued = n.issued
	m.scanStalls()
	m.probe()
	m.tick++
	m.schedule()
}

// scanStalls implements the watchdog-adjacent passive signal: any
// operation in flight on this rail for longer than StallAfter counts as
// one probe miss this tick.
func (m *monitor) scanStalls() {
	n := m.net
	now := n.eng.Now()
	for _, ep := range n.eps {
		for _, o := range ep.pending[m.rail] {
			if now-o.born > n.tun.StallAfter {
				n.waitStalls.Inc()
				m.miss()
				return
			}
		}
	}
}

// probe sends one heartbeat Control between a seeded (source, target)
// node pair and races it against ProbeTimeout. Dead rails are probed too:
// that is how a rail whose flap window has ended recovers.
//
// A probe that lands after its timeout still counts as a hit: a rail
// saturated with bulk traffic queues probes behind data for milliseconds,
// and that is slowness, not death. Misses therefore only accumulate to the
// demotion thresholds when probes stop arriving entirely — which under the
// fault model means they are being dropped (and the probe endpoint's own
// retry exhaustion reports the hard failure independently).
func (m *monitor) probe() {
	nodes := m.net.Nodes()
	m.ensureEps()
	src := int(m.tick % uint64(nodes))
	off := 1 + int(faults.Uniform(m.seed, 0, m.tick)*float64(nodes-1))
	if off >= nodes {
		off = nodes - 1
	}
	dst := (src + off) % nodes
	m.net.heartbeats.Inc()
	delivered := false
	var tm *sim.Timer
	m.probeEps[src].Control(dst, func() {
		if delivered {
			return
		}
		delivered = true
		if tm != nil {
			tm.Stop()
		}
		m.hit()
	})
	if delivered {
		return // defensive: a zero-latency model could deliver inline
	}
	tm = m.net.eng.AfterTimer(m.net.tun.ProbeTimeout, func() {
		if !delivered {
			m.miss()
		}
	})
}

// ensureEps lazily creates this rail's per-node probe endpoints. Their
// permanent failures (a probe exhausting the device retry budget) feed
// hardFail rather than the job's error sink: a dead probe is a dead rail,
// not a dead job.
func (m *monitor) ensureEps() {
	if m.probeEps != nil {
		return
	}
	rn := m.net.rails[m.rail]
	for node := 0; node < rn.Nodes(); node++ {
		pe := rn.NewEndpoint(node)
		if fr, ok := pe.(dev.FaultReporter); ok {
			fr.OnFault(func(error) { m.hardFail() })
		}
		m.probeEps = append(m.probeEps, pe)
	}
}

// miss records one failed probe (or stall strike) and demotes the rail
// when the consecutive-miss thresholds are crossed.
func (m *monitor) miss() {
	m.net.probeMisses.Inc()
	m.consecOK = 0
	m.consecMiss++
	t := m.net.tun
	switch {
	case m.state == Healthy && m.consecMiss >= t.SuspectAfter:
		m.to(Suspect)
	case m.state == Suspect && m.consecMiss >= t.DeadAfter:
		m.to(Dead)
	}
}

// hit records one successful probe; RecoverAfter consecutive hits restore
// a demoted rail (the hysteresis that keeps a flapping link from
// thrashing the policy).
func (m *monitor) hit() {
	m.consecMiss = 0
	m.consecRetx = 0
	m.consecOK++
	if m.state != Healthy && m.consecOK >= m.net.tun.RecoverAfter {
		m.to(Healthy)
		m.net.recoveries.Inc()
	}
}

// retransmit is the passive signal from the data endpoints' reliability
// protocols: a run of consecutive retransmits without an intervening
// delivery marks the rail suspect before any probe could.
func (m *monitor) retransmit() {
	m.consecRetx++
	if m.state == Healthy && m.consecRetx >= m.net.tun.RetxSuspect {
		m.to(Suspect)
	}
}

// delivered resets the passive retransmit run: the rail moved real data.
func (m *monitor) delivered() {
	m.consecRetx = 0
}

// hardFail is the unambiguous signal: a device reported permanent failure
// (retry budget exhausted), so the rail is dead immediately — no
// consecutive-miss ceremony.
func (m *monitor) hardFail() {
	m.consecOK = 0
	m.to(Dead)
}

// to transitions the detector, counting demotions.
func (m *monitor) to(s State) {
	if s == m.state {
		return
	}
	switch s {
	case Suspect:
		m.net.suspects.Inc()
	case Dead:
		m.net.deaths.Inc()
		// Rail deaths go straight to the always-on flight ring: they are
		// exactly the "what just happened" context a post-mortem dump needs.
		// When the rail's fabric knows a dead element caused the escalation
		// (a killed spine or leaf behind the retry storm), the incident
		// carries the element's code in B so the dump blames the switch, not
		// just the rail.
		var elem int64
		if eh, ok := m.net.rails[m.rail].(dev.ElementHealth); ok {
			if _, code, dead := eh.DeadElement(m.net.eng.Now()); dead {
				elem = code
			}
		}
		m.net.rec.Flight(msgtrace.FlightRailDown, m.net.eng.Now(), -1, 0,
			msgtrace.StageRail, int64(m.rail), elem)
	}
	m.state = s
	if s == Healthy {
		m.consecMiss = 0
	}
}
