// Package rail implements multi-rail channel bonding: 2-3 simulated
// fabrics (any combination of the InfiniBand, Myrinet and Quadrics device
// models) attached beneath a single MPI channel, the way the paper's
// 8-node testbed physically carries all three interconnects at once.
//
// Where PR 3's per-NIC retransmit machinery can only surface
// faults.ErrRetryExhausted when a link is permanently dead, the bond makes
// the job survive. Three mechanisms cooperate:
//
//   - A health monitor (monitor.go): a per-rail failure detector driven by
//     seeded heartbeat probes plus passive signals — consecutive device
//     retransmits and watchdog-adjacent wait stalls — with
//     healthy/suspect/dead state transitions and hysteresis so a flapping
//     link does not thrash the policy.
//
//   - An escalation ladder (endpoint.go): NIC-level retransmit (the
//     device's own reliability protocol, unchanged) escalates to rail-level
//     failover — the in-flight eager/rendezvous operation is re-issued on a
//     surviving rail — and only when every rail is dead does the job fail,
//     with the typed ErrAllRailsDown.
//
//   - Degraded-mode policies: Failover (primary/backup in declaration
//     order) and Stripe (large messages split across every healthy rail
//     with receiver-side reassembly, degrading to the survivors).
//
// MPI non-overtaking order survives failover and striping because the bond
// stamps every operation with a per-(source node, destination node)
// sequence number and holds out-of-order deliveries in a reorder buffer
// (the pair state below); a per-pair epoch is bumped on every re-issue and
// late duplicates — a delivery whose sequence number has already fired —
// are suppressed and counted, never delivered twice.
//
// Everything is deterministic: heartbeat jitter and probe targets come
// from the same counter-based PRNG as the fault injector (faults.Uniform),
// so a failover run replays byte-identically at any -j.
package rail

import (
	"errors"
	"fmt"

	"mpinet/internal/dev"
	"mpinet/internal/faults"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// ErrAllRailsDown is the sentinel behind a bond-level permanent failure:
// every rail exhausted its device retry budget (or was already dead) for
// an operation, so there is nothing left to fail over to. Match with
// errors.Is.
var ErrAllRailsDown = errors.New("all rails down")

// AllRailsError is the concrete error behind ErrAllRailsDown: which
// operation ran out of rails, and the last device failure that exhausted
// the ladder. It unwraps to both ErrAllRailsDown and that device error, so
// errors.Is(err, faults.ErrRetryExhausted) holds too — a bond failing is
// retry exhaustion on every member.
type AllRailsError struct {
	Src, Dst int   // node indices of the doomed operation
	Bytes    int64 // wire size
	Rails    int   // rails the bond was built with
	Last     error // the device failure that killed the final rail (may be nil)
}

func (e *AllRailsError) Error() string {
	return fmt.Sprintf("rail: node%d->node%d (%d-byte packet): all %d rails down: %v (last: %v)",
		e.Src, e.Dst, e.Bytes, e.Rails, ErrAllRailsDown, e.Last)
}

// Unwrap makes errors.Is match ErrAllRailsDown and the underlying device
// failure chain.
func (e *AllRailsError) Unwrap() []error {
	if e.Last == nil {
		return []error{ErrAllRailsDown}
	}
	return []error{ErrAllRailsDown, e.Last}
}

// Policy selects the bond's degraded-mode behaviour.
type Policy int

const (
	// Failover sends everything on the highest-priority live rail (rails
	// are prioritized in declaration order) and re-issues in-flight
	// operations on the next one when it dies.
	Failover Policy = iota
	// Stripe additionally splits bulk (rendezvous) payloads at or above
	// StripeThreshold across every healthy rail, reassembling at the
	// receiver; when rails die it degrades to striping over the survivors,
	// and to Failover semantics with one rail left.
	Stripe
)

// String returns the policy's CLI/report name.
func (p Policy) String() string {
	if p == Stripe {
		return "stripe"
	}
	return "failover"
}

// Tuning is the bond's knob set. The zero value selects the documented
// defaults (applied by New); cluster.WithRailPolicy / cluster.WithHeartbeat
// adjust the two that experiments turn.
type Tuning struct {
	// Policy is the degraded-mode policy (default Failover).
	Policy Policy
	// Heartbeat is the probe period of the health monitor (default 1 ms).
	Heartbeat sim.Time
	// ProbeTimeout is how long the monitor waits for a probe before
	// declaring a miss (default Heartbeat/10).
	ProbeTimeout sim.Time
	// SuspectAfter / DeadAfter are the consecutive-miss thresholds for the
	// healthy->suspect and suspect->dead transitions (defaults 2 and 4).
	SuspectAfter, DeadAfter int
	// RecoverAfter is the hysteresis: consecutive probe successes before a
	// suspect or dead rail is declared healthy again (default 3).
	RecoverAfter int
	// RetxSuspect is the passive-signal threshold: this many consecutive
	// device retransmits without an intervening delivery mark the rail
	// suspect (default 8).
	RetxSuspect int
	// StallAfter is the watchdog-adjacent passive signal: an operation
	// in flight on a rail for longer than this counts as a probe miss at
	// the next heartbeat tick (default 5*Heartbeat).
	StallAfter sim.Time
	// StripeThreshold is the smallest bulk payload the Stripe policy
	// splits (default 64 KB).
	StripeThreshold int64
	// Seed keys the monitor's probe-jitter and target draws (default: the
	// fault plan's seed, or a fixed constant without one).
	Seed uint64
}

// withDefaults resolves the zero values.
func (t Tuning) withDefaults(plan *faults.Plan) Tuning {
	if t.Heartbeat <= 0 {
		t.Heartbeat = 1 * units.Millisecond
	}
	if t.ProbeTimeout <= 0 {
		t.ProbeTimeout = t.Heartbeat / 10
	}
	if t.SuspectAfter <= 0 {
		t.SuspectAfter = 2
	}
	if t.DeadAfter <= t.SuspectAfter {
		t.DeadAfter = t.SuspectAfter + 2
	}
	if t.RecoverAfter <= 0 {
		t.RecoverAfter = 3
	}
	if t.RetxSuspect <= 0 {
		t.RetxSuspect = 8
	}
	if t.StallAfter <= 0 {
		t.StallAfter = 5 * t.Heartbeat
	}
	if t.StripeThreshold <= 0 {
		t.StripeThreshold = 64 * units.KB
	}
	if t.Seed == 0 {
		if plan != nil && plan.Seed != 0 {
			t.Seed = plan.Seed
		} else {
			t.Seed = 0x5EEDDA11
		}
	}
	return t
}

// pair is the ordering state of one directed (source node, destination
// node) flow: the send-side sequence stamp, the failover epoch, and the
// receive-side reorder buffer. MPI's non-overtaking guarantee reduces to
// per-pair FIFO here because each device's staged path is itself FIFO —
// only cross-rail races (failover re-issue, striping) can reorder, and the
// buffer absorbs exactly those.
type pair struct {
	sendSeq     uint64
	epoch       uint64
	nextDeliver uint64
	held        map[uint64]func()
}

// Network is a bonded multi-rail interconnect: it implements dev.Network
// (and the optional FaultPlanner / Instrumentable / UtilizationReporter
// faces) by delegating to 2-3 member fabrics wired on one shared engine.
type Network struct {
	eng   *sim.Engine
	rails []dev.Network
	tun   Tuning
	plan  *faults.Plan // bond-level plan (rail entries unresolved)
	mon   []*monitor
	eps   []*endpoint // every bonded endpoint, for stall scanning

	pairs map[[2]int]*pair
	rec   *msgtrace.Recorder // message tracer (nil-safe when never attached)
	// issued counts bond-level operations; the monitors use it (with the
	// in-flight count) to disarm heartbeats when the job goes quiet, so the
	// event queue always drains.
	issued   uint64
	inflight int

	// metric handles (nil-safe no-ops until InstrumentMetrics binds them)
	met           *metrics.Registry
	heartbeats    *metrics.Counter
	probeMisses   *metrics.Counter
	waitStalls    *metrics.Counter
	suspects      *metrics.Counter
	deaths        *metrics.Counter
	recoveries    *metrics.Counter
	failovers     *metrics.Counter
	reissuedBytes *metrics.Counter
	dupSuppressed *metrics.Counter
	stripeChunks  *metrics.Counter
	stripeImbal   *metrics.Timer
	heldHW        *metrics.Gauge
	heldCount     int64
}

// New bonds the given member fabrics beneath one channel. All rails must
// be wired on the shared engine and agree on the node count; 2-3 rails are
// supported (1 would be pointless, and the paper's testbed carries 3).
// plan is the bond-level fault plan (nil when faults are off): rail-level
// entries (RailKills, RailDegrades) are expected to have been flattened
// into the members' own plans by the caller (internal/cluster does); New
// keeps it only to answer FaultPlan so the MPI watchdog arms.
func New(eng *sim.Engine, tun Tuning, plan *faults.Plan, rails ...dev.Network) *Network {
	if len(rails) < 2 || len(rails) > 3 {
		panic(fmt.Sprintf("rail: bond needs 2-3 rails, got %d", len(rails)))
	}
	for i, r := range rails {
		if r.Engine() != eng {
			panic(fmt.Sprintf("rail: rail %d (%s) is wired on its own engine; all rails must share the bond's", i, r.Name()))
		}
		if r.Nodes() != rails[0].Nodes() {
			panic(fmt.Sprintf("rail: rail %d (%s) has %d nodes, rail 0 (%s) has %d — all rails must agree",
				i, r.Name(), r.Nodes(), rails[0].Name(), rails[0].Nodes()))
		}
	}
	n := &Network{
		eng:   eng,
		rails: rails,
		tun:   tun.withDefaults(plan),
		plan:  plan,
		pairs: make(map[[2]int]*pair),
	}
	for i := range rails {
		n.mon = append(n.mon, newMonitor(n, i))
	}
	return n
}

// Name implements dev.Network: the member names joined with "+".
func (n *Network) Name() string {
	name := ""
	for i, r := range n.rails {
		if i > 0 {
			name += "+"
		}
		name += r.Name()
	}
	return name
}

// Engine implements dev.Network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Nodes implements dev.Network.
func (n *Network) Nodes() int { return n.rails[0].Nodes() }

// Rails exposes the member fabrics (for tests and diagnostics).
func (n *Network) Rails() []dev.Network { return n.rails }

// MinLinkLatency implements dev.LookaheadReporter: a bonded message may ride
// any member rail, so the bound is the fastest member's. Members that cannot
// state a bound make the bond unable to either (returns 0).
func (n *Network) MinLinkLatency() sim.Time {
	var min sim.Time
	for _, r := range n.rails {
		lr, ok := r.(dev.LookaheadReporter)
		if !ok {
			return 0
		}
		if la := lr.MinLinkLatency(); min == 0 || la < min {
			min = la
		}
	}
	return min
}

// Diameter implements dev.DiameterReporter: a bonded message may ride any
// member rail, so the watchdog must budget for the deepest one.
func (n *Network) Diameter() int {
	max := 1
	for _, r := range n.rails {
		if dr, ok := r.(dev.DiameterReporter); ok {
			if d := dr.Diameter(); d > max {
				max = d
			}
		}
	}
	return max
}

// Tuning exposes the resolved knob set.
func (n *Network) Tuning() Tuning { return n.tun }

// RailState reports rail r's current detector state.
func (n *Network) RailState(r int) State { return n.mon[r].state }

// ShmemBelow implements dev.Network: the primary rail's MPI implementation
// decides the intra-node policy (the bond only multiplexes the wire side).
func (n *Network) ShmemBelow() int64 { return n.rails[0].ShmemBelow() }

// ShmemConfig forwards the primary rail's intra-node channel parameters.
func (n *Network) ShmemConfig() shmem.Config {
	if sc, ok := n.rails[0].(interface{ ShmemConfig() shmem.Config }); ok {
		return sc.ShmemConfig()
	}
	return shmem.DefaultConfig()
}

// FaultPlan implements dev.FaultPlanner so the MPI watchdog arms on bonds
// whose members run under fault plans.
func (n *Network) FaultPlan() *faults.Plan {
	if n.plan != nil {
		return n.plan
	}
	for _, r := range n.rails {
		if fp, ok := r.(dev.FaultPlanner); ok && fp.FaultPlan() != nil {
			return fp.FaultPlan()
		}
	}
	return nil
}

// AttachTracer implements dev.TraceAttacher: the bond keeps the recorder
// for its own dispatch, failover and rail-death records and forwards it to
// every member fabric, so a message traced through the bond carries both the
// bond-level StageRail spans and the member device's wire/hop spans.
func (n *Network) AttachTracer(rec *msgtrace.Recorder) {
	n.rec = rec
	for _, r := range n.rails {
		if ta, ok := r.(dev.TraceAttacher); ok {
			ta.AttachTracer(rec)
		}
	}
}

// InstrumentMetrics implements metrics.Instrumentable: the bond's own
// rail/* instruments plus every member fabric's (same-name handles across
// rails aggregate, as co-located endpoints already do).
func (n *Network) InstrumentMetrics(m *metrics.Registry) {
	if m == nil {
		return
	}
	n.met = m
	n.heartbeats = m.Counter("rail/heartbeats")
	n.probeMisses = m.Counter("rail/probe_misses")
	n.waitStalls = m.Counter("rail/wait_stalls")
	n.suspects = m.Counter("rail/suspects")
	n.deaths = m.Counter("rail/deaths")
	n.recoveries = m.Counter("rail/recoveries")
	n.failovers = m.Counter("rail/failovers")
	n.reissuedBytes = m.Counter("rail/reissued_bytes")
	n.dupSuppressed = m.Counter("rail/dup_suppressed")
	n.stripeChunks = m.Counter("rail/stripe_chunks")
	n.stripeImbal = m.Timer("rail/stripe_imbalance")
	n.heldHW = m.Gauge("rail/reorder_held")
	for _, r := range n.rails {
		if in, ok := r.(metrics.Instrumentable); ok {
			in.InstrumentMetrics(m)
		}
	}
}

// Utilizations implements dev.UtilizationReporter: the concatenation of
// every member's accounting (resource names are already fabric-prefixed).
func (n *Network) Utilizations() []dev.Utilization {
	var out []dev.Utilization
	for _, r := range n.rails {
		if ur, ok := r.(dev.UtilizationReporter); ok {
			out = append(out, ur.Utilizations()...)
		}
	}
	return out
}

// pairOf returns (creating if needed) the ordering state of src->dst.
func (n *Network) pairOf(src, dst int) *pair {
	key := [2]int{src, dst}
	p, ok := n.pairs[key]
	if !ok {
		p = &pair{}
		n.pairs[key] = p
	}
	return p
}

// arrived runs the receive-side reorder buffer: fire in-order deliveries
// immediately, hold ahead-of-order ones, and suppress (count) any sequence
// number that has already fired — the no-duplicate-delivery guarantee.
func (n *Network) arrived(src, dst int, seq uint64, fire func()) {
	pr := n.pairOf(src, dst)
	if seq < pr.nextDeliver {
		n.dupSuppressed.Inc()
		return
	}
	if seq > pr.nextDeliver {
		if pr.held == nil {
			pr.held = make(map[uint64]func())
		}
		pr.held[seq] = fire
		n.heldCount++
		n.heldHW.Set(n.heldCount)
		return
	}
	pr.nextDeliver++
	fire()
	for {
		f, ok := pr.held[pr.nextDeliver]
		if !ok {
			return
		}
		delete(pr.held, pr.nextDeliver)
		pr.nextDeliver++
		n.heldCount--
		n.heldHW.Set(n.heldCount)
		f()
	}
}

// pickRail returns the highest-priority live rail, preferring healthy
// over suspect, excluding `exclude` (pass -1 for none). ok is false when
// every rail is dead (or excluded).
func (n *Network) pickRail(exclude int) (int, bool) {
	for _, want := range []State{Healthy, Suspect} {
		for i, m := range n.mon {
			if i != exclude && m.state == want {
				return i, true
			}
		}
	}
	return 0, false
}

// stripeSet returns the rails a striped bulk may use: every healthy rail,
// or — when none is healthy — every suspect one.
func (n *Network) stripeSet() []int {
	var set []int
	for i, m := range n.mon {
		if m.state == Healthy {
			set = append(set, i)
		}
	}
	if len(set) == 0 {
		for i, m := range n.mon {
			if m.state == Suspect {
				set = append(set, i)
			}
		}
	}
	return set
}

// armMonitors (re)starts every rail's heartbeat loop; called on each send
// so probing only runs while the job communicates.
func (n *Network) armMonitors() {
	for _, m := range n.mon {
		m.arm()
	}
}

var _ dev.Network = (*Network)(nil)
var _ dev.TraceAttacher = (*Network)(nil)
var _ dev.FaultPlanner = (*Network)(nil)
var _ dev.UtilizationReporter = (*Network)(nil)
var _ metrics.Instrumentable = (*Network)(nil)
