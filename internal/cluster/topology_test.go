package cluster

import (
	"errors"
	"strings"
	"testing"

	"mpinet/internal/dev"
)

func TestTopologyOptionNames(t *testing.T) {
	cases := []struct {
		p    Platform
		want string
	}{
		{IBA().With(Crossbar()), "IBA"},
		{IBA().With(FatTree(24, 2)), "IBA-FT"},
		{Myri().With(Clos(3, 24, 2)), "Myri-Clos"},
		{QSN().With(FatTree(16, 1), WithRouting(Adaptive)), "QSN-FT-adapt"},
	}
	for _, c := range cases {
		if c.p.Name != c.want {
			t.Errorf("platform name = %q, want %q", c.p.Name, c.want)
		}
	}
}

func TestInvalidTopologySurfacesConfigError(t *testing.T) {
	// 25 ports cannot split 2:1; the builder cannot return an error, so the
	// network must carry a typed ConfigError naming the option call.
	net := IBA().With(FatTree(25, 2)).New(8)
	ce, ok := net.(dev.ConfigErrer)
	if !ok || ce.ConfigErr() == nil {
		t.Fatal("invalid FatTree built a usable network")
	}
	var cfgErr *ConfigError
	if !errors.As(ce.ConfigErr(), &cfgErr) {
		t.Fatalf("error type %T, want *ConfigError", ce.ConfigErr())
	}
	if cfgErr.Option != "FatTree(25, 2)" {
		t.Errorf("Option = %q, want the offending call", cfgErr.Option)
	}
	if !strings.Contains(cfgErr.Error(), "cluster: invalid FatTree(25, 2)") {
		t.Errorf("message = %q", cfgErr.Error())
	}
	// The stub still satisfies the network interface without panicking on
	// the read-only methods NewWorld touches first.
	if net.Nodes() != 0 || net.Engine() == nil {
		t.Fatal("error network stub misbehaves")
	}
}

func TestValidTopologiesBuild(t *testing.T) {
	for _, p := range []Platform{
		IBA().With(Crossbar()),
		IBA().With(FatTree(24, 2)),
		Myri().With(Clos(2, 8, 1)),
		QSN().With(Clos(3, 24, 2), WithRouting(Adaptive)),
	} {
		net := p.New(32)
		if ce, ok := net.(dev.ConfigErrer); ok && ce.ConfigErr() != nil {
			t.Fatalf("%s: %v", p.Name, ce.ConfigErr())
		}
		if net.Nodes() < 32 {
			t.Fatalf("%s wired %d nodes", p.Name, net.Nodes())
		}
		dn, ok := net.(dev.DomainNetwork)
		if !ok || dn.Domains() == nil {
			t.Fatalf("%s: topology API network lacks a domain placement", p.Name)
		}
	}
}

// IBAFatTree's node-count argument used to be ignored: the platform built
// however many nodes the caller later passed to New, so pre-sizing the tree
// for p processes did nothing. It now floors the built world.
func TestIBAFatTreeHonorsNodeCount(t *testing.T) {
	net := IBAFatTree(64).New(4)
	if net.Nodes() < 64 {
		t.Fatalf("IBAFatTree(64).New(4) wired %d nodes, want >= 64", net.Nodes())
	}
	// Asking for more than the floor still grows.
	if n := IBAFatTree(16).New(64).Nodes(); n < 64 {
		t.Fatalf("IBAFatTree(16).New(64) wired %d nodes", n)
	}
}

func TestLeafAlignedPartition(t *testing.T) {
	p := IBA().With(FatTree(24, 2), WithShards(4))
	part := p.Partition(64) // 16 hosts/leaf, 4 leaves
	if part.Shards != 4 {
		t.Fatalf("shards = %d", part.Shards)
	}
	hpl := 16
	for leaf := 0; leaf < 4; leaf++ {
		want := part.NodeShard[leaf*hpl]
		for i := 0; i < hpl; i++ {
			if part.NodeShard[leaf*hpl+i] != want {
				t.Fatalf("leaf %d split across shards", leaf)
			}
		}
	}
}
