package cluster

import (
	"testing"

	"mpinet/internal/units"
)

func TestOSUPlatforms(t *testing.T) {
	ps := OSU()
	if len(ps) != 3 {
		t.Fatalf("OSU returns %d platforms", len(ps))
	}
	wantNames := []string{"IBA", "Myri", "QSN"}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("platform %d = %q, want %q", i, p.Name, wantNames[i])
		}
		n := p.New(8)
		if n.Nodes() != 8 {
			t.Errorf("%s: nodes = %d", p.Name, n.Nodes())
		}
		if n.Name() != p.Name {
			t.Errorf("%s: network name %q", p.Name, n.Name())
		}
	}
}

func TestFreshEnginesPerBuild(t *testing.T) {
	p := IBA()
	a, b := p.New(2), p.New(2)
	if a.Engine() == b.Engine() {
		t.Fatal("platforms must wire independent engines")
	}
}

func TestTopspinScales(t *testing.T) {
	n := Topspin().New(16)
	if n.Nodes() != 16 {
		t.Fatalf("Topspin nodes = %d", n.Nodes())
	}
	if n.Name() != "IBA" {
		t.Fatalf("Topspin network name = %q (reports as InfiniBand)", n.Name())
	}
}

func TestIBAPCIIsDistinctPlatform(t *testing.T) {
	if IBAPCI().Name != "IBA-PCI" {
		t.Fatal("IBA-PCI platform name")
	}
	// Both variants must wire fine at 8 nodes.
	if IBAPCI().New(8).Nodes() != 8 {
		t.Fatal("IBA-PCI wiring failed")
	}
}

func TestShmemPolicyDiffersAcrossPlatforms(t *testing.T) {
	iba := IBA().New(2).ShmemBelow()
	myri := Myri().New(2).ShmemBelow()
	qsn := QSN().New(2).ShmemBelow()
	if iba != 16*units.KB {
		t.Errorf("IBA shmem policy = %d", iba)
	}
	if myri <= iba {
		t.Error("MPICH-GM should use shared memory at all sizes")
	}
	if qsn != 0 {
		t.Error("Quadrics MPI should never use the shared-memory channel")
	}
}

func TestExtensionPlatforms(t *testing.T) {
	if IBAOnDemand().New(4).Nodes() != 4 {
		t.Fatal("IBA-OD wiring")
	}
	if IBAMulticast().New(4).Nodes() != 4 {
		t.Fatal("IBA-MC wiring")
	}
	if IBAEagerThreshold(8192).New(2).NewEndpoint(0).EagerThreshold() != 8192 {
		t.Fatal("IBA-ET threshold not applied")
	}
	ft := IBAFatTree(48).New(48)
	if ft.Nodes() != 48 {
		t.Fatal("IBA-FT wiring at 48 nodes")
	}
	// Small fat-tree requests still get at least two leaves.
	if IBAFatTree(8).New(8).Nodes() != 8 {
		t.Fatal("IBA-FT wiring at 8 nodes")
	}
}

func TestPlatformNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Platform{IBA(), IBAPCI(), Topspin(), Myri(), QSN(),
		IBAOnDemand(), IBAMulticast(), IBAFatTree(32), IBAEagerThreshold(4096)} {
		if seen[p.Name] {
			t.Fatalf("duplicate platform name %q", p.Name)
		}
		seen[p.Name] = true
	}
}
