package cluster

import (
	"testing"

	"mpinet/internal/dev"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestOSUPlatforms(t *testing.T) {
	ps := OSU()
	if len(ps) != 3 {
		t.Fatalf("OSU returns %d platforms", len(ps))
	}
	wantNames := []string{"IBA", "Myri", "QSN"}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("platform %d = %q, want %q", i, p.Name, wantNames[i])
		}
		n := p.New(8)
		if n.Nodes() != 8 {
			t.Errorf("%s: nodes = %d", p.Name, n.Nodes())
		}
		if n.Name() != p.Name {
			t.Errorf("%s: network name %q", p.Name, n.Name())
		}
	}
}

func TestFreshEnginesPerBuild(t *testing.T) {
	p := IBA()
	a, b := p.New(2), p.New(2)
	if a.Engine() == b.Engine() {
		t.Fatal("platforms must wire independent engines")
	}
}

func TestTopspinScales(t *testing.T) {
	n := Topspin().New(16)
	if n.Nodes() != 16 {
		t.Fatalf("Topspin nodes = %d", n.Nodes())
	}
	if n.Name() != "IBA" {
		t.Fatalf("Topspin network name = %q (reports as InfiniBand)", n.Name())
	}
}

func TestIBAPCIIsDistinctPlatform(t *testing.T) {
	if IBAPCI().Name != "IBA-PCI" {
		t.Fatal("IBA-PCI platform name")
	}
	// Both variants must wire fine at 8 nodes.
	if IBAPCI().New(8).Nodes() != 8 {
		t.Fatal("IBA-PCI wiring failed")
	}
}

func TestShmemPolicyDiffersAcrossPlatforms(t *testing.T) {
	iba := IBA().New(2).ShmemBelow()
	myri := Myri().New(2).ShmemBelow()
	qsn := QSN().New(2).ShmemBelow()
	if iba != 16*units.KB {
		t.Errorf("IBA shmem policy = %d", iba)
	}
	if myri <= iba {
		t.Error("MPICH-GM should use shared memory at all sizes")
	}
	if qsn != 0 {
		t.Error("Quadrics MPI should never use the shared-memory channel")
	}
}

func TestExtensionPlatforms(t *testing.T) {
	if IBAOnDemand().New(4).Nodes() != 4 {
		t.Fatal("IBA-OD wiring")
	}
	if IBAMulticast().New(4).Nodes() != 4 {
		t.Fatal("IBA-MC wiring")
	}
	if IBAEagerThreshold(8192).New(2).NewEndpoint(0).EagerThreshold() != 8192 {
		t.Fatal("IBA-ET threshold not applied")
	}
	ft := IBAFatTree(48).New(48)
	if ft.Nodes() != 48 {
		t.Fatal("IBA-FT wiring at 48 nodes")
	}
	// Small fat-tree requests still get at least two leaves.
	if IBAFatTree(8).New(8).Nodes() != 8 {
		t.Fatal("IBA-FT wiring at 8 nodes")
	}
}

func TestPlatformNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Platform{IBA(), IBAPCI(), Topspin(), Myri(), QSN(),
		IBAOnDemand(), IBAMulticast(), IBAFatTree(32), IBAEagerThreshold(4096)} {
		if seen[p.Name] {
			t.Fatalf("duplicate platform name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestWithShardsBuildsShardedGroup(t *testing.T) {
	for _, mk := range []func() Platform{IBA, Myri, QSN} {
		p := mk().With(WithShards(4))
		if got := p.Name; got != mk().Name {
			t.Fatalf("WithShards changed the platform name to %q; shard count must not leak into reports", got)
		}
		net := p.New(4)
		eng := net.Engine()
		if eng.ShardID() != 0 {
			t.Fatalf("%s: network engine is shard %d, want 0", net.Name(), eng.ShardID())
		}
		// The member engine must drive the whole group: a trivial event on
		// shard 0 runs to completion under the window scheduler.
		ran := false
		eng.Schedule(0, func() { ran = true })
		if err := eng.Run(); err != nil {
			t.Fatalf("%s sharded Run: %v", net.Name(), err)
		}
		if !ran {
			t.Fatalf("%s: sharded engine dispatched nothing", net.Name())
		}
	}
}

func TestShardedLookaheadFromNetwork(t *testing.T) {
	// Each fabric states its own latency floor; the bond takes the fastest
	// member's. These feed the shard scheduler's lookahead directly.
	la := func(p Platform) sim.Time {
		lr, ok := p.New(2).(dev.LookaheadReporter)
		if !ok {
			t.Fatalf("%s does not report a lookahead", p.Name)
		}
		return lr.MinLinkLatency()
	}
	iba, myri, qsn := la(IBA()), la(Myri()), la(QSN())
	if !(qsn < myri && myri < iba) {
		t.Errorf("lookahead ordering QSN(%v) < Myri(%v) < IBA(%v) violated", qsn, myri, iba)
	}
	if got := la(Bond(IBA(), QSN())); got != qsn {
		t.Errorf("bond lookahead %v, want fastest member %v", got, qsn)
	}
}

func TestPlatformPartition(t *testing.T) {
	p := IBA().With(WithShards(4)).Partition(8)
	if p.Shards != 4 || len(p.NodeShard) != 8 || p.SwitchShard != 0 {
		t.Fatalf("partition = %+v", p)
	}
	if q := IBA().Partition(8); q.Shards != 1 {
		t.Fatalf("unsharded partition has %d shards, want 1", q.Shards)
	}
}
