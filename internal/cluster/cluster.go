// Package cluster defines the testbed configurations of the paper as
// reusable platform factories: the 8-node OSU cluster wired with each of the
// three interconnects, the InfiniBand-on-PCI variant of Section 4.7, and the
// 16-node Topspin InfiniBand cluster of Section 4.2.
package cluster

import (
	"mpinet/internal/bus"
	"mpinet/internal/dev"
	"mpinet/internal/elan"
	"mpinet/internal/fabric"
	"mpinet/internal/gm"
	"mpinet/internal/sim"
	"mpinet/internal/verbs"
)

// Platform is a buildable interconnect testbed. New returns a freshly wired
// network (with its own simulation engine) of the given node count.
type Platform struct {
	Name string
	New  func(nodes int) dev.Network
}

// IBA is InfiniBand on PCI-X with the 8-port InfiniScale switch (the
// paper's primary InfiniBand platform).
func IBA() Platform {
	return Platform{Name: "IBA", New: func(nodes int) dev.Network {
		return verbs.New(sim.New(), verbs.DefaultConfig(nodes))
	}}
}

// IBAPCI is the same InfiniBand platform forced onto a 64-bit/66 MHz PCI
// bus (Figures 26–28).
func IBAPCI() Platform {
	return Platform{Name: "IBA-PCI", New: func(nodes int) dev.Network {
		cfg := verbs.DefaultConfig(nodes)
		cfg.Bus = bus.PCI64x66
		return verbs.New(sim.New(), cfg)
	}}
}

// Topspin is the 16-node Topspin InfiniBand cluster with the 24-port
// Topspin 360 switch (Figure 24).
func Topspin() Platform {
	return Platform{Name: "IBA-Topspin", New: func(nodes int) dev.Network {
		cfg := verbs.DefaultConfig(nodes)
		cfg.SwitchPorts = 24
		return verbs.New(sim.New(), cfg)
	}}
}

// Myri is Myrinet-2000 with GM.
func Myri() Platform {
	return Platform{Name: "Myri", New: func(nodes int) dev.Network {
		return gm.New(sim.New(), gm.DefaultConfig(nodes))
	}}
}

// QSN is the Quadrics QsNet (Elan3 + Elite-16).
func QSN() Platform {
	return Platform{Name: "QSN", New: func(nodes int) dev.Network {
		return elan.New(sim.New(), elan.DefaultConfig(nodes))
	}}
}

// OSU returns the three interconnects of the 8-node OSU testbed, in the
// paper's ordering.
func OSU() []Platform {
	return []Platform{IBA(), Myri(), QSN()}
}

// IBAOnDemand is InfiniBand with the on-demand connection-management
// extension the paper's memory-usage discussion points to (Section 3.8):
// Reliable Connections are established on first contact, so per-connection
// memory tracks peers actually spoken to.
func IBAOnDemand() Platform {
	return Platform{Name: "IBA-OD", New: func(nodes int) dev.Network {
		cfg := verbs.DefaultConfig(nodes)
		cfg.OnDemandConnections = true
		return verbs.New(sim.New(), cfg)
	}}
}

// IBAMulticast is InfiniBand with the hardware-supported collective
// extension of Section 3.7: broadcasts ride switch multicast.
func IBAMulticast() Platform {
	return Platform{Name: "IBA-MC", New: func(nodes int) dev.Network {
		cfg := verbs.DefaultConfig(nodes)
		cfg.HWMulticast = true
		return verbs.New(sim.New(), cfg)
	}}
}

// IBAFatTree is InfiniBand on a two-level fat tree built from 24-port
// elements (16 hosts and 8 up-links per leaf): the scaling extension for
// clusters larger than one switch. It grows to 16*leaves hosts with 2:1
// oversubscription.
func IBAFatTree(nodes int) Platform {
	return Platform{Name: "IBA-FT", New: func(n int) dev.Network {
		leaves := (n + 15) / 16
		if leaves < 2 {
			leaves = 2
		}
		cfg := verbs.DefaultConfig(n)
		cfg.FatTree = &fabric.FatTreeConfig{
			HostsPerLeaf: 16,
			Leaves:       leaves,
			Spines:       8,
		}
		return verbs.New(sim.New(), cfg)
	}}
}

// IBAEagerThreshold is InfiniBand with an overridden eager/rendezvous
// switch point — the ablation knob behind the Figure 2 protocol-dip study.
func IBAEagerThreshold(threshold int64) Platform {
	return Platform{Name: "IBA-ET", New: func(nodes int) dev.Network {
		cfg := verbs.DefaultConfig(nodes)
		cfg.EagerThreshold = threshold
		return verbs.New(sim.New(), cfg)
	}}
}
