// Package cluster defines the testbed configurations of the paper as
// reusable platform factories: the 8-node OSU cluster wired with each of the
// three interconnects, the InfiniBand-on-PCI variant of Section 4.7, and the
// 16-node Topspin InfiniBand cluster of Section 4.2.
//
// Platforms compose through functional options: a Platform value carries a
// Settings baseline, With derives a variant (InfiniBand on plain PCI is
// IBA().With(PCIBus())), and the same Option values also configure the MPI
// world (WithFaults, WithTimeout, WithProcsPerNode — applied by
// ApplyWorld). The historical one-off constructors (IBAPCI, IBAOnDemand,
// ...) remain as thin deprecated wrappers over the options.
package cluster

import (
	"fmt"

	"mpinet/internal/bus"
	"mpinet/internal/dev"
	"mpinet/internal/elan"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/gm"
	"mpinet/internal/metrics"
	"mpinet/internal/rail"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
	"mpinet/internal/verbs"
)

// Settings is the resolved platform-side option set a network is wired
// from. Knobs a given interconnect does not implement (PCI and on-demand
// connections are InfiniBand-only, for example) are silently ignored by
// the other builders, mirroring how the real libraries expose different
// tunables.
type Settings struct {
	// PCI forces the 64-bit/66 MHz PCI bus instead of PCI-X (verbs only).
	PCI bool
	// OnDemand enables on-demand RC connection management (verbs only).
	OnDemand bool
	// Multicast enables hardware multicast collectives (verbs only).
	Multicast bool
	// AutoFatTree replaces the single crossbar with a two-level fat tree
	// sized from the node count (verbs only).
	AutoFatTree bool
	// EagerThreshold overrides the implementation's eager/rendezvous switch
	// point (0 = implementation default).
	EagerThreshold int64
	// SwitchPorts overrides the switch radix (0 = platform default).
	SwitchPorts int
	// Faults, when non-nil, is the fault-injection plan the network runs
	// under (see internal/faults).
	Faults *faults.Plan
	// Seed, when non-zero, overrides the fault plan's seed — the handle
	// the -seed CLI flag turns.
	Seed uint64
	// RailPolicy selects the bond's degraded-mode policy (bonded platforms
	// only; see Bond).
	RailPolicy rail.Policy
	// Heartbeat overrides the bond's health-monitor probe period (0 = rail
	// package default; bonded platforms only).
	Heartbeat sim.Time
	// Shards is the conservative-parallel shard count the network's engine
	// group is built with (0 or 1 = plain serial engine). See WithShards.
	Shards int
	// Topology, when non-nil, selects a parameterized fabric from the
	// topology option family (Crossbar, FatTree, Clos); nil keeps the
	// platform's classic single crossbar. Unlike the legacy knobs, a
	// Topology also carries the node-domain placement that lets sharded
	// runs split the device build across engines.
	Topology *TopologySpec
	// Routing selects the multi-stage fabric's path policy (WithRouting);
	// inert on crossbar fabrics.
	Routing fabric.Routing
	// MinNodes floors the node count New wires, whatever smaller count the
	// caller asks for (MinNodes option; the IBAFatTree compatibility path).
	MinNodes int

	// domains is the node-domain placement Platform.New computes for
	// topology-API worlds and hands to the device builders; never set by an
	// Option.
	domains *dev.Domains
}

// TopoKind enumerates the parameterized fabrics of the topology API.
type TopoKind int

const (
	// TopoCrossbar is the single-crossbar star, with the switch radix grown
	// to the node count.
	TopoCrossbar TopoKind = iota
	// TopoFatTree is the two-level folded Clos (leaf/spine).
	TopoFatTree
	// TopoClos is the general multi-level folded Clos.
	TopoClos
)

// TopologySpec is the resolved fabric selection of the topology option
// family: which fabric, and its dimensions.
type TopologySpec struct {
	Kind    TopoKind
	Levels  int // switching levels (Clos; FatTree pins 2)
	Radix   int // ports per switching element
	Oversub int // leaf oversubscription ratio N in N:1
}

// optionName renders the option call this spec came from, for ConfigError.
func (t *TopologySpec) optionName() string {
	switch t.Kind {
	case TopoCrossbar:
		return "Crossbar()"
	case TopoFatTree:
		return fmt.Sprintf("FatTree(%d, %d)", t.Radix, t.Oversub)
	default:
		return fmt.Sprintf("Clos(%d, %d, %d)", t.Levels, t.Radix, t.Oversub)
	}
}

// hostsPerLeaf is the host port count per leaf element.
func (t *TopologySpec) hostsPerLeaf() int { return t.Radix * t.Oversub / (t.Oversub + 1) }

// validate checks the spec's dimensions, wrapping the fabric-level report
// into a ConfigError that names the offending option call.
func (t *TopologySpec) validate() error {
	if t.Kind == TopoCrossbar {
		return nil
	}
	cc := fabric.ClosConfig{Levels: t.Levels, Radix: t.Radix, Oversub: t.Oversub}
	if err := cc.Validate(); err != nil {
		return &ConfigError{Option: t.optionName(), Reason: err.Error()}
	}
	return nil
}

// closConfig assembles the device-facing fabric configuration (rates and
// latencies stay zero: each interconnect fills its own calibration).
func (t *TopologySpec) closConfig(s Settings) *fabric.ClosConfig {
	return &fabric.ClosConfig{
		Levels:  t.Levels,
		Radix:   t.Radix,
		Oversub: t.Oversub,
		Routing: s.Routing,
		Seed:    s.Seed,
	}
}

// ConfigError reports an invalid platform option combination, named after
// the option call that produced it (the same typed-validation style the
// options of internal/faults use). Platform.New cannot return an error, so
// the value rides the built network as its ConfigErr (dev.ConfigErrer) and
// surfaces from mpi.NewWorld.
type ConfigError struct {
	Option string // the option call, e.g. "FatTree(24, 3)"
	Reason string // what is wrong with it
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("cluster: invalid %s: %s", e.Option, e.Reason)
}

// Routing policy values, re-exported so platform callers need not import
// the fabric package.
const (
	Deterministic = fabric.Deterministic
	Adaptive      = fabric.Adaptive
)

// plan resolves the effective fault plan: a copy of Faults with the Seed
// override applied, or nil when faults are off.
func (s Settings) plan() *faults.Plan {
	if s.Faults == nil {
		return nil
	}
	p := *s.Faults
	if s.Seed != 0 {
		p.Seed = s.Seed
	}
	return &p
}

// Platform is a buildable interconnect testbed: a name, a Settings
// baseline, and the interconnect-specific builder. Platform is a value
// type — With and Named return derived copies, so predefined platforms are
// never mutated. Builders take the engine from outside so composite
// platforms (Bond) can wire several fabrics onto one shared engine.
type Platform struct {
	Name  string
	base  Settings
	build func(eng *sim.Engine, nodes int, s Settings) dev.Network
}

// defaultLookahead is the cross-shard lookahead used when a network cannot
// state its own latency floor (dev.LookaheadReporter): half the smallest
// wire latency of the modelled fabrics, conservatively safe for all three.
const defaultLookahead = 40 * units.Nanosecond

// New returns a freshly wired network (with its own simulation engine) of
// the given node count, configured per the platform's settings.
//
// With Shards > 1 the engine is shard 0 of a sim.Sharded group whose
// cross-shard lookahead is the network's own MinLinkLatency (or a
// conservative default when the network cannot state one). The network's
// device state all lives on shard 0 today — Partition gives the placement —
// so figure runs stay byte-identical at every shard count while partitioned
// workloads (and the staged device-domain split, see docs/MODEL.md §17) use
// the remaining shards.
func (p Platform) New(nodes int) dev.Network {
	s := p.base
	if nodes < s.MinNodes {
		nodes = s.MinNodes
	}
	if s.Topology != nil {
		if err := s.Topology.validate(); err != nil {
			return errNetwork{eng: sim.New(), err: err}
		}
	}
	if s.Shards <= 1 {
		eng := sim.New()
		if s.Topology != nil {
			s.domains = &dev.Domains{
				NodeShard: s.partitionFor(nodes).NodeShard,
				Engines:   []*sim.Engine{eng},
			}
		}
		return p.build(eng, nodes, s)
	}
	group := sim.NewSharded(s.Shards, defaultLookahead)
	if s.Topology != nil {
		engines := make([]*sim.Engine, s.Shards)
		for i := range engines {
			engines[i] = group.Shard(i)
		}
		s.domains = &dev.Domains{
			NodeShard: s.partitionFor(nodes).NodeShard,
			Engines:   engines,
		}
	}
	net := p.build(group.Shard(0), nodes, s)
	if lr, ok := net.(dev.LookaheadReporter); ok {
		if la := lr.MinLinkLatency(); la > 0 {
			group.SetLookahead(la)
		}
	}
	return net
}

// Partition reports the node/switch → shard placement New would use for an
// n-node world at the platform's configured shard count.
func (p Platform) Partition(nodes int) sim.Partition {
	return p.base.partitionFor(nodes)
}

// partitionFor computes the node → shard placement. Multi-stage fabrics get
// a leaf-aligned split — all hosts of a leaf share a shard, so every
// leaf-local fabric resource (up-link pipes, dispersion counters) is owned
// by exactly one engine; everything else keeps the contiguous block split.
func (s Settings) partitionFor(nodes int) sim.Partition {
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	if t := s.Topology; t != nil && t.Kind != TopoCrossbar {
		hpl := t.hostsPerLeaf()
		leaves := (nodes + hpl - 1) / hpl
		if leaves < 2 {
			leaves = 2
		}
		p := sim.Partition{Shards: shards, NodeShard: make([]int, nodes)}
		for i := range p.NodeShard {
			p.NodeShard[i] = (i / hpl) * shards / leaves
		}
		return p
	}
	return sim.PartitionNodes(nodes, shards)
}

// errNetwork is the network a misconfigured platform builds: it carries the
// validation failure for mpi.NewWorld to surface (dev.ConfigErrer) and
// panics with it on any attempt at actual use.
type errNetwork struct {
	eng *sim.Engine
	err error
}

func (n errNetwork) Name() string                  { return "invalid" }
func (n errNetwork) Engine() *sim.Engine           { return n.eng }
func (n errNetwork) Nodes() int                    { return 0 }
func (n errNetwork) NewEndpoint(int) dev.Endpoint  { panic(n.err) }
func (n errNetwork) ShmemBelow() int64             { return 0 }
func (n errNetwork) ConfigErr() error              { return n.err }

// With derives a variant platform with the options' platform-side effects
// applied. Options that carry a name suffix (PCIBus -> "-PCI") extend the
// platform name so derived variants stay distinguishable in reports.
func (p Platform) With(opts ...Option) Platform {
	d := p
	for _, o := range opts {
		if o.platform != nil {
			o.platform(&d.base)
		}
		d.Name += o.suffix
	}
	return d
}

// Named returns a copy of the platform under a different report name.
func (p Platform) Named(name string) Platform {
	p.Name = name
	return p
}

// Settings exposes the resolved baseline (for tests and diagnostics).
func (p Platform) Settings() Settings { return p.base }

// WorldSetter is the slice of the MPI world configuration an Option may
// adjust; *mpi.Config implements it. It is an interface rather than the
// concrete type so this package does not import mpi (whose own tests build
// platforms from here).
type WorldSetter interface {
	SetProcsPerNode(int)
	SetMapping(int)
	SetTimeline(*trace.Timeline)
	SetMetrics(*metrics.Registry)
	SetTimeout(sim.Time)
	SetFaultTolerant(bool)
}

// Option is one functional option. A single option may act on the platform
// (network wiring), on the MPI world configuration, or both — WithFaults,
// for instance, installs the plan into the network and arms the world's
// watchdog.
type Option struct {
	suffix   string
	platform func(*Settings)
	world    func(WorldSetter)
}

// ApplyWorld applies the world-side effect of each option to cfg.
// Platform-only options are no-ops here, so callers can pass one option
// list to both Platform.With and ApplyWorld.
func ApplyWorld(cfg WorldSetter, opts ...Option) {
	for _, o := range opts {
		if o.world != nil {
			o.world(cfg)
		}
	}
}

// PCIBus forces the plain 64-bit/66 MHz PCI bus of the Figure 26–28
// comparison (verbs only).
func PCIBus() Option {
	return Option{suffix: "-PCI", platform: func(s *Settings) { s.PCI = true }}
}

// OnDemand enables on-demand RC connection management (Section 3.8).
func OnDemand() Option {
	return Option{suffix: "-OD", platform: func(s *Settings) { s.OnDemand = true }}
}

// Multicast enables the hardware-collective extension (Section 3.7).
func Multicast() Option {
	return Option{suffix: "-MC", platform: func(s *Settings) { s.Multicast = true }}
}

// AutoFatTree replaces the single crossbar with the legacy two-level fat
// tree sized from the node count: 16 hosts and 8 up-links per 24-port leaf,
// 2:1 oversubscribed (verbs only).
//
// Deprecated: use FatTree(24, 2), which wires the same geometry through the
// parameterized Clos fabric, works on every interconnect, and supports
// sharded node domains.
func AutoFatTree() Option {
	return Option{suffix: "-FT", platform: func(s *Settings) { s.AutoFatTree = true }}
}

// Crossbar pins the platform to its single-crossbar fabric explicitly
// through the topology API. Unlike the implicit default, the switch radix
// grows with the node count instead of refusing past the paper's port
// count, and sharded runs split the device build across node domains.
func Crossbar() Option {
	return Option{platform: func(s *Settings) {
		s.Topology = &TopologySpec{Kind: TopoCrossbar}
	}}
}

// FatTree replaces the single crossbar with a two-level folded-Clos
// (leaf/spine) fabric built from radix-port elements at the given
// oversubscription ratio. FatTree(24, 2) — 16 hosts and 8 up-links per
// leaf — reproduces the legacy AutoFatTree geometry.
func FatTree(radix, oversub int) Option {
	return Option{suffix: "-FT", platform: func(s *Settings) {
		s.Topology = &TopologySpec{Kind: TopoFatTree, Levels: 2, Radix: radix, Oversub: oversub}
	}}
}

// Clos generalizes FatTree to deeper fabrics: levels switching levels of
// radix-port elements with the given leaf oversubscription — the shape of
// thousand-rank clusters that outgrow one spine tier.
func Clos(levels, radix, oversub int) Option {
	return Option{suffix: "-Clos", platform: func(s *Settings) {
		s.Topology = &TopologySpec{Kind: TopoClos, Levels: levels, Radix: radix, Oversub: oversub}
	}}
}

// WithRouting selects the multi-stage fabric's path policy: Deterministic
// ECMP (the default) or Adaptive dispersive routing. Adaptive variants
// carry a "-adapt" name suffix so reports distinguish the two models;
// inert on crossbar fabrics.
func WithRouting(r fabric.Routing) Option {
	suffix := ""
	if r == fabric.Adaptive {
		suffix = "-adapt"
	}
	return Option{suffix: suffix, platform: func(s *Settings) { s.Routing = r }}
}

// MinNodes floors the node count New wires, whatever smaller count the
// caller asks for — the deprecation path for constructors whose size
// argument predates sizing from New's own argument.
func MinNodes(n int) Option {
	return Option{platform: func(s *Settings) { s.MinNodes = n }}
}

// EagerThreshold overrides the eager/rendezvous protocol switch point —
// the ablation knob behind the Figure 2 protocol-dip study.
func EagerThreshold(threshold int64) Option {
	return Option{suffix: "-ET", platform: func(s *Settings) { s.EagerThreshold = threshold }}
}

// SwitchPorts overrides the switch radix (no name suffix: radix variants
// name themselves, as Topspin does).
func SwitchPorts(ports int) Option {
	return Option{platform: func(s *Settings) { s.SwitchPorts = ports }}
}

// WithFaults runs the platform under the given fault plan and arms the MPI
// watchdog (at faults.DefaultTimeout unless WithTimeout overrides it), so
// a faulty run terminates with a typed error instead of hanging.
func WithFaults(plan *faults.Plan) Option {
	return Option{platform: func(s *Settings) { s.Faults = plan }}
}

// clonePlan returns a shallow copy of the plan (a fresh empty plan when
// nil), so the chaining fault options below never mutate a caller-owned
// value shared across platform variants.
func clonePlan(p *faults.Plan) *faults.Plan {
	if p == nil {
		return &faults.Plan{}
	}
	cp := *p
	return &cp
}

// WithSwitchKills adds switching-element deaths to the platform's fault
// plan (creating one if WithFaults was not given), arming the fabric's
// self-healing path: after the plan's detection delay, deterministic ECMP
// re-hashes around the dead element and adaptive routing stops scanning it.
func WithSwitchKills(kills ...faults.SwitchKill) Option {
	return Option{platform: func(s *Settings) {
		p := clonePlan(s.Faults)
		p.SwitchKills = append(append([]faults.SwitchKill(nil), p.SwitchKills...), kills...)
		s.Faults = p
	}}
}

// WithLinecardDegrades adds partial switching-element degradations (a drop
// probability on one element's ports over a window) to the fault plan.
func WithLinecardDegrades(degrades ...faults.LinecardDegrade) Option {
	return Option{platform: func(s *Settings) {
		p := clonePlan(s.Faults)
		p.LinecardDegrades = append(append([]faults.LinecardDegrade(nil), p.LinecardDegrades...), degrades...)
		s.Faults = p
	}}
}

// WithNodeCrashes adds host deaths to the fault plan: the node's links
// black-hole from the crash instant, and the MPI ranks on it die — see
// mpi.Config.FaultTolerant (WithFaultTolerant) for how the survivors learn.
func WithNodeCrashes(crashes ...faults.NodeCrash) Option {
	return Option{platform: func(s *Settings) {
		p := clonePlan(s.Faults)
		p.NodeCrashes = append(append([]faults.NodeCrash(nil), p.NodeCrashes...), crashes...)
		s.Faults = p
	}}
}

// WithDetectDelay sets how long the fabric takes to notice a dead element
// or host (the black-hole window during which device retries carry the
// traffic); 0 keeps faults.DefaultDetectDelay.
func WithDetectDelay(d sim.Time) Option {
	return Option{platform: func(s *Settings) {
		p := clonePlan(s.Faults)
		p.DetectDelay = d
		s.Faults = p
	}}
}

// WithFaultTolerant arms ULFM-style rank-death notification in the MPI
// world: pending point-to-point operations on a crashed peer complete with
// Status.Err set instead of aborting the job.
func WithFaultTolerant() Option {
	return Option{world: func(c WorldSetter) { c.SetFaultTolerant(true) }}
}

// WithSeed overrides the fault plan's seed and drives the adaptive-routing
// tie-break PRNG; with neither a plan nor adaptive routing it is inert.
func WithSeed(seed uint64) Option {
	return Option{platform: func(s *Settings) { s.Seed = seed }}
}

// WithProcsPerNode sets how many ranks share a node (the paper's SMP
// configuration).
func WithProcsPerNode(n int) Option {
	return Option{world: func(c WorldSetter) { c.SetProcsPerNode(n) }}
}

// WithMapping sets the rank-to-node placement (an mpi.Mapping value).
func WithMapping(m int) Option {
	return Option{world: func(c WorldSetter) { c.SetMapping(m) }}
}

// WithTimeline collects message-level events from the run.
func WithTimeline(tl *trace.Timeline) Option {
	return Option{world: func(c WorldSetter) { c.SetTimeline(tl) }}
}

// WithMetrics wires every layer into the registry.
func WithMetrics(m *metrics.Registry) Option {
	return Option{world: func(c WorldSetter) { c.SetMetrics(m) }}
}

// WithTimeout sets the per-wait MPI watchdog explicitly (negative
// disables it even under a fault plan).
func WithTimeout(d sim.Time) Option {
	return Option{world: func(c WorldSetter) { c.SetTimeout(d) }}
}

// WithRailPolicy selects a bonded platform's degraded-mode policy
// (rail.Failover or rail.Stripe). Stripe bonds get a "-stripe" name suffix
// so reports distinguish the two; Failover is the default and keeps the
// plain bond name. Inert on solo platforms.
func WithRailPolicy(p rail.Policy) Option {
	suffix := ""
	if p == rail.Stripe {
		suffix = "-stripe"
	}
	return Option{suffix: suffix, platform: func(s *Settings) { s.RailPolicy = p }}
}

// WithHeartbeat sets a bonded platform's health-monitor probe period.
// Inert on solo platforms.
func WithHeartbeat(d sim.Time) Option {
	return Option{platform: func(s *Settings) { s.Heartbeat = d }}
}

// WithShards builds the platform's engine as an n-shard conservative
// parallel group (sim.Sharded); n <= 1 keeps the plain serial engine.
// Deliberately no name suffix: shard count is an execution knob, not a
// model variant — figure labels, metrics snapshots and blame reports must
// stay byte-identical at every shard count.
func WithShards(n int) Option {
	return Option{platform: func(s *Settings) { s.Shards = n }}
}

// buildIBA wires the InfiniBand testbed from settings.
func buildIBA(eng *sim.Engine, nodes int, s Settings) dev.Network {
	cfg := verbs.DefaultConfig(nodes)
	if s.PCI {
		cfg.Bus = bus.PCI64x66
	}
	cfg.OnDemandConnections = s.OnDemand
	cfg.HWMulticast = s.Multicast
	cfg.EagerThreshold = s.EagerThreshold
	if s.SwitchPorts > 0 {
		cfg.SwitchPorts = s.SwitchPorts
	}
	if s.AutoFatTree {
		leaves := (nodes + 15) / 16
		if leaves < 2 {
			leaves = 2
		}
		cfg.FatTree = &fabric.FatTreeConfig{HostsPerLeaf: 16, Leaves: leaves, Spines: 8}
	}
	if s.Topology != nil {
		if s.Topology.Kind == TopoCrossbar {
			if cfg.SwitchPorts < nodes {
				cfg.SwitchPorts = nodes
			}
		} else {
			cfg.Clos = s.Topology.closConfig(s)
		}
		cfg.Domains = s.domains
	}
	cfg.Faults = s.plan().Flatten(0)
	return verbs.New(eng, cfg)
}

// buildMyri wires the Myrinet testbed from settings.
func buildMyri(eng *sim.Engine, nodes int, s Settings) dev.Network {
	cfg := gm.DefaultConfig(nodes)
	cfg.EagerThreshold = s.EagerThreshold
	if s.SwitchPorts > 0 {
		cfg.SwitchPorts = s.SwitchPorts
	}
	if s.Topology != nil {
		if s.Topology.Kind == TopoCrossbar {
			if cfg.SwitchPorts < nodes {
				cfg.SwitchPorts = nodes
			}
		} else {
			cfg.Clos = s.Topology.closConfig(s)
		}
		cfg.Domains = s.domains
	}
	cfg.Faults = s.plan().Flatten(0)
	return gm.New(eng, cfg)
}

// buildQSN wires the Quadrics testbed from settings.
func buildQSN(eng *sim.Engine, nodes int, s Settings) dev.Network {
	cfg := elan.DefaultConfig(nodes)
	cfg.EagerThreshold = s.EagerThreshold
	if s.SwitchPorts > 0 {
		cfg.SwitchPorts = s.SwitchPorts
	}
	if s.Topology != nil {
		if s.Topology.Kind == TopoCrossbar {
			if cfg.SwitchPorts < nodes {
				cfg.SwitchPorts = nodes
			}
		} else {
			cfg.Clos = s.Topology.closConfig(s)
		}
		cfg.Domains = s.domains
	}
	cfg.Faults = s.plan().Flatten(0)
	return elan.New(eng, cfg)
}

// IBA is InfiniBand on PCI-X with the 8-port InfiniScale switch (the
// paper's primary InfiniBand platform).
func IBA() Platform { return Platform{Name: "IBA", build: buildIBA} }

// Myri is Myrinet-2000 with GM.
func Myri() Platform { return Platform{Name: "Myri", build: buildMyri} }

// QSN is the Quadrics QsNet (Elan3 + Elite-16).
func QSN() Platform { return Platform{Name: "QSN", build: buildQSN} }

// OSU returns the three interconnects of the 8-node OSU testbed, in the
// paper's ordering.
func OSU() []Platform {
	return []Platform{IBA(), Myri(), QSN()}
}

// Bond wires 2-3 member platforms as the rails of one bonded channel
// (internal/rail): the paper's testbed carries all three interconnects in
// every node, and Bond(IBA(), Myri()) models actually using two of them at
// once — rail 0 is the primary, the rest fail over (or stripe, with
// WithRailPolicy) in declaration order.
//
// All member fabrics share one simulation engine. Each member keeps its
// own platform settings (Bond(IBA().With(PCIBus()), Myri()) works); the
// bond-level options govern faults and rail policy: the bond's fault plan
// is flattened per rail (rail-level RailKills/RailDegrades become wildcard
// link entries on the matching member, see faults.Flatten) and rails past
// the primary draw from RailSeed-derived seeds so the two fabrics suffer
// independent packet fates. A fault plan set directly on a member platform
// is overridden — the bond's plan is the single source of truth.
func Bond(primary Platform, others ...Platform) Platform {
	members := append([]Platform{primary}, others...)
	name := ""
	for i, m := range members {
		if i > 0 {
			name += "+"
		}
		name += m.Name
	}
	return Platform{
		Name: name,
		build: func(eng *sim.Engine, nodes int, s Settings) dev.Network {
			plan := s.plan()
			rails := make([]dev.Network, len(members))
			for i, m := range members {
				ms := m.base
				if ms.Topology == nil {
					// Bond-level fabric choice applies to every rail; node
					// domains stay unset — the rail bond itself is
					// single-domain, so members never activate scale mode.
					ms.Topology = s.Topology
					ms.Routing = s.Routing
				}
				if ms.EagerThreshold == 0 {
					ms.EagerThreshold = s.EagerThreshold
				}
				if ms.SwitchPorts == 0 {
					ms.SwitchPorts = s.SwitchPorts
				}
				ms.Faults, ms.Seed = nil, 0
				if mp := plan.Flatten(i); mp != nil {
					cp := *mp
					cp.Seed = faults.RailSeed(cp.Seed, i)
					ms.Faults = &cp
				}
				rails[i] = m.build(eng, nodes, ms)
			}
			tun := rail.Tuning{Policy: s.RailPolicy, Heartbeat: s.Heartbeat}
			if plan != nil {
				tun.Seed = plan.Seed
			}
			return rail.New(eng, tun, plan, rails...)
		},
	}
}

// IBAPCI is the same InfiniBand platform forced onto a 64-bit/66 MHz PCI
// bus (Figures 26–28).
//
// Deprecated: use IBA().With(PCIBus()).
func IBAPCI() Platform { return IBA().With(PCIBus()) }

// Topspin is the 16-node Topspin InfiniBand cluster with the 24-port
// Topspin 360 switch (Figure 24).
//
// Deprecated: use IBA().With(SwitchPorts(24)).Named("IBA-Topspin").
func Topspin() Platform { return IBA().With(SwitchPorts(24)).Named("IBA-Topspin") }

// IBAOnDemand is InfiniBand with the on-demand connection-management
// extension the paper's memory-usage discussion points to (Section 3.8):
// Reliable Connections are established on first contact, so per-connection
// memory tracks peers actually spoken to.
//
// Deprecated: use IBA().With(OnDemand()).
func IBAOnDemand() Platform { return IBA().With(OnDemand()) }

// IBAMulticast is InfiniBand with the hardware-supported collective
// extension of Section 3.7: broadcasts ride switch multicast.
//
// Deprecated: use IBA().With(Multicast()).
func IBAMulticast() Platform { return IBA().With(Multicast()) }

// IBAFatTree is InfiniBand on a two-level fat tree built from 24-port
// elements (16 hosts and 8 up-links per leaf): the scaling extension for
// clusters larger than one switch. It grows to 16*leaves hosts with 2:1
// oversubscription. The argument is the minimum cluster size the tree is
// wired for (it used to be silently ignored; the tree is sized from the
// larger of it and the node count passed to New).
//
// Deprecated: use IBA().With(FatTree(24, 2)).
func IBAFatTree(n int) Platform { return IBA().With(AutoFatTree(), MinNodes(n)) }

// IBAEagerThreshold is InfiniBand with an overridden eager/rendezvous
// switch point — the ablation knob behind the Figure 2 protocol-dip study.
//
// Deprecated: use IBA().With(EagerThreshold(t)).
func IBAEagerThreshold(threshold int64) Platform { return IBA().With(EagerThreshold(threshold)) }
