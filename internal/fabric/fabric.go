// Package fabric models the network side of a cluster interconnect: full-
// duplex point-to-point links, crossbar switches, and the chunked cut-
// through pipeline that moves a message across a multi-stage hardware path.
//
// All three interconnects in the paper are physically a star: every host has
// one full-duplex link to a central crossbar switch (InfiniScale 8-port,
// Myrinet-2000 8-port, Elite-16; the Topspin testbed uses a 24-port switch).
// A message from host A to host B traverses: A's egress link direction, the
// switch crossing, B's ingress link direction — with per-stage contention
// from other traffic sharing those ports.
package fabric

import (
	"fmt"

	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Stage is one hardware stage of a transfer path: submitting n bytes at time
// now occupies the stage for some interval. sim.Pipe and bus.Bus implement
// it.
type Stage interface {
	Send(now sim.Time, n int64) (start, end sim.Time)
}

// LinkConfig describes one full-duplex link technology.
type LinkConfig struct {
	Rate     units.BytesPerSecond // data rate per direction
	PerChunk sim.Time             // header/framing occupancy per chunk
	MinFrame int64                // minimum billed frame size
}

// Link is a full-duplex host-switch cable: two independent directions.
type Link struct {
	toSwitch   *sim.Pipe
	fromSwitch *sim.Pipe
}

// NewLink builds a link with independent per-direction pipes.
func NewLink(name string, cfg LinkConfig) *Link {
	return &Link{
		toSwitch:   sim.NewPipe(name+"/up", cfg.Rate, cfg.PerChunk, cfg.MinFrame),
		fromSwitch: sim.NewPipe(name+"/down", cfg.Rate, cfg.PerChunk, cfg.MinFrame),
	}
}

// Up returns the host→switch direction.
func (l *Link) Up() *sim.Pipe { return l.toSwitch }

// Down returns the switch→host direction.
func (l *Link) Down() *sim.Pipe { return l.fromSwitch }

// Instrument registers both directions' byte volume, occupancy and
// contention time under nodeN/link/{up,down}/... and arms per-chunk span
// recording so link traffic appears as lanes in the Chrome trace.
func (l *Link) Instrument(m *metrics.Registry, node int) {
	if m == nil {
		return
	}
	prefix := metrics.NodePrefix(node) + "link"
	l.toSwitch.Instrument(m, prefix+"/up")
	l.fromSwitch.Instrument(m, prefix+"/down")
	l.toSwitch.RecordSpans(m, node, "xfer", "fabric")
	l.fromSwitch.RecordSpans(m, node, "xfer", "fabric")
}

// SwitchConfig describes a crossbar switch.
type SwitchConfig struct {
	Ports    int
	Crossing sim.Time             // port-to-port latency (cut-through)
	Rate     units.BytesPerSecond // per-port forwarding rate
}

// Switch is a wormhole/cut-through crossbar: each output port is a FIFO
// resource at the port forwarding rate; the crossing latency is added to
// every chunk. Input contention is carried by the sender's link pipe, so
// only output ports are modelled as stations (a standard crossbar
// simplification: the crossbar itself is non-blocking).
type Switch struct {
	cfg SwitchConfig
	out []*sim.Pipe
}

// NewSwitch builds a switch with the given port count.
func NewSwitch(name string, cfg SwitchConfig) *Switch {
	s := &Switch{cfg: cfg, out: make([]*sim.Pipe, cfg.Ports)}
	for i := range s.out {
		s.out[i] = sim.NewPipe(fmt.Sprintf("%s/out%d", name, i), cfg.Rate, 0, 0)
	}
	return s
}

// OutPort returns the stage for the given output port; forwarding through it
// also pays the crossing latency (applied by the pipeline as stage latency).
func (s *Switch) OutPort(port int) *sim.Pipe { return s.out[port] }

// Crossing returns the cut-through port-to-port latency.
func (s *Switch) Crossing() sim.Time { return s.cfg.Crossing }

// Instrument registers every output port's byte volume, occupancy and
// contention time under fabric/<port-name>/.... Switch ports belong to the
// fabric, not a host, so their spans carry metrics.FabricNode.
func (s *Switch) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	for _, p := range s.out {
		p.Instrument(m, "fabric/"+p.Name())
		p.RecordSpans(m, metrics.FabricNode, "fwd", "fabric")
	}
}

// Ports returns the port count.
func (s *Switch) Ports() int { return s.cfg.Ports }

// PathStage pairs a Stage with a propagation latency paid by each chunk
// after it clears the stage (wire flight time, switch crossing).
type PathStage struct {
	Stage   Stage
	Latency sim.Time
}

// xfer is one in-flight Transfer: a typed event handler whose (ci, stage)
// arguments drive the chunk pipeline, so the steady state — every chunk
// through every stage — schedules events without allocating. stage ==
// len(path) is the completion sentinel. The struct itself is the only heap
// allocation per message.
type xfer struct {
	e       *sim.Engine
	path    []PathStage
	done    func(end sim.Time)
	chunk   int64
	last    int64
	nchunks int64

	// Trace fields, populated by TransferTraced for sampled messages only;
	// rec == nil on the untraced (allocation-gated) path.
	rec      *msgtrace.Recorder
	tid      msgtrace.ID
	rank     int
	rail     int8
	attempt  uint8
	bytes    int64
	hopEnter []sim.Time // per-stage entry time of chunk 0
}

// HandleEvent implements sim.Handler: chunk ci reached stage, occupy it and
// self-clock the successors.
func (x *xfer) HandleEvent(ci, stage int64) {
	if stage == int64(len(x.path)) {
		x.done(x.e.Now())
		return
	}
	n := x.chunk
	if ci == x.nchunks-1 {
		n = x.last
	}
	st := x.path[stage]
	_, end := st.Stage.Send(x.e.Now(), n)
	arrive := end + st.Latency
	if x.rec != nil {
		// Per-hop span: chunk 0 entering the stage opens it, the last chunk
		// clearing it (plus propagation) closes it — the cut-through
		// pipeline's residence interval at this path stage.
		if ci == 0 {
			x.hopEnter[stage] = x.e.Now()
		}
		if ci == x.nchunks-1 {
			x.rec.Span(x.tid, msgtrace.StageHop, x.rank, x.rail, x.attempt,
				int16(stage), x.hopEnter[stage], arrive, x.bytes)
		}
	}
	if stage == 0 && ci+1 < x.nchunks {
		// Self-clock the next chunk into the head of the path.
		x.e.CallAt(end, x, ci+1, 0)
	}
	if stage+1 < int64(len(x.path)) {
		x.e.CallAt(arrive, x, ci, stage+1)
	} else if ci == x.nchunks-1 {
		x.e.CallAt(arrive, x, ci, stage+1) // sentinel: completion
	}
}

// Transfer pushes size bytes through the staged path as a cut-through
// pipeline of chunks, starting at time start, and calls done(end) when the
// last chunk clears the last stage. chunk is the pipelining granularity;
// sizes at or below it move as a single unit.
//
// Each chunk is self-clocked: chunk i+1 is submitted to stage 0 when chunk i
// clears stage 0, and a chunk is submitted to stage k+1 when it clears stage
// k. Contending transfers interleave naturally through the shared stage
// FIFOs.
func Transfer(e *sim.Engine, path []PathStage, size, chunk int64, start sim.Time, done func(end sim.Time)) {
	if chunk <= 0 {
		panic("fabric: non-positive chunk")
	}
	if len(path) == 0 {
		x := &xfer{e: e, done: done}
		e.CallAt(start, x, 0, 0) // stage 0 == len(path): immediate completion
		return
	}
	if size <= 0 {
		size = 1 // control messages still occupy the path minimally
	}
	nchunks := (size + chunk - 1) / chunk
	x := &xfer{
		e:       e,
		path:    path,
		done:    done,
		chunk:   chunk,
		last:    size - (nchunks-1)*chunk,
		nchunks: nchunks,
	}
	e.CallAt(start, x, 0, 0)
}

// TransferTraced is Transfer plus per-hop span recording for a sampled
// message: each path stage's residence interval is recorded as a StageHop
// span carrying the hop index, rail and attempt. Unsampled messages fall
// through to the plain (allocation-gated) Transfer, so callers may use this
// unconditionally with a live recorder.
func TransferTraced(e *sim.Engine, path []PathStage, size, chunk int64, start sim.Time,
	rec *msgtrace.Recorder, tid msgtrace.ID, rank int, rail int8, attempt uint8, done func(end sim.Time)) {
	if !rec.Sampled(tid) || len(path) == 0 {
		Transfer(e, path, size, chunk, start, done)
		return
	}
	if chunk <= 0 {
		panic("fabric: non-positive chunk")
	}
	if size <= 0 {
		size = 1
	}
	nchunks := (size + chunk - 1) / chunk
	x := &xfer{
		e:       e,
		path:    path,
		done:    done,
		chunk:   chunk,
		last:    size - (nchunks-1)*chunk,
		nchunks: nchunks,

		rec:      rec,
		tid:      tid,
		rank:     rank,
		rail:     rail,
		attempt:  attempt,
		bytes:    size,
		hopEnter: make([]sim.Time, len(path)),
	}
	e.CallAt(start, x, 0, 0)
}

// DefaultChunk is the pipelining granularity used by the NIC models for
// bulk transfers: small enough that multi-stage cut-through pipelining and
// contention interleaving are visible (one chunk of ramp-up per extra
// stage), large enough that simulating multi-megabyte messages stays cheap.
const DefaultChunk int64 = 2 * 1024

// minChunk is the finest pipelining granularity, used for small messages so
// that a 1-4 KB payload is not store-and-forwarded whole across every stage
// of the path (real fabrics cut through at flit/cell granularity).
const minChunk int64 = 512

// ChunkFor picks the pipelining granularity for a message: about a quarter
// of the payload, clamped to [minChunk, DefaultChunk]. For multi-megabyte
// bulk transfers the chunk grows so a message stays a few hundred events no
// matter its size; per-chunk overheads are small enough that delivered
// bandwidth is insensitive to this (the bus model's burst overhead is
// per-burst, not per-chunk, so it scales exactly).
func ChunkFor(size int64) int64 {
	if size >= 1<<20 {
		return size / 256
	}
	c := size / 4
	if c < minChunk {
		return minChunk
	}
	if c > DefaultChunk {
		return DefaultChunk
	}
	return c
}

// cutXfer is an in-flight TransferCut: the cut-through chunk pipeline of
// xfer, with the path split across two engines of one sharded group. Stages
// [0, cut) — the source node's bus/NIC/link plus any source-leaf fabric
// stage — execute on the source's engine; stages [cut, len) and the
// completion sentinel execute on the destination's. The hand-off between
// stage cut-1 and stage cut rides the wire-latency hop, which is at least
// the group's cross-shard lookahead by construction (the lookahead IS the
// minimum wire latency), so the cross-engine schedule never violates the
// conservative window.
type cutXfer struct {
	src, dst *sim.Engine
	path     []PathStage
	cut      int
	done     func(end sim.Time)
	chunk    int64
	last     int64
	nchunks  int64
}

// engineFor returns the engine that owns a stage index (the sentinel
// len(path) belongs to the destination).
func (x *cutXfer) engineFor(stage int64) *sim.Engine {
	if stage < int64(x.cut) {
		return x.src
	}
	return x.dst
}

// HandleEvent implements sim.Handler on whichever engine owns the stage.
func (x *cutXfer) HandleEvent(ci, stage int64) {
	e := x.engineFor(stage)
	if stage == int64(len(x.path)) {
		x.done(e.Now())
		return
	}
	n := x.chunk
	if ci == x.nchunks-1 {
		n = x.last
	}
	st := x.path[stage]
	_, end := st.Stage.Send(e.Now(), n)
	arrive := end + st.Latency
	if stage == 0 && ci+1 < x.nchunks {
		e.CallAt(end, x, ci+1, 0)
	}
	next := stage + 1
	if next < int64(len(x.path)) || ci == x.nchunks-1 {
		if ne := x.engineFor(next); ne == e {
			e.CallAt(arrive, x, ci, next)
		} else {
			e.SendTo(ne.ShardID(), arrive-e.Now(), x, ci, next)
		}
	}
}

// TransferCut is Transfer with the path split across the source and
// destination node domains of a sharded engine group: cut names the first
// destination-side stage. With both ends on the same engine (same shard, or
// a serial scale-mode run) it degrades to the plain single-engine pipeline,
// scheduling the exact same (time, stage) sequence — the transport differs,
// never the timing.
func TransferCut(srcE, dstE *sim.Engine, path []PathStage, cut int, size, chunk int64, start sim.Time, done func(end sim.Time)) {
	if srcE == dstE {
		Transfer(srcE, path, size, chunk, start, done)
		return
	}
	if chunk <= 0 {
		panic("fabric: non-positive chunk")
	}
	if cut < 1 || cut > len(path) {
		// Stage 0 must be source-side: the transfer is issued on the source
		// engine, and every physical path starts at the source's own bus.
		panic(fmt.Sprintf("fabric: cut %d outside path of %d stages", cut, len(path)))
	}
	if len(path) == 0 {
		panic("fabric: TransferCut needs a staged path to cross domains")
	}
	if size <= 0 {
		size = 1
	}
	nchunks := (size + chunk - 1) / chunk
	x := &cutXfer{
		src:     srcE,
		dst:     dstE,
		path:    path,
		cut:     cut,
		done:    done,
		chunk:   chunk,
		last:    size - (nchunks-1)*chunk,
		nchunks: nchunks,
	}
	srcE.CallAt(start, x, 0, 0)
}
