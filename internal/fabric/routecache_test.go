package fabric

import (
	"fmt"
	"strings"
	"testing"

	"mpinet/internal/faults"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// The route cache must be semantically invisible: within one health epoch a
// deterministic route is a pure function of (source leaf, dst), and every
// fault transition — death, detection, repair, degrade start/end — bumps the
// epoch and forces re-resolution. These tests render the same chaos timeline
// with the cache on (the default) and off (the SetRouteCache debug knob) and
// demand byte-identical route signatures, fates included.

// routeSig renders one Between call into a comparable signature: every stage's
// pipe name and latency, the final-hop latency, and the full fate annotation.
func routeSig(tr *Clos, src, dst int) string {
	stages, down := tr.Between(src, dst)
	var b strings.Builder
	fmt.Fprintf(&b, "%d->%d:", src, dst)
	for _, st := range stages {
		name := "?"
		if n, ok := st.Stage.(interface{ Name() string }); ok {
			name = n.Name()
		}
		fmt.Fprintf(&b, " %s@%v", name, st.Latency)
	}
	info := tr.LastRoute()
	fmt.Fprintf(&b, " down=%v state=%d plane=%d elem=%q code=%d drop=%g",
		down, info.State, info.Plane, info.Element, info.ElementCode, info.ExtraDrop)
	return b.String()
}

// chaosTimeline runs a SwitchKills+RepairAt+degrade plan on a 32-host Clos
// and samples every probe pair at instants spanning each fault window: before
// the kill, inside the blackhole detect-delay window, after detection, just
// before and after the repair, and inside the degrade window. Returns one
// signature line per (instant, pair).
func chaosTimeline(t *testing.T, routing Routing, cacheOn bool) []string {
	t.Helper()
	const (
		kill   = 1 * units.Millisecond
		detect = 500 * units.Microsecond
		repair = 4 * units.Millisecond
	)
	plan := &faults.Plan{
		Seed: 1,
		SwitchKills: []faults.SwitchKill{
			{Level: 1, Index: 1, At: kill, RepairAt: repair},        // spine plane 1 dies, heals
			{Level: 0, Index: 2, At: 2 * units.Millisecond},         // leaf 2 dies for good
		},
		LinecardDegrades: []faults.LinecardDegrade{
			{Level: 1, Index: 2, From: kill, Until: 3 * units.Millisecond, Drop: 0.05},
		},
		DetectDelay: detect,
	}
	cfg := closCfg(2, 8, 1, routing)
	cfg.Seed = 7
	tr, err := NewClos("c", cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	if err := tr.SetElementFaults(plan, eng); err != nil {
		t.Fatal(err)
	}
	tr.SetRouteCache(cacheOn)

	// Probe pairs: cross-leaf routes over every plane, routes into and out of
	// the doomed leaf 2 (hosts 8..11), and same-leaf traffic.
	pairs := [][2]int{
		{0, 4}, {0, 5}, {0, 6}, {0, 7}, // leaf 0 -> leaf 1, all planes
		{0, 9}, {9, 0}, {8, 11}, // into / out of / under the dying leaf
		{0, 1}, {12, 31}, {31, 12},
	}
	instants := []sim.Time{
		0,
		kill - units.Microsecond,
		kill + 100*units.Microsecond, // dead, undetected: blackhole window
		kill + detect,                // detection edge
		kill + detect + 100*units.Microsecond,
		2*units.Millisecond + 100*units.Microsecond, // leaf 2 blackhole window
		3 * units.Millisecond,                       // leaf detected, degrade just ended
		repair - units.Microsecond,
		repair + units.Microsecond, // plane healed, back in the hash
		6 * units.Millisecond,
	}
	var got []string
	for _, at := range instants {
		at := at
		eng.At(at, func() {
			for _, pr := range pairs {
				got = append(got, fmt.Sprintf("%v %s", at, routeSig(tr, pr[0], pr[1])))
			}
			// Sample each pair twice per instant so cache hits inside one
			// epoch are exercised, not just first-resolution misses.
			for _, pr := range pairs {
				got = append(got, fmt.Sprintf("%v bis %s", at, routeSig(tr, pr[0], pr[1])))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestRouteCacheChaosByteIdentical: the full signature stream — paths, fates,
// blackhole windows, repair re-hash, degrade accounting — is byte-identical
// with the cache on and off, under both routing policies (adaptive with
// multiple live planes bypasses the cache; the comparison pins that too).
func TestRouteCacheChaosByteIdentical(t *testing.T) {
	for _, routing := range []Routing{Deterministic, Adaptive} {
		on := chaosTimeline(t, routing, true)
		off := chaosTimeline(t, routing, false)
		if len(on) == 0 || len(on) != len(off) {
			t.Fatalf("%v: %d probes cached vs %d uncached", routing, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("%v: probe %d diverges with the cache on:\n  on:  %s\n  off: %s",
					routing, i, on[i], off[i])
			}
		}
	}
}

// TestRouteCacheCoversFateWindows sanity-checks that the chaos timeline the
// byte-identity test compares actually crosses every fate: a cached run must
// see OK, Blackhole and Partitioned states, or the comparison proves nothing
// about the detect-delay window.
func TestRouteCacheCoversFateWindows(t *testing.T) {
	sigs := chaosTimeline(t, Deterministic, true)
	joined := strings.Join(sigs, "\n")
	for state, name := range map[RouteState]string{
		RouteOK:          "ok",
		RouteBlackhole:   "blackhole",
		RoutePartitioned: "partitioned",
	} {
		if !strings.Contains(joined, fmt.Sprintf("state=%d", state)) {
			t.Errorf("timeline never renders a %s route; the byte-identity test is not covering it", name)
		}
	}
	// The healed plane must actually return to the hash space: plane 1 routes
	// exist both before the kill and after the repair.
	if !strings.Contains(joined, "plane=1") {
		t.Error("timeline never rides plane 1")
	}
}

// TestRouteCacheHitsZeroAlloc: steady-state deterministic routing on a
// healthy fabric serves cached stage slices with no per-call allocation —
// the per-message []PathStage construction the cache exists to eliminate.
func TestRouteCacheHitsZeroAlloc(t *testing.T) {
	tr, err := NewClos("c", closCfg(3, 8, 1, Deterministic), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every probed route once (first resolution allocates the row and
	// the stage slice).
	for dst := 0; dst < 64; dst++ {
		tr.Between(0, dst)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for dst := 0; dst < 64; dst++ {
			tr.Between(0, dst)
		}
	})
	if allocs != 0 {
		t.Errorf("warm deterministic Between allocated %.1f times per sweep, want 0", allocs)
	}
}
