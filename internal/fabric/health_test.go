package fabric

import (
	"testing"

	"mpinet/internal/faults"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// probe records the fate of one Between call: which plane the route rode and
// how the health layer classified it.
type probe struct {
	state RouteState
	plane int
	elem  string
}

// armedClos builds a 32-host 2-level Clos (8 leaves x 4 hosts, 4 up-link
// planes) with the plan's element faults armed on a fresh engine.
func armedClos(t *testing.T, routing Routing, plan *faults.Plan) (*Clos, *sim.Engine) {
	t.Helper()
	cfg := closCfg(2, 8, 1, routing)
	cfg.Seed = 7
	tr, err := NewClos("c", cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	if err := tr.SetElementFaults(plan, eng); err != nil {
		t.Fatal(err)
	}
	return tr, eng
}

// routeAt schedules a batch of Between(0, dst) probes at the given instant
// and appends their fates to out.
func routeAt(eng *sim.Engine, tr *Clos, at sim.Time, dsts []int, out *[]probe) {
	eng.At(at, func() {
		for _, dst := range dsts {
			tr.Between(0, dst)
			info := tr.LastRoute()
			*out = append(*out, probe{info.State, info.Plane, info.Element})
		}
	})
}

// TestClosSpineKillRehash walks one spine-plane kill through its whole life
// cycle: healthy routing before the kill, black-holing during the detection
// window, deterministic ECMP re-hash around the dead plane after detection,
// and the healthy hash again after repair — and checks the whole sequence is
// identical across two independently built instances.
func TestClosSpineKillRehash(t *testing.T) {
	const (
		kill   = 1 * units.Millisecond // plane 1 dies
		repair = 5 * units.Millisecond
	)
	plan := &faults.Plan{Seed: 1, SwitchKills: []faults.SwitchKill{
		{Level: 1, Index: 1, At: kill, RepairAt: repair},
	}}
	dsts := []int{4, 5, 6, 7} // leaf 1: healthy hash covers planes 0..3
	run := func() []probe {
		tr, eng := armedClos(t, Deterministic, plan)
		var got []probe
		for _, at := range []sim.Time{0, 1500 * units.Microsecond, 2500 * units.Microsecond, 6 * units.Millisecond} {
			routeAt(eng, tr, at, dsts, &got)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	got := run()
	if len(got) != 16 {
		t.Fatalf("got %d probes, want 16", len(got))
	}
	healthy, undetected, detected, repaired := got[0:4], got[4:8], got[8:12], got[12:16]
	// Before the kill: all planes live, healthy dst%4 hash.
	for i, p := range healthy {
		if p.state != RouteOK || p.plane != i {
			t.Fatalf("healthy probe to %d: state %v plane %d, want OK plane %d", dsts[i], p.state, p.plane, i)
		}
	}
	// Dead but undetected: the hash still selects plane 1 and that one route
	// black-holes, naming the plane; the others are untouched.
	for i, p := range undetected {
		if i == 1 {
			if p.state != RouteBlackhole || p.plane != 1 || p.elem != "spine plane 1" {
				t.Fatalf("undetected probe: %+v, want blackhole on spine plane 1", p)
			}
			continue
		}
		if p.state != RouteOK || p.plane != i {
			t.Fatalf("undetected probe to %d perturbed: %+v", dsts[i], p)
		}
	}
	// Detected: plane 1 leaves the hash space; every route is live and none
	// rides the dead plane.
	for i, p := range detected {
		if p.state != RouteOK {
			t.Fatalf("post-detection probe to %d: state %v, want OK", dsts[i], p.state)
		}
		if p.plane == 1 {
			t.Fatalf("post-detection probe to %d re-hashed onto the dead plane", dsts[i])
		}
	}
	// Repaired: the healthy hash is back, plane 1 included.
	for i, p := range repaired {
		if p.state != RouteOK || p.plane != i {
			t.Fatalf("post-repair probe to %d: %+v, want OK plane %d", dsts[i], p, i)
		}
	}
	// Determinism: an independently built, identically armed instance renders
	// the exact same fate sequence.
	again := run()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("re-hash not deterministic: probe %d was %+v, replay %+v", i, got[i], again[i])
		}
	}
}

// TestClosAllPlanesDeadPartition kills every up-link plane: once detected,
// cross-leaf routes are Partitioned (typed, no retry burn), while same-leaf
// traffic — which never climbs — stays alive.
func TestClosAllPlanesDeadPartition(t *testing.T) {
	plan := &faults.Plan{Seed: 1}
	for i := 0; i < 4; i++ {
		plan.SwitchKills = append(plan.SwitchKills, faults.SwitchKill{Level: 1, Index: i, At: units.Millisecond})
	}
	tr, eng := armedClos(t, Deterministic, plan)
	eng.At(3*units.Millisecond, func() {
		stages, _ := tr.Between(0, 5)
		info := tr.LastRoute()
		if info.State != RoutePartitioned {
			t.Errorf("all planes dead: state %v, want partitioned", info.State)
		}
		if info.Element != "spine plane 0" {
			t.Errorf("partition blamed %q, want spine plane 0", info.Element)
		}
		if len(stages) != 2 {
			t.Errorf("partitioned route not well-formed: %d stages", len(stages))
		}
		// Same-leaf traffic does not ride the spine and survives.
		tr.Between(0, 1)
		if got := tr.LastRoute(); got.State != RouteOK {
			t.Errorf("same-leaf route died with the spines: %+v", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClosLeafKillPartition kills a leaf element: routes to its hosts
// black-hole during the detection window and partition after, naming the
// leaf; routes between other leaves are untouched.
func TestClosLeafKillPartition(t *testing.T) {
	plan := &faults.Plan{Seed: 1, SwitchKills: []faults.SwitchKill{
		{Level: 0, Index: 1, At: units.Millisecond},
	}}
	tr, eng := armedClos(t, Deterministic, plan)
	eng.At(1500*units.Microsecond, func() {
		tr.Between(0, 5) // host 5 lives under leaf 1
		if got := tr.LastRoute(); got.State != RouteBlackhole || got.Element != "leaf 1" {
			t.Errorf("undetected leaf death: %+v, want blackhole on leaf 1", got)
		}
	})
	eng.At(2500*units.Microsecond, func() {
		tr.Between(0, 5)
		if got := tr.LastRoute(); got.State != RoutePartitioned || got.Element != "leaf 1" {
			t.Errorf("detected leaf death: %+v, want partitioned on leaf 1", got)
		}
		// Same-leaf traffic under the dead leaf is gone too.
		tr.Between(4, 5)
		if got := tr.LastRoute(); got.State != RoutePartitioned {
			t.Errorf("same-leaf route under dead leaf: %+v, want partitioned", got)
		}
		// Leaves 0 and 2 route around the corpse unperturbed.
		tr.Between(0, 8)
		if got := tr.LastRoute(); got.State != RouteOK {
			t.Errorf("bystander route 0->8: %+v, want OK", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClosLinecardDegradeExtraDrop checks degrade attribution: only routes
// riding the degraded element, only inside the window, and leaf + plane
// degrades compose additively.
func TestClosLinecardDegradeExtraDrop(t *testing.T) {
	plan := &faults.Plan{Seed: 1, LinecardDegrades: []faults.LinecardDegrade{
		{Level: 1, Index: 2, From: units.Millisecond, Until: 2 * units.Millisecond, Drop: 0.05},
		{Level: 0, Index: 0, From: units.Millisecond, Until: 2 * units.Millisecond, Drop: 0.01},
	}}
	tr, eng := armedClos(t, Deterministic, plan)
	extra := func(src, dst int) float64 {
		tr.Between(src, dst)
		return tr.LastRoute().ExtraDrop
	}
	eng.At(500*units.Microsecond, func() {
		if got := extra(0, 6); got != 0 {
			t.Errorf("extra drop before the window: %v", got)
		}
	})
	eng.At(1500*units.Microsecond, func() {
		// 0->6 rides plane 2 (6%4) and starts at leaf 0: both degrades apply
		// additively (compare with a float tolerance — the sum accumulates).
		if got := extra(0, 6); got < 0.0599 || got > 0.0601 {
			t.Errorf("plane+leaf degrade = %v, want ~0.06", got)
		}
		// 4->9 rides plane 1 and touches neither degraded element... except
		// leaf degrades apply to endpoint leaves only: leaf 1 -> leaf 2 clean.
		if got := extra(4, 9); got != 0 {
			t.Errorf("clean route saw extra drop %v", got)
		}
		// Same-leaf traffic under the degraded leaf pays the leaf rate.
		if got := extra(0, 1); got != 0.01 {
			t.Errorf("same-leaf degrade = %v, want 0.01", got)
		}
	})
	eng.At(2500*units.Microsecond, func() {
		if got := extra(0, 6); got != 0 {
			t.Errorf("extra drop after the window: %v", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClosAdaptiveAvoidsDeadPlanes checks the adaptive policy under faults:
// after detection no route scans the dead plane, and two identically armed
// instances replay the same picks (the restricted candidate set draws from
// the same seeded counters).
func TestClosAdaptiveAvoidsDeadPlanes(t *testing.T) {
	plan := &faults.Plan{Seed: 1, SwitchKills: []faults.SwitchKill{
		{Level: 1, Index: 0, At: units.Millisecond},
	}}
	run := func() []probe {
		tr, eng := armedClos(t, Adaptive, plan)
		var got []probe
		eng.At(3*units.Millisecond, func() {
			for i := 0; i < 64; i++ {
				src := (i * 3) % tr.Nodes()
				dst := (i*7 + 11) % tr.Nodes()
				if tr.LeafOf(src) == tr.LeafOf(dst) {
					continue
				}
				tr.Between(src, dst)
				info := tr.LastRoute()
				got = append(got, probe{info.State, info.Plane, info.Element})
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := run()
	if len(a) == 0 {
		t.Fatal("no cross-leaf routes exercised")
	}
	for i, p := range a {
		if p.state != RouteOK {
			t.Fatalf("adaptive probe %d not OK: %+v", i, p)
		}
		if p.plane == 0 {
			t.Fatalf("adaptive probe %d scanned the dead plane", i)
		}
	}
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adaptive fault replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSetElementFaultsValidation rejects kills naming elements the fabric
// does not have.
func TestSetElementFaultsValidation(t *testing.T) {
	tr, err := NewClos("c", closCfg(2, 8, 1, Deterministic), 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	bad := []*faults.Plan{
		{Seed: 1, SwitchKills: []faults.SwitchKill{{Level: 2, Index: 0, At: 1}}},  // no tier 2
		{Seed: 1, SwitchKills: []faults.SwitchKill{{Level: 0, Index: 8, At: 1}}},  // 8 leaves: 0..7
		{Seed: 1, SwitchKills: []faults.SwitchKill{{Level: 0, Index: -1, At: 1}}}, // negative leaf
	}
	for i, p := range bad {
		if err := tr.SetElementFaults(p, eng); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p.SwitchKills[0])
		}
	}
	// A plan without element faults arms nothing and is fine.
	if err := tr.SetElementFaults(&faults.Plan{Seed: 1, Drop: 0.1}, eng); err != nil {
		t.Fatalf("element-free plan rejected: %v", err)
	}
	if tr.LastRoute().Plane != -1 {
		t.Fatal("unarmed topology should report the zero RouteInfo")
	}
}

// TestClosDiameter pins the diameter formula the scaled watchdog consumes.
func TestClosDiameter(t *testing.T) {
	for _, tc := range []struct{ levels, want int }{{2, 3}, {3, 5}, {4, 7}} {
		tr, err := NewClos("c", closCfg(tc.levels, 8, 1, Deterministic), 16)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Diameter(); got != tc.want {
			t.Errorf("Diameter(levels=%d) = %d, want %d", tc.levels, got, tc.want)
		}
		if got := DiameterOf(tr); got != tc.want {
			t.Errorf("DiameterOf(levels=%d) = %d, want %d", tc.levels, got, tc.want)
		}
	}
}
