package fabric

import (
	"testing"
	"testing/quick"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Property: every Transfer delivers exactly once, never before the
// analytic lower bound (size/bottleneck), for arbitrary sizes and chunk
// choices.
func TestTransferConservationProperty(t *testing.T) {
	f := func(sizeRaw uint32, chunkRaw uint16) bool {
		size := int64(sizeRaw%(4<<20)) + 1
		chunk := int64(chunkRaw%8192) + 1
		e := sim.New()
		rate := units.MBps(200)
		a := sim.NewPipe("a", rate, 0, 0)
		b := sim.NewPipe("b", units.MBps(400), 0, 0)
		calls := 0
		var end sim.Time
		Transfer(e, []PathStage{{Stage: a}, {Stage: b}}, size, chunk, 0, func(at sim.Time) {
			calls++
			end = at
		})
		if err := e.Run(); err != nil {
			return false
		}
		if calls != 1 {
			return false
		}
		// Lower bound: full serialization at the slowest stage. Per-chunk
		// billing truncates to the nanosecond, so allow one tick of slack
		// per chunk (tiny chunks on multi-MB payloads otherwise underflow
		// the analytic bound by a few ticks).
		chunks := (size + chunk - 1) / chunk
		return end >= rate.TimeFor(size)-sim.Time(chunks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: pipelined time never exceeds strict store-and-forward time
// (sum of all stage serializations plus latencies).
func TestTransferNoWorseThanStoreAndForward(t *testing.T) {
	f := func(sizeRaw uint32) bool {
		size := int64(sizeRaw%(1<<20)) + 1
		e := sim.New()
		r1, r2, r3 := units.MBps(100), units.MBps(150), units.MBps(80)
		stages := []PathStage{
			{Stage: sim.NewPipe("a", r1, 0, 0), Latency: units.Microsecond},
			{Stage: sim.NewPipe("b", r2, 0, 0), Latency: units.Microsecond},
			{Stage: sim.NewPipe("c", r3, 0, 0)},
		}
		var end sim.Time
		Transfer(e, stages, size, ChunkFor(size), 0, func(at sim.Time) { end = at })
		if err := e.Run(); err != nil {
			return false
		}
		sf := r1.TimeFor(size) + r2.TimeFor(size) + r3.TimeFor(size) + 2*units.Microsecond
		// Chunk rounding bills per chunk; allow one chunk of slack per stage.
		chunk := ChunkFor(size)
		slack := r1.TimeFor(chunk) + r2.TimeFor(chunk) + r3.TimeFor(chunk)
		return end <= sf+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkForPolicy(t *testing.T) {
	cases := []struct{ size, want int64 }{
		{1, 512}, {512, 512}, {2048, 512}, {4096, 1024},
		{8192, 2048}, {64 * 1024, 2048}, {1 << 20, 4096}, {8 << 20, 32768},
	}
	for _, c := range cases {
		if got := ChunkFor(c.size); got != c.want {
			t.Errorf("ChunkFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	// Event-count bound: no message takes more than ~260 chunks.
	for _, size := range []int64{1, 4096, 1 << 20, 64 << 20} {
		chunks := (size + ChunkFor(size) - 1) / ChunkFor(size)
		if chunks > 260 {
			t.Errorf("size %d: %d chunks, event bound broken", size, chunks)
		}
	}
}
