package fabric

import (
	"fmt"

	"mpinet/internal/metrics"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Routing selects the path-selection policy of a multi-stage fabric.
type Routing int

const (
	// Deterministic is ECMP by destination: a given (src, dst) pair always
	// takes the same up-link, as a real forwarding table would route it.
	Deterministic Routing = iota
	// Adaptive is dispersive source routing à la Myrinet/Quadrics: each
	// message picks the least-loaded up-link of its source leaf, breaking
	// ties with a seeded counter PRNG so replay is a pure function of the
	// seed.
	Adaptive
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == Adaptive {
		return "adaptive"
	}
	return "deterministic"
}

// ClosConfig describes a folded-Clos (fat-tree) fabric built from uniform
// radix-port crossbar elements. Hosts attach to leaf elements; each leaf
// splits its ports between hosts and up-links according to the
// oversubscription ratio, and Levels switching levels stack above.
//
// Leaf-level links are the only stateful (contended) resources: at the
// scales this fabric targets, upper levels have the aggregate capacity of
// the leaf tier or more, so they are modelled as pure latency. This keeps
// per-fabric state at O(leaves · uplinks) pipes — memory-lean at thousands
// of hosts — while preserving exactly the bottlenecks the oversubscription
// ratio creates (leaf up-link contention outbound, leaf down-link incast
// inbound).
type ClosConfig struct {
	// Levels is the number of switching levels; 2 is the classic
	// leaf-spine fat tree.
	Levels int
	// Radix is the port count of each switching element.
	Radix int
	// Oversub is the leaf oversubscription ratio N in N:1 — hosts per leaf
	// to up-links per leaf. 1 is full bisection. Radix must divide evenly
	// into Oversub+1 shares.
	Oversub int
	// Routing selects Deterministic ECMP or Adaptive dispersive routing.
	Routing Routing
	// Seed drives the adaptive policy's tie-break PRNG.
	Seed uint64
	// LinkRate is the inter-switch link bandwidth per direction.
	LinkRate units.BytesPerSecond
	// Crossing is the per-element cut-through latency.
	Crossing sim.Time
	// WireLatency is the per-hop cable flight time.
	WireLatency sim.Time
}

// HostsPerLeaf is the number of host ports each leaf element offers:
// Radix·Oversub/(Oversub+1).
func (c ClosConfig) HostsPerLeaf() int { return c.Radix * c.Oversub / (c.Oversub + 1) }

// Uplinks is the number of up-links each leaf element offers:
// Radix/(Oversub+1).
func (c ClosConfig) Uplinks() int { return c.Radix / (c.Oversub + 1) }

// MaxHosts is the host capacity of the topology: the leaf count is bounded
// by the upper levels' fan-out (Radix leaves under a 2-level spine tier, a
// further ×Radix/2 per extra level).
func (c ClosConfig) MaxHosts() int {
	maxLeaves := c.Radix
	for l := 2; l < c.Levels; l++ {
		maxLeaves *= c.Radix / 2
	}
	return maxLeaves * c.HostsPerLeaf()
}

// Validate checks the dimension constraints; it reports a descriptive error
// naming the offending combination, for surfacing through the cluster
// layer's ConfigError.
func (c ClosConfig) Validate() error {
	if c.Levels < 2 {
		return fmt.Errorf("Clos needs at least 2 levels, got %d", c.Levels)
	}
	if c.Levels > 4 {
		return fmt.Errorf("Clos with %d levels exceeds the supported 4", c.Levels)
	}
	if c.Radix < 2 {
		return fmt.Errorf("radix %d is too small (need >= 2 ports)", c.Radix)
	}
	if c.Oversub < 1 {
		return fmt.Errorf("oversubscription ratio %d:1 is invalid (need >= 1)", c.Oversub)
	}
	if c.Radix%(c.Oversub+1) != 0 {
		return fmt.Errorf("radix %d does not split into %d:1 oversubscription (must divide by %d)",
			c.Radix, c.Oversub, c.Oversub+1)
	}
	if c.HostsPerLeaf() < 1 || c.Uplinks() < 1 {
		return fmt.Errorf("radix %d with %d:1 oversubscription leaves no usable ports", c.Radix, c.Oversub)
	}
	return nil
}

// Clos is a wired multi-stage fabric. Only leaf-tier links hold state; the
// podSpan geometry maps leaf pairs to the level their routes meet at, which
// sets the pure-latency climb above the leaf tier.
type Clos struct {
	cfg          ClosConfig
	leaves       int
	hostsPerLeaf int
	uplinks      int
	// up[l][u] is leaf l's up-link u; down[l][u] the matching return link.
	up   [][]*sim.Pipe
	down [][]*sim.Pipe
	// adaptive-routing state, all leaf-local: one dispersion counter per
	// leaf, consumed with the config seed by a counter PRNG.
	counter []uint64
	// health, when non-nil, arms failure-domain rendering (health.go):
	// Between routes around detected element deaths and annotates each route
	// with its fate.
	health *elementHealth
	// routes is the deterministic route cache: routes[leaf][dst] memoizes the
	// stage pair and fate of any (src on leaf, dst) route, keyed by the
	// health epoch (always 0 on a healthy fabric). Rows are lazily allocated
	// and written only under their leaf — the same leaf-locality the adaptive
	// counters rely on — so the leaf-aligned shard partition gives each row a
	// single writing engine. Adaptive routing with more than one up-link is
	// load-dependent and bypasses the cache entirely.
	routes [][]closRoute
	// cacheOff disables the route cache (SetRouteCache): a debug knob for
	// verifying cached and uncached runs are byte-identical.
	cacheOff bool
}

// closRoute is one route-cache entry: the stages and fate computed for a
// (source leaf, dst) pair during one health epoch.
type closRoute struct {
	stages []PathStage
	info   RouteInfo
	epoch  uint32
	valid  bool
}

// SetRouteCache enables or disables the deterministic route cache. The cache
// is semantically invisible — fault transitions bump the health epoch and
// re-resolve — so the knob exists only for tests that prove cached and
// uncached runs byte-identical.
func (t *Clos) SetRouteCache(on bool) { t.cacheOff = !on }

// NewClos wires a Clos fabric with capacity for at least nodes hosts. The
// configuration must Validate; capacity overflow returns an error naming
// the limit.
func NewClos(name string, cfg ClosConfig, nodes int) (*Clos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LinkRate <= 0 {
		return nil, fmt.Errorf("Clos needs a positive link rate")
	}
	hpl := cfg.HostsPerLeaf()
	leaves := (nodes + hpl - 1) / hpl
	if leaves < 2 {
		leaves = 2
	}
	if max := cfg.MaxHosts(); leaves*hpl > max {
		return nil, fmt.Errorf("%d nodes exceed the %d-host capacity of a %d-level radix-%d %d:1 Clos",
			nodes, max, cfg.Levels, cfg.Radix, cfg.Oversub)
	}
	t := &Clos{
		cfg:          cfg,
		leaves:       leaves,
		hostsPerLeaf: hpl,
		uplinks:      cfg.Uplinks(),
		counter:      make([]uint64, leaves),
		routes:       make([][]closRoute, leaves),
	}
	t.up = make([][]*sim.Pipe, leaves)
	t.down = make([][]*sim.Pipe, leaves)
	for l := 0; l < leaves; l++ {
		t.up[l] = make([]*sim.Pipe, t.uplinks)
		t.down[l] = make([]*sim.Pipe, t.uplinks)
		for u := 0; u < t.uplinks; u++ {
			t.up[l][u] = sim.NewPipe(fmt.Sprintf("%s/leaf%d-up%d", name, l, u), cfg.LinkRate, 0, 0)
			t.down[l][u] = sim.NewPipe(fmt.Sprintf("%s/leaf%d-down%d", name, l, u), cfg.LinkRate, 0, 0)
		}
	}
	return t, nil
}

// Nodes implements Topology.
func (t *Clos) Nodes() int { return t.leaves * t.hostsPerLeaf }

// Leaves reports the wired leaf count.
func (t *Clos) Leaves() int { return t.leaves }

// LeafOf returns the leaf element a node attaches to.
func (t *Clos) LeafOf(node int) int { return node / t.hostsPerLeaf }

// HostsPerLeaf reports the hosts below each leaf.
func (t *Clos) HostsPerLeaf() int { return t.hostsPerLeaf }

// climbs reports how many levels a route between two leaves ascends before
// turning down: 1 when one spine tier connects them, more when they sit in
// different pods of a deeper fabric.
func (t *Clos) climbs(sl, dl int) int {
	span := t.cfg.Radix // leaves reachable through the first spine tier
	for lvl := 1; lvl < t.cfg.Levels; lvl++ {
		if sl/span == dl/span {
			return lvl
		}
		span *= t.cfg.Radix / 2
	}
	return t.cfg.Levels - 1
}

// pickUplink selects the up-link index for one message from leaf sl to
// leaf dl under the configured routing policy.
func (t *Clos) pickUplink(sl, dl, dst int) int {
	if t.cfg.Routing == Deterministic || t.uplinks == 1 {
		return dst % t.uplinks
	}
	// Adaptive dispersive: take the least-backlogged up-link of the source
	// leaf; ties fall to a seeded counter PRNG so the choice disperses
	// rather than herding onto link 0. All inputs are leaf-local, so the
	// choice is identical at any shard count.
	best := []int{0}
	bestAt := t.up[sl][0].FreeAt()
	for u := 1; u < t.uplinks; u++ {
		at := t.up[sl][u].FreeAt()
		if at < bestAt {
			best, bestAt = best[:0], at
			best = append(best, u)
		} else if at == bestAt {
			best = append(best, u)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	n := t.counter[sl]
	t.counter[sl] = n + 1
	r := sim.NewRNG(t.cfg.Seed ^ uint64(sl)<<32 ^ n)
	return best[r.Intn(len(best))]
}

// Between implements Topology: same-leaf traffic crosses one element;
// cross-leaf traffic takes its leaf up-link, the pure-latency climb over
// the upper levels, and the destination leaf's matching down-link.
//
// Deterministic routes are served from the per-(leaf, dst) cache: within one
// health epoch the plane choice, stages and fate of such a route are pure
// functions of the pair, so re-resolution (and its per-message stage-slice
// allocation) is paid once per epoch instead of once per message. The fate
// annotation is replayed from the entry so LastRoute behaves identically on
// hits and misses.
func (t *Clos) Between(src, dst int) ([]PathStage, sim.Time) {
	sl, dl := t.LeafOf(src), t.LeafOf(dst)
	if t.cacheOff || (t.cfg.Routing == Adaptive && t.uplinks > 1) {
		return t.routeOnce(src, dst, sl, dl)
	}
	var epoch uint32
	if t.health != nil {
		epoch = t.health.advance()
	}
	row := t.routes[sl]
	if row == nil {
		row = make([]closRoute, t.Nodes())
		t.routes[sl] = row
	}
	e := &row[dst]
	if !e.valid || e.epoch != epoch {
		e.stages, _ = t.routeOnce(src, dst, sl, dl)
		if t.health != nil {
			e.info = t.health.last
		}
		e.valid, e.epoch = true, epoch
	}
	if t.health != nil {
		t.health.last = e.info
	}
	return e.stages, t.cfg.Crossing
}

// routeOnce resolves a route without consulting the cache: the faulty path
// when element faults are armed, the healthy geometry otherwise.
func (t *Clos) routeOnce(src, dst, sl, dl int) ([]PathStage, sim.Time) {
	if t.health != nil {
		return t.betweenFaulty(src, dst, sl, dl)
	}
	if sl == dl {
		return nil, t.cfg.Crossing
	}
	climbs := sim.Time(t.climbs(sl, dl))
	u := t.pickUplink(sl, dl, dst)
	hop := t.cfg.Crossing + t.cfg.WireLatency
	stages := []PathStage{
		{Stage: t.up[sl][u], Latency: climbs * hop},
		{Stage: t.down[dl][u], Latency: climbs * hop},
	}
	// The last crossing (destination leaf onto the host link) rides the
	// down-link latency, as in the two-level FatTree.
	return stages, t.cfg.Crossing
}

// SrcStages implements SplitTopology: the up-link stage of a cross-leaf
// route lives with the source leaf's node domain; everything after the
// spine turn belongs to the destination's.
func (t *Clos) SrcStages(src, dst int) int {
	if t.LeafOf(src) == t.LeafOf(dst) {
		return 0
	}
	return 1
}

// Hops reports the element count a (src, dst) route crosses.
func (t *Clos) Hops(src, dst int) int {
	sl, dl := t.LeafOf(src), t.LeafOf(dst)
	if sl == dl {
		return 1
	}
	return 2*t.climbs(sl, dl) + 1
}

// Instrument registers every leaf-tier link's byte volume, occupancy and
// contention time under fabric/<link-name>/... — per-link counters are what
// make up-link imbalance and incast hot spots visible.
func (t *Clos) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	for l := range t.up {
		for u := range t.up[l] {
			for _, p := range []*sim.Pipe{t.up[l][u], t.down[l][u]} {
				p.Instrument(m, "fabric/"+p.Name())
				p.RecordSpans(m, metrics.FabricNode, "fwd", "fabric")
			}
		}
	}
}

// SplitTopology is implemented by topologies that can say how many of the
// stages Between returns lie on the source node's side of the inter-domain
// wire crossing. The domain-split transfer (TransferCut) runs those stages
// on the source's engine and the rest on the destination's; a topology
// without the method keeps every intermediate stage destination-side.
type SplitTopology interface {
	SrcStages(src, dst int) int
}

// SrcStagesOf reports t's source-side stage count for a route, 0 when the
// topology does not split.
func SrcStagesOf(t Topology, src, dst int) int {
	if st, ok := t.(SplitTopology); ok {
		return st.SrcStages(src, dst)
	}
	return 0
}
