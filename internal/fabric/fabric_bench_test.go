package fabric

import (
	"testing"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// benchPath builds the canonical three-stage host→switch→host path the NIC
// models drive: egress link, switch output port, ingress link.
func benchPath() []PathStage {
	return []PathStage{
		{Stage: sim.NewPipe("up", units.MBps(1000), 0, 0), Latency: 100 * units.Nanosecond},
		{Stage: sim.NewPipe("out", units.MBps(1000), 0, 0), Latency: 100 * units.Nanosecond},
		{Stage: sim.NewPipe("down", units.MBps(1000), 0, 0), Latency: 100 * units.Nanosecond},
	}
}

// BenchmarkTransferChunk measures the per-chunk cost of the cut-through
// pipeline in steady state: one op is one chunk traversing all three stages
// (three stage events plus the self-clocking of its successor). The chunk
// progression is a typed-event path and must report zero allocations per
// chunk — the single xfer record per message amortizes away.
func BenchmarkTransferChunk(b *testing.B) {
	e := sim.New()
	path := benchPath()
	const chunk = 2048
	size := int64(b.N) * chunk
	done := false
	b.ReportAllocs()
	b.ResetTimer()
	Transfer(e, path, size, chunk, 0, func(sim.Time) { done = true })
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if !done {
		b.Fatal("transfer did not complete")
	}
}

// TestTransferSteadyStateZeroAlloc asserts the benchmark's claim: past the
// one xfer record per message, pushing more chunks through a path must not
// allocate. Measured by subtraction so the fixed setup (engine, pipes, the
// event slice warm-up) cancels.
func TestTransferSteadyStateZeroAlloc(t *testing.T) {
	run := func(nchunks int64) float64 {
		return testing.AllocsPerRun(5, func() {
			e := sim.New()
			path := benchPath()
			Transfer(e, path, nchunks*512, 512, 0, func(sim.Time) {})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(32), run(2080)
	per := (large - small) / float64(2080-32)
	if per > 0.001 {
		t.Errorf("transfer allocates %.4f per chunk in steady state, want 0", per)
	}
}
