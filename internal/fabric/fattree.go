package fabric

import (
	"fmt"

	"mpinet/internal/metrics"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Topology abstracts the switching fabric between a source host's up-link
// and a destination host's down-link: a single crossbar (the paper's
// testbeds) or a multi-stage fat tree (the scaling extension).
type Topology interface {
	// Between returns the intermediate stages a message crosses from src
	// node to dst node (possibly none), plus the latency to add to the
	// destination's down-link stage (switch crossings and wire time).
	Between(src, dst int) (stages []PathStage, downLatency sim.Time)
	// Nodes reports how many hosts the fabric can attach.
	Nodes() int
}

// CrossbarTopology adapts the single-switch star: no intermediate stages,
// one crossing.
type CrossbarTopology struct {
	sw *Switch
}

// NewCrossbarTopology wraps a switch as a Topology.
func NewCrossbarTopology(sw *Switch) *CrossbarTopology {
	return &CrossbarTopology{sw: sw}
}

// Between implements Topology.
func (c *CrossbarTopology) Between(src, dst int) ([]PathStage, sim.Time) {
	return nil, c.sw.Crossing()
}

// Nodes implements Topology.
func (c *CrossbarTopology) Nodes() int { return c.sw.Ports() }

// Instrument is a no-op: in the star path the crossbar's output contention
// is carried by the destination's down-link, so the switch's own port pipes
// never run and would register only as zero rows.
func (c *CrossbarTopology) Instrument(m *metrics.Registry) {}

// Diameter reports the single crossing of the star topology.
func (c *CrossbarTopology) Diameter() int { return 1 }

// FatTreeConfig describes a two-level folded-Clos (fat-tree) fabric built
// from crossbar elements: hosts attach to leaf switches; every leaf has one
// up-link to each spine.
type FatTreeConfig struct {
	// HostsPerLeaf is the number of hosts below each leaf switch.
	HostsPerLeaf int
	// Leaves is the number of leaf switches.
	Leaves int
	// Spines is the number of spine switches (also each leaf's up-link
	// count); HostsPerLeaf:Spines sets the oversubscription ratio.
	Spines int
	// LinkRate is the inter-switch link bandwidth per direction.
	LinkRate units.BytesPerSecond
	// Crossing is the per-element crossing latency.
	Crossing sim.Time
	// WireLatency is the per-hop cable flight time.
	WireLatency sim.Time
}

// FatTree is a wired two-level fabric. Routing is deterministic ECMP: the
// spine is picked by destination node, so a given (src, dst) pair always
// takes the same path (as real forwarding tables do) while load spreads
// across spines.
type FatTree struct {
	cfg FatTreeConfig
	// up[l][s] is leaf l's up-link toward spine s; down[l][s] the return.
	up   [][]*sim.Pipe
	down [][]*sim.Pipe
}

// NewFatTree wires the fabric.
func NewFatTree(name string, cfg FatTreeConfig) *FatTree {
	if cfg.HostsPerLeaf < 1 || cfg.Leaves < 1 || cfg.Spines < 1 {
		panic("fabric: fat tree needs positive dimensions")
	}
	if cfg.LinkRate <= 0 {
		panic("fabric: fat tree needs a link rate")
	}
	t := &FatTree{cfg: cfg}
	t.up = make([][]*sim.Pipe, cfg.Leaves)
	t.down = make([][]*sim.Pipe, cfg.Leaves)
	for l := 0; l < cfg.Leaves; l++ {
		t.up[l] = make([]*sim.Pipe, cfg.Spines)
		t.down[l] = make([]*sim.Pipe, cfg.Spines)
		for s := 0; s < cfg.Spines; s++ {
			t.up[l][s] = sim.NewPipe(fmt.Sprintf("%s/leaf%d-up%d", name, l, s), cfg.LinkRate, 0, 0)
			t.down[l][s] = sim.NewPipe(fmt.Sprintf("%s/leaf%d-down%d", name, l, s), cfg.LinkRate, 0, 0)
		}
	}
	return t
}

// Nodes implements Topology.
func (t *FatTree) Nodes() int { return t.cfg.Leaves * t.cfg.HostsPerLeaf }

// Instrument registers every inter-switch link's byte volume, occupancy and
// contention time under fabric/<link-name>/..., with spans on the fabric
// pseudo-process — per-link counters are what make spine imbalance and
// oversubscription hot spots visible.
func (t *FatTree) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	for l := range t.up {
		for s := range t.up[l] {
			for _, p := range []*sim.Pipe{t.up[l][s], t.down[l][s]} {
				p.Instrument(m, "fabric/"+p.Name())
				p.RecordSpans(m, metrics.FabricNode, "fwd", "fabric")
			}
		}
	}
}

// LeafOf returns the leaf switch a node attaches to.
func (t *FatTree) LeafOf(node int) int { return node / t.cfg.HostsPerLeaf }

// Between implements Topology: same-leaf traffic crosses one element;
// cross-leaf traffic climbs to a spine and back down.
func (t *FatTree) Between(src, dst int) ([]PathStage, sim.Time) {
	sl, dl := t.LeafOf(src), t.LeafOf(dst)
	if sl == dl {
		return nil, t.cfg.Crossing
	}
	spine := dst % t.cfg.Spines // deterministic ECMP by destination
	stages := []PathStage{
		{Stage: t.up[sl][spine], Latency: t.cfg.Crossing + t.cfg.WireLatency},
		{Stage: t.down[dl][spine], Latency: t.cfg.Crossing + t.cfg.WireLatency},
	}
	// The third crossing (destination leaf onto the host link) rides the
	// down-link latency.
	return stages, t.cfg.Crossing
}

// Hops reports the element count a (src, dst) route crosses — useful for
// tests and diagnostics.
func (t *FatTree) Hops(src, dst int) int {
	if t.LeafOf(src) == t.LeafOf(dst) {
		return 1
	}
	return 3
}

// Diameter reports the longest route's element count: leaf, spine, leaf.
func (t *FatTree) Diameter() int { return 3 }
