package fabric

import (
	"testing"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func linkCfg(mbps float64) LinkConfig {
	return LinkConfig{Rate: units.MBps(mbps)}
}

func TestTransferSingleStageRate(t *testing.T) {
	e := sim.New()
	p := sim.NewPipe("l", units.MBps(100), 0, 0)
	var end sim.Time
	Transfer(e, []PathStage{{Stage: p}}, 100*units.MB, DefaultChunk, 0, func(at sim.Time) { end = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := end.Seconds(); got < 0.999 || got > 1.001 {
		t.Fatalf("100MB at 100MB/s finished at %vs, want ~1s", got)
	}
}

func TestTransferPipelinesAcrossStages(t *testing.T) {
	// Two equal-rate stages: pipelined time ≈ size/rate + chunk/rate, far
	// less than the 2x of store-and-forward.
	e := sim.New()
	a := sim.NewPipe("a", units.MBps(100), 0, 0)
	b := sim.NewPipe("b", units.MBps(100), 0, 0)
	var end sim.Time
	size := int64(10 * units.MB)
	Transfer(e, []PathStage{{Stage: a}, {Stage: b}}, size, DefaultChunk, 0, func(at sim.Time) { end = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	oneStage := units.MBps(100).TimeFor(size)
	if end >= oneStage*3/2 {
		t.Fatalf("two-stage transfer %v not pipelined (one stage = %v)", end, oneStage)
	}
	if end <= oneStage {
		t.Fatalf("two-stage transfer %v impossibly fast (one stage = %v)", end, oneStage)
	}
}

func TestTransferBottleneckStage(t *testing.T) {
	e := sim.New()
	fast := sim.NewPipe("fast", units.MBps(1000), 0, 0)
	slow := sim.NewPipe("slow", units.MBps(100), 0, 0)
	var end sim.Time
	size := int64(50 * units.MB)
	Transfer(e, []PathStage{{Stage: fast}, {Stage: slow}, {Stage: fast}}, size, DefaultChunk, 0,
		func(at sim.Time) { end = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	bottleneck := units.MBps(100).TimeFor(size)
	ratio := float64(end) / float64(bottleneck)
	if ratio < 1.0 || ratio > 1.1 {
		t.Fatalf("transfer/bottleneck ratio = %.3f, want ~1", ratio)
	}
}

func TestTransferLatencyAdds(t *testing.T) {
	e := sim.New()
	p := sim.NewPipe("l", units.MBps(100), 0, 0)
	var end sim.Time
	Transfer(e, []PathStage{{Stage: p, Latency: 5 * units.Microsecond}}, 1, 1024, 0,
		func(at sim.Time) { end = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end < 5*units.Microsecond {
		t.Fatalf("end %v ignores stage latency", end)
	}
}

func TestTwoTransfersShareStageFairly(t *testing.T) {
	// Two simultaneous transfers through one pipe: each should take about
	// twice as long as alone, and finish near each other (chunk interleave).
	e := sim.New()
	p := sim.NewPipe("l", units.MBps(100), 0, 0)
	var endA, endB sim.Time
	size := int64(10 * units.MB)
	Transfer(e, []PathStage{{Stage: p}}, size, DefaultChunk, 0, func(at sim.Time) { endA = at })
	Transfer(e, []PathStage{{Stage: p}}, size, DefaultChunk, 0, func(at sim.Time) { endB = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	alone := units.MBps(100).TimeFor(size)
	for _, end := range []sim.Time{endA, endB} {
		ratio := float64(end) / float64(alone)
		if ratio < 1.9 || ratio > 2.1 {
			t.Fatalf("shared transfer ratio = %.2f, want ~2", ratio)
		}
	}
	diff := endA - endB
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > float64(alone)/8 {
		t.Fatalf("transfers finished %v apart — not interleaving", diff)
	}
}

func TestSwitchOutputPortContention(t *testing.T) {
	// Two hosts sending to the same destination port: combined goodput
	// limited by that port's rate.
	e := sim.New()
	sw := NewSwitch("sw", SwitchConfig{Ports: 4, Crossing: 100 * units.Nanosecond, Rate: units.MBps(200)})
	la := NewLink("a", linkCfg(200))
	lb := NewLink("b", linkCfg(200))
	dst := NewLink("c", linkCfg(200))
	size := int64(10 * units.MB)
	var ends []sim.Time
	for _, up := range []*sim.Pipe{la.Up(), lb.Up()} {
		path := []PathStage{
			{Stage: up},
			{Stage: sw.OutPort(2), Latency: sw.Crossing()},
			{Stage: dst.Down()},
		}
		Transfer(e, path, size, DefaultChunk, 0, func(at sim.Time) { ends = append(ends, at) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	alone := units.MBps(200).TimeFor(size)
	lastEnd := ends[0]
	if ends[1] > lastEnd {
		lastEnd = ends[1]
	}
	ratio := float64(lastEnd) / float64(alone)
	if ratio < 1.9 || ratio > 2.2 {
		t.Fatalf("contended completion ratio = %.2f, want ~2 (output port is the bottleneck)", ratio)
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	e := sim.New()
	l := NewLink("x", linkCfg(100))
	size := int64(10 * units.MB)
	var upEnd, downEnd sim.Time
	Transfer(e, []PathStage{{Stage: l.Up()}}, size, DefaultChunk, 0, func(at sim.Time) { upEnd = at })
	Transfer(e, []PathStage{{Stage: l.Down()}}, size, DefaultChunk, 0, func(at sim.Time) { downEnd = at })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	alone := units.MBps(100).TimeFor(size)
	for _, end := range []sim.Time{upEnd, downEnd} {
		ratio := float64(end) / float64(alone)
		if ratio > 1.05 {
			t.Fatalf("full-duplex directions interfered: ratio %.2f", ratio)
		}
	}
}

func TestTransferZeroAndTinySizes(t *testing.T) {
	e := sim.New()
	p := sim.NewPipe("l", units.MBps(100), 0, 0)
	var n int
	for _, size := range []int64{0, 1, 7, 8*1024 + 1} {
		Transfer(e, []PathStage{{Stage: p}}, size, 8*1024, e.Now(), func(sim.Time) { n++ })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("done callbacks = %d, want 4", n)
	}
}

func TestTransferEmptyPath(t *testing.T) {
	e := sim.New()
	called := false
	Transfer(e, nil, 100, 10, 5, func(at sim.Time) {
		called = true
		if at != 5 {
			t.Errorf("empty path completion at %v, want 5", at)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("done not called")
	}
}
