package fabric

import (
	"fmt"
	"slices"

	"mpinet/internal/faults"
	"mpinet/internal/msgtrace"
	"mpinet/internal/sim"
)

// This file is the fabric's failure-domain layer: rendering a fault plan's
// SwitchKills and LinecardDegrades into routing behaviour. The Clos model
// keeps state only at the leaf tier, so element deaths map onto route
// equivalence classes: a spine-tier kill (Level >= 1) takes down the
// up-link plane Index mod uplinks fabric-wide; a leaf kill (Level 0) takes
// down every host under the leaf. Routing reacts on a detection delay —
// before detection, traffic keeps selecting the dead element and
// black-holes into it (the device retry protocols carry the gap, exactly
// like a subnet-manager sweep interval); after, deterministic ECMP
// re-hashes over the surviving planes and adaptive routing stops
// considering dead ones. When no plane survives, or an endpoint's leaf is
// detected dead, the route is Partitioned: the device fails typed
// (faults.PartitionError) instead of burning its retry budget.

// RouteState classifies the route Between just computed.
type RouteState int

const (
	// RouteOK is a live route.
	RouteOK RouteState = iota
	// RouteBlackhole is a route through a dead element whose death is not
	// yet detected: the packet is forcibly lost (no PRNG draw — the fate is
	// structural, not probabilistic), and the device's retry protocol covers
	// the detection window.
	RouteBlackhole
	// RoutePartitioned means no surviving route exists between the
	// endpoints; the device must fail typed rather than transmit.
	RoutePartitioned
)

// RouteInfo is the fate annotation of the last route computed by a
// fault-aware topology, read back via LastRouteOf immediately after the
// path-building call (safe under the cooperative scheduler: nothing runs
// between Between and the read-back).
type RouteInfo struct {
	State RouteState
	// Plane is the up-link equivalence class the route rides (-1 for
	// same-leaf traffic that never climbs).
	Plane int
	// Element names the dead element responsible for a Blackhole or
	// Partitioned verdict ("leaf 3", "spine plane 1").
	Element string
	// ElementCode is the packed element identity for flight-recorder
	// attribution (msgtrace element codes), 0 when State is RouteOK.
	ElementCode int64
	// ExtraDrop is the summed extra drop probability of linecard degrades
	// active on this route — a pure function of (route, now), fed to
	// Injector.VerdictExtra so degraded runs replay byte-identically.
	ExtraDrop float64
}

// Element codes are msgtrace's packed flight-record encoding, re-exported
// here so fabric callers need not name the tracing package.
const (
	ElemLeaf  = msgtrace.ElemLeaf
	ElemPlane = msgtrace.ElemPlane
	ElemNode  = msgtrace.ElemNode
)

// ElemCode packs an element kind and index into a flight-record argument.
func ElemCode(kind int64, index int) int64 { return msgtrace.ElemCode(kind, index) }

// elementHealth is the Clos topology's view of the fault plan's element
// faults. The engine is the clock: Between has no now parameter, and under
// a fault plan the world always runs classic single-engine mode, so the
// engine's now is the packet's send instant.
type elementHealth struct {
	kills    []faults.SwitchKill
	degrades []faults.LinecardDegrade
	detect   sim.Time
	eng      *sim.Engine
	last     RouteInfo
	// transitions is the sorted set of instants at which any armed fault
	// changes observable routing state (death, detection, repair, degrade
	// start or end); epoch counts how many lie in the past. Between's route
	// cache keys entries by the epoch: within one epoch every route is a pure
	// function of (source leaf, dst), so advancing the epoch is the entire
	// invalidation protocol. Lazy advance on the engine's now is sound
	// because element faults force classic single-engine mode, where Between
	// observes a monotonic clock.
	transitions []sim.Time
	epoch       uint32
}

// advance moves the fault epoch up to the engine's current time and returns
// it. O(1) amortized: each transition instant is consumed once per run.
func (h *elementHealth) advance() uint32 {
	now := h.eng.Now()
	for int(h.epoch) < len(h.transitions) && now >= h.transitions[h.epoch] {
		h.epoch++
	}
	return h.epoch
}

// SetElementFaults arms the topology's failure-domain rendering from a
// plan's SwitchKills/LinecardDegrades. The device calls it at construction
// when the plan has element faults; eng supplies the clock. Kills at
// levels the fabric does not have are rejected.
func (t *Clos) SetElementFaults(p *faults.Plan, eng *sim.Engine) error {
	if p == nil || !p.HasElements() {
		return nil
	}
	for _, k := range p.SwitchKills {
		if k.Level < 0 || k.Level >= t.cfg.Levels {
			return fmt.Errorf("switch kill at level %d: fabric has levels 0..%d", k.Level, t.cfg.Levels-1)
		}
		if k.Level == 0 && (k.Index < 0 || k.Index >= t.leaves) {
			return fmt.Errorf("switch kill at leaf %d: fabric has %d leaves", k.Index, t.leaves)
		}
	}
	h := &elementHealth{
		kills:    append([]faults.SwitchKill(nil), p.SwitchKills...),
		degrades: append([]faults.LinecardDegrade(nil), p.LinecardDegrades...),
		detect:   p.DetectionDelay(),
		eng:      eng,
	}
	// Precompute every instant routing behaviour can change. Superfluous
	// entries (a detection instant past the repair, duplicates) only cost a
	// spurious cache refresh, never correctness.
	for _, k := range h.kills {
		h.transitions = append(h.transitions, k.At, k.At+h.detect)
		if k.RepairAt > 0 {
			h.transitions = append(h.transitions, k.RepairAt)
		}
	}
	for _, d := range h.degrades {
		h.transitions = append(h.transitions, d.From, d.Until)
	}
	slices.Sort(h.transitions)
	t.health = h
	return nil
}

// LastRoute returns the fate annotation of the most recent Between call.
// Zero-valued (RouteOK) when the topology has no element faults armed.
func (t *Clos) LastRoute() RouteInfo {
	if t.health == nil {
		return RouteInfo{Plane: -1}
	}
	return t.health.last
}

// planeState reports whether up-link plane u is dead at now and whether the
// death has been detected.
func (t *Clos) planeState(u int, now sim.Time) (dead, detected bool) {
	h := t.health
	for _, k := range h.kills {
		if k.Level >= 1 && k.Index%t.uplinks == u {
			if k.Dead(now) {
				dead = true
			}
			if k.Detected(now, h.detect) {
				detected = true
			}
		}
	}
	return dead, detected
}

// leafState reports whether leaf l is dead at now and whether the death has
// been detected.
func (t *Clos) leafState(l int, now sim.Time) (dead, detected bool) {
	h := t.health
	for _, k := range h.kills {
		if k.Level == 0 && k.Index == l {
			if k.Dead(now) {
				dead = true
			}
			if k.Detected(now, h.detect) {
				detected = true
			}
		}
	}
	return dead, detected
}

// routeExtra sums the linecard degrades active on a route at now: leaf
// degrades on either endpoint leaf, plane degrades on the chosen plane.
func (t *Clos) routeExtra(sl, dl, plane int, now sim.Time) float64 {
	var extra float64
	for _, d := range t.health.degrades {
		if !d.Active(now) {
			continue
		}
		switch {
		case d.Level == 0 && (d.Index == sl || d.Index == dl):
			extra += d.Drop
		case d.Level >= 1 && plane >= 0 && d.Index%t.uplinks == plane:
			extra += d.Drop
		}
	}
	return extra
}

// betweenFaulty is Between with element-fault rendering armed. It mirrors
// the healthy path exactly when no fault is active at now — same plane
// choice, same adaptive draws — so arming an all-future plan does not
// perturb the pre-fault prefix of a run.
func (t *Clos) betweenFaulty(src, dst, sl, dl int) ([]PathStage, sim.Time) {
	h := t.health
	now := h.eng.Now()
	if sl == dl {
		info := RouteInfo{Plane: -1}
		if dead, det := t.leafState(sl, now); dead {
			info.Element = fmt.Sprintf("leaf %d", sl)
			info.ElementCode = ElemCode(ElemLeaf, sl)
			if det {
				info.State = RoutePartitioned
			} else {
				info.State = RouteBlackhole
			}
		}
		info.ExtraDrop = t.routeExtra(sl, dl, -1, now)
		h.last = info
		return nil, t.cfg.Crossing
	}
	// A dead endpoint leaf beats plane selection: no plane routes around it.
	// A detected leaf death partitions; an undetected one black-holes.
	info := RouteInfo{Plane: -1}
	for _, l := range [2]int{sl, dl} {
		dead, det := t.leafState(l, now)
		if !dead {
			continue
		}
		if det || info.State == RouteOK {
			info.Element = fmt.Sprintf("leaf %d", l)
			info.ElementCode = ElemCode(ElemLeaf, l)
			if det {
				info.State = RoutePartitioned
			} else {
				info.State = RouteBlackhole
			}
		}
		if info.State == RoutePartitioned {
			break
		}
	}
	// Routable planes: those whose death, if any, is not yet detected.
	// Detection removes a plane from the hash space (the re-hash); repair
	// puts it straight back (Dead turns false at RepairAt).
	routable := make([]int, 0, t.uplinks)
	firstDetected := -1
	for u := 0; u < t.uplinks; u++ {
		if _, det := t.planeState(u, now); det {
			if firstDetected < 0 {
				firstDetected = u
			}
			continue
		}
		routable = append(routable, u)
	}
	var u int
	switch {
	case len(routable) == 0:
		// Every plane detected dead: the fabric is partitioned. Build the
		// path on the would-be plane anyway so callers that ignore the fate
		// still get a well-formed (never transmitted) path.
		u = dst % t.uplinks
		if info.State != RoutePartitioned {
			info.State = RoutePartitioned
			info.Element = fmt.Sprintf("spine plane %d", firstDetected)
			info.ElementCode = ElemCode(ElemPlane, firstDetected)
		}
	case t.cfg.Routing == Deterministic || len(routable) == 1:
		// ECMP re-hash over the survivors; with every plane routable this is
		// exactly the healthy dst % uplinks.
		u = routable[dst%len(routable)]
	default:
		u = t.pickAdaptive(sl, routable)
	}
	if dead, _ := t.planeState(u, now); dead && info.State == RouteOK {
		// Chosen plane is dead but not yet detected: black-hole.
		info.State = RouteBlackhole
		info.Element = fmt.Sprintf("spine plane %d", u)
		info.ElementCode = ElemCode(ElemPlane, u)
	}
	info.Plane = u
	info.ExtraDrop = t.routeExtra(sl, dl, u, now)
	h.last = info

	climbs := sim.Time(t.climbs(sl, dl))
	hop := t.cfg.Crossing + t.cfg.WireLatency
	stages := []PathStage{
		{Stage: t.up[sl][u], Latency: climbs * hop},
		{Stage: t.down[dl][u], Latency: climbs * hop},
	}
	return stages, t.cfg.Crossing
}

// pickAdaptive is the adaptive policy restricted to a candidate plane set:
// least-backlogged up-link, seeded counter tie-break. With the full plane
// set it consumes exactly the draws the healthy pickUplink would.
func (t *Clos) pickAdaptive(sl int, candidates []int) int {
	best := []int{candidates[0]}
	bestAt := t.up[sl][candidates[0]].FreeAt()
	for _, u := range candidates[1:] {
		at := t.up[sl][u].FreeAt()
		if at < bestAt {
			best, bestAt = best[:0], at
			best = append(best, u)
		} else if at == bestAt {
			best = append(best, u)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	n := t.counter[sl]
	t.counter[sl] = n + 1
	r := sim.NewRNG(t.cfg.Seed ^ uint64(sl)<<32 ^ n)
	return best[r.Intn(len(best))]
}

// DeadElement reports the first fabric element dead at now, for rail-layer
// incident attribution (a rail whose fabric lost a spine should name the
// spine, not just itself). ok is false when nothing is dead.
func (t *Clos) DeadElement(now sim.Time) (name string, code int64, ok bool) {
	if t.health == nil {
		return "", 0, false
	}
	for _, k := range t.health.kills {
		if !k.Dead(now) {
			continue
		}
		if k.Level == 0 {
			return fmt.Sprintf("leaf %d", k.Index), ElemCode(ElemLeaf, k.Index), true
		}
		p := k.Index % t.uplinks
		return fmt.Sprintf("spine plane %d", p), ElemCode(ElemPlane, p), true
	}
	return "", 0, false
}

// Diameter reports the element count of the longest route: up through
// Levels-1 tiers and back down, plus the destination leaf (Hops' maximum).
func (t *Clos) Diameter() int { return 2*(t.cfg.Levels-1) + 1 }

// DiameterOf reports a topology's diameter — the element count of its
// longest route — defaulting to 1 (single crossbar) for topologies that do
// not report one.
func DiameterOf(t Topology) int {
	if d, ok := t.(interface{ Diameter() int }); ok {
		return d.Diameter()
	}
	return 1
}

// LastRouteOf reads back the fate of the last route a topology computed;
// RouteOK for topologies without fault-aware routing.
func LastRouteOf(t Topology) RouteInfo {
	if lr, ok := t.(interface{ LastRoute() RouteInfo }); ok {
		return lr.LastRoute()
	}
	return RouteInfo{Plane: -1}
}
