package fabric

import (
	"testing"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func testTree() *FatTree {
	return NewFatTree("t", FatTreeConfig{
		HostsPerLeaf: 4,
		Leaves:       4,
		Spines:       2,
		LinkRate:     units.MBps(800),
		Crossing:     200 * units.Nanosecond,
		WireLatency:  100 * units.Nanosecond,
	})
}

func TestFatTreeDimensions(t *testing.T) {
	tr := testTree()
	if tr.Nodes() != 16 {
		t.Fatalf("nodes = %d, want 16", tr.Nodes())
	}
	if tr.LeafOf(0) != 0 || tr.LeafOf(3) != 0 || tr.LeafOf(4) != 1 || tr.LeafOf(15) != 3 {
		t.Fatal("leaf mapping wrong")
	}
}

func TestFatTreeHops(t *testing.T) {
	tr := testTree()
	if tr.Hops(0, 1) != 1 {
		t.Fatalf("same-leaf hops = %d, want 1", tr.Hops(0, 1))
	}
	if tr.Hops(0, 5) != 3 {
		t.Fatalf("cross-leaf hops = %d, want 3", tr.Hops(0, 5))
	}
}

func TestFatTreeBetween(t *testing.T) {
	tr := testTree()
	stages, lat := tr.Between(0, 1)
	if len(stages) != 0 || lat != 200*units.Nanosecond {
		t.Fatalf("same-leaf: %d stages, latency %v", len(stages), lat)
	}
	stages, _ = tr.Between(0, 5)
	if len(stages) != 2 {
		t.Fatalf("cross-leaf: %d stages, want 2", len(stages))
	}
}

func TestFatTreeDeterministicECMP(t *testing.T) {
	tr := testTree()
	a, _ := tr.Between(0, 5)
	b, _ := tr.Between(0, 5)
	if a[0].Stage != b[0].Stage || a[1].Stage != b[1].Stage {
		t.Fatal("route to the same destination changed")
	}
	// Different destinations on the same remote leaf spread across spines.
	r5, _ := tr.Between(0, 5)
	r6, _ := tr.Between(0, 6)
	if r5[0].Stage == r6[0].Stage {
		t.Fatal("ECMP did not spread destinations across spines")
	}
}

func TestFatTreeUplinkContention(t *testing.T) {
	// Two flows from the same leaf to destinations sharing a spine must
	// serialize on the single up-link; flows to different spines must not.
	tr := testTree()
	eng := sim.New()
	size := int64(4 * units.MB)
	run := func(dsts []int) sim.Time {
		var last sim.Time
		for _, dst := range dsts {
			stages, _ := tr.Between(0, dst)
			Transfer(eng, stages, size, DefaultChunk, eng.Now(), func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	// Destinations 4 and 6 hash to spines 0 and 0 (4%2, 6%2): same uplink.
	shared := run([]int{4, 6})
	eng2 := sim.New()
	tr2 := testTree()
	var last2 sim.Time
	for _, dst := range []int{4, 5} { // spines 0 and 1: disjoint uplinks
		stages, _ := tr2.Between(0, dst)
		Transfer(eng2, stages, size, DefaultChunk, eng2.Now(), func(at sim.Time) {
			if at > last2 {
				last2 = at
			}
		})
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if float64(shared) < float64(last2)*1.7 {
		t.Fatalf("shared-spine flows (%v) not ~2x disjoint-spine flows (%v)", shared, last2)
	}
}

func TestFatTreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimensions accepted")
		}
	}()
	NewFatTree("bad", FatTreeConfig{})
}

func TestCrossbarTopology(t *testing.T) {
	sw := NewSwitch("x", SwitchConfig{Ports: 8, Crossing: 150 * units.Nanosecond, Rate: units.MBps(100)})
	topo := NewCrossbarTopology(sw)
	if topo.Nodes() != 8 {
		t.Fatal("crossbar nodes")
	}
	stages, lat := topo.Between(0, 5)
	if len(stages) != 0 || lat != 150*units.Nanosecond {
		t.Fatal("crossbar Between")
	}
}
