package fabric

import (
	"testing"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func closCfg(levels, radix, oversub int, routing Routing) ClosConfig {
	return ClosConfig{
		Levels:      levels,
		Radix:       radix,
		Oversub:     oversub,
		Routing:     routing,
		LinkRate:    units.MBps(800),
		Crossing:    200 * units.Nanosecond,
		WireLatency: 100 * units.Nanosecond,
	}
}

func TestClosGeometry(t *testing.T) {
	// The paper-era building block: 24-port elements, 2:1 oversubscribed.
	c := closCfg(2, 24, 2, Deterministic)
	if got := c.HostsPerLeaf(); got != 16 {
		t.Fatalf("hosts/leaf = %d, want 16", got)
	}
	if got := c.Uplinks(); got != 8 {
		t.Fatalf("uplinks = %d, want 8", got)
	}
	if got := c.MaxHosts(); got != 384 {
		t.Fatalf("2-level capacity = %d, want 384", got)
	}
	if got := closCfg(3, 24, 2, Deterministic).MaxHosts(); got != 4608 {
		t.Fatalf("3-level capacity = %d, want 4608", got)
	}
}

func TestClosValidation(t *testing.T) {
	bad := []ClosConfig{
		closCfg(1, 24, 2, Deterministic),  // too few levels
		closCfg(5, 24, 2, Deterministic),  // too many levels
		closCfg(2, 1, 1, Deterministic),   // radix too small
		closCfg(2, 24, 0, Deterministic),  // oversub < 1
		closCfg(2, 25, 2, Deterministic),  // 25 ports don't split 2:1
		closCfg(2, 24, -1, Deterministic), // negative oversub
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", c)
		}
	}
	if err := closCfg(3, 8, 3, Adaptive).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestClosCapacityError(t *testing.T) {
	if _, err := NewClos("c", closCfg(2, 24, 2, Deterministic), 385); err == nil {
		t.Fatal("385 hosts fit a 384-host fabric")
	}
	if _, err := NewClos("c", closCfg(3, 24, 2, Deterministic), 1024); err != nil {
		t.Fatalf("1024 hosts rejected by a 4608-host fabric: %v", err)
	}
}

func TestClosLegacyFatTreeShape(t *testing.T) {
	// FatTree(24, 2) must reproduce the legacy auto-sized tree's element
	// split so existing scale-out numbers carry over.
	tr, err := NewClos("c", closCfg(2, 24, 2, Deterministic), 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.HostsPerLeaf() != 16 || tr.Leaves() != 4 || tr.Nodes() != 64 {
		t.Fatalf("geometry = %d hosts/leaf x %d leaves", tr.HostsPerLeaf(), tr.Leaves())
	}
	if tr.Hops(0, 1) != 1 {
		t.Fatalf("same-leaf hops = %d, want 1", tr.Hops(0, 1))
	}
	if tr.Hops(0, 17) != 3 {
		t.Fatalf("cross-leaf hops = %d, want 3", tr.Hops(0, 17))
	}
	if stages, _ := tr.Between(0, 1); len(stages) != 0 {
		t.Fatal("same-leaf route must not touch up-links")
	}
	if stages, _ := tr.Between(0, 17); len(stages) != 2 {
		t.Fatal("cross-leaf route must take up-link + down-link")
	}
	if tr.SrcStages(0, 1) != 0 || tr.SrcStages(0, 17) != 1 {
		t.Fatal("source-side stage split wrong")
	}
}

func TestClosDeterministicECMP(t *testing.T) {
	build := func() *Clos {
		tr, err := NewClos("c", closCfg(2, 8, 1, Deterministic), 32)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := build(), build()
	// Same route, any call order, any instance: the same up-link index.
	for _, dst := range []int{8, 9, 10, 20, 30} {
		pa, _ := a.Between(0, dst)
		pb, _ := b.Between(0, dst)
		// Interleave unrelated routing decisions on b only; determinism
		// means they cannot perturb the route choice.
		b.Between(dst, 0)
		b.Between(1, dst)
		pb2, _ := b.Between(0, dst)
		if pa[0].Stage != pb[0].Stage && pa[0].Stage.(*sim.Pipe).Name() != pb[0].Stage.(*sim.Pipe).Name() || pb[0].Stage != pb2[0].Stage {
			t.Fatalf("route 0->%d not deterministic", dst)
		}
	}
	// Destinations on one remote leaf spread across up-links.
	p8, _ := a.Between(0, 8)
	p9, _ := a.Between(0, 9)
	if p8[0].Stage == p9[0].Stage {
		t.Fatal("ECMP did not spread destinations")
	}
}

func TestClosAdaptiveReplay(t *testing.T) {
	cfg := closCfg(2, 8, 1, Adaptive)
	cfg.Seed = 42
	route := func(tr *Clos, n int) []string {
		var picks []string
		for i := 0; i < n; i++ {
			src := (i * 3) % tr.Nodes()
			dst := (i*7 + 11) % tr.Nodes()
			if tr.LeafOf(src) == tr.LeafOf(dst) {
				continue
			}
			p, _ := tr.Between(src, dst)
			picks = append(picks, p[0].Stage.(*sim.Pipe).Name())
		}
		return picks
	}
	a, err := NewClos("c", cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewClos("c", cfg, 32)
	pa, pb := route(a, 64), route(b, 64)
	if len(pa) == 0 {
		t.Fatal("no cross-leaf routes exercised")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("adaptive replay diverged at call %d: %s vs %s", i, pa[i], pb[i])
		}
	}
	// A different seed disperses differently (8 up-links, 64 draws: a
	// collision of the whole sequence is astronomically unlikely).
	cfg2 := cfg
	cfg2.Seed = 43
	c, _ := NewClos("c", cfg2, 32)
	pc := route(c, 64)
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence adaptive dispersion")
	}
}

// TestClosConservationAtScale drives hundreds of transfers across a
// 1024-host 3-level Clos and checks flow conservation: every payload is
// delivered exactly once, never before its serialization bound, and leaf
// state stays bounded by the leaf tier (the memory-lean invariant).
func TestClosConservationAtScale(t *testing.T) {
	tr, err := NewClos("c", closCfg(3, 24, 2, Deterministic), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() < 1024 {
		t.Fatalf("fabric wired only %d hosts", tr.Nodes())
	}
	e := sim.New()
	const size = 64 << 10
	sent, delivered := 0, 0
	var bytes int64
	rng := sim.NewRNG(7)
	for i := 0; i < 400; i++ {
		src := rng.Intn(tr.Nodes())
		dst := rng.Intn(tr.Nodes())
		if src == dst {
			continue
		}
		stages, lat := tr.Between(src, dst)
		sent++
		done := func(at sim.Time) {
			delivered++
			bytes += size
		}
		if len(stages) == 0 {
			// Same-leaf: one element crossing, no shared links.
			e.Schedule(lat, func() { done(e.Now()) })
			continue
		}
		stages[len(stages)-1].Latency += lat
		Transfer(e, stages, size, ChunkFor(size), 0, done)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d transfers", delivered, sent)
	}
	if bytes != int64(sent)*size {
		t.Fatalf("byte conservation violated: %d delivered, want %d", bytes, int64(sent)*size)
	}
}
