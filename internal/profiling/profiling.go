// Package profiling wraps a command's main body with optional pprof
// CPU/allocation profile collection, so every binary exposes the same
// -cpuprofile/-memprofile workflow (see README "Profiling").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Run executes body between profile bookends and returns its exit code.
// Profiles are only written when the corresponding path is non-empty, so an
// unprofiled run pays nothing. tag prefixes diagnostics ("paperrepro",
// "mpibench").
func Run(cpuPath, memPath, tag string, body func() int) int {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tag, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tag, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tag, cpuPath)
		}()
	}
	if memPath != "" {
		defer func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", tag, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", tag, err)
				return
			}
			fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tag, memPath)
		}()
	}
	return body()
}
