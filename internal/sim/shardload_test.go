package sim

// Synthetic multi-domain workload for the shard scheduler's tests and the
// shard-scaling benchmark: N node domains exchange messages through one
// switch domain, every hop at exactly the group lookahead, with a chain of
// cheap local compute events between receive and forward. All delays are
// fixed, so every timestamp — and therefore every per-node checksum, which
// folds arrival times in — is a pure function of the model, not of the
// shard count. That is the observable the partition-invariance tests pin.

// mixShard is a splitmix-style avalanche for payload evolution and
// arrival-time checksums.
func mixShard(a, b uint64) uint64 {
	x := a ^ (b * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

type shardNet struct {
	s     *Sharded
	sw    *shardSwitch
	nodes []*shardNode
}

// send routes a typed event to a handler that may live on another shard:
// same shard (or a single-shard group) degrades to Call, cross-shard goes
// through SendTo.
func (nt *shardNet) send(e *Engine, dstShard int, delay Time, h Handler, a, b int64) {
	if nt.s.Shards() == 1 || dstShard == e.ShardID() {
		e.Call(delay, h, a, b)
		return
	}
	e.SendTo(dstShard, delay, h, a, b)
}

// shardSwitch is the single switch domain: HandleEvent(dstNode, payload)
// forwards the message to its destination node after one hop.
type shardSwitch struct {
	eng      *Engine
	shard    int
	net      *shardNet
	hop      Time
	forwards uint64
}

func (sw *shardSwitch) HandleEvent(a, b int64) {
	sw.forwards++
	n := sw.net.nodes[a]
	sw.net.send(sw.eng, n.shard, sw.hop, n, 0, b)
}

// shardNode is one node domain. kind 0 events are message arrivals from the
// switch; kind 1 events are local compute steps. An arrival folds (time,
// payload) into the node checksum, burns ops compute steps, then (while the
// node has rounds left) forwards an evolved payload to a deterministically
// chosen peer via the switch.
type shardNode struct {
	eng     *Engine
	shard   int
	net     *shardNet
	id      int
	hop     Time
	step    Time
	ops     int
	rounds  int
	pending int
	payload int64
	count   uint64
	sum     uint64
}

func (n *shardNode) HandleEvent(kind, payload int64) {
	switch kind {
	case 0: // arrival
		n.count++
		n.sum += mixShard(uint64(n.eng.Now()), uint64(payload))
		if n.rounds == 0 {
			return // chain ends here
		}
		n.rounds--
		n.payload = payload
		n.pending = n.ops
		n.eng.Call(n.step, n, 1, payload)
	case 1: // compute step
		n.pending--
		if n.pending > 0 {
			n.eng.Call(n.step, n, 1, n.payload)
			return
		}
		next := int64(mixShard(uint64(n.payload), uint64(n.id)+1))
		dst := int64(uint64(next) % uint64(len(n.net.nodes)))
		n.net.send(n.eng, n.net.sw.shard, n.hop, n.net.sw, dst, next)
	}
}

// buildShardNet wires the workload under PartitionNodes placement and seeds
// one message chain per node. Run the returned group to completion with
// nt.s.Run() (or any member engine's Run).
func buildShardNet(shards, nodes, ops, rounds int, hop, step Time) *shardNet {
	s := NewSharded(shards, hop)
	part := PartitionNodes(nodes, shards)
	nt := &shardNet{s: s}
	nt.sw = &shardSwitch{eng: s.Shard(part.SwitchShard), shard: part.SwitchShard, net: nt, hop: hop}
	for i := 0; i < nodes; i++ {
		sh := part.NodeShard[i]
		n := &shardNode{
			eng: s.Shard(sh), shard: sh, net: nt, id: i,
			hop: hop, step: step, ops: ops, rounds: rounds,
		}
		nt.nodes = append(nt.nodes, n)
		// Seed: one arrival per node, staggered so the chains interleave.
		n.eng.CallAt(Time(i+1)*step, n, 0, int64(mixShard(uint64(i), 0)))
	}
	return nt
}
