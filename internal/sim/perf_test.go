package sim

import (
	"fmt"
	"strings"
	"testing"
)

// perCycleAllocs runs body at two cycle counts and returns the marginal
// allocations per cycle. The subtraction cancels fixed setup costs (engine,
// goroutine spawn, slice warm-up) so only the steady-state per-cycle cost
// remains — the quantity the allocation-free hot paths must keep at zero.
func perCycleAllocs(t *testing.T, small, large int, body func(cycles int)) float64 {
	t.Helper()
	a := testing.AllocsPerRun(5, func() { body(small) })
	b := testing.AllocsPerRun(5, func() { body(large) })
	return (b - a) / float64(large-small)
}

// TestParkWakeZeroAlloc pins the handoff redesign: a steady-state
// Sleep/resume cycle (park, wake event, resume) must not allocate. Before
// the typed-event overhaul each cycle allocated a wake closure.
func TestParkWakeZeroAlloc(t *testing.T) {
	per := perCycleAllocs(t, 64, 8256, func(cycles int) {
		e := New()
		e.Spawn("s", func(p *Proc) {
			for i := 0; i < cycles; i++ {
				p.Sleep(1)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if per > 0.001 {
		t.Errorf("park/wake allocates %.4f per cycle, want 0", per)
	}
}

// TestYieldZeroAlloc does the same for Yield, which parks and immediately
// reschedules at the current instant (the nowq fast lane).
func TestYieldZeroAlloc(t *testing.T) {
	per := perCycleAllocs(t, 64, 8256, func(cycles int) {
		e := New()
		e.Spawn("s", func(p *Proc) {
			for i := 0; i < cycles; i++ {
				p.Yield()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if per > 0.001 {
		t.Errorf("yield allocates %.4f per cycle, want 0", per)
	}
}

// TestCondWakeZeroAlloc covers the third hot blocking path: a Cond
// Wait/Broadcast cycle between two processes must not allocate in steady
// state (the waiters slice reuses its backing array).
func TestCondWakeZeroAlloc(t *testing.T) {
	per := perCycleAllocs(t, 64, 8256, func(cycles int) {
		e := New()
		var c Cond
		turn := 0
		evenTurn := func() bool { return turn%2 == 0 }
		oddTurn := func() bool { return turn%2 == 1 }
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < cycles; i++ {
				c.WaitUntil(p, "a", evenTurn)
				turn++
				c.Broadcast()
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < cycles; i++ {
				c.WaitUntil(p, "b", oddTurn)
				turn++
				c.Broadcast()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if per > 0.001 {
		t.Errorf("cond wait/broadcast allocates %.4f per cycle, want 0", per)
	}
}

// TestCondSignalWakesOldest arranges waiters whose wait order differs from
// their spawn order and signals one at a time: each Signal must wake the
// waiter that has been parked longest.
func TestCondSignalWakesOldest(t *testing.T) {
	e := New()
	var c Cond
	var woke []string
	// Spawn in reverse so spawn order cannot masquerade as wait order:
	// w0 begins waiting at t=10, w1 at 20, w2 at 30.
	for i := 2; i >= 0; i-- {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(10 * (i + 1)))
			c.Wait(p, "turn")
			woke = append(woke, p.Name())
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			c.Signal()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(woke, " "); got != "w0 w1 w2" {
		t.Fatalf("signal wake order = %q, want oldest-first \"w0 w1 w2\"", got)
	}
}

// TestCondBroadcastWakesInWaitOrder is the Broadcast analogue: waiters
// resumed by one Broadcast run in the order they began waiting, regardless
// of spawn order.
func TestCondBroadcastWakesInWaitOrder(t *testing.T) {
	e := New()
	var c Cond
	var woke []string
	for i := 3; i >= 0; i-- {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(10 * (i + 1)))
			c.Wait(p, "gate")
			woke = append(woke, p.Name())
		})
	}
	e.Spawn("opener", func(p *Proc) {
		p.Sleep(100)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(woke, " "); got != "w0 w1 w2 w3" {
		t.Fatalf("broadcast wake order = %q, want wait order \"w0 w1 w2 w3\"", got)
	}
}

// TestCondWaitUntilRechecks drives spurious wakeups at a WaitUntil waiter:
// Broadcasts while the predicate is false must re-park it (the predicate
// runs once per wake plus the initial check), and it may only return once
// the predicate holds.
func TestCondWaitUntilRechecks(t *testing.T) {
	e := New()
	var c Cond
	ready := false
	checks := 0
	var doneAt Time = -1
	e.Spawn("waiter", func(p *Proc) {
		c.WaitUntil(p, "ready", func() bool { checks++; return ready })
		doneAt = p.Now()
	})
	e.Spawn("noise", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			c.Broadcast() // spurious: predicate still false
		}
		p.Sleep(10)
		ready = true
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 40 {
		t.Fatalf("waiter returned at %v, want 40 (only after the predicate held)", doneAt)
	}
	if checks != 5 {
		t.Fatalf("predicate ran %d times, want 5 (initial + 3 spurious + final)", checks)
	}
}

// TestTimerCompactionReclaimsStopped stops enough timers to cross the lazy
// compaction threshold and requires: compaction actually ran, the stopped
// entries are gone from the queue, and neither the clock nor the dispatch
// count shows any trace of the cancelled timers.
func TestTimerCompactionReclaimsStopped(t *testing.T) {
	e := New()
	const n = 400
	timers := make([]*Timer, 0, n)
	fired := 0
	for i := 0; i < n; i++ {
		timers = append(timers, e.AfterTimer(Time(1000+i), func() { fired++ }))
	}
	e.Schedule(5, func() {
		for _, tm := range timers[:n-1] {
			tm.Stop()
		}
	})
	before := e.Dispatched()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Compactions() == 0 {
		t.Error("stopping most of the queue never triggered a compaction")
	}
	if e.StoppedPending() != 0 {
		t.Errorf("StoppedPending = %d after run, want 0", e.StoppedPending())
	}
	if fired != 1 {
		t.Fatalf("%d timers fired, want only the surviving one", fired)
	}
	if e.Now() != Time(1000+n-1) {
		t.Errorf("clock = %v, want %d (stopped timers must not move the clock)", e.Now(), 1000+n-1)
	}
	if got := e.Dispatched() - before; got != 2 {
		t.Errorf("dispatched %d events, want 2 (the stopper and the survivor)", got)
	}
}

// TestTimerCompactionMidRun verifies compaction during dispatch leaves the
// queue consistent: events scheduled around a compaction still run in exact
// (time, seq) order.
func TestTimerCompactionMidRun(t *testing.T) {
	e := New()
	var got []int
	timers := make([]*Timer, 0, 256)
	for i := 0; i < 256; i++ {
		timers = append(timers, e.AfterTimer(Time(5000+i), func() { t.Error("stopped timer fired") }))
	}
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(100*(i+1)), func() { got = append(got, i) })
	}
	e.Schedule(50, func() {
		for _, tm := range timers {
			tm.Stop()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Compactions() == 0 {
		t.Fatal("no compaction happened mid-run")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("post-compaction order broken: got %v", got)
		}
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", e.Pending())
	}
}

// TestStopAfterFireIsNoOp: stopping a timer that already fired must not
// corrupt the stopped-timer accounting that drives compaction.
func TestStopAfterFireIsNoOp(t *testing.T) {
	e := New()
	tm := e.AfterTimer(10, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tm.Stop()
	tm.Stop()
	if e.StoppedPending() != 0 {
		t.Errorf("StoppedPending = %d after stopping a fired timer, want 0", e.StoppedPending())
	}
}

// TestTimerArmStopZeroAlloc pins the reusable-timer redesign: a steady-state
// Arm/Stop cycle on a long-lived timer (the per-rank MPI watchdog pattern)
// must not allocate — the generation stamp rides in the event record and
// compaction reclaims the stale entries in place.
func TestTimerArmStopZeroAlloc(t *testing.T) {
	per := perCycleAllocs(t, 64, 8256, func(cycles int) {
		e := New()
		tm := e.NewTimer(func() {})
		for i := 0; i < cycles; i++ {
			tm.Arm(Time(1 << 40))
			tm.Stop()
		}
	})
	if per > 0.001 {
		t.Errorf("timer arm/stop allocates %.4f per cycle, want 0", per)
	}
}

// TestTimerRearmSupersedes re-arms an armed timer: only the newest deadline
// may fire, the superseded event must be dropped without moving the clock
// past its own expiry first, and the stale accounting must come back to
// zero.
func TestTimerRearmSupersedes(t *testing.T) {
	e := New()
	var fired []Time
	tm := e.NewTimer(nil)
	tm.fn = func() { fired = append(fired, e.Now()) }
	tm.Arm(100)
	tm.Arm(200)
	if e.StoppedPending() != 1 {
		t.Errorf("StoppedPending = %d after re-arm, want 1 (the superseded event)", e.StoppedPending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 200 {
		t.Fatalf("fired at %v, want exactly once at 200", fired)
	}
	if e.StoppedPending() != 0 {
		t.Errorf("StoppedPending = %d after run, want 0", e.StoppedPending())
	}
}

// TestTimerReuseAcrossCycles drives one timer through fire, stop and
// re-arm cycles: each cycle must behave like a fresh timer while sharing
// the single allocation.
func TestTimerReuseAcrossCycles(t *testing.T) {
	e := New()
	count := 0
	tm := e.NewTimer(func() { count++ })
	tm.Arm(10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 || e.Now() != 10 {
		t.Fatalf("first cycle: count=%d now=%v, want 1 at 10", count, e.Now())
	}
	tm.Arm(5)
	tm.Stop()
	tm.Arm(7)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 || e.Now() != 17 {
		t.Fatalf("second cycle: count=%d now=%v, want 2 at 17", count, e.Now())
	}
	if e.StoppedPending() != 0 {
		t.Errorf("StoppedPending = %d after reuse cycles, want 0", e.StoppedPending())
	}
}
