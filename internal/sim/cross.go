package sim

// Cross-engine scheduling helpers for models whose state spans the node
// domains of a Sharded group. They degrade to plain same-engine scheduling
// when source and destination coincide (same shard, or a serial run whose
// model uses the domain-split code path), so a caller can use one code path
// at every shard count — the transport differs, never the timing.

// Group returns the Sharded group this engine belongs to, nil for a plain
// serial engine.
func (e *Engine) Group() *Sharded { return e.owner }

// ScheduleOn schedules fn after delay on dst's shard. On the engine's own
// shard (or outside a group) it is exactly Schedule; across shards it is a
// SendTo, so delay must be at least the edge lookahead.
func (e *Engine) ScheduleOn(dst *Engine, delay Time, fn func()) {
	if dst == e || e.owner == nil {
		e.Schedule(delay, fn)
		return
	}
	e.SendTo(dst.shard, delay, funcHandler(fn), 0, 0)
}

// MaxNow returns the latest current time across the group's engines — the
// end-of-run clock of a world whose ranks finished on different shards. For
// a plain engine it is just Now.
func (e *Engine) MaxNow() Time {
	if e.owner == nil {
		return e.now
	}
	t := e.now
	for _, s := range e.owner.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}
