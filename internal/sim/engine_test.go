package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mpinet/internal/units"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of order: got[%d] = %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.Schedule(10, func() {
		trace = append(trace, "a")
		e.Schedule(0, func() { trace = append(trace, "b") })
		e.Schedule(5, func() { trace = append(trace, "c") })
	})
	e.Schedule(12, func() { trace = append(trace, "d") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a b d c"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	if err := e.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (events at exactly the horizon run)", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := New()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * units.Microsecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 100*units.Microsecond {
		t.Fatalf("woke at %v, want 100us", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		e := New()
		var trace []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					trace = append(trace, fmt.Sprintf("%s.%d@%v", p.Name(), j, p.Now()))
					p.Sleep(units.Time(10 * (j + 1)))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(trace, ",")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestCondWaitBroadcast(t *testing.T) {
	e := New()
	var c Cond
	ready := false
	order := []string{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		e.Spawn(name, func(p *Proc) {
			c.WaitUntil(p, "ready", func() bool { return ready })
			order = append(order, p.Name())
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Sleep(50)
		ready = true
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("only %d waiters woke: %v", len(order), order)
	}
	for i, name := range []string{"w0", "w1", "w2"} {
		if order[i] != name {
			t.Fatalf("wake order = %v, want wait order", order)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := New()
	var c Cond
	woke := 0
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p, "signal")
			woke++
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Sleep(10)
		c.Signal()
	})
	err := e.Run()
	if woke != 1 {
		t.Fatalf("woke = %d, want 1", woke)
	}
	if err == nil {
		t.Fatal("expected deadlock error for the unwoken waiter")
	}
}

func TestDeadlockReported(t *testing.T) {
	e := New()
	var c Cond
	e.Spawn("stuck", func(p *Proc) { c.Wait(p, "never") })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 || !strings.Contains(de.Procs[0], "stuck") || !strings.Contains(de.Procs[0], "never") {
		t.Fatalf("deadlock report %v missing proc/reason", de.Procs)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New()
	e.Spawn("bomb", func(p *Proc) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("engine did not re-panic")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "bomb") || !strings.Contains(s, "boom") {
			t.Fatalf("panic %q missing context", s)
		}
	}()
	_ = e.Run()
}

func TestYieldLetsSameInstantEventsRun(t *testing.T) {
	e := New()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	// Scheduled after the spawn's starter event, so it runs between a's
	// yield and resume.
	e.Schedule(0, func() { trace = append(trace, "ev") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(trace, " ")
	if got != "a1 ev a2" {
		t.Fatalf("trace = %q, want 'a1 ev a2'", got)
	}
}

func TestStationFIFO(t *testing.T) {
	s := NewStation("bus")
	st, en := s.Use(100, 50)
	if st != 100 || en != 150 {
		t.Fatalf("first job [%v,%v), want [100,150)", st, en)
	}
	st, en = s.Use(120, 30) // arrives while busy
	if st != 150 || en != 180 {
		t.Fatalf("queued job [%v,%v), want [150,180)", st, en)
	}
	st, en = s.Use(500, 10) // arrives idle
	if st != 500 || en != 510 {
		t.Fatalf("idle job [%v,%v), want [500,510)", st, en)
	}
	if s.Jobs() != 3 || s.BusyTime() != 90 {
		t.Fatalf("jobs=%d busy=%v, want 3/90", s.Jobs(), s.BusyTime())
	}
}

func TestStationMonotonicSubmission(t *testing.T) {
	s := NewStation("bus")
	s.Use(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order submission did not panic")
		}
	}()
	s.Use(50, 10)
}

func TestPipeRate(t *testing.T) {
	p := NewPipe("link", units.MBps(100), 0, 0)
	_, end := p.Send(0, 100*units.MB)
	if end != units.Second {
		t.Fatalf("100MB at 100MB/s took %v, want 1s", end)
	}
}

func TestPipeMinBytesAndOverhead(t *testing.T) {
	p := NewPipe("link", units.MBps(1), 7*units.Nanosecond, 64)
	_, end := p.Send(0, 1) // billed as 64 bytes + 7ns
	want := 7*units.Nanosecond + units.MBps(1).TimeFor(64)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

// Property: station occupancy intervals never overlap and respect FIFO, for
// arbitrary monotone arrivals.
func TestStationNoOverlapProperty(t *testing.T) {
	f := func(gaps []uint16, durs []uint16) bool {
		n := len(gaps)
		if len(durs) < n {
			n = len(durs)
		}
		s := NewStation("x")
		now := Time(0)
		prevEnd := Time(-1)
		for i := 0; i < n; i++ {
			now += Time(gaps[i])
			st, en := s.Use(now, Time(durs[i]))
			if st < now || en != st+Time(durs[i]) || st < prevEnd {
				return false
			}
			prevEnd = en
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG determinism — same seed, same stream; Perm is a permutation.
func TestRNGProperties(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		m := int(n%32) + 1
		perm := NewRNG(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range perm {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestTimerFires(t *testing.T) {
	e := New()
	fired := false
	e.AfterTimer(10, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestStoppedTimerLeavesNoTrace(t *testing.T) {
	e := New()
	tm := e.AfterTimer(1000, func() { t.Fatal("stopped timer fired") })
	e.Schedule(5, func() { tm.Stop() })
	before := e.Dispatched()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The clock must stop at the last real event, not drag to the timer's
	// expiry, and the discarded timer must not count as a dispatch.
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5 (stopped timer advanced the clock)", e.Now())
	}
	if got := e.Dispatched() - before; got != 1 {
		t.Fatalf("dispatched %d events, want 1", got)
	}
}

func TestStoppedTimerDoesNotMaskDeadlock(t *testing.T) {
	e := New()
	e.Spawn("stuck", func(p *Proc) {
		var c Cond
		tm := e.AfterTimer(50, func() {})
		tm.Stop()
		c.Wait(p, "forever")
	})
	err := e.Run()
	var dl *DeadlockError
	if !errorsAs(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

func errorsAs(err error, target **DeadlockError) bool {
	d, ok := err.(*DeadlockError)
	if ok {
		*target = d
	}
	return ok
}
