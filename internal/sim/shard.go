// Conservative parallel discrete-event execution: a Sharded group runs N
// engines (shards) in lockstep windows bounded by cross-shard lookahead.
//
// The synchronization protocol is the classic bounded-time-window scheme
// (YAWNS-style), refined with per-shard window caps. Each round the
// coordinator reads every shard's next event time t_j and gives shard i the
// half-open window [t_i, cap_i), where
//
//	cap_i = min over populated shards j != i of (t_j + D(j, i))
//
// and D is the all-pairs minimum lookahead distance over the edge graph
// (built by one Floyd-Warshall pass per Run). D(j, i) bounds how soon
// anything shard j dispatches can causally reach shard i along any relay
// chain, because cross-shard messages are buffered until the window
// barrier: within a window a shard only consumes events it already held, so
// a chain j -> k -> i spans at least one barrier per hop and accumulates at
// least the lookahead of every edge it rides. Messages a shard sends
// mid-window re-bound its own cap (SendTo shrinks it to the send's arrival
// plus the distance back), which covers echoes through shards that looked
// empty at planning time. Shards whose next event lies at or beyond their
// cap skip the window entirely — no worker wake, no barrier participation —
// so loosely coupled shard pairs coalesce many tight global windows into
// few wide per-shard ones.
//
// At the window barrier the buffered cross-shard messages are committed in
// (at, source shard, source sequence) order; the destination stamps its own
// fresh sequence numbers in that order, so the merged event order is a pure
// function of the model and the byte-identical replay contract holds at
// every shard count.
//
// When only one shard has pending events there is nothing to synchronize
// with: the solo shard runs an unbounded window, dynamically re-bounded by
// its first cross-shard send (the earliest possible causal echo is
// sendAt + L). A world whose traffic all lives on one shard therefore runs
// in essentially one window — the overhead of -shards N on an unpartitioned
// model is a handful of comparisons, not a window per lookahead quantum.
//
// Determinism rules for this file (enforced by scripts/check.sh): no wall
// clock, no global mutable counters — every counter lives on a shard or on
// the group and is merged deterministically at barriers.
package sim

import (
	"cmp"
	"fmt"
	"slices"

	"mpinet/internal/metrics"
)

// maxTime is the sentinel window cap meaning "unbounded".
const maxTime = Time(1) << 62

// xmsg is one buffered cross-shard message: a typed event plus the
// (source shard, source sequence) pair that fixes its commit position.
type xmsg struct {
	at     Time
	src    int
	srcSeq uint64
	dst    int
	a, b   int64
	h      Handler
}

// Sharded is a group of engines advanced together by a conservative
// window scheduler. Construct with NewSharded, place model state on the
// shards (Shard(i)), wire cross-shard edges with SendTo, and drive the
// whole group with Run/RunUntil — either on the group or on any member
// engine (member Run delegates here, so code written against one Engine
// works unchanged as shard 0 of a group).
//
// Like Engine, a Sharded group is single-client: one Run at a time, and
// all model mutation happens on engine goroutines the scheduler controls.
type Sharded struct {
	shards []*Engine
	la     Time   // default lookahead for every cross-shard edge
	edges  []Time // per-edge overrides, len n*n, -1 = use default
	outbox [][]xmsg
	inbox  []xmsg // commit scratch, reused across windows

	// dmat is the all-pairs minimum lookahead distance (len n*n, row-major
	// [src][dst]), rebuilt by each Run from the edge configuration; nexts and
	// caps are the per-window planning scratch (shard → next event time /
	// window cap), reused across windows.
	dmat  []Time
	nexts []Time
	caps  []Time

	workers []shardWorker
	await   []int // worker shard indices launched this window (scratch)
	windows uint64
	running bool
}

// shardWorker is one shard's persistent window-dispatch goroutine. The
// coordinator writes cap/la, signals start, and reads fail after done — the
// channel operations order every access, so no field needs atomics.
type shardWorker struct {
	start chan windowBounds
	done  chan interface{} // the window's captured failure, nil if none
}

type windowBounds struct {
	cap Time
}

// NewSharded returns a group of n engines with the given default lookahead
// for every cross-shard edge (override per edge with SetEdgeLookahead).
// n == 1 is the serial fast path: no coordinator, no barrier, the plain
// engine loop.
func NewSharded(n int, lookahead Time) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", n))
	}
	s := &Sharded{
		shards: make([]*Engine, n),
		la:     lookahead,
		edges:  make([]Time, n*n),
		outbox: make([][]xmsg, n),
	}
	for i := range s.edges {
		s.edges[i] = -1
	}
	for i := 0; i < n; i++ {
		e := New()
		e.shard = i
		if n > 1 {
			e.owner = s
		}
		s.shards[i] = e
	}
	return s
}

// Shards reports the group's shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns member engine i.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Windows reports how many synchronization windows the last/current run has
// executed — the scheduler-overhead measure (1 for a fully solo run).
func (s *Sharded) Windows() uint64 { return s.windows }

// Dispatched reports the total events dispatched across all shards.
func (s *Sharded) Dispatched() uint64 {
	var n uint64
	for _, e := range s.shards {
		n += e.dispatched
	}
	return n
}

// SetLookahead sets the default lookahead for every cross-shard edge. The
// effective minimum must be positive when more than one shard holds events;
// Run fails typed (*ZeroLookaheadError) otherwise.
func (s *Sharded) SetLookahead(la Time) { s.la = la }

// SetEdgeLookahead overrides the lookahead for the directed edge src→dst.
func (s *Sharded) SetEdgeLookahead(src, dst int, la Time) {
	s.edges[src*len(s.shards)+dst] = la
}

// edgeLookahead is the effective lookahead for src→dst.
func (s *Sharded) edgeLookahead(src, dst int) Time {
	if v := s.edges[src*len(s.shards)+dst]; v >= 0 {
		return v
	}
	return s.la
}

// minLookahead is the smallest effective lookahead over all cross-shard
// edges, plus the edge that attains it.
func (s *Sharded) minLookahead() (la Time, src, dst int) {
	n := len(s.shards)
	la, src, dst = maxTime, 0, 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if v := s.edgeLookahead(i, j); v < la {
				la, src, dst = v, i, j
			}
		}
	}
	return la, src, dst
}

// Run advances the whole group until every shard's queue is empty. Blocked
// processes remaining on any shard yield an aggregate DeadlockError; a
// process panic on any shard re-panics the lowest-numbered failing shard's
// value (deterministic even when several shards fail in one window).
func (s *Sharded) Run() error { return s.RunUntil(-1) }

// RunUntil is Run with a horizon, with Engine.RunUntil's contract lifted to
// the group: events at exactly limit still run, every shard's clock lands on
// limit, and blocked processes are not an error when the horizon was hit.
func (s *Sharded) RunUntil(limit Time) error {
	n := len(s.shards)
	if n == 1 {
		return s.shards[0].runSerial(limit)
	}
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	s.windows = 0
	start := s.Dispatched()
	defer func() {
		s.running = false
		addTotalDispatched(s.Dispatched() - start)
	}()

	// A zero (or negative) lookahead edge would make the safe window empty:
	// the scheduler could never advance while two shards hold events. Fail
	// typed up front instead of spinning.
	la, lsrc, ldst := s.minLookahead()
	if la <= 0 {
		return &ZeroLookaheadError{Src: lsrc, Dst: ldst, Lookahead: la}
	}
	s.buildDistances()

	s.startWorkers()
	defer s.stopWorkers()

	for {
		// Window planning: T is the earliest pending event group-wide;
		// active counts shards that hold any events at all.
		T := maxTime
		active := 0
		for i, e := range s.shards {
			t, ok := e.nextEventAt()
			if !ok {
				s.nexts[i] = maxTime
				continue
			}
			s.nexts[i] = t
			active++
			if t < T {
				T = t
			}
		}
		if T == maxTime {
			break // drained
		}
		if limit >= 0 && T > limit {
			for _, e := range s.shards {
				e.now = limit
			}
			return nil
		}
		// Per-shard caps: each populated shard may run to the earliest
		// instant another populated shard could causally touch it. The shard
		// holding T always has t_i < cap_i (distances are positive), so every
		// window makes progress; shards capped at or below their next event
		// skip the window entirely.
		n := len(s.shards)
		for i := range s.caps {
			if s.nexts[i] == maxTime {
				s.caps[i] = 0
				continue
			}
			c := maxTime
			if active > 1 {
				for j := 0; j < n; j++ {
					if j == i || s.nexts[j] == maxTime {
						continue
					}
					if v := s.nexts[j] + s.dmat[j*n+i]; v < c {
						c = v
					}
				}
			}
			if limit >= 0 && (c < 0 || c > limit) {
				c = limit + 1 // events at exactly limit run; cap is exclusive
			}
			s.caps[i] = c
		}
		s.windows++
		s.runWindow()
		s.commit()
	}

	// Drained: aggregate the per-shard deadlock views exactly as the serial
	// engine reports its own (names sorted, At = the furthest clock).
	var at Time
	var names []string
	for _, e := range s.shards {
		if e.now > at {
			at = e.now
		}
		for p := range e.procs {
			names = append(names, fmt.Sprintf("%s (blocked: %s)", p.name, p.blockedOn))
		}
	}
	if len(names) > 0 {
		slices.Sort(names)
		return &DeadlockError{At: at, Procs: names}
	}
	return nil
}

// buildDistances computes the all-pairs minimum lookahead distance over the
// cross-shard edge graph (one Floyd-Warshall pass — shard counts are small)
// and hands every engine its echo-distance column. dmat[j*n+i] bounds how
// soon anything shard j does can causally reach shard i along any relay
// chain: every hop of such a chain crosses a window barrier and pays its
// edge's lookahead. Rebuilt per Run so SetLookahead/SetEdgeLookahead between
// runs take effect.
func (s *Sharded) buildDistances() {
	n := len(s.shards)
	if s.dmat == nil {
		s.dmat = make([]Time, n*n)
		s.nexts = make([]Time, n)
		s.caps = make([]Time, n)
	}
	d := s.dmat
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				d[i*n+j] = 0
			} else {
				d[i*n+j] = s.edgeLookahead(i, j)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			row := d[k*n : k*n+n]
			for j, dkj := range row {
				if v := dik + dkj; v < d[i*n+j] {
					d[i*n+j] = v
				}
			}
		}
	}
	for i, e := range s.shards {
		if e.echoDist == nil {
			e.echoDist = make([]Time, n)
		}
		for dst := 0; dst < n; dst++ {
			e.echoDist[dst] = d[dst*n+i]
		}
	}
}

// runWindow dispatches one window on every shard whose next event lies
// before its cap: the lowest-numbered participant inline on the coordinator
// goroutine, the rest on their persistent workers. Failures are collected
// and the lowest-numbered shard's is re-panicked, matching the serial
// engine's panic-out-of-Run behavior deterministically.
func (s *Sharded) runWindow() {
	inline := -1
	s.await = s.await[:0]
	for i := range s.shards {
		if s.nexts[i] >= s.caps[i] {
			continue
		}
		if inline < 0 {
			inline = i
			continue
		}
		s.workers[i].start <- windowBounds{cap: s.caps[i]}
		s.await = append(s.await, i)
	}
	failShard := -1
	var failure interface{}
	if f := s.shards[inline].runWindow(s.caps[inline]); f != nil {
		failShard, failure = inline, f
	}
	for _, i := range s.await {
		if f := <-s.workers[i].done; f != nil && (failShard < 0 || i < failShard) {
			failShard, failure = i, f
		}
	}
	if failure != nil {
		panic(failure)
	}
}

// commit drains every outbox and delivers the messages to their destination
// shards in (at, src, srcSeq) order — a total order fixed by the model, so
// the destination sequence numbers (stamped here by enqueue) are identical
// no matter how the window's goroutines interleaved.
func (s *Sharded) commit() {
	s.inbox = s.inbox[:0]
	for i := range s.outbox {
		s.inbox = append(s.inbox, s.outbox[i]...)
		s.outbox[i] = s.outbox[i][:0]
	}
	if len(s.inbox) == 0 {
		return
	}
	// slices.SortFunc with a package-level comparator: unlike a sort.Slice
	// closure this allocates nothing, and the commit path runs once per
	// window edge on the coordinator's critical path.
	slices.SortFunc(s.inbox, cmpXmsg)
	for i := range s.inbox {
		m := &s.inbox[i]
		d := s.shards[m.dst]
		if m.at < d.now {
			// Lookahead promised this could not happen; a violation here is
			// a scheduler bug, not a model bug.
			panic(&CausalityError{Src: m.src, Dst: m.dst, At: m.at, Now: d.now})
		}
		d.enqueue(event{at: m.at, a: m.a, b: m.b, h: m.h})
		*m = xmsg{} // release the handler reference
	}
}

// cmpXmsg is commit's total order: (at, source shard, source sequence) — a
// pure function of the model, independent of goroutine interleaving.
func cmpXmsg(a, b xmsg) int {
	if c := cmp.Compare(a.at, b.at); c != 0 {
		return c
	}
	if c := cmp.Compare(a.src, b.src); c != 0 {
		return c
	}
	return cmp.Compare(a.srcSeq, b.srcSeq)
}

// startWorkers launches one persistent dispatch goroutine per shard. A
// goroutine per window would dominate the per-window cost; persistent
// workers make a window two channel operations per participant.
func (s *Sharded) startWorkers() {
	s.workers = make([]shardWorker, len(s.shards))
	for i := range s.workers {
		s.workers[i] = shardWorker{
			start: make(chan windowBounds),
			done:  make(chan interface{}),
		}
		go func(e *Engine, w shardWorker) {
			for b := range w.start {
				w.done <- e.runWindow(b.cap)
			}
		}(s.shards[i], s.workers[i])
	}
}

// stopWorkers shuts the persistent goroutines down.
func (s *Sharded) stopWorkers() {
	for i := range s.workers {
		close(s.workers[i].start)
	}
	s.workers = nil
}

// Instrument registers the group-wide engine health metrics in m — the same
// probe set a serial engine registers, aggregated across shards (counts and
// times sum, the queue high-water takes the max), so a single-domain world
// snapshots byte-identically at any shard count.
func (s *Sharded) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	m.ProbeCount("engine/events_dispatched", func() int64 { return int64(s.Dispatched()) })
	m.ProbeGauge("engine/queue_high_water", func() int64 {
		var hw int
		for _, e := range s.shards {
			if e.qhw > hw {
				hw = e.qhw
			}
		}
		return int64(hw)
	})
	m.ProbeCount("engine/timer_compactions", func() int64 {
		var n uint64
		for _, e := range s.shards {
			n += e.compactions
		}
		return int64(n)
	})
	m.ProbeTime("engine/blocked_time", func() Time {
		var t Time
		for _, e := range s.shards {
			t += e.blocked
		}
		return t
	})
	m.ProbeTime("engine/slept_time", func() Time {
		var t Time
		for _, e := range s.shards {
			t += e.slept
		}
		return t
	})
}

// Partition is a node/switch → shard placement for an N-node world: nodes
// are split into contiguous blocks (locality: neighboring ranks share a
// shard) and the switch domain — the crossing point of every cross-node
// message — anchors shard 0 with the coordinator's inline dispatch.
type Partition struct {
	Shards      int
	NodeShard   []int // node index → shard
	SwitchShard int
}

// PartitionNodes computes the contiguous-block placement of nodes onto
// shards. Shard counts above the node count leave trailing shards empty;
// they cost nothing (an empty shard never participates in a window).
func PartitionNodes(nodes, shards int) Partition {
	if shards < 1 {
		shards = 1
	}
	p := Partition{Shards: shards, NodeShard: make([]int, nodes)}
	for i := range p.NodeShard {
		p.NodeShard[i] = i * shards / nodes
	}
	return p
}

// ZeroLookaheadError is returned by Run when the group's minimum cross-shard
// lookahead is not positive: the conservative window would be empty and the
// scheduler could never advance two populated shards. It names one offending
// edge. This is the typed failure the deadlock-watchdog tests demand —
// misconfiguration must fail fast, never hang.
type ZeroLookaheadError struct {
	Src, Dst  int
	Lookahead Time
}

func (e *ZeroLookaheadError) Error() string {
	return fmt.Sprintf("sim: cross-shard lookahead %v on edge %d->%d; conservative windows need a positive minimum lookahead",
		e.Lookahead, e.Src, e.Dst)
}

// LookaheadError is the panic value of a SendTo whose delay undercuts the
// configured lookahead of its edge — the model claimed a cross-shard hop
// faster than the latency floor the scheduler was promised.
type LookaheadError struct {
	Src, Dst         int
	Delay, Lookahead Time
}

func (e *LookaheadError) Error() string {
	return fmt.Sprintf("sim: SendTo %d->%d with delay %v below the edge lookahead %v",
		e.Src, e.Dst, e.Delay, e.Lookahead)
}

// CausalityError is the panic value of a window commit that would deliver a
// message into a destination shard's past. The lookahead discipline makes
// this unreachable; reaching it means the scheduler itself is broken, so it
// is an invariant check, not a recoverable condition.
type CausalityError struct {
	Src, Dst int
	At, Now  Time
}

func (e *CausalityError) Error() string {
	return fmt.Sprintf("sim: cross-shard message %d->%d at %v would land in the destination's past (now %v)",
		e.Src, e.Dst, e.At, e.Now)
}
