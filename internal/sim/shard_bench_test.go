package sim

import (
	"fmt"
	"testing"

	"mpinet/internal/units"
)

// BenchmarkShardScaling measures the conservative scheduler's throughput on
// a genuinely partitioned workload: 8 node domains plus the switch domain,
// cross-domain hops at exactly the lookahead, and a chain of local compute
// events between receive and forward (the window's parallel grain). The
// shards=1 case is the serial fast path — the overhead baseline. Besides
// events/s, each shard count reports its window count (the scheduler's
// synchronization overhead: fewer windows per run means wider, better
// coalesced dispatch grains) and allocs/op (the commit path and planning
// scratch are pooled; steady-state windows must not allocate per window).
// scripts/bench.sh stamps all three per shard count into BENCH_engine.json's
// shard_scaling block. Cross-shard-count throughput ratios are hardware
// statements, not model statements — on a single-CPU host they measure
// scheduler overhead — so bench.sh records the raw per-count numbers and no
// speedup ratio.
func BenchmarkShardScaling(b *testing.B) {
	const (
		nodes  = 8
		ops    = 96
		rounds = 400
		hop    = 100 * units.Nanosecond
		step   = units.Nanosecond
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events, windows uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nt := buildShardNet(shards, nodes, ops, rounds, hop, step)
				if err := nt.s.Run(); err != nil {
					b.Fatal(err)
				}
				events += nt.s.Dispatched()
				windows += nt.s.Windows()
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
		})
	}
}
