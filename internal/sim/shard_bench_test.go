package sim

import (
	"fmt"
	"testing"

	"mpinet/internal/units"
)

// BenchmarkShardScaling measures the conservative scheduler's throughput on
// a genuinely partitioned workload: 8 node domains plus the switch domain,
// cross-domain hops at exactly the lookahead, and a chain of local compute
// events between receive and forward (the window's parallel grain). The
// shards=1 case is the serial fast path — the overhead baseline — and
// scripts/bench.sh stamps the events/sec of every shard count into
// BENCH_engine.json's shard_scaling block. On a single-CPU host the higher
// shard counts measure scheduler overhead, not speedup; bench.sh reports
// the 4-shard speedup as null with a reason there.
func BenchmarkShardScaling(b *testing.B) {
	const (
		nodes  = 8
		ops    = 96
		rounds = 400
		hop    = 100 * units.Nanosecond
		step   = units.Nanosecond
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nt := buildShardNet(shards, nodes, ops, rounds, hop, step)
				if err := nt.s.Run(); err != nil {
					b.Fatal(err)
				}
				events += nt.s.Dispatched()
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}
