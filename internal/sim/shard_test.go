package sim

import (
	"errors"
	"testing"

	"mpinet/internal/units"
)

const testHop = 100 * units.Nanosecond

// runNet runs the workload to completion and returns the group.
func runNet(t *testing.T, shards, nodes, ops, rounds int) *shardNet {
	t.Helper()
	nt := buildShardNet(shards, nodes, ops, rounds, testHop, units.Nanosecond)
	if err := nt.s.Run(); err != nil {
		t.Fatalf("shards=%d: Run: %v", shards, err)
	}
	return nt
}

// TestShardPartitionInvariance pins the conservative scheduler's core
// contract: every observable of the workload — per-node arrival counts,
// per-node checksums that fold arrival timestamps in, switch forwards and
// the total dispatch count — is identical at every shard count.
func TestShardPartitionInvariance(t *testing.T) {
	const nodes, ops, rounds = 8, 16, 40
	base := runNet(t, 1, nodes, ops, rounds)
	if base.nodes[0].count == 0 {
		t.Fatal("workload produced no arrivals")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		nt := runNet(t, shards, nodes, ops, rounds)
		for i, n := range nt.nodes {
			if n.count != base.nodes[i].count || n.sum != base.nodes[i].sum {
				t.Errorf("shards=%d node %d: (count,sum)=(%d,%#x), want (%d,%#x)",
					shards, i, n.count, n.sum, base.nodes[i].count, base.nodes[i].sum)
			}
		}
		if nt.sw.forwards != base.sw.forwards {
			t.Errorf("shards=%d: switch forwards %d, want %d", shards, nt.sw.forwards, base.sw.forwards)
		}
		if got, want := nt.s.Dispatched(), base.s.Dispatched(); got != want {
			t.Errorf("shards=%d: dispatched %d, want %d", shards, got, want)
		}
	}
}

// TestShardDeterministicReplay: two identical runs at the same shard count
// agree on every observable including the window count.
func TestShardDeterministicReplay(t *testing.T) {
	a := runNet(t, 4, 8, 8, 24)
	b := runNet(t, 4, 8, 8, 24)
	if a.s.Windows() != b.s.Windows() {
		t.Errorf("windows %d vs %d across identical runs", a.s.Windows(), b.s.Windows())
	}
	for i := range a.nodes {
		if a.nodes[i].sum != b.nodes[i].sum {
			t.Errorf("node %d checksum differs across identical runs", i)
		}
	}
	if a.s.Dispatched() != b.s.Dispatched() {
		t.Errorf("dispatched %d vs %d", a.s.Dispatched(), b.s.Dispatched())
	}
}

// TestMemberRunDrivesGroup: Run on any member engine advances the whole
// group — the delegation that lets mpi.World drive a sharded world through
// the one engine it holds.
func TestMemberRunDrivesGroup(t *testing.T) {
	nt := buildShardNet(4, 8, 4, 10, testHop, units.Nanosecond)
	if err := nt.nodes[len(nt.nodes)-1].eng.Run(); err != nil {
		t.Fatalf("member Run: %v", err)
	}
	for i, n := range nt.nodes {
		if n.count == 0 {
			t.Errorf("node %d on shard %d saw no arrivals", i, n.shard)
		}
	}
}

// TestZeroLookaheadFailsTyped: a group whose minimum cross-shard lookahead
// is zero must fail fast with *ZeroLookaheadError — never spin on empty
// windows. Both the default and a per-edge override are checked.
func TestZeroLookaheadFailsTyped(t *testing.T) {
	s := NewSharded(2, 0)
	s.Shard(0).Schedule(0, func() {})
	s.Shard(1).Schedule(0, func() {})
	var zle *ZeroLookaheadError
	if err := s.Run(); !errors.As(err, &zle) {
		t.Fatalf("Run with zero default lookahead: %v, want *ZeroLookaheadError", err)
	}

	s = NewSharded(3, testHop)
	s.SetEdgeLookahead(2, 1, 0)
	s.Shard(0).Schedule(0, func() {})
	if err := s.Run(); !errors.As(err, &zle) {
		t.Fatalf("Run with one zero edge: %v, want *ZeroLookaheadError", err)
	}
	if zle.Src != 2 || zle.Dst != 1 {
		t.Errorf("offending edge %d->%d, want 2->1", zle.Src, zle.Dst)
	}
}

// TestSendToLookaheadViolationPanicsTyped: a cross-shard send whose delay
// undercuts its edge's lookahead is a model bug and panics *LookaheadError.
func TestSendToLookaheadViolationPanicsTyped(t *testing.T) {
	s := NewSharded(2, testHop)
	sink := funcHandler(func() {})
	s.Shard(0).Schedule(0, func() {
		defer func() {
			var le *LookaheadError
			if r := recover(); r == nil {
				t.Error("short SendTo did not panic")
			} else if err, ok := r.(error); !ok || !errors.As(err, &le) {
				t.Errorf("short SendTo panicked %v, want *LookaheadError", r)
			} else if le.Delay != testHop/2 || le.Lookahead != testHop {
				t.Errorf("LookaheadError = %+v", le)
			}
		}()
		s.Shard(0).SendTo(1, testHop/2, sink, 0, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSendToSameShardDegradesToCall: dst == own shard needs no lookahead.
func TestSendToSameShardDegradesToCall(t *testing.T) {
	s := NewSharded(2, testHop)
	ran := false
	h := funcHandler(func() { ran = true })
	s.Shard(1).SendTo(1, 0, h, 0, 0)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("same-shard SendTo never dispatched")
	}
}

// TestShardedDeadlockAggregates: blocked processes on several shards drain
// into one DeadlockError with sorted names — the serial report, lifted to
// the group.
func TestShardedDeadlockAggregates(t *testing.T) {
	s := NewSharded(3, testHop)
	var c0, c2 Cond
	s.Shard(2).Spawn("rank2", func(p *Proc) { c2.Wait(p, "recv from rank0") })
	s.Shard(0).Spawn("rank0", func(p *Proc) { c0.Wait(p, "recv from rank2") })
	s.Shard(1).Schedule(testHop, func() {}) // some unrelated traffic
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run: %v, want *DeadlockError", err)
	}
	// Names must be sorted and carry the blocked-on reason.
	if len(dl.Procs) != 2 ||
		dl.Procs[0] != "rank0 (blocked: recv from rank2)" ||
		dl.Procs[1] != "rank2 (blocked: recv from rank0)" {
		t.Errorf("deadlock procs = %q", dl.Procs)
	}
}

// TestShardedProcFailure: a panicking process on a worker-dispatched shard
// re-panics out of the group Run as *ProcFailure, same as serial.
func TestShardedProcFailure(t *testing.T) {
	s := NewSharded(4, testHop)
	s.Shard(0).Schedule(testHop, func() {}) // force a multi-shard window
	s.Shard(3).Spawn("bad", func(p *Proc) {
		p.Sleep(2 * testHop)
		panic("boom")
	})
	defer func() {
		r := recover()
		pf, ok := r.(*ProcFailure)
		if !ok {
			t.Fatalf("Run panicked %v, want *ProcFailure", r)
		}
		if pf.Proc != "bad" || pf.Value != "boom" {
			t.Errorf("ProcFailure = %+v", pf)
		}
	}()
	_ = s.Run()
	t.Fatal("Run returned without panicking")
}

// TestShardedHorizon: RunUntil lands every shard's clock exactly on the
// limit, leaves future events queued, and a later Run picks them up.
func TestShardedHorizon(t *testing.T) {
	s := NewSharded(3, testHop)
	fired := make([]bool, 3)
	atLimit := false
	limit := 10 * testHop
	s.Shard(0).At(limit, func() { atLimit = true })
	for i := 0; i < 3; i++ {
		i := i
		s.Shard(i).At(20*testHop, func() { fired[i] = true })
	}
	if err := s.RunUntil(limit); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !atLimit {
		t.Error("event at exactly the limit did not run")
	}
	for i := 0; i < 3; i++ {
		if s.Shard(i).Now() != limit {
			t.Errorf("shard %d clock %v, want %v", i, s.Shard(i).Now(), limit)
		}
		if fired[i] {
			t.Errorf("shard %d event past the horizon ran", i)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !fired[i] {
			t.Errorf("shard %d event did not run after resume", i)
		}
	}
}

// condRelay delivers a cross-shard wakeup: it owns a destination-shard Cond
// and broadcasts it when the event lands.
type condRelay struct{ c *Cond }

func (r *condRelay) HandleEvent(int64, int64) { r.c.Broadcast() }

// TestCrossShardProcWake: a process parked on one shard is woken by a
// message from another, and the blocked-time accounting matches the
// message's flight time.
func TestCrossShardProcWake(t *testing.T) {
	s := NewSharded(2, testHop)
	var c Cond
	relay := &condRelay{c: &c}
	var wokeAt Time
	s.Shard(1).Spawn("waiter", func(p *Proc) {
		c.Wait(p, "cross-shard wake")
		wokeAt = p.Now()
	})
	s.Shard(0).Schedule(3*testHop, func() {
		s.Shard(0).SendTo(1, testHop, relay, 0, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 4 * testHop; wokeAt != want {
		t.Errorf("waiter woke at %v, want %v", wokeAt, want)
	}
}

// --- cross-shard ordering under rail failover ---------------------------

// foSender streams seq 0..total-1 to a receiver over rail A (fast); at seq
// failAt it detects a rail kill and re-issues the in-flight tail plus the
// remainder over rail B (slow). The duplicate re-sends race the originals —
// exactly the failover pattern internal/rail plays out — and the receiver's
// accept order must be a pure function of the latencies.
type foSender struct {
	eng       *Engine
	recv      *foReceiver
	recvShard int
	send      func(e *Engine, dstShard int, delay Time, h Handler, a, b int64)
	gap       Time
	latA      Time
	latB      Time
	total     int64
	failAt    int64
	inflight  int64 // how many already-sent seqs are re-issued at failover
}

func (s *foSender) HandleEvent(seq, _ int64) {
	if seq == s.failAt {
		// Rail A died: re-issue the presumed-lost in-flight tail and every
		// remaining seq over rail B.
		for q := seq - s.inflight; q < s.total; q++ {
			s.send(s.eng, s.recvShard, s.latB+Time(q-seq+s.inflight)*s.gap, s.recv, q, 1)
		}
		return
	}
	s.send(s.eng, s.recvShard, s.latA, s.recv, seq, 0)
	s.eng.Call(s.gap, s, seq+1, 0)
}

type foArrival struct {
	seq  int64
	at   Time
	rail int64
}

type foReceiver struct {
	eng      *Engine
	seen     map[int64]bool
	accepted []foArrival
	dups     int
}

func (r *foReceiver) HandleEvent(seq, rail int64) {
	if r.seen[seq] {
		r.dups++
		return
	}
	r.seen[seq] = true
	r.accepted = append(r.accepted, foArrival{seq: seq, at: r.eng.Now(), rail: rail})
}

func runFailover(t *testing.T, shards int) *foReceiver {
	t.Helper()
	s := NewSharded(shards, testHop)
	sendShard, recvShard := shards-1, 0 // cross-shard whenever shards > 1
	recv := &foReceiver{eng: s.Shard(recvShard), seen: make(map[int64]bool)}
	nt := &shardNet{s: s} // reuse the shard-aware send helper
	snd := &foSender{
		eng: s.Shard(sendShard), recv: recv, recvShard: recvShard, send: nt.send,
		gap: testHop / 2, latA: 2 * testHop, latB: 9 * testHop,
		total: 12, failAt: 6, inflight: 2,
	}
	snd.eng.Call(0, snd, 0, 0)
	if err := s.Run(); err != nil {
		t.Fatalf("shards=%d: Run: %v", shards, err)
	}
	return recv
}

// TestCrossShardOrderingUnderFailover: the failover cascade's accepted
// sequence — which original beats which duplicate, on which rail, at what
// time — is identical at shard counts 1, 2 and 4.
func TestCrossShardOrderingUnderFailover(t *testing.T) {
	base := runFailover(t, 1)
	if len(base.accepted) != 12 {
		t.Fatalf("accepted %d seqs, want 12", len(base.accepted))
	}
	if base.dups == 0 {
		t.Fatal("failover produced no duplicate deliveries; the race is not being exercised")
	}
	onB := 0
	for _, a := range base.accepted {
		if a.rail == 1 {
			onB++
		}
	}
	if onB == 0 || onB == len(base.accepted) {
		t.Fatalf("accepted rail split A/B = %d/%d; both rails must win some", len(base.accepted)-onB, onB)
	}
	for _, shards := range []int{2, 4} {
		r := runFailover(t, shards)
		if len(r.accepted) != len(base.accepted) || r.dups != base.dups {
			t.Fatalf("shards=%d: accepted/dups = %d/%d, want %d/%d",
				shards, len(r.accepted), r.dups, len(base.accepted), base.dups)
		}
		for i, a := range r.accepted {
			if a != base.accepted[i] {
				t.Errorf("shards=%d: accept[%d] = %+v, want %+v", shards, i, a, base.accepted[i])
			}
		}
	}
}

// TestPartitionNodes: contiguous blocks, sizes within one of each other,
// switch on shard 0, and shards > nodes leaves trailing shards empty.
func TestPartitionNodes(t *testing.T) {
	p := PartitionNodes(10, 4)
	if p.SwitchShard != 0 {
		t.Errorf("switch shard %d, want 0", p.SwitchShard)
	}
	counts := make([]int, 4)
	for i, sh := range p.NodeShard {
		counts[sh]++
		if i > 0 && sh < p.NodeShard[i-1] {
			t.Fatalf("placement not monotone: %v", p.NodeShard)
		}
	}
	for i, c := range counts {
		if c < 2 || c > 3 {
			t.Errorf("shard %d holds %d nodes, want 2 or 3 (placement %v)", i, c, p.NodeShard)
		}
	}
	p = PartitionNodes(2, 8)
	for _, sh := range p.NodeShard {
		if sh < 0 || sh >= 8 {
			t.Fatalf("shard index %d out of range", sh)
		}
	}
}

// TestSoloFastPathWindows: a workload living entirely on one shard of a
// multi-shard group runs in a single window — the unpartitioned-world
// overhead guarantee.
func TestSoloFastPathWindows(t *testing.T) {
	s := NewSharded(8, testHop)
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 1000 {
			s.Shard(0).Schedule(units.Nanosecond, tick)
		}
	}
	s.Shard(0).Schedule(0, tick)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Windows() != 1 {
		t.Errorf("solo workload took %d windows, want 1", s.Windows())
	}
	if got := s.Dispatched(); got != 1000 {
		t.Errorf("dispatched %d, want 1000", got)
	}
}
