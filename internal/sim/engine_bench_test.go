package sim

import (
	"testing"
)

// BenchmarkEngineSchedule measures the cost of scheduling plus dispatching
// one event — the simulator's hottest path. It guards the hand-rolled event
// heap: container/heap's interface{} Push/Pop boxed one allocation per
// scheduled event; the direct slice heap must stay at zero allocations per
// event beyond amortized slice growth.
func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		// Interleaved deadlines exercise real sift-up/down work.
		for i := 0; i < k; i++ {
			e.Schedule(Time((i*7919)%97), nop)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScheduleDeep keeps a deep queue resident so every push and
// pop pays log(depth) sifting, the worst realistic case (an 8-node alltoall
// keeps hundreds of events queued).
func BenchmarkEngineScheduleDeep(b *testing.B) {
	e := New()
	nop := func() {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.Schedule(Time(1<<40+i), nop) // far-future ballast
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Schedule(Time((n*7919)%1024), nop)
		if err := e.RunUntil(Time(1 << 30)); err != nil {
			b.Fatal(err)
		}
	}
}

// countHandler is a long-lived typed-event target, the shape every hot-path
// model object (Proc, Timer, xfer, rail monitor) has after the overhaul.
type countHandler struct{ n int64 }

func (h *countHandler) HandleEvent(a, b int64) { h.n += a }

// BenchmarkEngineCall measures the typed-event hot path — Call on a
// long-lived Handler with two int64 arguments — which must not allocate:
// the handler is already interface-shaped and the args live in the event
// record, so the only cost is heap maintenance.
func BenchmarkEngineCall(b *testing.B) {
	e := New()
	h := &countHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		for i := 0; i < k; i++ {
			e.Call(Time((i*7919)%97), h, 1, 0)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if h.n != int64(b.N) {
		b.Fatalf("handler ran %d times, want %d", h.n, b.N)
	}
}

// BenchmarkProcParkWake measures one park/resume round-trip of a
// cooperative process (Sleep(1) and the wake event that resumes it). This
// is the path the single-token handoff collapsed from two channel
// round-trips to one; steady state must be zero allocations per cycle (the
// one-time Spawn cost amortizes to zero over b.N).
func BenchmarkProcParkWake(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerArmStop measures arming and immediately stopping a
// long-lived reusable timer — the watchdog pattern every completed MPI
// wait performs — including the amortized cost of lazy heap compaction
// reclaiming the stopped entries. The timer is allocated once outside the
// loop (the NewTimer/Arm/Stop pattern the MPI watchdog uses), so the
// steady-state cycle must be zero allocations per op.
func BenchmarkTimerArmStop(b *testing.B) {
	e := New()
	// Ballast keeps the heap non-trivial so compaction has real work.
	for i := 0; i < 512; i++ {
		e.Call(Time(1<<50+i), &countHandler{}, 0, 0)
	}
	tm := e.NewTimer(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tm.Arm(Time(1 << 40))
		tm.Stop()
	}
}

// TestEventHeapOrdering pushes a scrambled set of deadlines and requires
// pops in (time, seq) order — the determinism invariant the hand-rolled
// heap must preserve exactly as container/heap did.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	seq := uint64(0)
	// A pattern with many ties: times cycle 0..9 while seq increases.
	for i := 0; i < 1000; i++ {
		seq++
		h.push(event{at: Time(i % 10), seq: seq})
	}
	var lastAt Time = -1
	var lastSeq uint64
	for len(h) > 0 {
		ev := h.pop()
		if ev.at < lastAt || (ev.at == lastAt && ev.seq <= lastSeq) {
			t.Fatalf("pop out of order: (%v, %d) after (%v, %d)", ev.at, ev.seq, lastAt, lastSeq)
		}
		lastAt, lastSeq = ev.at, ev.seq
	}
}

// TestEngineScheduleZeroAlloc pins the boxing fix: steady-state
// schedule+dispatch must not allocate (the heap slice is pre-grown by the
// warmup round).
func TestEngineScheduleZeroAlloc(t *testing.T) {
	e := New()
	nop := func() {}
	run := func() {
		for i := 0; i < 256; i++ {
			e.Schedule(Time(i%13), nop)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the slice capacity
	avg := testing.AllocsPerRun(10, run)
	if avg > 0 {
		t.Errorf("schedule+dispatch allocates %.1f times per 256 events, want 0", avg)
	}
}
