package sim

import (
	"fmt"

	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// Station models a FIFO-served, non-preemptive, exclusive resource: a bus, a
// DMA engine, one direction of a link, a switch crossbar port, a NIC
// processor. Jobs submitted at time t begin service no earlier than t and no
// earlier than the completion of every previously submitted job.
//
// Because service is FIFO and non-preemptive, completion times can be
// computed analytically at submission: no events are needed for queueing
// itself, only for acting on completions. This is what keeps large transfers
// cheap to simulate.
type Station struct {
	name string
	free Time // earliest instant the resource is idle

	// accounting
	busy     Time // total busy time
	jobs     int64
	wait     Time // cumulative queueing delay (submission to service start)
	lastSeen Time

	// span recording, nil unless RecordSpans armed it
	spans    *metrics.SpanTrack
	spanSize int64 // payload hint for the next Use, set by Pipe.Send
}

// NewStation returns an idle station. The name appears in diagnostics.
func NewStation(name string) *Station { return &Station{name: name} }

// Use submits a job of duration dur at time now and returns the interval
// [start, end) during which the job holds the resource.
func (s *Station) Use(now Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: station %s: negative duration %v", s.name, dur))
	}
	if now < s.lastSeen {
		// Submissions must be in nondecreasing time order; the event loop
		// guarantees this as long as callers use their current Now().
		panic(fmt.Sprintf("sim: station %s: time went backwards (%v < %v)", s.name, now, s.lastSeen))
	}
	s.lastSeen = now
	start = now
	if s.free > start {
		start = s.free
	}
	end = start + dur
	s.free = end
	s.busy += dur
	s.wait += start - now
	s.jobs++
	if s.spans != nil {
		s.spans.Emit(start, end, s.spanSize)
		s.spanSize = 0
	}
	return start, end
}

// RecordSpans arms the station to log every job it serves as a device-level
// span in m, attributed to node with the given operation name and layer
// category. A nil m disarms. The lane is resolved once here, so the per-job
// cost in Use is a template copy. Recording never perturbs timing.
func (s *Station) RecordSpans(m *metrics.Registry, node int, op, cat string) {
	s.spans = m.Track(node, s.name, op, cat)
}

// NoteSize attaches a payload-size hint to the next Use, consumed by span
// recording. Pipe.Send calls it automatically; byte-oriented wrappers that
// compute their own durations (the bus) call it before Use.
func (s *Station) NoteSize(n int64) {
	if s.spans != nil && n > 0 {
		s.spanSize = n
	}
}

// FreeAt reports the earliest instant the station would be idle.
func (s *Station) FreeAt() Time { return s.free }

// BusyTime reports cumulative busy time (for utilization accounting).
func (s *Station) BusyTime() Time { return s.busy }

// Jobs reports how many jobs the station has served.
func (s *Station) Jobs() int64 { return s.jobs }

// WaitTime reports cumulative queueing delay: how long jobs sat between
// submission and service start — the station's contention measure.
func (s *Station) WaitTime() Time { return s.wait }

// Name returns the diagnostic name.
func (s *Station) Name() string { return s.name }

// Pipe is a Station with a rate: jobs are byte counts, service time is
// size/bandwidth plus a fixed per-job overhead. It models one direction of a
// serial resource (link, bus slot) at message- or chunk-granularity.
type Pipe struct {
	Station
	rate     units.BytesPerSecond
	perJob   Time // fixed occupancy per job (arbitration, header)
	minBytes int64
	bytes    int64 // cumulative billed bytes
}

// NewPipe returns a pipe of the given rate. perJob is a fixed occupancy
// added to every job; minBytes, if positive, is the minimum billed size
// (modelling minimum frame/transaction sizes).
func NewPipe(name string, rate units.BytesPerSecond, perJob Time, minBytes int64) *Pipe {
	if rate <= 0 {
		panic("sim: pipe needs positive rate")
	}
	p := &Pipe{rate: rate, perJob: perJob, minBytes: minBytes}
	p.Station.name = name
	return p
}

// Send submits a job of n bytes at time now; returns its occupancy interval.
func (p *Pipe) Send(now Time, n int64) (start, end Time) {
	if n < p.minBytes {
		n = p.minBytes
	}
	p.bytes += n
	p.spanSize = n
	return p.Use(now, p.perJob+p.rate.TimeFor(n))
}

// Rate returns the configured bandwidth.
func (p *Pipe) Rate() units.BytesPerSecond { return p.rate }

// Bytes reports cumulative billed bytes (after minBytes rounding).
func (p *Pipe) Bytes() int64 { return p.bytes }

// Instrument registers the pipe's job count, byte volume, busy and wait
// times in m under prefix (e.g. "node0/link/up"), read by snapshot-time
// probes at zero per-job cost.
func (p *Pipe) Instrument(m *metrics.Registry, prefix string) {
	if m == nil {
		return
	}
	m.ProbeCount(prefix+"/jobs", p.Jobs)
	m.ProbeCount(prefix+"/bytes", p.Bytes)
	m.ProbeTime(prefix+"/busy_time", p.BusyTime)
	m.ProbeTime(prefix+"/wait_time", p.WaitTime)
}
