package sim

import (
	"fmt"

	"mpinet/internal/units"
)

// Station models a FIFO-served, non-preemptive, exclusive resource: a bus, a
// DMA engine, one direction of a link, a switch crossbar port, a NIC
// processor. Jobs submitted at time t begin service no earlier than t and no
// earlier than the completion of every previously submitted job.
//
// Because service is FIFO and non-preemptive, completion times can be
// computed analytically at submission: no events are needed for queueing
// itself, only for acting on completions. This is what keeps large transfers
// cheap to simulate.
type Station struct {
	name string
	free Time // earliest instant the resource is idle

	// accounting
	busy     Time // total busy time
	jobs     int64
	lastSeen Time
}

// NewStation returns an idle station. The name appears in diagnostics.
func NewStation(name string) *Station { return &Station{name: name} }

// Use submits a job of duration dur at time now and returns the interval
// [start, end) during which the job holds the resource.
func (s *Station) Use(now Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: station %s: negative duration %v", s.name, dur))
	}
	if now < s.lastSeen {
		// Submissions must be in nondecreasing time order; the event loop
		// guarantees this as long as callers use their current Now().
		panic(fmt.Sprintf("sim: station %s: time went backwards (%v < %v)", s.name, now, s.lastSeen))
	}
	s.lastSeen = now
	start = now
	if s.free > start {
		start = s.free
	}
	end = start + dur
	s.free = end
	s.busy += dur
	s.jobs++
	return start, end
}

// FreeAt reports the earliest instant the station would be idle.
func (s *Station) FreeAt() Time { return s.free }

// BusyTime reports cumulative busy time (for utilization accounting).
func (s *Station) BusyTime() Time { return s.busy }

// Jobs reports how many jobs the station has served.
func (s *Station) Jobs() int64 { return s.jobs }

// Name returns the diagnostic name.
func (s *Station) Name() string { return s.name }

// Pipe is a Station with a rate: jobs are byte counts, service time is
// size/bandwidth plus a fixed per-job overhead. It models one direction of a
// serial resource (link, bus slot) at message- or chunk-granularity.
type Pipe struct {
	Station
	rate     units.BytesPerSecond
	perJob   Time // fixed occupancy per job (arbitration, header)
	minBytes int64
}

// NewPipe returns a pipe of the given rate. perJob is a fixed occupancy
// added to every job; minBytes, if positive, is the minimum billed size
// (modelling minimum frame/transaction sizes).
func NewPipe(name string, rate units.BytesPerSecond, perJob Time, minBytes int64) *Pipe {
	if rate <= 0 {
		panic("sim: pipe needs positive rate")
	}
	p := &Pipe{rate: rate, perJob: perJob, minBytes: minBytes}
	p.Station.name = name
	return p
}

// Send submits a job of n bytes at time now; returns its occupancy interval.
func (p *Pipe) Send(now Time, n int64) (start, end Time) {
	if n < p.minBytes {
		n = p.minBytes
	}
	return p.Use(now, p.perJob+p.rate.TimeFor(n))
}

// Rate returns the configured bandwidth.
func (p *Pipe) Rate() units.BytesPerSecond { return p.rate }
