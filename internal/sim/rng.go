package sim

// RNG is a splitmix64 pseudo-random generator. Every model component that
// needs randomness owns one, seeded from its configuration, so simulations
// are pure functions of their inputs regardless of event interleaving.
type RNG struct{ state uint64 }

// NewRNG returns a generator with the given seed. Distinct components should
// use distinct seeds; Split derives independent child streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent child generator; the parent advances.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x5851f42d4c957f2d)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
