package sim

import "testing"

// TestCrossShardCommitZeroAlloc pins the batched cross-shard commit path:
// once the per-shard outbox/inbox buffers and the destination event queues
// have warmed up, a steady-state round of cross-shard traffic (node →
// switch → node through SendTo, window barrier, sorted commit) must not
// allocate. The comparator-based commit sort and the recycled xmsg buffers
// are exactly what this guards — before the scale overhaul each window's
// sort closure and append churn allocated per message.
func TestCrossShardCommitZeroAlloc(t *testing.T) {
	// Worker goroutines add a nondeterministic trickle of runtime-side
	// allocations (stack growth, wake bookkeeping) that amortizes below
	// 0.01/round; the gate sits an order of magnitude under
	// one-alloc-per-message so a per-xmsg or per-window allocation
	// regression still trips while runtime noise does not.
	for _, shards := range []int{2, 4} {
		per := perCycleAllocs(t, 8, 520, func(rounds int) {
			nt := buildShardNet(shards, 4, 2, rounds, 100, 10)
			if err := nt.s.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if per > 0.05 {
			t.Errorf("%d-shard cross-shard round allocates %.4f per round, want amortized 0", shards, per)
		}
	}
}
