// Package sim implements the deterministic discrete-event simulation engine
// that the interconnect, bus and MPI models run on.
//
// The engine owns a virtual clock (picosecond resolution, see
// internal/units) and a priority queue of events ordered by (time, sequence
// number). Determinism is structural: no wall-clock reads, ties are broken
// by schedule order, and simulated processes are cooperatively scheduled so
// at most one of them executes at any instant.
//
// Two styles of model code coexist:
//
//   - Callback events (Schedule / At) for hardware state machines: a DMA
//     completion, a packet arriving at a switch port.
//   - Processes (Spawn) for software: an MPI rank executing a benchmark is a
//     goroutine that blocks on simulated conditions and sleeps for simulated
//     compute time, reading as straight-line code.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// Time re-exports the simulated time type for convenience.
type Time = units.Time

type event struct {
	at    Time
	seq   uint64
	fn    func()
	timer *Timer // non-nil for cancellable timer events
}

// Timer is a cancellable scheduled callback (see Engine.AfterTimer).
type Timer struct{ stopped bool }

// Stop cancels the timer. A stopped timer's event is discarded when it
// reaches the head of the queue — without advancing the clock or counting
// as a dispatch — so cancelled watchdogs leave no trace on a run: neither
// its timing nor its deadlock detection sees them.
func (t *Timer) Stop() {
	if t != nil {
		t.stopped = true
	}
}

// eventHeap is a binary min-heap ordered by (time, sequence). It is
// hand-rolled rather than container/heap because heap.Push/Pop traffic in
// interface{}, which boxes one event per Schedule — an allocation on the
// hottest path of the whole simulator. push/pop below work directly on the
// slice; the only allocations are the amortized append growths.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push adds ev and sifts it up to its heap position.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn reference
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return min
}

// totalDispatched accumulates events dispatched across every engine in the
// process — the suite-wide work measure scripts/bench.sh reports as
// events/sec. Engines add their per-run delta once per Run, so the hot loop
// never touches the atomic.
var totalDispatched atomic.Uint64

// TotalDispatched reports the number of events dispatched by all completed
// (or horizon-stopped) engine runs process-wide.
func TotalDispatched() uint64 { return totalDispatched.Load() }

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the engine's goroutine or on a
// process that the engine has handed control to.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  map[*Proc]struct{}
	// failure captured from a panicking process, re-raised by Run.
	failure    interface{}
	running    bool
	dispatched uint64
	qhw        int  // event-queue depth high-water mark
	blocked    Time // total time processes spent blocked (not sleeping)
	slept      Time // total time processes spent in Sleep
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay (which may be zero). Events scheduled for the
// same instant run in schedule order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
	if len(e.events) > e.qhw {
		e.qhw = len(e.events)
	}
}

// AfterTimer schedules fn after delay like Schedule, but returns a Timer
// whose Stop cancels the callback. This is what MPI watchdogs are built
// from: arming one must be free when it never fires, so a stopped timer is
// dropped on pop instead of dispatched as a no-op (which would drag the
// clock forward to its expiry and inflate every Elapsed measurement).
func (e *Engine) AfterTimer(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	t := &Timer{}
	e.seq++
	e.events.push(event{at: e.now + delay, seq: e.seq, fn: fn, timer: t})
	if len(e.events) > e.qhw {
		e.qhw = len(e.events)
	}
	return t
}

// Run dispatches events until the queue is empty. If live processes remain
// blocked when the queue drains, Run returns a DeadlockError naming them. If
// a process panicked, Run re-panics with the process name attached.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil is Run with a horizon: once the clock would pass limit, dispatch
// stops (events at exactly limit still run). A negative limit means no
// horizon. Processes still blocked at exit are not an error when the horizon
// was reached.
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	startDispatched := e.dispatched
	defer func() {
		e.running = false
		totalDispatched.Add(e.dispatched - startDispatched)
	}()

	horizon := false
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.timer != nil && ev.timer.stopped {
			e.events.pop()
			continue
		}
		if limit >= 0 && ev.at > limit {
			horizon = true
			break
		}
		e.events.pop()
		e.now = ev.at
		e.dispatched++
		ev.fn()
		if e.failure != nil {
			f := e.failure
			e.failure = nil
			panic(f)
		}
	}
	if horizon {
		e.now = limit
		return nil
	}
	if n := len(e.procs); n > 0 {
		names := make([]string, 0, n)
		for p := range e.procs {
			names = append(names, fmt.Sprintf("%s (blocked: %s)", p.name, p.blockedOn))
		}
		sort.Strings(names)
		return &DeadlockError{At: e.now, Procs: names}
	}
	return nil
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Dispatched reports how many events the engine has executed — a measure
// of simulation work, useful for budgeting large experiments.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// LiveProcs reports the number of processes that have been spawned and have
// not yet returned.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// QueueHighWater reports the deepest the event queue has ever been.
func (e *Engine) QueueHighWater() int { return e.qhw }

// BlockedTime reports total time processes spent blocked on conditions
// (waiting for messages, resources) across the whole run — sleep time,
// which models computation, is excluded.
func (e *Engine) BlockedTime() Time { return e.blocked }

// SleptTime reports total time processes spent in Sleep (modelled compute).
func (e *Engine) SleptTime() Time { return e.slept }

// Instrument registers the engine's own health metrics in m: events
// dispatched, event-queue depth high-water, and aggregate process
// blocked/slept time. All are snapshot-time probes; the event loop itself
// is untouched.
func (e *Engine) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	m.ProbeCount("engine/events_dispatched", func() int64 { return int64(e.dispatched) })
	m.ProbeGauge("engine/queue_high_water", func() int64 { return int64(e.qhw) })
	m.ProbeTime("engine/blocked_time", e.BlockedTime)
	m.ProbeTime("engine/slept_time", e.SleptTime)
}

// ProcFailure is the value Run re-panics with when a simulated process
// panicked: it names the process and carries the original panic value
// intact, so a caller recovering it can inspect (or unwrap) typed values
// instead of a flattened string.
type ProcFailure struct {
	Proc  string
	Value interface{}
}

func (f *ProcFailure) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", f.Proc, f.Value)
}

// String keeps fmt.Sprint / %v output identical to the pre-struct string
// form of this failure.
func (f *ProcFailure) String() string { return f.Error() }

// DeadlockError is returned by Run when all events have drained while
// simulated processes are still blocked — the simulation analogue of an MPI
// hang.
type DeadlockError struct {
	At    Time
	Procs []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; blocked processes: %s",
		d.At, strings.Join(d.Procs, ", "))
}
