// Package sim implements the deterministic discrete-event simulation engine
// that the interconnect, bus and MPI models run on.
//
// The engine owns a virtual clock (picosecond resolution, see
// internal/units) and a priority queue of events ordered by (time, sequence
// number). Determinism is structural: no wall-clock reads, ties are broken
// by schedule order, and simulated processes are cooperatively scheduled so
// at most one of them executes at any instant.
//
// Two styles of model code coexist:
//
//   - Callback events (Schedule / At) for hardware state machines: a DMA
//     completion, a packet arriving at a switch port.
//   - Processes (Spawn) for software: an MPI rank executing a benchmark is a
//     goroutine that blocks on simulated conditions and sleeps for simulated
//     compute time, reading as straight-line code.
//
// Events come in two physical forms. Schedule/At take a func() — the
// convenient form, which heap-allocates a closure whenever the callback
// captures state. Call/CallAt take a Handler plus two integer arguments —
// the hot-path form: the handler is a long-lived model object (a transfer
// pipeline, a process, a health monitor), so scheduling it allocates
// nothing. Park/wake of every process, every chunk hop of every
// fabric.Transfer and every rail heartbeat tick run on typed events; see
// docs/MODEL.md §15 for the performance model.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"mpinet/internal/metrics"
	"mpinet/internal/units"
)

// Time re-exports the simulated time type for convenience.
type Time = units.Time

// Handler is the typed-event target: a pre-allocated model object whose
// HandleEvent method the engine invokes with the two integer arguments
// given at schedule time. Because the handler already exists and the
// arguments travel inside the event record, scheduling one allocates
// nothing — this is what keeps the per-chunk and park/wake paths
// allocation-free where a closure would heap-allocate per event.
type Handler interface {
	HandleEvent(a, b int64)
}

// event is one queued occurrence. Every callback form funnels into the
// Handler word: model objects and processes implement Handler directly,
// and bare func() callbacks ride as funcHandler — a func value is
// pointer-shaped, so the interface conversion does not box. Keeping the
// record at 48 bytes matters: heap sifting copies events, and the queue
// routinely holds thousands.
type event struct {
	at   Time
	seq  uint64
	a, b int64 // HandleEvent arguments; zero for func() events
	h    Handler
}

// funcHandler adapts a plain callback to the Handler interface. Named func
// types are stored directly in an interface's data word (no allocation), so
// Schedule/At pay only for the closure the caller already built.
type funcHandler func()

// HandleEvent implements Handler by calling the wrapped func.
func (f funcHandler) HandleEvent(int64, int64) { f() }

// Timer is a cancellable, re-armable scheduled callback (see
// Engine.NewTimer and Engine.AfterTimer). It implements Handler so its
// event record needs no closure beyond the fn the caller supplied, and it
// is reusable: Arm after Stop (or after firing) queues a fresh deadline on
// the same object, so a long-lived watchdog costs one allocation for its
// whole life instead of one per wait. Each Arm stamps a fresh generation
// number into the queued event's argument word; an event whose stamp no
// longer matches the timer's current generation is stale and is discarded
// at the head of the queue exactly like a stopped timer's event.
type Timer struct {
	eng   *Engine
	fn    func()
	gen   int64 // generation of the currently live event
	armed bool  // a live event with stamp gen sits in the queue
}

// NewTimer returns an unarmed reusable timer that runs fn when it fires.
// This is the allocation-conscious form: allocate once at wiring time, then
// Arm/Stop per use for free.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Arm schedules the timer to fire after delay. Arming an already-armed
// timer supersedes the earlier deadline: the old event becomes stale and is
// dropped when it surfaces (or is compacted away), exactly as if it had
// been stopped.
func (t *Timer) Arm(delay Time) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e := t.eng
	if t.armed {
		// The previously queued event is now stale.
		e.stoppedTimers++
	}
	t.gen++
	t.armed = true
	e.enqueue(event{at: e.now + delay, h: t, a: t.gen})
	e.maybeCompact()
}

// Stop cancels the timer. A stopped timer's event is discarded when it
// reaches the head of the queue — without advancing the clock or counting
// as a dispatch — so cancelled watchdogs leave no trace on a run: neither
// its timing nor its deadlock detection sees them. When stopped timers
// accumulate faster than they surface (per-wait watchdogs under a fault
// plan arm one per MPI wait), the engine compacts them out of the queue in
// bulk; see maybeCompact. Stop on an unarmed or already-fired timer is a
// no-op, and a stopped timer may be re-armed with Arm.
func (t *Timer) Stop() {
	if t == nil || !t.armed {
		return
	}
	t.armed = false
	t.eng.stoppedTimers++
	t.eng.maybeCompact()
}

// stale reports whether an event carrying stamp gen no longer represents
// this timer's live deadline.
func (t *Timer) stale(gen int64) bool { return !t.armed || gen != t.gen }

// HandleEvent implements Handler: the timer fired. Engine use only — the
// dispatch loop has already filtered stale events.
func (t *Timer) HandleEvent(int64, int64) {
	t.armed = false
	t.fn()
}

// eventHeap is a 4-ary min-heap ordered by (time, sequence). It is
// hand-rolled rather than container/heap because heap.Push/Pop traffic in
// interface{}, which boxes one event per Schedule — an allocation on the
// hottest path of the whole simulator. push/pop below work directly on the
// slice; the only allocations are the amortized append growths.
//
// Two shape choices matter at this call volume (tens of millions of ops per
// suite run). Arity 4 halves the tree depth, trading two extra key
// compares per level — against 48-byte elements whose moves dominate, the
// shallower tree wins, and the four children share a cache line pair.
// Sifting moves the displaced element through a hole instead of swapping:
// one copy per level plus a final placement, rather than three. Neither
// changes which event pops next — (at, seq) is a strict total order, so
// every correct heap yields the identical pop sequence and determinism is
// untouched.
type eventHeap []event

const heapArity = 4

// lessEv orders events by (time, sequence).
func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property for a node that may beat its parents.
func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !lessEv(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// siftDown restores the heap property for a node that may lose to a child.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if lessEv(&h[c], &h[best]) {
				best = c
			}
		}
		if !lessEv(&h[best], &ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}

// push adds ev and sifts it up to its heap position.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the handler reference
	q = q[:n]
	*h = q
	if n > 0 {
		q.siftDown(0)
	}
	return min
}

// totalDispatched accumulates events dispatched across every engine in the
// process — the suite-wide work measure scripts/bench.sh reports as
// events/sec. Engines add their per-run delta once per Run, so the hot loop
// never touches the atomic.
var totalDispatched atomic.Uint64

// TotalDispatched reports the number of events dispatched by all completed
// (or horizon-stopped) engine runs process-wide.
func TotalDispatched() uint64 { return totalDispatched.Load() }

// Timer-compaction thresholds: compact when at least compactMinStopped
// cancelled timers sit in the queue AND they exceed a quarter of it. The
// floor keeps small queues from compacting on every Stop; the fraction
// bounds wasted heap traffic (every sift step over a dead event is pure
// overhead) to a constant factor.
const compactMinStopped = 64

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; all model code runs on the engine's goroutine or on a
// process that the engine has handed control to. An engine may also be one
// shard of a Sharded group (see shard.go), in which case Run delegates to
// the group's conservative window scheduler and the engine's queue is
// dispatched one lookahead-bounded window at a time.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// nowq is the current-instant FIFO lane: an event scheduled for the
	// instant being dispatched carries a larger sequence number than every
	// queued event at that instant (sequence numbers are globally
	// increasing), so it runs after all of them, in schedule order — a
	// strict FIFO. Appending to a ring is O(1) where a heap push is
	// O(log n), and zero-delay traffic (Cond wakeups, Yield, same-instant
	// protocol steps) is a large share of all events. Dispatch drains heap
	// events at the current instant first (their sequence numbers are
	// smaller by construction), then this queue; the merged order is
	// exactly the global (at, seq) order, so determinism is untouched.
	nowq     []event
	nowqHead int
	procs    map[*Proc]struct{}
	// failure captured from a panicking process, re-raised by Run.
	failure    interface{}
	running    bool
	dispatched uint64
	qhw        int  // event-queue depth high-water mark
	blocked    Time // total time processes spent blocked (not sleeping)
	slept      Time // total time processes spent in Sleep
	// stoppedTimers counts cancelled timer events still in the queue;
	// maybeCompact removes them in bulk once they dominate.
	stoppedTimers int
	compactions   uint64

	// Shard membership (nil/zero for a plain serial engine). owner is the
	// conservative group scheduler this engine belongs to, shard its index
	// in the group. windowCap is live only inside a runWindow dispatch: the
	// exclusive upper time bound of the window, shrunk by SendTo mid-window.
	// echoDist[dst] is this engine's column of the group's lookahead
	// distance matrix — how soon anything shard dst does can causally reach
	// this shard — set by the group scheduler before dispatch begins (nil
	// for a serial engine).
	owner     *Sharded
	shard     int
	windowCap Time
	echoDist  []Time
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// enqueue stamps the next sequence number on ev, queues it (the FIFO lane
// for current-instant events during dispatch, the heap otherwise) and
// maintains the depth high-water mark — the single funnel every schedule
// form feeds.
func (e *Engine) enqueue(ev event) {
	e.seq++
	ev.seq = e.seq
	if e.running && ev.at == e.now {
		e.nowq = append(e.nowq, ev)
	} else {
		e.events.push(ev)
	}
	if d := len(e.events) + len(e.nowq) - e.nowqHead; d > e.qhw {
		e.qhw = d
	}
}

// Schedule runs fn after delay (which may be zero). Events scheduled for the
// same instant run in schedule order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.enqueue(event{at: t, h: funcHandler(fn)})
}

// Call invokes h.HandleEvent(a, b) after delay. It is the allocation-free
// counterpart of Schedule: h is an existing model object and a/b ride in
// the event record, so nothing escapes to the heap.
func (e *Engine) Call(delay Time, h Handler, a, b int64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.CallAt(e.now+delay, h, a, b)
}

// CallAt invokes h.HandleEvent(a, b) at the absolute time t, which must not
// be in the past. See Call.
func (e *Engine) CallAt(t Time, h Handler, a, b int64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.enqueue(event{at: t, h: h, a: a, b: b})
}

// schedProc queues a control-token handoff to p after delay — the park/wake
// path. Proc implements Handler, so this allocates nothing.
func (e *Engine) schedProc(p *Proc, delay Time) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.enqueue(event{at: e.now + delay, h: p})
}

// AfterTimer schedules fn after delay like Schedule, but returns a Timer
// whose Stop cancels the callback. A stopped timer is dropped on pop
// instead of dispatched as a no-op (which would drag the clock forward to
// its expiry and inflate every Elapsed measurement). AfterTimer allocates
// the Timer per call; callers arming on a hot path should allocate once
// with NewTimer and Arm/Stop per use.
func (e *Engine) AfterTimer(delay Time, fn func()) *Timer {
	t := e.NewTimer(fn)
	t.Arm(delay)
	return t
}

// maybeCompact removes cancelled timer events from the queue in bulk once
// they exceed the compaction thresholds. Without this, per-wait watchdogs
// (auto-armed on every MPI wait under a fault plan) rot in the heap until
// their far-future deadlines surface at the head, and every push/pop in
// between sifts over them. Compaction filters the backing slice in place
// and re-heapifies; the (at, seq) total order that determines dispatch is
// untouched, so determinism is unaffected.
func (e *Engine) maybeCompact() {
	if e.stoppedTimers < compactMinStopped || e.stoppedTimers*4 <= len(e.events) {
		return
	}
	kept := e.events[:0]
	for _, ev := range e.events {
		if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
			continue
		}
		kept = append(kept, ev)
	}
	// Zero the tail so dropped events release their references.
	tail := e.events[len(kept):]
	for i := range tail {
		tail[i] = event{}
	}
	e.events = kept
	if len(kept) > 1 {
		for i := (len(kept) - 2) / heapArity; i >= 0; i-- {
			e.events.siftDown(i)
		}
	}
	// The FIFO lane can hold stopped timers too (armed and cancelled
	// within the same instant); filter its live region, head left in place.
	if e.nowqHead < len(e.nowq) {
		keptNow := e.nowq[:e.nowqHead]
		for _, ev := range e.nowq[e.nowqHead:] {
			if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
				continue
			}
			keptNow = append(keptNow, ev)
		}
		tail := e.nowq[len(keptNow):]
		for i := range tail {
			tail[i] = event{}
		}
		e.nowq = keptNow
	}
	e.stoppedTimers = 0
	e.compactions++
}

// Compactions reports how many bulk timer-compaction passes have run —
// exposed for tests and the engine health probes.
func (e *Engine) Compactions() uint64 { return e.compactions }

// StoppedPending reports how many cancelled timer events currently sit in
// the queue awaiting drop-on-pop or compaction (test hook).
func (e *Engine) StoppedPending() int { return e.stoppedTimers }

// Run dispatches events until the queue is empty. If live processes remain
// blocked when the queue drains, Run returns a DeadlockError naming them. If
// a process panicked, Run re-panics with the process name attached.
//
// On an engine that belongs to a Sharded group, Run drives the whole group:
// the conservative window scheduler advances every shard together, so model
// code built against a single engine keeps working unchanged when that
// engine is shard 0 of a partitioned world.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil is Run with a horizon: once the clock would pass limit, dispatch
// stops (events at exactly limit still run). A negative limit means no
// horizon. Processes still blocked at exit are not an error when the horizon
// was reached.
func (e *Engine) RunUntil(limit Time) error {
	if e.owner != nil {
		return e.owner.RunUntil(limit)
	}
	return e.runSerial(limit)
}

// runSerial is the single-engine dispatch loop — the -shards 1 fast path,
// byte-for-byte the pre-shard engine with zero added work per event.
func (e *Engine) runSerial(limit Time) error {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	startDispatched := e.dispatched
	defer func() {
		e.running = false
		totalDispatched.Add(e.dispatched - startDispatched)
	}()

	horizon := false
	for {
		var ev event
		if e.nowqHead < len(e.nowq) && (len(e.events) == 0 || e.events[0].at > e.now) {
			// FIFO lane: every heap event at this instant (all with
			// smaller sequence numbers) has already run.
			ev = e.nowq[e.nowqHead]
			e.nowq[e.nowqHead] = event{} // release the handler reference
			e.nowqHead++
			if e.nowqHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowqHead = 0
			}
			if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
				e.stoppedTimers--
				continue
			}
		} else if len(e.events) > 0 {
			ev = e.events[0]
			if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
				// Cancelled or superseded by a re-Arm: drop without
				// advancing the clock or counting a dispatch.
				e.stoppedTimers--
				e.events.pop()
				continue
			}
			if limit >= 0 && ev.at > limit {
				horizon = true
				break
			}
			e.events.pop()
			e.now = ev.at
		} else {
			break
		}
		e.dispatched++
		ev.h.HandleEvent(ev.a, ev.b)
		if e.failure != nil {
			f := e.failure
			e.failure = nil
			panic(f)
		}
	}
	if horizon {
		e.now = limit
		return nil
	}
	if n := len(e.procs); n > 0 {
		names := make([]string, 0, n)
		for p := range e.procs {
			names = append(names, fmt.Sprintf("%s (blocked: %s)", p.name, p.blockedOn))
		}
		sort.Strings(names)
		return &DeadlockError{At: e.now, Procs: names}
	}
	return nil
}

// nextEventAt reports the earliest queued occurrence's timestamp, or false
// when the queue is empty — the shard scheduler's window-planning probe.
func (e *Engine) nextEventAt() (Time, bool) {
	if e.nowqHead < len(e.nowq) {
		t := e.nowq[e.nowqHead].at
		if len(e.events) > 0 && e.events[0].at < t {
			t = e.events[0].at
		}
		return t, true
	}
	if len(e.events) > 0 {
		return e.events[0].at, true
	}
	return 0, false
}

// runWindow dispatches every event with at < cap — one conservative window.
// It mirrors runSerial's loop exactly (FIFO lane preference, stale-timer
// drops without dispatch counts) but stops at the window cap instead of a
// drained queue, and returns a captured process failure instead of
// panicking, so the group coordinator can re-raise the lowest shard's
// failure deterministically. The cap is read afresh each iteration because
// SendTo shrinks it mid-window on every cross-shard send (the earliest
// possible causal echo is the send's arrival plus the lookahead distance
// back from its destination).
func (e *Engine) runWindow(cap Time) (failure interface{}) {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	e.windowCap = cap
	defer func() { e.running = false }()
	for {
		var ev event
		if e.nowqHead < len(e.nowq) && (len(e.events) == 0 || e.events[0].at > e.now) {
			// FIFO-lane events sit at e.now, which is < windowCap by
			// construction (the window admitted the event that queued them),
			// so no cap check is needed: the lane always drains.
			ev = e.nowq[e.nowqHead]
			e.nowq[e.nowqHead] = event{}
			e.nowqHead++
			if e.nowqHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowqHead = 0
			}
			if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
				e.stoppedTimers--
				continue
			}
		} else if len(e.events) > 0 {
			ev = e.events[0]
			if t, ok := ev.h.(*Timer); ok && t.stale(ev.a) {
				e.stoppedTimers--
				e.events.pop()
				continue
			}
			if ev.at >= e.windowCap {
				break
			}
			e.events.pop()
			e.now = ev.at
		} else {
			break
		}
		e.dispatched++
		ev.h.HandleEvent(ev.a, ev.b)
		if e.failure != nil {
			f := e.failure
			e.failure = nil
			return f
		}
	}
	return nil
}

// ShardID reports this engine's index within its Sharded group (0 for a
// plain serial engine).
func (e *Engine) ShardID() int { return e.shard }

// SendTo schedules h.HandleEvent(a, b) after delay on shard dst of this
// engine's group — the cross-shard counterpart of Call. The delay must be at
// least the configured lookahead for the (src, dst) edge; a shorter delay is
// a model bug (the edge's physical latency was overstated to the scheduler)
// and panics with a *LookaheadError. Sends to the engine's own shard degrade
// to Call. The message is buffered in the per-shard outbox and committed at
// the next window barrier in (at, source shard, source sequence) order, so
// delivery order is a pure function of the model, not of goroutine timing.
func (e *Engine) SendTo(dst int, delay Time, h Handler, a, b int64) {
	s := e.owner
	if s == nil {
		panic("sim: SendTo on an engine outside a Sharded group")
	}
	if dst < 0 || dst >= len(s.shards) {
		panic(fmt.Sprintf("sim: SendTo shard %d out of range [0,%d)", dst, len(s.shards)))
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if dst == e.shard {
		e.Call(delay, h, a, b)
		return
	}
	if la := s.edgeLookahead(e.shard, dst); delay < la {
		panic(&LookaheadError{Src: e.shard, Dst: dst, Delay: delay, Lookahead: la})
	}
	at := e.now + delay
	e.seq++
	s.outbox[e.shard] = append(s.outbox[e.shard],
		xmsg{at: at, src: e.shard, srcSeq: e.seq, dst: dst, a: a, b: b, h: h})
	// Every cross-shard send re-bounds the live window: the earliest event
	// this message could cause to reach back here — directly or through any
	// relay chain — lands at its arrival plus the lookahead distance from
	// the destination, so dispatch past that point is unsafe. This is what
	// keeps unbounded solo windows and the per-shard caps honest against
	// echoes through shards that held no events at planning time.
	if e.running && e.echoDist != nil {
		if c := at + e.echoDist[dst]; c < e.windowCap {
			e.windowCap = c
		}
	}
}

// addTotalDispatched folds a completed run's dispatch delta into the
// process-wide counter (one atomic add per run, never per event).
func addTotalDispatched(n uint64) { totalDispatched.Add(n) }

// Pending reports the number of queued events (heap and current-instant
// FIFO lane together).
func (e *Engine) Pending() int { return len(e.events) + len(e.nowq) - e.nowqHead }

// Dispatched reports how many events the engine has executed — a measure
// of simulation work, useful for budgeting large experiments.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// LiveProcs reports the number of processes that have been spawned and have
// not yet returned.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// QueueHighWater reports the deepest the event queue has ever been.
func (e *Engine) QueueHighWater() int { return e.qhw }

// BlockedTime reports total time processes spent blocked on conditions
// (waiting for messages, resources) across the whole run — sleep time,
// which models computation, is excluded.
func (e *Engine) BlockedTime() Time { return e.blocked }

// SleptTime reports total time processes spent in Sleep (modelled compute).
func (e *Engine) SleptTime() Time { return e.slept }

// Instrument registers the engine's own health metrics in m: events
// dispatched, event-queue depth high-water, timer compactions, and
// aggregate process blocked/slept time. All are snapshot-time probes; the
// event loop itself is untouched.
func (e *Engine) Instrument(m *metrics.Registry) {
	if m == nil {
		return
	}
	if e.owner != nil && len(e.owner.shards) > 1 {
		// A grouped engine's counters cover only its shard; report the
		// group-wide aggregate instead so snapshots measure the whole world.
		e.owner.Instrument(m)
		return
	}
	m.ProbeCount("engine/events_dispatched", func() int64 { return int64(e.dispatched) })
	m.ProbeGauge("engine/queue_high_water", func() int64 { return int64(e.qhw) })
	m.ProbeCount("engine/timer_compactions", func() int64 { return int64(e.compactions) })
	m.ProbeTime("engine/blocked_time", e.BlockedTime)
	m.ProbeTime("engine/slept_time", e.SleptTime)
}

// ProcFailure is the value Run re-panics with when a simulated process
// panicked: it names the process and carries the original panic value
// intact, so a caller recovering it can inspect (or unwrap) typed values
// instead of a flattened string.
type ProcFailure struct {
	Proc  string
	Value interface{}
}

func (f *ProcFailure) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", f.Proc, f.Value)
}

// String keeps fmt.Sprint / %v output identical to the pre-struct string
// form of this failure.
func (f *ProcFailure) String() string { return f.Error() }

// DeadlockError is returned by Run when all events have drained while
// simulated processes are still blocked — the simulation analogue of an MPI
// hang.
type DeadlockError struct {
	At    Time
	Procs []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; blocked processes: %s",
		d.At, strings.Join(d.Procs, ", "))
}
