package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the event loop so that exactly one of (engine, some process) runs at
// a time. A Proc advances the virtual clock only by blocking — Sleep for
// compute time, Cond.Wait for synchronization — and therefore reads as
// ordinary sequential code.
type Proc struct {
	eng  *Engine
	name string

	// tok is the single control-token handoff channel. Ownership strictly
	// alternates — the engine sends to resume the process, the process
	// sends to park or finish — so one unbuffered channel serves both
	// directions: whenever one side sends, the other is already receiving,
	// and the rendezvous completes without an extra blocking round-trip.
	// (The previous design used a resume channel plus a parked channel —
	// two channel structures and a parkMsg copied through one of them on
	// every cycle.)
	tok chan struct{}

	// msg is the reusable park report, written by the process before it
	// hands the token back. The channel send orders the write before the
	// engine's read, so a plain field is race-free.
	msg parkMsg

	// blockedOn describes what the process is waiting for; surfaced in
	// deadlock reports.
	blockedOn string

	// blocked/slept accounting. Updated only while this process holds the
	// control token, so plain fields are race-free.
	blocked Time // time parked on conditions (waiting, not computing)
	slept   Time // time parked in Sleep (modelled compute)
}

type parkMsg struct {
	finished bool
	panicked interface{}
}

// Spawn creates a process named name running fn, starting at the current
// simulated time. fn runs on its own goroutine but only while the engine has
// handed it the control token.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		tok:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		<-p.tok // wait for the starter event
		defer func() {
			r := recover()
			p.msg = parkMsg{finished: true, panicked: r}
			p.tok <- struct{}{}
		}()
		fn(p)
	}()
	e.schedProc(p, 0)
	return p
}

// step hands the control token to p and blocks the engine until p parks or
// finishes.
func (e *Engine) step(p *Proc) {
	p.tok <- struct{}{}
	<-p.tok
	if p.msg.finished {
		delete(e.procs, p)
		if p.msg.panicked != nil {
			e.failure = &ProcFailure{Proc: p.name, Value: p.msg.panicked}
		}
	}
}

// HandleEvent implements Handler: a wake event reached its instant, so the
// engine hands this process the control token. Engine use only — model
// code wakes processes through Cond, Sleep and Yield.
func (p *Proc) HandleEvent(int64, int64) { p.eng.step(p) }

// park gives the token back to the engine and blocks until somebody resumes
// this process via a wake event.
func (p *Proc) park(why string) {
	p.blockedOn = why
	t0 := p.eng.now
	p.msg = parkMsg{}
	p.tok <- struct{}{}
	<-p.tok
	d := p.eng.now - t0
	if why == "sleep" {
		p.slept += d
		p.eng.slept += d
	} else {
		p.blocked += d
		p.eng.blocked += d
	}
	p.blockedOn = ""
}

// wake schedules an event that transfers control back to p. It must be
// called while the engine (or another process holding the token) is
// running. The wake is a typed event — no closure, no allocation — which
// matters because every Sleep, Yield and Cond wakeup in the simulator
// passes through here.
func (p *Proc) wake(delay Time) {
	p.eng.schedProc(p, delay)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// BlockedTime reports how long this process has spent parked on conditions
// (message waits, resource queues) — sleep time is excluded.
func (p *Proc) BlockedTime() Time { return p.blocked }

// SleptTime reports how long this process has spent in Sleep.
func (p *Proc) SleptTime() Time { return p.slept }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances simulated time by d from this process's perspective,
// modelling computation or a busy-wait of known length.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		return
	}
	p.wake(d)
	p.park("sleep")
}

// Yield parks the process and immediately re-queues it, letting every event
// already scheduled for the current instant run first.
func (p *Proc) Yield() {
	p.wake(0)
	p.park("yield")
}

// Cond is an engine-level condition: processes wait on it, and model code
// (event callbacks or other processes) signals it. Unlike sync.Cond there is
// no associated lock — the cooperative scheduler already guarantees mutual
// exclusion — but waiters must re-check their predicate after waking, as
// wakeups are ordered but not exclusive.
type Cond struct {
	waiters []*Proc
}

// Wait parks the calling process until the condition is signalled. why is
// used in deadlock reports.
func (c *Cond) Wait(p *Proc, why string) {
	c.waiters = append(c.waiters, p)
	p.park(why)
}

// Broadcast wakes every current waiter, in wait order. The waiter slice's
// backing array is kept for reuse: wakes only schedule events, so no waiter
// can re-append until after the loop completes.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = c.waiters[:0]
	for _, p := range ws {
		p.wake(0)
	}
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:n]
	p.wake(0)
}

// WaitUntil parks p until pred() holds, re-checking at every broadcast of c.
func (c *Cond) WaitUntil(p *Proc, why string, pred func() bool) {
	for !pred() {
		c.Wait(p, why)
	}
}
