package gm

import (
	"math"
	"testing"

	"mpinet/internal/memreg"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestNetworkBasics(t *testing.T) {
	n := New(sim.New(), DefaultConfig(8))
	if n.Name() != "Myri" || n.Nodes() != 8 {
		t.Fatalf("name=%q nodes=%d", n.Name(), n.Nodes())
	}
	if n.ShmemBelow() != math.MaxInt64 {
		t.Fatal("MPICH-GM uses shared memory at every intra-node size")
	}
}

func TestDeviceProperties(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0)
	if ep.NICProgress() || ep.AcquireOnEager() {
		t.Error("GM is host-driven with staged eager copies")
	}
	if ep.EagerThreshold() != 16*1024 {
		t.Errorf("eager threshold = %d, want 16KB", ep.EagerThreshold())
	}
	if o := ep.SendOverhead(4) + ep.RecvOverhead(4); o > 1200*units.Nanosecond {
		t.Errorf("host overhead %v above the paper's ~0.8us", o)
	}
	if ep.MemoryUsage(1) != ep.MemoryUsage(7) {
		t.Error("GM memory should be flat in peer count")
	}
}

func TestLinkIsUniDirectionalBottleneck(t *testing.T) {
	// A single large bulk transfer should be limited by the 2 Gbps link:
	// ~235 MB/s.
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	ep := n.NewEndpoint(0)
	size := int64(4 * units.MB)
	var at sim.Time
	ep.Bulk(1, size, func() { at = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(size) / at.Seconds() / float64(units.MB)
	if bw < 210 || bw > 245 {
		t.Fatalf("uni-directional bulk bandwidth = %.0f MB/s, want ~235", bw)
	}
}

func TestSRAMStagingStallsOnBidirBulk(t *testing.T) {
	// Two deep opposing bulk streams oversubscribe the 2 MB SRAM and
	// collapse throughput; a single stream must not.
	run := func(bidir bool) sim.Time {
		eng := sim.New()
		n := New(eng, DefaultConfig(2))
		ep0 := n.NewEndpoint(0)
		ep1 := n.NewEndpoint(1)
		size := int64(4 * units.MB)
		var done sim.Time
		ep0.Bulk(1, size, func() { done = eng.Now() })
		if bidir {
			ep1.Bulk(0, size, func() {})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	uni := run(false)
	bid := run(true)
	// Bidirectional large transfers must take clearly longer per direction
	// than full-duplex links alone would predict (which would be ~equal).
	if float64(bid) < float64(uni)*1.25 {
		t.Fatalf("no SRAM stall: uni %v, bidir %v", uni, bid)
	}
}

func TestACKsConsumeLANai(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	ep := n.NewEndpoint(0)
	ep.Eager(1, 64, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Both LANai engines must have processed data + ACK work.
	if n.nodes[0].lanai.Jobs() < 2 || n.nodes[1].lanai.Jobs() < 2 {
		t.Fatalf("lanai jobs = %d/%d, want >=2 each (message + ACK)",
			n.nodes[0].lanai.Jobs(), n.nodes[1].lanai.Jobs())
	}
}

func TestRegistrationCache(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0)
	buf := memreg.Buf{Addr: 4096, Size: 64 * units.KB}
	if ep.AcquireBuf(buf) <= 0 {
		t.Fatal("first acquire free")
	}
	if ep.AcquireBuf(buf) != 0 {
		t.Fatal("warm acquire not free")
	}
}

func TestTooManyNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.New(), Config{Nodes: 9, SwitchPorts: 8})
}

func TestEagerThresholdOverride(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EagerThreshold = 4096
	n := New(sim.New(), cfg)
	if got := n.NewEndpoint(0).EagerThreshold(); got != 4096 {
		t.Fatalf("threshold = %d", got)
	}
}

func TestUtilizations(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	n.NewEndpoint(0).Eager(1, 4096, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	us := n.Utilizations()
	if len(us) != 2*6 { // 2 nodes x (bus, lanai, sdma, rdma, up, down)
		t.Fatalf("utilization entries = %d, want 12", len(us))
	}
}

func TestShmemConfigHandshake(t *testing.T) {
	if New(sim.New(), DefaultConfig(1)).ShmemConfig().Handshake <= 0 {
		t.Fatal("no handshake configured")
	}
}

func TestLoopbackPath(t *testing.T) {
	eng := sim.New()
	n := New(eng, Config{Nodes: 1, SwitchPorts: 8})
	done := false
	n.NewEndpoint(0).Eager(0, 64, func() { done = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("loopback eager lost")
	}
}
