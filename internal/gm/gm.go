// Package gm models the Myrinet side of the paper's testbed: M3F-PCIXD-2
// NICs (LANai-XP processor at 225 MHz with 2 MB on-board SRAM) on PCI-X,
// a Myrinet-2000 8-port crossbar, 2 Gbps-per-direction links, and a GM-like
// messaging layer (connectionless send/receive plus directed send,
// registration required) — the substrate MPICH-GM 1.2.5 runs on.
//
// Mechanisms represented:
//
//   - The 2 Gbps link is the uni-directional ceiling (~235 MB/s, Figure 2);
//     links are full duplex and the PCI-X bus has headroom, so
//     bi-directional traffic nearly doubles (~473 MB/s, Figure 5).
//   - The LANai processor orchestrates both directions: crossing traffic
//     queues behind it, which is the bi-directional latency penalty of
//     Figure 4 (6.7 us -> ~10 us).
//   - Send and receive payloads stage through the 2 MB SRAM; when both
//     directions carry deep large-message traffic the staging pool
//     oversubscribes and the DMA pipelines stall — the Figure 5 collapse
//     past 256 KB.
//   - MPICH-GM's eager path copies through pre-registered staging up to a
//     16 KB threshold; beyond it, directed send is zero-copy and pays
//     registration on pin-down cache misses (Figures 7, 8).
package gm

import (
	"fmt"
	"math"

	"mpinet/internal/bus"
	"mpinet/internal/dev"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Config selects the Myrinet platform variant.
type Config struct {
	Nodes       int
	SwitchPorts int // 8 on the paper's Myrinet-2000 switch
	// EagerThreshold overrides MPICH-GM's default 16 KB rendezvous switch
	// point (0 = default); an ablation knob.
	EagerThreshold int64
	// Faults, when non-nil, injects the plan's link/NIC/bus faults and
	// enables the GM send-token resend machinery below.
	Faults *faults.Plan
	// Clos, when non-nil, replaces the single crossbar with a parameterized
	// multi-stage Clos fabric (the redesigned topology API).
	Clos *fabric.ClosConfig
	// Domains, when non-nil, is the node-domain placement capability: the
	// engines and node->shard map of a sharded world, consumed when
	// ActivateDomains is called (see dev.DomainNetwork).
	Domains *dev.Domains
}

// DefaultConfig is the paper's 8-node testbed.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, SwitchPorts: 8}
}

// Calibration constants (see DESIGN.md §5).
const (
	// linkRate is 2 Gbps per direction.
	linkRateBps = 2e9 / 8
	// lanaiPerMsg is LANai firmware work per packet (routing header, event
	// handling); the engine is shared by both directions.
	lanaiPerMsg = 1550 * units.Nanosecond
	// ackProcess is LANai work to generate/absorb GM's reliability ACK for
	// each delivered message; ackFlight is its wire time back. Under
	// bi-directional load these ACKs queue behind data processing — the
	// Figure 4 bi-directional latency penalty.
	ackProcess = 1500 * units.Nanosecond
	ackFlight  = 600 * units.Nanosecond
	// sdma/rdma are the NIC's per-direction DMA engines between host
	// memory/SRAM and the wire.
	dmaRateBps  = 300e6
	dmaPerChunk = 300 * units.Nanosecond
	// sramBytes is the staging SRAM; when both directions carry more
	// outstanding bulk than it holds, the DMA engines stall on staging and
	// fall to dmaStallRate (the Figure 5 collapse below 340 MB/s total).
	sramBytes       = 2 * units.MB
	dmaStallRateBps = 175e6
	// Host overheads: GM keeps the host almost out of the way (sum ~0.8 us,
	// Figure 3).
	sendOverhead  = 450 * units.Nanosecond
	recvOverhead  = 350 * units.Nanosecond
	overheadPerKB = 35 * units.Nanosecond
	wireLatency   = 100 * units.Nanosecond
	// switchCrossing for the Myrinet-2000 crossbar (cut-through).
	switchCrossing = 300 * units.Nanosecond
	// eagerMax is MPICH-GM's rendezvous threshold.
	eagerMax = 16 * 1024
	copyBW   = 1600 // MB/s staging memcpy
	// Registration (gm_register_memory) cost model.
	regPerOp    = 15 * units.Microsecond
	regPerPage  = 2200 * units.Nanosecond
	deregPerOp  = 6 * units.Microsecond
	deregPage   = 900 * units.Nanosecond
	pinCapPages = 32768
	// Memory: MPICH-GM pre-allocates a flat pool regardless of peers
	// (Figure 13).
	memFlat = 22 * units.MB
)

// gmRetry is GM's send-token reliability: a sent token is only returned by
// the peer's ACK; when the ACK timeout lapses the LANai resends at a fixed
// interval, and after the resend budget it marks the connection dead and
// completes the send with GM_SEND_TIMED_OUT.
var gmRetry = faults.RetryPolicy{Limit: 15, Interval: 200 * units.Microsecond}

// Network is a wired Myrinet cluster.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	topo  fabric.Topology
	nodes []*nodeHW
	met   *metrics.Registry
	inj   *faults.Injector
	rec   *msgtrace.Recorder

	// dynamic marks adaptive routing: paths are chosen per message and
	// must not be cached.
	dynamic bool
	// scale flips on domain mode: per-node engines, split transfers, and
	// the per-source picosecond skew that keeps sharded commit order equal
	// to serial dispatch order.
	scale bool
	// cfgErr carries a topology-validation failure to mpi.NewWorld
	// (dev.ConfigErrer); construction itself cannot return an error.
	cfgErr error
}

type nodeHW struct {
	bus   *bus.Bus
	lanai *sim.Station // shared firmware engine
	sdma  *stallPipe   // host->wire DMA
	rdma  *stallPipe   // wire->host DMA
	link  *fabric.Link

	// staging accounting for the SRAM model
	outTx int64
	outRx int64

	// acks counts GM reliability ACKs this node's LANai absorbed (nil-safe)
	acks *metrics.Counter
}

// stallPipe is a DMA engine whose per-chunk occupancy inflates while the
// SRAM staging pool is oversubscribed by bi-directional bulk traffic.
type stallPipe struct {
	st *sim.Station
	hw *nodeHW
}

func (s *stallPipe) Send(now sim.Time, n int64) (start, end sim.Time) {
	rate := units.BytesPerSecond(dmaRateBps)
	if min64(s.hw.outTx, s.hw.outRx) > sramBytes {
		rate = units.BytesPerSecond(dmaStallRateBps)
	}
	return s.st.Use(now, dmaPerChunk+rate.TimeFor(n))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// New wires a Myrinet network.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes < 1 {
		panic("gm: need at least one node")
	}
	if cfg.SwitchPorts == 0 {
		cfg.SwitchPorts = 8
	}
	n := &Network{eng: eng, cfg: cfg, inj: faults.NewInjector(cfg.Faults)}
	if cfg.Clos != nil {
		cc := *cfg.Clos
		if cc.LinkRate == 0 {
			cc.LinkRate = units.BytesPerSecond(linkRateBps)
		}
		if cc.Crossing == 0 {
			cc.Crossing = switchCrossing
		}
		if cc.WireLatency == 0 {
			cc.WireLatency = wireLatency
		}
		topo, err := fabric.NewClos("myri-clos", cc, cfg.Nodes)
		if err != nil {
			n.cfgErr = fmt.Errorf("gm: %w", err)
		} else {
			n.topo = topo
			n.dynamic = cc.Routing == fabric.Adaptive
			if cfg.Faults.HasElements() {
				if err := topo.SetElementFaults(cfg.Faults, eng); err != nil {
					n.cfgErr = fmt.Errorf("gm: %w", err)
				}
				// Element deaths invalidate cached paths: every message must
				// re-resolve its route so detection-time re-hashes take effect.
				n.dynamic = true
			}
		}
	} else {
		if cfg.Nodes > cfg.SwitchPorts {
			panic(fmt.Sprintf("gm: %d nodes exceed %d switch ports", cfg.Nodes, cfg.SwitchPorts))
		}
		n.topo = fabric.NewCrossbarTopology(fabric.NewSwitch("myrinet2000", fabric.SwitchConfig{
			Ports:    cfg.SwitchPorts,
			Crossing: switchCrossing,
			Rate:     units.BytesPerSecond(linkRateBps),
		}))
	}
	if cfg.Faults.HasElements() && cfg.Clos == nil {
		n.cfgErr = fmt.Errorf("gm: fault plan schedules fabric-element deaths but the topology is not a Clos")
	}
	n.announceElementDeaths()
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("myri%d", i)
		hw := &nodeHW{
			bus:   bus.New(name+"/bus", bus.PCIX64x133),
			lanai: sim.NewStation(name + "/lanai"),
			link: fabric.NewLink(name+"/link", fabric.LinkConfig{
				Rate:     units.BytesPerSecond(linkRateBps),
				PerChunk: 60 * units.Nanosecond,
				MinFrame: 64,
			}),
		}
		hw.sdma = &stallPipe{st: sim.NewStation(name + "/sdma"), hw: hw}
		hw.rdma = &stallPipe{st: sim.NewStation(name + "/rdma"), hw: hw}
		n.nodes = append(n.nodes, hw)
	}
	return n
}

// Name implements dev.Network.
func (n *Network) Name() string { return "Myri" }

// Topology exposes the wired fabric topology — a debug surface for tests
// that flip fabric-level verification knobs (e.g. fabric.(*Clos).SetRouteCache)
// on a built network.
func (n *Network) Topology() fabric.Topology { return n.topo }

// Engine implements dev.Network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Nodes implements dev.Network.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MinLinkLatency implements dev.LookaheadReporter: the cross-node latency
// floor is one wire hop.
func (n *Network) MinLinkLatency() sim.Time { return wireLatency }

// ShmemBelow implements dev.Network: MPICH-GM uses shared memory for all
// intra-node message sizes.
func (n *Network) ShmemBelow() int64 { return math.MaxInt64 }

// FaultPlan implements dev.FaultPlanner (nil when faults are off).
func (n *Network) FaultPlan() *faults.Plan { return n.inj.Plan() }

// Diameter implements dev.DiameterReporter.
func (n *Network) Diameter() int {
	if n.topo == nil {
		return 1
	}
	return fabric.DiameterOf(n.topo)
}

// DeadElement implements dev.ElementHealth: forwarded to the fabric, which
// knows which of the plan's element kills is in effect.
func (n *Network) DeadElement(now sim.Time) (string, int64, bool) {
	if eh, ok := n.topo.(interface {
		DeadElement(sim.Time) (string, int64, bool)
	}); ok {
		return eh.DeadElement(now)
	}
	return "", 0, false
}

// announceElementDeaths schedules one FlightElementDown incident per
// switch kill at its death instant, so a postmortem names the dead element
// even when no packet happened to ride it. Node crashes are announced by
// the MPI layer, which owns rank death.
func (n *Network) announceElementDeaths() {
	p := n.inj.Plan()
	if !p.HasElements() || n.cfgErr != nil || n.cfg.Clos == nil {
		return
	}
	uplinks := n.cfg.Clos.Uplinks()
	for _, k := range p.SwitchKills {
		code := msgtrace.ElemCode(msgtrace.ElemLeaf, k.Index)
		if k.Level >= 1 {
			code = msgtrace.ElemCode(msgtrace.ElemPlane, k.Index%uplinks)
		}
		at, repair := k.At, int64(k.RepairAt)
		c := code
		n.eng.At(at, func() {
			n.rec.Flight(msgtrace.FlightElementDown, at, -1, 0, msgtrace.StageHop, c, repair)
		})
	}
}

// AttachTracer implements dev.TraceAttacher.
func (n *Network) AttachTracer(rec *msgtrace.Recorder) { n.rec = rec }

// ConfigErr implements dev.ConfigErrer.
func (n *Network) ConfigErr() error { return n.cfgErr }

// Domains implements dev.DomainNetwork.
func (n *Network) Domains() *dev.Domains { return n.cfg.Domains }

// ActivateDomains implements dev.DomainNetwork: flips the network into
// domain (scale) mode. The GM send-token resend machinery reads fault
// verdicts at delivery time on the shared engine, so a fault plan refuses
// activation.
func (n *Network) ActivateDomains() bool {
	if n.cfg.Domains == nil || n.inj != nil {
		return false
	}
	n.scale = true
	return true
}

// engineFor returns the engine owning a node's device state: the shared
// engine in classic mode, the node's domain engine in scale mode.
func (n *Network) engineFor(node int) *sim.Engine {
	if !n.scale {
		return n.eng
	}
	return n.cfg.Domains.EngineFor(node)
}

// skew is the deterministic per-source-node latency perturbation of domain
// mode: one picosecond times (node+1), added to every cross-node hop so
// cross-shard commit order agrees with serial dispatch order at same-instant
// collisions (see the verbs twin for the full rationale).
func (n *Network) skew(node int) sim.Time {
	if !n.scale {
		return 0
	}
	return sim.Time(node + 1)
}

// ShmemConfig returns the intra-node channel parameters for MPICH-GM, whose
// shared-memory path has the lowest small-message cost of the three
// implementations (~1.3 us).
func (n *Network) ShmemConfig() shmem.Config {
	c := shmem.DefaultConfig()
	c.Handshake = 900 * units.Nanosecond
	return c
}

// InstrumentMetrics implements metrics.Instrumentable: per-node bus, LANai,
// DMA-engine and link counters plus device-level spans, switch port
// counters, and a GM-specific reliability-ACK count. Endpoints created
// afterwards bind protocol counters and pin-cache probes.
func (n *Network) InstrumentMetrics(m *metrics.Registry) {
	if m == nil {
		return
	}
	n.met = m
	for i, hw := range n.nodes {
		prefix := metrics.NodePrefix(i) + "nic"
		hw.bus.Instrument(m, i)
		m.ProbeCount(prefix+"/lanai_jobs", hw.lanai.Jobs)
		m.ProbeTime(prefix+"/lanai_busy_time", hw.lanai.BusyTime)
		m.ProbeTime(prefix+"/lanai_wait_time", hw.lanai.WaitTime)
		hw.lanai.RecordSpans(m, i, "firmware", "nic")
		for _, dma := range []struct {
			name string
			st   *sim.Station
		}{{"sdma", hw.sdma.st}, {"rdma", hw.rdma.st}} {
			m.ProbeCount(prefix+"/"+dma.name+"/jobs", dma.st.Jobs)
			m.ProbeTime(prefix+"/"+dma.name+"/busy_time", dma.st.BusyTime)
			m.ProbeTime(prefix+"/"+dma.name+"/wait_time", dma.st.WaitTime)
			dma.st.RecordSpans(m, i, dma.name, "nic")
		}
		hw.link.Instrument(m, i)
		hw.acks = m.Counter(prefix + "/acks")
	}
	// The star path carries switch output contention on the destination's
	// down-link (see fabric.Switch), so the crossbar's own port pipes never
	// run; multi-stage fabrics register their leaf-tier links here.
	if ti, ok := n.topo.(interface{ Instrument(*metrics.Registry) }); ok {
		ti.Instrument(m)
	}
	n.inj.Instrument(m)
}

// Utilizations implements dev.UtilizationReporter.
func (n *Network) Utilizations() []dev.Utilization {
	var out []dev.Utilization
	for _, hw := range n.nodes {
		out = append(out,
			dev.Utilization{Resource: hw.bus.Name(), Busy: hw.bus.BusyTime(), Jobs: hw.bus.Jobs()},
			dev.Utilization{Resource: hw.lanai.Name(), Busy: hw.lanai.BusyTime(), Jobs: hw.lanai.Jobs()},
			dev.Utilization{Resource: hw.sdma.st.Name(), Busy: hw.sdma.st.BusyTime(), Jobs: hw.sdma.st.Jobs()},
			dev.Utilization{Resource: hw.rdma.st.Name(), Busy: hw.rdma.st.BusyTime(), Jobs: hw.rdma.st.Jobs()},
			dev.Utilization{Resource: hw.link.Up().Name(), Busy: hw.link.Up().BusyTime(), Jobs: hw.link.Up().Jobs()},
			dev.Utilization{Resource: hw.link.Down().Name(), Busy: hw.link.Down().BusyTime(), Jobs: hw.link.Down().Jobs()},
		)
	}
	return out
}

// NewEndpoint implements dev.Network.
func (n *Network) NewEndpoint(node int) dev.Endpoint {
	if node < 0 || node >= len(n.nodes) {
		panic("gm: bad node index")
	}
	ep := &endpoint{
		net:  n,
		node: node,
		pin: memreg.NewPinCache(
			memreg.CostModel{PerOp: regPerOp, PerPage: regPerPage},
			memreg.CostModel{PerOp: deregPerOp, PerPage: deregPage},
			pinCapPages),
	}
	ep.nic = dev.NewNICCounters(n.met, node)
	ep.retries = n.met.Counter(metrics.NodePrefix(node) + "nic/retries")
	ep.retryErrors = n.met.Counter(metrics.NodePrefix(node) + "nic/retry_exhausted")
	dev.InstrumentPinCache(n.met, node, ep.pin)
	return ep
}

type endpoint struct {
	net  *Network
	node int
	pin  *memreg.PinCache
	nic  dev.NICCounters

	// sink receives permanent transfer failures (dev.FaultReporter).
	sink func(error)
	// onRetry observes each individual resend (dev.RetryReporter).
	onRetry     func()
	retries     *metrics.Counter
	retryErrors *metrics.Counter

	// peers holds the resolved per-destination send state: the staged path
	// through LANai, DMA engines and the fabric (static per (src, dst)
	// under deterministic routing) plus its source-side stage count. One
	// dense slice of lazily materialized blocks — the hot path is a single
	// index, no map lookups, and an endpoint in a 4k-node world only pays
	// for the peers it actually speaks to. Adaptive routing bypasses the
	// cache: the up-link choice is per message.
	peers []*peerState
}

// peerState is one destination's resolved send state.
type peerState struct {
	path      []fabric.PathStage
	srcStages int
}

// peer returns dst's state block, materializing it (and the index slice)
// on first contact.
func (ep *endpoint) peer(dst int) *peerState {
	if ep.peers == nil {
		ep.peers = make([]*peerState, len(ep.net.nodes))
	}
	p := ep.peers[dst]
	if p == nil {
		p = &peerState{}
		ep.peers[dst] = p
	}
	return p
}

// OnFault implements dev.FaultReporter.
func (ep *endpoint) OnFault(sink func(error)) { ep.sink = sink }

// OnRetry implements dev.RetryReporter.
func (ep *endpoint) OnRetry(observe func()) { ep.onRetry = observe }

// retried counts one resend and feeds the passive health observer.
func (ep *endpoint) retried() {
	ep.retries.Inc()
	if ep.onRetry != nil {
		ep.onRetry()
	}
}

// fail reports a permanent transfer failure to the registered sink, or
// raises it directly when the device is used without the MPI layer.
func (ep *endpoint) fail(err error) {
	ep.retryErrors.Inc()
	if ep.sink != nil {
		ep.sink(err)
		return
	}
	panic(err)
}

func (ep *endpoint) Node() int { return ep.node }

// EagerThreshold implements dev.Endpoint, honouring the config override.
func (ep *endpoint) EagerThreshold() int64 {
	if ep.net.cfg.EagerThreshold > 0 {
		return ep.net.cfg.EagerThreshold
	}
	return eagerMax
}
func (ep *endpoint) NICProgress() bool    { return false }
func (ep *endpoint) AcquireOnEager() bool { return false }
func (ep *endpoint) IssueStall() sim.Time { return 0 }

func (ep *endpoint) SendOverhead(size int64) sim.Time {
	return sendOverhead + sim.Time(size/units.KB)*overheadPerKB
}

func (ep *endpoint) RecvOverhead(size int64) sim.Time {
	return recvOverhead + sim.Time(size/units.KB)*overheadPerKB
}

func (ep *endpoint) CopyTime(size int64) sim.Time {
	return units.MBps(copyBW).TimeFor(size)
}

func (ep *endpoint) AcquireBuf(b memreg.Buf) sim.Time {
	return ep.pin.Acquire(b)
}

func (ep *endpoint) MemoryUsage(npeers int) int64 { return memFlat }

// PinCache exposes the registration cache for tests and diagnostics.
func (ep *endpoint) PinCache() *memreg.PinCache { return ep.pin }

// lanaiStage bills the shared firmware engine once per message; modelled as
// a Stage so it sits in the path like hardware.
type lanaiStage struct{ st *sim.Station }

func (l lanaiStage) Send(now sim.Time, n int64) (start, end sim.Time) {
	return l.st.Use(now, lanaiPerMsg)
}

// path returns the staged path to dst, assembled once per destination and
// cached in the peer block — except under adaptive routing, where the
// fabric picks the up-link per message and the path must be rebuilt.
func (ep *endpoint) path(dst int) []fabric.PathStage {
	p, _ := ep.resolved(dst)
	return p
}

// resolved returns the staged path to dst and its source-side stage count —
// bus, LANai, send-DMA and link up, plus whatever the topology keeps on the
// source leaf (TransferCut runs those on the source's domain engine). Both
// are cached in the peer block; adaptive routing rebuilds the path per
// message.
func (ep *endpoint) resolved(dst int) ([]fabric.PathStage, int) {
	if ep.net.dynamic && dst != ep.node {
		return ep.buildPath(dst), 4 + fabric.SrcStagesOf(ep.net.topo, ep.node, dst)
	}
	p := ep.peer(dst)
	if p.path == nil {
		p.path = ep.buildPath(dst)
		p.srcStages = 4 + fabric.SrcStagesOf(ep.net.topo, ep.node, dst)
	}
	return p.path, p.srcStages
}

// buildPath assembles the staged path to dst. The LANai engine appears once
// per side per message (envelope processing); payload chunks flow through
// the per-direction DMA engines and the link, with the topology's stages
// (none for the star crossbar, leaf links for a Clos) between them.
func (ep *endpoint) buildPath(dst int) []fabric.PathStage {
	src := ep.net.nodes[ep.node]
	if dst == ep.node {
		return []fabric.PathStage{
			{Stage: src.bus},
			{Stage: lanaiStage{src.lanai}},
			{Stage: src.sdma},
			{Stage: src.rdma},
			{Stage: lanaiStage{src.lanai}},
			{Stage: src.bus},
		}
	}
	d := ep.net.nodes[dst]
	between, downLat := ep.net.topo.Between(ep.node, dst)
	stages := []fabric.PathStage{
		{Stage: src.bus},
		{Stage: lanaiStage{src.lanai}},
		{Stage: src.sdma},
		{Stage: src.link.Up(), Latency: wireLatency + ep.net.skew(ep.node)},
	}
	stages = append(stages, between...)
	return append(stages,
		fabric.PathStage{Stage: d.link.Down(), Latency: downLat + wireLatency},
		fabric.PathStage{Stage: lanaiStage{d.lanai}},
		fabric.PathStage{Stage: d.rdma},
		fabric.PathStage{Stage: d.bus},
	)
}

func (ep *endpoint) transfer(dst int, size int64, bulk bool, deliver func()) {
	if ep.net.scale {
		ep.scaleTransfer(dst, size, bulk, deliver)
		return
	}
	eng := ep.net.eng
	src := ep.net.nodes[ep.node]
	dstHW := ep.net.nodes[dst]
	if bulk {
		src.outTx += size
		dstHW.outRx += size
	}
	// finish is the delivered-intact path: release SRAM staging and run
	// GM reliability — the receiving LANai generates an ACK that the
	// sending LANai must absorb.
	finish := func() {
		if bulk {
			src.outTx -= size
			dstHW.outRx -= size
		}
		dstHW.lanai.Use(eng.Now(), ackProcess)
		dstHW.acks.Inc()
		if dstHW != src {
			eng.Schedule(ackFlight, func() {
				src.lanai.Use(eng.Now(), ackProcess)
				src.acks.Inc()
			})
		}
		deliver()
	}
	rec := ep.net.rec
	tid, rail := rec.Cur(), rec.CurRail()
	inj := ep.net.inj
	if inj == nil || dst == ep.node {
		ep.wireAttempt(ep.path(dst), tid, rail, 0, size, eng.Now(), func(sim.Time) { finish() })
		return
	}
	start := eng.Now() + inj.NICStall(ep.node, eng.Now()) + inj.BusDelay(ep.node, eng.Now())
	// release undoes the staging claim when the transfer fails permanently.
	release := func() {
		if bulk {
			src.outTx -= size
			dstHW.outRx -= size
		}
	}
	// GM send-token reliability: a lost or damaged packet means no ACK;
	// the sending LANai times out and resends at a fixed interval. The
	// send token (and its SRAM staging) stays held across resends —
	// exactly why faulty links amplify the Figure 5 staging pressure —
	// and each resend costs the LANai a firmware timeout handler. Each
	// attempt re-resolves the route (the GM mapper's up*/down* route remap):
	// after the detection delay a resend re-hashes around a dead element,
	// while a detected dead end fails typed without burning resends.
	attempt := 1
	var try func(at sim.Time)
	try = func(at sim.Time) {
		if inj.NodeDeadDetected(dst, at) || inj.NodeDeadDetected(ep.node, at) {
			node := dst
			if inj.NodeDeadDetected(ep.node, at) {
				node = ep.node
			}
			release()
			ep.fail(&faults.NodeDownError{Node: node, At: at})
			return
		}
		path := ep.path(dst)
		fate := fabric.LastRouteOf(ep.net.topo)
		if fate.State == fabric.RoutePartitioned {
			release()
			ep.fail(&faults.PartitionError{Src: ep.node, Dst: dst, Element: fate.Element})
			return
		}
		ep.wireAttempt(path, tid, rail, uint8(attempt-1), size, at,
			func(end sim.Time) {
				v := faults.Drop // black-holed: structural loss, no PRNG draw
				if fate.State != fabric.RouteBlackhole {
					v = inj.VerdictExtra(ep.node, dst, end, fate.ExtraDrop)
				}
				if v == faults.Deliver {
					finish()
					return
				}
				if attempt > gmRetry.Limit {
					release()
					ep.fail(&faults.LinkError{Src: ep.node, Dst: dst,
						Attempts: attempt, Bytes: size, Proto: "GM send-token resend"})
					return
				}
				delay := gmRetry.Delay(attempt)
				attempt++
				ep.retried()
				rec.Flight(msgtrace.FlightRetransmit, end, ep.node, tid, msgtrace.StageWire, int64(attempt-1), int64(dst))
				rec.Span(tid, msgtrace.StageBackoff, ep.node, rail, uint8(attempt-1), -1, end, end+delay, size)
				eng.At(end+delay, func() {
					src.lanai.Use(eng.Now(), ackProcess)
					try(eng.Now())
				})
			})
	}
	try(start)
}

// scaleTransfer is the domain-mode transfer: fault-free by construction
// (activation refuses fault plans) and untraced, with the staged path split
// at the wire so each node's hardware state stays on its own engine. The
// SRAM staging and GM-reliability side effects that touch the peer node are
// routed through cross-domain hops instead of mutated in place:
//
//   - the receiver's outRx staging claim lands one wire flight after issue,
//   - the sender's ACK (LANai absorb + outTx release) lands one ack flight
//     after delivery,
//
// each carrying the originating node's skew so commit order stays a pure
// function of simulated time at every shard count.
func (ep *endpoint) scaleTransfer(dst int, size int64, bulk bool, deliver func()) {
	eng := ep.net.engineFor(ep.node)
	dstEng := ep.net.engineFor(dst)
	src := ep.net.nodes[ep.node]
	dstHW := ep.net.nodes[dst]
	if bulk {
		src.outTx += size
		if dstHW == src {
			dstHW.outRx += size
		} else {
			eng.ScheduleOn(dstEng, wireLatency+ep.net.skew(ep.node), func() {
				dstHW.outRx += size
			})
		}
	}
	path, srcN := ep.resolved(dst)
	fabric.TransferCut(eng, dstEng, path, srcN,
		size, fabric.ChunkFor(size), eng.Now(), func(sim.Time) {
			if bulk {
				dstHW.outRx -= size
			}
			dstHW.lanai.Use(dstEng.Now(), ackProcess)
			dstHW.acks.Inc()
			if dstHW == src {
				if bulk {
					src.outTx -= size
				}
			} else {
				dstEng.ScheduleOn(eng, ackFlight+ep.net.skew(dst), func() {
					if bulk {
						src.outTx -= size
					}
					src.lanai.Use(eng.Now(), ackProcess)
					src.acks.Inc()
				})
			}
			deliver()
		})
}

// wireAttempt runs one transfer attempt over the staged path, recording the
// attempt's wire span (and per-hop fabric detail) when the message is
// sampled; unsampled messages take the plain zero-extra-cost path.
func (ep *endpoint) wireAttempt(path []fabric.PathStage, tid msgtrace.ID, rail int8, attempt uint8, size int64, at sim.Time, done func(sim.Time)) {
	rec := ep.net.rec
	if rec.Sampled(tid) {
		inner := done
		done = func(end sim.Time) {
			rec.Span(tid, msgtrace.StageWire, ep.node, rail, attempt, -1, at, end, size)
			inner(end)
		}
		fabric.TransferTraced(ep.net.eng, path, size, fabric.ChunkFor(size), at,
			rec, tid, ep.node, rail, attempt, done)
		return
	}
	fabric.Transfer(ep.net.eng, path, size, fabric.ChunkFor(size), at, done)
}

// Eager implements dev.Endpoint (gm_send into a pre-posted receive buffer).
func (ep *endpoint) Eager(dst int, size int64, deliver func()) {
	ep.nic.Eager(size)
	ep.transfer(dst, size+32, false, deliver)
}

// Control implements dev.Endpoint.
func (ep *endpoint) Control(dst int, deliver func()) {
	ep.nic.Control()
	ep.transfer(dst, 64, false, deliver)
}

// Bulk implements dev.Endpoint (gm_directed_send, zero copy).
func (ep *endpoint) Bulk(dst int, size int64, deliver func()) {
	ep.nic.Bulk(size)
	ep.transfer(dst, size, true, deliver)
}

var _ dev.Network = (*Network)(nil)
var _ dev.Endpoint = (*endpoint)(nil)
