package trace

import (
	"fmt"
	"io"

	"mpinet/internal/units"
)

// EventKind classifies a timeline event.
type EventKind int

// Timeline event kinds, in the order a message usually produces them.
const (
	EvSendStart EventKind = iota // send initiated (eager issue or RTS)
	EvSendDone                   // send buffer released / rendezvous done
	EvRecvPost                   // receive posted
	EvArrive                     // envelope/payload arrived at the receiver
	EvRecvDone                   // receive completed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSendStart:
		return "send-start"
	case EvSendDone:
		return "send-done"
	case EvRecvPost:
		return "recv-post"
	case EvArrive:
		return "arrive"
	case EvRecvDone:
		return "recv-done"
	default:
		return "?"
	}
}

// Event is one timeline record. Peer is the remote world rank (or -1 for
// wildcards), Comm the communicator context.
type Event struct {
	At   units.Time
	Rank int
	Kind EventKind
	Peer int
	Tag  int
	Comm int
	Size int64
}

// Timeline collects message-level events from an MPI run — the simulation
// analogue of an MPE/jumpshot log. A zero Max keeps everything; otherwise
// collection stops after Max events (the run itself is unaffected) and
// Dropped counts what was discarded.
type Timeline struct {
	Max    int
	Events []Event

	// Dropped counts events discarded after Max was reached, so a
	// truncated timeline is visible rather than inferred.
	Dropped int
}

// Add appends an event, honouring Max.
func (t *Timeline) Add(e Event) {
	if t.Max > 0 && len(t.Events) >= t.Max {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Truncated reports whether events were dropped due to Max.
func (t *Timeline) Truncated() bool { return t.Dropped > 0 }

// Render writes the timeline as an aligned chronological listing.
func (t *Timeline) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-6s %-11s %-6s %-7s %-5s %s\n",
		"time", "rank", "event", "peer", "tag", "comm", "size")
	for _, e := range t.Events {
		peer := fmt.Sprint(e.Peer)
		if e.Peer < 0 {
			peer = "*"
		}
		tag := fmt.Sprint(e.Tag)
		if e.Tag < 0 {
			tag = "internal"
		}
		fmt.Fprintf(w, "%-14s %-6d %-11s %-6s %-7s %-5d %s\n",
			e.At.String(), e.Rank, e.Kind.String(), peer, tag, e.Comm,
			units.SizeString(e.Size))
	}
	if t.Dropped > 0 {
		fmt.Fprintf(w, "... (truncated: %d events dropped)\n", t.Dropped)
	}
}

// Stats summarizes the timeline: event counts per kind and the mean
// post-to-completion receive time.
func (t *Timeline) Stats() (counts map[EventKind]int, meanRecvWait units.Time) {
	counts = make(map[EventKind]int)
	type key struct{ rank, peer, tag, comm int }
	posts := make(map[key][]units.Time)
	var total units.Time
	var n int64
	for _, e := range t.Events {
		counts[e.Kind]++
		k := key{e.Rank, e.Peer, e.Tag, e.Comm}
		switch e.Kind {
		case EvRecvPost:
			posts[k] = append(posts[k], e.At)
		case EvRecvDone:
			if q := posts[k]; len(q) > 0 {
				total += e.At - q[0]
				posts[k] = q[1:]
				n++
			}
		}
	}
	if n > 0 {
		meanRecvWait = total / units.Time(n)
	}
	return counts, meanRecvWait
}
