package trace

import (
	"bytes"
	"strings"
	"testing"

	"mpinet/internal/units"
)

func TestTimelineAddAndMax(t *testing.T) {
	tl := &Timeline{Max: 3}
	for i := 0; i < 5; i++ {
		tl.Add(Event{At: units.Time(i), Rank: i, Kind: EvSendStart})
	}
	if len(tl.Events) != 3 || !tl.Truncated() || tl.Dropped != 2 {
		t.Fatalf("events=%d truncated=%v dropped=%d", len(tl.Events), tl.Truncated(), tl.Dropped)
	}
	unbounded := &Timeline{}
	for i := 0; i < 100; i++ {
		unbounded.Add(Event{})
	}
	if len(unbounded.Events) != 100 || unbounded.Truncated() {
		t.Fatal("unbounded timeline dropped events")
	}
}

func TestTimelineExactMaxBoundary(t *testing.T) {
	// Filling to exactly Max drops nothing; the Max+1'th add is the first
	// dropped event.
	tl := &Timeline{Max: 3}
	for i := 0; i < 3; i++ {
		tl.Add(Event{At: units.Time(i)})
	}
	if len(tl.Events) != 3 || tl.Truncated() || tl.Dropped != 0 {
		t.Fatalf("at exact Max: events=%d truncated=%v dropped=%d",
			len(tl.Events), tl.Truncated(), tl.Dropped)
	}
	tl.Add(Event{At: 3})
	if len(tl.Events) != 3 || !tl.Truncated() || tl.Dropped != 1 {
		t.Fatalf("past Max: events=%d truncated=%v dropped=%d",
			len(tl.Events), tl.Truncated(), tl.Dropped)
	}
}

func TestTimelineRenderReportsDropCount(t *testing.T) {
	tl := &Timeline{Max: 1}
	tl.Add(Event{})
	tl.Add(Event{})
	tl.Add(Event{})
	var b bytes.Buffer
	tl.Render(&b)
	if !strings.Contains(b.String(), "2 events dropped") {
		t.Fatalf("render must report the drop count:\n%s", b.String())
	}
}

func TestTimelineRender(t *testing.T) {
	tl := &Timeline{Max: 2}
	tl.Add(Event{At: units.FromMicros(1.5), Rank: 0, Kind: EvSendStart, Peer: 1, Tag: 7, Size: 4096})
	tl.Add(Event{At: units.FromMicros(9), Rank: 1, Kind: EvRecvDone, Peer: -1, Tag: -10, Size: 4096})
	tl.Add(Event{}) // dropped
	var b bytes.Buffer
	tl.Render(&b)
	out := b.String()
	for _, want := range []string{"send-start", "recv-done", "4KB", "*", "internal", "truncated"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSendStart, EvSendDone, EvRecvPost, EvArrive, EvRecvDone, EventKind(99)}
	want := []string{"send-start", "send-done", "recv-post", "arrive", "recv-done", "?"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestTimelineStats(t *testing.T) {
	tl := &Timeline{}
	tl.Add(Event{At: 100, Rank: 1, Kind: EvRecvPost, Peer: 0, Tag: 5})
	tl.Add(Event{At: 150, Rank: 1, Kind: EvArrive, Peer: 0, Tag: 5})
	tl.Add(Event{At: 300, Rank: 1, Kind: EvRecvDone, Peer: 0, Tag: 5})
	tl.Add(Event{At: 400, Rank: 1, Kind: EvRecvPost, Peer: 0, Tag: 5})
	tl.Add(Event{At: 500, Rank: 1, Kind: EvRecvDone, Peer: 0, Tag: 5})
	counts, mean := tl.Stats()
	if counts[EvRecvPost] != 2 || counts[EvArrive] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	if mean != 150 { // (200 + 100) / 2
		t.Fatalf("mean recv wait = %v, want 150", mean)
	}
}
