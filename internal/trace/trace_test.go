package trace

import (
	"testing"
	"testing/quick"

	"mpinet/internal/memreg"
)

func buf(addr, size int64) memreg.Buf { return memreg.Buf{Addr: addr, Size: size} }

func TestClassOfBoundaries(t *testing.T) {
	// All upper bounds are exclusive (Table 1's "2 KB–16 KB, 16 KB–1 MB"):
	// the exact boundary values 2K, 16K and 1M land in the higher class.
	cases := []struct {
		size int64
		want SizeClass
	}{
		{0, Below2K}, {2047, Below2K},
		{2048, To16K}, {16383, To16K},
		{16384, To1M}, {1<<20 - 1, To1M},
		{1 << 20, Above1M}, {1<<20 + 1, Above1M},
	}
	for _, c := range cases {
		if got := ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestSizeClassString(t *testing.T) {
	for cls, want := range map[SizeClass]string{
		Below2K: "<2K", To16K: "2K-16K", To1M: "16K-1M", Above1M: ">1M", SizeClass(9): "?",
	} {
		if cls.String() != want {
			t.Errorf("%d.String() = %q, want %q", cls, cls.String(), want)
		}
	}
}

func TestSendRecvAccounting(t *testing.T) {
	p := New()
	p.Send(buf(0, 100), false, false)
	p.Send(buf(4096, 5000), true, true)
	p.Recv(buf(0, 100), false, false)
	p.Recv(buf(8192, 200000), true, true)
	if p.TotalCalls != 4 || p.PtPCalls != 4 {
		t.Fatalf("calls: total=%d ptp=%d", p.TotalCalls, p.PtPCalls)
	}
	// Both ends count in the size histogram (Table 1 semantics).
	if p.SizeHist[Below2K] != 2 || p.SizeHist[To16K] != 1 || p.SizeHist[To1M] != 1 {
		t.Fatalf("hist: %v", p.SizeHist)
	}
	// Bytes accumulate on the send side only.
	if p.PtPBytes != 5100 || p.TotalBytes != 5100 {
		t.Fatalf("bytes: ptp=%d total=%d", p.PtPBytes, p.TotalBytes)
	}
	if p.IsendCalls != 1 || p.IrecvCalls != 1 || p.SendCalls != 1 || p.RecvCalls != 1 {
		t.Fatal("blocking/non-blocking split wrong")
	}
	if p.IntraCalls != 2 {
		t.Fatalf("intra calls = %d", p.IntraCalls)
	}
}

func TestCollectiveAccounting(t *testing.T) {
	p := New()
	p.Collective("Allreduce", 4096, buf(0, 4096))
	p.Collective("Allreduce", 4096, buf(0, 4096))
	p.Collective("Alltoall", 2<<20, buf(8192, 2<<20))
	if p.CollCalls != 3 || p.CollByName["Allreduce"] != 2 {
		t.Fatalf("collective counts: %v", p.CollByName)
	}
	if p.CollectiveCallShare() != 1.0 || p.CollectiveVolumeShare() != 1.0 {
		t.Fatal("pure-collective profile should have share 1.0")
	}
	if p.SizeHist[To16K] != 2 || p.SizeHist[Above1M] != 1 {
		t.Fatalf("collective size classes: %v", p.SizeHist)
	}
}

func TestReuseRates(t *testing.T) {
	p := New()
	b1, b2 := buf(0, 1000), buf(4096, 3000)
	p.Send(b1, false, false) // first use
	p.Send(b1, false, false) // reuse
	p.Send(b2, false, false) // first use
	p.Send(b1, false, false) // reuse
	if got := p.ReuseRate(); got != 0.5 {
		t.Fatalf("reuse rate = %v, want 0.5", got)
	}
	// Weighted: reused bytes = 2000 of 6000.
	if got := p.WeightedReuseRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("weighted reuse = %v, want ~1/3", got)
	}
}

func TestZeroSizeBuffersIgnoredForReuse(t *testing.T) {
	p := New()
	p.Send(buf(0, 0), false, false)
	p.Send(buf(0, 0), false, false)
	if p.BufferCalls != 0 {
		t.Fatal("zero-size buffers should not enter reuse stats")
	}
}

func TestAvgSizes(t *testing.T) {
	p := New()
	if p.AvgIsendSize() != 0 || p.AvgIrecvSize() != 0 {
		t.Fatal("empty profile averages should be 0")
	}
	p.Send(buf(0, 1000), false, true)
	p.Send(buf(4096, 3000), false, true)
	p.Recv(buf(0, 500), false, true)
	if p.AvgIsendSize() != 2000 || p.AvgIrecvSize() != 500 {
		t.Fatalf("averages: %d %d", p.AvgIsendSize(), p.AvgIrecvSize())
	}
}

func TestEmptyShares(t *testing.T) {
	p := New()
	if p.CollectiveCallShare() != 0 || p.CollectiveVolumeShare() != 0 ||
		p.IntraNodeCallShare() != 0 || p.IntraNodeVolumeShare() != 0 ||
		p.ReuseRate() != 0 || p.WeightedReuseRate() != 0 {
		t.Fatal("empty profile shares should be 0")
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a, b := New(), New()
	a.Send(buf(0, 100), true, false)
	a.Collective("Bcast", 64, buf(4096, 64))
	b.Send(buf(0, 5000), false, true)
	b.Recv(buf(0, 5000), false, false)
	b.Collective("Bcast", 64, buf(4096, 64))

	m := New()
	m.Merge(a)
	m.Merge(b)
	if m.TotalCalls != a.TotalCalls+b.TotalCalls {
		t.Fatal("TotalCalls not additive")
	}
	if m.CollByName["Bcast"] != 2 {
		t.Fatal("CollByName not merged")
	}
	var histSum int64
	for _, v := range m.SizeHist {
		histSum += v
	}
	// 2 sends + 1 recv + 2 collectives (receives count in the histogram).
	if histSum != 5 {
		t.Fatalf("merged histogram sum = %d, want 5", histSum)
	}
}

func TestMergeCollByName(t *testing.T) {
	a, b, c := New(), New(), New()
	a.Collective("Bcast", 64, buf(0, 64))
	a.Collective("Allreduce", 128, buf(0, 128))
	b.Collective("Bcast", 64, buf(0, 64))
	b.Collective("Alltoall", 1<<20, buf(0, 1<<20))
	c.Collective("Allreduce", 128, buf(0, 128))

	m := New()
	for _, p := range []*Profile{a, b, c} {
		m.Merge(p)
	}
	want := map[string]int64{"Bcast": 2, "Allreduce": 2, "Alltoall": 1}
	if len(m.CollByName) != len(want) {
		t.Fatalf("merged CollByName = %v, want %v", m.CollByName, want)
	}
	for name, n := range want {
		if m.CollByName[name] != n {
			t.Errorf("CollByName[%q] = %d, want %d", name, m.CollByName[name], n)
		}
	}
	// Merging an empty profile must not disturb the maps.
	m.Merge(New())
	if m.CollByName["Bcast"] != 2 {
		t.Fatal("merge with empty profile corrupted CollByName")
	}
	if m.CollCalls != 5 || m.CollBytes != 64+128+64+1<<20+128 {
		t.Fatalf("collective totals: calls=%d bytes=%d", m.CollCalls, m.CollBytes)
	}
}

// Property: shares always stay within [0,1] regardless of call sequence.
func TestSharesBoundedProperty(t *testing.T) {
	f := func(ops []byte) bool {
		p := New()
		for i, op := range ops {
			b := buf(int64(i)*4096, int64(op)+1)
			switch op % 4 {
			case 0:
				p.Send(b, op%2 == 0, op%3 == 0)
			case 1:
				p.Recv(b, op%2 == 0, op%3 == 0)
			case 2:
				p.Collective("X", b.Size, b)
			case 3:
				p.Send(b, false, false)
			}
		}
		for _, v := range []float64{
			p.ReuseRate(), p.WeightedReuseRate(), p.CollectiveCallShare(),
			p.CollectiveVolumeShare(), p.IntraNodeCallShare(), p.IntraNodeVolumeShare(),
		} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
