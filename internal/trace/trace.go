// Package trace is the simulation analogue of the MPICH logging interface
// the paper used for application profiling (extended, as the authors did, to
// record buffer-reuse patterns). One Profile per rank accumulates:
//
//   - the message-size distribution of MPI calls (Table 1),
//   - non-blocking call counts and average sizes (Table 3),
//   - buffer reuse rates, plain and byte-weighted (Table 4),
//   - collective call counts and volume share (Table 5),
//   - the intra-node share of point-to-point traffic (Table 6).
package trace

import "mpinet/internal/memreg"

// SizeClass buckets match Table 1 of the paper.
type SizeClass int

// Size classes.
const (
	Below2K SizeClass = iota // < 2 KB
	To16K                    // 2 KB – 16 KB
	To1M                     // 16 KB – 1 MB
	Above1M                  // > 1 MB
	NumSizeClasses
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case Below2K:
		return "<2K"
	case To16K:
		return "2K-16K"
	case To1M:
		return "16K-1M"
	case Above1M:
		return ">1M"
	default:
		return "?"
	}
}

// ClassOf buckets a byte count. All upper bounds are exclusive, matching
// Table 1's "2 KB–16 KB, 16 KB–1 MB" ranges: exactly 16 KB falls in the
// 16 KB–1 MB class and exactly 1 MB in the >1 MB class.
func ClassOf(size int64) SizeClass {
	switch {
	case size < 2*1024:
		return Below2K
	case size < 16*1024:
		return To16K
	case size < 1024*1024:
		return To1M
	default:
		return Above1M
	}
}

// Profile accumulates one rank's communication record.
type Profile struct {
	// Call counts.
	TotalCalls  int64
	SendCalls   int64
	RecvCalls   int64
	IsendCalls  int64
	IrecvCalls  int64
	IsendBytes  int64
	IrecvBytes  int64
	CollCalls   int64
	CollBytes   int64
	TotalBytes  int64
	SizeHist    [NumSizeClasses]int64
	CollByName  map[string]int64
	PtPCalls    int64
	PtPBytes    int64
	IntraCalls  int64
	IntraBytes  int64
	ReuseCalls  int64
	ReuseBytes  int64
	BufferCalls int64
	BufferBytes int64

	seen map[memreg.Buf]struct{}
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		CollByName: make(map[string]int64),
		seen:       make(map[memreg.Buf]struct{}),
	}
}

// noteBuffer records a buffer use for the reuse statistics.
func (p *Profile) noteBuffer(b memreg.Buf) {
	if b.Size == 0 {
		return
	}
	p.BufferCalls++
	p.BufferBytes += b.Size
	if _, ok := p.seen[b]; ok {
		p.ReuseCalls++
		p.ReuseBytes += b.Size
	} else {
		p.seen[b] = struct{}{}
	}
}

// Send records a blocking or non-blocking point-to-point send.
func (p *Profile) Send(b memreg.Buf, intraNode, nonblocking bool) {
	p.TotalCalls++
	p.PtPCalls++
	p.PtPBytes += b.Size
	p.TotalBytes += b.Size
	p.SizeHist[ClassOf(b.Size)]++
	if nonblocking {
		p.IsendCalls++
		p.IsendBytes += b.Size
	} else {
		p.SendCalls++
	}
	if intraNode {
		p.IntraCalls++
		p.IntraBytes += b.Size
	}
	p.noteBuffer(b)
}

// Recv records a blocking or non-blocking point-to-point receive. Receives
// count toward the call statistics and the size histogram — Table 1 of the
// paper counts both ends of each transfer — but byte-volume counters only
// accumulate on the send side so volumes are not double-counted.
func (p *Profile) Recv(b memreg.Buf, intraNode, nonblocking bool) {
	p.TotalCalls++
	p.PtPCalls++
	p.SizeHist[ClassOf(b.Size)]++
	if nonblocking {
		p.IrecvCalls++
		p.IrecvBytes += b.Size
	} else {
		p.RecvCalls++
	}
	if intraNode {
		p.IntraCalls++
	}
	p.noteBuffer(b)
}

// Collective records a collective call with this rank's buffer footprint.
func (p *Profile) Collective(name string, bytes int64, bufs ...memreg.Buf) {
	p.TotalCalls++
	p.CollCalls++
	p.CollBytes += bytes
	p.TotalBytes += bytes
	p.SizeHist[ClassOf(bytes)]++
	p.CollByName[name]++
	for _, b := range bufs {
		p.noteBuffer(b)
	}
}

// ReuseRate returns the fraction of buffer uses that hit a previously used
// buffer (Table 4, "% Reuse").
func (p *Profile) ReuseRate() float64 {
	if p.BufferCalls == 0 {
		return 0
	}
	return float64(p.ReuseCalls) / float64(p.BufferCalls)
}

// WeightedReuseRate returns the byte-weighted reuse rate (Table 4, "Wt %").
func (p *Profile) WeightedReuseRate() float64 {
	if p.BufferBytes == 0 {
		return 0
	}
	return float64(p.ReuseBytes) / float64(p.BufferBytes)
}

// CollectiveCallShare returns collective calls as a fraction of all MPI
// calls (Table 5, "% calls").
func (p *Profile) CollectiveCallShare() float64 {
	if p.TotalCalls == 0 {
		return 0
	}
	return float64(p.CollCalls) / float64(p.TotalCalls)
}

// CollectiveVolumeShare returns collective bytes as a fraction of all
// communicated bytes (Table 5, "% Volume").
func (p *Profile) CollectiveVolumeShare() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return float64(p.CollBytes) / float64(p.TotalBytes)
}

// IntraNodeCallShare returns the intra-node share of point-to-point calls
// (Table 6).
func (p *Profile) IntraNodeCallShare() float64 {
	if p.PtPCalls == 0 {
		return 0
	}
	return float64(p.IntraCalls) / float64(p.PtPCalls)
}

// IntraNodeVolumeShare returns the intra-node share of point-to-point bytes
// (Table 6).
func (p *Profile) IntraNodeVolumeShare() float64 {
	if p.PtPBytes == 0 {
		return 0
	}
	return float64(p.IntraBytes) / float64(p.PtPBytes)
}

// AvgIsendSize returns the average non-blocking send size (Table 3).
func (p *Profile) AvgIsendSize() int64 {
	if p.IsendCalls == 0 {
		return 0
	}
	return p.IsendBytes / p.IsendCalls
}

// AvgIrecvSize returns the average non-blocking receive size (Table 3).
func (p *Profile) AvgIrecvSize() int64 {
	if p.IrecvCalls == 0 {
		return 0
	}
	return p.IrecvBytes / p.IrecvCalls
}

// Merge folds other into p (for cluster-wide aggregates).
func (p *Profile) Merge(other *Profile) {
	p.TotalCalls += other.TotalCalls
	p.SendCalls += other.SendCalls
	p.RecvCalls += other.RecvCalls
	p.IsendCalls += other.IsendCalls
	p.IrecvCalls += other.IrecvCalls
	p.IsendBytes += other.IsendBytes
	p.IrecvBytes += other.IrecvBytes
	p.CollCalls += other.CollCalls
	p.CollBytes += other.CollBytes
	p.TotalBytes += other.TotalBytes
	p.PtPCalls += other.PtPCalls
	p.PtPBytes += other.PtPBytes
	p.IntraCalls += other.IntraCalls
	p.IntraBytes += other.IntraBytes
	p.ReuseCalls += other.ReuseCalls
	p.ReuseBytes += other.ReuseBytes
	p.BufferCalls += other.BufferCalls
	p.BufferBytes += other.BufferBytes
	for i := range p.SizeHist {
		p.SizeHist[i] += other.SizeHist[i]
	}
	for k, v := range other.CollByName {
		p.CollByName[k] += v
	}
}
