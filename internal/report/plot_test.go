package report

import (
	"strings"
	"testing"

	"mpinet/internal/microbench"
)

func plotFixture() Figure {
	return Figure{
		ID: "Fig T", Title: "Latency", XLabel: "Message Size (Bytes)", YLabel: "Time (us)",
		Curves: []microbench.Curve{
			{Label: "IBA", X: []int64{4, 64, 1024, 16384}, Y: []float64{6.8, 7.0, 8.4, 46}},
			{Label: "QSN", X: []int64{4, 64, 1024, 16384}, Y: []float64{4.6, 5.0, 10, 80}},
		},
	}
}

func TestPlotStructure(t *testing.T) {
	out := plotFixture().Plot(40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + legend
	if len(lines) != 14 {
		t.Fatalf("plot has %d lines, want 14:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*=IBA") || !strings.Contains(out, "o=QSN") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "80") {
		t.Fatalf("y-max label missing:\n%s", out)
	}
	if !strings.Contains(out, "4B") || !strings.Contains(out, "16KB") {
		t.Fatalf("x labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("no data points plotted:\n%s", out)
	}
}

func TestPlotHighestPointOnTopRow(t *testing.T) {
	out := plotFixture().Plot(40, 10)
	lines := strings.Split(out, "\n")
	top := lines[1] // first grid row
	if !strings.Contains(top, "o") {
		t.Fatalf("QSN's 80us maximum not on the top row: %q", top)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if out := (Figure{ID: "Fig E"}).Plot(30, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	// Single point, flat curve: must not divide by zero.
	f := Figure{ID: "Fig S", Curves: []microbench.Curve{{Label: "x", X: []int64{8}, Y: []float64{5}}}}
	out := f.Plot(5, 3) // forces the minimum dimensions too
	if !strings.Contains(out, "legend") {
		t.Fatalf("degenerate plot broken:\n%s", out)
	}
}

func TestPlotNodeAxis(t *testing.T) {
	f := Figure{
		ID: "Fig N", Title: "Memory", XLabel: "Nodes", YLabel: "MB",
		Curves: []microbench.Curve{{Label: "IBA", X: []int64{2, 4, 8}, Y: []float64{19, 30, 50}}},
	}
	out := f.Plot(30, 8)
	if !strings.Contains(out, "2") || !strings.Contains(out, "8") {
		t.Fatalf("node axis labels missing:\n%s", out)
	}
	if strings.Contains(out, "2B") {
		t.Fatalf("node axis mislabelled as bytes:\n%s", out)
	}
}
