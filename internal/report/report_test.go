package report

import (
	"strings"
	"testing"

	"mpinet/internal/microbench"
)

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID:     "Fig X",
		Title:  "Test",
		XLabel: "Message Size (Bytes)",
		YLabel: "Time (us)",
		Curves: []microbench.Curve{
			{Label: "IBA", X: []int64{4, 1024}, Y: []float64{6.8, 8.4}},
			{Label: "QSN", X: []int64{4, 1024}, Y: []float64{4.6}},
		},
	}
	out := f.Render()
	for _, want := range []string{"Fig X", "IBA", "QSN", "6.80", "1KB", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	out := Figure{ID: "Fig Y", Title: "Empty"}.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty figure render: %q", out)
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := Table{
		ID:     "Tab 1",
		Title:  "Sizes",
		Header: []string{"App", "Count"},
		Rows:   [][]string{{"IS", "14"}, {"S3D-150", "28836"}},
		Notes:  "per rank",
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "per rank") {
		t.Error("notes missing")
	}
	// Columns aligned: "Count" header starts at same offset as values.
	hIdx := strings.Index(lines[1], "Count")
	vIdx := strings.Index(lines[4], "28836")
	if hIdx != vIdx {
		t.Errorf("columns misaligned: header at %d, value at %d\n%s", hIdx, vIdx, out)
	}
}

func TestSpeedupNormalization(t *testing.T) {
	c := Speedup([]int{2, 4, 8}, []float64{100, 50, 25})
	if c.Y[0] != 2 {
		t.Fatalf("base speedup = %v, want 2", c.Y[0])
	}
	if c.Y[2] != 8 {
		t.Fatalf("ideal scaling speedup = %v, want 8", c.Y[2])
	}
	// Superlinear case rises above the ideal line.
	s := Speedup([]int{2, 8}, []float64{100, 20})
	if s.Y[1] <= 8 {
		t.Fatalf("superlinear speedup = %v, want > 8", s.Y[1])
	}
	if got := Speedup(nil, nil); len(got.Y) != 0 {
		t.Fatal("empty input should give empty curve")
	}
}

func TestComparisons(t *testing.T) {
	comps := []Comparison{
		{Name: "latency", Paper: 6.8, Sim: 6.7, Unit: "us"},
		{Name: "bandwidth", Paper: 841, Sim: 500, Unit: "MB/s"},
	}
	out := RenderComparisons("anchors", comps, 0.10)
	if strings.Count(out, "<-- off") != 1 {
		t.Errorf("expected exactly one out-of-tolerance flag:\n%s", out)
	}
	if comps[0].Delta() > 0 {
		t.Errorf("delta sign wrong: %v", comps[0].Delta())
	}
	if (Comparison{Paper: 0, Sim: 5}).Delta() != 0 {
		t.Error("zero paper value should yield zero delta")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, app := range AppOrder {
		if _, ok := PaperTable1[app]; !ok {
			t.Errorf("Table 1 missing %s", app)
		}
		if _, ok := PaperTable3[app]; !ok {
			t.Errorf("Table 3 missing %s", app)
		}
		if _, ok := PaperTable4[app]; !ok {
			t.Errorf("Table 4 missing %s", app)
		}
		if _, ok := PaperTable5[app]; !ok {
			t.Errorf("Table 5 missing %s", app)
		}
		if _, ok := PaperTable6[app]; !ok {
			t.Errorf("Table 6 missing %s", app)
		}
	}
	for app, times := range PaperTable2 {
		for net, ts := range times {
			if ts[2] == 0 {
				t.Errorf("Table 2 %s/%s missing the 8-node time", app, net)
			}
		}
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int64{"b": 1, "a": 2, "c": 3})
	if strings.Join(got, "") != "abc" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		XLabel: "Message Size (Bytes)",
		Curves: []microbench.Curve{
			{Label: "IBA 4", X: []int64{4, 1024}, Y: []float64{6.8, 8.4}},
			{Label: "QSN, odd\"label", X: []int64{4, 1024}, Y: []float64{4.6}},
		},
	}
	out := f.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `Message Size (Bytes),IBA 4,"QSN, odd""label"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "4,6.8,4.6" || lines[2] != "1024,8.4," {
		t.Fatalf("rows:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"App", "Time"}, Rows: [][]string{{"IS", "1.78"}}}
	out := tb.CSV()
	if out != "App,Time\nIS,1.78\n" {
		t.Fatalf("table csv = %q", out)
	}
}

func TestFigureCSVEmpty(t *testing.T) {
	out := Figure{XLabel: "X"}.CSV()
	if out != "X\n" {
		t.Fatalf("empty figure csv = %q", out)
	}
}
