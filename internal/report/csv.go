package report

import (
	"fmt"
	"strings"
)

// CSV renders the figure as comma-separated values: one row per X value,
// one column per curve — ready for external plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	cols := []string{csvEscape(f.XLabel)}
	for _, c := range f.Curves {
		cols = append(cols, csvEscape(c.Label))
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	if len(f.Curves) == 0 {
		return b.String()
	}
	for i := range f.Curves[0].X {
		row := []string{fmt.Sprint(f.Curves[0].X[i])}
		for _, c := range f.Curves {
			if i < len(c.Y) {
				row = append(row, fmt.Sprintf("%g", c.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		esc := make([]string, len(cells))
		for i, c := range cells {
			esc[i] = csvEscape(c)
		}
		b.WriteString(strings.Join(esc, ","))
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a field when it contains separators or quotes.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
