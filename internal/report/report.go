// Package report renders the reproduction's figures and tables as aligned
// text, including side-by-side paper-vs-simulated comparisons. It is the
// presentation layer behind cmd/mpibench, cmd/nasbench and cmd/paperrepro.
package report

import (
	"fmt"
	"sort"
	"strings"

	"mpinet/internal/microbench"
	"mpinet/internal/units"
)

// Figure is one of the paper's figures: a set of curves over a common
// X axis.
type Figure struct {
	ID     string // "Fig 1"
	Title  string
	XLabel string // "Message Size (Bytes)" or "Nodes"
	YLabel string // "Time (us)" or "Bandwidth (MB/s)"
	Curves []microbench.Curve
	Notes  string
}

// Render returns the figure as an aligned data table, which is how a
// text-only harness "draws" it.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	if len(f.Curves) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-12s", f.XLabel)
	for _, c := range f.Curves {
		fmt.Fprintf(&b, " %14s", c.Label)
	}
	fmt.Fprintf(&b, "   [%s]\n", f.YLabel)
	for i := range f.Curves[0].X {
		fmt.Fprintf(&b, "  %-12s", xLabel(f.Curves[0].X[i], f.XLabel))
		for _, c := range f.Curves {
			if i < len(c.Y) {
				fmt.Fprintf(&b, " %14.2f", c.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", f.Notes)
	}
	return b.String()
}

func xLabel(x int64, axis string) string {
	if strings.Contains(axis, "Bytes") {
		return units.SizeString(x)
	}
	return fmt.Sprint(x)
}

// Table is one of the paper's tables.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render returns the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

// Speedup converts execution times (indexed by process count) to speedups
// with the smallest count as the base, normalized the way Figures 18-23
// plot them: the 2-node base case sits at speedup 2, so superlinear scaling
// rises above the ideal line.
func Speedup(procs []int, times []float64) microbench.Curve {
	c := microbench.Curve{}
	if len(procs) == 0 || len(times) == 0 {
		return c
	}
	base := float64(procs[0]) * times[0]
	for i := range procs {
		c.X = append(c.X, int64(procs[i]))
		c.Y = append(c.Y, base/times[i])
	}
	return c
}

// Comparison is one paper-vs-simulated anchor check.
type Comparison struct {
	Name  string
	Paper float64
	Sim   float64
	Unit  string
}

// Delta returns the relative error of the simulation against the paper.
func (c Comparison) Delta() float64 {
	if c.Paper == 0 {
		return 0
	}
	return (c.Sim - c.Paper) / c.Paper
}

// RenderComparisons formats anchor checks, flagging deltas over the
// tolerance.
func RenderComparisons(title string, comps []Comparison, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := 0
	for _, c := range comps {
		if len(c.Name) > w {
			w = len(c.Name)
		}
	}
	for _, c := range comps {
		flag := ""
		if d := c.Delta(); d > tol || d < -tol {
			flag = "  <-- off"
		}
		fmt.Fprintf(&b, "  %-*s  paper %10.2f  sim %10.2f  %-6s (%+.1f%%)%s\n",
			w, c.Name, c.Paper, c.Sim, c.Unit, c.Delta()*100, flag)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (deterministic rendering).
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
