package report

// Reference values transcribed from the paper (Liu et al., SC'03). Figures
// are quoted where the text states exact numbers; table data is complete.
// These drive the paper-vs-simulated comparisons in EXPERIMENTS.md.

// PaperMicro holds the micro-benchmark anchors the paper's text quotes
// (Section 3). Keys: metric name -> network -> value.
var PaperMicro = map[string]map[string]float64{
	"latency_4B_us":        {"IBA": 6.8, "Myri": 6.7, "QSN": 4.6},
	"peak_bw_MBs":          {"IBA": 841, "Myri": 235, "QSN": 308},
	"overhead_us":          {"IBA": 1.7, "Myri": 0.8, "QSN": 3.3},
	"bidir_latency_us":     {"IBA": 7.0, "Myri": 10.1, "QSN": 7.4},
	"bidir_bw_MBs":         {"IBA": 900, "Myri": 473, "QSN": 375},
	"intra_latency_us":     {"IBA": 1.6, "Myri": 1.3},
	"alltoall_small_us":    {"IBA": 31, "Myri": 36, "QSN": 67},
	"allreduce_small_us":   {"IBA": 46, "Myri": 35, "QSN": 28},
	"iba_pci_bw_MBs":       {"IBA-PCI": 378},
	"iba_pci_latency_d_us": {"IBA-PCI": 0.6},
}

// PaperTable2 is the paper's Table 2: class B execution times in seconds on
// the 8-node OSU cluster, by network and node count. A zero means the paper
// has no entry (FT does not fit on 2 nodes).
var PaperTable2 = map[string]map[string][3]float64{
	"IS":      {"IBA": {6.73, 3.30, 1.78}, "Myri": {7.86, 4.99, 2.89}, "QSN": {7.04, 4.71, 2.47}},
	"CG":      {"IBA": {132.26, 81.64, 28.68}, "Myri": {135.76, 74.36, 29.65}, "QSN": {135.05, 73.10, 30.12}},
	"MG":      {"IBA": {23.60, 13.41, 5.81}, "Myri": {25.77, 14.87, 6.29}, "QSN": {24.07, 13.75, 6.04}},
	"LU":      {"IBA": {648.53, 319.57, 165.53}, "Myri": {708.43, 338.70, 170.70}, "QSN": {667.30, 314.55, 168.18}},
	"FT":      {"IBA": {0, 75.50, 37.92}, "Myri": {0, 82.74, 41.40}, "QSN": {0, 81.89, 43.23}},
	"S3D-50":  {"IBA": {13.58, 7.18, 3.59}, "Myri": {13.33, 6.96, 3.57}, "QSN": {14.94, 7.37, 4.38}},
	"S3D-150": {"IBA": {346.43, 179.35, 91.43}, "Myri": {339.22, 176.94, 89.66}, "QSN": {343.60, 177.66, 95.99}},
}

// Table2Procs are the process counts of Table 2's columns.
var Table2Procs = [3]int{2, 4, 8}

// PaperTable1 is the message-size distribution per process (Table 1):
// counts of point-to-point and collective calls in the four size classes
// <2K, 2K-16K, 16K-1M, >1M.
var PaperTable1 = map[string][4]int64{
	"IS":      {14, 11, 0, 11},
	"CG":      {16113, 0, 11856, 0},
	"MG":      {1607, 630, 3702, 0},
	"LU":      {100021, 0, 1008, 0},
	"FT":      {24, 0, 0, 22},
	"SP":      {9, 0, 9636, 0},
	"BT":      {9, 0, 4836, 0},
	"S3D-50":  {19236, 0, 0, 0},
	"S3D-150": {28836, 28800, 0, 0},
}

// PaperTable3 is the non-blocking call profile (Table 3): Isend count and
// average size, Irecv count and average size.
var PaperTable3 = map[string][4]int64{
	"IS":      {0, 0, 0, 0},
	"CG":      {0, 0, 13984, 63591},
	"MG":      {0, 0, 2922, 270400},
	"LU":      {0, 0, 508, 311692},
	"FT":      {0, 0, 0, 0},
	"SP":      {4818, 263970, 4818, 263970},
	"BT":      {2418, 293108, 2418, 293108},
	"S3D-50":  {0, 0, 0, 0},
	"S3D-150": {0, 0, 0, 0},
}

// PaperTable4 is the buffer-reuse profile (Table 4): plain and
// byte-weighted reuse percentages.
var PaperTable4 = map[string][2]float64{
	"IS":      {81.08, 27.40},
	"CG":      {99.99, 99.98},
	"MG":      {99.80, 99.83},
	"LU":      {99.99, 99.80},
	"FT":      {86.00, 91.30},
	"SP":      {99.92, 99.89},
	"BT":      {99.87, 99.83},
	"S3D-50":  {99.96, 99.99},
	"S3D-150": {99.99, 99.99},
}

// PaperTable5 is the collective-call profile (Table 5): number of
// collective calls, percentage of all MPI calls, percentage of
// communication volume.
var PaperTable5 = map[string][3]float64{
	"IS":      {35, 97.22, 100.00},
	"CG":      {2, 0.01, 0.00},
	"MG":      {101, 1.70, 0.03},
	"LU":      {18, 0.02, 0.00},
	"FT":      {47, 100.00, 100.00},
	"SP":      {11, 0.09, 0.02},
	"BT":      {11, 0.22, 0.01},
	"S3D-50":  {39, 0.20, 0.00},
	"S3D-150": {39, 0.07, 0.00},
}

// PaperTable6 is the intra-node point-to-point profile for 16 processes on
// 8 nodes with block mapping (Table 6): total calls across ranks,
// percentage of calls, percentage of volume.
var PaperTable6 = map[string][3]float64{
	"IS":      {16, 100.00, 100.00},
	"CG":      {192128, 42.93, 33.41},
	"MG":      {14912, 16.25, 1.43},
	"LU":      {804044, 33.16, 21.89},
	"FT":      {0, 0.00, 0.00},
	"SP":      {70608, 16.41, 16.26},
	"BT":      {25760, 16.31, 16.21},
	"S3D-50":  {153600, 33.29, 33.11},
	"S3D-150": {460800, 33.32, 33.47},
}

// AppOrder is the paper's reporting order for applications.
var AppOrder = []string{"IS", "CG", "MG", "LU", "FT", "SP", "BT", "S3D-50", "S3D-150"}
