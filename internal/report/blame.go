package report

// blame.go renders the message-tracing layer's critical-path analysis
// (msgtrace.Blame) in two forms: a machine-readable JSON document with a
// fixed field order and integer-picosecond times, and an aligned text
// summary in the style of the other report tables. Both are deterministic:
// identical runs produce byte-identical output at any -j.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mpinet/internal/msgtrace"
	"mpinet/internal/units"
)

// BlameCatJSON is one category's share of a decomposition. Times are
// integer picoseconds (the simulator's native unit) so the JSON carries no
// float rounding.
type BlameCatJSON struct {
	Category string `json:"category"`
	Ps       int64  `json:"ps"`
}

// BlameMsgJSON is one message's envelope and per-category decomposition.
// The categories sum exactly to e2e_ps.
type BlameMsgJSON struct {
	ID    uint64         `json:"id"`
	Src   int32          `json:"src"`
	Dst   int32          `json:"dst"`
	Tag   int32          `json:"tag"`
	Bytes int64          `json:"bytes"`
	Kind  string         `json:"kind"`
	Start int64          `json:"start_ps"`
	End   int64          `json:"end_ps"`
	E2E   int64          `json:"e2e_ps"`
	Cats  []BlameCatJSON `json:"categories"`
}

// BlameFailureJSON names the frozen failure of an aborted run.
type BlameFailureJSON struct {
	Why   string `json:"why"`
	At    int64  `json:"at_ps"`
	Rank  int    `json:"rank"`
	Stage string `json:"stage"`
	MsgID uint64 `json:"msg_id"`
}

// BlameJSON is the machine-readable blame report.
type BlameJSON struct {
	Messages  int               `json:"messages"`
	Completed int               `json:"completed"`
	Spans     int               `json:"spans"`
	Total     int64             `json:"total_ps"`
	Cats      []BlameCatJSON    `json:"categories"`
	Slowest   []BlameMsgJSON    `json:"slowest"`
	Critical  []BlameMsgJSON    `json:"critical_path"`
	Failure   *BlameFailureJSON `json:"failure,omitempty"`
}

func blameCats(cats [msgtrace.NumCategories]units.Time) []BlameCatJSON {
	out := make([]BlameCatJSON, 0, msgtrace.NumCategories)
	for c := msgtrace.Category(0); c < msgtrace.NumCategories; c++ {
		out = append(out, BlameCatJSON{Category: c.String(), Ps: int64(cats[c])})
	}
	return out
}

func blameMsg(m msgtrace.MsgBlame) BlameMsgJSON {
	return BlameMsgJSON{
		ID: uint64(m.ID), Src: m.Src, Dst: m.Dst, Tag: m.Tag,
		Bytes: m.Bytes, Kind: m.Kind.String(),
		Start: int64(m.Start), End: int64(m.End), E2E: int64(m.E2E()),
		Cats: blameCats(m.Cats),
	}
}

// BlameReport converts an analysis into its JSON form.
func BlameReport(b *msgtrace.Blame) BlameJSON {
	out := BlameJSON{
		Messages:  b.Messages,
		Completed: b.Completed,
		Spans:     b.Spans,
		Total:     int64(b.Total),
		Cats:      blameCats(b.Cats),
		Slowest:   make([]BlameMsgJSON, 0, len(b.TopK)),
		Critical:  make([]BlameMsgJSON, 0, len(b.Critical)),
	}
	for _, m := range b.TopK {
		out.Slowest = append(out.Slowest, blameMsg(m))
	}
	for _, m := range b.Critical {
		out.Critical = append(out.Critical, blameMsg(m))
	}
	if f := b.Failure; f != nil {
		out.Failure = &BlameFailureJSON{
			Why: f.Why, At: int64(f.At), Rank: f.Rank,
			Stage: f.Stage.String(), MsgID: uint64(f.MsgID),
		}
	}
	return out
}

// WriteBlameJSON writes the report as indented JSON. Field order is fixed
// by the structs, times are integer picoseconds, and slices come from
// deterministic analysis — identical runs produce byte-identical files.
func WriteBlameJSON(w io.Writer, b *msgtrace.Blame) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BlameReport(b))
}

// RenderBlame formats the analysis as an aligned text summary: the
// aggregate category split, the slowest messages, the critical path, and
// the failure (if the run froze the flight recorder).
func RenderBlame(b *msgtrace.Blame) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Blame report: %d messages traced, %d completed, %d spans\n",
		b.Messages, b.Completed, b.Spans)
	if f := b.Failure; f != nil {
		fmt.Fprintf(&sb, "  FAILURE at %v: %s\n", f.At, f.Why)
		fmt.Fprintf(&sb, "    blamed rank %d, stage %s", f.Rank, f.Stage)
		if f.MsgID != 0 {
			fmt.Fprintf(&sb, ", message %#x (rank %d seq %d)",
				uint64(f.MsgID), f.MsgID.Rank(), f.MsgID.Seq())
		}
		sb.WriteByte('\n')
	}
	if b.Completed == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  end-to-end total %v across %d messages\n", b.Total, b.Completed)
	for c := msgtrace.Category(0); c < msgtrace.NumCategories; c++ {
		t := b.Cats[c]
		if t == 0 {
			continue
		}
		share := 100 * float64(t) / float64(b.Total)
		fmt.Fprintf(&sb, "    %-11s %12v  %5.1f%%\n", c, t, share)
	}
	if len(b.TopK) > 0 {
		fmt.Fprintf(&sb, "  slowest %d:\n", len(b.TopK))
		for i, m := range b.TopK {
			fmt.Fprintf(&sb, "    #%d %s\n", i+1, blameLine(m))
		}
	}
	if len(b.Critical) > 1 {
		fmt.Fprintf(&sb, "  critical path (%d links, last first):\n", len(b.Critical))
		for _, m := range b.Critical {
			fmt.Fprintf(&sb, "    %s\n", blameLine(m))
		}
	}
	return sb.String()
}

// blameLine is one message's one-line summary: envelope, end-to-end time,
// and its dominant categories.
func blameLine(m msgtrace.MsgBlame) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rank%d->rank%d %s %s e2e %v (",
		m.Src, m.Dst, m.Kind, units.SizeString(m.Bytes), m.E2E())
	first := true
	for c := msgtrace.Category(0); c < msgtrace.NumCategories; c++ {
		if m.Cats[c] == 0 {
			continue
		}
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%s %v", c, m.Cats[c])
	}
	sb.WriteByte(')')
	return sb.String()
}
