package report

import (
	"fmt"
	"math"
	"strings"

	"mpinet/internal/units"
)

// plotSymbols mark curves in ASCII plots, in curve order.
var plotSymbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// Plot renders the figure as an ASCII chart: logarithmic X (message sizes),
// linear Y, one symbol per curve. Width and height are the plot area in
// characters; sensible minimums are enforced.
func (f Figure) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var pts int
	for _, c := range f.Curves {
		pts += len(c.Y)
	}
	if pts == 0 {
		return f.ID + ": (no data)\n"
	}

	// Ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, c := range f.Curves {
		for i := range c.Y {
			x := float64(c.X[i])
			if x <= 0 {
				x = 1
			}
			lx := math.Log2(x)
			xmin = math.Min(xmin, lx)
			xmax = math.Max(xmax, lx)
			ymin = math.Min(ymin, c.Y[i])
			ymax = math.Max(ymax, c.Y[i])
		}
	}
	if ymin > 0 {
		ymin = 0 // anchor at zero like the paper's axes
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, sym byte) {
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		if grid[row][col] != ' ' && grid[row][col] != sym {
			grid[row][col] = '?' // overlapping curves
			return
		}
		grid[row][col] = sym
	}
	for ci, c := range f.Curves {
		sym := plotSymbols[ci%len(plotSymbols)]
		for i := range c.Y {
			x := float64(c.X[i])
			if x <= 0 {
				x = 1
			}
			put(math.Log2(x), c.Y[i], sym)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s  [%s vs %s, log-x]\n", f.ID, f.Title, f.YLabel, f.XLabel)
	topLabel := fmt.Sprintf("%.4g", ymax)
	botLabel := fmt.Sprintf("%.4g", ymin)
	lw := len(topLabel)
	if len(botLabel) > lw {
		lw = len(botLabel)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", lw)
		if r == 0 {
			label = fmt.Sprintf("%*s", lw, topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", lw, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", lw), strings.Repeat("-", width))
	lo := units.SizeString(int64(math.Exp2(xmin)))
	hi := units.SizeString(int64(math.Exp2(xmax)))
	if !strings.Contains(f.XLabel, "Bytes") {
		lo = fmt.Sprintf("%.0f", math.Exp2(xmin))
		hi = fmt.Sprintf("%.0f", math.Exp2(xmax))
	}
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", lw), lo, strings.Repeat(" ", gap), hi)
	var legend []string
	for ci, c := range f.Curves {
		legend = append(legend, fmt.Sprintf("%c=%s", plotSymbols[ci%len(plotSymbols)], c.Label))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", lw), strings.Join(legend, "  "))
	return b.String()
}
