// Package bus models the host I/O bus (PCI 64/66 and PCI-X 64/133) that
// connects NICs to host memory.
//
// Both generations are shared, half-duplex buses: DMA reads and writes in
// both directions serialize on the same wires. This single fact produces two
// of the paper's headline observations without further tuning — InfiniBand's
// bi-directional bandwidth saturating near 900 MB/s on PCI-X (Figure 5), and
// Quadrics' uni-directional bandwidth being bus-bound at ~308 MB/s on plain
// PCI (Figure 2).
//
// A transfer is billed as a sequence of burst transactions, each paying an
// arbitration/addressing overhead before moving data at the bus's raw rate.
// Burst overhead is what separates theoretical bandwidth (1024 MB/s PCI-X,
// 512 MB/s PCI) from delivered bandwidth.
package bus

import (
	"mpinet/internal/metrics"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Kind selects a bus generation.
type Kind int

const (
	// PCIX64x133 is 64-bit 133 MHz PCI-X: 1064 MB/s raw.
	PCIX64x133 Kind = iota
	// PCI64x66 is 64-bit 66 MHz PCI: 532 MB/s raw.
	PCI64x66
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PCIX64x133:
		return "PCI-X 64/133"
	case PCI64x66:
		return "PCI 64/66"
	default:
		return "unknown-bus"
	}
}

// Config holds the physical parameters of a bus generation.
type Config struct {
	Raw      units.BytesPerSecond // wire data rate during a burst
	Burst    int64                // bytes moved per transaction
	PerBurst sim.Time             // arbitration + address phase per transaction
}

// Params returns the calibrated configuration for a bus kind.
//
// Per-burst overheads are calibrated so delivered DMA bandwidth lands where
// the paper measured it: PCI-X sustains ~900 MB/s of the 1024 theoretical
// (InfiniBand bi-directional ceiling), PCI sustains ~390 MB/s of 512
// (Quadrics' bus budget: 308 MB/s uni-directional MPI on top of it, 375
// bi-directional).
func Params(k Kind) Config {
	switch k {
	case PCIX64x133:
		return Config{
			Raw:      units.BytesPerSecond(8 * 133e6), // 64-bit @ 133MHz
			Burst:    2048,
			PerBurst: 260 * units.Nanosecond,
		}
	case PCI64x66:
		return Config{
			Raw:      units.BytesPerSecond(8 * 66e6), // 64-bit @ 66MHz
			Burst:    512,
			PerBurst: 330 * units.Nanosecond,
		}
	default:
		panic("bus: unknown kind")
	}
}

// Bus is one host's I/O bus instance: a single FIFO station shared by every
// DMA in either direction.
type Bus struct {
	kind  Kind
	cfg   Config
	st    *sim.Station
	bytes int64 // cumulative DMA payload
}

// New returns a bus of the given kind for one host.
func New(name string, k Kind) *Bus {
	return &Bus{kind: k, cfg: Params(k), st: sim.NewStation(name)}
}

// Kind reports the bus generation.
func (b *Bus) Kind() Kind { return b.kind }

// occupancy returns the bus time consumed by a DMA of n bytes.
func (b *Bus) occupancy(n int64) sim.Time {
	if n <= 0 {
		return b.cfg.PerBurst
	}
	bursts := (n + b.cfg.Burst - 1) / b.cfg.Burst
	return sim.Time(bursts)*b.cfg.PerBurst + b.cfg.Raw.TimeFor(n)
}

// DMA submits a transfer of n bytes at time now and returns its occupancy
// interval. Both directions share the bus, so callers need not distinguish
// read from write.
func (b *Bus) DMA(now sim.Time, n int64) (start, end sim.Time) {
	if n > 0 {
		b.bytes += n
	}
	b.st.NoteSize(n)
	return b.st.Use(now, b.occupancy(n))
}

// Send implements the fabric pipeline Stage interface: a DMA chunk.
func (b *Bus) Send(now sim.Time, n int64) (start, end sim.Time) {
	return b.DMA(now, n)
}

// Effective returns the delivered bandwidth for back-to-back transfers of n
// bytes — useful for calibration tests and documentation.
func (b *Bus) Effective(n int64) units.BytesPerSecond {
	occ := b.occupancy(n)
	return units.BytesPerSecond(float64(n) / occ.Seconds())
}

// BusyTime reports cumulative bus occupancy.
func (b *Bus) BusyTime() sim.Time { return b.st.BusyTime() }

// Jobs reports how many DMA transactions the bus has served.
func (b *Bus) Jobs() int64 { return b.st.Jobs() }

// Name returns the diagnostic name.
func (b *Bus) Name() string { return b.st.Name() }

// Bytes reports cumulative DMA payload moved over the bus.
func (b *Bus) Bytes() int64 { return b.bytes }

// WaitTime reports cumulative DMA queueing delay (bus contention).
func (b *Bus) WaitTime() sim.Time { return b.st.WaitTime() }

// Instrument registers the bus's DMA count, byte volume, occupancy and
// contention time under nodeN/bus/..., and arms per-DMA span recording so
// bus activity shows up as a lane in the Chrome trace. Probes are read at
// snapshot time; the DMA path cost is one nil check.
func (b *Bus) Instrument(m *metrics.Registry, node int) {
	if m == nil {
		return
	}
	prefix := metrics.NodePrefix(node) + "bus"
	m.ProbeCount(prefix+"/dma_ops", b.Jobs)
	m.ProbeCount(prefix+"/dma_bytes", b.Bytes)
	m.ProbeTime(prefix+"/busy_time", b.BusyTime)
	m.ProbeTime(prefix+"/wait_time", b.WaitTime)
	b.st.RecordSpans(m, node, "dma", "bus")
}
