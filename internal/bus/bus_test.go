package bus

import (
	"testing"

	"mpinet/internal/units"
)

func TestEffectiveBandwidthPCIX(t *testing.T) {
	b := New("pcix", PCIX64x133)
	eff := b.Effective(256 * units.KB).InMBps()
	// Delivered PCI-X bandwidth should land in the ~850-950 MB/s range the
	// paper's InfiniBand results imply.
	if eff < 850 || eff > 960 {
		t.Fatalf("PCI-X effective bandwidth = %.0f MB/s, want ~900", eff)
	}
	raw := Params(PCIX64x133).Raw.InMBps()
	if eff >= raw {
		t.Fatalf("effective %.0f >= raw %.0f", eff, raw)
	}
}

func TestEffectiveBandwidthPCI(t *testing.T) {
	b := New("pci", PCI64x66)
	eff := b.Effective(256 * units.KB).InMBps()
	// Plain PCI should deliver ~380-420 MB/s: enough that Quadrics' 308 MB/s
	// MPI peak and InfiniBand-on-PCI's 378 MB/s peak are bus-credible.
	if eff < 370 || eff > 430 {
		t.Fatalf("PCI effective bandwidth = %.0f MB/s, want ~390", eff)
	}
}

func TestDMASerializesBothDirections(t *testing.T) {
	b := New("pcix", PCIX64x133)
	// Two simultaneous 1MB DMAs (one per direction) must serialize: the
	// second starts when the first ends.
	_, end1 := b.DMA(0, units.MB)
	start2, end2 := b.DMA(0, units.MB)
	if start2 != end1 {
		t.Fatalf("second DMA started at %v, want %v", start2, end1)
	}
	if end2 <= end1 {
		t.Fatalf("second DMA end %v not after first %v", end2, end1)
	}
}

func TestSmallDMABurstOverheadDominates(t *testing.T) {
	b := New("pcix", PCIX64x133)
	cfg := Params(PCIX64x133)
	_, end := b.DMA(0, 8)
	if end < cfg.PerBurst {
		t.Fatalf("8-byte DMA took %v, below one burst overhead %v", end, cfg.PerBurst)
	}
	// One burst of overhead only.
	if end > cfg.PerBurst+cfg.Raw.TimeFor(8)+1 {
		t.Fatalf("8-byte DMA took %v, want about %v", end, cfg.PerBurst+cfg.Raw.TimeFor(8))
	}
}

func TestKindString(t *testing.T) {
	if PCIX64x133.String() != "PCI-X 64/133" || PCI64x66.String() != "PCI 64/66" {
		t.Fatal("unexpected Kind strings")
	}
}

func TestPCIXFasterThanPCI(t *testing.T) {
	px := New("pcix", PCIX64x133)
	pc := New("pci", PCI64x66)
	for _, n := range []int64{4 * units.KB, 64 * units.KB, units.MB} {
		if px.Effective(n) <= pc.Effective(n) {
			t.Fatalf("PCI-X not faster than PCI at %d bytes", n)
		}
	}
}

func TestZeroByteDMAStillCostsABurst(t *testing.T) {
	b := New("x", PCIX64x133)
	_, end := b.DMA(0, 0)
	if end != Params(PCIX64x133).PerBurst {
		t.Fatalf("zero-byte DMA occupancy %v, want one burst overhead", end)
	}
}

func TestSendIsDMA(t *testing.T) {
	a := New("a", PCI64x66)
	b := New("b", PCI64x66)
	_, e1 := a.DMA(0, 4096)
	_, e2 := b.Send(0, 4096)
	if e1 != e2 {
		t.Fatalf("Send (%v) and DMA (%v) disagree", e2, e1)
	}
}

func TestAccessors(t *testing.T) {
	b := New("mybus", PCIX64x133)
	b.DMA(0, 100)
	if b.Kind() != PCIX64x133 || b.Name() != "mybus" || b.Jobs() != 1 || b.BusyTime() <= 0 {
		t.Fatal("accessor values wrong")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	if Kind(99).String() != "unknown-bus" {
		t.Fatal("unknown kind string")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Params on unknown kind did not panic")
		}
	}()
	Params(Kind(99))
}
