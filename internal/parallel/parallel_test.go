package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCommitOrder checks the core contract: commits arrive in index order
// for every worker count, even when early tasks finish last.
func TestCommitOrder(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 8, n, 2 * n} {
		var got []int
		gate := make(chan struct{}, 1)
		MapOrdered(workers, n, func(i int) int {
			if i == 0 && workers > 1 {
				// Task 0 is the slowest: it waits until another task has
				// finished, so out-of-order completion definitely happens.
				<-gate
			}
			if i == n-1 || workers == 1 {
				select {
				case gate <- struct{}{}:
				default:
				}
			}
			return i * i
		}, func(i, v int) {
			if v != i*i {
				t.Fatalf("workers=%d: commit(%d) got %d, want %d", workers, i, v, i*i)
			}
			got = append(got, i)
		})
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: commit order %v", workers, got)
			}
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d commits, want %d", workers, len(got), n)
		}
	}
}

// TestIdenticalOutputAcrossWorkerCounts renders the same "suite" at several
// worker counts and requires byte-identical output — the miniature of the
// CI determinism gate.
func TestIdenticalOutputAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		out := ""
		MapOrdered(workers, 40, func(i int) string {
			return fmt.Sprintf("fig %02d\n", i)
		}, func(_ int, s string) { out += s })
		return out
	}
	want := render(1)
	for _, w := range []int{2, 4, 8, 0} {
		if got := render(w); got != want {
			t.Errorf("workers=%d output differs from serial", w)
		}
	}
}

// TestBoundedWorkers verifies no more than the requested number of tasks
// run concurrently.
func TestBoundedWorkers(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	ForEach(workers, 50, func(int) {
		c := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		runtime.Gosched()
		atomic.AddInt64(&cur, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", peak, workers)
	}
}

// TestSerialFastPathInterleaves checks workers<=1 commits each task before
// running the next (the exact pre-parallel behaviour).
func TestSerialFastPathInterleaves(t *testing.T) {
	var trace []string
	MapOrdered(1, 3, func(i int) int {
		trace = append(trace, fmt.Sprintf("run%d", i))
		return i
	}, func(i, _ int) {
		trace = append(trace, fmt.Sprintf("commit%d", i))
	})
	want := "run0 commit0 run1 commit1 run2 commit2"
	got := fmt.Sprint(trace)
	if got != "["+want+"]" {
		t.Errorf("serial interleaving %v, want %s", trace, want)
	}
}

// TestPanicPropagates checks a worker panic re-raises on the caller at the
// panicking task's commit slot, with earlier commits delivered.
func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var committed []int
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic", workers)
				}
				if r != "boom2" {
					t.Fatalf("workers=%d: panic %v, want boom2", workers, r)
				}
			}()
			MapOrdered(workers, 8, func(i int) int {
				if i == 2 {
					panic("boom2")
				}
				return i
			}, func(i, _ int) { committed = append(committed, i) })
		}()
		if fmt.Sprint(committed) != "[0 1]" {
			t.Errorf("workers=%d: committed %v before panic, want [0 1]", workers, committed)
		}
	}
}

// TestJobs checks the worker-count normalization.
func TestJobs(t *testing.T) {
	if got := Jobs(5); got != 5 {
		t.Errorf("Jobs(5) = %d", got)
	}
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestEmpty checks n=0 is a no-op.
func TestEmpty(t *testing.T) {
	MapOrdered(4, 0, func(i int) int { t.Fatal("run called"); return 0 },
		func(int, int) { t.Fatal("commit called") })
}
