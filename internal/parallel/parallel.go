// Package parallel provides the deterministic fan-out primitive behind the
// experiment suite: a bounded worker pool that maps a fixed-order task list
// onto host cores and commits results in submission order.
//
// The experiments are ~30 independent figures and tables, each a
// self-contained discrete-event simulation with its own engine, so they
// parallelize perfectly — the only thing that must not change is the
// observable output. The contract mirrors the multi-rail scheduling insight
// the paper's successors applied to network lanes: independent streams may
// use every available lane, but delivery order is fixed.
//
// Determinism rules:
//
//   - Tasks are identified by their index in a fixed list. Which worker runs
//     a task, and when, is unspecified.
//   - commit(i, v) is called exactly once per task, from the calling
//     goroutine, in strict index order: commit(0), commit(1), ... Committing
//     streams — commit(i) runs as soon as task i is done, without waiting
//     for later tasks.
//   - A panic inside run(i) is re-raised on the calling goroutine when the
//     commit sequence reaches i — the same point serial execution would have
//     panicked — after all in-flight tasks drain.
//   - With workers <= 1 (or n <= 1) the pool degenerates to the plain serial
//     loop: run and commit interleave with no goroutines at all.
//
// Consequently MapOrdered(j, ...) produces byte-identical output to the
// serial loop for every j, which is what the suite's CI determinism gate
// checks end to end.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs normalizes a worker-count request: values <= 0 mean "one worker per
// available core" (GOMAXPROCS).
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// taskPanic wraps a panic value captured on a worker so it can be re-raised
// on the committing goroutine.
type taskPanic struct{ v interface{} }

// MapOrdered runs run(i) for every i in [0, n) on up to workers goroutines
// and calls commit(i, result) serially, in index order, on the calling
// goroutine. See the package comment for the determinism contract.
func MapOrdered[T any](workers, n int, run func(i int) T, commit func(i int, v T)) {
	if n <= 0 {
		return
	}
	workers = Jobs(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: identical to the pre-parallel code, including
		// panic timing.
		for i := 0; i < n; i++ {
			commit(i, run(i))
		}
		return
	}

	results := make([]T, n)
	panics := make([]*taskPanic, n)
	done := make([]bool, n)
	var mu sync.Mutex
	ready := sync.NewCond(&mu)

	var next int64 // next task index to claim, via atomic add
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						r := recover()
						mu.Lock()
						if r != nil {
							panics[i] = &taskPanic{v: r}
						}
						done[i] = true
						ready.Broadcast()
						mu.Unlock()
					}()
					results[i] = run(i)
				}()
			}
		}()
	}

	for i := 0; i < n; i++ {
		mu.Lock()
		for !done[i] {
			ready.Wait()
		}
		p := panics[i]
		mu.Unlock()
		if p != nil {
			// Drain the pool before re-raising so no worker outlives the
			// call (workers still running finish their current task; the
			// atomic counter hands out the rest, which run but are never
			// committed — their side effects are idempotent cache fills).
			wg.Wait()
			panic(p.v)
		}
		commit(i, results[i])
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all are done. Use when tasks have no ordered output — e.g.
// pre-warming a cache. Panics propagate like MapOrdered's.
func ForEach(workers, n int, fn func(i int)) {
	MapOrdered(workers, n, func(i int) struct{} { fn(i); return struct{}{} },
		func(int, struct{}) {})
}
