// Package lowlevel benchmarks the vendor messaging layers directly —
// VAPI, GM and Elan3lib, below MPI — the way the authors' companion study
// ("Micro-benchmark level performance comparison of high-speed cluster
// interconnects", Hot Interconnects 11) does. It drives dev.Endpoint
// operations with raw engine events, so no MPI protocol, matching or
// progress cost appears in the numbers. Comparing these against the
// MPI-level suite isolates what each MPI implementation adds on top of its
// substrate.
package lowlevel

import (
	"mpinet/internal/cluster"
	"mpinet/internal/dev"
	"mpinet/internal/memreg"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Result is one low-level measurement.
type Result struct {
	Net   string
	Size  int64
	Value float64 // unit depends on the benchmark
}

// twoNodes wires a fresh two-node network and returns its endpoints.
func twoNodes(p cluster.Platform) (dev.Network, dev.Endpoint, dev.Endpoint) {
	net := p.New(2)
	return net, net.NewEndpoint(0), net.NewEndpoint(1)
}

// Latency measures raw one-way delivery time of an eager message at the
// messaging layer: injection to remote-memory landing, no hosts involved.
func Latency(p cluster.Platform, size int64) sim.Time {
	net, ep0, ep1 := twoNodes(p)
	eng := net.Engine()
	const iters = 16
	var done sim.Time
	var bounce func(n int)
	bounce = func(n int) {
		if n == 2*iters {
			done = eng.Now()
			return
		}
		ep := ep0
		dst := 1
		if n%2 == 1 {
			ep = ep1
			dst = 0
		}
		ep.Eager(dst, size, func() { bounce(n + 1) })
	}
	eng.Schedule(0, func() { bounce(0) })
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return done / (2 * iters)
}

// Bandwidth measures raw streaming bandwidth (MB/s) of the bulk (RDMA /
// directed-send / Elan DMA) path with the given number of in-flight
// transfers.
func Bandwidth(p cluster.Platform, size int64, inflight int) float64 {
	net, ep0, _ := twoNodes(p)
	eng := net.Engine()
	const messages = 32
	var completed int
	var last sim.Time
	var issue func()
	outstanding := 0
	issued := 0
	issue = func() {
		for outstanding < inflight && issued < messages {
			issued++
			outstanding++
			ep0.Bulk(1, size, func() {
				outstanding--
				completed++
				last = eng.Now()
				issue()
			})
		}
	}
	eng.Schedule(0, issue)
	if err := eng.Run(); err != nil {
		panic(err)
	}
	if completed != messages {
		panic("lowlevel: transfers lost")
	}
	total := float64(size) * float64(messages)
	return total / last.Seconds() / float64(units.MB)
}

// RegistrationCost measures the host cost of making a cold buffer of the
// given page count NIC-visible (registration for VAPI/GM, MMU sync for
// Elan).
func RegistrationCost(p cluster.Platform, pages int64) sim.Time {
	net, ep0, _ := twoNodes(p)
	_ = net
	as := memreg.NewAddressSpace()
	buf := as.Alloc(pages * memreg.PageSize)
	return ep0.AcquireBuf(buf)
}

// HostOverheads reports the raw per-message host costs the device model
// charges (send side, receive side) for a message of the given size.
func HostOverheads(p cluster.Platform, size int64) (send, recv sim.Time) {
	_, ep0, _ := twoNodes(p)
	return ep0.SendOverhead(size), ep0.RecvOverhead(size)
}

// BiBandwidth measures raw aggregate bandwidth with both directions
// streaming bulk transfers.
func BiBandwidth(p cluster.Platform, size int64, inflight int) float64 {
	net, ep0, ep1 := twoNodes(p)
	eng := net.Engine()
	const messages = 16 // per direction
	var completed int
	var last sim.Time
	start := func(ep dev.Endpoint, dst int) {
		outstanding := 0
		issued := 0
		var issue func()
		issue = func() {
			for outstanding < inflight && issued < messages {
				issued++
				outstanding++
				ep.Bulk(dst, size, func() {
					outstanding--
					completed++
					last = eng.Now()
					issue()
				})
			}
		}
		eng.Schedule(0, issue)
	}
	start(ep0, 1)
	start(ep1, 0)
	if err := eng.Run(); err != nil {
		panic(err)
	}
	total := 2 * float64(size) * float64(messages)
	return total / last.Seconds() / float64(units.MB)
}
