package lowlevel

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/microbench"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestRawLatencyBelowMPILatency(t *testing.T) {
	// The messaging layer must be strictly faster than MPI over it.
	for _, p := range cluster.OSU() {
		raw := Latency(p, 8)
		mpiLat := units.FromMicros(microbench.Latency(p, []int64{8}).Y[0])
		if raw >= mpiLat {
			t.Errorf("%s: raw latency %v not below MPI latency %v", p.Name, raw, mpiLat)
		}
		if raw <= 0 {
			t.Errorf("%s: non-positive raw latency", p.Name)
		}
	}
}

func TestRawLatencyOrdering(t *testing.T) {
	// At the messaging layer Quadrics' NIC-driven path is fastest — by a
	// wider margin than at the MPI level, since its high host overhead is
	// out of the picture.
	qsn := Latency(cluster.QSN(), 8)
	iba := Latency(cluster.IBA(), 8)
	myri := Latency(cluster.Myri(), 8)
	if !(qsn < iba && qsn < myri) {
		t.Errorf("raw latency ordering: QSN %v, IBA %v, Myri %v", qsn, iba, myri)
	}
}

func TestRawBandwidthMatchesLinkCeilings(t *testing.T) {
	cases := []struct {
		p        cluster.Platform
		min, max float64
	}{
		{cluster.IBA(), 800, 900},
		{cluster.Myri(), 210, 245},
		{cluster.QSN(), 290, 320},
	}
	for _, c := range cases {
		bw := Bandwidth(c.p, 512*units.KB, 4)
		if bw < c.min || bw > c.max {
			t.Errorf("%s raw bandwidth = %.0f MB/s, want [%.0f, %.0f]", c.p.Name, bw, c.min, c.max)
		}
	}
}

func TestRawBandwidthAboveMPIStream(t *testing.T) {
	// MPI adds protocol overheads, so the raw path sustains at least the
	// MPI-level figure.
	for _, p := range cluster.OSU() {
		raw := Bandwidth(p, 512*units.KB, 8)
		mpiBW := microbench.Bandwidth(p, []int64{512 * units.KB}, 16).Y[0]
		if raw < mpiBW*0.97 {
			t.Errorf("%s: raw bandwidth %.0f below MPI bandwidth %.0f", p.Name, raw, mpiBW)
		}
	}
}

func TestRegistrationCostLinearInPages(t *testing.T) {
	for _, p := range []cluster.Platform{cluster.IBA(), cluster.Myri(), cluster.QSN()} {
		c1 := RegistrationCost(p, 1)
		c16 := RegistrationCost(p, 16)
		c64 := RegistrationCost(p, 64)
		if c1 <= 0 {
			t.Errorf("%s: one-page registration free", p.Name)
		}
		if !(c16 > c1 && c64 > c16) {
			t.Errorf("%s: registration cost not increasing: %v %v %v", p.Name, c1, c16, c64)
		}
		// Linear tail: cost(64)-cost(16) == 3 * (cost(16)-cost(4))... use
		// exact per-page arithmetic instead: marginal cost of 48 pages.
		marginal := c64 - c16
		perPage := marginal / 48
		if perPage <= 0 {
			t.Errorf("%s: non-positive per-page cost", p.Name)
		}
	}
}

func TestHostOverheadsMatchPaperSplit(t *testing.T) {
	// Raw per-message host cost sums to the paper's Figure 3 values.
	for _, c := range []struct {
		p     cluster.Platform
		total float64 // us
	}{
		{cluster.IBA(), 1.7}, {cluster.Myri(), 0.8}, {cluster.QSN(), 3.3},
	} {
		s, r := HostOverheads(c.p, 4)
		sum := (s + r).Micros()
		if sum < c.total*0.85 || sum > c.total*1.15 {
			t.Errorf("%s raw overhead sum = %.2f us, paper %.2f", c.p.Name, sum, c.total)
		}
	}
}

func TestBiBandwidthCeilings(t *testing.T) {
	// The shared-bus story holds at the raw layer too: IBA near the PCI-X
	// ceiling, QSN near the PCI ceiling, Myri near double its link.
	iba := BiBandwidth(cluster.IBA(), 256*units.KB, 4)
	if iba < 820 || iba > 920 {
		t.Errorf("IBA raw bi-bandwidth = %.0f, want ~880", iba)
	}
	qsn := BiBandwidth(cluster.QSN(), 256*units.KB, 4)
	if qsn < 340 || qsn > 400 {
		t.Errorf("QSN raw bi-bandwidth = %.0f, want ~375", qsn)
	}
}

func TestDeterministicRawMeasurements(t *testing.T) {
	a := Latency(cluster.Myri(), 1024)
	b := Latency(cluster.Myri(), 1024)
	if a != b {
		t.Fatalf("raw latency not deterministic: %v vs %v", a, b)
	}
	var x, y sim.Time = sim.Time(Bandwidth(cluster.IBA(), 65536, 4)), sim.Time(Bandwidth(cluster.IBA(), 65536, 4))
	if x != y {
		t.Fatalf("raw bandwidth not deterministic")
	}
}
