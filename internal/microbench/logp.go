package microbench

import (
	"fmt"

	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// LogPParams are the parameters of the LogP/LogGP model (Culler et al.),
// which the paper's related work uses to characterize interconnects:
//
//	L  — wire latency: one-way time minus both host overheads (us)
//	Os — send overhead: host CPU time to inject a small message (us)
//	Or — receive overhead: host CPU time to absorb one (us)
//	G  — gap per byte for large messages, i.e. 1/bandwidth (us/KB)
//	Gm — the implied asymptotic bandwidth (MB/s)
type LogPParams struct {
	Net string
	L   float64
	Os  float64
	Or  float64
	G   float64
	Gm  float64
}

// String renders the parameter set on one line.
func (p LogPParams) String() string {
	return fmt.Sprintf("%-5s L=%5.2fus os=%5.2fus or=%5.2fus G=%6.4fus/KB (%.0f MB/s)",
		p.Net, p.L, p.Os, p.Or, p.G, p.Gm)
}

// LogP extracts LogGP parameters from the same experiments the paper's
// related work ([1], [3]) uses: the latency/overhead micro-benchmarks for
// L, os and or, and large-message streaming for G.
func LogP(p cluster.Platform) LogPParams {
	out := LogPParams{Net: p.Name}

	// One-way small-message time and the host-busy split.
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
	const iters = 32
	var oneWay sim.Time
	var warm [2]sim.Time
	mustRun(w, func(r *mpi.Rank) {
		buf := r.Malloc(8)
		peer := 1 - r.Rank()
		round := func() {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
		round()
		warm[r.Rank()] = r.HostBusy()
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			round()
		}
		if r.Rank() == 0 {
			oneWay = (r.Wtime() - start) / sim.Time(2*iters)
		}
	})
	// Host busy per one-way message, split into the sender and receiver
	// shares by instrumentation: rank 0 and rank 1 each perform one send
	// and one receive per round trip, so their steady-state busy time per
	// message is (os + or); the latency test cannot separate them, so we
	// measure os directly with an unacknowledged send burst.
	osTime := measureSendOverhead(p)
	busyPerMsg := (w.HostBusy(0) + w.HostBusy(1) - warm[0] - warm[1]) / sim.Time(2*iters)
	orTime := busyPerMsg - osTime
	if orTime < 0 {
		orTime = 0
	}

	out.Os = osTime.Micros()
	out.Or = orTime.Micros()
	out.L = oneWay.Micros() - out.Os - out.Or
	if out.L < 0 {
		out.L = 0
	}

	// G from large-message streaming bandwidth.
	bw := bandwidthRun(p, 2, 1, 512*units.KB, 16, 4)
	out.Gm = bw
	out.G = 1.0 / bw * 1024 / 1e6 * 1e6 // us per KB
	return out
}

// measureSendOverhead times a burst of eager sends with no reply traffic:
// the time per iteration the host spends is the send overhead.
func measureSendOverhead(p cluster.Platform) sim.Time {
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
	const n = 64
	var per sim.Time
	mustRun(w, func(r *mpi.Rank) {
		if r.Rank() == 0 {
			buf := r.Malloc(8)
			r.Send(buf, 1, 0) // warm the path
			busy0 := r.HostBusy()
			for i := 0; i < n; i++ {
				req := r.Isend(buf, 1, 0)
				_ = req // eager sends complete at issue
			}
			per = (r.HostBusy() - busy0) / n
		} else {
			buf := r.Malloc(8)
			for i := 0; i < n+1; i++ {
				r.Recv(buf, 0, 0)
			}
		}
	})
	return per
}
