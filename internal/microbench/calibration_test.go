package microbench

// Calibration tests: each asserts one of the anchor measurements the paper
// states in its text (Section 3), within tolerance. These are the contract
// between the simulator and the paper — if a model change breaks a shape or
// an anchor, it fails here, not silently in a figure.

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/units"
)

// within asserts got ∈ [want*(1-tol), want*(1+tol)].
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.2f, want %.2f ±%.0f%%", name, got, want, tol*100)
	}
}

func TestFig1SmallMessageLatencyAnchors(t *testing.T) {
	// Paper: QSN ~4.6us, IBA ~6.8us, Myri ~6.7us.
	within(t, "IBA 4B latency", Latency(cluster.IBA(), []int64{4}).Y[0], 6.8, 0.10)
	within(t, "Myri 4B latency", Latency(cluster.Myri(), []int64{4}).Y[0], 6.7, 0.10)
	within(t, "QSN 4B latency", Latency(cluster.QSN(), []int64{4}).Y[0], 4.6, 0.10)
}

func TestFig1LargeMessageLatencyOrdering(t *testing.T) {
	// Paper: for large messages InfiniBand has a clear advantage because of
	// its higher bandwidth.
	iba := Latency(cluster.IBA(), []int64{16 * units.KB}).Y[0]
	myri := Latency(cluster.Myri(), []int64{16 * units.KB}).Y[0]
	qsn := Latency(cluster.QSN(), []int64{16 * units.KB}).Y[0]
	if !(iba < qsn && qsn < myri) {
		t.Errorf("16KB latency ordering: IBA %.1f, QSN %.1f, Myri %.1f; want IBA < QSN < Myri", iba, qsn, myri)
	}
}

func TestFig2PeakBandwidthAnchors(t *testing.T) {
	sizes := []int64{512 * units.KB}
	// Paper: IBA >841 MB/s, QSN ~308, Myri ~235 (window 16).
	within(t, "IBA peak bw", Bandwidth(cluster.IBA(), sizes, 16).Y[0], 841, 0.05)
	within(t, "Myri peak bw", Bandwidth(cluster.Myri(), sizes, 16).Y[0], 235, 0.05)
	within(t, "QSN peak bw", Bandwidth(cluster.QSN(), sizes, 16).Y[0], 308, 0.05)
}

func TestFig2BandwidthGrowsWithWindow(t *testing.T) {
	// Paper: IBA and Myri improve with window size; QSN similar below 16.
	for _, p := range cluster.OSU() {
		w4 := Bandwidth(p, []int64{4 * units.KB}, 4).Y[0]
		w16 := Bandwidth(p, []int64{4 * units.KB}, 16).Y[0]
		if w16 < w4 {
			t.Errorf("%s: bandwidth fell from window 4 (%.0f) to window 16 (%.0f)", p.Name, w4, w16)
		}
	}
}

func TestFig2IBAEagerRendezvousDip(t *testing.T) {
	// Paper: the IBA bandwidth drop at 2KB is the eager->rendezvous switch.
	c := Bandwidth(cluster.IBA(), []int64{2 * units.KB, 4 * units.KB}, 16)
	perByte2K := c.Y[0] / 2
	perByte4K := c.Y[1] / 4
	// The protocol switch shows as a dent: 4KB is not proportionally faster.
	if perByte4K > perByte2K*1.1 {
		t.Errorf("no rendezvous dent visible: 2K %.0f MB/s, 4K %.0f MB/s", c.Y[0], c.Y[1])
	}
}

func TestFig3HostOverheadAnchors(t *testing.T) {
	// Paper: Myri ~0.8us, IBA ~1.7us, QSN ~3.3us (sender+receiver).
	within(t, "IBA overhead", HostOverhead(cluster.IBA(), []int64{4}).Y[0], 1.7, 0.10)
	within(t, "Myri overhead", HostOverhead(cluster.Myri(), []int64{4}).Y[0], 0.8, 0.15)
	within(t, "QSN overhead", HostOverhead(cluster.QSN(), []int64{4}).Y[0], 3.3, 0.10)
}

func TestFig3QSNOverheadDipsPast256B(t *testing.T) {
	c := HostOverhead(cluster.QSN(), []int64{256, 512})
	if c.Y[1] >= c.Y[0] {
		t.Errorf("QSN overhead did not dip past 256B: %.2f -> %.2f", c.Y[0], c.Y[1])
	}
}

func TestFig4BiDirectionalLatency(t *testing.T) {
	// Paper: IBA barely degrades (6.8 -> 7.0); Myri and QSN degrade
	// substantially (6.7 -> 10.1, 4.6 -> 7.4).
	for _, tc := range []struct {
		p        cluster.Platform
		uniWant  float64
		maxDelta float64 // IBA must stay nearly flat
		minDelta float64 // Myri/QSN must visibly degrade
	}{
		{cluster.IBA(), 6.8, 0.5, 0},
		{cluster.Myri(), 6.7, 0, 0.8},
		{cluster.QSN(), 4.6, 0, 0.8},
	} {
		uni := Latency(tc.p, []int64{4}).Y[0]
		bi := BiLatency(tc.p, []int64{4}).Y[0]
		delta := bi - uni
		if tc.maxDelta > 0 && delta > tc.maxDelta {
			t.Errorf("%s: bi-directional latency degraded by %.2fus, want < %.2f", tc.p.Name, delta, tc.maxDelta)
		}
		if tc.minDelta > 0 && delta < tc.minDelta {
			t.Errorf("%s: bi-directional latency degraded by only %.2fus, want > %.2f", tc.p.Name, delta, tc.minDelta)
		}
	}
}

func TestFig5BiDirectionalBandwidth(t *testing.T) {
	// Paper: IBA 841 -> ~900 (PCI-X bound); QSN 308 -> ~375 (PCI bound);
	// Myri 235 -> ~473 then below 340 past 256KB (SRAM staging).
	within(t, "IBA bi-bw", BiBandwidth(cluster.IBA(), []int64{256 * units.KB}).Y[0], 900, 0.06)
	within(t, "QSN bi-bw", BiBandwidth(cluster.QSN(), []int64{256 * units.KB}).Y[0], 375, 0.05)
	myri := BiBandwidth(cluster.Myri(), []int64{64 * units.KB, 512 * units.KB})
	within(t, "Myri bi-bw 64K", myri.Y[0], 473, 0.05)
	if myri.Y[1] >= 340 {
		t.Errorf("Myri bi-bw past 256KB = %.0f, want < 340 (SRAM staging collapse)", myri.Y[1])
	}
}

func TestFig6OverlapShapes(t *testing.T) {
	// Paper: IBA/Myri overlap drops at their rendezvous point and stays
	// constant; QSN overlap grows steadily with message size.
	qsn := Overlap(cluster.QSN(), []int64{4 * units.KB, 64 * units.KB})
	if qsn.Y[1] <= qsn.Y[0]*2 {
		t.Errorf("QSN overlap not growing: %.1f -> %.1f", qsn.Y[0], qsn.Y[1])
	}
	iba := Overlap(cluster.IBA(), []int64{1024, 64 * units.KB})
	// Past rendezvous, host-driven handshakes cap IBA's overlap near a
	// constant far below the QSN value at the same size.
	if iba.Y[1] > qsn.Y[1]/4 {
		t.Errorf("IBA 64KB overlap %.1f not clearly capped vs QSN %.1f", iba.Y[1], qsn.Y[1])
	}
	myri := Overlap(cluster.Myri(), []int64{32 * units.KB, 64 * units.KB})
	if myri.Y[1] > qsn.Y[1]/4 {
		t.Errorf("Myri 64KB overlap %.1f not clearly capped vs QSN %.1f", myri.Y[1], qsn.Y[1])
	}
}

func TestFig7BufferReuseLatency(t *testing.T) {
	// Paper: all three are sensitive; IBA hurt above its zero-copy
	// threshold, QSN hurt at every size, Myri insensitive until 16KB.
	ibaSmall0 := ReuseLatency(cluster.IBA(), []int64{1024}, 0).Y[0]
	ibaSmall100 := ReuseLatency(cluster.IBA(), []int64{1024}, 100).Y[0]
	if ibaSmall0 > ibaSmall100*1.05 {
		t.Errorf("IBA 1KB (eager) affected by reuse: %.1f vs %.1f", ibaSmall0, ibaSmall100)
	}
	iba0 := ReuseLatency(cluster.IBA(), []int64{16 * units.KB}, 0).Y[0]
	iba100 := ReuseLatency(cluster.IBA(), []int64{16 * units.KB}, 100).Y[0]
	if iba0 < iba100*1.5 {
		t.Errorf("IBA 16KB reuse insensitive: %.1f vs %.1f", iba0, iba100)
	}
	qsn0 := ReuseLatency(cluster.QSN(), []int64{256}, 0).Y[0]
	qsn100 := ReuseLatency(cluster.QSN(), []int64{256}, 100).Y[0]
	if qsn0 < qsn100*1.4 {
		t.Errorf("QSN small-message reuse insensitive: %.1f vs %.1f", qsn0, qsn100)
	}
	myri0 := ReuseLatency(cluster.Myri(), []int64{8 * units.KB}, 0).Y[0]
	myri100 := ReuseLatency(cluster.Myri(), []int64{8 * units.KB}, 100).Y[0]
	if myri0 > myri100*1.05 {
		t.Errorf("Myri 8KB (eager) affected by reuse: %.1f vs %.1f", myri0, myri100)
	}
	myriBig0 := ReuseLatency(cluster.Myri(), []int64{64 * units.KB}, 0).Y[0]
	myriBig100 := ReuseLatency(cluster.Myri(), []int64{64 * units.KB}, 100).Y[0]
	if myriBig0 < myriBig100*1.1 {
		t.Errorf("Myri 64KB reuse insensitive: %.1f vs %.1f", myriBig0, myriBig100)
	}
}

func TestFig8BufferReuseBandwidth(t *testing.T) {
	// Bandwidth drops as reuse rate falls, for IBA (rendezvous sizes) and
	// QSN (all sizes).
	for _, tc := range []struct {
		p    cluster.Platform
		size int64
	}{
		{cluster.IBA(), 64 * units.KB},
		{cluster.QSN(), 16 * units.KB},
	} {
		full := ReuseBandwidth(tc.p, []int64{tc.size}, 100).Y[0]
		none := ReuseBandwidth(tc.p, []int64{tc.size}, 0).Y[0]
		half := ReuseBandwidth(tc.p, []int64{tc.size}, 50).Y[0]
		if none >= full*0.8 {
			t.Errorf("%s: 0%% reuse bw %.0f not clearly below 100%% reuse %.0f", tc.p.Name, none, full)
		}
		if !(none <= half && half <= full) {
			t.Errorf("%s: reuse bw not monotone: 0%%=%.0f 50%%=%.0f 100%%=%.0f", tc.p.Name, none, half, full)
		}
	}
}

func TestFig9IntraNodeLatency(t *testing.T) {
	// Paper: Myri ~1.3us, IBA ~1.6us via shared memory; QSN intra-node is
	// *worse* than its inter-node latency.
	within(t, "Myri intra latency", IntraLatency(cluster.Myri(), []int64{4}).Y[0], 1.3, 0.15)
	within(t, "IBA intra latency", IntraLatency(cluster.IBA(), []int64{4}).Y[0], 1.6, 0.15)
	qsnIntra := IntraLatency(cluster.QSN(), []int64{4}).Y[0]
	qsnInter := Latency(cluster.QSN(), []int64{4}).Y[0]
	if qsnIntra <= qsnInter {
		t.Errorf("QSN intra %.2f should exceed inter %.2f", qsnIntra, qsnInter)
	}
}

func TestFig10IntraNodeBandwidth(t *testing.T) {
	// Paper: IBA switches to NIC loopback at 16KB and sustains >450 MB/s for
	// large messages, clearly above Myri/QSN there; Myri/QSN drop for large
	// messages (cache thrash / NIC loopback).
	iba := IntraBandwidth(cluster.IBA(), []int64{units.MB}).Y[0]
	if iba < 420 {
		t.Errorf("IBA large intra bw = %.0f, want >420", iba)
	}
	myri := IntraBandwidth(cluster.Myri(), []int64{64 * units.KB, units.MB})
	if myri.Y[1] >= myri.Y[0]*0.5 {
		t.Errorf("Myri intra bw no cache-thrash drop: %.0f -> %.0f", myri.Y[0], myri.Y[1])
	}
	qsn := IntraBandwidth(cluster.QSN(), []int64{units.MB}).Y[0]
	if qsn >= iba {
		t.Errorf("QSN intra bw %.0f should be below IBA %.0f", qsn, iba)
	}
}

func TestFig11AlltoallOrdering(t *testing.T) {
	// Paper (small messages, 8 nodes): IBA 31us < Myri 36us < QSN 67us.
	iba := Alltoall(cluster.IBA(), 8, []int64{4}).Y[0]
	myri := Alltoall(cluster.Myri(), 8, []int64{4}).Y[0]
	qsn := Alltoall(cluster.QSN(), 8, []int64{4}).Y[0]
	if !(iba < myri && myri < qsn) {
		t.Errorf("Alltoall ordering IBA %.1f < Myri %.1f < QSN %.1f violated", iba, myri, qsn)
	}
}

func TestFig12AllreduceOrdering(t *testing.T) {
	// Paper (small messages, 8 nodes): QSN 28us best, IBA 46us worst.
	iba := Allreduce(cluster.IBA(), 8, []int64{4}).Y[0]
	qsn := Allreduce(cluster.QSN(), 8, []int64{4}).Y[0]
	if qsn >= iba {
		t.Errorf("Allreduce: QSN %.1f should beat IBA %.1f", qsn, iba)
	}
	within(t, "QSN Allreduce 4B", qsn, 28, 0.15)
	within(t, "IBA Allreduce 4B", iba, 46, 0.15)
}

func TestFig13MemoryUsage(t *testing.T) {
	// Paper: IBA memory grows with node count (per-RC-connection buffers);
	// Myri and QSN stay flat.
	iba := MemoryUsage(cluster.IBA(), []int{2, 4, 8})
	if !(iba.Y[0] < iba.Y[1] && iba.Y[1] < iba.Y[2]) {
		t.Errorf("IBA memory not growing: %v", iba.Y)
	}
	within(t, "IBA memory at 8 nodes", iba.Y[2], 50, 0.15)
	for _, p := range []cluster.Platform{cluster.Myri(), cluster.QSN()} {
		c := MemoryUsage(p, []int{2, 8})
		if c.Y[0] != c.Y[1] {
			t.Errorf("%s memory not flat: %v", p.Name, c.Y)
		}
	}
}

func TestFig26PCILatencyPenalty(t *testing.T) {
	// Paper: small-message latency only increases by ~0.6us on PCI.
	pcix := Latency(cluster.IBA(), []int64{4}).Y[0]
	pci := Latency(cluster.IBAPCI(), []int64{4}).Y[0]
	delta := pci - pcix
	if delta < 0.3 || delta > 1.2 {
		t.Errorf("PCI latency penalty = %.2fus, want ~0.6", delta)
	}
}

func TestFig27PCIBandwidthCap(t *testing.T) {
	// Paper: bandwidth only reaches ~378 MB/s on PCI.
	within(t, "IBA-PCI peak bw", Bandwidth(cluster.IBAPCI(), []int64{512 * units.KB}, 16).Y[0], 378, 0.06)
}
