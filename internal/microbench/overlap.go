package microbench

import (
	"mpinet/internal/cluster"
	"mpinet/internal/memreg"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// overlapRTT measures the average round-trip of the overlap test at one
// message size with a given per-iteration compute insertion: both sides
// start a non-blocking receive and send, compute for c, then wait.
func overlapRTT(p cluster.Platform, size int64, compute sim.Time, iters int) sim.Time {
	w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
	var rtt sim.Time
	mustRun(w, func(r *mpi.Rank) {
		peer := 1 - r.Rank()
		sbuf := r.Malloc(size)
		rbuf := r.Malloc(size)
		step := func(c sim.Time) {
			rr := r.Irecv(rbuf, peer, 0)
			sr := r.Isend(sbuf, peer, 0)
			r.Compute(c)
			r.Wait(sr)
			r.Wait(rr)
		}
		step(0) // warmup
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			step(compute)
		}
		if r.Rank() == 0 {
			rtt = (r.Wtime() - start) / sim.Time(iters)
		}
	})
	return rtt
}

// Overlap reproduces Figure 6: the longest computation (us) that can be
// inserted between starting non-blocking communication and waiting for it
// without increasing the measured latency. Found by bisection — the
// simulator is deterministic, so the threshold is sharp.
func Overlap(p cluster.Platform, sizes []int64) Curve {
	const iters = 8
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		base := overlapRTT(p, s, 0, iters)
		tolerance := base / 50 // "does not increase", with 2% slack
		lo := sim.Time(0)
		hi := base
		for overlapRTT(p, s, hi, iters) <= base+tolerance && hi < 100*units.Millisecond {
			hi *= 2
		}
		for hi-lo > 100*units.Nanosecond {
			mid := (lo + hi) / 2
			if overlapRTT(p, s, mid, iters) <= base+tolerance {
				lo = mid
			} else {
				hi = mid
			}
		}
		c.X = append(c.X, s)
		c.Y = append(c.Y, lo.Micros())
	}
	return c
}

// reusePattern reports whether iteration i uses the shared buffer under
// reuse percentage pct, spreading reused iterations evenly through the run.
func reusePattern(i, pct int) bool {
	if pct >= 100 {
		return true
	}
	if pct <= 0 {
		return false
	}
	// Evenly interleave: an iteration reuses when its position within each
	// 100-iteration stripe falls inside the reuse quota, spread by stride.
	return (i*pct)%100 < pct
}

// ReuseLatency reproduces Figure 7: ping-pong latency (us) when only pct%
// of iterations reuse their buffer and the rest use fresh ones, defeating
// the registration/MMU caches.
func ReuseLatency(p cluster.Platform, sizes []int64, pct int) Curve {
	const iters = 50
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
		var lat sim.Time
		mustRun(w, func(r *mpi.Rank) {
			peer := 1 - r.Rank()
			reused := r.Malloc(s)
			pick := func(i int) memreg.Buf {
				if reusePattern(i, pct) {
					return reused
				}
				return r.Malloc(s)
			}
			// Warmup with the reused buffer.
			if r.Rank() == 0 {
				r.Send(reused, peer, 0)
				r.Recv(reused, peer, 1)
			} else {
				r.Recv(reused, peer, 0)
				r.Send(reused, peer, 1)
			}
			start := r.Wtime()
			for i := 0; i < iters; i++ {
				buf := pick(i)
				if r.Rank() == 0 {
					r.Send(buf, peer, 0)
					r.Recv(buf, peer, 1)
				} else {
					r.Recv(buf, peer, 0)
					r.Send(buf, peer, 1)
				}
			}
			if r.Rank() == 0 {
				lat = (r.Wtime() - start) / sim.Time(2*iters)
			}
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, lat.Micros())
	}
	return c
}

// ReuseBandwidth reproduces Figure 8: windowed streaming bandwidth (MB/s,
// window 16) under the same buffer-reuse regimes.
func ReuseBandwidth(p cluster.Platform, sizes []int64, pct int) Curve {
	const window = 16
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		rounds := roundsFor(s, window)
		w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
		var bw float64
		mustRun(w, func(r *mpi.Rank) {
			peer := 1 - r.Rank()
			reused := r.Malloc(s)
			ack := r.Malloc(4)
			reqs := make([]*mpi.Request, window)
			iter := 0
			pick := func() memreg.Buf {
				b := reused
				if !reusePattern(iter, pct) {
					b = r.Malloc(s)
				}
				iter++
				return b
			}
			runRound := func() {
				if r.Rank() == 0 {
					for i := 0; i < window; i++ {
						reqs[i] = r.Isend(pick(), peer, 0)
					}
					r.Waitall(reqs...)
					r.Recv(ack, peer, 99)
				} else {
					for i := 0; i < window; i++ {
						reqs[i] = r.Irecv(pick(), peer, 0)
					}
					r.Waitall(reqs...)
					r.Send(ack, peer, 99)
				}
			}
			runRound()
			start := r.Wtime()
			for round := 0; round < rounds; round++ {
				runRound()
			}
			if r.Rank() == 0 {
				total := float64(s) * float64(window) * float64(rounds)
				bw = total / (r.Wtime() - start).Seconds() / float64(units.MB)
			}
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, bw)
	}
	return c
}
