package microbench

import (
	"fmt"
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/units"
)

func TestProbeQSNReuse(t *testing.T) {
	for _, pct := range []int{0, 50, 100} {
		for _, s := range []int64{8 * units.KB, 16 * units.KB, 32 * units.KB} {
			bw := ReuseBandwidth(cluster.QSN(), []int64{s}, pct)
			fmt.Printf("QSN pct=%d size=%d bw=%.1f\n", pct, s, bw.Y[0])
		}
	}
}
