package microbench

import (
	"strings"
	"testing"

	"mpinet/internal/cluster"
)

func TestLogPParameters(t *testing.T) {
	params := map[string]LogPParams{}
	for _, p := range cluster.OSU() {
		params[p.Name] = LogP(p)
	}
	// Overheads follow the paper's ordering: Myri < IBA < QSN.
	if !(params["Myri"].Os+params["Myri"].Or < params["IBA"].Os+params["IBA"].Or) {
		t.Errorf("overhead ordering Myri < IBA violated: %+v %+v", params["Myri"], params["IBA"])
	}
	if !(params["IBA"].Os+params["IBA"].Or < params["QSN"].Os+params["QSN"].Or) {
		t.Errorf("overhead ordering IBA < QSN violated")
	}
	// Quadrics has the lowest wire latency L.
	if !(params["QSN"].L < params["IBA"].L && params["QSN"].L < params["Myri"].L) {
		t.Errorf("QSN should have the lowest L: IBA=%.2f Myri=%.2f QSN=%.2f",
			params["IBA"].L, params["Myri"].L, params["QSN"].L)
	}
	// Gap ordering mirrors bandwidth: IBA lowest G.
	if !(params["IBA"].G < params["QSN"].G && params["QSN"].G < params["Myri"].G) {
		t.Errorf("G ordering violated: %+v", params)
	}
	for name, p := range params {
		if p.L <= 0 || p.Os <= 0 || p.Gm <= 0 {
			t.Errorf("%s: non-positive parameters %+v", name, p)
		}
		if !strings.Contains(p.String(), name) {
			t.Errorf("String() missing network name: %q", p.String())
		}
	}
}

func TestLogPConsistentWithLatency(t *testing.T) {
	// L + os + or must approximate the measured one-way small-message
	// latency.
	for _, p := range cluster.OSU() {
		lp := LogP(p)
		lat := Latency(p, []int64{8}).Y[0]
		sum := lp.L + lp.Os + lp.Or
		if sum < lat*0.85 || sum > lat*1.15 {
			t.Errorf("%s: L+os+or = %.2f vs measured latency %.2f", p.Name, sum, lat)
		}
	}
}

func TestIncastBoundedByReceiver(t *testing.T) {
	// Aggregate incast goodput cannot exceed the uni-directional peak
	// (one down-link drains it), and must come close for large messages.
	for _, tc := range []struct {
		p    cluster.Platform
		peak float64
	}{
		{cluster.IBA(), 841}, {cluster.Myri(), 235}, {cluster.QSN(), 308},
	} {
		rate := Incast(tc.p, 4, 256*1024)
		if rate > tc.peak*1.1 {
			t.Errorf("%s incast %.0f MB/s exceeds the link peak %.0f", tc.p.Name, rate, tc.peak)
		}
		if rate < tc.peak*0.5 {
			t.Errorf("%s incast %.0f MB/s implausibly far below the peak %.0f", tc.p.Name, rate, tc.peak)
		}
	}
}

func TestIncastSmallMessagesProcessingBound(t *testing.T) {
	// Once the receiver is the bottleneck, doubling the sender count must
	// not double the aggregate small-message rate (its per-message
	// processing saturates).
	for _, p := range cluster.OSU() {
		three := Incast(p, 3, 64)
		seven := Incast(p, 7, 64) // 8 nodes: the full switch
		if seven > three*1.8 {
			t.Errorf("%s: small-message incast kept scaling (%.1f -> %.1f MB/s): receiver costs missing",
				p.Name, three, seven)
		}
	}
}
