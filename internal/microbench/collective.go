package microbench

import (
	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// collectiveTime measures the average per-operation time of a collective
// across all ranks (Pallas-style: buffers allocated once, a warmup
// operation, barrier synchronization, the slowest rank's average reported).
func collectiveTime(p cluster.Platform, procs int, iters int, setup func(r *mpi.Rank) func()) sim.Time {
	w := mpi.MustWorld(mpi.Config{Net: p.New(procs), Procs: procs})
	var worst sim.Time
	mustRun(w, func(r *mpi.Rank) {
		op := setup(r)
		op() // warmup
		r.Barrier()
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			op()
		}
		avg := (r.Wtime() - start) / sim.Time(iters)
		if avg > worst {
			worst = avg
		}
	})
	return worst
}

// Alltoall reproduces Figure 11: MPI_Alltoall time (us) on procs nodes as a
// function of per-pair message size.
func Alltoall(p cluster.Platform, procs int, sizes []int64) Curve {
	c := Curve{Label: p.Name + " Alltoall"}
	for _, s := range sizes {
		t := collectiveTime(p, procs, 8, func(r *mpi.Rank) func() {
			send := r.Malloc(s * int64(procs))
			recv := r.Malloc(s * int64(procs))
			return func() { r.Alltoall(send, recv) }
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, t.Micros())
	}
	return c
}

// Allreduce reproduces Figure 12: MPI_Allreduce time (us) on procs nodes.
func Allreduce(p cluster.Platform, procs int, sizes []int64) Curve {
	c := Curve{Label: p.Name + " Allreduce"}
	for _, s := range sizes {
		t := collectiveTime(p, procs, 8, func(r *mpi.Rank) func() {
			buf := r.Malloc(s)
			return func() { r.Allreduce(buf) }
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, t.Micros())
	}
	return c
}

// MemoryUsage reproduces Figure 13: per-process MPI memory footprint (MB)
// of a barrier program as the node count grows.
func MemoryUsage(p cluster.Platform, nodeCounts []int) Curve {
	c := Curve{Label: p.Name}
	for _, n := range nodeCounts {
		w := mpi.MustWorld(mpi.Config{Net: p.New(n), Procs: n})
		mustRun(w, func(r *mpi.Rank) { r.Barrier() })
		c.X = append(c.X, int64(n))
		c.Y = append(c.Y, float64(w.MemoryUsage(0))/float64(units.MB))
	}
	return c
}
