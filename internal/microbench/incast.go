package microbench

import (
	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/units"
)

// Incast measures the hotspot pattern behind the paper's Alltoall analysis
// in isolation: senders ranks all stream to rank 0 simultaneously; the
// result is rank 0's aggregate receive rate in MB/s. The receiver's
// down-link (and, for small messages, its per-message processing) is the
// bottleneck — the congestion component of Figure 11.
func Incast(p cluster.Platform, senders int, size int64) float64 {
	nodes := senders + 1
	w := mpi.MustWorld(mpi.Config{Net: p.New(nodes), Procs: nodes})
	const perSender = 8
	var rate float64
	mustRun(w, func(r *mpi.Rank) {
		if r.Rank() == 0 {
			buf := r.Malloc(size)
			// Warm round.
			for s := 1; s <= senders; s++ {
				r.Recv(buf, s, 0)
			}
			start := r.Wtime()
			reqs := make([]*mpi.Request, 0, senders*perSender)
			for i := 0; i < perSender; i++ {
				for s := 1; s <= senders; s++ {
					reqs = append(reqs, r.Irecv(buf, s, 1))
				}
			}
			r.Waitall(reqs...)
			elapsed := r.Wtime() - start
			total := float64(size) * float64(senders) * float64(perSender)
			rate = total / elapsed.Seconds() / float64(units.MB)
		} else {
			buf := r.Malloc(size)
			r.Send(buf, 0, 0) // warm
			for i := 0; i < perSender; i++ {
				r.Send(buf, 0, 1)
			}
		}
	})
	return rate
}
