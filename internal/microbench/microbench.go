// Package microbench implements the paper's extended MPI micro-benchmark
// suite (Section 3): latency, windowed bandwidth, host overhead,
// bi-directional latency and bandwidth, communication/computation overlap,
// buffer-reuse sensitivity, intra-node performance, collective latency and
// memory usage. Each benchmark runs an MPI program on a freshly wired
// simulated testbed and reports the same quantity, in the same unit, as the
// corresponding figure of the paper.
package microbench

import (
	"mpinet/internal/cluster"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Curve is one line of a figure: Y[i] measured at X[i] (usually message
// sizes in bytes). The Y unit depends on the benchmark: microseconds for
// latency-like figures, MB/s (2^20) for bandwidth-like ones.
type Curve struct {
	Label string
	X     []int64
	Y     []float64
}

// Sizes1 is the small-message size sweep used by latency-like figures.
var Sizes1 = powers(4, 16*units.KB)

// Sizes2 is the full sweep used by bandwidth-like figures.
var Sizes2 = powers(4, units.MB)

// powers returns powers of two from lo to hi inclusive.
func powers(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// pingPongOneWay measures average one-way latency for one message size:
// a warmed-up ping-pong between ranks 0 and 1.
func pingPongOneWay(p cluster.Platform, nodes, procsPerNode int, size int64, iters int) sim.Time {
	w := mpi.MustWorld(mpi.Config{Net: p.New(nodes), Procs: 2, ProcsPerNode: procsPerNode})
	var rtt sim.Time
	mustRun(w, func(r *mpi.Rank) {
		buf := r.Malloc(size)
		peer := 1 - r.Rank()
		// Warmup round to fill registration caches and connections.
		if r.Rank() == 0 {
			r.Send(buf, peer, 0)
			r.Recv(buf, peer, 1)
		} else {
			r.Recv(buf, peer, 0)
			r.Send(buf, peer, 1)
		}
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Send(buf, peer, 0)
				r.Recv(buf, peer, 1)
			} else {
				r.Recv(buf, peer, 0)
				r.Send(buf, peer, 1)
			}
		}
		if r.Rank() == 0 {
			rtt = (r.Wtime() - start) / sim.Time(iters)
		}
	})
	return rtt / 2
}

// Latency reproduces Figure 1: one-way MPI latency (us) across sizes.
func Latency(p cluster.Platform, sizes []int64) Curve {
	return LatencyIters(p, sizes, 16)
}

// LatencyIters is Latency with a caller-chosen iteration count. Fault
// studies need it: under a small packet-drop probability the retransmit
// penalty only shows up in the average once each (platform, size) point
// runs enough ping-pongs to see drops, so the fault figures sweep with
// hundreds of iterations instead of Latency's 16.
func LatencyIters(p cluster.Platform, sizes []int64, iters int) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		c.X = append(c.X, s)
		c.Y = append(c.Y, pingPongOneWay(p, 2, 1, s, iters).Micros())
	}
	return c
}

// IntraLatency reproduces Figure 9: one-way latency between two ranks on
// one node.
func IntraLatency(p cluster.Platform, sizes []int64) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		c.X = append(c.X, s)
		c.Y = append(c.Y, pingPongOneWay(p, 1, 2, s, 16).Micros())
	}
	return c
}

// bandwidthRun measures uni-directional streaming bandwidth (MB/s) with the
// paper's windowed protocol: the sender issues window non-blocking sends,
// waits for them, and repeats; the receiver mirrors with receives and
// returns a short ack each round.
func bandwidthRun(p cluster.Platform, nodes, procsPerNode int, size int64, window, rounds int) float64 {
	w := mpi.MustWorld(mpi.Config{Net: p.New(nodes), Procs: 2, ProcsPerNode: procsPerNode})
	var bw float64
	mustRun(w, func(r *mpi.Rank) {
		peer := 1 - r.Rank()
		msg := r.Malloc(size)
		ack := r.Malloc(4)
		reqs := make([]*mpi.Request, window)
		// Warmup round.
		runRound := func(tag int) {
			if r.Rank() == 0 {
				for i := 0; i < window; i++ {
					reqs[i] = r.Isend(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Recv(ack, peer, 99)
			} else {
				for i := 0; i < window; i++ {
					reqs[i] = r.Irecv(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Send(ack, peer, 99)
			}
		}
		runRound(0)
		start := r.Wtime()
		for round := 0; round < rounds; round++ {
			runRound(1)
		}
		elapsed := r.Wtime() - start
		if r.Rank() == 0 {
			total := float64(size) * float64(window) * float64(rounds)
			bw = total / elapsed.Seconds() / float64(units.MB)
		}
	})
	return bw
}

// Bandwidth reproduces Figure 2 (one window size): uni-directional MPI
// bandwidth in MB/s.
func Bandwidth(p cluster.Platform, sizes []int64, window int) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		rounds := roundsFor(s, window)
		c.X = append(c.X, s)
		c.Y = append(c.Y, bandwidthRun(p, 2, 1, s, window, rounds))
	}
	return c
}

// IntraBandwidth reproduces Figure 10: bandwidth between two ranks on one
// node (window 16).
func IntraBandwidth(p cluster.Platform, sizes []int64) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		c.X = append(c.X, s)
		c.Y = append(c.Y, func() float64 {
			w := mpi.MustWorld(mpi.Config{Net: p.New(1), Procs: 2, ProcsPerNode: 2})
			return biOrUniIntraBW(w, s, 16, roundsFor(s, 16))
		}())
	}
	return c
}

func biOrUniIntraBW(w *mpi.World, size int64, window, rounds int) float64 {
	var bw float64
	mustRun(w, func(r *mpi.Rank) {
		peer := 1 - r.Rank()
		msg := r.Malloc(size)
		ack := r.Malloc(4)
		reqs := make([]*mpi.Request, window)
		runRound := func(tag int) {
			if r.Rank() == 0 {
				for i := 0; i < window; i++ {
					reqs[i] = r.Isend(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Recv(ack, peer, 99)
			} else {
				for i := 0; i < window; i++ {
					reqs[i] = r.Irecv(msg, peer, tag)
				}
				r.Waitall(reqs...)
				r.Send(ack, peer, 99)
			}
		}
		runRound(0)
		start := r.Wtime()
		for round := 0; round < rounds; round++ {
			runRound(1)
		}
		if r.Rank() == 0 {
			total := float64(size) * float64(window) * float64(rounds)
			bw = total / (r.Wtime() - start).Seconds() / float64(units.MB)
		}
	})
	return bw
}

// roundsFor keeps simulated work bounded while measuring enough volume.
func roundsFor(size int64, window int) int {
	target := 8 * units.MB
	r := int(target / (size * int64(window)))
	if r < 2 {
		return 2
	}
	if r > 64 {
		return 64
	}
	return r
}

// HostOverhead reproduces Figure 3: host CPU time per message (sender +
// receiver side, us) during the latency test.
func HostOverhead(p cluster.Platform, sizes []int64) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
		iters := 16
		var warm [2]sim.Time
		mustRun(w, func(r *mpi.Rank) {
			buf := r.Malloc(s)
			peer := 1 - r.Rank()
			round := func() {
				if r.Rank() == 0 {
					r.Send(buf, peer, 0)
					r.Recv(buf, peer, 1)
				} else {
					r.Recv(buf, peer, 0)
					r.Send(buf, peer, 1)
				}
			}
			round() // warmup: connection setup, first-touch registration
			warm[r.Rank()] = r.HostBusy()
			for i := 0; i < iters; i++ {
				round()
			}
		})
		// Steady-state host busy across both ranks, per one-way message.
		busy := w.HostBusy(0) + w.HostBusy(1) - warm[0] - warm[1]
		perMsg := busy / sim.Time(2*iters)
		c.X = append(c.X, s)
		c.Y = append(c.Y, perMsg.Micros())
	}
	return c
}

// BiLatency reproduces Figure 4: latency when both sides send
// simultaneously (us).
func BiLatency(p cluster.Platform, sizes []int64) Curve {
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
		iters := 16
		var lat sim.Time
		mustRun(w, func(r *mpi.Rank) {
			sbuf := r.Malloc(s)
			rbuf := r.Malloc(s)
			peer := 1 - r.Rank()
			exchange := func() {
				rr := r.Irecv(rbuf, peer, 0)
				sr := r.Isend(sbuf, peer, 0)
				r.Wait(sr)
				r.Wait(rr)
			}
			exchange()
			start := r.Wtime()
			for i := 0; i < iters; i++ {
				exchange()
			}
			if r.Rank() == 0 {
				lat = (r.Wtime() - start) / sim.Time(iters)
			}
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, lat.Micros())
	}
	return c
}

// BiBandwidth reproduces Figure 5: both directions streaming with window 16
// (sum of both directions, MB/s).
func BiBandwidth(p cluster.Platform, sizes []int64) Curve {
	const window = 16
	c := Curve{Label: p.Name}
	for _, s := range sizes {
		rounds := roundsFor(s, window)
		w := mpi.MustWorld(mpi.Config{Net: p.New(2), Procs: 2})
		var bw float64
		mustRun(w, func(r *mpi.Rank) {
			peer := 1 - r.Rank()
			sbuf := r.Malloc(s)
			rbuf := r.Malloc(s)
			sreqs := make([]*mpi.Request, window)
			rreqs := make([]*mpi.Request, window)
			runRound := func() {
				for i := 0; i < window; i++ {
					rreqs[i] = r.Irecv(rbuf, peer, 0)
				}
				for i := 0; i < window; i++ {
					sreqs[i] = r.Isend(sbuf, peer, 0)
				}
				r.Waitall(sreqs...)
				r.Waitall(rreqs...)
			}
			runRound()
			start := r.Wtime()
			for round := 0; round < rounds; round++ {
				runRound()
			}
			if r.Rank() == 0 {
				// Both directions moved size*window*rounds each.
				total := 2 * float64(s) * float64(window) * float64(rounds)
				bw = total / (r.Wtime() - start).Seconds() / float64(units.MB)
			}
		})
		c.X = append(c.X, s)
		c.Y = append(c.Y, bw)
	}
	return c
}

func mustRun(w *mpi.World, f func(*mpi.Rank)) {
	if err := w.Run(f); err != nil {
		panic(err)
	}
}
