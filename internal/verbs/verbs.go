// Package verbs models the InfiniBand side of the paper's testbed: Mellanox
// InfiniHost MT23108 HCAs on PCI-X (or PCI, for the Figure 26–28
// experiments), an InfiniScale-class crossbar switch, and a VAPI-like verbs
// layer with Reliable Connection semantics, mandatory memory registration
// and RDMA — the substrate MVAPICH 0.9.1 runs on.
//
// Mechanisms represented:
//
//   - Separate HCA transmit and receive processing engines: bi-directional
//     traffic barely degrades latency (Figure 4).
//   - The host bus is shared by both DMA directions: uni-directional
//     bandwidth tops out at ~841 MB/s, bi-directional at the bus's ~900
//     (Figures 2 and 5); swapping PCI-X for PCI lowers the lid to ~378
//     (Figure 27).
//   - Registration with a pin-down cache: the rendezvous (zero-copy) path
//     pays per-page registration on cache misses, so buffer reuse matters
//     above the 2 KB eager threshold (Figures 7, 8).
//   - Per-Reliable-Connection resources: memory grows with the number of
//     peers (Figure 13).
package verbs

import (
	"fmt"

	"mpinet/internal/bus"
	"mpinet/internal/dev"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/msgtrace"
	"mpinet/internal/shmem"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Config selects the InfiniBand platform variant.
type Config struct {
	Nodes       int
	Bus         bus.Kind // PCIX64x133 (default testbed) or PCI64x66
	SwitchPorts int      // 8 (InfiniScale) or 24 (Topspin 360)

	// EagerThreshold overrides MVAPICH's default 2 KB eager/rendezvous
	// switch point (0 = default). Exposed for ablation studies.
	EagerThreshold int64

	// OnDemandConnections enables the connection-management extension the
	// paper points to for its memory-usage finding (Section 3.8, citing Wu
	// et al.): Reliable Connections are established on first use instead of
	// at startup, so the Figure 13 memory growth tracks peers actually
	// communicated with, at the price of a setup stall on first contact.
	OnDemandConnections bool

	// HWMulticast enables the hardware-supported collective extension the
	// paper's Section 3.7 announces (Kini et al.): broadcasts ride a
	// switch-replicated multicast instead of a point-to-point tree.
	HWMulticast bool

	// FatTree, when non-nil, replaces the single crossbar with a two-level
	// folded-Clos fabric built from crossbar elements — the scaling
	// extension for clusters larger than one switch.
	FatTree *fabric.FatTreeConfig

	// Clos, when non-nil, replaces the single crossbar with a parameterized
	// multi-stage Clos fabric (the redesigned topology API); it wins over
	// FatTree. LinkRate/Crossing/WireLatency zero-values are filled with the
	// InfiniBand calibration.
	Clos *fabric.ClosConfig

	// Domains, when non-nil, is the node-domain placement capability: the
	// network can run each node's device state on its own engine once
	// ActivateDomains is called (see dev.DomainNetwork).
	Domains *dev.Domains

	// Faults, when non-nil, injects the plan's link/NIC/bus faults and
	// enables the RC retransmit machinery below.
	Faults *faults.Plan
}

// DefaultConfig is the paper's 8-node OSU testbed.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Bus: bus.PCIX64x133, SwitchPorts: 8}
}

// Calibration constants. Physical rates come from the hardware description
// in the paper; software costs are calibrated so the anchor measurements
// quoted in the paper's text are matched (see DESIGN.md §5).
const (
	// linkRate is the delivered InfiniBand 4x data rate: 10 Gbps signalling,
	// 8b/10b coding, minus flow-control/header share.
	linkRateBps = 0.92e9
	// hcaSetup is HCA work per message visible as latency (WQE fetch,
	// protection checks) but pipelined off the data path.
	hcaSetup = 1600 * units.Nanosecond
	// hcaPerChunk is HCA occupancy per packet/chunk; one engine per
	// direction.
	hcaPerChunk = 250 * units.Nanosecond
	// hcaRate is the HCA's internal data path rate, faster than the link.
	hcaRateBps = 1.4e9
	// wireLatency covers cable flight plus port logic per hop.
	wireLatency = 120 * units.Nanosecond
	// switchCrossing is the InfiniScale cut-through crossing time.
	switchCrossing = 200 * units.Nanosecond
	// sendOverhead / recvOverhead are host costs per message (descriptor
	// build + doorbell; completion poll + bookkeeping). Sum = the paper's
	// ~1.7 us host overhead.
	sendOverhead = 900 * units.Nanosecond
	recvOverhead = 800 * units.Nanosecond
	// overheadPerKB adds the slight size dependence visible in Figure 3.
	overheadPerKB = 60 * units.Nanosecond
	// pioPenaltyPCI models slower doorbell/descriptor MMIO across plain
	// PCI; it is the bulk of the +0.6 us small-message latency of Fig. 26.
	pioPenaltyPCI = 500 * units.Nanosecond
	// eagerMax is MVAPICH's eager threshold; the Figure 2 bandwidth dip at
	// 2 KB is the switch to rendezvous.
	eagerMax = 2 * 1024
	// copyBW is host memcpy bandwidth for eager staging copies.
	copyBWMBps = 1600
	// Registration cost: VAPI register-memory-region verb.
	regPerOp    = 22 * units.Microsecond
	regPerPage  = 3500 * units.Nanosecond
	deregPerOp  = 8 * units.Microsecond
	deregPage   = 1200 * units.Nanosecond
	pinCapPages = 32768 // 128 MB pin-down cache
	// Memory model (Figure 13): MPI base plus per-RC-connection buffers
	// (pre-posted receives, RDMA fast-path buffers, QP/CQ state).
	memBase    = 14 * units.MB
	memPerPeer = 5200 * units.KB
	// connSetup is the three-way RC establishment cost paid on first
	// contact under on-demand connection management.
	connSetup = 350 * units.Microsecond
)

// rcRetry is the VAPI Reliable Connection retransmit policy: the HCA
// detects a missing ACK after a local-ack-timeout and resends, doubling
// the timeout each consecutive retry; after retry_count resends it posts a
// completion with a transport-retry-exceeded error.
var rcRetry = faults.RetryPolicy{Limit: 7, Interval: 150 * units.Microsecond, Exponential: true}

// Network is a wired InfiniBand cluster.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	topo  fabric.Topology
	nodes []*nodeHW
	met   *metrics.Registry
	inj   *faults.Injector
	rec   *msgtrace.Recorder

	// dynamic marks adaptive routing: paths are chosen per message and
	// must not be cached.
	dynamic bool
	// scale flips on domain mode: per-node engines, split transfers, and
	// the per-source picosecond skew that keeps sharded commit order equal
	// to serial dispatch order.
	scale bool
	// cfgErr carries a topology-validation failure to mpi.NewWorld
	// (dev.ConfigErrer); construction itself cannot return an error.
	cfgErr error
}

type nodeHW struct {
	bus   *bus.Bus
	hcaTx *sim.Pipe
	hcaRx *sim.Pipe
	link  *fabric.Link
}

// New wires an InfiniBand network with the given configuration.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes < 1 {
		panic("verbs: need at least one node")
	}
	if cfg.SwitchPorts == 0 {
		cfg.SwitchPorts = 8
	}
	n := &Network{eng: eng, cfg: cfg, inj: faults.NewInjector(cfg.Faults)}
	if cfg.Clos != nil {
		cc := *cfg.Clos
		if cc.LinkRate == 0 {
			cc.LinkRate = units.BytesPerSecond(linkRateBps)
		}
		if cc.Crossing == 0 {
			cc.Crossing = switchCrossing
		}
		if cc.WireLatency == 0 {
			cc.WireLatency = wireLatency
		}
		topo, err := fabric.NewClos("ib-clos", cc, cfg.Nodes)
		if err != nil {
			n.cfgErr = fmt.Errorf("verbs: %w", err)
		} else {
			n.topo = topo
			n.dynamic = cc.Routing == fabric.Adaptive
			if cfg.Faults.HasElements() {
				if err := topo.SetElementFaults(cfg.Faults, eng); err != nil {
					n.cfgErr = fmt.Errorf("verbs: %w", err)
				}
				// Element deaths invalidate cached paths: every message must
				// re-resolve its route so detection-time re-hashes take effect.
				n.dynamic = true
			}
		}
	} else if cfg.FatTree != nil {
		ft := *cfg.FatTree
		if ft.LinkRate == 0 {
			ft.LinkRate = units.BytesPerSecond(linkRateBps)
		}
		if ft.Crossing == 0 {
			ft.Crossing = switchCrossing
		}
		if ft.WireLatency == 0 {
			ft.WireLatency = wireLatency
		}
		tree := fabric.NewFatTree("ib-fattree", ft)
		if cfg.Nodes > tree.Nodes() {
			panic(fmt.Sprintf("verbs: %d nodes exceed fat-tree capacity %d", cfg.Nodes, tree.Nodes()))
		}
		n.topo = tree
	} else {
		if cfg.Nodes > cfg.SwitchPorts {
			panic(fmt.Sprintf("verbs: %d nodes exceed %d switch ports", cfg.Nodes, cfg.SwitchPorts))
		}
		n.topo = fabric.NewCrossbarTopology(fabric.NewSwitch("infiniscale", fabric.SwitchConfig{
			Ports:    cfg.SwitchPorts,
			Crossing: switchCrossing,
			Rate:     units.BytesPerSecond(linkRateBps),
		}))
	}
	if cfg.Faults.HasElements() && cfg.Clos == nil {
		n.cfgErr = fmt.Errorf("verbs: fault plan schedules fabric-element deaths but the topology is not a Clos")
	}
	n.announceElementDeaths()
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("iba%d", i)
		n.nodes = append(n.nodes, &nodeHW{
			bus:   bus.New(name+"/bus", cfg.Bus),
			hcaTx: sim.NewPipe(name+"/hca-tx", units.BytesPerSecond(hcaRateBps), hcaPerChunk, 0),
			hcaRx: sim.NewPipe(name+"/hca-rx", units.BytesPerSecond(hcaRateBps), hcaPerChunk, 0),
			link: fabric.NewLink(name+"/link", fabric.LinkConfig{
				Rate:     units.BytesPerSecond(linkRateBps),
				PerChunk: 50 * units.Nanosecond,
				MinFrame: 64,
			}),
		})
	}
	return n
}

// Name implements dev.Network.
func (n *Network) Name() string { return "IBA" }

// Topology exposes the wired fabric topology — a debug surface for tests
// that flip fabric-level verification knobs (e.g. fabric.(*Clos).SetRouteCache)
// on a built network.
func (n *Network) Topology() fabric.Topology { return n.topo }

// Engine implements dev.Network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Nodes implements dev.Network.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MinLinkLatency implements dev.LookaheadReporter: no message leaves a node
// and lands on another in less than one wire hop, whatever the protocol
// stacked above adds.
func (n *Network) MinLinkLatency() sim.Time { return wireLatency }

// ShmemBelow implements dev.Network: MVAPICH uses the shared-memory channel
// for intra-node messages under 16 KB and NIC loopback above.
func (n *Network) ShmemBelow() int64 { return 16 * units.KB }

// FaultPlan implements dev.FaultPlanner (nil when faults are off).
func (n *Network) FaultPlan() *faults.Plan { return n.inj.Plan() }

// Diameter implements dev.DiameterReporter.
func (n *Network) Diameter() int {
	if n.topo == nil {
		return 1
	}
	return fabric.DiameterOf(n.topo)
}

// DeadElement implements dev.ElementHealth: forwarded to the fabric, which
// knows which of the plan's element kills is in effect.
func (n *Network) DeadElement(now sim.Time) (string, int64, bool) {
	if eh, ok := n.topo.(interface {
		DeadElement(sim.Time) (string, int64, bool)
	}); ok {
		return eh.DeadElement(now)
	}
	return "", 0, false
}

// announceElementDeaths schedules one FlightElementDown incident per
// switch kill at its death instant, so a postmortem names the dead element
// even when no packet happened to ride it. Node crashes are announced by
// the MPI layer, which owns rank death; emitting them here too would
// duplicate the incident on every rail of a bond.
func (n *Network) announceElementDeaths() {
	p := n.inj.Plan()
	if !p.HasElements() || n.cfgErr != nil || n.cfg.Clos == nil {
		return
	}
	uplinks := n.cfg.Clos.Uplinks()
	for _, k := range p.SwitchKills {
		code := msgtrace.ElemCode(msgtrace.ElemLeaf, k.Index)
		if k.Level >= 1 {
			code = msgtrace.ElemCode(msgtrace.ElemPlane, k.Index%uplinks)
		}
		at, repair := k.At, int64(k.RepairAt)
		c := code
		n.eng.At(at, func() {
			n.rec.Flight(msgtrace.FlightElementDown, at, -1, 0, msgtrace.StageHop, c, repair)
		})
	}
}

// AttachTracer implements dev.TraceAttacher.
func (n *Network) AttachTracer(rec *msgtrace.Recorder) { n.rec = rec }

// ConfigErr implements dev.ConfigErrer.
func (n *Network) ConfigErr() error { return n.cfgErr }

// Domains implements dev.DomainNetwork.
func (n *Network) Domains() *dev.Domains { return n.cfg.Domains }

// ActivateDomains implements dev.DomainNetwork: flips the network into
// domain (scale) mode. Hardware multicast fans out across every node from
// one event and a fault plan retransmits on verdicts read at delivery time —
// both are single-domain mechanisms, so either refuses activation.
func (n *Network) ActivateDomains() bool {
	if n.cfg.Domains == nil || n.cfg.HWMulticast || n.inj != nil {
		return false
	}
	n.scale = true
	return true
}

// engineFor returns the engine owning a node's device state: the shared
// engine in classic mode, the node's domain engine in scale mode.
func (n *Network) engineFor(node int) *sim.Engine {
	if !n.scale {
		return n.eng
	}
	return n.cfg.Domains.EngineFor(node)
}

// skew is the deterministic per-source-node latency perturbation of domain
// mode: one picosecond times (node+1), added to every cross-node hop. It
// breaks the systematic same-instant ties lockstep SPMD programs generate
// (identical compute constants on every rank), so cross-shard commit order
// — sorted (time, source shard, sequence) — agrees with serial dispatch
// order at every collision point. At 4096 nodes the perturbation tops out
// near 4 ns, well under any modelled wire latency.
func (n *Network) skew(node int) sim.Time {
	if !n.scale {
		return 0
	}
	return sim.Time(node + 1)
}

// ShmemConfig returns the intra-node channel parameters for MVAPICH.
func (n *Network) ShmemConfig() shmem.Config {
	c := shmem.DefaultConfig()
	c.Handshake = 1000 * units.Nanosecond // MVAPICH smp channel: ~1.6us small-message latency
	return c
}

// InstrumentMetrics implements metrics.Instrumentable: per-node bus, HCA
// engine, and link counters plus device-level spans, and the switching
// fabric's per-port counters. Endpoints created afterwards bind protocol
// counters and pin-cache probes to the same registry.
func (n *Network) InstrumentMetrics(m *metrics.Registry) {
	if m == nil {
		return
	}
	n.met = m
	for i, hw := range n.nodes {
		prefix := metrics.NodePrefix(i) + "nic"
		hw.bus.Instrument(m, i)
		hw.hcaTx.Instrument(m, prefix+"/tx")
		hw.hcaRx.Instrument(m, prefix+"/rx")
		hw.hcaTx.RecordSpans(m, i, "tx", "nic")
		hw.hcaRx.RecordSpans(m, i, "rx", "nic")
		hw.link.Instrument(m, i)
	}
	if ti, ok := n.topo.(interface{ Instrument(*metrics.Registry) }); ok {
		ti.Instrument(m)
	}
	n.inj.Instrument(m)
}

// Utilizations implements dev.UtilizationReporter.
func (n *Network) Utilizations() []dev.Utilization {
	var out []dev.Utilization
	for _, hw := range n.nodes {
		out = append(out,
			dev.Utilization{Resource: hw.bus.Name(), Busy: hw.bus.BusyTime(), Jobs: hw.bus.Jobs()},
			dev.Utilization{Resource: hw.hcaTx.Name(), Busy: hw.hcaTx.BusyTime(), Jobs: hw.hcaTx.Jobs()},
			dev.Utilization{Resource: hw.hcaRx.Name(), Busy: hw.hcaRx.BusyTime(), Jobs: hw.hcaRx.Jobs()},
			dev.Utilization{Resource: hw.link.Up().Name(), Busy: hw.link.Up().BusyTime(), Jobs: hw.link.Up().Jobs()},
			dev.Utilization{Resource: hw.link.Down().Name(), Busy: hw.link.Down().BusyTime(), Jobs: hw.link.Down().Jobs()},
		)
	}
	return out
}

// NewEndpoint implements dev.Network.
func (n *Network) NewEndpoint(node int) dev.Endpoint {
	if node < 0 || node >= len(n.nodes) {
		panic("verbs: bad node index")
	}
	ep := &endpoint{
		net:  n,
		node: node,
		pin: memreg.NewPinCache(
			memreg.CostModel{PerOp: regPerOp, PerPage: regPerPage},
			memreg.CostModel{PerOp: deregPerOp, PerPage: deregPage},
			pinCapPages),
	}
	ep.nic = dev.NewNICCounters(n.met, node)
	ep.connSetups = n.met.Counter(metrics.NodePrefix(node) + "nic/conn_setups")
	ep.retries = n.met.Counter(metrics.NodePrefix(node) + "nic/retries")
	ep.retryErrors = n.met.Counter(metrics.NodePrefix(node) + "nic/retry_exhausted")
	dev.InstrumentPinCache(n.met, node, ep.pin)
	return ep
}

type endpoint struct {
	net  *Network
	node int
	pin  *memreg.PinCache

	// sink receives permanent transfer failures (dev.FaultReporter).
	sink func(error)
	// onRetry observes each individual retransmit (dev.RetryReporter).
	onRetry func()

	// metric handles (nil-safe no-ops when instrumentation is off)
	nic         dev.NICCounters
	connSetups  *metrics.Counter
	retries     *metrics.Counter
	retryErrors *metrics.Counter

	// peers holds the resolved per-destination send state: the assembled
	// hardware path (the stage list for a (src, dst) pair never changes
	// under deterministic routing), its source-side stage count, and the
	// RC-connection flag for on-demand mode. One dense slice of lazily
	// materialized blocks: the hot path is a single index — no map lookups —
	// while an endpoint in a 4k-node world still only pays for the peers it
	// actually speaks to. Adaptive routing bypasses the cached path (the
	// up-link choice is per message) but keeps using the connection flag.
	peers []*peerState
	// nconn counts established RC connections under on-demand mode.
	nconn int
}

// peerState is one destination's resolved send state.
type peerState struct {
	path      []fabric.PathStage
	srcStages int
	connected bool
}

// peer returns dst's state block, materializing it (and the index slice)
// on first contact.
func (ep *endpoint) peer(dst int) *peerState {
	if ep.peers == nil {
		ep.peers = make([]*peerState, len(ep.net.nodes))
	}
	p := ep.peers[dst]
	if p == nil {
		p = &peerState{}
		ep.peers[dst] = p
	}
	return p
}

// OnFault implements dev.FaultReporter.
func (ep *endpoint) OnFault(sink func(error)) { ep.sink = sink }

// OnRetry implements dev.RetryReporter.
func (ep *endpoint) OnRetry(observe func()) { ep.onRetry = observe }

// retried counts one retransmit and feeds the passive health observer.
func (ep *endpoint) retried() {
	ep.retries.Inc()
	if ep.onRetry != nil {
		ep.onRetry()
	}
}

// fail reports a permanent transfer failure to the registered sink. With
// no sink (device used bare, without the MPI layer) the error is raised
// directly: losing it would turn a modelled failure into a silent hang.
func (ep *endpoint) fail(err error) {
	ep.retryErrors.Inc()
	if ep.sink != nil {
		ep.sink(err)
		return
	}
	panic(err)
}

func (ep *endpoint) Node() int { return ep.node }

func (ep *endpoint) EagerThreshold() int64 {
	if ep.net.cfg.EagerThreshold > 0 {
		return ep.net.cfg.EagerThreshold
	}
	return eagerMax
}

func (ep *endpoint) NICProgress() bool    { return false }
func (ep *endpoint) AcquireOnEager() bool { return false }
func (ep *endpoint) IssueStall() sim.Time { return 0 }

func (ep *endpoint) SendOverhead(size int64) sim.Time {
	return sendOverhead + sim.Time(size/units.KB)*overheadPerKB
}

func (ep *endpoint) RecvOverhead(size int64) sim.Time {
	return recvOverhead + sim.Time(size/units.KB)*overheadPerKB
}

func (ep *endpoint) CopyTime(size int64) sim.Time {
	return units.MBps(copyBWMBps).TimeFor(size)
}

func (ep *endpoint) AcquireBuf(b memreg.Buf) sim.Time {
	return ep.pin.Acquire(b)
}

func (ep *endpoint) MemoryUsage(npeers int) int64 {
	if ep.net.cfg.OnDemandConnections {
		// Only established connections hold buffer resources.
		return memBase + int64(ep.nconn)*memPerPeer
	}
	return memBase + int64(npeers)*memPerPeer
}

// connect pays the RC setup cost on first contact with a peer node under
// on-demand connection management; zero otherwise.
func (ep *endpoint) connect(dst int) sim.Time {
	if !ep.net.cfg.OnDemandConnections || dst == ep.node {
		return 0
	}
	p := ep.peer(dst)
	if p.connected {
		return 0
	}
	p.connected = true
	ep.nconn++
	ep.connSetups.Inc()
	return connSetup
}

// PinCache exposes the registration cache for tests and diagnostics.
func (ep *endpoint) PinCache() *memreg.PinCache { return ep.pin }

// pioPenalty is the per-message latency added by doorbell/descriptor MMIO,
// bus dependent.
func (ep *endpoint) pioPenalty() sim.Time {
	if ep.net.cfg.Bus == bus.PCI64x66 {
		return pioPenaltyPCI
	}
	return 0
}

// path returns the staged hardware path to dst, assembled once per
// destination and cached in the peer block — except under adaptive routing,
// where the fabric picks the up-link per message and the path must be
// rebuilt.
func (ep *endpoint) path(dst int) []fabric.PathStage {
	p, _ := ep.resolved(dst)
	return p
}

// resolved returns the staged path to dst and its source-side stage count —
// bus, HCA TX and link up, plus whatever the topology keeps on the source
// leaf (TransferCut runs those on the source's domain engine). Both are
// cached in the peer block; adaptive routing rebuilds the path per message.
func (ep *endpoint) resolved(dst int) ([]fabric.PathStage, int) {
	if ep.net.dynamic && dst != ep.node {
		return ep.buildPath(dst), 3 + fabric.SrcStagesOf(ep.net.topo, ep.node, dst)
	}
	p := ep.peer(dst)
	if p.path == nil {
		p.path = ep.buildPath(dst)
		p.srcStages = 3 + fabric.SrcStagesOf(ep.net.topo, ep.node, dst)
	}
	return p.path, p.srcStages
}

// buildPath assembles the staged hardware path to dst. The fabric is cut-
// through: injection serializes on the source's up-link and drain on the
// destination's down-link (which doubles as the switch output port in a
// star), with the switch crossing as pure latency. Same-node traffic loops
// through the HCA without touching the link or switch.
func (ep *endpoint) buildPath(dst int) []fabric.PathStage {
	src := ep.net.nodes[ep.node]
	if dst == ep.node {
		return []fabric.PathStage{
			{Stage: src.bus, Latency: ep.pioPenalty()},
			{Stage: src.hcaTx, Latency: hcaSetup},
			{Stage: src.hcaRx, Latency: hcaSetup},
			{Stage: src.bus},
		}
	}
	d := ep.net.nodes[dst]
	between, downLat := ep.net.topo.Between(ep.node, dst)
	stages := []fabric.PathStage{
		{Stage: src.bus, Latency: ep.pioPenalty()},
		{Stage: src.hcaTx, Latency: hcaSetup},
		{Stage: src.link.Up(), Latency: wireLatency + ep.net.skew(ep.node)},
	}
	stages = append(stages, between...)
	return append(stages,
		fabric.PathStage{Stage: d.link.Down(), Latency: downLat + wireLatency},
		fabric.PathStage{Stage: d.hcaRx, Latency: hcaSetup},
		fabric.PathStage{Stage: d.bus},
	)
}

func (ep *endpoint) transfer(dst int, size int64, deliver func()) {
	if ep.net.scale {
		// Domain mode: the attempt is fault-free by construction (activation
		// refuses fault plans) and untraced; the staged path is split at the
		// wire so each node's hardware state stays on its own engine.
		eng := ep.net.engineFor(ep.node)
		start := eng.Now() + ep.connect(dst)
		path, srcN := ep.resolved(dst)
		fabric.TransferCut(eng, ep.net.engineFor(dst), path, srcN,
			size, fabric.ChunkFor(size), start, func(sim.Time) { deliver() })
		return
	}
	eng := ep.net.eng
	rec := ep.net.rec
	// Capture trace context synchronously at issue time: the MPI layer (or
	// the rail bond) scoped it around this call.
	tid, rail := rec.Cur(), rec.CurRail()
	start := eng.Now() + ep.connect(dst)
	inj := ep.net.inj
	if inj == nil || dst == ep.node {
		// Healthy fabric, or HCA loopback that never touches the cable.
		ep.wireAttempt(ep.path(dst), tid, rail, 0, size, start, func(sim.Time) { deliver() })
		return
	}
	start += inj.NICStall(ep.node, eng.Now()) + inj.BusDelay(ep.node, eng.Now())
	// VAPI RC reliability: each attempt re-resolves the route and re-runs
	// the full staged path (the retransmit re-occupies bus, HCA engines and
	// link), the verdict lands at delivery time, and a lost or CRC-failed
	// packet is retransmitted after an exponentially growing
	// local-ack-timeout. Under element faults the re-resolve is what heals:
	// a retry after the detection delay re-hashes onto a surviving plane,
	// while a detected dead end (crashed peer, partitioned fabric) fails
	// typed immediately instead of burning the retry budget.
	attempt := 1
	var try func(at sim.Time)
	try = func(at sim.Time) {
		if inj.NodeDeadDetected(dst, at) || inj.NodeDeadDetected(ep.node, at) {
			node := dst
			if inj.NodeDeadDetected(ep.node, at) {
				node = ep.node
			}
			ep.fail(&faults.NodeDownError{Node: node, At: at})
			return
		}
		path := ep.path(dst)
		fate := fabric.LastRouteOf(ep.net.topo)
		if fate.State == fabric.RoutePartitioned {
			ep.fail(&faults.PartitionError{Src: ep.node, Dst: dst, Element: fate.Element})
			return
		}
		ep.wireAttempt(path, tid, rail, uint8(attempt-1), size, at,
			func(end sim.Time) {
				v := faults.Drop // black-holed: structural loss, no PRNG draw
				if fate.State != fabric.RouteBlackhole {
					v = inj.VerdictExtra(ep.node, dst, end, fate.ExtraDrop)
				}
				if v == faults.Deliver {
					deliver()
					return
				}
				if attempt > rcRetry.Limit {
					ep.fail(&faults.LinkError{Src: ep.node, Dst: dst,
						Attempts: attempt, Bytes: size, Proto: "RC retransmit"})
					return
				}
				delay := rcRetry.Delay(attempt)
				attempt++
				ep.retried()
				rec.Flight(msgtrace.FlightRetransmit, end, ep.node, tid, msgtrace.StageWire, int64(attempt-1), int64(dst))
				rec.Span(tid, msgtrace.StageBackoff, ep.node, rail, uint8(attempt-1), -1, end, end+delay, size)
				eng.At(end+delay, func() { try(eng.Now()) })
			})
	}
	try(start)
}

// wireAttempt runs one transfer attempt over the staged path, recording the
// attempt's wire span (and per-hop fabric detail) when the message is
// sampled; unsampled messages take the plain zero-extra-cost path. The path
// is resolved by the caller: retry loops must pair each attempt's route
// with the fate annotation read at resolve time.
func (ep *endpoint) wireAttempt(path []fabric.PathStage, tid msgtrace.ID, rail int8, attempt uint8, size int64, at sim.Time, done func(sim.Time)) {
	rec := ep.net.rec
	if rec.Sampled(tid) {
		inner := done
		done = func(end sim.Time) {
			rec.Span(tid, msgtrace.StageWire, ep.node, rail, attempt, -1, at, end, size)
			inner(end)
		}
		fabric.TransferTraced(ep.net.eng, path, size, fabric.ChunkFor(size), at,
			rec, tid, ep.node, rail, attempt, done)
		return
	}
	fabric.Transfer(ep.net.eng, path, size, fabric.ChunkFor(size), at, done)
}

// Multicast implements dev.Multicaster when the platform enables hardware
// multicast: the payload is injected once and the switch replicates it onto
// every down-link. Only compiled in spirit — the method exists always, but
// the MPI layer consults HWMulticastEnabled before using it.
func (ep *endpoint) Multicast(size int64, deliver func(node int)) {
	eng := ep.net.eng
	src := ep.net.nodes[ep.node]
	up := []fabric.PathStage{
		{Stage: src.bus, Latency: ep.pioPenalty()},
		{Stage: src.hcaTx, Latency: hcaSetup},
		{Stage: src.link.Up(), Latency: wireLatency},
	}
	fabric.Transfer(eng, up, size+32, fabric.ChunkFor(size), eng.Now(), func(at sim.Time) {
		for i := range ep.net.nodes {
			if i == ep.node {
				continue
			}
			i := i
			d := ep.net.nodes[i]
			between, downLat := ep.net.topo.Between(ep.node, i)
			down := append(append([]fabric.PathStage{}, between...),
				fabric.PathStage{Stage: d.link.Down(), Latency: downLat + wireLatency},
				fabric.PathStage{Stage: d.hcaRx, Latency: hcaSetup},
				fabric.PathStage{Stage: d.bus},
			)
			fabric.Transfer(eng, down, size+32, fabric.ChunkFor(size), at,
				func(sim.Time) { deliver(i) })
		}
	})
}

// HWMulticastEnabled reports whether the platform was configured with the
// hardware-collective extension.
func (ep *endpoint) HWMulticastEnabled() bool { return ep.net.cfg.HWMulticast }

// Eager implements dev.Endpoint: MVAPICH sends small messages by RDMA write
// into pre-registered remote buffers; on the wire this is envelope+payload
// through the full path.
func (ep *endpoint) Eager(dst int, size int64, deliver func()) {
	ep.nic.Eager(size)
	ep.transfer(dst, size+32, deliver) // 32-byte envelope/header
}

// Control implements dev.Endpoint (RTS/CTS/FIN as small RDMA writes).
func (ep *endpoint) Control(dst int, deliver func()) {
	ep.nic.Control()
	ep.transfer(dst, 64, deliver)
}

// Bulk implements dev.Endpoint: the rendezvous payload as one RDMA write.
func (ep *endpoint) Bulk(dst int, size int64, deliver func()) {
	ep.nic.Bulk(size)
	ep.transfer(dst, size, deliver)
}

var _ dev.Network = (*Network)(nil)
var _ dev.Endpoint = (*endpoint)(nil)
