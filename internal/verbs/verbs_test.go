package verbs

import (
	"testing"

	"mpinet/internal/bus"
	"mpinet/internal/fabric"
	"mpinet/internal/memreg"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestNetworkBasics(t *testing.T) {
	n := New(sim.New(), DefaultConfig(8))
	if n.Name() != "IBA" || n.Nodes() != 8 {
		t.Fatalf("name=%q nodes=%d", n.Name(), n.Nodes())
	}
	if n.ShmemBelow() != 16*units.KB {
		t.Fatalf("ShmemBelow = %d", n.ShmemBelow())
	}
}

func TestTooManyNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("9 nodes on an 8-port switch did not panic")
		}
	}()
	New(sim.New(), Config{Nodes: 9, SwitchPorts: 8})
}

func TestTopspinConfigAllows16(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.SwitchPorts = 24
	n := New(sim.New(), cfg)
	if n.Nodes() != 16 {
		t.Fatal("Topspin config failed")
	}
}

func TestEagerDeliveryOrdering(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	ep := n.NewEndpoint(0)
	var order []int
	ep.Eager(1, 64, func() { order = append(order, 1) })
	ep.Eager(1, 64, func() { order = append(order, 2) })
	ep.Control(1, func() { order = append(order, 3) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order %v, want FIFO", order)
	}
}

func TestLoopbackPath(t *testing.T) {
	measure := func(dst int, size int64) sim.Time {
		eng := sim.New()
		n := New(eng, DefaultConfig(2))
		ep := n.NewEndpoint(0)
		var at sim.Time
		ep.Bulk(dst, size, func() { at = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	// Small messages: loopback skips the link and switch, so it is faster.
	if lb, rm := measure(0, 64), measure(1, 64); lb >= rm {
		t.Fatalf("small loopback %v not faster than remote %v", lb, rm)
	}
	// Bulk: loopback crosses the SAME PCI-X bus twice, so it is slower than
	// the pipelined two-bus remote path — the mechanism that caps MVAPICH's
	// intra-node loopback near 450 MB/s in Figure 10.
	size := int64(256 * units.KB)
	lb, rm := measure(0, size), measure(1, size)
	if lb <= rm {
		t.Fatalf("bulk loopback %v should be slower than remote %v (double bus crossing)", lb, rm)
	}
	bw := float64(size) / lb.Seconds() / float64(units.MB)
	if bw < 400 || bw > 500 {
		t.Fatalf("loopback bulk bandwidth = %.0f MB/s, want ~450", bw)
	}
}

func TestRegistrationCostOnlyOnMiss(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0).(*endpoint)
	buf := memreg.Buf{Addr: 0, Size: 64 * units.KB}
	first := ep.AcquireBuf(buf)
	if first <= 0 {
		t.Fatal("first acquire free")
	}
	if again := ep.AcquireBuf(buf); again != 0 {
		t.Fatalf("warm acquire cost %v", again)
	}
	if ep.PinCache().Misses == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestMemoryGrowsPerPeer(t *testing.T) {
	n := New(sim.New(), DefaultConfig(8))
	ep := n.NewEndpoint(0)
	if ep.MemoryUsage(7) <= ep.MemoryUsage(1) {
		t.Fatal("per-connection memory not growing")
	}
}

func TestPCIVariantSlower(t *testing.T) {
	measure := func(k bus.Kind) sim.Time {
		eng := sim.New()
		cfg := DefaultConfig(2)
		cfg.Bus = k
		n := New(eng, cfg)
		ep := n.NewEndpoint(0)
		var at sim.Time
		ep.Bulk(1, 256*units.KB, func() { at = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if x, p := measure(bus.PCIX64x133), measure(bus.PCI64x66); p <= x {
		t.Fatalf("PCI bulk (%v) not slower than PCI-X (%v)", p, x)
	}
}

func TestDeviceProperties(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	ep := n.NewEndpoint(0)
	if ep.NICProgress() {
		t.Error("VAPI rendezvous is host-driven")
	}
	if ep.AcquireOnEager() {
		t.Error("VAPI eager path copies through pre-registered staging")
	}
	if ep.EagerThreshold() != 2*1024 {
		t.Errorf("eager threshold = %d, want 2KB (the Figure 2 dip)", ep.EagerThreshold())
	}
	if ep.IssueStall() != 0 {
		t.Error("VAPI has no command-queue stall")
	}
	if ep.SendOverhead(4)+ep.RecvOverhead(4) > 2*units.Microsecond {
		t.Error("small-message host overhead above the paper's ~1.7us")
	}
}

func TestMulticastDeliversToAllNodes(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(4)
	cfg.HWMulticast = true
	n := New(eng, cfg)
	ep := n.NewEndpoint(0).(*endpoint)
	if !ep.HWMulticastEnabled() {
		t.Fatal("multicast not enabled")
	}
	got := map[int]bool{}
	ep.Multicast(1024, func(node int) { got[node] = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] {
		t.Fatalf("multicast delivered to %v, want nodes 1-3", got)
	}
}

func TestMulticastDisabledByDefault(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	if n.NewEndpoint(0).(*endpoint).HWMulticastEnabled() {
		t.Fatal("multicast enabled without config")
	}
}

func TestOnDemandConnectTracksPeers(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(4)
	cfg.OnDemandConnections = true
	n := New(eng, cfg)
	ep := n.NewEndpoint(0).(*endpoint)
	if ep.MemoryUsage(3) != memBase {
		t.Fatalf("unconnected on-demand memory = %d, want base %d", ep.MemoryUsage(3), memBase)
	}
	if ep.connect(1) == 0 {
		t.Fatal("first contact free")
	}
	if ep.connect(1) != 0 {
		t.Fatal("second contact not free")
	}
	if ep.connect(0) != 0 {
		t.Fatal("self-connect should be free")
	}
	if ep.MemoryUsage(3) != memBase+memPerPeer {
		t.Fatalf("one-connection memory = %d", ep.MemoryUsage(3))
	}
}

func TestEagerThresholdOverride(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EagerThreshold = 64 * units.KB
	n := New(sim.New(), cfg)
	if got := n.NewEndpoint(0).EagerThreshold(); got != 64*units.KB {
		t.Fatalf("threshold = %d", got)
	}
}

func TestFatTreeConfigWiring(t *testing.T) {
	eng := sim.New()
	cfg := Config{Nodes: 32, FatTree: &fabric.FatTreeConfig{HostsPerLeaf: 16, Leaves: 2, Spines: 4}}
	n := New(eng, cfg)
	if n.Nodes() != 32 {
		t.Fatal("fat-tree wiring failed")
	}
	// Cross-leaf transfer completes.
	done := false
	n.NewEndpoint(0).Eager(20, 64, func() { done = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("cross-leaf eager lost")
	}
}

func TestFatTreeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.New(), Config{Nodes: 64, FatTree: &fabric.FatTreeConfig{HostsPerLeaf: 16, Leaves: 2, Spines: 4}})
}

func TestUtilizationsCoverAllResources(t *testing.T) {
	eng := sim.New()
	n := New(eng, DefaultConfig(2))
	n.NewEndpoint(0).Eager(1, 4096, func() {})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	us := n.Utilizations()
	if len(us) != 2*5 { // 2 nodes x (bus, tx, rx, up, down)
		t.Fatalf("utilization entries = %d, want 10", len(us))
	}
	var busy sim.Time
	for _, u := range us {
		busy += u.Busy
	}
	if busy <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestShmemConfigHandshake(t *testing.T) {
	n := New(sim.New(), DefaultConfig(2))
	if n.ShmemConfig().Handshake <= 0 {
		t.Fatal("no handshake configured")
	}
}
