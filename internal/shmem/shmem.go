// Package shmem models the intra-node shared-memory channel used between
// MPI ranks on the same SMP node.
//
// A message crosses through a shared segment with two memcpys: the sender
// copies in, the receiver copies out. Copy bandwidth depends on the working
// set: copies whose footprint stays within the Xeon's L2 cache run at cache
// speed; larger ones thrash and fall to memory speed. That single mechanism
// produces Figure 10's shape — shared-memory bandwidth collapsing for large
// messages — and, combined with MVAPICH's switch to NIC loopback at 16 KB,
// InfiniBand's flat 450+ MB/s tail.
package shmem

import (
	"mpinet/internal/metrics"
	"mpinet/internal/sim"
	"mpinet/internal/units"
)

// Config calibrates one host's memory system for intra-node copies.
type Config struct {
	// Handshake is the fixed per-message cost of the channel (flag write,
	// flag poll, queue management), split across sender and receiver.
	Handshake sim.Time
	// CacheBW is the memcpy bandwidth while the footprint fits in cache.
	CacheBW units.BytesPerSecond
	// MemBW is the memcpy bandwidth once copies thrash the cache.
	MemBW units.BytesPerSecond
	// CacheSize is the footprint (bytes copied per message) beyond which
	// thrashing begins; the transition is blended, not a step.
	CacheSize int64
	// SegmentSize is the per-peer shared segment, counted in MemoryUsage.
	SegmentSize int64
}

// DefaultConfig models the paper's dual 2.4 GHz Xeon nodes (512 KB L2).
func DefaultConfig() Config {
	return Config{
		Handshake:   600 * units.Nanosecond,
		CacheBW:     units.MBps(1600),
		MemBW:       units.MBps(260),
		CacheSize:   256 * units.KB,
		SegmentSize: units.MB,
	}
}

// Channel is the shared-memory transport of one node. Ranks on the node
// share it; the copy engine is per-process (each rank's own CPU does its
// copies), so only message handoff serializes.
type Channel struct {
	eng *sim.Engine
	cfg Config

	// metric handles, nil unless Instrument wired them (nil-safe no-ops)
	msgs      *metrics.Counter
	copies    *metrics.Counter
	copyBytes *metrics.Counter
	copyTime  *metrics.Timer
}

// Instrument registers the channel's message count, memcpy count, copied
// bytes and copy time under nodeN/shmem/.... The MPI layer reports each
// memcpy it charges via CountCopy.
func (c *Channel) Instrument(m *metrics.Registry, node int) {
	if m == nil {
		return
	}
	prefix := metrics.NodePrefix(node) + "shmem"
	c.msgs = m.Counter(prefix + "/msgs")
	c.copies = m.Counter(prefix + "/copies")
	c.copyBytes = m.Counter(prefix + "/copy_bytes")
	c.copyTime = m.Timer(prefix + "/copy_time")
}

// CountCopy records one memcpy of n bytes taking d of host time. Callers
// invoke it unconditionally; it is a no-op until Instrument wires handles.
func (c *Channel) CountCopy(n int64, d sim.Time) {
	c.copies.Inc()
	c.copyBytes.Add(n)
	c.copyTime.Add(d)
}

// New builds a node-local channel.
func New(eng *sim.Engine, cfg Config) *Channel {
	return &Channel{eng: eng, cfg: cfg}
}

// CopyTime returns the host time for one memcpy of n bytes, with the cache
// model applied.
func (c *Channel) CopyTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	if n <= c.cfg.CacheSize {
		return c.cfg.CacheBW.TimeFor(n)
	}
	// The first CacheSize bytes behave cached, the rest at memory speed;
	// this blends the knee the way measured curves do.
	t := c.cfg.CacheBW.TimeFor(c.cfg.CacheSize)
	t += c.cfg.MemBW.TimeFor(n - c.cfg.CacheSize)
	return t
}

// HalfHandshake is each side's share of the fixed per-message cost.
func (c *Channel) HalfHandshake() sim.Time { return c.cfg.Handshake / 2 }

// SegmentSize reports the shared segment size per peer pair.
func (c *Channel) SegmentSize() int64 { return c.cfg.SegmentSize }

// Deliver schedules the receiver-visible arrival of a message whose
// sender-side copy completed at time now: the data is visible one handshake
// later. (The receiver's copy-out cost is charged by the MPI layer when the
// receiver drains it, using CopyTime.)
func (c *Channel) Deliver(deliver func()) {
	c.msgs.Inc()
	c.eng.Schedule(c.HalfHandshake(), deliver)
}
