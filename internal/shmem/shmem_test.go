package shmem

import (
	"testing"
	"testing/quick"

	"mpinet/internal/sim"
	"mpinet/internal/units"
)

func TestCopyTimeCacheModel(t *testing.T) {
	ch := New(sim.New(), DefaultConfig())
	cfg := DefaultConfig()
	// In-cache copies run at cache bandwidth.
	small := ch.CopyTime(64 * units.KB)
	if want := cfg.CacheBW.TimeFor(64 * units.KB); small != want {
		t.Fatalf("in-cache copy = %v, want %v", small, want)
	}
	// Past the knee the marginal rate is memory bandwidth.
	a := ch.CopyTime(cfg.CacheSize + units.MB)
	b := ch.CopyTime(cfg.CacheSize + 2*units.MB)
	marginal := b - a
	if want := cfg.MemBW.TimeFor(units.MB); marginal != want {
		t.Fatalf("marginal rate = %v per MB, want %v", marginal, want)
	}
}

func TestCopyTimeZeroAndNegative(t *testing.T) {
	ch := New(sim.New(), DefaultConfig())
	if ch.CopyTime(0) != 0 || ch.CopyTime(-5) != 0 {
		t.Fatal("degenerate sizes should cost nothing")
	}
}

func TestCopyTimeMonotone(t *testing.T) {
	ch := New(sim.New(), DefaultConfig())
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return ch.CopyTime(x) <= ch.CopyTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverAfterHalfHandshake(t *testing.T) {
	eng := sim.New()
	ch := New(eng, DefaultConfig())
	var at sim.Time
	ch.Deliver(func() { at = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != ch.HalfHandshake() {
		t.Fatalf("delivered at %v, want %v", at, ch.HalfHandshake())
	}
}

func TestSegmentSize(t *testing.T) {
	cfg := DefaultConfig()
	ch := New(sim.New(), cfg)
	if ch.SegmentSize() != cfg.SegmentSize {
		t.Fatal("segment size mismatch")
	}
}

func TestEffectiveLargeCopySlower(t *testing.T) {
	ch := New(sim.New(), DefaultConfig())
	smallRate := float64(64*units.KB) / ch.CopyTime(64*units.KB).Seconds()
	largeRate := float64(4*units.MB) / ch.CopyTime(4*units.MB).Seconds()
	if largeRate >= smallRate {
		t.Fatalf("cache thrash missing: large %.0f >= small %.0f B/s", largeRate, smallRate)
	}
}
