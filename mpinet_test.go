package mpinet

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	p := InfiniBand()
	w, err := NewWorld(WorldConfig{Net: p.New(2), Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	err = w.Run(func(r *Rank) {
		buf := r.Malloc(4096)
		if r.Rank() == 0 {
			r.Send(buf, 1, 0)
		} else {
			got = r.Recv(buf, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 4096 || got.Source != 0 {
		t.Fatalf("status = %+v", got)
	}
}

func TestFacadeMicrobench(t *testing.T) {
	c := Latency(Quadrics(), []int64{4})
	if len(c.Y) != 1 || c.Y[0] <= 0 {
		t.Fatalf("latency curve: %+v", c)
	}
	b := Bandwidth(Myrinet(), []int64{65536}, 16)
	if b.Y[0] < 100 || b.Y[0] > 300 {
		t.Fatalf("Myrinet bandwidth = %.0f, outside plausible range", b.Y[0])
	}
}

func TestFacadeRunApp(t *testing.T) {
	res, err := RunApp("MG", Myrinet(), ClassS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Net != "Myri" {
		t.Fatalf("result: %+v", res)
	}
	if _, err := RunApp("nope", Myrinet(), ClassS, 8); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFacadeRunAppSMP(t *testing.T) {
	res, err := RunAppSMP("S3D-50", InfiniBand(), ClassS, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.IntraCalls == 0 {
		t.Fatal("SMP run produced no intra-node traffic")
	}
}

func TestFacadeAppNames(t *testing.T) {
	names := AppNames()
	if len(names) != 9 || names[0] != "IS" {
		t.Fatalf("AppNames = %v", names)
	}
}

func TestFacadePlatforms(t *testing.T) {
	ps := Platforms()
	if len(ps) != 3 {
		t.Fatalf("platforms: %d", len(ps))
	}
	for _, p := range ps {
		net := p.New(2)
		if net.Nodes() != 2 {
			t.Fatalf("%s: nodes = %d", p.Name, net.Nodes())
		}
	}
	if Topspin().New(16).Nodes() != 16 {
		t.Fatal("Topspin cannot wire 16 nodes")
	}
}
