#!/bin/sh
# Repo health check: static analysis, the test suite under the race
# detector, and the end-to-end determinism smoke — the figure document must
# be byte-identical between -j 1 and -j N, two identical instrumented runs
# must produce byte-identical metrics snapshots, Chrome traces and blame
# reports, and the fault-injected postmortem must name its blame.
#
# Usage: check.sh [-short] [-full] [-j N] [-faults] [-rail] [-chaos] [-seed N]
#
# The determinism smoke also re-renders the document at -shards 4 and
# requires the same bytes as the serial engine (docs/MODEL.md §17).
#
#   -short   pass -short to go test (the CI race-shard budget: quick-mode
#            suites only, minutes-long class B gates skipped)
#   -full    nightly mode: the complete class B suite including the
#            reproduction acceptance gates, with a generous timeout
#   -j N     worker count for the determinism smoke's parallel run
#            (default 8)
#   -faults  also run the fault-injection smoke (all three interconnects,
#            healthy and 1% drop) and its seeded-replay determinism check
#   -rail    also run the multi-rail failover smoke (bonded pairs x
#            {failover, stripe}) and its seeded-replay determinism check
#   -chaos   also run the Clos chaos soak (kill storms x interconnects x
#            routing policies — every scenario must land typed-or-success,
#            never hang) with sharded and unsharded seeded-replay checks
#   -seed N  fault-plan seed for -faults/-rail/-chaos (default 0 = the
#            committed seed)
#
# The default (no flags) runs the full test suite with a 30m timeout; since
# the experiment suite parallelizes across cores, this fits comfortably on
# multi-core hosts where the old serial suite needed 60m under race.
set -eu
cd "$(dirname "$0")/.."

short=""
timeout=30m
jobs=8
faults=""
railsmoke=""
chaos=""
seed=0
while [ $# -gt 0 ]; do
    case "$1" in
    -short) short="-short" ;;
    -full) short="" timeout=60m ;;
    -j)
        shift
        jobs="$1"
        ;;
    -faults) faults=1 ;;
    -rail) railsmoke=1 ;;
    -chaos) chaos=1 ;;
    -seed)
        shift
        seed="$1"
        ;;
    *)
        echo "usage: check.sh [-short] [-full] [-j N] [-faults] [-rail] [-chaos] [-seed N]" >&2
        exit 2
        ;;
    esac
    shift
done

echo "== engine hot-path guards =="
# The engine overhaul (docs/MODEL.md §15) removed interface boxing and
# closure-per-wake scheduling from internal/sim; neither may creep back.
# (Tests may use Schedule(0, ...) closures — only the library is guarded.)
if grep -rn --include='*.go' '"container/heap"' internal/sim/; then
    echo "FAIL: internal/sim imports container/heap (one boxed allocation per event)" >&2
    exit 1
fi
if grep -rn --include='*.go' --exclude='*_test.go' 'Schedule(0, func()' internal/sim/; then
    echo "FAIL: internal/sim wakes procs via per-event closures again (allocation per park/wake)" >&2
    exit 1
fi
# The shard scheduler must stay deterministic: wall-clock reads and shared
# mutable counters inside the window loop would make the commit order (and
# so the replay bytes) depend on host scheduling. Process-wide counters
# accumulate per shard and merge through engine.go helpers instead.
if grep -n 'time\.Now\|time\.Since\|atomic\.' internal/sim/shard.go; then
    echo "FAIL: internal/sim/shard.go reads wall-clock or shared atomics (nondeterministic under shard scheduling)" >&2
    exit 1
fi
echo "banned patterns absent"

echo "== go vet =="
go vet ./...

echo "== go test -race $short =="
go test -race $short -timeout "$timeout" ./...

echo "== determinism smoke test =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/paperrepro" ./cmd/paperrepro

# The parallel-runner contract: -j 1 and -j N render byte-identical docs.
"$tmp/paperrepro" -quick -j 1 -o "$tmp/doc_j1.md" 2>/dev/null
"$tmp/paperrepro" -quick -j "$jobs" -o "$tmp/doc_jN.md" 2>/dev/null
cmp "$tmp/doc_j1.md" "$tmp/doc_jN.md" || {
    echo "FAIL: figure document differs between -j 1 and -j $jobs" >&2
    exit 1
}
echo "figure document byte-identical at -j 1 and -j $jobs"

# The sharded-engine contract (docs/MODEL.md §17): partitioning each
# world's event queue is an execution knob like -j, never visible in output.
"$tmp/paperrepro" -quick -j 2 -shards 4 -o "$tmp/doc_s4.md" 2>/dev/null
cmp "$tmp/doc_j1.md" "$tmp/doc_s4.md" || {
    echo "FAIL: figure document differs between -shards 1 and -shards 4" >&2
    exit 1
}
echo "figure document byte-identical at -shards 1 and -shards 4"

# The observability contract: identical runs, identical artifacts.
for i in 1 2; do
    "$tmp/paperrepro" -obsnet Myri \
        -metrics "$tmp/snap$i.txt" -tracefile "$tmp/trace$i.json" 2>/dev/null
done
cmp "$tmp/snap1.txt" "$tmp/snap2.txt" || {
    echo "FAIL: metrics snapshots differ between identical runs" >&2
    exit 1
}
cmp "$tmp/trace1.json" "$tmp/trace2.json" || {
    echo "FAIL: Chrome traces differ between identical runs" >&2
    exit 1
}
echo "observability artifacts byte-identical across runs"

# The tracing contract: the fully-traced demo's blame report and
# flow-arrow Chrome trace are byte-identical across identical runs, and
# the fault-injected postmortem names the blamed rank, stage and message.
for i in 1 2; do
    "$tmp/paperrepro" -obsnet Myri -tracemsgs 1 \
        -tracefile "$tmp/flows$i.json" -blame "$tmp/blame$i.json" 2>/dev/null
done
cmp "$tmp/blame1.json" "$tmp/blame2.json" || {
    echo "FAIL: blame reports differ between identical traced runs" >&2
    exit 1
}
cmp "$tmp/flows1.json" "$tmp/flows2.json" || {
    echo "FAIL: traced Chrome traces differ between identical runs" >&2
    exit 1
}
"$tmp/paperrepro" -postmortem >"$tmp/postmortem.txt" || {
    echo "FAIL: postmortem scenario errored" >&2
    exit 1
}
grep -q 'blamed rank' "$tmp/postmortem.txt" || {
    echo "FAIL: postmortem output does not name a blamed rank" >&2
    exit 1
}
echo "tracing artifacts byte-identical; postmortem names its blame"

if [ -n "$faults" ]; then
    echo "== fault-injection smoke =="
    # Every interconnect must survive both the healthy control and 1% drop
    # (completing slower or failing typed — never hanging)...
    for rate in 0 0.01; do
        "$tmp/paperrepro" -faults -droprate "$rate" -seed "$seed" >"$tmp/faults_$rate.txt"
    done
    # ...and the seeded fault run must replay byte-identically.
    "$tmp/paperrepro" -faults -droprate 0.01 -seed "$seed" >"$tmp/faults_replay.txt"
    cmp "$tmp/faults_0.01.txt" "$tmp/faults_replay.txt" || {
        echo "FAIL: seeded fault run differs between identical replays" >&2
        exit 1
    }
    echo "fault smoke passed; seeded run byte-identical across replays"
fi

if [ -n "$railsmoke" ]; then
    echo "== multi-rail failover smoke =="
    # Every bonded pair must survive its primary dying at 50% of LU under
    # both policies (the solo control failing typed is asserted inside)...
    for pair in IBA+Myri IBA+QSN Myri+QSN; do
        for policy in failover stripe; do
            "$tmp/paperrepro" -railfail -railpair "$pair" -railpolicy "$policy" \
                -seed "$seed" >"$tmp/rail_${pair}_${policy}.txt"
        done
    done
    # ...and the seeded failover cascade must replay byte-identically.
    "$tmp/paperrepro" -railfail -railpair IBA+Myri -railpolicy failover \
        -seed "$seed" >"$tmp/rail_replay.txt"
    cmp "$tmp/rail_IBA+Myri_failover.txt" "$tmp/rail_replay.txt" || {
        echo "FAIL: seeded rail-failover run differs between identical replays" >&2
        exit 1
    }
    echo "rail smoke passed; seeded failover byte-identical across replays"
fi

if [ -n "$chaos" ]; then
    echo "== Clos chaos soak =="
    # Every interconnect under both routing policies must ride out the storm
    # schedule (kill+repair, correlated kill storm, node crash, full
    # partition), each scenario landing in its contracted outcome — the soak
    # exits non-zero on a hang, a wrong outcome or an untyped error...
    for net in IBA Myri QSN; do
        for routing in deterministic adaptive; do
            "$tmp/paperrepro" -chaos -faultnet "$net" -routing "$routing" \
                -seed "$seed" >"$tmp/chaos_${net}_${routing}.txt"
            if grep -q 'UNTYPED' "$tmp/chaos_${net}_${routing}.txt"; then
                echo "FAIL: untyped failure in the $net/$routing storm schedule" >&2
                exit 1
            fi
        done
    done
    # ...and the seeded storm must replay byte-identically, sharded or not.
    "$tmp/paperrepro" -chaos -faultnet IBA -routing deterministic \
        -seed "$seed" >"$tmp/chaos_replay.txt"
    cmp "$tmp/chaos_IBA_deterministic.txt" "$tmp/chaos_replay.txt" || {
        echo "FAIL: seeded chaos soak differs between identical replays" >&2
        exit 1
    }
    "$tmp/paperrepro" -chaos -faultnet IBA -routing deterministic \
        -seed "$seed" -shards 8 >"$tmp/chaos_s8.txt"
    cmp "$tmp/chaos_IBA_deterministic.txt" "$tmp/chaos_s8.txt" || {
        echo "FAIL: chaos soak differs between -shards 1 and -shards 8" >&2
        exit 1
    }
    echo "chaos soak passed; seeded storms byte-identical, sharded and not"
fi

echo "OK"
