#!/bin/sh
# Repo health check: static analysis, the full test suite under the race
# detector, and an end-to-end determinism smoke test — two identical
# instrumented runs must produce byte-identical metrics snapshots and
# Chrome traces.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go test -race =="
# The experiments and apps suites run minutes-long simulations; under the
# race detector on few cores they overrun go test's default 10m per-package
# timeout, so set one that fits the slowest package.
go test -race -timeout 60m ./...

echo "== determinism smoke test =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for i in 1 2; do
    go run ./cmd/paperrepro -obsnet Myri \
        -metrics "$tmp/snap$i.txt" -tracefile "$tmp/trace$i.json" 2>/dev/null
done
cmp "$tmp/snap1.txt" "$tmp/snap2.txt" || {
    echo "FAIL: metrics snapshots differ between identical runs" >&2; exit 1;
}
cmp "$tmp/trace1.json" "$tmp/trace2.json" || {
    echo "FAIL: Chrome traces differ between identical runs" >&2; exit 1;
}
echo "byte-identical across runs"

echo "OK"
